package lincount

import (
	"errors"
	"fmt"
	"io"
	"strings"
	"sync"
	"time"

	"lincount/internal/ast"
	"lincount/internal/database"
	"lincount/internal/lint"
	"lincount/internal/obsv"
	"lincount/internal/parser"
	"lincount/internal/plan"
	"lincount/internal/symtab"
	"lincount/internal/term"
)

// Strategy selects how a query is evaluated. The canonical definition
// (and the per-strategy documentation) lives in internal/plan, next to
// the compilation pipeline; the type and every constant are re-exported
// here unchanged.
type Strategy = plan.Strategy

const (
	// Auto analyzes the program and picks the best applicable method via
	// the cost-informed planner: the reduced counting program for
	// right-/left-/mixed-linear programs, the counting runtime for other
	// linear programs (safe on cyclic data), and magic sets otherwise.
	Auto = plan.Auto
	// Naive evaluates the program bottom-up without rewriting, recomputing
	// every rule each iteration. Baseline of baselines.
	Naive = plan.Naive
	// SemiNaive evaluates bottom-up with differential iteration.
	SemiNaive = plan.SemiNaive
	// Magic applies the magic-set rewriting, then evaluates semi-naively.
	Magic = plan.Magic
	// CountingClassic applies the classical counting method (integer
	// distance index). Applicable only to a single linear recursive rule
	// with disjoint left and right parts; unsafe on cyclic data.
	CountingClassic = plan.CountingClassic
	// Counting applies the extended counting rewriting (Algorithm 1 of
	// the paper) with path arguments. Applicable to every linear program;
	// unsafe on cyclic data (use CountingRuntime there).
	Counting = plan.Counting
	// CountingReduced applies Algorithm 1 followed by the reduction of
	// Algorithm 3.
	CountingReduced = plan.CountingReduced
	// CountingRuntime evaluates with the pointer-based counting runtime
	// (Algorithm 2), which is safe on cyclic databases.
	CountingRuntime = plan.CountingRuntime
	// MagicSup applies the supplementary magic-set rewriting (Beeri &
	// Ramakrishnan), which materializes rule prefixes so they are not
	// re-joined per derived body literal.
	MagicSup = plan.MagicSup
	// MagicCounting is the hybrid of Saccà & Zaniolo (SIGMOD 1987, the
	// paper's reference [16]): probe the left-part graph reachable from
	// the query constants; if acyclic, run the (fast) reduced extended
	// counting program, otherwise fall back to magic sets.
	MagicCounting = plan.MagicCounting
	// QSQ evaluates top-down with Query-SubQuery (Vieille), the
	// operational counterpart of magic sets. Negated derived literals
	// are not supported.
	QSQ = plan.QSQ
)

// ParseStrategy converts a name (as printed by String) to a Strategy.
func ParseStrategy(name string) (Strategy, error) { return plan.ParseStrategy(name) }

// Strategies lists all concrete strategies (excluding Auto), for sweeps.
func Strategies() []Strategy { return plan.Strategies() }

// planCacheCapacity bounds the compiled plans retained per Program. A
// service evaluates a small, hot set of query forms per program; 128
// plans comfortably covers that while bounding memory for adversarial
// query streams.
const planCacheCapacity = 128

// Program is a parsed Datalog program. Programs are immutable after
// parsing; the same Program may be evaluated against many databases,
// concurrently. Each Program owns a cache of compiled query plans
// (plans carry symbols interned in the program's term bank, so they are
// never shared across Programs; re-parsing a program therefore
// invalidates every plan by construction).
type Program struct {
	bank    *term.Bank
	program *ast.Program
	queries []ast.Query
	plans   *plan.Cache

	factCountsOnce sync.Once
	factCounts     map[symtab.Sym]int64
}

// ParseProgram parses Datalog source text. Facts embedded in the source
// stay part of the program; "?-" queries are collected and available via
// Queries.
func ParseProgram(src string) (*Program, error) {
	bank := term.NewBank(symtab.New())
	res, err := parser.Parse(bank, src)
	if err != nil {
		return nil, err
	}
	return &Program{
		bank:    bank,
		program: res.Program,
		queries: res.Queries,
		plans: plan.NewCache(planCacheCapacity, func(delta int) {
			obsv.MPlanCacheEntries.Add(int64(delta))
		}),
	}, nil
}

// programFactCounts returns the number of fact rules per head predicate —
// facts embedded in the program source, which the planner counts as base
// cardinality alongside the database's relations. Computed once; the
// program is immutable.
func (p *Program) programFactCounts() map[symtab.Sym]int64 {
	p.factCountsOnce.Do(func() {
		p.factCounts = make(map[symtab.Sym]int64)
		for _, r := range p.program.Rules {
			if len(r.Body) == 0 {
				p.factCounts[r.Head.Pred]++
			}
		}
	})
	return p.factCounts
}

// MustParseProgram is ParseProgram that panics on error, for tests and
// examples.
func MustParseProgram(src string) *Program {
	p, err := ParseProgram(src)
	if err != nil {
		panic(err)
	}
	return p
}

// Queries returns the "?-" goals found in the program source, rendered as
// text suitable for Eval.
func (p *Program) Queries() []string {
	out := make([]string, len(p.queries))
	for i, q := range p.queries {
		out[i] = ast.FormatQuery(p.bank, q)
	}
	return out
}

// Text renders the program as Datalog source.
func (p *Program) Text() string { return p.program.Format() }

// Lint runs static diagnostics over the program: safety errors, style
// warnings (singleton variables, duplicates) and structural notes
// (recursive cliques and whether the counting methods apply). Each
// finding is returned as formatted text prefixed with its severity;
// hasErrors is true when any finding would fail evaluation.
func (p *Program) Lint() (findings []string, hasErrors bool) {
	for _, f := range lint.Check(p.program) {
		findings = append(findings, f.Format(p.program))
		if f.Severity == lint.Error {
			hasErrors = true
		}
	}
	return findings, hasErrors
}

// Database holds base facts for one Program (they share a term bank, so a
// Database can only be used with the Program that created it).
type Database struct {
	owner *Program
	db    *database.Database
}

// NewDatabase returns an empty fact database for p.
func NewDatabase(p *Program) *Database {
	return &Database{owner: p, db: database.New(p.bank)}
}

// LoadFacts parses fact text ("up(a,b). flat(b,c).") into the database.
func (d *Database) LoadFacts(src string) error { return d.db.LoadText(src) }

// Fork returns a copy-on-write fork of the database: the fork shares
// every relation with d until a write first touches it, so d is never
// mutated through the fork and may keep serving concurrent readers.
// This is the MVCC primitive behind the query server's epoch snapshots:
// a single writer forks the current snapshot, applies a batch of
// asserts/retracts to the fork, and publishes the fork atomically as the
// next epoch. Forks are meant for a linear single-writer chain — fork
// the tip, write, publish, repeat; writing to two forks of the same
// database concurrently is not supported.
func (d *Database) Fork() *Database {
	return &Database{owner: d.owner, db: d.db.Fork()}
}

// Retract removes one fact (same argument conventions as Assert),
// reporting whether it was present. Retraction rebuilds the predicate's
// relation without the tuple — O(relation size) — so batch retractions
// where possible.
func (d *Database) Retract(pred string, args ...any) (bool, error) {
	t := make(database.Tuple, len(args))
	for i, a := range args {
		switch v := a.(type) {
		case string:
			t[i] = term.Symbol(d.owner.bank.Symbols().Intern(v))
		case int:
			t[i] = term.Int(int64(v))
		case int64:
			t[i] = term.Int(v)
		default:
			return false, fmt.Errorf("lincount: unsupported argument type %T", a)
		}
	}
	return d.db.Retract(d.owner.bank.Symbols().Intern(pred), t)
}

// RetractFacts parses fact text (same format as LoadFacts) and retracts
// each fact, returning how many were present and removed. Facts absent
// from the database are no-ops, not errors.
func (d *Database) RetractFacts(src string) (int, error) { return d.db.RetractText(src) }

// Assert adds one fact. Arguments may be string (symbol constants), int,
// int64, or pre-rendered Datalog terms via Raw.
func (d *Database) Assert(pred string, args ...any) error {
	t := make(database.Tuple, len(args))
	for i, a := range args {
		switch v := a.(type) {
		case string:
			t[i] = term.Symbol(d.owner.bank.Symbols().Intern(v))
		case int:
			t[i] = term.Int(int64(v))
		case int64:
			t[i] = term.Int(v)
		default:
			return fmt.Errorf("lincount: unsupported argument type %T", a)
		}
	}
	_, err := d.db.Assert(d.owner.bank.Symbols().Intern(pred), t)
	return err
}

// FactCount reports the number of base facts.
func (d *Database) FactCount() int { return d.db.FactCount() }

// Save writes a binary snapshot of the database to w. Snapshots carry
// their term universe and can be loaded into any database.
func (d *Database) Save(w io.Writer) error { return database.Save(w, d.db) }

// LoadSnapshot merges a binary snapshot (written by Save) into the
// database.
func (d *Database) LoadSnapshot(r io.Reader) error { return database.Load(r, d.db) }

// Text renders the database as fact text.
func (d *Database) Text() string { return d.db.Format() }

// Stats reports the work an evaluation performed. Fields that do not apply
// to a strategy are zero.
type Stats struct {
	// Iterations counts fixpoint rounds (engine strategies).
	Iterations int
	// Inferences counts successful rule instantiations including
	// rederivations — the classic deductive-database cost metric.
	Inferences int64
	// DerivedFacts counts distinct derived tuples (engine strategies).
	DerivedFacts int64
	// Probes counts index lookups.
	Probes int64
	// CountingNodes is the counting-set size (counting strategies; for
	// engine-evaluated counting programs it is the counting relation's
	// cardinality).
	CountingNodes int
	// AnswerTuples counts distinct answer-predicate tuples.
	AnswerTuples int
	// ArenaValues is the number of term values resident in the
	// evaluation's columnar arenas when it completes: derived relations
	// for engine strategies, input/answer relations for QSQ, and the
	// node and tuple arenas for the counting runtime.
	ArenaValues int64
	// Duration is the wall-clock time of the evaluation, including
	// rewriting.
	Duration time.Duration
}

// AttemptInfo records one failed strategy attempt of the Auto fallback
// chain: graceful degradation ran this strategy, it failed with a
// retryable error, and evaluation moved on to the next strategy in the
// chain.
type AttemptInfo struct {
	// Strategy is the strategy that was attempted.
	Strategy Strategy
	// Err is the failure message of the attempt.
	Err string
	// Duration is the wall-clock time the attempt consumed.
	Duration time.Duration
	// Compile is the attempt's share of Duration spent compiling the
	// query (adornment, analysis, rewrite) — zero when the plan came
	// from the program's plan cache.
	Compile time.Duration
	// Execute is the attempt's share of Duration spent executing the
	// compiled plan before it failed.
	Execute time.Duration
	// PlanCacheHit reports whether the attempt's plan came from the
	// program's plan cache.
	PlanCacheHit bool
	// Stats holds the work counters the attempt accumulated before it
	// failed — the partial work a degraded run would otherwise discard.
	// Duration inside Stats is zero; use the field above.
	Stats Stats
}

// RuleProfile is one rule's share of an evaluation's work, collected
// only when a Tracer is attached (see WithTracer); Result.RuleProfile is
// nil otherwise. For rewriting strategies the rules are those of the
// rewritten program.
type RuleProfile struct {
	// Rule is the rule's source text.
	Rule string
	// Runs counts evaluations of the rule's join (one per delta
	// occurrence per fixpoint iteration under semi-naive evaluation).
	Runs int
	// Inferences and DerivedFacts are the rule's share of the Stats
	// counters of the same names.
	Inferences   int64
	DerivedFacts int64
	// Duration is the wall-clock time spent joining the rule's body.
	Duration time.Duration
}

// Result is the outcome of Eval.
type Result struct {
	// Answers holds one row per answer of the original query, each value
	// rendered as Datalog text. Bound query arguments are included, so
	// every strategy returns identical rows.
	Answers [][]string
	// Strategy is the concrete strategy that produced the answers
	// (resolves Auto, and reflects any degradation fallback).
	Strategy Strategy
	// Resolved is the strategy the evaluation initially resolved to: for
	// Auto it is the analyzer's first choice, for explicit strategies it
	// equals the requested strategy. Resolved differs from Strategy when
	// graceful degradation fell back (see Degraded) or when a rewriting
	// strategy delegated a purely extensional goal to SemiNaive.
	Resolved Strategy
	// Degraded lists the failed attempts that preceded the successful
	// one, in the order they were tried. Empty when the first strategy
	// succeeded. Only Auto degrades; explicit strategies fail fast.
	Degraded []AttemptInfo
	// Rewritten is the rewritten program text (empty for Naive and
	// SemiNaive; the analyzed canonical form for CountingRuntime).
	Rewritten string
	// RewrittenQuery is the rewritten goal text, when applicable.
	RewrittenQuery string
	Stats          Stats
	// CompileTime is the time this evaluation spent compiling the query
	// (adornment, analysis, rewrite, formatting). Near zero when the
	// plan came from the program's plan cache.
	CompileTime time.Duration
	// PlanCacheHit reports whether the successful strategy's plan came
	// from the program's plan cache rather than being compiled here.
	PlanCacheHit bool
	// RuleProfile holds per-rule work profiles when the evaluation ran
	// with WithTracer (engine-evaluated strategies only; nil otherwise),
	// in component order — the data behind EXPLAIN ANALYZE output.
	RuleProfile []RuleProfile
}

// ErrWrongDatabase is returned when a Database is used with a different
// Program than it was created for.
var ErrWrongDatabase = errors.New("lincount: database belongs to a different program")

// formatTuple renders a tuple with the program's bank.
func (p *Program) formatTuple(t database.Tuple) []string {
	out := make([]string, len(t))
	for i, v := range t {
		out[i] = p.bank.Format(v)
	}
	return out
}

// answerKey joins a formatted row for dedup and sorting.
func answerKey(row []string) string { return strings.Join(row, "\x1f") }
