// Flights: balanced round trips over a cyclic route network — the workload
// for the cyclic-database extension (Algorithm 2). An itinerary is
// "balanced" from a home airport if one can fly k outbound legs to a hub,
// switch alliances there, and fly k return legs. The outbound network
// contains cycles (regional loops), so the classical counting method
// diverges; the pointer-based counting runtime handles it.
//
// Run with:
//
//	go run ./examples/flights
package main

import (
	"fmt"
	"log"
	"strings"

	"lincount"
)

const program = `
balanced(X,Y) :- partnerHub(X,Y).
balanced(X,Y) :- outbound(X,X1), balanced(X1,Y1), return(Y1,Y).
`

// The outbound network has a loop: vie -> muc -> zrh -> vie.
const facts = `
outbound(ber,vie).  outbound(vie,muc).  outbound(muc,zrh).
outbound(zrh,vie).  outbound(vie,ist).

partnerHub(ist,doh). partnerHub(zrh,sin).

return(doh,cai).  return(cai,ath).  return(ath,rom).
return(rom,mad).  return(mad,lis).  return(lis,opo).
return(sin,bkk).  return(bkk,del).  return(del,dxb).
`

func main() {
	p, err := lincount.ParseProgram(program)
	if err != nil {
		log.Fatal(err)
	}
	db := lincount.NewDatabase(p)
	if err := db.LoadFacts(facts); err != nil {
		log.Fatal(err)
	}

	const query = "?- balanced(ber,Y)."
	fmt.Println("route program over a cyclic outbound network:")
	fmt.Print(indent(p.Text()))

	// Classical counting diverges on the vie–muc–zrh loop; the budget
	// guard turns that into an error instead of an infinite loop.
	_, err = lincount.Eval(p, db, query, lincount.CountingClassic,
		lincount.WithMaxDerivedFacts(20000))
	if err != nil {
		fmt.Println("\ncounting-classic: diverges on the cyclic network (stopped by the budget guard)")
	} else {
		fmt.Println("\ncounting-classic: unexpectedly succeeded")
	}

	// The counting runtime (Algorithm 2) classifies the loop's back arc
	// and terminates.
	res, err := lincount.Eval(p, db, query, lincount.CountingRuntime)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("counting-runtime: counting set of %d airports, %d answer tuples\n",
		res.Stats.CountingNodes, res.Stats.AnswerTuples)
	fmt.Printf("\nbalanced destinations from ber:\n")
	for _, a := range res.Answers {
		fmt.Printf("  %s\n", a[1])
	}

	// Cross-check against magic sets.
	m, err := lincount.Eval(p, db, query, lincount.Magic)
	if err != nil {
		log.Fatal(err)
	}
	agree := len(m.Answers) == len(res.Answers)
	for i := range m.Answers {
		if !agree || strings.Join(m.Answers[i], ",") != strings.Join(res.Answers[i], ",") {
			agree = false
			break
		}
	}
	fmt.Printf("\nmagic sets agrees: %v  (runtime inferences=%d, magic inferences=%d)\n",
		agree, res.Stats.Inferences, m.Stats.Inferences)
}

func indent(text string) string {
	var sb strings.Builder
	for _, line := range strings.Split(strings.TrimRight(text, "\n"), "\n") {
		sb.WriteString("    ")
		sb.WriteString(line)
		sb.WriteByte('\n')
	}
	return sb.String()
}
