// Genealogy: same-generation cousins over a family database with separate
// maternal and paternal lineage relations — a program with two linear
// recursive rules, the shape of the paper's Example 3, where the extended
// counting method must remember which rule was applied at each level.
//
// Two people are same-generation relatives along matched lineages if they
// have ancestors in the same generation who are siblings; going up the
// maternal line must be mirrored coming down the maternal line, and
// likewise for the paternal line.
//
// Run with:
//
//	go run ./examples/genealogy
package main

import (
	"fmt"
	"log"
	"strings"

	"lincount"
)

const program = `
cousin(X,Y) :- sibling(X,Y).
cousin(X,Y) :- mother(X,X1), cousin(X1,Y1), motherOf(Y1,Y).
cousin(X,Y) :- father(X,X1), cousin(X1,Y1), fatherOf(Y1,Y).
`

// Three generations. motherOf/fatherOf are the child-direction inverses of
// mother/father (kept as separate base relations so each recursive rule has
// a distinct left and right part, as in Example 3).
var facts = `
% generation 0 (eldest): greta & gustav are siblings.
sibling(greta,gustav). sibling(gustav,greta).

% greta's line (maternal steps), gustav's line (paternal steps).
mother(maria,greta).      motherOf(greta,maria2).
father(martin,maria).     fatherOf(maria2,martin2).

mother(nora,gustav).      motherOf(gustav,nora2).
father(nils,nora).        fatherOf(nora2,nils2).
`

func main() {
	p, err := lincount.ParseProgram(program)
	if err != nil {
		log.Fatal(err)
	}
	db := lincount.NewDatabase(p)
	if err := db.LoadFacts(facts); err != nil {
		log.Fatal(err)
	}

	fmt.Println("family program (two recursive rules, Example 3 shape):")
	fmt.Print(indent(p.Text()))

	queries := []string{
		"?- cousin(martin,Y).", // father(mother(martin)) up, mirrored down
		"?- cousin(maria,Y).",
		"?- cousin(nils,Y).",
	}
	for _, q := range queries {
		res, err := lincount.Eval(p, db, q, lincount.Auto)
		if err != nil {
			log.Fatal(err)
		}
		var rows []string
		for _, a := range res.Answers {
			rows = append(rows, a[1])
		}
		fmt.Printf("\n%s  [%s]\n  same-generation relatives: %s\n",
			q, res.Strategy, strings.Join(rows, ", "))
	}

	// Show why the rule sequence matters: print the counting rewrite whose
	// path entries record r1 (maternal) vs r2 (paternal).
	prog, goal, err := lincount.Rewrite(p, queries[0], lincount.Counting)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nextended counting rewrite — note the e(r1,..)/e(r2,..) path entries:")
	fmt.Print(indent(prog))
	fmt.Printf("goal: %s\n", goal)
}

func indent(text string) string {
	var sb strings.Builder
	for _, line := range strings.Split(strings.TrimRight(text, "\n"), "\n") {
		sb.WriteString("    ")
		sb.WriteString(line)
		sb.WriteByte('\n')
	}
	return sb.String()
}
