// Quickstart: the paper's Example 1 — the same-generation query sg(a,Y)
// evaluated with every strategy, showing the rewritten programs and that
// all methods return the same answers with different amounts of work.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"strings"

	"lincount"
)

const program = `
sg(X,Y) :- flat(X,Y).
sg(X,Y) :- up(X,X1), sg(X1,Y1), down(Y1,Y).
`

// A small genealogy-shaped instance: an up tree from a, a flat level, and
// the mirrored down tree, plus an unreachable branch rooted at z that only
// bottom-up evaluation wastes time on.
const facts = `
up(a,b). up(b,c). up(b,d). up(z,zz).
flat(c,c1). flat(d,d1). flat(zz,zy).
down(c1,e). down(d1,e). down(e,f).
`

func main() {
	p, err := lincount.ParseProgram(program)
	if err != nil {
		log.Fatal(err)
	}
	db := lincount.NewDatabase(p)
	if err := db.LoadFacts(facts); err != nil {
		log.Fatal(err)
	}

	const query = "?- sg(a,Y)."
	fmt.Println("program:")
	fmt.Print(indent(p.Text()))
	fmt.Printf("query: %s\n\n", query)

	for _, s := range []lincount.Strategy{
		lincount.SemiNaive, lincount.Magic, lincount.CountingClassic,
		lincount.Counting, lincount.CountingRuntime, lincount.Auto,
	} {
		res, err := lincount.Eval(p, db, query, s)
		if err != nil {
			log.Fatalf("%v: %v", s, err)
		}
		var rows []string
		for _, a := range res.Answers {
			rows = append(rows, strings.Join(a, ","))
		}
		fmt.Printf("%-18s answers=%v  inferences=%-3d facts=%-3d counting-set=%d\n",
			res.Strategy.String()+":", rows, res.Stats.Inferences,
			res.Stats.DerivedFacts, res.Stats.CountingNodes)
	}

	fmt.Println("\nextended counting rewrite (Algorithm 1):")
	prog, goal, err := lincount.Rewrite(p, query, lincount.Counting)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(indent(prog))
	fmt.Printf("goal: %s\n", goal)
}

func indent(text string) string {
	var sb strings.Builder
	for _, line := range strings.Split(strings.TrimRight(text, "\n"), "\n") {
		sb.WriteString("    ")
		sb.WriteString(line)
		sb.WriteByte('\n')
	}
	return sb.String()
}
