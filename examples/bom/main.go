// Bill of materials: right- and left-linear queries over a part-containment
// hierarchy — the RLC-linear programs of §5, where Algorithm 3's reduction
// removes the path argument entirely and the query degenerates into plain
// reachability seeded at the query binding.
//
//   - "which base components does an assembly contain?" is right-linear:
//     usesPart(X,Y) :- component(X,Y).
//     usesPart(X,Y) :- contains(X,X1), usesPart(X1,Y).
//   - "which revisions supersede a given part?" is left-linear:
//     supersededBy(X,Y) :- revisionOf(X,Y).
//     supersededBy(X,Y) :- supersededBy(X,Y1), revisionOf(Y1,Y).
//
// Run with:
//
//	go run ./examples/bom
package main

import (
	"fmt"
	"log"
	"strings"

	"lincount"
)

const programs = `
usesPart(X,Y) :- component(X,Y).
usesPart(X,Y) :- contains(X,X1), usesPart(X1,Y).

supersededBy(X,Y) :- revisionOf(X,Y).
supersededBy(X,Y) :- supersededBy(X,Y1), revisionOf(Y1,Y).
`

const facts = `
% assembly structure
contains(bike,frame). contains(bike,wheel). contains(wheel,hub).
contains(wheel,rim).  contains(frame,fork).

% base components at the leaves
component(hub,bearing). component(hub,axle). component(rim,spokeSet).
component(fork,steerer). component(frame,tube).

% revision chains
revisionOf(bearing,bearingV2). revisionOf(bearingV2,bearingV3).
revisionOf(axle,axleV2).
`

func main() {
	p, err := lincount.ParseProgram(programs)
	if err != nil {
		log.Fatal(err)
	}
	db := lincount.NewDatabase(p)
	if err := db.LoadFacts(facts); err != nil {
		log.Fatal(err)
	}

	show := func(query, label string) {
		res, err := lincount.Eval(p, db, query, lincount.Auto)
		if err != nil {
			log.Fatal(err)
		}
		var rows []string
		for _, a := range res.Answers {
			rows = append(rows, a[1])
		}
		fmt.Printf("%s\n  %s  [strategy: %s]\n  -> %s\n\n",
			label, query, res.Strategy, strings.Join(rows, ", "))
	}

	show("?- usesPart(bike,Y).", "right-linear: base components of the bike")
	show("?- usesPart(wheel,Y).", "right-linear: base components of the wheel")
	show("?- supersededBy(bearing,Y).", "left-linear: revisions superseding `bearing`")

	// What the reduction does to the right-linear program: the rewritten
	// program after Algorithm 3 is just seeded reachability — no path
	// argument, no per-level answer replication.
	prog, goal, err := lincount.Rewrite(p, "?- usesPart(bike,Y).", lincount.CountingReduced)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("reduced right-linear program (Algorithm 3, cf. §5 Fact 1):")
	for _, line := range strings.Split(strings.TrimSpace(prog), "\n") {
		fmt.Printf("    %s\n", line)
	}
	fmt.Printf("    goal: %s\n", goal)
}
