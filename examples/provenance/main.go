// Provenance: derivation witnesses for query answers — the structure the
// paper's §3.4 pointer representation makes available for free. The
// counting runtime records, for each answer tuple, the exit-rule
// application and the chain of recursive-rule undo steps; lincount.Explain
// surfaces them.
//
// The scenario is a security-review question: "which build artifacts can a
// compromised dependency reach, and through exactly which chain?" —
// reachability answers alone are not actionable, the witness is.
//
// Run with:
//
//	go run ./examples/provenance
package main

import (
	"fmt"
	"log"
	"strings"

	"lincount"
)

// taints(Dep, Artifact): a compromised dependency taints an artifact if
// some build step consumes it (directly or through intermediate outputs)
// and emits the artifact. includes/emits mirror up/down around the build
// step; the middle `buildstep` relation is the flat part.
const program = `
taints(X,Y) :- buildstep(X,Y).
taints(X,Y) :- includes(X,X1), taints(X1,Y1), emits(Y1,Y).
`

const facts = `
% dependency inclusion chains (up side)
includes(leftpad,utils). includes(utils,corelib). includes(corelib,runtime).
includes(leftpad,polyfill).

% direct build steps (flat)
buildstep(runtime,objA). buildstep(polyfill,objB).

% artifact emission chains (down side)
emits(objA,libcore). emits(libcore,appserver). emits(appserver,release).
emits(objB,shim). emits(shim,release).
`

func main() {
	p, err := lincount.ParseProgram(program)
	if err != nil {
		log.Fatal(err)
	}
	db := lincount.NewDatabase(p)
	if err := db.LoadFacts(facts); err != nil {
		log.Fatal(err)
	}

	const query = "?- taints(leftpad,Y)."
	fmt.Println("query:", query)

	exps, err := lincount.Explain(p, db, query)
	if err != nil {
		log.Fatal(err)
	}
	if len(exps) == 0 {
		fmt.Println("nothing tainted.")
		return
	}
	for _, e := range exps {
		fmt.Printf("\ntainted artifact: %s\n", e.Answer[1])
		for _, line := range strings.Split(strings.TrimRight(e.Witness, "\n"), "\n") {
			fmt.Printf("  %s\n", line)
		}
	}

	// The witnesses above come from the counting runtime's predecessor
	// entries; compare the same information cost-free against what a
	// plain evaluation would give (answers only).
	res, err := lincount.Eval(p, db, query, lincount.SemiNaive)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nplain evaluation agrees on %d answers (no witnesses available).\n",
		len(res.Answers))
}
