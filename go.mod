module lincount

go 1.22
