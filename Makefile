# lincount — development targets. Everything is stdlib-only; plain
# `go build ./...` works without this file.
#
# `make check` is the pre-commit gate: vet plus the full test suite under
# the race detector (the parallel scheduler and the shared budget counter
# are only honest if they are race-clean), plus the seeded chaos suite.

GO ?= go

.PHONY: all build test race vet fmt check chaos obs-smoke server-smoke crash-smoke inc-smoke planner-smoke golden-explain bench benchcheck experiments fuzz examples clean

all: build vet test

check:
	$(GO) vet ./...
	$(GO) test -race ./...
	$(MAKE) chaos
	$(MAKE) obs-smoke
	$(MAKE) server-smoke
	$(MAKE) crash-smoke
	$(MAKE) inc-smoke
	$(MAKE) planner-smoke
	$(MAKE) golden-explain

# The seeded chaos suite: fault schedules × strategies × corpus programs
# under the race detector, checked by the differential oracle, plus the
# graceful-degradation scenarios. Deterministic (seeded PRNG) and small
# enough to stay well under a minute.
chaos:
	$(GO) test -race -run 'TestChaos|TestDegraded' -count=1 .
	$(GO) run ./cmd/lincount-bench -verify > /dev/null

# End-to-end observability check: run a query with -obs on an ephemeral
# port, fetch /metrics (Prometheus text format) and /trace.json (Chrome
# trace-event JSON), and validate the trace parses and contains the
# expected span names. See docs/INTERNALS.md § Observability.
obs-smoke:
	$(GO) test -run TestObsSmoke -count=1 ./cmd/lincount
	$(GO) test -run TestObsServerSmoke -count=1 ./cmd/lincountd

# End-to-end daemon check: build lincountd, start it in-process on an
# ephemeral port, query it, write a fact (read-your-writes across
# epochs), provoke a deterministic shed under admission pressure, then
# deliver the shutdown signal during load and assert a clean drain with
# exit 0. See docs/INTERNALS.md § Serving.
server-smoke:
	$(GO) build -o /dev/null ./cmd/lincountd
	$(GO) test -run TestServerSmoke -count=1 ./cmd/lincountd

# End-to-end durability check: build lincountd with a data directory,
# load it with concurrent writers, checkpoint under live traffic,
# SIGKILL it mid-load, restart over the same directory, and assert
# every acknowledged write survived recovery. See docs/INTERNALS.md
# § Durability and recovery.
crash-smoke:
	$(GO) test -run TestCrashSmoke -count=1 ./cmd/lincountd

# End-to-end incremental-maintenance check: start lincountd on a
# recursive program, drive it with concurrent writers issuing mixed
# assert/retract batches, then verify the maintained materialisation
# against both a from-scratch evaluation and a library-side oracle, and
# assert /v1/stats shows the batches went through the delta engine. See
# docs/INTERNALS.md § Incremental maintenance.
inc-smoke:
	$(GO) test -run TestIncSmoke -count=1 ./cmd/lincountd

# The planner smoke quartet: acyclic/cyclic same-generation plus
# left-/right-linear closure, each asserting the cost-informed planner
# ranks the structurally proven strategy first with real data loaded and
# that its pick answers identically to semi-naive.
planner-smoke:
	$(GO) test -run TestPlannerSmoke -count=1 .

# Golden-file check of lincount-explain over the representative program
# quartet: every strategy's rewritten program plus the planner ranking.
# Regenerate intentionally changed rewrites with:
#   go test ./cmd/lincount-explain -run TestExplainGolden -update
golden-explain:
	$(GO) test -run TestExplainGolden -count=1 ./cmd/lincount-explain

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

fmt:
	gofmt -l -w .

# One timed run of every benchmark (the experiment suite proper is
# `make experiments`).
bench:
	$(GO) test -bench=. -benchmem -benchtime=1x .

# Allocation regression check, documented-but-optional like `make chaos`:
# runs the storage-sensitive P1/P2 micro-benchmarks and the batched-join
# P17 pair twice with -benchmem so run-to-run variance is visible next
# to any real allocs/op drift. P17's batched allocs/op is the guard for
# the pipeline's scratch reuse (buffers are amortised across fixpoint
# iterations — a drift upward means a buffer stopped being recycled).
# Compare the two passes by eye (allocs/op is deterministic; ns/op is
# not); EXPERIMENTS.md records the accepted numbers. To compare HEAD
# against a clean baseline: `git stash && make benchcheck` for the old
# numbers, then `git stash pop && make benchcheck` for the new ones.
benchcheck:
	@for i in 1 2; do \
		echo "== benchcheck pass $$i"; \
		$(GO) test -run '^$$' -bench 'BenchmarkP1_MagicVsCounting|BenchmarkP2_CountingSetSize|BenchmarkP17_BatchedJoin' -benchmem . || exit 1; \
	done

# Regenerate every table in EXPERIMENTS.md.
experiments:
	$(GO) run ./cmd/lincount-bench | tee bench_tables.txt

# Short fuzzing passes over the parser, the snapshot reader, and the
# WAL replayer.
fuzz:
	$(GO) test -fuzz=FuzzParse -fuzztime=30s ./internal/parser
	$(GO) test -fuzz=FuzzLoadSnapshot -fuzztime=30s ./internal/database
	$(GO) test -fuzz=FuzzReplayWAL -fuzztime=30s ./internal/wal

examples:
	@for d in examples/*/; do \
		echo "== $$d"; \
		$(GO) run ./$$d || exit 1; \
	done

clean:
	rm -f test_output.txt bench_output.txt
