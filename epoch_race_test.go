package lincount_test

// Plan-cache behavior across MVCC snapshot epochs. Plans are pure
// functions of (program, query, strategy); epochs are database forks of
// one program. So one PreparedQuery — and one plan-cache entry — must
// serve every epoch, concurrently, while a writer keeps publishing new
// forks. Run under -race (make check): the test's value is mostly what
// the race detector sees.

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"lincount"
)

// TestPlanCacheAcrossEpochs: sequential baseline — the second epoch's
// evaluation hits the plan cache compiled on the first, and each epoch's
// answers track its own fork.
func TestPlanCacheAcrossEpochs(t *testing.T) {
	p := lincount.MustParseProgram("p(X,Y) :- f(X,Y).")
	pq, err := lincount.Prepare(p, "?- p(X,Y).", lincount.SemiNaive)
	if err != nil {
		t.Fatal(err)
	}

	db := lincount.NewDatabase(p)
	if err := db.LoadFacts("f(a,b)."); err != nil {
		t.Fatal(err)
	}
	res, err := pq.Eval(db)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Answers) != 1 {
		t.Fatalf("epoch 0: %d answers, want 1", len(res.Answers))
	}

	fork := db.Fork()
	if err := fork.LoadFacts("f(b,c)."); err != nil {
		t.Fatal(err)
	}
	res2, err := pq.Eval(fork)
	if err != nil {
		t.Fatal(err)
	}
	if !res2.PlanCacheHit {
		t.Error("evaluation against the forked epoch missed the plan cache")
	}
	if len(res2.Answers) != 2 {
		t.Fatalf("epoch 1: %d answers, want 2", len(res2.Answers))
	}
	// The older epoch still answers from its own state.
	res, err = pq.Eval(db)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Answers) != 1 {
		t.Fatalf("epoch 0 after fork write: %d answers, want 1", len(res.Answers))
	}
}

// TestPlanCacheEpochRace: concurrent Prepare / write / eval. One writer
// publishes a chain of forks; evaluator goroutines pin an epoch and
// demand its exact fact count; preparer goroutines concurrently compile
// fresh query variants into the shared plan cache (forcing eviction
// churn alongside the hot entry). Any locking slip between the plan
// cache, the prepared facade, and the COW fork path is a race report.
func TestPlanCacheEpochRace(t *testing.T) {
	const epochs = 40
	p := lincount.MustParseProgram("p(X,Y) :- f(X,Y).")
	pq, err := lincount.Prepare(p, "?- p(X,Y).", lincount.SemiNaive)
	if err != nil {
		t.Fatal(err)
	}

	base := lincount.NewDatabase(p)
	if err := base.LoadFacts("f(seed,seed)."); err != nil {
		t.Fatal(err)
	}

	// published[i] is epoch i (i+1 facts); filled by the writer.
	published := make([]atomic.Pointer[lincount.Database], epochs+1)
	published[0].Store(base)

	var wg sync.WaitGroup
	wg.Add(1)
	go func() { // writer: fork, write, publish
		defer wg.Done()
		tip := base
		for i := 1; i <= epochs; i++ {
			fork := tip.Fork()
			if err := fork.LoadFacts(fmt.Sprintf("f(a%d,b%d).", i, i)); err != nil {
				t.Errorf("writer: %v", err)
				return
			}
			published[i].Store(fork)
			tip = fork
		}
	}()

	for r := 0; r < 4; r++ { // evaluators: pin whatever epoch is out, check its count
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for pass := 0; pass < 100; pass++ {
				i := (r*31 + pass) % (epochs + 1)
				db := published[i].Load()
				if db == nil {
					continue // not published yet
				}
				res, err := pq.Eval(db)
				if err != nil {
					t.Errorf("eval epoch %d: %v", i, err)
					return
				}
				if len(res.Answers) != i+1 {
					t.Errorf("epoch %d saw %d answers, want %d", i, len(res.Answers), i+1)
					return
				}
			}
		}(r)
	}

	for r := 0; r < 2; r++ { // preparers: churn the shared plan cache
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for pass := 0; pass < 50; pass++ {
				q := fmt.Sprintf("?- p(a%d,Y).", (r*53+pass)%epochs)
				pq2, err := lincount.Prepare(p, q, lincount.SemiNaive)
				if err != nil {
					t.Errorf("prepare %s: %v", q, err)
					return
				}
				db := published[epochs/2].Load()
				if db == nil {
					continue
				}
				if _, err := pq2.Eval(db); err != nil {
					t.Errorf("eval %s: %v", q, err)
					return
				}
			}
		}(r)
	}
	wg.Wait()
}
