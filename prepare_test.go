package lincount_test

// Prepared-query and plan-cache behavior: hits after the first
// compilation, invalidation by re-parse and by option changes, the
// cache-bypass option, and concurrent use of one PreparedQuery (the
// latter matters under -race, which make check runs).

import (
	"reflect"
	"sync"
	"testing"

	"lincount"
	"lincount/internal/workload"
)

func sgSetup(t testing.TB) (*lincount.Program, *lincount.Database) {
	t.Helper()
	p, err := lincount.ParseProgram(workload.SGProgram)
	if err != nil {
		t.Fatal(err)
	}
	db := lincount.NewDatabase(p)
	if err := db.LoadFacts(workload.Cylinder(8, 4, 2)); err != nil {
		t.Fatal(err)
	}
	return p, db
}

func sgQuery() string { return "?- sg(" + workload.CylinderQuery + ",Y)." }

func TestPreparedQueryCacheHit(t *testing.T) {
	p, db := sgSetup(t)
	for _, s := range []lincount.Strategy{lincount.Auto, lincount.SemiNaive, lincount.Magic, lincount.CountingReduced} {
		t.Run(s.String(), func(t *testing.T) {
			pq, err := lincount.Prepare(p, sgQuery(), s)
			if err != nil {
				t.Fatal(err)
			}
			first, err := pq.Eval(db)
			if err != nil {
				t.Fatal(err)
			}
			second, err := pq.Eval(db)
			if err != nil {
				t.Fatal(err)
			}
			if !second.PlanCacheHit {
				t.Errorf("second Eval: PlanCacheHit = false, want true")
			}
			if second.CompileTime != 0 {
				t.Errorf("second Eval: CompileTime = %v, want 0 on a cache hit", second.CompileTime)
			}
			if !reflect.DeepEqual(first.Answers, second.Answers) {
				t.Errorf("cached plan changed the answers")
			}
			cold, err := lincount.Eval(p, db, sgQuery(), s, lincount.WithoutPlanCache())
			if err != nil {
				t.Fatal(err)
			}
			if cold.PlanCacheHit {
				t.Errorf("WithoutPlanCache: PlanCacheHit = true, want false")
			}
			if !reflect.DeepEqual(first.Answers, cold.Answers) {
				t.Errorf("cached and cold answers differ")
			}
		})
	}
}

func TestPrepareSurfacesInapplicability(t *testing.T) {
	// Nonlinear recursion: the counting strategies must refuse it at
	// Prepare time, before any database work.
	p, err := lincount.ParseProgram(`
tc(X,Y) :- arc(X,Y).
tc(X,Y) :- tc(X,Z), tc(Z,Y).
`)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := lincount.Prepare(p, "?- tc(a,Y).", lincount.CountingReduced); err == nil {
		t.Fatalf("Prepare(nonlinear, CountingReduced) succeeded, want analysis error")
	}
	// Auto defers planning to Eval time, so Prepare succeeds.
	if _, err := lincount.Prepare(p, "?- tc(a,Y).", lincount.Auto); err != nil {
		t.Fatalf("Prepare(nonlinear, Auto): %v", err)
	}
}

func TestPlanCacheInvalidatedByReparse(t *testing.T) {
	p1, db1 := sgSetup(t)
	warm, err := lincount.Eval(p1, db1, sgQuery(), lincount.SemiNaive)
	if err != nil {
		t.Fatal(err)
	}
	if warm.PlanCacheHit {
		t.Fatalf("first evaluation on a fresh program hit the cache")
	}
	hit, err := lincount.Eval(p1, db1, sgQuery(), lincount.SemiNaive)
	if err != nil {
		t.Fatal(err)
	}
	if !hit.PlanCacheHit {
		t.Fatalf("second evaluation missed the cache")
	}

	// Re-parsing the identical source yields a new Program with an empty
	// plan cache: nothing survives the program's lifetime.
	p2, db2 := sgSetup(t)
	res, err := lincount.Eval(p2, db2, sgQuery(), lincount.SemiNaive)
	if err != nil {
		t.Fatal(err)
	}
	if res.PlanCacheHit {
		t.Errorf("re-parsed program served a stale plan")
	}
}

func TestPlanCacheMissesOnOptionChange(t *testing.T) {
	p, db := sgSetup(t)
	if _, err := lincount.Eval(p, db, sgQuery(), lincount.SemiNaive); err != nil {
		t.Fatal(err)
	}
	hit, err := lincount.Eval(p, db, sgQuery(), lincount.SemiNaive)
	if err != nil {
		t.Fatal(err)
	}
	if !hit.PlanCacheHit {
		t.Fatalf("identical options missed the cache")
	}
	changed, err := lincount.Eval(p, db, sgQuery(), lincount.SemiNaive,
		lincount.WithMaxIterations(10_000))
	if err != nil {
		t.Fatal(err)
	}
	if changed.PlanCacheHit {
		t.Errorf("changed options (WithMaxIterations) reused the old entry, want a miss")
	}
	// And the changed-options entry caches independently.
	again, err := lincount.Eval(p, db, sgQuery(), lincount.SemiNaive,
		lincount.WithMaxIterations(10_000))
	if err != nil {
		t.Fatal(err)
	}
	if !again.PlanCacheHit {
		t.Errorf("repeated changed-options evaluation missed the cache")
	}
}

func TestPreparedQueryConcurrentEval(t *testing.T) {
	p, db := sgSetup(t)
	pq, err := lincount.Prepare(p, sgQuery(), lincount.Auto)
	if err != nil {
		t.Fatal(err)
	}
	want, err := pq.Eval(db)
	if err != nil {
		t.Fatal(err)
	}
	const goroutines, rounds = 8, 16
	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				res, err := pq.Eval(db)
				if err != nil {
					errs <- err
					return
				}
				if !reflect.DeepEqual(res.Answers, want.Answers) {
					errs <- errMismatch
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// TestPreparedQueryConcurrentJoinModes exercises one PreparedQuery from
// many goroutines while mixing join-execution modes: the default batched
// pipeline, the legacy tuple-at-a-time path, and the partitioned worker
// pool. Join scratch (frames, trails, cached index handles, pipeline
// state) is per-evaluation, so every mode must agree under -race.
func TestPreparedQueryConcurrentJoinModes(t *testing.T) {
	p, db := sgSetup(t)
	pq, err := lincount.Prepare(p, sgQuery(), lincount.Auto)
	if err != nil {
		t.Fatal(err)
	}
	want, err := pq.Eval(db)
	if err != nil {
		t.Fatal(err)
	}
	modes := [][]lincount.Option{
		nil,
		{lincount.WithBatchedJoin(false)},
		{lincount.WithJoinWorkers(4)},
		{lincount.WithJoinWorkers(2), lincount.WithBatchedJoin(true)},
	}
	const rounds = 8
	var wg sync.WaitGroup
	errs := make(chan error, 2*len(modes))
	for m := range modes {
		for g := 0; g < 2; g++ {
			wg.Add(1)
			go func(m int) {
				defer wg.Done()
				for i := 0; i < rounds; i++ {
					res, err := pq.Eval(db, modes[m]...)
					if err != nil {
						errs <- err
						return
					}
					if !reflect.DeepEqual(res.Answers, want.Answers) {
						errs <- errMismatch
						return
					}
				}
			}(m)
		}
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

var errMismatch = errForConcurrent("concurrent prepared eval returned different answers")

type errForConcurrent string

func (e errForConcurrent) Error() string { return string(e) }
