package lincount

import (
	"context"
	"errors"
	"fmt"
	"runtime/debug"
	"sort"
	"strings"
	"time"

	"lincount/internal/adorn"
	"lincount/internal/ast"
	"lincount/internal/counting"
	"lincount/internal/database"
	"lincount/internal/engine"
	"lincount/internal/faultinject"
	"lincount/internal/limits"
	"lincount/internal/magic"
	"lincount/internal/obsv"
	"lincount/internal/parser"
	"lincount/internal/topdown"
)

// Option tunes an evaluation.
type Option func(*evalConfig)

type evalConfig struct {
	maxIterations     int
	maxFacts          int
	maxCountingTuples int
	maxDuration       time.Duration
	parallel          bool
	trace             func(TraceEvent)
	faultSeed         int64
	faultSpec         string
	inject            *faultinject.Injector
	tracer            *obsv.Tracer
	// statsSink, when non-nil, receives the evaluation's work counters
	// even when it fails partway — the partial stats of a degraded
	// attempt. Always non-nil below EvalContext (it points at a local
	// there when no caller supplied one).
	statsSink *Stats
}

// WithParallel evaluates independent strata concurrently (engine
// strategies). Strata whose rules build compound terms still run
// sequentially. The WithMaxDerivedFacts cap stays global (the strata
// share one atomic fact counter), and the first error or cancellation
// cancels the sibling strata, which drain before Eval returns.
func WithParallel() Option {
	return func(c *evalConfig) { c.parallel = true }
}

// TraceEvent is one step of an evaluation trace: a stratum starting
// ("component") or one fixpoint round ("iteration").
type TraceEvent struct {
	Kind       string
	Preds      []string
	Iteration  int
	DeltaFacts int64
	TotalFacts int64
}

// WithTrace streams per-component and per-iteration events of the engine
// strategies to fn — an EXPLAIN ANALYZE for the fixpoint. The counting
// runtime (Algorithm 2) is not iteration-based and emits no events.
func WithTrace(fn func(TraceEvent)) Option {
	return func(c *evalConfig) { c.trace = fn }
}

// Tracer records a structured trace of an evaluation: spans for the
// facade phases (parse, adorn, rewrite, answers), engine components,
// fixpoint iterations and rule runs, counting-runtime phases and
// worklist progress, QSQ passes, and each Auto fallback attempt. A nil
// *Tracer is a valid disabled tracer whose hook sites cost one pointer
// comparison. Render the result with WriteText or WriteChromeJSON
// (Chrome trace-event JSON, loadable in chrome://tracing and Perfetto).
type Tracer = obsv.Tracer

// NewTracer returns an empty Tracer ready to pass to WithTracer.
func NewTracer() *Tracer { return obsv.NewTracer() }

// WithTracer records the evaluation's structured trace into t and
// enables per-rule profiling (Result.RuleProfile). Tracing is opt-in:
// without this option the hook sites are single nil checks and the
// evaluation allocates nothing extra.
func WithTracer(t *Tracer) Option {
	return func(c *evalConfig) { c.tracer = t }
}

// WithMaxIterations bounds fixpoint iterations (engine strategies).
func WithMaxIterations(n int) Option {
	return func(c *evalConfig) { c.maxIterations = n }
}

// WithMaxDerivedFacts bounds the number of derived tuples. This is the
// evaluation's shared budget: under Auto it is charged across every
// degradation attempt (a fallback only gets what the failed attempts
// left), so the cap holds for the evaluation as a whole.
func WithMaxDerivedFacts(n int) Option {
	return func(c *evalConfig) { c.maxFacts = n }
}

// WithMaxCountingTuples bounds the counting runtime's tuple arena
// (counting nodes + answer tuples, which carry the method's path
// arguments) independently of the shared WithMaxDerivedFacts budget. It
// is a strategy-specific budget: when a CountingRuntime evaluation under
// Auto trips it, the facade falls back to the next strategy in the chain
// instead of failing, charging the tuples consumed against the shared
// budget. Zero means the counting runtime uses the shared budget (or its
// own default).
func WithMaxCountingTuples(n int) Option {
	return func(c *evalConfig) { c.maxCountingTuples = n }
}

// WithFaultInjection arms deterministic fault injection for this
// evaluation: spec is a comma-separated schedule of clauses
// "site=kind@N" (fire on the Nth hit) or "site=kind~P" (fire with
// probability P per hit, seeded by seed), where kind is err, delay
// (with a ":duration" suffix) or cancel, and site names an evaluator
// hook point (engine.insert, engine.probe, engine.iter, counting.node,
// counting.step, topdown.probe, topdown.pass, or * for all).
//
// Injected errors match errors.Is(err, ErrInjectedFault) and are
// retryable for the Auto degradation chain; injected cancellations
// surface as CanceledError whose cause is ErrInjectedFault. A malformed
// spec fails the evaluation before any work is done. This is the chaos
// harness's entry point — production evaluations simply omit the option
// and pay nothing.
func WithFaultInjection(seed int64, spec string) Option {
	return func(c *evalConfig) { c.faultSeed, c.faultSpec = seed, spec }
}

// WithMaxDuration bounds the wall-clock time of the evaluation: the
// context is wrapped with a deadline d from the start of Eval, and the
// evaluation returns a CanceledError wrapping context.DeadlineExceeded
// once it expires. Composes with EvalContext — whichever deadline is
// earlier wins.
func WithMaxDuration(d time.Duration) Option {
	return func(c *evalConfig) { c.maxDuration = d }
}

// Eval evaluates query ("?- goal(args).") against p and db with the given
// strategy. Every strategy returns the same answer rows; explicit
// strategies return an error when they are not applicable to the program
// (Auto always picks an applicable one).
func Eval(p *Program, db *Database, query string, strategy Strategy, opts ...Option) (*Result, error) {
	return EvalContext(context.Background(), p, db, query, strategy, opts...)
}

// EvalContext is Eval governed by a context: every strategy polls ctx
// cooperatively (per fixpoint iteration and every few thousand
// inferences or probes) and returns an error wrapping context.Cause(ctx)
// shortly after it is done — cancel it, give it a deadline, or wire it
// to a signal to interrupt a divergent query. A context that can never
// be canceled adds no per-inference cost.
//
// Evaluation errors come in three distinguishable families:
// errors.Is(err, ErrResourceLimit) for budget trips (see
// ResourceLimitError), errors.Is(err, context.Canceled) /
// errors.Is(err, context.DeadlineExceeded) for interruptions, and
// *InternalError for panics recovered at this boundary.
func EvalContext(ctx context.Context, p *Program, db *Database, query string, strategy Strategy, opts ...Option) (*Result, error) {
	if db != nil && db.owner != p {
		return nil, ErrWrongDatabase
	}
	if ctx == nil {
		ctx = context.Background()
	}
	cfg := evalConfig{}
	for _, o := range opts {
		o(&cfg)
	}
	if cfg.faultSpec != "" {
		inj, err := faultinject.ParseSpec(cfg.faultSeed, cfg.faultSpec)
		if err != nil {
			return nil, fmt.Errorf("lincount: %w", err)
		}
		cfg.inject = inj
	}
	if cfg.maxDuration > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, cfg.maxDuration)
		defer cancel()
	}
	if cfg.inject.WantsCancel() {
		// Injected cancellation storms flow through the ordinary
		// cooperative-cancellation machinery, with ErrInjectedFault as
		// the context cause so callers can tell them from real Ctrl-Cs.
		var cancel context.CancelCauseFunc
		ctx, cancel = context.WithCancelCause(ctx)
		defer cancel(nil)
		cfg.inject.BindCancel(func() { cancel(faultinject.ErrInjected) })
	}
	var sink Stats
	if cfg.statsSink == nil {
		cfg.statsSink = &sink
	}
	esp := cfg.tracer.Begin("eval", "eval")
	psp := cfg.tracer.Begin("eval", "parse")
	q, err := parser.ParseQuery(p.bank, query)
	psp.End()
	if err != nil {
		esp.End()
		return nil, fmt.Errorf("lincount: parsing query: %w", err)
	}
	// A context that is already done returns promptly, before any
	// rewriting or evaluation work.
	if err := ctx.Err(); err != nil {
		esp.End()
		return nil, &CanceledError{Component: "lincount", Cause: context.Cause(ctx)}
	}
	var dbi *database.Database
	if db != nil {
		dbi = db.db
	}

	resolved := strategy
	if strategy == Auto {
		resolved = resolveAuto(p, q)
	}

	start := time.Now()
	var res *Result
	if strategy == Auto {
		res, err = evalAuto(ctx, p, dbi, q, resolved, cfg)
	} else {
		res, err = evalResolved(ctx, p, dbi, q, strategy, resolved, cfg)
	}
	dur := time.Since(start)
	esp.End()
	if err != nil {
		recordEval(resolved, *cfg.statsSink, 0, cfg.inject.Fired(), dur, err)
		return nil, err
	}
	res.Resolved = resolved
	res.Stats.Duration = dur
	recordEval(res.Strategy, res.Stats, len(res.Degraded), cfg.inject.Fired(), dur, nil)
	return res, nil
}

// recordEval folds one finished evaluation — successful or not — into
// the process-wide metrics registry (served at /metrics when a CLI runs
// with -obs). The fold is a fixed handful of atomic adds; it is recorded
// unconditionally.
func recordEval(s Strategy, st Stats, degradations int, faultHits uint64, dur time.Duration, err error) {
	obsv.RecordEval(obsv.EvalSample{
		Strategy:      s.String(),
		Inferences:    st.Inferences,
		Probes:        st.Probes,
		DerivedFacts:  st.DerivedFacts,
		AnswerTuples:  int64(st.AnswerTuples),
		ArenaValues:   st.ArenaValues,
		CountingNodes: int64(st.CountingNodes),
		Degradations:  int64(degradations),
		FaultHits:     int64(faultHits),
		Duration:      dur,
		ErrClass:      errClass(err),
	})
}

func boolArg(b bool) int64 {
	if b {
		return 1
	}
	return 0
}

// errClass maps an evaluation error to its metrics label: "" (success),
// "limit", "canceled", "internal", or "other".
func errClass(err error) string {
	if err == nil {
		return ""
	}
	var ce *CanceledError
	var ie *InternalError
	switch {
	case errors.Is(err, ErrResourceLimit):
		return "limit"
	case errors.As(err, &ce), errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
		return "canceled"
	case errors.As(err, &ie):
		return "internal"
	default:
		return "other"
	}
}

// evalAuto runs the Auto degradation chain: the resolved strategy first,
// then — if it fails with a retryable error (a resource-limit trip, an
// injected fault, or a recovered internal panic) — each fallback in
// fallbackChain order against a fresh scratch state, until one succeeds
// or the chain is exhausted. Non-retryable errors (cancellation,
// deadline, semantic errors in the program) fail fast. The shared
// derived-fact budget is charged across attempts: a fallback only gets
// what the failed attempts measurably left, and the wall-clock budget is
// shared naturally through the context deadline. Failed attempts are
// recorded in Result.Degraded.
func evalAuto(ctx context.Context, p *Program, dbi *database.Database, q ast.Query, resolved Strategy, cfg evalConfig) (*Result, error) {
	chain := fallbackChain(p, q, resolved)
	var attempts []AttemptInfo
	remaining := int64(cfg.maxFacts) // shared budget; 0 = per-attempt defaults
	for i, s := range chain {
		acfg := cfg
		if cfg.maxFacts > 0 {
			acfg.maxFacts = int(remaining)
		}
		// Each attempt gets its own stats sink so a failed attempt's
		// partial work counters survive into AttemptInfo.Stats.
		var attemptStats Stats
		acfg.statsSink = &attemptStats
		asp := cfg.tracer.Begin("eval", "attempt:"+s.String())
		attemptStart := time.Now()
		res, err := evalResolved(ctx, p, dbi, q, Auto, s, acfg)
		asp.End(obsv.A("failed", boolArg(err != nil)))
		if cfg.statsSink != nil {
			*cfg.statsSink = attemptStats
		}
		if err == nil {
			res.Degraded = attempts
			return res, nil
		}
		if i == len(chain)-1 {
			return nil, err
		}
		if !retryableError(err) && !notApplicableError(err) {
			return nil, err
		}
		if ctx.Err() != nil {
			// The evaluation as a whole is canceled or out of time;
			// retrying would only fail the same way.
			return nil, err
		}
		attempts = append(attempts, AttemptInfo{
			Strategy: s,
			Err:      err.Error(),
			Duration: time.Since(attemptStart),
			Stats:    attemptStats,
		})
		if cfg.maxFacts > 0 {
			// Charge what the failed attempt measurably consumed (its
			// derived-fact or counting-tuple usage); attempts that failed
			// before tripping a counted budget charge nothing.
			var rle *ResourceLimitError
			if errors.As(err, &rle) && (rle.Kind == LimitFacts || rle.Kind == LimitTuples) {
				remaining -= rle.Used
				if remaining <= 0 {
					return nil, err
				}
			}
		}
	}
	// Unreachable: the loop returns on the last chain element.
	return nil, fmt.Errorf("lincount: empty fallback chain for %v", resolved)
}

// retryableError reports whether a failed attempt may be retried with
// another strategy: resource-limit trips (the strategy's work shape blew
// a budget another strategy may stay within), injected faults, and
// recovered internal panics. Cancellations and semantic errors are not
// retryable.
func retryableError(err error) bool {
	var ce *CanceledError
	if errors.As(err, &ce) {
		return false
	}
	var ie *InternalError
	return errors.Is(err, ErrResourceLimit) ||
		errors.Is(err, faultinject.ErrInjected) ||
		errors.As(err, &ie)
}

// notApplicableError reports errors meaning "this strategy does not
// cover the program" — within the fallback chain these skip to the next
// strategy rather than failing the evaluation.
func notApplicableError(err error) bool {
	return errors.Is(err, counting.ErrNotLinear) ||
		errors.Is(err, counting.ErrNotApplicable) ||
		errors.Is(err, counting.ErrNoBoundArgs) ||
		errors.Is(err, magic.ErrNoBoundArgs) ||
		errors.Is(err, topdown.ErrUnsupported)
}

// fallbackChain orders the strategies Auto tries for this query: the
// analyzer's pick, then the cycle-safe counting runtime (when the pick
// was a counting rewriting — cyclic data is the usual reason one blows
// its budget), then magic sets, then semi-naive, which is always
// applicable and so terminates the chain.
func fallbackChain(p *Program, q ast.Query, resolved Strategy) []Strategy {
	chain := []Strategy{resolved}
	seen := map[Strategy]bool{resolved: true}
	add := func(s Strategy) {
		if !seen[s] {
			seen[s] = true
			chain = append(chain, s)
		}
	}
	switch resolved {
	case CountingClassic, Counting, CountingReduced:
		add(CountingRuntime)
	}
	if resolved != SemiNaive && resolved != Naive {
		if _, err := adorn.Adorn(p.program, q); err == nil {
			add(Magic)
		}
	}
	add(SemiNaive)
	return chain
}

// FallbackChain reports the strategy order Auto would try for the query:
// the first element is the resolved strategy, the rest are the graceful-
// degradation fallbacks in order. Explicit strategies never degrade.
func FallbackChain(p *Program, query string) ([]Strategy, error) {
	q, err := parser.ParseQuery(p.bank, query)
	if err != nil {
		return nil, fmt.Errorf("lincount: parsing query: %w", err)
	}
	return fallbackChain(p, q, resolveAuto(p, q)), nil
}

// evalResolved dispatches to the strategy evaluators with panic
// containment: a panic in a rewriting or an evaluator is recovered here
// and returned as *InternalError, so one bad query cannot crash a
// process embedding the library. Panics that arose inside parallel
// strata goroutines arrive as *limits.PanicError and are converted to
// the same public type.
func evalResolved(ctx context.Context, p *Program, dbi *database.Database, q ast.Query, strategy, resolved Strategy, cfg evalConfig) (res *Result, err error) {
	defer func() {
		if r := recover(); r != nil {
			res, err = nil, &InternalError{Strategy: resolved, Value: r, Stack: string(debug.Stack())}
		}
	}()
	switch resolved {
	case Naive, SemiNaive:
		res, err = evalDirect(ctx, p, dbi, q, resolved, cfg)
	case Magic, MagicSup:
		res, err = evalMagic(ctx, p, dbi, q, resolved, cfg)
	case CountingClassic, Counting, CountingReduced:
		res, err = evalCounting(ctx, p, dbi, q, resolved, cfg)
	case CountingRuntime:
		res, err = evalRuntime(ctx, p, dbi, q, cfg)
	case MagicCounting:
		res, err = evalMagicCounting(ctx, p, dbi, q, cfg)
	case QSQ:
		res, err = evalQSQ(ctx, p, dbi, q, cfg)
	default:
		return nil, fmt.Errorf("lincount: unknown strategy %v", strategy)
	}
	var pe *limits.PanicError
	if errors.As(err, &pe) {
		res, err = nil, &InternalError{Strategy: resolved, Value: pe.Value, Stack: string(pe.Stack)}
	}
	return res, err
}

// resolveAuto picks a concrete strategy for the query.
func resolveAuto(p *Program, q ast.Query) Strategy {
	derived := false
	for _, r := range p.program.Rules {
		if r.Head.Pred == q.Goal.Pred {
			derived = true
			break
		}
	}
	if !derived {
		return SemiNaive
	}
	a, err := adorn.Adorn(p.program, q)
	if err != nil {
		return SemiNaive
	}
	an, err := counting.Analyze(a)
	switch {
	case errors.Is(err, counting.ErrNoBoundArgs):
		return SemiNaive
	case err != nil:
		return Magic
	}
	switch an.Classify() {
	case counting.RightLinearClass, counting.LeftLinearClass, counting.MixedLinearClass:
		if an.ListRewriteSafe() {
			return CountingReduced
		}
		return CountingRuntime
	default:
		return CountingRuntime
	}
}

func engineOpts(cfg evalConfig, naive bool) engine.Options {
	opts := engine.Options{
		Naive:           naive,
		MaxIterations:   cfg.maxIterations,
		MaxDerivedFacts: cfg.maxFacts,
		Parallel:        cfg.parallel,
		Inject:          cfg.inject,
		Tracer:          cfg.tracer,
	}
	if cfg.trace != nil {
		fn := cfg.trace
		opts.Trace = func(e engine.TraceEvent) {
			fn(TraceEvent{
				Kind:       e.Kind,
				Preds:      e.Preds,
				Iteration:  e.Iteration,
				DeltaFacts: e.DeltaFacts,
				TotalFacts: e.TotalFacts,
			})
		}
	}
	return opts
}

func statsFromEngine(s engine.Stats) Stats {
	return Stats{
		Iterations:   s.Iterations,
		Inferences:   s.Inferences,
		DerivedFacts: s.DerivedFacts,
		Probes:       s.Probes,
		ArenaValues:  s.ArenaValues,
	}
}

// finishRows formats, dedupes and sorts answer tuples.
func finishRows(p *Program, tuples []database.Tuple) [][]string {
	rows := make([][]string, 0, len(tuples))
	seen := map[string]bool{}
	for _, t := range tuples {
		row := p.formatTuple(t)
		k := answerKey(row)
		if !seen[k] {
			seen[k] = true
			rows = append(rows, row)
		}
	}
	sort.Slice(rows, func(i, j int) bool {
		return answerKey(rows[i]) < answerKey(rows[j])
	})
	return rows
}

// ruleProfileFromEngine converts the engine's per-rule profiles to the
// public type (nil in, nil out).
func ruleProfileFromEngine(rs []engine.RuleStat) []RuleProfile {
	if len(rs) == 0 {
		return nil
	}
	out := make([]RuleProfile, len(rs))
	for i, r := range rs {
		out[i] = RuleProfile{
			Rule: r.Rule, Runs: r.Runs,
			Inferences: r.Inferences, DerivedFacts: r.DerivedFacts,
			Duration: r.Duration,
		}
	}
	return out
}

// sinkEngineStats wires an engine stats sink into eopts so partial work
// counters survive a failed evaluation; the returned flush copies them
// into cfg.statsSink and must run before the caller returns.
func sinkEngineStats(cfg evalConfig, eopts *engine.Options) func() {
	if cfg.statsSink == nil {
		return func() {}
	}
	es := new(engine.Stats)
	eopts.StatsOut = es
	return func() { *cfg.statsSink = statsFromEngine(*es) }
}

func evalDirect(ctx context.Context, p *Program, db *database.Database, q ast.Query, s Strategy, cfg evalConfig) (*Result, error) {
	eopts := engineOpts(cfg, s == Naive)
	defer sinkEngineStats(cfg, &eopts)()
	res, err := engine.EvalContext(ctx, p.program, db, eopts)
	if err != nil {
		return nil, err
	}
	asp := cfg.tracer.Begin("eval", "answers")
	tuples := engine.Answers(res, db, q)
	out := &Result{
		Answers:     finishRows(p, tuples),
		Strategy:    s,
		Stats:       statsFromEngine(res.Stats),
		RuleProfile: ruleProfileFromEngine(res.Rules),
	}
	asp.End(obsv.A("rows", int64(len(out.Answers))))
	if rel := res.Relation(q.Goal.Pred); rel != nil {
		out.Stats.AnswerTuples = rel.Len()
	}
	return out, nil
}

func evalMagic(ctx context.Context, p *Program, db *database.Database, q ast.Query, s Strategy, cfg evalConfig) (*Result, error) {
	adsp := cfg.tracer.Begin("eval", "adorn")
	a, err := adorn.Adorn(p.program, q)
	adsp.End()
	if err != nil {
		return nil, err
	}
	if len(a.Program.Rules) == 0 {
		// Purely extensional goal.
		return evalDirect(ctx, p, db, q, SemiNaive, cfg)
	}
	rwsp := cfg.tracer.Begin("eval", "rewrite:"+s.String())
	var rw *magic.Rewritten
	if s == MagicSup {
		rw, err = magic.RewriteSupplementary(a)
	} else {
		rw, err = magic.Rewrite(a)
	}
	rwsp.End()
	if err != nil {
		return nil, err
	}
	eopts := engineOpts(cfg, false)
	defer sinkEngineStats(cfg, &eopts)()
	res, err := engine.EvalContext(ctx, rw.Program, db, eopts)
	if err != nil {
		return nil, err
	}
	asp := cfg.tracer.Begin("eval", "answers")
	tuples := engine.Answers(res, db, rw.Query)
	out := &Result{
		Answers:        finishRows(p, tuples),
		Strategy:       s,
		Rewritten:      rw.Program.Format(),
		RewrittenQuery: ast.FormatQuery(p.bank, rw.Query),
		Stats:          statsFromEngine(res.Stats),
		RuleProfile:    ruleProfileFromEngine(res.Rules),
	}
	asp.End(obsv.A("rows", int64(len(out.Answers))))
	if rel := res.Relation(rw.Query.Goal.Pred); rel != nil {
		out.Stats.AnswerTuples = rel.Len()
	}
	for m := range rw.MagicPreds {
		if rel := res.Relation(m); rel != nil {
			out.Stats.CountingNodes += rel.Len() // magic-set size, for comparison
		}
	}
	return out, nil
}

func evalCounting(ctx context.Context, p *Program, db *database.Database, q ast.Query, s Strategy, cfg evalConfig) (*Result, error) {
	adsp := cfg.tracer.Begin("eval", "adorn")
	a, err := adorn.Adorn(p.program, q)
	adsp.End()
	if err != nil {
		return nil, err
	}
	if len(a.Program.Rules) == 0 {
		return evalDirect(ctx, p, db, q, SemiNaive, cfg)
	}
	rwsp := cfg.tracer.Begin("eval", "rewrite:"+s.String())
	var rw *counting.Rewritten
	switch s {
	case CountingClassic:
		rw, err = counting.RewriteClassic(a)
	default:
		rw, err = counting.RewriteExtended(a)
	}
	if err == nil && s == CountingReduced {
		rw = counting.Reduce(rw)
	}
	rwsp.End()
	if err != nil {
		return nil, err
	}
	eopts := engineOpts(cfg, false)
	defer sinkEngineStats(cfg, &eopts)()
	res, err := engine.EvalContext(ctx, rw.Program, db, eopts)
	if err != nil {
		return nil, err
	}
	asp := cfg.tracer.Begin("eval", "answers")
	raw := engine.Answers(res, db, rw.Query)
	tuples := rw.ReconstructAnswers(raw)
	out := &Result{
		Answers:        finishRows(p, tuples),
		Strategy:       s,
		Rewritten:      rw.Program.Format(),
		RewrittenQuery: ast.FormatQuery(p.bank, rw.Query),
		Stats:          statsFromEngine(res.Stats),
		RuleProfile:    ruleProfileFromEngine(res.Rules),
	}
	asp.End(obsv.A("rows", int64(len(out.Answers))))
	for c := range rw.CountingPreds {
		if rel := res.Relation(c); rel != nil {
			out.Stats.CountingNodes += rel.Len()
		}
	}
	for ap := range rw.AnswerPreds {
		if rel := res.Relation(ap); rel != nil {
			out.Stats.AnswerTuples += rel.Len()
		}
	}
	return out, nil
}

// statsFromRuntime converts counting-runtime stats to the public shape.
func statsFromRuntime(s counting.RuntimeStats) Stats {
	return Stats{
		Inferences:    s.Moves,
		Probes:        s.Probes,
		CountingNodes: s.CountingNodes,
		AnswerTuples:  s.AnswerTuples,
		DerivedFacts:  int64(s.AnswerTuples + s.CountingNodes),
		ArenaValues:   s.ArenaValues,
	}
}

func evalRuntime(ctx context.Context, p *Program, db *database.Database, q ast.Query, cfg evalConfig) (*Result, error) {
	adsp := cfg.tracer.Begin("eval", "adorn")
	a, err := adorn.Adorn(p.program, q)
	adsp.End()
	if err != nil {
		return nil, err
	}
	if len(a.Program.Rules) == 0 {
		return evalDirect(ctx, p, db, q, SemiNaive, cfg)
	}
	ansp := cfg.tracer.Begin("eval", "rewrite:counting-runtime")
	an, err := counting.Analyze(a)
	ansp.End()
	if err != nil {
		return nil, err
	}
	maxTuples := cfg.maxCountingTuples
	if maxTuples == 0 {
		maxTuples = cfg.maxFacts
	}
	ropts := counting.RuntimeOptions{MaxTuples: maxTuples, Inject: cfg.inject, Tracer: cfg.tracer}
	if cfg.statsSink != nil {
		rs := new(counting.RuntimeStats)
		ropts.StatsOut = rs
		defer func() { *cfg.statsSink = statsFromRuntime(*rs) }()
	}
	rres, err := counting.RunContext(ctx, an, db, ropts)
	if err != nil {
		return nil, err
	}
	asp := cfg.tracer.Begin("eval", "answers")
	tuples := counting.ReconstructRuntimeAnswers(an, rres.Answers)
	out := &Result{
		Answers:        finishRows(p, tuples),
		Strategy:       CountingRuntime,
		Rewritten:      counting.RewriteCyclicText(an),
		RewrittenQuery: strings.TrimSpace(ast.FormatQuery(p.bank, a.Query)),
		Stats:          statsFromRuntime(rres.Stats),
	}
	asp.End(obsv.A("rows", int64(len(out.Answers))))
	return out, nil
}

// evalMagicCounting implements the magic-counting hybrid (reference [16]):
// probe the left-part graph; run the reduced counting program when it is
// acyclic, magic sets otherwise.
func evalMagicCounting(ctx context.Context, p *Program, db *database.Database, q ast.Query, cfg evalConfig) (*Result, error) {
	a, err := adorn.Adorn(p.program, q)
	if err != nil {
		return nil, err
	}
	if len(a.Program.Rules) == 0 {
		return evalDirect(ctx, p, db, q, SemiNaive, cfg)
	}
	an, err := counting.Analyze(a)
	if err != nil {
		// Outside the counting class (e.g. non-linear): plain magic.
		return evalMagic(ctx, p, db, q, Magic, cfg)
	}
	probe, err := counting.ProbeLeftGraphContext(ctx, an, db, cfg.maxFacts)
	if err != nil {
		return nil, err
	}
	var res *Result
	if probe.Acyclic && an.ListRewriteSafe() {
		res, err = evalCounting(ctx, p, db, q, CountingReduced, cfg)
	} else {
		res, err = evalMagic(ctx, p, db, q, Magic, cfg)
	}
	if err != nil {
		return nil, err
	}
	res.Strategy = MagicCounting
	return res, nil
}

// Plan returns the evaluation plan — strata in execution order and, per
// rule, the compiled join order with index probe patterns — of the program
// a strategy would evaluate for the query. When db is non-nil its relation
// cardinalities participate in the join ordering, as during evaluation.
// Not available for MagicCounting (data-dependent) or CountingRuntime
// (not evaluated by the rule engine).
func Plan(p *Program, db *Database, query string, strategy Strategy) (string, error) {
	if db != nil && db.owner != p {
		return "", ErrWrongDatabase
	}
	q, err := parser.ParseQuery(p.bank, query)
	if err != nil {
		return "", err
	}
	if strategy == Auto {
		strategy = resolveAuto(p, q)
	}
	var dbi *database.Database
	if db != nil {
		dbi = db.db
	}
	switch strategy {
	case Naive, SemiNaive:
		return engine.PlanText(p.program, dbi)
	case CountingRuntime:
		return "", errors.New("lincount: the counting runtime is not evaluated by the rule engine; see Rewrite for its declarative form")
	case MagicCounting:
		return "", errors.New("lincount: magic-counting chooses its rewriting from the data; plan the Magic or CountingReduced strategy instead")
	}
	prog, _, err := rewriteAST(p, q, strategy)
	if err != nil {
		return "", err
	}
	return engine.PlanText(prog, dbi)
}

// rewriteAST produces the rewritten program for an engine-evaluated
// strategy, sharing p's term bank.
func rewriteAST(p *Program, q ast.Query, strategy Strategy) (*ast.Program, ast.Query, error) {
	a, err := adorn.Adorn(p.program, q)
	if err != nil {
		return nil, ast.Query{}, err
	}
	switch strategy {
	case Magic:
		rw, err := magic.Rewrite(a)
		if err != nil {
			return nil, ast.Query{}, err
		}
		return rw.Program, rw.Query, nil
	case MagicSup:
		rw, err := magic.RewriteSupplementary(a)
		if err != nil {
			return nil, ast.Query{}, err
		}
		return rw.Program, rw.Query, nil
	case CountingClassic:
		rw, err := counting.RewriteClassic(a)
		if err != nil {
			return nil, ast.Query{}, err
		}
		return rw.Program, rw.Query, nil
	case Counting:
		rw, err := counting.RewriteExtended(a)
		if err != nil {
			return nil, ast.Query{}, err
		}
		return rw.Program, rw.Query, nil
	case CountingReduced:
		rw, err := counting.RewriteExtended(a)
		if err != nil {
			return nil, ast.Query{}, err
		}
		rw = counting.Reduce(rw)
		return rw.Program, rw.Query, nil
	}
	return nil, ast.Query{}, fmt.Errorf("lincount: no rule-engine rewriting for strategy %v", strategy)
}

// statsFromQSQ converts QSQ stats to the public shape.
func statsFromQSQ(s topdown.Stats) Stats {
	return Stats{
		Iterations:    s.Passes,
		Inferences:    s.Inferences,
		DerivedFacts:  int64(s.AnswerTuples),
		Probes:        s.Probes,
		CountingNodes: s.InputTuples, // the subquery (magic) set
		AnswerTuples:  s.AnswerTuples,
		ArenaValues:   s.ArenaValues,
	}
}

// evalQSQ runs the top-down Query-SubQuery method.
func evalQSQ(ctx context.Context, p *Program, db *database.Database, q ast.Query, cfg evalConfig) (*Result, error) {
	adsp := cfg.tracer.Begin("eval", "adorn")
	a, err := adorn.Adorn(p.program, q)
	adsp.End()
	if err != nil {
		return nil, err
	}
	if len(a.Program.Rules) == 0 {
		return evalDirect(ctx, p, db, q, SemiNaive, cfg)
	}
	topts := topdown.Options{MaxPasses: cfg.maxIterations, Inject: cfg.inject, Tracer: cfg.tracer}
	if cfg.statsSink != nil {
		ts := new(topdown.Stats)
		topts.StatsOut = ts
		defer func() { *cfg.statsSink = statsFromQSQ(*ts) }()
	}
	// Facts embedded in the program are fact rules of adorned predicates
	// (Adorn treats every rule head as derived), so QSQ reads them
	// through its answer sets; only db supplies extensional relations.
	res, err := topdown.EvalContext(ctx, a, db, topts)
	if err != nil {
		return nil, err
	}
	return &Result{
		Answers:  finishRows(p, res.Answers),
		Strategy: QSQ,
		Stats:    statsFromQSQ(res.Stats),
	}, nil
}

// Rewrite returns the rewritten program and goal text for a strategy
// without evaluating it. For Naive and SemiNaive it returns the original
// program.
func Rewrite(p *Program, query string, strategy Strategy) (program, goal string, err error) {
	q, err := parser.ParseQuery(p.bank, query)
	if err != nil {
		return "", "", err
	}
	if strategy == Auto {
		strategy = resolveAuto(p, q)
	}
	switch strategy {
	case Naive, SemiNaive:
		return p.program.Format(), ast.FormatQuery(p.bank, q), nil
	case MagicCounting:
		return "", "", errors.New("lincount: magic-counting chooses its rewriting from the data; use Eval and inspect Result.Rewritten")
	}
	if strategy == CountingRuntime {
		a, err := adorn.Adorn(p.program, q)
		if err != nil {
			return "", "", err
		}
		an, err := counting.Analyze(a)
		if err != nil {
			return "", "", err
		}
		return counting.RewriteCyclicText(an), ast.FormatQuery(p.bank, a.Query), nil
	}
	prog, goalQ, err := rewriteAST(p, q, strategy)
	if err != nil {
		return "", "", err
	}
	return prog.Format(), ast.FormatQuery(p.bank, goalQ), nil
}
