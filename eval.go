package lincount

import (
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"runtime/debug"
	"sort"
	"sync/atomic"
	"time"

	"lincount/internal/ast"
	"lincount/internal/counting"
	"lincount/internal/database"
	"lincount/internal/engine"
	"lincount/internal/faultinject"
	"lincount/internal/limits"
	"lincount/internal/magic"
	"lincount/internal/obsv"
	"lincount/internal/parser"
	"lincount/internal/plan"
	"lincount/internal/symtab"
	"lincount/internal/topdown"
)

// Option tunes an evaluation.
type Option func(*evalConfig)

type evalConfig struct {
	maxIterations     int
	maxFacts          int
	maxCountingTuples int
	maxDuration       time.Duration
	parallel          bool
	joinWorkers       int
	noBatch           bool
	noCache           bool
	trace             func(TraceEvent)
	faultSeed         int64
	faultSpec         string
	inject            *faultinject.Injector
	tracer            *obsv.Tracer
	profile           bool
	progress          *atomic.Int64
	// statsSink, when non-nil, receives the evaluation's work counters
	// even when it fails partway — the partial stats of a degraded
	// attempt. Always non-nil below evalCore (it points at a local
	// there when no caller supplied one).
	statsSink *Stats

	// Compilation state threaded by the facade once per evaluation: the
	// normalized query text (the plan-cache key's query component), the
	// shared adornment/analysis every candidate strategy compiles
	// against, and the fingerprint of the plan-relevant options above —
	// computed from the caller-supplied values before any per-attempt
	// budget adjustment, so Auto fallback attempts share cache entries
	// with explicit evaluations of the same options.
	queryText string
	shared    *plan.Shared
	optsFP    uint64
}

// WithParallel evaluates independent strata concurrently (engine
// strategies). Strata whose rules build compound terms still run
// sequentially. The WithMaxDerivedFacts cap stays global (the strata
// share one atomic fact counter), and the first error or cancellation
// cancels the sibling strata, which drain before Eval returns.
func WithParallel() Option {
	return func(c *evalConfig) { c.parallel = true }
}

// WithJoinWorkers partitions wide rule runs of the engine strategies
// across n workers: the delta RowID window of a rule's source literal is
// split into contiguous sub-ranges evaluated concurrently into private
// buffers and merged in partition order, so results — including head
// relation row order — are byte-identical to a serial evaluation. Rules
// that build compound terms always run serially, as do narrow windows
// (the fork overhead would dominate). 0 or 1 disables partitioning.
// Composes with WithParallel: strata run concurrently and wide rules
// within a stratum partition further.
func WithJoinWorkers(n int) Option {
	return func(c *evalConfig) { c.joinWorkers = n }
}

// WithBatchedJoin toggles the batched streaming join pipeline of the
// engine strategies (on by default): rule bodies execute as a pipeline
// of operators over batches of binding frames, probing literals through
// cached pre-sized index handles. Passing false falls back to the
// tuple-at-a-time path — the differential-testing oracle and benchmark
// baseline. Fixpoints are identical either way.
func WithBatchedJoin(on bool) Option {
	return func(c *evalConfig) { c.noBatch = !on }
}

// WithoutPlanCache makes this evaluation bypass the program's plan
// cache entirely: nothing is looked up and nothing is stored, so every
// compilation pass runs from scratch. This is the cold path —
// benchmarks use it to measure compilation cost, and it is the escape
// hatch if a cached plan is ever suspected of misbehaving.
func WithoutPlanCache() Option {
	return func(c *evalConfig) { c.noCache = true }
}

// TraceEvent is one step of an evaluation trace: a stratum starting
// ("component") or one fixpoint round ("iteration").
type TraceEvent struct {
	Kind       string
	Preds      []string
	Iteration  int
	DeltaFacts int64
	TotalFacts int64
}

// WithTrace streams per-component and per-iteration events of the engine
// strategies to fn — an EXPLAIN ANALYZE for the fixpoint. The counting
// runtime (Algorithm 2) is not iteration-based and emits no events.
func WithTrace(fn func(TraceEvent)) Option {
	return func(c *evalConfig) { c.trace = fn }
}

// Tracer records a structured trace of an evaluation: spans for the
// facade phases (parse, plan, the compile passes, answers), engine
// components, fixpoint iterations and rule runs, counting-runtime
// phases and worklist progress, QSQ passes, and each Auto fallback
// attempt. A nil *Tracer is a valid disabled tracer whose hook sites
// cost one pointer comparison. Render the result with WriteText or
// WriteChromeJSON (Chrome trace-event JSON, loadable in chrome://tracing
// and Perfetto).
type Tracer = obsv.Tracer

// NewTracer returns an empty Tracer ready to pass to WithTracer.
func NewTracer() *Tracer { return obsv.NewTracer() }

// WithTracer records the evaluation's structured trace into t and
// enables per-rule profiling (Result.RuleProfile). Tracing is opt-in:
// without this option the hook sites are single nil checks and the
// evaluation allocates nothing extra.
func WithTracer(t *Tracer) Option {
	return func(c *evalConfig) { c.tracer = t }
}

// WithRuleProfile enables per-rule profiling (Result.RuleProfile) for
// the engine strategies without recording a trace: runs, inferences,
// derived tuples and wall-clock time per rule. Cheaper than WithTracer
// (clock reads per rule run, no event buffer) — the query server's
// slow-query log uses it to attribute a slow request's time. Like the
// other observers it does not participate in the plan-cache key.
func WithRuleProfile() Option {
	return func(c *evalConfig) { c.profile = true }
}

// WithFactProgress mirrors the evaluation's derived-fact count into c
// as it grows (one atomic add per derived tuple) so a concurrent
// observer — the query server's active-query registry — can report
// facts-so-far for an in-flight evaluation. Engine strategies only; the
// counting runtime and QSQ report their work in Stats when done. The
// counter is not reset: pass a fresh one per evaluation. Excluded from
// the plan-cache key like every observer.
func WithFactProgress(c *atomic.Int64) Option {
	return func(cc *evalConfig) { cc.progress = c }
}

// WithMaxIterations bounds fixpoint iterations (engine strategies).
func WithMaxIterations(n int) Option {
	return func(c *evalConfig) { c.maxIterations = n }
}

// WithMaxDerivedFacts bounds the number of derived tuples. This is the
// evaluation's shared budget: under Auto it is charged across every
// degradation attempt (a fallback only gets what the failed attempts
// left), so the cap holds for the evaluation as a whole.
func WithMaxDerivedFacts(n int) Option {
	return func(c *evalConfig) { c.maxFacts = n }
}

// WithMaxCountingTuples bounds the counting runtime's tuple arena
// (counting nodes + answer tuples, which carry the method's path
// arguments) independently of the shared WithMaxDerivedFacts budget. It
// is a strategy-specific budget: when a CountingRuntime evaluation under
// Auto trips it, the facade falls back to the next strategy in the chain
// instead of failing, charging the tuples consumed against the shared
// budget. Zero means the counting runtime uses the shared budget (or its
// own default).
func WithMaxCountingTuples(n int) Option {
	return func(c *evalConfig) { c.maxCountingTuples = n }
}

// WithFaultInjection arms deterministic fault injection for this
// evaluation: spec is a comma-separated schedule of clauses
// "site=kind@N" (fire on the Nth hit) or "site=kind~P" (fire with
// probability P per hit, seeded by seed), where kind is err, delay
// (with a ":duration" suffix) or cancel, and site names an evaluator
// hook point (engine.insert, engine.probe, engine.iter, counting.node,
// counting.step, topdown.probe, topdown.pass, or * for all).
//
// Injected errors match errors.Is(err, ErrInjectedFault) and are
// retryable for the Auto degradation chain; injected cancellations
// surface as CanceledError whose cause is ErrInjectedFault. A malformed
// spec fails the evaluation before any work is done. This is the chaos
// harness's entry point — production evaluations simply omit the option
// and pay nothing.
func WithFaultInjection(seed int64, spec string) Option {
	return func(c *evalConfig) { c.faultSeed, c.faultSpec = seed, spec }
}

// WithMaxDuration bounds the wall-clock time of the evaluation: the
// context is wrapped with a deadline d from the start of Eval, and the
// evaluation returns a CanceledError wrapping context.DeadlineExceeded
// once it expires. Composes with EvalContext — whichever deadline is
// earlier wins.
func WithMaxDuration(d time.Duration) Option {
	return func(c *evalConfig) { c.maxDuration = d }
}

// Eval evaluates query ("?- goal(args).") against p and db with the given
// strategy. Every strategy returns the same answer rows; explicit
// strategies return an error when they are not applicable to the program
// (Auto always picks an applicable one).
func Eval(p *Program, db *Database, query string, strategy Strategy, opts ...Option) (*Result, error) {
	return EvalContext(context.Background(), p, db, query, strategy, opts...)
}

// EvalContext is Eval governed by a context: every strategy polls ctx
// cooperatively (per fixpoint iteration and every few thousand
// inferences or probes) and returns an error wrapping context.Cause(ctx)
// shortly after it is done — cancel it, give it a deadline, or wire it
// to a signal to interrupt a divergent query. A context that can never
// be canceled adds no per-inference cost.
//
// Evaluation errors come in three distinguishable families:
// errors.Is(err, ErrResourceLimit) for budget trips (see
// ResourceLimitError), errors.Is(err, context.Canceled) /
// errors.Is(err, context.DeadlineExceeded) for interruptions, and
// *InternalError for panics recovered at this boundary.
//
// Repeated evaluations of the same query text on the same Program hit
// the program's plan cache and skip compilation (adornment, analysis,
// rewrite); see Prepare for the explicit prepared-query API.
func EvalContext(ctx context.Context, p *Program, db *Database, query string, strategy Strategy, opts ...Option) (*Result, error) {
	cfg := evalConfig{}
	for _, o := range opts {
		o(&cfg)
	}
	esp := cfg.tracer.Begin("eval", "eval")
	defer esp.End()
	psp := cfg.tracer.Begin("eval", "parse")
	q, err := parser.ParseQuery(p.bank, query)
	psp.End()
	if err != nil {
		return nil, fmt.Errorf("lincount: parsing query: %w", err)
	}
	return evalCore(ctx, p, db, q, strategy, cfg)
}

// evalCore is everything after query parsing: plan (for Auto), compile
// through the plan cache, execute, record. It is shared between
// EvalContext and PreparedQuery.EvalContext (which parsed at Prepare
// time).
func evalCore(ctx context.Context, p *Program, db *Database, q ast.Query, strategy Strategy, cfg evalConfig) (*Result, error) {
	if db != nil && db.owner != p {
		return nil, ErrWrongDatabase
	}
	if ctx == nil {
		ctx = context.Background()
	}
	if cfg.faultSpec != "" {
		inj, err := faultinject.ParseSpec(cfg.faultSeed, cfg.faultSpec)
		if err != nil {
			return nil, fmt.Errorf("lincount: %w", err)
		}
		cfg.inject = inj
	}
	if cfg.maxDuration > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, cfg.maxDuration)
		defer cancel()
	}
	if cfg.inject.WantsCancel() {
		// Injected cancellation storms flow through the ordinary
		// cooperative-cancellation machinery, with ErrInjectedFault as
		// the context cause so callers can tell them from real Ctrl-Cs.
		var cancel context.CancelCauseFunc
		ctx, cancel = context.WithCancelCause(ctx)
		defer cancel(nil)
		cfg.inject.BindCancel(func() { cancel(faultinject.ErrInjected) })
	}
	var sink Stats
	if cfg.statsSink == nil {
		cfg.statsSink = &sink
	}
	// A context that is already done returns promptly, before any
	// compilation or evaluation work.
	if err := ctx.Err(); err != nil {
		return nil, &CanceledError{Component: "lincount", Cause: context.Cause(ctx)}
	}
	var dbi *database.Database
	if db != nil {
		dbi = db.db
	}

	cfg.queryText = ast.FormatQuery(p.bank, q)
	cfg.optsFP = cfg.fingerprint()
	cfg.shared = p.sharedFor(cfg.queryText, q, cfg.noCache)
	cfg.shared.SetStats(p.statsFunc(dbi))

	resolved := strategy
	var chain []Strategy
	if strategy == Auto {
		plsp := cfg.tracer.Begin("eval", "plan")
		choices := plan.Rank(cfg.shared, p.statsFunc(dbi))
		plsp.End(obsv.A("candidates", int64(len(choices))))
		chain = make([]Strategy, len(choices))
		for i, c := range choices {
			chain[i] = c.Strategy
		}
		resolved = chain[0]
		obsv.MPlannerChoices.Add(resolved.String(), 1)
	}

	start := time.Now()
	var res *Result
	var err error
	if strategy == Auto {
		res, err = evalAuto(ctx, p, dbi, chain, cfg)
	} else {
		res, _, err = evalResolved(ctx, p, dbi, strategy, cfg)
	}
	dur := time.Since(start)
	if err != nil {
		recordEval(resolved, *cfg.statsSink, 0, cfg.inject.Fired(), dur, err)
		return nil, err
	}
	res.Resolved = resolved
	res.Stats.Duration = dur
	recordEval(res.Strategy, res.Stats, len(res.Degraded), cfg.inject.Fired(), dur, nil)
	return res, nil
}

// fingerprint hashes the options that are part of a plan's cache key.
// Compiled plans do not actually depend on budgets — they are pure
// functions of (program, query, strategy) — but keying on the options
// keeps an entry's observable behavior identical across hits and makes
// option changes an explicit cache miss, which is cheap insurance and
// easy to reason about. Observers (tracer, trace fn, stats sink) and
// cache-control flags are deliberately excluded.
func (c *evalConfig) fingerprint() uint64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "%d|%d|%d|%d|%t|%d|%t|%d|%s",
		c.maxIterations, c.maxFacts, c.maxCountingTuples, c.maxDuration,
		c.parallel, c.joinWorkers, c.noBatch, c.faultSeed, c.faultSpec)
	return h.Sum64()
}

// sharedFor returns the shared compilation state for a query, reusing
// the cached one so every strategy (and every Auto fallback attempt)
// adorns and analyzes at most once per query text.
func (p *Program) sharedFor(qtext string, q ast.Query, noCache bool) *plan.Shared {
	if noCache || p.plans == nil {
		return plan.NewShared(p.program, q)
	}
	return p.plans.SharedFor(qtext, func() *plan.Shared {
		return plan.NewShared(p.program, q)
	})
}

// statsFunc supplies the planner's per-predicate cardinalities: base
// facts in the database plus fact rules embedded in the program source
// (the REPL's facts live there).
func (p *Program) statsFunc(dbi *database.Database) plan.StatsFunc {
	facts := p.programFactCounts()
	return func(pred symtab.Sym) int64 {
		n := facts[pred]
		if dbi != nil {
			if rel := dbi.Relation(pred); rel != nil {
				n += int64(rel.Len())
			}
		}
		return n
	}
}

// planFor returns the compiled plan for a strategy, consulting the
// program's plan cache unless the evaluation opted out. It reports
// whether the plan was a cache hit and how long compilation took (zero
// on a hit). Compile failures are returned without being cached.
func (p *Program) planFor(s Strategy, cfg evalConfig) (cq *plan.CompiledQuery, hit bool, compileTime time.Duration, err error) {
	useCache := !cfg.noCache && p.plans != nil
	key := plan.Key{Query: cfg.queryText, Strategy: s, Opts: cfg.optsFP}
	if useCache {
		if cq, ok := p.plans.Get(key); ok {
			obsv.MPlanCacheHits.Add(1)
			sp := cfg.tracer.Begin("eval", "compile:"+s.String())
			sp.End(obsv.A("cache_hit", 1))
			return cq, true, 0, nil
		}
		obsv.MPlanCacheMisses.Add(1)
	}
	csp := cfg.tracer.Begin("eval", "compile:"+s.String())
	start := time.Now()
	cq, err = plan.Compile(cfg.shared, s, cfg.tracer)
	compileTime = time.Since(start)
	csp.End(obsv.A("cache_hit", 0))
	if err != nil {
		return nil, false, compileTime, err
	}
	obsv.MCompileDuration.Observe(compileTime.Seconds())
	if useCache {
		p.plans.Put(key, cq)
	}
	return cq, false, compileTime, nil
}

// recordEval folds one finished evaluation — successful or not — into
// the process-wide metrics registry (served at /metrics when a CLI runs
// with -obs). The fold is a fixed handful of atomic adds; it is recorded
// unconditionally.
func recordEval(s Strategy, st Stats, degradations int, faultHits uint64, dur time.Duration, err error) {
	obsv.RecordEval(obsv.EvalSample{
		Strategy:      s.String(),
		Inferences:    st.Inferences,
		Probes:        st.Probes,
		DerivedFacts:  st.DerivedFacts,
		AnswerTuples:  int64(st.AnswerTuples),
		ArenaValues:   st.ArenaValues,
		CountingNodes: int64(st.CountingNodes),
		Degradations:  int64(degradations),
		FaultHits:     int64(faultHits),
		Duration:      dur,
		ErrClass:      errClass(err),
	})
}

func boolArg(b bool) int64 {
	if b {
		return 1
	}
	return 0
}

// errClass maps an evaluation error to its metrics label: "" (success),
// "limit", "canceled", "internal", or "other".
func errClass(err error) string {
	if err == nil {
		return ""
	}
	var ce *CanceledError
	var ie *InternalError
	switch {
	case errors.Is(err, ErrResourceLimit):
		return "limit"
	case errors.As(err, &ce), errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
		return "canceled"
	case errors.As(err, &ie):
		return "internal"
	default:
		return "other"
	}
}

// evalAuto runs the Auto degradation chain — the planner's ranking, best
// estimate first — until one strategy succeeds or the chain is
// exhausted. A failed attempt retries with the next strategy only on a
// retryable error (a resource-limit trip, an injected fault, or a
// recovered internal panic) or when the strategy turned out not to
// cover the program; non-retryable errors (cancellation, deadline,
// semantic errors) fail fast. The shared derived-fact budget is charged
// across attempts — a fallback only gets what the failed attempts
// measurably left — and every attempt compiles through the shared
// analysis and the plan cache, so retries never re-adorn. Failed
// attempts are recorded in Result.Degraded with compile and execute
// time split out.
func evalAuto(ctx context.Context, p *Program, dbi *database.Database, chain []Strategy, cfg evalConfig) (*Result, error) {
	var attempts []AttemptInfo
	remaining := int64(cfg.maxFacts) // shared budget; 0 = per-attempt defaults
	for i, s := range chain {
		acfg := cfg
		if cfg.maxFacts > 0 {
			acfg.maxFacts = int(remaining)
		}
		// Each attempt gets its own stats sink so a failed attempt's
		// partial work counters survive into AttemptInfo.Stats.
		var attemptStats Stats
		acfg.statsSink = &attemptStats
		asp := cfg.tracer.Begin("eval", "attempt:"+s.String())
		attemptStart := time.Now()
		res, timing, err := evalResolved(ctx, p, dbi, s, acfg)
		asp.End(obsv.A("failed", boolArg(err != nil)))
		if cfg.statsSink != nil {
			*cfg.statsSink = attemptStats
		}
		if err == nil {
			res.Degraded = attempts
			return res, nil
		}
		if i == len(chain)-1 {
			return nil, err
		}
		if !retryableError(err) && !notApplicableError(err) {
			return nil, err
		}
		if ctx.Err() != nil {
			// The evaluation as a whole is canceled or out of time;
			// retrying would only fail the same way.
			return nil, err
		}
		attempts = append(attempts, AttemptInfo{
			Strategy:     s,
			Err:          err.Error(),
			Duration:     time.Since(attemptStart),
			Compile:      timing.compile,
			Execute:      timing.execute,
			PlanCacheHit: timing.cacheHit,
			Stats:        attemptStats,
		})
		if cfg.maxFacts > 0 {
			// Charge what the failed attempt measurably consumed (its
			// derived-fact or counting-tuple usage); attempts that failed
			// before tripping a counted budget charge nothing.
			var rle *ResourceLimitError
			if errors.As(err, &rle) && (rle.Kind == LimitFacts || rle.Kind == LimitTuples) {
				remaining -= rle.Used
				if remaining <= 0 {
					return nil, err
				}
			}
		}
	}
	// Unreachable: the loop returns on the last chain element.
	return nil, errors.New("lincount: empty fallback chain")
}

// retryableError reports whether a failed attempt may be retried with
// another strategy: resource-limit trips (the strategy's work shape blew
// a budget another strategy may stay within), injected faults, and
// recovered internal panics. Cancellations and semantic errors are not
// retryable.
func retryableError(err error) bool {
	var ce *CanceledError
	if errors.As(err, &ce) {
		return false
	}
	var ie *InternalError
	return errors.Is(err, ErrResourceLimit) ||
		errors.Is(err, faultinject.ErrInjected) ||
		errors.As(err, &ie)
}

// notApplicableError reports errors meaning "this strategy does not
// cover the program" — within the fallback chain these skip to the next
// strategy rather than failing the evaluation.
func notApplicableError(err error) bool {
	return errors.Is(err, counting.ErrNotLinear) ||
		errors.Is(err, counting.ErrNotApplicable) ||
		errors.Is(err, counting.ErrNoBoundArgs) ||
		errors.Is(err, magic.ErrNoBoundArgs) ||
		errors.Is(err, topdown.ErrUnsupported)
}

// FallbackChain reports the strategy order Auto would try for the query:
// the first element is the planner's pick (ranked without database
// statistics — pass a database via PlannerChoices to see data-informed
// estimates), the rest are the graceful-degradation fallbacks in order.
// Explicit strategies never degrade.
func FallbackChain(p *Program, query string) ([]Strategy, error) {
	choices, err := PlannerChoices(p, nil, query)
	if err != nil {
		return nil, err
	}
	out := make([]Strategy, len(choices))
	for i, c := range choices {
		out[i] = c.Strategy
	}
	return out, nil
}

// PlannerChoice is one entry of the Auto planner's ranking: a candidate
// strategy whose applicability gates passed, its estimated cost in
// visited-fact units (comparable within one ranking; lower is better),
// and the reasoning behind the estimate.
type PlannerChoice struct {
	Strategy Strategy
	Cost     float64
	Reason   string
}

// PlannerChoices ranks the candidate strategies for the query the way
// Auto would: by estimated cost from the shared linearity analysis and
// the per-relation cardinalities of db (and of facts embedded in the
// program). With a nil db the ranking is purely structural. The first
// choice is what Auto resolves to; the rest is its degradation chain.
func PlannerChoices(p *Program, db *Database, query string) ([]PlannerChoice, error) {
	if db != nil && db.owner != p {
		return nil, ErrWrongDatabase
	}
	q, err := parser.ParseQuery(p.bank, query)
	if err != nil {
		return nil, fmt.Errorf("lincount: parsing query: %w", err)
	}
	var dbi *database.Database
	if db != nil {
		dbi = db.db
	}
	sh := p.sharedFor(ast.FormatQuery(p.bank, q), q, false)
	ranked := plan.Rank(sh, p.statsFunc(dbi))
	out := make([]PlannerChoice, len(ranked))
	for i, c := range ranked {
		out[i] = PlannerChoice{Strategy: c.Strategy, Cost: c.Cost, Reason: c.Reason}
	}
	return out, nil
}

// attemptTiming splits one attempt's wall time into its compile and
// execute shares.
type attemptTiming struct {
	compile  time.Duration
	execute  time.Duration
	cacheHit bool
}

// evalResolved compiles (through the plan cache) and executes one
// concrete strategy, with panic containment: a panic in a compilation
// pass or an evaluator is recovered here and returned as
// *InternalError, so one bad query cannot crash a process embedding the
// library. Panics that arose inside parallel strata goroutines arrive
// as *limits.PanicError and are converted to the same public type.
func evalResolved(ctx context.Context, p *Program, dbi *database.Database, resolved Strategy, cfg evalConfig) (res *Result, timing attemptTiming, err error) {
	defer func() {
		if r := recover(); r != nil {
			res, err = nil, &InternalError{Strategy: resolved, Value: r, Stack: string(debug.Stack())}
		}
	}()
	cq, hit, compileTime, err := p.planFor(resolved, cfg)
	timing.compile, timing.cacheHit = compileTime, hit
	if err != nil {
		return nil, timing, err
	}
	execStart := time.Now()
	res, err = executeCompiled(ctx, p, dbi, cq, cfg)
	timing.execute = time.Since(execStart)
	var pe *limits.PanicError
	if errors.As(err, &pe) {
		res, err = nil, &InternalError{Strategy: resolved, Value: pe.Value, Stack: string(pe.Stack)}
	}
	if res != nil {
		res.CompileTime = timing.compile
		res.PlanCacheHit = hit
	}
	return res, timing, err
}

// executeCompiled runs a compiled plan against the database. This is
// the execute half of the compile-then-execute split: everything
// data-independent already happened in plan.Compile.
func executeCompiled(ctx context.Context, p *Program, dbi *database.Database, cq *plan.CompiledQuery, cfg evalConfig) (*Result, error) {
	if cq.Extensional {
		// Purely extensional goal: every strategy delegates to
		// semi-naive evaluation of the original program.
		return execEngine(ctx, p, dbi, cq, SemiNaive, false, cfg)
	}
	switch cq.Strategy {
	case Naive:
		return execEngine(ctx, p, dbi, cq, Naive, true, cfg)
	case SemiNaive, Magic, MagicSup, CountingClassic, Counting, CountingReduced:
		return execEngine(ctx, p, dbi, cq, cq.Strategy, false, cfg)
	case CountingRuntime:
		return execRuntime(ctx, p, dbi, cq, cfg)
	case QSQ:
		return execQSQ(ctx, p, dbi, cq, cfg)
	case MagicCounting:
		return execMagicCounting(ctx, p, dbi, cq, cfg)
	default:
		return nil, fmt.Errorf("lincount: unknown strategy %v", cq.Strategy)
	}
}

func engineOpts(cfg evalConfig, naive bool) engine.Options {
	opts := engine.Options{
		Naive:           naive,
		MaxIterations:   cfg.maxIterations,
		MaxDerivedFacts: cfg.maxFacts,
		Parallel:        cfg.parallel,
		JoinWorkers:     cfg.joinWorkers,
		NoBatch:         cfg.noBatch,
		Inject:          cfg.inject,
		Tracer:          cfg.tracer,
		Profile:         cfg.profile,
		FactProgress:    cfg.progress,
	}
	// Thread the planner's cardinality estimator through so the engine
	// pre-sizes head relations and join indexes to their expected
	// cardinality instead of growing into them.
	if cfg.shared != nil {
		if st := cfg.shared.Stats(); st != nil {
			opts.Sizes = engine.SizeHint(st)
		}
	}
	if cfg.trace != nil {
		fn := cfg.trace
		opts.Trace = func(e engine.TraceEvent) {
			fn(TraceEvent{
				Kind:       e.Kind,
				Preds:      e.Preds,
				Iteration:  e.Iteration,
				DeltaFacts: e.DeltaFacts,
				TotalFacts: e.TotalFacts,
			})
		}
	}
	return opts
}

func statsFromEngine(s engine.Stats) Stats {
	return Stats{
		Iterations:   s.Iterations,
		Inferences:   s.Inferences,
		DerivedFacts: s.DerivedFacts,
		Probes:       s.Probes,
		ArenaValues:  s.ArenaValues,
	}
}

// finishRows formats, dedupes and sorts answer tuples.
func finishRows(p *Program, tuples []database.Tuple) [][]string {
	rows := make([][]string, 0, len(tuples))
	seen := map[string]bool{}
	for _, t := range tuples {
		row := p.formatTuple(t)
		k := answerKey(row)
		if !seen[k] {
			seen[k] = true
			rows = append(rows, row)
		}
	}
	sort.Slice(rows, func(i, j int) bool {
		return answerKey(rows[i]) < answerKey(rows[j])
	})
	return rows
}

// ruleProfileFromEngine converts the engine's per-rule profiles to the
// public type (nil in, nil out).
func ruleProfileFromEngine(rs []engine.RuleStat) []RuleProfile {
	if len(rs) == 0 {
		return nil
	}
	out := make([]RuleProfile, len(rs))
	for i, r := range rs {
		out[i] = RuleProfile{
			Rule: r.Rule, Runs: r.Runs,
			Inferences: r.Inferences, DerivedFacts: r.DerivedFacts,
			Duration: r.Duration,
		}
	}
	return out
}

// sinkEngineStats wires an engine stats sink into eopts so partial work
// counters survive a failed evaluation; the returned flush copies them
// into cfg.statsSink and must run before the caller returns.
func sinkEngineStats(cfg evalConfig, eopts *engine.Options) func() {
	if cfg.statsSink == nil {
		return func() {}
	}
	es := new(engine.Stats)
	eopts.StatsOut = es
	return func() { *cfg.statsSink = statsFromEngine(*es) }
}

// execEngine evaluates an engine-compiled plan (direct, magic and
// counting families) bottom-up and reads answers at the plan's entry
// query, reconstructing them through the counting rewrite's answer
// predicates when the plan carries one.
func execEngine(ctx context.Context, p *Program, dbi *database.Database, cq *plan.CompiledQuery, outStrategy Strategy, naive bool, cfg evalConfig) (*Result, error) {
	eopts := engineOpts(cfg, naive)
	defer sinkEngineStats(cfg, &eopts)()
	res, err := engine.EvalContext(ctx, cq.Program, dbi, eopts)
	if err != nil {
		return nil, err
	}
	asp := cfg.tracer.Begin("eval", "answers")
	entry := cq.EntryQuery
	tuples := engine.Answers(res, dbi, entry)
	counted := cq.Counting
	if cq.Extensional {
		counted = nil
	}
	if counted != nil {
		tuples = counted.ReconstructAnswers(tuples)
	}
	out := &Result{
		Answers:        finishRows(p, tuples),
		Strategy:       outStrategy,
		Rewritten:      cq.RewrittenText,
		RewrittenQuery: cq.RewrittenQueryText,
		Stats:          statsFromEngine(res.Stats),
		RuleProfile:    ruleProfileFromEngine(res.Rules),
	}
	asp.End(obsv.A("rows", int64(len(out.Answers))))
	switch {
	case counted != nil:
		for c := range counted.CountingPreds {
			if rel := res.Relation(c); rel != nil {
				out.Stats.CountingNodes += rel.Len()
			}
		}
		for ap := range counted.AnswerPreds {
			if rel := res.Relation(ap); rel != nil {
				out.Stats.AnswerTuples += rel.Len()
			}
		}
	default:
		if rel := res.Relation(entry.Goal.Pred); rel != nil {
			out.Stats.AnswerTuples = rel.Len()
		}
		if cq.Magic != nil && !cq.Extensional {
			for m := range cq.Magic.MagicPreds {
				if rel := res.Relation(m); rel != nil {
					out.Stats.CountingNodes += rel.Len() // magic-set size, for comparison
				}
			}
		}
	}
	return out, nil
}

// statsFromRuntime converts counting-runtime stats to the public shape.
func statsFromRuntime(s counting.RuntimeStats) Stats {
	return Stats{
		Inferences:    s.Moves,
		Probes:        s.Probes,
		CountingNodes: s.CountingNodes,
		AnswerTuples:  s.AnswerTuples,
		DerivedFacts:  int64(s.AnswerTuples + s.CountingNodes),
		ArenaValues:   s.ArenaValues,
	}
}

// execRuntime runs the pointer-based counting runtime (Algorithm 2)
// over the plan's shared analysis.
func execRuntime(ctx context.Context, p *Program, dbi *database.Database, cq *plan.CompiledQuery, cfg evalConfig) (*Result, error) {
	maxTuples := cfg.maxCountingTuples
	if maxTuples == 0 {
		maxTuples = cfg.maxFacts
	}
	ropts := counting.RuntimeOptions{MaxTuples: maxTuples, Inject: cfg.inject, Tracer: cfg.tracer}
	if cfg.statsSink != nil {
		rs := new(counting.RuntimeStats)
		ropts.StatsOut = rs
		defer func() { *cfg.statsSink = statsFromRuntime(*rs) }()
	}
	rres, err := counting.RunContext(ctx, cq.Analysis, dbi, ropts)
	if err != nil {
		return nil, err
	}
	asp := cfg.tracer.Begin("eval", "answers")
	tuples := counting.ReconstructRuntimeAnswers(cq.Analysis, rres.Answers)
	out := &Result{
		Answers:        finishRows(p, tuples),
		Strategy:       CountingRuntime,
		Rewritten:      cq.RewrittenText,
		RewrittenQuery: cq.RewrittenQueryText,
		Stats:          statsFromRuntime(rres.Stats),
	}
	asp.End(obsv.A("rows", int64(len(out.Answers))))
	return out, nil
}

// execMagicCounting implements the magic-counting hybrid (reference
// [16]): probe the left-part graph; run the reduced counting program
// when it is acyclic, magic sets otherwise. The chosen sub-strategy is
// compiled through the same shared state and plan cache as a direct
// evaluation would use.
func execMagicCounting(ctx context.Context, p *Program, dbi *database.Database, cq *plan.CompiledQuery, cfg evalConfig) (*Result, error) {
	sub := Magic
	if cq.Analysis != nil {
		probe, err := counting.ProbeLeftGraphContext(ctx, cq.Analysis, dbi, cfg.maxFacts)
		if err != nil {
			return nil, err
		}
		if probe.Acyclic && cq.Analysis.ListRewriteSafe() {
			sub = CountingReduced
		}
	}
	scq, _, _, err := p.planFor(sub, cfg)
	if err != nil {
		return nil, err
	}
	res, err := executeCompiled(ctx, p, dbi, scq, cfg)
	if err != nil {
		return nil, err
	}
	res.Strategy = MagicCounting
	return res, nil
}

// statsFromQSQ converts QSQ stats to the public shape.
func statsFromQSQ(s topdown.Stats) Stats {
	return Stats{
		Iterations:    s.Passes,
		Inferences:    s.Inferences,
		DerivedFacts:  int64(s.AnswerTuples),
		Probes:        s.Probes,
		CountingNodes: s.InputTuples, // the subquery (magic) set
		AnswerTuples:  s.AnswerTuples,
		ArenaValues:   s.ArenaValues,
	}
}

// execQSQ runs the top-down Query-SubQuery method over the plan's
// shared adornment.
func execQSQ(ctx context.Context, p *Program, dbi *database.Database, cq *plan.CompiledQuery, cfg evalConfig) (*Result, error) {
	topts := topdown.Options{MaxPasses: cfg.maxIterations, Inject: cfg.inject, Tracer: cfg.tracer}
	if cfg.statsSink != nil {
		ts := new(topdown.Stats)
		topts.StatsOut = ts
		defer func() { *cfg.statsSink = statsFromQSQ(*ts) }()
	}
	// Facts embedded in the program are fact rules of adorned predicates
	// (Adorn treats every rule head as derived), so QSQ reads them
	// through its answer sets; only db supplies extensional relations.
	res, err := topdown.EvalContext(ctx, cq.Adorned, dbi, topts)
	if err != nil {
		return nil, err
	}
	return &Result{
		Answers:  finishRows(p, res.Answers),
		Strategy: QSQ,
		Stats:    statsFromQSQ(res.Stats),
	}, nil
}

// compileFor compiles one strategy for an introspection entry point
// (Plan, Rewrite), resolving Auto with the planner first. It goes
// through the plan cache with default options, so introspection warms
// the same entries evaluation uses.
func (p *Program) compileFor(q ast.Query, db *Database, strategy Strategy) (*plan.CompiledQuery, Strategy, error) {
	var dbi *database.Database
	if db != nil {
		dbi = db.db
	}
	cfg := evalConfig{}
	cfg.queryText = ast.FormatQuery(p.bank, q)
	cfg.optsFP = cfg.fingerprint()
	cfg.shared = p.sharedFor(cfg.queryText, q, false)
	cfg.shared.SetStats(p.statsFunc(dbi))
	if strategy == Auto {
		strategy = plan.Rank(cfg.shared, p.statsFunc(dbi))[0].Strategy
	}
	cq, _, _, err := p.planFor(strategy, cfg)
	return cq, strategy, err
}

// Plan returns the evaluation plan — strata in execution order and, per
// rule, the compiled join order with index probe patterns — of the program
// a strategy would evaluate for the query. When db is non-nil its relation
// cardinalities participate in the join ordering, as during evaluation.
// Not available for MagicCounting (data-dependent) or CountingRuntime
// (not evaluated by the rule engine).
func Plan(p *Program, db *Database, query string, strategy Strategy) (string, error) {
	if db != nil && db.owner != p {
		return "", ErrWrongDatabase
	}
	q, err := parser.ParseQuery(p.bank, query)
	if err != nil {
		return "", err
	}
	cq, resolved, err := p.compileFor(q, db, strategy)
	switch resolved {
	case CountingRuntime:
		return "", errors.New("lincount: the counting runtime is not evaluated by the rule engine; see Rewrite for its declarative form")
	case MagicCounting:
		return "", errors.New("lincount: magic-counting chooses its rewriting from the data; plan the Magic or CountingReduced strategy instead")
	}
	if err != nil {
		return "", err
	}
	var dbi *database.Database
	if db != nil {
		dbi = db.db
	}
	return engine.PlanText(cq.Program, dbi)
}

// Rewrite returns the rewritten program and goal text for a strategy
// without evaluating it. For Naive and SemiNaive it returns the original
// program.
func Rewrite(p *Program, query string, strategy Strategy) (program, goal string, err error) {
	q, err := parser.ParseQuery(p.bank, query)
	if err != nil {
		return "", "", err
	}
	cq, resolved, err := p.compileFor(q, nil, strategy)
	switch resolved {
	case Naive, SemiNaive:
		return p.program.Format(), ast.FormatQuery(p.bank, q), nil
	case MagicCounting:
		return "", "", errors.New("lincount: magic-counting chooses its rewriting from the data; use Eval and inspect Result.Rewritten")
	}
	if err != nil {
		return "", "", err
	}
	if cq.Extensional {
		return p.program.Format(), ast.FormatQuery(p.bank, q), nil
	}
	return cq.RewrittenText, cq.RewrittenQueryText, nil
}
