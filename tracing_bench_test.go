package lincount_test

// Overhead benchmarks for the observability hooks: with no Tracer
// attached every hook must be free — identical allocs/op and ns/op within
// noise to the pre-instrumentation engine. Compare the off/on pairs with
//
//	go test -bench TracingOverhead -benchmem
//
// The "off" variants are the numbers that must match the plain P1/P2
// benchmarks above; the "on" variants show what a trace costs when asked
// for.

import (
	"fmt"
	"testing"

	"lincount"
	"lincount/internal/workload"
)

// benchTraced is benchStrategy with a fresh Tracer attached per run.
func benchTraced(b *testing.B, src, facts, query string, s lincount.Strategy) {
	b.Helper()
	p, err := lincount.ParseProgram(src)
	if err != nil {
		b.Fatal(err)
	}
	db := lincount.NewDatabase(p)
	if err := db.LoadFacts(facts); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := lincount.Eval(p, db, query, s, lincount.WithTracer(lincount.NewTracer())); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTracingOverheadP1: the P1 cylinder workload with tracing off
// (the default) and on, per strategy family.
func BenchmarkTracingOverheadP1(b *testing.B) {
	const depth, width = 12, 8
	facts := workload.Cylinder(depth, width, 2)
	query := fmt.Sprintf("?- sg(%s,Y).", workload.CylinderQuery)
	for _, s := range []lincount.Strategy{lincount.Magic, lincount.Counting, lincount.CountingRuntime} {
		b.Run(s.String()+"/off", func(b *testing.B) {
			benchStrategy(b, workload.SGProgram, facts, query, s)
		})
		b.Run(s.String()+"/on", func(b *testing.B) {
			benchTraced(b, workload.SGProgram, facts, query, s)
		})
	}
}

// BenchmarkTracingOverheadP2: the shortcut-chain workload (the n²
// counting-set shape), tracing off vs on.
func BenchmarkTracingOverheadP2(b *testing.B) {
	facts := workload.ShortcutChain(64)
	for _, s := range []lincount.Strategy{lincount.Counting, lincount.CountingRuntime} {
		b.Run(s.String()+"/off", func(b *testing.B) {
			benchStrategy(b, workload.SGProgram, facts, "?- sg(v0,Y).", s)
		})
		b.Run(s.String()+"/on", func(b *testing.B) {
			benchTraced(b, workload.SGProgram, facts, "?- sg(v0,Y).", s)
		})
	}
}
