package lincount_test

// One benchmark per experiment of EXPERIMENTS.md. The E-series benchmarks
// time the reproduction of the paper's worked examples (they also fail the
// benchmark run if a check regresses); the P-series benchmarks time the
// performance experiments at representative parameters. cmd/lincount-bench
// prints the corresponding result tables.

import (
	"fmt"
	"strings"
	"testing"

	"lincount"
	"lincount/internal/bench"
	"lincount/internal/workload"
)

func requireClean(b *testing.B, t bench.Table) {
	b.Helper()
	for _, r := range t.Rows {
		if r.Err != "" && r.Strategy != "counting-classic" {
			b.Fatalf("%s: %s/%s: %s", t.ID, r.Workload, r.Strategy, r.Err)
		}
	}
}

func BenchmarkE1_SameGeneration(b *testing.B) {
	for i := 0; i < b.N; i++ {
		requireClean(b, bench.E1SameGeneration())
	}
}

func BenchmarkE2_ArcClassification(b *testing.B) {
	for i := 0; i < b.N; i++ {
		requireClean(b, bench.E2ArcClassification())
	}
}

func BenchmarkE3_MultiRule(b *testing.B) {
	for i := 0; i < b.N; i++ {
		requireClean(b, bench.E3MultiRule())
	}
}

func BenchmarkE4_SharedVars(b *testing.B) {
	for i := 0; i < b.N; i++ {
		requireClean(b, bench.E4SharedVariables())
	}
}

func BenchmarkE5_Cyclic(b *testing.B) {
	for i := 0; i < b.N; i++ {
		requireClean(b, bench.E5Cyclic())
	}
}

func BenchmarkE6_MixedLinear(b *testing.B) {
	for i := 0; i < b.N; i++ {
		requireClean(b, bench.E6MixedLinear())
	}
}

// benchStrategy times one (program, facts, query, strategy) cell with the
// program and database parsed once outside the loop.
func benchStrategy(b *testing.B, src, facts, query string, s lincount.Strategy) {
	b.Helper()
	p, err := lincount.ParseProgram(src)
	if err != nil {
		b.Fatal(err)
	}
	db := lincount.NewDatabase(p)
	if err := db.LoadFacts(facts); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := lincount.Eval(p, db, query, s); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkP1_MagicVsCounting: same generation on a cylinder; sub-benchmarks
// per strategy so `-bench P1` prints the comparison directly.
func BenchmarkP1_MagicVsCounting(b *testing.B) {
	const depth, width = 12, 8
	facts := workload.Cylinder(depth, width, 2)
	query := fmt.Sprintf("?- sg(%s,Y).", workload.CylinderQuery)
	for _, s := range []lincount.Strategy{lincount.Magic, lincount.CountingClassic, lincount.Counting, lincount.CountingRuntime} {
		b.Run(s.String(), func(b *testing.B) {
			benchStrategy(b, workload.SGProgram, facts, query, s)
		})
	}
}

// BenchmarkP2_CountingSetSize: shortcut chains (the n² counting-set shape).
func BenchmarkP2_CountingSetSize(b *testing.B) {
	for _, n := range []int{32, 64} {
		facts := workload.ShortcutChain(n)
		for _, s := range []lincount.Strategy{lincount.Counting, lincount.CountingRuntime} {
			b.Run(fmt.Sprintf("n=%d/%s", n, s), func(b *testing.B) {
				benchStrategy(b, workload.SGProgram, facts, "?- sg(v0,Y).", s)
			})
		}
	}
}

// BenchmarkP3_CyclicData: cyclic chains, runtime vs magic.
func BenchmarkP3_CyclicData(b *testing.B) {
	facts := workload.CyclicChain(64, 8)
	for _, s := range []lincount.Strategy{lincount.CountingRuntime, lincount.Magic} {
		b.Run(s.String(), func(b *testing.B) {
			benchStrategy(b, workload.SGProgram, facts, "?- sg(u0,Y).", s)
		})
	}
}

// BenchmarkP4_Reduction: right-linear chain, reduced counting vs magic.
func BenchmarkP4_Reduction(b *testing.B) {
	facts := workload.RightLinearChain(256, 8)
	for _, s := range []lincount.Strategy{lincount.Magic, lincount.Counting, lincount.CountingReduced} {
		b.Run(s.String(), func(b *testing.B) {
			benchStrategy(b, workload.RightLinearProgram, facts, "?- p(u0,Y).", s)
		})
	}
}

// BenchmarkP5_MultiRuleScaling: k recursive rules.
func BenchmarkP5_MultiRuleScaling(b *testing.B) {
	for _, k := range []int{1, 2, 4, 8} {
		src := workload.MultiRuleProgram(k)
		facts := workload.MultiRule(64, k)
		b.Run(fmt.Sprintf("k=%d", k), func(b *testing.B) {
			benchStrategy(b, src, facts, "?- sg(u0,Y).", lincount.Counting)
		})
	}
}

// BenchmarkP6_PointerAblation: hash-consed vs structural path lists.
func BenchmarkP6_PointerAblation(b *testing.B) {
	b.Run("hash-consed", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			bench.P6PointerAblation([]int{4000})
		}
	})
}

// BenchmarkP7_PhaseWork: deep chain, counting vs magic per-level work.
func BenchmarkP7_PhaseWork(b *testing.B) {
	facts := workload.Chain(512)
	for _, s := range []lincount.Strategy{lincount.Magic, lincount.MagicSup, lincount.CountingClassic, lincount.Counting} {
		b.Run(s.String(), func(b *testing.B) {
			benchStrategy(b, workload.SGProgram, facts, "?- sg(u0,Y).", s)
		})
	}
}

// BenchmarkP8_TreeData: B&R tree data, the break-even regime.
func BenchmarkP8_TreeData(b *testing.B) {
	const depth = 8
	facts := workload.Tree(2, depth)
	query := fmt.Sprintf("?- sg(%s,Y).", workload.TreeQuery(depth))
	for _, s := range []lincount.Strategy{lincount.Magic, lincount.Counting, lincount.CountingRuntime} {
		b.Run(s.String(), func(b *testing.B) {
			benchStrategy(b, workload.SGProgram, facts, query, s)
		})
	}
}

// BenchmarkP9_Grid: the no-wraparound cylinder variant.
func BenchmarkP9_Grid(b *testing.B) {
	facts := workload.Grid(12, 8)
	query := fmt.Sprintf("?- sg(%s,Y).", workload.GridQuery)
	for _, s := range []lincount.Strategy{lincount.Magic, lincount.Counting} {
		b.Run(s.String(), func(b *testing.B) {
			benchStrategy(b, workload.SGProgram, facts, query, s)
		})
	}
}

// BenchmarkP12_QSQ: the top-down baseline against the rewritings.
func BenchmarkP12_QSQ(b *testing.B) {
	facts := workload.Chain(48)
	for _, s := range []lincount.Strategy{lincount.QSQ, lincount.Magic, lincount.Counting} {
		b.Run(s.String(), func(b *testing.B) {
			benchStrategy(b, workload.SGProgram, facts, "?- sg(u0,Y).", s)
		})
	}
}

// BenchmarkP10_Selectivity: one relevant chain among many irrelevant ones.
func BenchmarkP10_Selectivity(b *testing.B) {
	facts := workload.Branchy(32, 32)
	for _, s := range []lincount.Strategy{lincount.SemiNaive, lincount.Magic, lincount.Counting} {
		b.Run(s.String(), func(b *testing.B) {
			benchStrategy(b, workload.SGProgram, facts, "?- sg(u0,Y).", s)
		})
	}
}

// BenchmarkP14_PreparedVsCold: compilation amortization through the plan
// cache. "cold" evaluates with the cache bypassed (every iteration pays
// query parsing, adornment, analysis and rewriting); "prepared"
// evaluates a PreparedQuery whose plan is compiled once and hit
// thereafter. The workload shapes are P1's cylinder and P2's shortcut
// chain at small sizes, where compilation and execution cost are
// comparable — the regime the cache exists for (a service answering
// many point queries); on large instances execution dominates both
// sides and the gap narrows toward zero.
func BenchmarkP14_PreparedVsCold(b *testing.B) {
	workloads := []struct {
		name, src, facts, query string
	}{
		{"P1cylinder", workload.SGProgram,
			workload.Cylinder(3, 2, 2),
			fmt.Sprintf("?- sg(%s,Y).", workload.CylinderQuery)},
		{"P2shortcut", workload.SGProgram,
			workload.ShortcutChain(4), "?- sg(v0,Y)."},
	}
	for _, w := range workloads {
		p, err := lincount.ParseProgram(w.src)
		if err != nil {
			b.Fatal(err)
		}
		db := lincount.NewDatabase(p)
		if err := db.LoadFacts(w.facts); err != nil {
			b.Fatal(err)
		}
		b.Run(w.name+"/cold", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := lincount.Eval(p, db, w.query, lincount.Auto, lincount.WithoutPlanCache()); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(w.name+"/prepared", func(b *testing.B) {
			pq, err := lincount.Prepare(p, w.query, lincount.Auto)
			if err != nil {
				b.Fatal(err)
			}
			if _, err := pq.Eval(db); err != nil { // warm the cache
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, err := pq.Eval(db)
				if err != nil {
					b.Fatal(err)
				}
				if !res.PlanCacheHit {
					b.Fatal("prepared evaluation missed the plan cache")
				}
			}
		})
	}
}

// BenchmarkP17_BatchedJoin: the batched streaming pipeline against the
// tuple-at-a-time legacy path on a probe-bound 4-literal recursive rule
// (the P17 wide shape at reduced size). Run under `make benchcheck`:
// allocs/op is the guarded number — the batched path amortises its
// buffers across iterations, so a drift upward means a scratch buffer
// stopped being reused.
func BenchmarkP17_BatchedJoin(b *testing.B) {
	const src = "p(X,Y) :- s(X,Y).\np(X,W) :- p(X,Y), a(Y,Z), a2(Z,U), b(U,W).\n"
	var facts strings.Builder
	const steps, fanout = 32, 4
	for i := 0; i < steps; i++ {
		for j := 0; j < fanout; j++ {
			fmt.Fprintf(&facts, "a(y%d,m%d_%d).\n", i, i, j)
			for l := 0; l < fanout; l++ {
				fmt.Fprintf(&facts, "a2(m%d_%d,u%d_%d_%d).\n", i, j, i, j, l)
			}
		}
		fmt.Fprintf(&facts, "b(u%d_0_0,y%d).\n", i, i+1)
	}
	for k := 0; k < 64; k++ {
		fmt.Fprintf(&facts, "s(x%d,y0).\n", k)
	}
	p, err := lincount.ParseProgram(src)
	if err != nil {
		b.Fatal(err)
	}
	db := lincount.NewDatabase(p)
	if err := db.LoadFacts(facts.String()); err != nil {
		b.Fatal(err)
	}
	modes := []struct {
		name string
		opts []lincount.Option
	}{
		{"legacy", []lincount.Option{lincount.WithBatchedJoin(false)}},
		{"batched", nil},
	}
	for _, m := range modes {
		b.Run(m.name, func(b *testing.B) {
			pq, err := lincount.Prepare(p, "?- p(x0,W).", lincount.SemiNaive, m.opts...)
			if err != nil {
				b.Fatal(err)
			}
			if _, err := pq.Eval(db); err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := pq.Eval(db); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
