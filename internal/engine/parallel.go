package engine

import (
	"context"
	"runtime/debug"
	"sync"

	"lincount/internal/ast"
	"lincount/internal/limits"
	"lincount/internal/symtab"
)

// Parallel evaluation of independent strata. Components in the same
// topological layer of the stratum graph do not read each other's
// relations, so they can be evaluated concurrently: each component's
// goroutine writes only its own head relations and reads only completed
// ones. Completed relations are read-only in the strong sense the
// arena-backed store guarantees: the row arena, the dedup table and the
// RowID chains are frozen once the writer stops inserting, row views are
// stable subslices, and the only mutation a reader can trigger — lazily
// building an index for a new column mask — is serialized inside
// database.Relation.ensureIndex.
//
// The one shared mutable structure would be the term bank: instantiating
// a non-ground compound pattern interns a new term. Components containing
// such patterns are therefore evaluated sequentially; flat components —
// the common case for plain Datalog and every magic rewriting — run in
// parallel. The MaxDerivedFacts budget stays global: every child
// evaluator increments the parent's shared atomic fact counter, so the
// cap holds exactly across concurrent strata. The first error — a budget
// trip, a rule failure, a panic, or the evaluation context's own
// cancellation — cancels a layer-scoped context that every sibling's
// checker polls, so the whole layer drains cooperatively and
// evalComponentsParallel returns the originating error with no goroutine
// left behind.

// layerComponents groups the (topologically ordered) components into
// dependency layers: a component's layer is one more than the maximum
// layer among the components it reads.
func layerComponents(comps []Component) [][]int {
	compOf := map[symtab.Sym]int{}
	for i, c := range comps {
		for _, p := range c.Preds {
			compOf[p] = i
		}
	}
	layer := make([]int, len(comps))
	maxLayer := 0
	for i, c := range comps {
		l := 0
		for _, r := range c.Rules {
			for _, lit := range r.Body {
				if j, ok := compOf[lit.Pred]; ok && j != i {
					if layer[j]+1 > l {
						l = layer[j] + 1
					}
				}
			}
		}
		layer[i] = l
		if l > maxLayer {
			maxLayer = l
		}
	}
	out := make([][]int, maxLayer+1)
	for i := range comps {
		out[layer[i]] = append(out[layer[i]], i)
	}
	return out
}

// flatComponent reports whether every rule of the component is free of
// non-ground compound patterns, so its evaluation never interns terms.
func flatComponent(c Component) bool {
	flatTerm := func(t ast.Term) bool { return t.Kind != ast.Comp }
	for _, r := range c.Rules {
		for _, a := range r.Head.Args {
			if !flatTerm(a) {
				return false
			}
		}
		for _, l := range r.Body {
			for _, a := range l.Args {
				if !flatTerm(a) {
					return false
				}
			}
		}
	}
	return true
}

// evalComponentsParallel evaluates the given components (one dependency
// layer) concurrently, each on a child evaluator with private statistics
// but a shared fact budget. The first error cancels the layer's context;
// siblings observe it at their next cooperative check and drain before
// the call returns.
func (ev *evaluator) evalComponentsParallel(comps []Component) error {
	parent := ev.ctx
	if parent == nil {
		parent = context.Background()
	}
	layerCtx, cancel := context.WithCancelCause(parent)
	defer cancel(nil)

	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstErr error
	)
	fail := func(err error) {
		mu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		mu.Unlock()
		cancel(err)
	}
	children := make([]*evaluator, len(comps))
	for i := range comps {
		child := &evaluator{
			bank:      ev.bank,
			db:        ev.db,
			derived:   ev.derived,
			arity:     ev.arity,
			opts:      ev.opts,
			maxIter:   ev.maxIter,
			maxFacts:  ev.maxFacts,
			check:     limits.NewChecker(layerCtx, "engine"),
			ctx:       layerCtx,
			inject:    ev.inject,
			tracer:    ev.tracer,
			factTotal: ev.factTotal,
			progress:  ev.progress,
		}
		if ev.tracer != nil {
			// Each concurrent stratum gets its own track in the trace;
			// the Tracer itself is safe for concurrent recording.
			child.tid = ev.tracer.NewTID()
		}
		if ev.prof != nil {
			// Profiling (traced or not): each stratum fills its own
			// profile map, merged below.
			child.prof = make(map[*compiledRule]*RuleStat)
		}
		// Serialize trace callbacks across goroutines.
		if ev.opts.Trace != nil {
			outer := ev.opts.Trace
			child.opts.Trace = func(e TraceEvent) {
				mu.Lock()
				outer(e)
				mu.Unlock()
			}
		}
		children[i] = child
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			// A panic must not cross the goroutine boundary (it would
			// bypass the recover at the public Eval boundary and kill the
			// process); carry it out as an error instead.
			defer func() {
				if r := recover(); r != nil {
					fail(&limits.PanicError{Component: "engine", Value: r, Stack: debug.Stack()})
				}
			}()
			if err := children[i].evalComponent(comps[i]); err != nil {
				fail(err)
			}
		}(i)
	}
	wg.Wait()
	for _, child := range children {
		ev.stats.Add(child.stats)
		ev.profOrder = append(ev.profOrder, child.profOrder...)
	}
	if firstErr != nil {
		return firstErr
	}
	// The layer may also have been stopped by the parent context without
	// any child reporting it (e.g. cancellation between checks).
	if err := ev.check.Check(); err != nil {
		return err
	}
	return nil
}
