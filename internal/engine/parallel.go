package engine

import (
	"sync"

	"lincount/internal/ast"
	"lincount/internal/symtab"
)

// Parallel evaluation of independent strata. Components in the same
// topological layer of the stratum graph do not read each other's
// relations, so they can be evaluated concurrently: each component's
// goroutine writes only its own head relations and reads only completed
// ones (which are read-only, with index construction synchronized inside
// database.Relation).
//
// The one shared mutable structure would be the term bank: instantiating
// a non-ground compound pattern interns a new term. Components containing
// such patterns are therefore evaluated sequentially; flat components —
// the common case for plain Datalog and every magic rewriting — run in
// parallel. The fact budget is enforced per component in parallel mode,
// so the global cap is approximate there.

// layerComponents groups the (topologically ordered) components into
// dependency layers: a component's layer is one more than the maximum
// layer among the components it reads.
func layerComponents(comps []Component) [][]int {
	compOf := map[symtab.Sym]int{}
	for i, c := range comps {
		for _, p := range c.Preds {
			compOf[p] = i
		}
	}
	layer := make([]int, len(comps))
	maxLayer := 0
	for i, c := range comps {
		l := 0
		for _, r := range c.Rules {
			for _, lit := range r.Body {
				if j, ok := compOf[lit.Pred]; ok && j != i {
					if layer[j]+1 > l {
						l = layer[j] + 1
					}
				}
			}
		}
		layer[i] = l
		if l > maxLayer {
			maxLayer = l
		}
	}
	out := make([][]int, maxLayer+1)
	for i := range comps {
		out[layer[i]] = append(out[layer[i]], i)
	}
	return out
}

// flatComponent reports whether every rule of the component is free of
// non-ground compound patterns, so its evaluation never interns terms.
func flatComponent(c Component) bool {
	flatTerm := func(t ast.Term) bool { return t.Kind != ast.Comp }
	for _, r := range c.Rules {
		for _, a := range r.Head.Args {
			if !flatTerm(a) {
				return false
			}
		}
		for _, l := range r.Body {
			for _, a := range l.Args {
				if !flatTerm(a) {
					return false
				}
			}
		}
	}
	return true
}

// evalComponentsParallel evaluates the given components (one dependency
// layer) concurrently, each on a child evaluator with private statistics.
func (ev *evaluator) evalComponentsParallel(comps []Component) error {
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstErr error
	)
	children := make([]*evaluator, len(comps))
	for i := range comps {
		child := &evaluator{
			bank:     ev.bank,
			db:       ev.db,
			derived:  ev.derived,
			arity:    ev.arity,
			opts:     ev.opts,
			maxIter:  ev.maxIter,
			maxFacts: ev.maxFacts,
		}
		// Serialize trace callbacks across goroutines.
		if ev.opts.Trace != nil {
			outer := ev.opts.Trace
			child.opts.Trace = func(e TraceEvent) {
				mu.Lock()
				outer(e)
				mu.Unlock()
			}
		}
		children[i] = child
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if err := children[i].evalComponent(comps[i]); err != nil {
				mu.Lock()
				if firstErr == nil {
					firstErr = err
				}
				mu.Unlock()
			}
		}(i)
	}
	wg.Wait()
	for _, child := range children {
		ev.stats.Add(child.stats)
	}
	return firstErr
}
