package engine

// Incremental-maintenance primitives: an exported, resumable view of the
// semi-naive join machinery for the internal/incremental package. A Joiner
// compiles a program's rules once per maintenance run and then evaluates
// individual rule variants under caller-controlled delta windows, row-state
// filters and the windowed exact-once counting read discipline — the three
// knobs the counting-based delta algorithm (insertion resume, exact
// decrement, overdelete, backward rederivation, rederive fixpoint) needs
// beyond what EvalContext's fixpoint loop exposes.

import (
	"sync/atomic"

	"lincount/internal/ast"
	"lincount/internal/database"
	"lincount/internal/limits"
	"lincount/internal/symtab"
	"lincount/internal/term"
)

// Delta is a window of rows acting as the delta occurrence for a predicate:
// rows [Lo, Hi) of Rel. Rel may be a scratch relation distinct from the
// predicate's stored relation (deletion passes feed copies of the deleted
// tuples this way), in which case windowed reads of non-delta occurrences
// still target Rel with the window bounds.
type Delta struct {
	Rel    *database.Relation
	Lo, Hi database.RowID
}

// JoinConfig selects the read discipline for one Joiner.Run call.
type JoinConfig struct {
	// Windowed arms the exact-once counting discipline: a non-delta
	// occurrence of a predicate present in the delta map reads rows
	// [0, Hi) of the delta's Rel when it precedes the delta occurrence in
	// the source body, and [0, Lo) when it follows it. Every derivation
	// with at least one delta atom is then enumerated exactly once, at its
	// last newest-atom body position.
	Windowed bool
	// RowState holds per-row lifecycle states (-1 deleted, 0 original,
	// g ≥ 1 rederived in round g); FilterPrefix/FilterSuffix arm filtering
	// of occurrences before/after the delta occurrence to rows with
	// 0 ≤ state ≤ bound. Rows past a slice end and preds missing from the
	// map are treated as live originals. The delta occurrence itself is
	// never filtered.
	RowState     map[symtab.Sym][]int32
	FilterPrefix bool
	FilterSuffix bool
	PrefixBound  int32
	SuffixBound  int32
}

// Joiner evaluates compiled rule variants of one program against a base
// database plus externally owned derived relations. The derived map is
// retained by reference and read live: the maintainer may replace relations
// in it (compaction) between Run calls. Not safe for concurrent use.
type Joiner struct {
	ev    *evaluator
	rules []*compiledRule
}

// NewJoiner compiles the non-fact rules of rules for maintenance. mutable
// marks the predicates whose deltas will be substituted: every positive
// non-builtin body occurrence of a mutable predicate gets a compiled
// variant with that occurrence as the delta. derived is retained by
// reference; check may be nil.
func NewJoiner(bank *term.Bank, db *database.Database, derived map[symtab.Sym]*database.Relation,
	rules []ast.Rule, mutable map[symtab.Sym]bool, check *limits.Checker) (*Joiner, error) {
	ev := &evaluator{
		bank:      bank,
		db:        db,
		derived:   derived,
		check:     check,
		factTotal: new(atomic.Int64),
	}
	ev.maxFacts = int64(DefaultMaxDerivedFacts)
	j := &Joiner{ev: ev}
	for _, r := range rules {
		if r.IsFact() {
			continue
		}
		cr, err := compileRule(bank, r, mutable, func(pred symtab.Sym) int {
			if rel := ev.readRel(pred); rel != nil {
				return rel.Len()
			}
			return 0
		})
		if err != nil {
			return nil, err
		}
		j.rules = append(j.rules, cr)
	}
	return j, nil
}

// Rules reports the number of compiled (non-fact) rules.
func (j *Joiner) Rules() int { return len(j.rules) }

// HeadPred returns the head predicate of rule i.
func (j *Joiner) HeadPred(i int) symtab.Sym { return j.rules[i].headPred }

// Variants reports the number of delta variants of rule i (one per mutable
// positive body occurrence).
func (j *Joiner) Variants(i int) int { return j.rules[i].nRecOccur() }

// VariantPred returns the predicate at the delta occurrence of variant occ
// of rule i.
func (j *Joiner) VariantPred(i, occ int) symtab.Sym {
	cr := j.rules[i]
	return cr.src.Body[cr.recBodyIdx[occ]].Pred
}

// VariantBodyIdx returns the source body position of variant occ's delta
// occurrence.
func (j *Joiner) VariantBodyIdx(i, occ int) int { return j.rules[i].recBodyIdx[occ] }

// Src returns the source rule of compiled rule i.
func (j *Joiner) Src(i int) ast.Rule { return j.rules[i].src }

// Run evaluates variant occ of rule i (occ < 0 selects the default order
// with no delta substitution) under cfg, calling out for every body
// solution's head tuple. The tuple is reused across solutions; out must
// copy it to retain it. Duplicate derivations are NOT deduplicated — each
// distinct body instantiation produces one call — which is exactly what
// derivation counting needs.
func (j *Joiner) Run(i, occ int, delta map[symtab.Sym]Delta, cfg JoinConfig, out func(database.Tuple) error) error {
	ev := j.ev
	var dv map[symtab.Sym]deltaView
	if len(delta) > 0 {
		dv = make(map[symtab.Sym]deltaView, len(delta))
		for p, d := range delta {
			dv[p] = deltaView{rel: d.Rel, lo: d.Lo, hi: d.Hi}
		}
	}
	ev.windowed = cfg.Windowed
	ev.rowState = cfg.RowState
	ev.filterPrefix = cfg.FilterPrefix
	ev.filterSuffix = cfg.FilterSuffix
	ev.prefixBound = cfg.PrefixBound
	ev.suffixBound = cfg.SuffixBound
	defer func() {
		ev.windowed = false
		ev.rowState = nil
		ev.filterPrefix, ev.filterSuffix = false, false
		ev.prefixBound, ev.suffixBound = 0, 0
	}()
	deltaOcc := occ
	if occ >= 0 && occ >= j.rules[i].nRecOccur() {
		deltaOcc = -1
	}
	return ev.join(j.rules[i], deltaOcc, dv, out)
}

// Stats returns the accumulated probe/inference counters of this Joiner's
// evaluator.
func (j *Joiner) Stats() Stats { return j.ev.stats }

// NewResult wraps externally maintained derived relations as an evaluation
// Result so that Answers can serve queries from a materialisation without
// re-running a fixpoint.
func NewResult(bank *term.Bank, derived map[symtab.Sym]*database.Relation) *Result {
	return &Result{bank: bank, Derived: derived}
}
