package engine

import (
	"fmt"
	"strings"
	"testing"
)

// Scenario tests: larger shapes and edge cases the unit tests do not
// reach — deep strata chains, wide joins, list-heavy recursion, trace
// behaviour and mixed negation layers.

func TestDeepStrataChain(t *testing.T) {
	// p0 is base; p_{i+1}(X) :- p_i(X), not q_i(X). Fifty strata.
	f := newFixture(t, "p0(a). p0(b). q3(b). q17(a).")
	var src strings.Builder
	const depth = 50
	for i := 0; i < depth; i++ {
		fmt.Fprintf(&src, "p%d(X) :- p%d(X), not q%d(X).\n", i+1, i, i)
	}
	res := eval(t, f, src.String(), Options{})
	top := res.Relation(f.bank.Symbols().Intern(fmt.Sprintf("p%d", depth)))
	// a removed at stratum 17, b at stratum 3.
	if top == nil || top.Len() != 0 {
		t.Errorf("p%d = %d tuples, want 0", depth, top.Len())
	}
	mid := res.Relation(f.bank.Symbols().Intern("p10"))
	if mid.Len() != 1 { // only a survives past q3
		t.Errorf("p10 = %d tuples, want 1", mid.Len())
	}
	if res.Stats.Components < depth {
		t.Errorf("components = %d", res.Stats.Components)
	}
}

func TestWideJoin(t *testing.T) {
	// A five-way join with a single satisfying combination.
	f := newFixture(t, `
r1(a,b). r1(a,x).
r2(b,c). r2(x,y).
r3(c,d). r3(y,z1).
r4(d,e). r4(z1,z2).
r5(e,f).
`)
	res := eval(t, f, "j(A,F) :- r1(A,B), r2(B,C), r3(C,D), r4(D,E), r5(E,F).", Options{})
	got := f.answers(t, res, "?- j(A,F).")
	if fmt.Sprint(got) != "[a,f]" {
		t.Errorf("join = %v", got)
	}
}

func TestListAccumulatorRecursion(t *testing.T) {
	// Collect a path as a list while walking a chain — exercises compound
	// head construction under recursion.
	f := newFixture(t, "e(a,b). e(b,c). e(c,d).")
	res := eval(t, f, `
walk(X,[X]) :- start(X).
walk(Y,[Y|P]) :- walk(X,P), e(X,Y).
start(a).
`, Options{})
	got := f.answers(t, res, "?- walk(d,P).")
	if fmt.Sprint(got) != "[d,[d,c,b,a]]" {
		t.Errorf("walk = %v", got)
	}
}

func TestDiamondDedup(t *testing.T) {
	// Many derivations of the same fact must count inferences but keep
	// one tuple.
	f := newFixture(t, `
e(s,a1). e(s,a2). e(s,a3).
e(a1,t). e(a2,t). e(a3,t).
`)
	res := eval(t, f, "tc(X,Y) :- e(X,Y).\ntc(X,Y) :- e(X,Z), tc(Z,Y).\n", Options{})
	tc := res.Relation(f.bank.Symbols().Intern("tc"))
	// s→a1,a2,a3,t; a1,a2,a3→t: 7 tuples.
	if tc.Len() != 7 {
		t.Errorf("tc = %d tuples", tc.Len())
	}
	if res.Stats.Inferences <= int64(tc.Len()) {
		t.Errorf("expected rederivations; inferences = %d", res.Stats.Inferences)
	}
}

func TestTraceMonotoneTotals(t *testing.T) {
	f := newFixture(t, "e(a,b). e(b,c). e(c,d).")
	var events []TraceEvent
	_, err := Eval(f.program(t, `
tc(X,Y) :- e(X,Y).
tc(X,Y) :- e(X,Z), tc(Z,Y).
`), f.db, Options{Trace: func(e TraceEvent) { events = append(events, e) }})
	if err != nil {
		t.Fatal(err)
	}
	var last int64
	iterations := 0
	for _, e := range events {
		if e.Kind != "iteration" {
			continue
		}
		iterations++
		if e.TotalFacts < last {
			t.Error("TotalFacts decreased")
		}
		last = e.TotalFacts
	}
	if iterations < 3 {
		t.Errorf("iterations traced = %d", iterations)
	}
	// The final iteration must report an empty delta.
	lastIter := events[len(events)-1]
	if lastIter.Kind != "iteration" || lastIter.DeltaFacts != 0 {
		t.Errorf("final event = %+v", lastIter)
	}
}

func TestNaiveTraceEvents(t *testing.T) {
	f := newFixture(t, "e(a,b). e(b,c).")
	count := 0
	_, err := Eval(f.program(t, `
tc(X,Y) :- e(X,Y).
tc(X,Y) :- e(X,Z), tc(Z,Y).
`), f.db, Options{Naive: true, Trace: func(e TraceEvent) { count++ }})
	if err != nil {
		t.Fatal(err)
	}
	if count < 3 {
		t.Errorf("naive trace events = %d", count)
	}
}

func TestSamePredicateManyRules(t *testing.T) {
	// Twelve rules for one predicate, each contributing one tuple.
	f := newFixture(t, "seed(0).")
	var src strings.Builder
	for i := 0; i < 12; i++ {
		fmt.Fprintf(&src, "n(%d) :- seed(0).\n", i)
	}
	res := eval(t, f, src.String(), Options{})
	if got := res.Relation(f.bank.Symbols().Intern("n")).Len(); got != 12 {
		t.Errorf("n = %d tuples", got)
	}
}

func TestLongChainIterationCount(t *testing.T) {
	// Right recursion on a chain of length n takes ~n semi-naive rounds;
	// verifies the fixpoint does not terminate early or spin extra.
	const n = 200
	var facts strings.Builder
	for i := 0; i < n; i++ {
		fmt.Fprintf(&facts, "e(v%d,v%d). ", i, i+1)
	}
	f := newFixture(t, facts.String())
	res := eval(t, f, "r(X) :- e(v0,X).\nr(Y) :- r(X), e(X,Y).\n", Options{})
	rel := res.Relation(f.bank.Symbols().Intern("r"))
	if rel.Len() != n {
		t.Errorf("r = %d tuples, want %d", rel.Len(), n)
	}
	if res.Stats.Iterations < n || res.Stats.Iterations > n+3 {
		t.Errorf("iterations = %d, want ~%d", res.Stats.Iterations, n)
	}
}

func TestGroundRuleBodies(t *testing.T) {
	// Fully ground bodies act as conditional facts.
	f := newFixture(t, "cond(yes).")
	res := eval(t, f, `
out(1) :- cond(yes).
out(2) :- cond(no).
`, Options{})
	got := f.answers(t, res, "?- out(X).")
	if fmt.Sprint(got) != "[1]" {
		t.Errorf("out = %v", got)
	}
}

func TestAnswersWithCompoundGoalArgs(t *testing.T) {
	f := newFixture(t, "holds(box(a),1). holds(box(b),2). holds(crate(a),3).")
	res := eval(t, f, "h(X,N) :- holds(X,N).", Options{})
	if got := f.answers(t, res, "?- h(box(W),N)."); fmt.Sprint(got) != "[box(a),1 box(b),2]" {
		t.Errorf("answers = %v", got)
	}
	if got := f.answers(t, res, "?- h(box(a),N)."); fmt.Sprint(got) != "[box(a),1]" {
		t.Errorf("answers = %v", got)
	}
	// Repeated variables in the goal filter answers.
	f2 := newFixture(t, "pair(a,a). pair(a,b). pair(b,b).")
	res2 := eval(t, f2, "pp(X,Y) :- pair(X,Y).", Options{})
	if got := f2.answers(t, res2, "?- pp(X,X)."); fmt.Sprint(got) != "[a,a b,b]" {
		t.Errorf("repeated-var answers = %v", got)
	}
}

func TestNegationOfEmptyRelation(t *testing.T) {
	f := newFixture(t, "item(a). item(b).")
	res := eval(t, f, "ok(X) :- item(X), not banned(X).", Options{})
	if got := f.answers(t, res, "?- ok(X)."); fmt.Sprint(got) != "[a b]" {
		t.Errorf("ok = %v", got)
	}
}

func TestBuiltinChainsBothDirections(t *testing.T) {
	f := newFixture(t, "n(5).")
	res := eval(t, f, `
around(A,B) :- n(X), succ(A,X), succ(X,B).
`, Options{})
	if got := f.answers(t, res, "?- around(A,B)."); fmt.Sprint(got) != "[4,6]" {
		t.Errorf("around = %v", got)
	}
}

func TestSharedBankAcrossEvaluations(t *testing.T) {
	// Two programs over one database/bank must not interfere.
	f := newFixture(t, "e(a,b). e(b,c).")
	res1 := eval(t, f, "one(X,Y) :- e(X,Y).", Options{})
	res2 := eval(t, f, "two(X) :- e(X,_).", Options{})
	if res1.Relation(f.bank.Symbols().Intern("one")).Len() != 2 {
		t.Error("first evaluation wrong")
	}
	if res2.Relation(f.bank.Symbols().Intern("two")).Len() != 2 {
		t.Error("second evaluation wrong")
	}
	if res2.Relation(f.bank.Symbols().Intern("one")) != nil {
		t.Error("evaluations leaked derived relations")
	}
}
