package engine

import (
	"fmt"

	"lincount/internal/ast"
	"lincount/internal/database"
	"lincount/internal/limits"
	"lincount/internal/symtab"
	"lincount/internal/term"
)

// Matcher evaluates body conjunctions against a base database plus a set of
// derived relations. It is the engine primitive the counting runtime
// (Algorithm 2) uses to instantiate left parts, exit bodies and right parts
// under externally supplied bindings.
type Matcher struct {
	bank    *term.Bank
	db      *database.Database
	derived map[symtab.Sym]*database.Relation
	check   *limits.Checker
	// Solves and Probes count work for the benchmark harness.
	Solves int64
	Probes int64
	// RowState, when non-nil, filters every relation occurrence a
	// subsequently prepared solve reads: rows whose state is negative or
	// exceeds RowStateBound are skipped (missing preds and rows past a
	// slice end count as live originals, state 0). The incremental
	// maintainer's backward rederivation pass uses this to count
	// derivations over surviving rows only. Set before Prepare.
	RowState      map[symtab.Sym][]int32
	RowStateBound int32
}

// NewMatcher returns a matcher reading from db and derived (either may be
// nil).
func NewMatcher(bank *term.Bank, db *database.Database, derived map[symtab.Sym]*database.Relation) *Matcher {
	return &Matcher{bank: bank, db: db, derived: derived}
}

// SetChecker installs the cooperative cancellation checker that solvers
// prepared afterwards poll during their joins. Call before Prepare.
func (m *Matcher) SetChecker(c *limits.Checker) { m.check = c }

// solvePredName and givenPredName are the reserved predicates of the
// synthetic rule a PreparedSolve compiles.
const (
	solvePredName = "$solve"
	givenPredName = "$given"
)

// PreparedSolve is a compiled conjunction query: body literals evaluated
// under a fixed set of pre-bound variables, producing the values of the
// want variables. Prepare once per rule site, Solve once per binding.
type PreparedSolve struct {
	m         *Matcher
	cr        *compiledRule
	boundVars []symtab.Sym
	want      []symtab.Sym
	givenPred symtab.Sym
	givenRel  *database.Relation
	derived   map[symtab.Sym]*database.Relation
	ev        *evaluator
	delta     map[symtab.Sym]deltaView
}

// Prepare compiles body for repeated evaluation. boundVars lists the
// variables whose values each Solve call supplies; want lists the variables
// whose values are reported (they may overlap boundVars). The compiled
// ordering starts from the binding, so index probes see the bound values.
func (m *Matcher) Prepare(body []ast.Literal, boundVars, want []symtab.Sym) (*PreparedSolve, error) {
	syms := m.bank.Symbols()
	givenPred := syms.Intern(givenPredName)
	givenArgs := make([]ast.Term, len(boundVars))
	for i, v := range boundVars {
		givenArgs[i] = ast.V(v)
	}
	headArgs := make([]ast.Term, len(want))
	for i, v := range want {
		headArgs[i] = ast.V(v)
	}
	fullBody := make([]ast.Literal, 0, len(body)+1)
	fullBody = append(fullBody, ast.Atom(givenPred, givenArgs...))
	fullBody = append(fullBody, body...)
	// Marking $given as "recursive" makes compileRule emit an ordering
	// that starts from it, so every Solve call begins fully bound.
	cr, err := compileRule(m.bank, ast.Rule{
		Head: ast.Literal{Pred: syms.Intern(solvePredName), Args: headArgs},
		Body: fullBody,
	}, map[symtab.Sym]bool{givenPred: true}, func(pred symtab.Sym) int {
		if rel, ok := m.derived[pred]; ok {
			return rel.Len()
		}
		if m.db != nil {
			if rel := m.db.Relation(pred); rel != nil {
				return rel.Len()
			}
		}
		return 0
	})
	if err != nil {
		return nil, fmt.Errorf("engine: Prepare: %w", err)
	}
	ps := &PreparedSolve{
		m:         m,
		cr:        cr,
		boundVars: boundVars,
		want:      want,
		givenPred: givenPred,
		givenRel:  database.NewRelation(len(boundVars)),
		derived:   m.derived,
	}
	ps.ev = &evaluator{bank: m.bank, db: m.db, derived: ps.derived, check: m.check}
	if m.RowState != nil {
		// The $given occurrence is the delta (never filtered); every real
		// body literal follows it, so the suffix filter covers them all.
		// Both sides are armed anyway for uniformity.
		ps.ev.rowState = m.RowState
		ps.ev.filterPrefix = true
		ps.ev.filterSuffix = true
		ps.ev.prefixBound = m.RowStateBound
		ps.ev.suffixBound = m.RowStateBound
	}
	ps.delta = map[symtab.Sym]deltaView{givenPred: {rel: ps.givenRel, lo: 0, hi: 1}}
	return ps, nil
}

// Solve evaluates the prepared conjunction under the given values for
// boundVars (in Prepare order) and calls out with the want values for each
// solution. The out slice is reused across calls.
func (ps *PreparedSolve) Solve(boundVals []term.Value, out func([]term.Value) error) error {
	if len(boundVals) != len(ps.boundVars) {
		return fmt.Errorf("engine: Solve: got %d bound values, want %d", len(boundVals), len(ps.boundVars))
	}
	ps.m.Solves++
	// Reset the $given relation to exactly this binding; it is fed to the
	// join as the delta of the $given occurrence, which the prepared
	// ordering evaluates first.
	ps.givenRel.Reset()
	ps.givenRel.Insert(database.Tuple(boundVals))

	before := ps.ev.stats.Probes
	err := ps.ev.join(ps.cr, 0, ps.delta,
		func(t database.Tuple) error { return out(t) })
	ps.m.Probes += ps.ev.stats.Probes - before
	return err
}

// Solve is the one-shot form: it compiles and evaluates body under the
// bound map, calling out with the values of want (pre-bound want variables
// are passed through). Prefer Prepare for hot paths.
func (m *Matcher) Solve(body []ast.Literal, bound map[symtab.Sym]term.Value, want []symtab.Sym, out func([]term.Value) error) error {
	boundVars := make([]symtab.Sym, 0, len(bound))
	for v := range bound {
		boundVars = append(boundVars, v)
	}
	// Deterministic order for reproducibility.
	syms := m.bank.Symbols()
	for i := 1; i < len(boundVars); i++ {
		for j := i; j > 0 && syms.String(boundVars[j]) < syms.String(boundVars[j-1]); j-- {
			boundVars[j], boundVars[j-1] = boundVars[j-1], boundVars[j]
		}
	}
	ps, err := m.Prepare(body, boundVars, want)
	if err != nil {
		return err
	}
	vals := make([]term.Value, len(boundVars))
	for i, v := range boundVars {
		vals[i] = bound[v]
	}
	return ps.Solve(vals, out)
}

// MatchTerms unifies a list of patterns (possibly sharing variables)
// against ground values, extending the bound map in place. It reports
// whether unification succeeded; on failure bound may contain partial
// bindings and should be discarded.
func MatchTerms(bank *term.Bank, pats []ast.Term, vals []term.Value, bound map[symtab.Sym]term.Value) bool {
	if len(pats) != len(vals) {
		return false
	}
	for i := range pats {
		if !matchTerm(bank, pats[i], vals[i], bound) {
			return false
		}
	}
	return true
}

func matchTerm(bank *term.Bank, p ast.Term, v term.Value, bound map[symtab.Sym]term.Value) bool {
	switch p.Kind {
	case ast.Const:
		return p.Value == v
	case ast.Var:
		if old, ok := bound[p.Name]; ok {
			return old == v
		}
		bound[p.Name] = v
		return true
	default:
		if !v.IsCompound() {
			return false
		}
		c := bank.Deref(v)
		if c.Functor != p.Name || len(c.Args) != len(p.Args) {
			return false
		}
		for i := range p.Args {
			if !matchTerm(bank, p.Args[i], c.Args[i], bound) {
				return false
			}
		}
		return true
	}
}

// InstantiateTerm grounds a term under the given bindings; ok is false if
// an unbound variable remains.
func InstantiateTerm(bank *term.Bank, t ast.Term, bound map[symtab.Sym]term.Value) (term.Value, bool) {
	switch t.Kind {
	case ast.Const:
		return t.Value, true
	case ast.Var:
		v, ok := bound[t.Name]
		return v, ok
	default:
		args := make([]term.Value, len(t.Args))
		for i, a := range t.Args {
			v, ok := InstantiateTerm(bank, a, bound)
			if !ok {
				return 0, false
			}
			args[i] = v
		}
		return bank.Compound(t.Name, args...), true
	}
}
