package engine

import (
	"fmt"
	"testing"

	"lincount/internal/ast"
	"lincount/internal/database"
	"lincount/internal/parser"
	"lincount/internal/symtab"
	"lincount/internal/term"
)

type solveFixture struct {
	bank *term.Bank
	db   *database.Database
	m    *Matcher
}

func newSolveFixture(t *testing.T, facts string) *solveFixture {
	t.Helper()
	bank := term.NewBank(symtab.New())
	db := database.New(bank)
	if err := db.LoadText(facts); err != nil {
		t.Fatal(err)
	}
	return &solveFixture{bank: bank, db: db, m: NewMatcher(bank, db, nil)}
}

func (f *solveFixture) body(t *testing.T, src string) []ast.Literal {
	t.Helper()
	r, err := parser.ParseRule(f.bank, "dummy :- "+src+".")
	if err != nil {
		t.Fatal(err)
	}
	return r.Body
}

func (f *solveFixture) syms(names ...string) []symtab.Sym {
	out := make([]symtab.Sym, len(names))
	for i, n := range names {
		out[i] = f.bank.Symbols().Intern(n)
	}
	return out
}

func (f *solveFixture) val(s string) term.Value {
	return term.Symbol(f.bank.Symbols().Intern(s))
}

func collect(t *testing.T, ps *PreparedSolve, bound []term.Value) [][]term.Value {
	t.Helper()
	var out [][]term.Value
	err := ps.Solve(bound, func(vals []term.Value) error {
		out = append(out, append([]term.Value(nil), vals...))
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return out
}

func TestPreparedSolveBasic(t *testing.T) {
	f := newSolveFixture(t, "up(a,b). up(a,c). up(b,d).")
	ps, err := f.m.Prepare(f.body(t, "up(X,Y)"), f.syms("X"), f.syms("Y"))
	if err != nil {
		t.Fatal(err)
	}
	got := collect(t, ps, []term.Value{f.val("a")})
	if len(got) != 2 {
		t.Fatalf("solutions = %d, want 2", len(got))
	}
	// Re-solving with another binding reuses the compiled plan.
	got = collect(t, ps, []term.Value{f.val("b")})
	if len(got) != 1 || got[0][0] != f.val("d") {
		t.Errorf("solutions for b = %v", got)
	}
	// No solutions.
	if got := collect(t, ps, []term.Value{f.val("zzz")}); len(got) != 0 {
		t.Errorf("solutions for zzz = %v", got)
	}
}

func TestPreparedSolveConjunction(t *testing.T) {
	f := newSolveFixture(t, "up(a,b). hop(b,c). hop(b,d). up(a,e).")
	ps, err := f.m.Prepare(f.body(t, "up(X,M), hop(M,Y)"), f.syms("X"), f.syms("Y", "M"))
	if err != nil {
		t.Fatal(err)
	}
	got := collect(t, ps, []term.Value{f.val("a")})
	if len(got) != 2 {
		t.Fatalf("solutions = %v", got)
	}
	for _, row := range got {
		if row[1] != f.val("b") {
			t.Errorf("M = %v, want b", f.bank.Format(row[1]))
		}
	}
}

func TestPreparedSolveBoundVarPassthrough(t *testing.T) {
	f := newSolveFixture(t, "up(a,b).")
	// X is both bound and wanted.
	ps, err := f.m.Prepare(f.body(t, "up(X,Y)"), f.syms("X"), f.syms("X", "Y"))
	if err != nil {
		t.Fatal(err)
	}
	got := collect(t, ps, []term.Value{f.val("a")})
	if len(got) != 1 || got[0][0] != f.val("a") || got[0][1] != f.val("b") {
		t.Errorf("solutions = %v", got)
	}
}

func TestPreparedSolveEmptyBody(t *testing.T) {
	f := newSolveFixture(t, "up(a,b).")
	ps, err := f.m.Prepare(nil, f.syms("X"), f.syms("X"))
	if err != nil {
		t.Fatal(err)
	}
	got := collect(t, ps, []term.Value{f.val("q")})
	if len(got) != 1 || got[0][0] != f.val("q") {
		t.Errorf("empty body solutions = %v", got)
	}
}

func TestPreparedSolveBuiltins(t *testing.T) {
	f := newSolveFixture(t, "n(1). n(2). n(3).")
	ps, err := f.m.Prepare(f.body(t, "n(Y), Y > X"), f.syms("X"), f.syms("Y"))
	if err != nil {
		t.Fatal(err)
	}
	got := collect(t, ps, []term.Value{term.Int(1)})
	if len(got) != 2 {
		t.Errorf("solutions = %v", got)
	}
	ps2, err := f.m.Prepare(f.body(t, "succ(X,Y)"), f.syms("X"), f.syms("Y"))
	if err != nil {
		t.Fatal(err)
	}
	got = collect(t, ps2, []term.Value{term.Int(41)})
	if len(got) != 1 || got[0][0] != term.Int(42) {
		t.Errorf("succ solutions = %v", got)
	}
}

func TestPreparedSolveNegation(t *testing.T) {
	f := newSolveFixture(t, "up(a,b). up(a,c). blocked(b).")
	ps, err := f.m.Prepare(f.body(t, "up(X,Y), not blocked(Y)"), f.syms("X"), f.syms("Y"))
	if err != nil {
		t.Fatal(err)
	}
	got := collect(t, ps, []term.Value{f.val("a")})
	if len(got) != 1 || got[0][0] != f.val("c") {
		t.Errorf("solutions = %v", got)
	}
}

func TestPreparedSolveCompoundBinding(t *testing.T) {
	f := newSolveFixture(t, "holds(box(a),1). holds(box(b),2).")
	ps, err := f.m.Prepare(f.body(t, "holds(box(X),N)"), f.syms("X"), f.syms("N"))
	if err != nil {
		t.Fatal(err)
	}
	got := collect(t, ps, []term.Value{f.val("b")})
	if len(got) != 1 || got[0][0] != term.Int(2) {
		t.Errorf("solutions = %v", got)
	}
}

func TestPreparedSolveUnsafeWantRejected(t *testing.T) {
	f := newSolveFixture(t, "up(a,b).")
	if _, err := f.m.Prepare(f.body(t, "up(X,Y)"), f.syms("X"), f.syms("Z")); err == nil {
		t.Error("unbound want variable accepted")
	}
}

func TestPreparedSolveWrongArity(t *testing.T) {
	f := newSolveFixture(t, "up(a,b).")
	ps, err := f.m.Prepare(f.body(t, "up(X,Y)"), f.syms("X"), f.syms("Y"))
	if err != nil {
		t.Fatal(err)
	}
	if err := ps.Solve([]term.Value{}, func([]term.Value) error { return nil }); err == nil {
		t.Error("wrong bound-value count accepted")
	}
}

func TestPreparedSolveDerivedOverlay(t *testing.T) {
	bank := term.NewBank(symtab.New())
	db := database.New(bank)
	if err := db.LoadText("base(a)."); err != nil {
		t.Fatal(err)
	}
	derived := map[symtab.Sym]*database.Relation{}
	d := database.NewRelation(1)
	d.Insert(database.Tuple{term.Symbol(bank.Symbols().Intern("x"))})
	derived[bank.Symbols().Intern("extra")] = d
	m := NewMatcher(bank, db, derived)
	r, err := parser.ParseRule(bank, "dummy :- extra(Y).")
	if err != nil {
		t.Fatal(err)
	}
	ps, err := m.Prepare(r.Body, nil, []symtab.Sym{bank.Symbols().Intern("Y")})
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	if err := ps.Solve(nil, func(vals []term.Value) error { n++; return nil }); err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Errorf("derived relation not visible: %d solutions", n)
	}
}

func TestMatcherOneShotSolve(t *testing.T) {
	f := newSolveFixture(t, "up(a,b). up(b,c).")
	bound := map[symtab.Sym]term.Value{f.syms("X")[0]: f.val("a")}
	var got []string
	err := f.m.Solve(f.body(t, "up(X,Y)"), bound, f.syms("Y"), func(vals []term.Value) error {
		got = append(got, f.bank.Format(vals[0]))
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(got) != "[b]" {
		t.Errorf("got %v", got)
	}
	if f.m.Solves == 0 {
		t.Error("Solves counter not incremented")
	}
}

func TestMatchTermsAndInstantiate(t *testing.T) {
	bank := term.NewBank(symtab.New())
	x := bank.Symbols().Intern("X")
	f := bank.Symbols().Intern("f")
	pat := []ast.Term{ast.Mk(bank, f, ast.V(x), ast.C(term.Int(1)))}
	val := bank.Compound(f, term.Int(7), term.Int(1))
	bound := map[symtab.Sym]term.Value{}
	if !MatchTerms(bank, pat, []term.Value{val}, bound) {
		t.Fatal("match failed")
	}
	if bound[x] != term.Int(7) {
		t.Errorf("X = %v", bound[x])
	}
	// Mismatch in a constant position.
	bad := bank.Compound(f, term.Int(7), term.Int(2))
	if MatchTerms(bank, pat, []term.Value{bad}, map[symtab.Sym]term.Value{}) {
		t.Error("mismatched constant accepted")
	}
	// Repeated variable consistency.
	pat2 := []ast.Term{ast.V(x), ast.V(x)}
	if MatchTerms(bank, pat2, []term.Value{term.Int(1), term.Int(2)}, map[symtab.Sym]term.Value{}) {
		t.Error("inconsistent repeated variable accepted")
	}
	// InstantiateTerm builds compounds and reports unbound vars.
	got, ok := InstantiateTerm(bank, pat[0], bound)
	if !ok || got != val {
		t.Errorf("InstantiateTerm = %v, %v", got, ok)
	}
	if _, ok := InstantiateTerm(bank, ast.V(bank.Symbols().Intern("Q")), bound); ok {
		t.Error("unbound variable instantiated")
	}
}
