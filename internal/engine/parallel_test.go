package engine

import (
	"fmt"
	"strings"
	"testing"
)

// branchyProgram defines many independent recursive cliques over shared
// base data plus a top stratum depending on all of them.
func branchyProgram(branches int) string {
	var sb strings.Builder
	for b := 0; b < branches; b++ {
		fmt.Fprintf(&sb, "tc%d(X,Y) :- e%d(X,Y).\n", b, b)
		fmt.Fprintf(&sb, "tc%d(X,Y) :- e%d(X,Z), tc%d(Z,Y).\n", b, b, b)
	}
	sb.WriteString("top(X,Y) :- tc0(X,Y).\n")
	for b := 1; b < branches; b++ {
		fmt.Fprintf(&sb, "top(X,Y) :- tc%d(X,Y).\n", b)
	}
	return sb.String()
}

func branchyFacts(branches, depth int) string {
	var sb strings.Builder
	for b := 0; b < branches; b++ {
		for i := 0; i < depth; i++ {
			fmt.Fprintf(&sb, "e%d(n%d_%d,n%d_%d). ", b, b, i, b, i+1)
		}
	}
	return sb.String()
}

func TestParallelMatchesSequential(t *testing.T) {
	const branches, depth = 6, 20
	f := newFixture(t, branchyFacts(branches, depth))
	src := branchyProgram(branches)
	seqRes := eval(t, f, src, Options{})
	parRes := eval(t, f, src, Options{Parallel: true})

	top := f.bank.Symbols().Intern("top")
	a, b := seqRes.Relation(top), parRes.Relation(top)
	if a.Len() != b.Len() {
		t.Fatalf("sequential %d tuples, parallel %d", a.Len(), b.Len())
	}
	for _, tu := range a.Tuples() {
		if !b.Contains(tu) {
			t.Errorf("parallel missing %v", tu)
		}
	}
	if seqRes.Stats.DerivedFacts != parRes.Stats.DerivedFacts {
		t.Errorf("derived facts differ: %d vs %d",
			seqRes.Stats.DerivedFacts, parRes.Stats.DerivedFacts)
	}
	if seqRes.Stats.Inferences != parRes.Stats.Inferences {
		t.Errorf("inferences differ: %d vs %d",
			seqRes.Stats.Inferences, parRes.Stats.Inferences)
	}
}

func TestParallelWithNegationStrata(t *testing.T) {
	f := newFixture(t, "e0(a,b). e1(a,c). node(a). node(b). node(c). node(d).")
	src := `
tc0(X,Y) :- e0(X,Y).
tc0(X,Y) :- e0(X,Z), tc0(Z,Y).
tc1(X,Y) :- e1(X,Y).
tc1(X,Y) :- e1(X,Z), tc1(Z,Y).
lonely(X) :- node(X), not tc0(a,X), not tc1(a,X).
`
	res := eval(t, f, src, Options{Parallel: true})
	got := f.answers(t, res, "?- lonely(X).")
	if fmt.Sprint(got) != "[a d]" {
		t.Errorf("lonely = %v", got)
	}
}

func TestParallelCompoundCliqueStaysSequential(t *testing.T) {
	// The list-building clique interns terms, so it must be excluded
	// from parallel execution but still evaluate correctly.
	f := newFixture(t, "e(a,b). e(b,c). f0(x,y).")
	src := `
walk(X,[X]) :- startw(X).
walk(Y,[Y|P]) :- walk(X,P), e(X,Y).
startw(a).
other(X,Y) :- f0(X,Y).
`
	res := eval(t, f, src, Options{Parallel: true})
	got := f.answers(t, res, "?- walk(c,P).")
	if fmt.Sprint(got) != "[c,[c,b,a]]" {
		t.Errorf("walk = %v", got)
	}
}

func TestLayerComponentsShape(t *testing.T) {
	f := newFixture(t, "")
	p := f.program(t, `
a1(X) :- base(X).
a2(X) :- base(X).
b1(X) :- a1(X), a2(X).
c1(X) :- b1(X).
`)
	comps, err := Stratify(p)
	if err != nil {
		t.Fatal(err)
	}
	layers := layerComponents(comps)
	if len(layers) != 3 {
		t.Fatalf("layers = %d: %v", len(layers), layers)
	}
	if len(layers[0]) != 2 || len(layers[1]) != 1 || len(layers[2]) != 1 {
		t.Errorf("layer sizes: %v", layers)
	}
}

func TestFlatComponentDetection(t *testing.T) {
	f := newFixture(t, "")
	p := f.program(t, `
flatrule(X,Y) :- e(X,Y), not g(X).
listy(X,[X|T]) :- listy(X,T).
grounded(X) :- e(X,[1,2]).
`)
	comps, err := Stratify(p)
	if err != nil {
		t.Fatal(err)
	}
	got := map[string]bool{}
	for _, c := range comps {
		got[f.bank.Symbols().String(c.Preds[0])] = flatComponent(c)
	}
	if !got["flatrule"] {
		t.Error("flat rule classified non-flat")
	}
	if got["listy"] {
		t.Error("list-building rule classified flat")
	}
	if !got["grounded"] {
		t.Error("ground compound constant should be flat (already interned)")
	}
}

func TestParallelManyLayersStress(t *testing.T) {
	// A deeper pyramid: 8 leaves, pairwise joined upward.
	var src strings.Builder
	var facts strings.Builder
	for i := 0; i < 8; i++ {
		fmt.Fprintf(&src, "l%d(X,Y) :- base%d(X,Y).\nl%d(X,Y) :- base%d(X,Z), l%d(Z,Y).\n", i, i, i, i, i)
		for j := 0; j < 10; j++ {
			fmt.Fprintf(&facts, "base%d(m%d_%d,m%d_%d). ", i, i, j, i, j+1)
		}
	}
	for i := 0; i < 4; i++ {
		fmt.Fprintf(&src, "m%d(X,Y) :- l%d(X,Y).\nm%d(X,Y) :- l%d(X,Y).\n", i, 2*i, i, 2*i+1)
	}
	src.WriteString("top(X,Y) :- m0(X,Y).\ntop(X,Y) :- m3(X,Y).\n")
	f := newFixture(t, facts.String())
	seqRes := eval(t, f, src.String(), Options{})
	parRes := eval(t, f, src.String(), Options{Parallel: true})
	top := f.bank.Symbols().Intern("top")
	if seqRes.Relation(top).Len() != parRes.Relation(top).Len() {
		t.Errorf("top differs: %d vs %d",
			seqRes.Relation(top).Len(), parRes.Relation(top).Len())
	}
}
