package engine

import (
	"errors"
	"fmt"
	"strings"
	"testing"

	"lincount/internal/ast"
	"lincount/internal/database"
	"lincount/internal/parser"
	"lincount/internal/symtab"
	"lincount/internal/term"
)

type fixture struct {
	bank *term.Bank
	db   *database.Database
}

func newFixture(t *testing.T, facts string) *fixture {
	t.Helper()
	b := term.NewBank(symtab.New())
	db := database.New(b)
	if facts != "" {
		if err := db.LoadText(facts); err != nil {
			t.Fatal(err)
		}
	}
	return &fixture{bank: b, db: db}
}

func (f *fixture) program(t *testing.T, src string) *ast.Program {
	t.Helper()
	res, err := parser.Parse(f.bank, src)
	if err != nil {
		t.Fatal(err)
	}
	return res.Program
}

func (f *fixture) answers(t *testing.T, res *Result, goal string) []string {
	t.Helper()
	q, err := parser.ParseQuery(f.bank, goal)
	if err != nil {
		t.Fatal(err)
	}
	ts := Answers(res, f.db, q)
	out := make([]string, len(ts))
	for i, tu := range ts {
		parts := make([]string, len(tu))
		for j, v := range tu {
			parts[j] = f.bank.Format(v)
		}
		out[i] = strings.Join(parts, ",")
	}
	return out
}

func eval(t *testing.T, f *fixture, src string, opts Options) *Result {
	t.Helper()
	res, err := Eval(f.program(t, src), f.db, opts)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestTransitiveClosureChain(t *testing.T) {
	f := newFixture(t, "e(a,b). e(b,c). e(c,d).")
	res := eval(t, f, `
tc(X,Y) :- e(X,Y).
tc(X,Y) :- e(X,Z), tc(Z,Y).
`, Options{})
	got := f.answers(t, res, "?- tc(a,X).")
	want := []string{"a,b", "a,c", "a,d"}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Errorf("tc(a,X) = %v, want %v", got, want)
	}
	if res.Relation(f.bank.Symbols().Intern("tc")).Len() != 6 {
		t.Errorf("tc has %d tuples, want 6", res.Relation(f.bank.Symbols().Intern("tc")).Len())
	}
}

func TestTransitiveClosureCycleTerminates(t *testing.T) {
	f := newFixture(t, "e(a,b). e(b,c). e(c,a).")
	res := eval(t, f, `
tc(X,Y) :- e(X,Y).
tc(X,Y) :- e(X,Z), tc(Z,Y).
`, Options{})
	tc := res.Relation(f.bank.Symbols().Intern("tc"))
	if tc.Len() != 9 {
		t.Errorf("tc on 3-cycle has %d tuples, want 9", tc.Len())
	}
}

func TestSameGeneration(t *testing.T) {
	// A small tree: a has children b,c; b has children d,e.
	f := newFixture(t, `
up(d,b). up(e,b). up(b,a). up(c,a).
flat(a,a). flat(b,c). flat(c,b).
down(a,a). down(b,d). down(c,e).
`)
	res := eval(t, f, `
sg(X,Y) :- flat(X,Y).
sg(X,Y) :- up(X,X1), sg(X1,Y1), down(Y1,Y).
`, Options{})
	got := f.answers(t, res, "?- sg(d,Y).")
	// d up b flat c down e; so sg(d,e). Also d up b up a flat a down a down ...
	if len(got) == 0 {
		t.Fatal("no same-generation answers")
	}
	found := false
	for _, g := range got {
		if g == "d,e" {
			found = true
		}
	}
	if !found {
		t.Errorf("sg(d,e) missing from %v", got)
	}
}

func TestNaiveAndSemiNaiveAgree(t *testing.T) {
	f := newFixture(t, "e(a,b). e(b,c). e(c,d). e(d,b). e(d,e).")
	src := `
tc(X,Y) :- e(X,Y).
tc(X,Y) :- e(X,Z), tc(Z,Y).
`
	semi := eval(t, f, src, Options{})
	naive := eval(t, f, src, Options{Naive: true})
	tc := f.bank.Symbols().Intern("tc")
	a, b := semi.Relation(tc), naive.Relation(tc)
	if a.Len() != b.Len() {
		t.Fatalf("semi-naive %d tuples, naive %d", a.Len(), b.Len())
	}
	for _, tu := range a.Tuples() {
		if !b.Contains(tu) {
			t.Errorf("naive missing %v", tu)
		}
	}
	if naive.Stats.Inferences < semi.Stats.Inferences {
		t.Errorf("naive made fewer inferences (%d) than semi-naive (%d)",
			naive.Stats.Inferences, semi.Stats.Inferences)
	}
}

func TestRightRecursionAndNonlinearAgree(t *testing.T) {
	f := newFixture(t, "e(a,b). e(b,c). e(c,d). e(d,e). e(e,f).")
	right := eval(t, f, "tc(X,Y) :- e(X,Y).\ntc(X,Y) :- e(X,Z), tc(Z,Y).\n", Options{})
	left := eval(t, f, "tc(X,Y) :- e(X,Y).\ntc(X,Y) :- tc(X,Z), e(Z,Y).\n", Options{})
	quad := eval(t, f, "tc(X,Y) :- e(X,Y).\ntc(X,Y) :- tc(X,Z), tc(Z,Y).\n", Options{})
	tc := f.bank.Symbols().Intern("tc")
	n := right.Relation(tc).Len()
	if left.Relation(tc).Len() != n || quad.Relation(tc).Len() != n {
		t.Errorf("variants disagree: %d / %d / %d",
			n, left.Relation(tc).Len(), quad.Relation(tc).Len())
	}
	if n != 15 {
		t.Errorf("tc on 5-chain = %d tuples, want 15", n)
	}
}

func TestStratifiedNegation(t *testing.T) {
	f := newFixture(t, "node(a). node(b). node(c). e(a,b).")
	res := eval(t, f, `
reach(a).
reach(Y) :- reach(X), e(X,Y).
unreach(X) :- node(X), not reach(X).
`, Options{})
	got := f.answers(t, res, "?- unreach(X).")
	if fmt.Sprint(got) != "[c]" {
		t.Errorf("unreach = %v, want [c]", got)
	}
}

func TestNonStratifiedRejected(t *testing.T) {
	f := newFixture(t, "q(a).")
	_, err := Eval(f.program(t, `
p(X) :- q(X), not r(X).
r(X) :- q(X), not p(X).
`), f.db, Options{})
	if err == nil || !strings.Contains(err.Error(), "not stratified") {
		t.Errorf("err = %v, want not-stratified error", err)
	}
}

func TestNegationOverEarlierStratum(t *testing.T) {
	f := newFixture(t, "e(a,b). e(b,c). node(a). node(b). node(c).")
	res := eval(t, f, `
tc(X,Y) :- e(X,Y).
tc(X,Y) :- e(X,Z), tc(Z,Y).
noloop(X) :- node(X), not tc(X,X).
`, Options{})
	got := f.answers(t, res, "?- noloop(X).")
	if fmt.Sprint(got) != "[a b c]" {
		t.Errorf("noloop = %v", got)
	}
}

func TestBuiltins(t *testing.T) {
	f := newFixture(t, "n(1). n(2). n(3).")
	res := eval(t, f, `
lt(X,Y) :- n(X), n(Y), X < Y.
ne(X,Y) :- n(X), n(Y), X != Y.
nx(X,Y) :- n(X), succ(X,Y).
same(X,Y) :- n(X), Y = X.
`, Options{})
	if got := f.answers(t, res, "?- lt(X,Y)."); fmt.Sprint(got) != "[1,2 1,3 2,3]" {
		t.Errorf("lt = %v", got)
	}
	if got := f.answers(t, res, "?- ne(1,Y)."); fmt.Sprint(got) != "[1,2 1,3]" {
		t.Errorf("ne = %v", got)
	}
	if got := f.answers(t, res, "?- nx(X,Y)."); fmt.Sprint(got) != "[1,2 2,3 3,4]" {
		t.Errorf("nx = %v", got)
	}
	if got := f.answers(t, res, "?- same(2,Y)."); fmt.Sprint(got) != "[2,2]" {
		t.Errorf("same = %v", got)
	}
}

func TestSuccOverflowBoundary(t *testing.T) {
	// At the edges of the 62-bit Value range succ fails instead of
	// overflowing.
	f := newFixture(t, fmt.Sprintf("big(%d). small(-%d).", int64(1)<<61-1, int64(1)<<61))
	res := eval(t, f, `
next(Y) :- big(X), succ(X,Y).
prev(X) :- small(Y), succ(X,Y).
`, Options{})
	if got := f.answers(t, res, "?- next(Y)."); len(got) != 0 {
		t.Errorf("next = %v, want none", got)
	}
	if got := f.answers(t, res, "?- prev(X)."); len(got) != 0 {
		t.Errorf("prev = %v, want none", got)
	}
}

func TestSuccBackward(t *testing.T) {
	f := newFixture(t, "m(5).")
	res := eval(t, f, "prev(X) :- m(Y), succ(X,Y).", Options{})
	if got := f.answers(t, res, "?- prev(X)."); fmt.Sprint(got) != "[4]" {
		t.Errorf("prev = %v", got)
	}
}

func TestListsInRules(t *testing.T) {
	f := newFixture(t, "")
	res := eval(t, f, `
l([a,b,c]).
member(X,[X|T]) :- l2([X|T]).
l2(L) :- l(L).
l2(T) :- l2([H|T]).
first(X) :- l([X|T]).
`, Options{})
	if got := f.answers(t, res, "?- first(X)."); fmt.Sprint(got) != "[a]" {
		t.Errorf("first = %v", got)
	}
	if got := f.answers(t, res, "?- member(X,[b,c])."); len(got) != 1 {
		t.Errorf("member = %v", got)
	}
}

func TestPathArgumentStack(t *testing.T) {
	// Mimics the counting rewrite: push/pop list cells through recursion.
	f := newFixture(t, "up(a,b). up(b,c). flat(c,c2). down(c2,b2). down(b2,a2).")
	res := eval(t, f, `
cp(a,[]).
cp(X1,[r|L]) :- cp(X,L), up(X,X1).
p(Y,L) :- cp(X,L), flat(X,Y).
p(Y,L) :- p(Y1,[r|L]), down(Y1,Y).
`, Options{})
	if got := f.answers(t, res, "?- p(Y,[])."); fmt.Sprint(got) != "[a2,[]]" {
		t.Errorf("p(Y,[]) = %v", got)
	}
}

func TestUnsafeRuleRejected(t *testing.T) {
	f := newFixture(t, "q(a).")
	cases := []string{
		"p(X,Y) :- q(X).",            // head var not in body
		"p(X) :- q(X), X < Y.",       // comparison with unbound var
		"p(X) :- not q(X).",          // negation with unbound var
		"p(X) :- q(Y), not r(X, Y).", // negation with unbound var
	}
	for _, src := range cases {
		if _, err := Eval(f.program(t, src), f.db, Options{}); err == nil {
			t.Errorf("unsafe rule %q accepted", src)
		}
	}
}

func TestArityMismatchRejected(t *testing.T) {
	f := newFixture(t, "q(a).")
	if _, err := Eval(f.program(t, "p(X) :- q(X), q(X,X)."), f.db, Options{}); err == nil {
		t.Error("arity mismatch accepted")
	}
}

func TestBudgetGuardOnInfiniteProgram(t *testing.T) {
	f := newFixture(t, "")
	_, err := Eval(f.program(t, `
count(0).
count(Y) :- count(X), succ(X,Y).
`), f.db, Options{MaxIterations: 500})
	if !errors.Is(err, ErrBudget) {
		t.Errorf("err = %v, want ErrBudget", err)
	}
	_, err = Eval(f.program(t, `
count(0).
count(Y) :- count(X), succ(X,Y).
`), f.db, Options{MaxDerivedFacts: 1000})
	if !errors.Is(err, ErrBudget) {
		t.Errorf("err = %v, want ErrBudget", err)
	}
}

func TestProgramFactsMergeWithDatabase(t *testing.T) {
	f := newFixture(t, "e(a,b).")
	res := eval(t, f, `
e(b,c).
tc(X,Y) :- e(X,Y).
tc(X,Y) :- e(X,Z), tc(Z,Y).
`, Options{})
	got := f.answers(t, res, "?- tc(a,Y).")
	if fmt.Sprint(got) != "[a,b a,c]" {
		t.Errorf("tc(a,Y) = %v", got)
	}
}

func TestZeroArityPredicates(t *testing.T) {
	f := newFixture(t, "")
	res := eval(t, f, `
rainy.
wet :- rainy.
dry :- sunny.
`, Options{})
	wet := res.Relation(f.bank.Symbols().Intern("wet"))
	if wet == nil || wet.Len() != 1 {
		t.Error("wet not derived")
	}
	dry := res.Relation(f.bank.Symbols().Intern("dry"))
	if dry != nil && dry.Len() != 0 {
		t.Error("dry derived without sunny")
	}
}

func TestMutualRecursion(t *testing.T) {
	f := newFixture(t, "e(a,b). e(b,c). e(c,d). e(d,e).")
	res := eval(t, f, `
even(X,X) :- e(X,_).
even(X,Y) :- odd(X,Z), e(Z,Y).
odd(X,Y) :- even(X,Z), e(Z,Y).
`, Options{})
	got := f.answers(t, res, "?- even(a,Y).")
	if fmt.Sprint(got) != "[a,a a,c a,e]" {
		t.Errorf("even(a,Y) = %v", got)
	}
}

func TestDepGraphAnalysis(t *testing.T) {
	f := newFixture(t, "")
	p := f.program(t, `
sg(X,Y) :- flat(X,Y).
sg(X,Y) :- up(X,X1), sg(X1,Y1), down(Y1,Y).
top(X) :- sg(X,X).
`)
	g := NewDepGraph(p)
	sg := f.bank.Symbols().Intern("sg")
	top := f.bank.Symbols().Intern("top")
	up := f.bank.Symbols().Intern("up")
	if !g.MutuallyRecursive(sg, sg) {
		t.Error("sg not self-recursive")
	}
	if g.MutuallyRecursive(top, sg) {
		t.Error("top and sg reported mutually recursive")
	}
	if !g.DependsOn(top, sg) || !g.DependsOn(sg, up) || g.DependsOn(sg, top) {
		t.Error("DependsOn wrong")
	}
	if !g.IsDerived(sg) || g.IsDerived(up) {
		t.Error("IsDerived wrong")
	}
}

func TestStratifyOrder(t *testing.T) {
	f := newFixture(t, "")
	p := f.program(t, `
a(X) :- b(X).
b(X) :- base(X).
b(X) :- a(X).
c(X) :- a(X), not d(X).
d(X) :- base(X).
`)
	comps, err := Stratify(p)
	if err != nil {
		t.Fatal(err)
	}
	pos := map[string]int{}
	for i, c := range comps {
		for _, pr := range c.Preds {
			pos[f.bank.Symbols().String(pr)] = i
		}
	}
	if pos["a"] != pos["b"] {
		t.Error("a and b should share a component")
	}
	if !(pos["a"] < pos["c"] && pos["d"] < pos["c"]) {
		t.Errorf("topological order wrong: %v", pos)
	}
	for _, c := range comps {
		if len(c.Preds) == 2 && !c.Recursive {
			t.Error("a/b component not marked recursive")
		}
		if len(c.Preds) == 1 && c.Preds[0] == f.bank.Symbols().Intern("d") && c.Recursive {
			t.Error("d marked recursive")
		}
	}
}

func TestStatsPopulated(t *testing.T) {
	f := newFixture(t, "e(a,b). e(b,c).")
	res := eval(t, f, "tc(X,Y) :- e(X,Y).\ntc(X,Y) :- e(X,Z), tc(Z,Y).\n", Options{})
	if res.Stats.DerivedFacts != 3 {
		t.Errorf("DerivedFacts = %d, want 3", res.Stats.DerivedFacts)
	}
	if res.Stats.Inferences < 3 || res.Stats.Iterations < 2 || res.Stats.Probes == 0 {
		t.Errorf("stats look wrong: %+v", res.Stats)
	}
}

func TestSelfJoinSameVariable(t *testing.T) {
	f := newFixture(t, "e(a,a). e(a,b). e(b,b).")
	res := eval(t, f, "loop(X) :- e(X,X).", Options{})
	if got := f.answers(t, res, "?- loop(X)."); fmt.Sprint(got) != "[a b]" {
		t.Errorf("loop = %v", got)
	}
}

func TestConstantsInRuleBody(t *testing.T) {
	f := newFixture(t, "e(a,b). e(b,c). e(a,c).")
	res := eval(t, f, "fromA(Y) :- e(a,Y).", Options{})
	if got := f.answers(t, res, "?- fromA(Y)."); fmt.Sprint(got) != "[b c]" {
		t.Errorf("fromA = %v", got)
	}
}
