package engine

import (
	"strings"
	"testing"
)

func TestPlanTextShape(t *testing.T) {
	f := newFixture(t, "up(a,b). up(b,c). flat(b,x).")
	p := f.program(t, `
sg(X,Y) :- flat(X,Y).
sg(X,Y) :- up(X,X1), sg(X1,Y1), down(Y1,Y).
`)
	plan, err := PlanText(p, f.db)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"stratum 1: {sg} — recursive (semi-naive fixpoint)",
		"rule  sg(X,Y) :- flat(X,Y).",
		"Δ#1",
		"Δsg_bf", // no — adjusted below
	} {
		if want == "Δsg_bf" {
			continue
		}
		if !strings.Contains(plan, want) {
			t.Errorf("plan missing %q:\n%s", want, plan)
		}
	}
	// The delta ordering must start from the recursive literal.
	for _, line := range strings.Split(plan, "\n") {
		if strings.Contains(line, "Δ#1") {
			if !strings.Contains(line, "Δsg/") {
				t.Errorf("delta ordering does not start from sg: %s", line)
			}
			idx := strings.Index(line, ":")
			first := strings.TrimSpace(line[idx+1:])
			if !strings.HasPrefix(first, "Δsg/") {
				t.Errorf("delta literal not first: %s", line)
			}
		}
	}
}

func TestPlanTextMarksNegationAndBuiltins(t *testing.T) {
	f := newFixture(t, "q(1). r(1).")
	p := f.program(t, "p(X) :- q(X), not r(X), X > 0.")
	plan, err := PlanText(p, f.db)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(plan, "¬r/") || !strings.Contains(plan, "⊕>") {
		t.Errorf("plan lacks negation/builtin markers:\n%s", plan)
	}
}

func TestPlanTextFactsAndStrataOrder(t *testing.T) {
	f := newFixture(t, "")
	p := f.program(t, `
base(1).
mid(X) :- base(X).
top(X) :- mid(X), not base2(X).
base2(2).
`)
	plan, err := PlanText(p, f.db)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(plan, "fact  base(1).") {
		t.Errorf("plan:\n%s", plan)
	}
	// top's stratum must come after mid's and base2's.
	if strings.Index(plan, "{top}") < strings.Index(plan, "{mid}") {
		t.Errorf("strata out of order:\n%s", plan)
	}
}

func TestPlanTextErrorsOnUnsafeProgram(t *testing.T) {
	f := newFixture(t, "")
	p := f.program(t, "p(X,Y) :- q(X).")
	if _, err := PlanText(p, f.db); err == nil {
		t.Error("unsafe program planned without error")
	}
}
