package engine

import (
	"fmt"
	"sort"
	"strings"
	"testing"

	"lincount/internal/database"
	"lincount/internal/term"
)

// relStrings renders a relation's rows in RowID order.
func relStrings(bank *term.Bank, r *database.Relation) []string {
	if r == nil {
		return nil
	}
	out := make([]string, 0, r.Len())
	for id := database.RowID(0); int(id) < r.Len(); id++ {
		row := r.Row(id)
		parts := make([]string, len(row))
		for j, v := range row {
			parts[j] = bank.Format(v)
		}
		out = append(out, strings.Join(parts, ","))
	}
	return out
}

// TestBatchedMatchesLegacy checks the batched pipeline computes the same
// fixpoint as the tuple-at-a-time path over a spread of rule shapes. The
// two paths may interleave derivations differently across iterations
// (deferred insertion), so relations are compared as sets.
func TestBatchedMatchesLegacy(t *testing.T) {
	cases := []struct {
		name  string
		facts string
		src   string
		preds []string
	}{
		{
			name:  "linear tc",
			facts: "e(a,b). e(b,c). e(c,d). e(d,a).",
			src:   "tc(X,Y) :- e(X,Y).\ntc(X,Y) :- e(X,Z), tc(Z,Y).",
			preds: []string{"tc"},
		},
		{
			name:  "nonlinear tc",
			facts: "e(a,b). e(b,c). e(c,d). e(d,e). e(e,f).",
			src:   "tc(X,Y) :- e(X,Y).\ntc(X,Y) :- tc(X,Z), tc(Z,Y).",
			preds: []string{"tc"},
		},
		{
			name: "same generation",
			facts: `up(d,b). up(e,b). up(b,a). up(c,a).
flat(a,a). flat(b,c). flat(c,b).
down(a,a). down(b,d). down(c,e).`,
			src:   "sg(X,Y) :- flat(X,Y).\nsg(X,Y) :- up(X,X1), sg(X1,Y1), down(Y1,Y).",
			preds: []string{"sg"},
		},
		{
			name:  "builtins",
			facts: "n(1). n(2). n(3). n(4).",
			src:   "lt(X,Y) :- n(X), n(Y), X < Y.\nnx(X,Y) :- n(X), succ(X,Y).\nsame(X,Y) :- n(X), n(Y), X = Y.",
			preds: []string{"lt", "nx", "same"},
		},
		{
			name:  "negation",
			facts: "node(a). node(b). node(c). e(a,b).",
			src:   "reach(X) :- e(_,X).\nunreach(X) :- node(X), not reach(X).",
			preds: []string{"reach", "unreach"},
		},
		{
			name:  "compound heads",
			facts: "edge(a,b). edge(b,c). edge(c,d).",
			src:   "path(X,Y,step(X,Y)) :- edge(X,Y).\npath(X,Y,via(Z,P)) :- edge(X,Z), path(Z,Y,P).",
			preds: []string{"path"},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			fb := newFixture(t, tc.facts)
			batched := eval(t, fb, tc.src, Options{})
			fl := newFixture(t, tc.facts)
			legacy := eval(t, fl, tc.src, Options{NoBatch: true})
			for _, p := range tc.preds {
				got := relStrings(fb.bank, batched.Relation(fb.bank.Symbols().Intern(p)))
				want := relStrings(fl.bank, legacy.Relation(fl.bank.Symbols().Intern(p)))
				sort.Strings(got)
				sort.Strings(want)
				if fmt.Sprint(got) != fmt.Sprint(want) {
					t.Errorf("%s: batched %v != legacy %v", p, got, want)
				}
			}
			if batched.Stats.DerivedFacts != legacy.Stats.DerivedFacts {
				t.Errorf("DerivedFacts: batched %d != legacy %d",
					batched.Stats.DerivedFacts, legacy.Stats.DerivedFacts)
			}
		})
	}
}

// fanFacts builds a wide two-hop graph: r -> x_i -> y_i for n spokes, so
// the recursive tc rule sees delta windows well past the parallel
// threshold.
func fanFacts(n int) string {
	var sb strings.Builder
	for i := 0; i < n; i++ {
		fmt.Fprintf(&sb, "e(r, x%d). e(x%d, y%d).\n", i, i, i)
	}
	return sb.String()
}

const tcSrc = "tc(X,Y) :- e(X,Y).\ntc(X,Y) :- e(X,Z), tc(Z,Y)."

// TestParallelByteIdentical is the tentpole determinism check: a rule run
// partitioned across the worker pool must leave the head relation
// byte-identical to a serial run — same rows, same RowID order.
func TestParallelByteIdentical(t *testing.T) {
	facts := fanFacts(3000)
	fs := newFixture(t, facts)
	serial := eval(t, fs, tcSrc, Options{})
	if serial.Stats.ParallelRuns != 0 {
		t.Fatalf("serial run recorded %d parallel runs", serial.Stats.ParallelRuns)
	}
	for _, workers := range []int{2, 4, 7} {
		fp := newFixture(t, facts)
		par := eval(t, fp, tcSrc, Options{JoinWorkers: workers})
		if par.Stats.ParallelRuns == 0 {
			t.Fatalf("JoinWorkers=%d: worker pool never engaged", workers)
		}
		tcS := relStrings(fs.bank, serial.Relation(fs.bank.Symbols().Intern("tc")))
		tcP := relStrings(fp.bank, par.Relation(fp.bank.Symbols().Intern("tc")))
		if len(tcS) != len(tcP) {
			t.Fatalf("JoinWorkers=%d: %d rows != serial %d", workers, len(tcP), len(tcS))
		}
		for i := range tcS {
			if tcS[i] != tcP[i] {
				t.Fatalf("JoinWorkers=%d: row %d = %q, serial has %q", workers, i, tcP[i], tcS[i])
			}
		}
		if par.Stats.DerivedFacts != serial.Stats.DerivedFacts ||
			par.Stats.Inferences != serial.Stats.Inferences {
			t.Errorf("JoinWorkers=%d: stats diverged: parallel %+v, serial %+v",
				workers, par.Stats, serial.Stats)
		}
	}
}

// TestParallelRespectsFactBudget checks the shared fact budget still
// trips (with the usual error kind) when derivations happen under the
// worker pool, and that the engine does not overshoot the limit by more
// than the final flush.
func TestParallelRespectsFactBudget(t *testing.T) {
	f := newFixture(t, fanFacts(2500))
	_, err := Eval(f.program(t, tcSrc), f.db, Options{JoinWorkers: 4, MaxDerivedFacts: 1000})
	if err == nil {
		t.Fatal("expected fact-budget error")
	}
	if !strings.Contains(err.Error(), "fact") {
		t.Errorf("unexpected error: %v", err)
	}
}

// TestParallelSkipsCompoundRules checks the flat gate: rules with
// compound patterns must stay serial (term interning is unsynchronized)
// even when the source window is wide.
func TestParallelSkipsCompoundRules(t *testing.T) {
	var sb strings.Builder
	for i := 0; i < 3000; i++ {
		fmt.Fprintf(&sb, "e(n%d, n%d).\n", i, i+1)
	}
	f := newFixture(t, sb.String())
	src := "w(X,Y,p(X,Y)) :- e(X,Y).\n"
	res := eval(t, f, src, Options{JoinWorkers: 4})
	if res.Stats.ParallelRuns != 0 {
		t.Errorf("compound-head rule ran parallel %d times", res.Stats.ParallelRuns)
	}
	if got := res.Relation(f.bank.Symbols().Intern("w")).Len(); got != 3000 {
		t.Errorf("w has %d rows, want 3000", got)
	}
}

// TestBatchedDeltaWindows pins the semi-naive contract on the batched
// path: the recursive rule's probe count must scale with the delta, not
// with the accumulated relation (the watermark-window regression guard).
func TestBatchedDeltaWindows(t *testing.T) {
	chain := func(n int) string {
		var sb strings.Builder
		for i := 0; i < n; i++ {
			fmt.Fprintf(&sb, "e(n%d, n%d).\n", i, i+1)
		}
		return sb.String()
	}
	f := newFixture(t, chain(40))
	res := eval(t, f, tcSrc, Options{})
	fb := newFixture(t, chain(40))
	legacy := eval(t, fb, tcSrc, Options{NoBatch: true})
	// Semi-naive on a chain derives each tc tuple exactly once; if the
	// batched path re-read full relations instead of delta windows the
	// inference count would be quadratically larger.
	if res.Stats.Inferences > 2*legacy.Stats.Inferences {
		t.Errorf("batched Inferences %d vs legacy %d: delta windows not honored",
			res.Stats.Inferences, legacy.Stats.Inferences)
	}
}

// TestScratchIsolation (satellite: shared-state removal) checks that two
// evaluators compiled from one plan never share join scratch: compiled
// rules are stateless, so concurrent evaluations over the same program
// must not interfere. Run with -race.
func TestScratchIsolation(t *testing.T) {
	f := newFixture(t, "e(a,b). e(b,c). e(c,d).")
	p := f.program(t, tcSrc)
	done := make(chan []string, 8)
	for g := 0; g < 8; g++ {
		go func() {
			res, err := Eval(p, f.db, Options{})
			if err != nil {
				done <- []string{"err: " + err.Error()}
				return
			}
			done <- relStrings(f.bank, res.Relation(f.bank.Symbols().Intern("tc")))
		}()
	}
	first := <-done
	for g := 1; g < 8; g++ {
		if got := <-done; fmt.Sprint(got) != fmt.Sprint(first) {
			t.Fatalf("goroutine result %v != %v", got, first)
		}
	}
}
