package engine

// Batched, streaming join execution. runRuleFast routes ordinary rule
// runs here: instead of the recursive tuple-at-a-time walk in join(),
// each rule body ordering becomes a pipeline of streaming operators, one
// per literal, connected by fixed-capacity batches of binding frames.
// The source operator consumes the delta as a RowID range; every
// relation operator instantiates the probe keys for a whole input batch,
// resolves them in one ProbeRangeBatch against a cached, pre-sized index
// handle, and extends the surviving frames; builtins and negations are
// batch filters; the sink instantiates head tuples into a rule-local
// emission relation.
//
// Deferred insertion is the pipeline's key discipline: head tuples are
// collected (deduplicated) in the emission relation and flushed into the
// head relation only after the join completes. During a run every
// relation the pipeline reads is therefore frozen, which is what makes
// the cached index handles sound and the delta range partitionable: with
// JoinWorkers > 1 a wide source window is split into contiguous
// sub-ranges evaluated concurrently into private emission buffers,
// merged in partition order. Each operator preserves its input order and
// expands matches in ascending RowID order, so the concatenated
// emissions of the partitions equal the serial emission sequence exactly
// — the head relation's contents and RowID assignment are byte-identical
// to a serial run (see docs/INTERNALS.md § Batched execution pipeline).
//
// The incremental engine's windowed and row-state read disciplines stay
// on the tuple-at-a-time join() path, as do Matcher/PreparedSolve.

import (
	"context"
	"runtime/debug"
	"sync"

	"lincount/internal/ast"
	"lincount/internal/database"
	"lincount/internal/faultinject"
	"lincount/internal/limits"
	"lincount/internal/symtab"
	"lincount/internal/term"
)

const (
	// batchFrames is the operator batch size: how many binding frames a
	// level buffers before pushing them downstream. Large enough to
	// amortize per-batch costs, small enough to stay cache-resident.
	batchFrames = 256
	// joinParallelMinRows is the minimum source window width worth
	// partitioning across the worker pool; below it the fork/merge
	// overhead outweighs the parallelism.
	joinParallelMinRows = 2048
	// maxJoinWorkers caps Options.JoinWorkers.
	maxJoinWorkers = 64
)

// Integer bounds of the 62-bit term.Value encoding (shared with
// stepBuiltin's succ handling).
const (
	succMaxInt = 1<<61 - 1
	succMinInt = -(1 << 61)
)

// execLevel is the runtime state of one pipeline operator: the per-run
// source resolution (relation, RowID window, index handle) and the
// reusable batch buffers.
type execLevel struct {
	// Resolved by begin() each run.
	rel    *database.Relation
	lo, hi database.RowID
	// Index handle cache, revalidated by relation identity.
	ixRel *database.Relation
	ix    database.Index
	// checkArgs lists the argument positions not covered by probeMask —
	// the ones a matched row must still be unified on (masked positions
	// are equal by index construction and are skipped).
	checkArgs []int
	// probeArgs lists the argument positions covered by probeMask, in
	// ascending order (the key column order). When every one of them is
	// a plain variable, probeSlots holds their frame slots and the key
	// loop skips pattern dispatch entirely.
	probeArgs  []int
	probeSlots []int
	// out buffers this operator's output frames (batchFrames × nslots).
	out  []term.Value
	outN int
	// keys holds the batch's probe keys (relation ops) or one negation
	// probe tuple; matches is the ProbeRangeBatch result buffer.
	keys    []term.Value
	matches []database.RowMatch
}

// ruleExec is the per-evaluation execution state of one rule variant's
// pipeline. It is reused across fixpoint iterations (buffers amortized)
// and owned by exactly one goroutine; parallel runs build one per worker.
type ruleExec struct {
	ev           *evaluator
	cr           *compiledRule
	deltaOcc     int
	order        []compiledLit
	deltaBodyIdx int
	nslots       int
	levels       []execLevel
	frame0       []term.Value
	headTup      []term.Value
	// The head sink. A serial run inserts straight into the head
	// relation (headRel/grew set, emit nil) with full derived-fact
	// accounting — the single-insert fast path; read windows were
	// snapshotted by begin(), so mid-run growth is never observed. A
	// parallel worker instead collects into its private emit relation
	// (deduplicated, emission-ordered), merged by flushEmit afterward.
	headRel *database.Relation
	grew    *bool
	emit    *database.Relation
	// empty marks a run whose source or some relation literal resolved
	// to an empty window: no output is possible.
	empty bool
	// workers caches the per-worker clones for parallel runs.
	workers []*ruleExec
}

func newRuleExec(ev *evaluator, cr *compiledRule, deltaOcc int) *ruleExec {
	order, dbi := cr.orderFor(deltaOcc)
	re := &ruleExec{
		ev:           ev,
		cr:           cr,
		deltaOcc:     deltaOcc,
		order:        order,
		deltaBodyIdx: dbi,
		nslots:       cr.nslots,
		levels:       make([]execLevel, len(order)),
		frame0:       make([]term.Value, cr.nslots),
		headTup:      make([]term.Value, len(cr.head)),
	}
	for i := range order {
		cl := &order[i]
		lv := &re.levels[i]
		lv.out = make([]term.Value, batchFrames*cr.nslots)
		switch cl.kind {
		case litRelation:
			varsOnly := true
			for j := range cl.args {
				if cl.probeMask&(1<<uint(j)) == 0 {
					lv.checkArgs = append(lv.checkArgs, j)
					continue
				}
				lv.probeArgs = append(lv.probeArgs, j)
				if cl.args[j].kind != ast.Var {
					varsOnly = false
				}
			}
			if varsOnly {
				for _, j := range lv.probeArgs {
					lv.probeSlots = append(lv.probeSlots, cl.args[j].slot)
				}
			}
			lv.keys = make([]term.Value, 0, batchFrames*database.KeyWidth(cl.probeMask))
		case litNegated:
			lv.keys = make([]term.Value, len(cl.args))
		}
	}
	return re
}

// execFor returns (creating if needed) the cached pipeline state for one
// rule variant of this evaluator.
func (ev *evaluator) execFor(cr *compiledRule, deltaOcc int) *ruleExec {
	if ev.execs == nil {
		ev.execs = make(map[*compiledRule][]*ruleExec)
	}
	slots := ev.execs[cr]
	if slots == nil {
		slots = make([]*ruleExec, len(cr.deltaOrders)+1)
		ev.execs[cr] = slots
	}
	k := deltaOcc + 1
	if k < 0 || k >= len(slots) {
		k = 0
	}
	if slots[k] == nil {
		slots[k] = newRuleExec(ev, cr, deltaOcc)
	}
	return slots[k]
}

// begin resolves every operator's source for one run: the delta literal
// gets its RowID window, other relation literals read their full (frozen)
// relation, and probe levels revalidate their cached index handle.
func (re *ruleExec) begin(delta map[symtab.Sym]deltaView) {
	ev := re.ev
	re.empty = false
	for i := range re.order {
		cl := &re.order[i]
		lv := &re.levels[i]
		lv.outN = 0
		switch cl.kind {
		case litRelation:
			if re.deltaBodyIdx >= 0 && cl.bodyIdx == re.deltaBodyIdx {
				dv := delta[cl.pred]
				lv.rel, lv.lo, lv.hi = dv.rel, dv.lo, dv.hi
			} else {
				lv.rel, lv.lo, lv.hi = ev.readRel(cl.pred), 0, 0
				if lv.rel != nil {
					lv.hi = database.RowID(lv.rel.Len())
				}
			}
			if lv.rel == nil || lv.hi <= lv.lo || lv.rel.Arity() != len(cl.args) {
				re.empty = true
				continue
			}
			if cl.probeMask != 0 && lv.ixRel != lv.rel {
				lv.ix = lv.rel.IndexFor(cl.probeMask, cl.expect)
				lv.ixRel = lv.rel
			}
		case litNegated:
			lv.rel = ev.readRel(cl.pred)
			if lv.rel != nil && lv.rel.Arity() != len(cl.args) {
				lv.rel = nil // arity mismatch: membership is impossible
			}
		}
	}
}

// run drives the pipeline: one all-unbound frame enters level 0, full
// batches stream down eagerly, and drain pushes the partials through.
func (re *ruleExec) run() error {
	if re.empty {
		return nil
	}
	for i := range re.frame0 {
		re.frame0[i] = noValue
	}
	if err := re.feed(0, re.frame0, 1); err != nil {
		return err
	}
	return re.drain()
}

// drain flushes every level's partial output batch downstream, in level
// order (a flush of level i appends to level i+1's partial, which the
// loop visits next).
func (re *ruleExec) drain() error {
	for i := range re.levels {
		lv := &re.levels[i]
		if lv.outN > 0 {
			n := lv.outN
			lv.outN = 0
			if err := re.feed(i+1, lv.out, n); err != nil {
				return err
			}
		}
	}
	return nil
}

// push forwards level i's output batch downstream when it is full.
func (re *ruleExec) push(i int) error {
	lv := &re.levels[i]
	if lv.outN < batchFrames {
		return nil
	}
	lv.outN = 0
	return re.feed(i+1, lv.out, batchFrames)
}

// feed runs operator i over a batch of n input frames. Frames are flat:
// frame k occupies frames[k*nslots : (k+1)*nslots]. Operators copy each
// surviving frame into their own output batch, so bindings never need a
// trail — a failed extension is simply not committed.
func (re *ruleExec) feed(i int, frames []term.Value, n int) error {
	if n == 0 {
		return nil
	}
	if i == len(re.order) {
		return re.emitHead(frames, n)
	}
	ev := re.ev
	cl := &re.order[i]
	lv := &re.levels[i]
	ns := re.nslots
	switch cl.kind {
	case litBuiltin:
		for k := 0; k < n; k++ {
			out := lv.out[lv.outN*ns : (lv.outN+1)*ns]
			copy(out, frames[k*ns:(k+1)*ns])
			if ev.builtinFrame(cl, out) {
				lv.outN++
				if err := re.push(i); err != nil {
					return err
				}
			}
		}
	case litNegated:
		for k := 0; k < n; k++ {
			in := frames[k*ns : (k+1)*ns]
			for j, a := range cl.args {
				lv.keys[j] = ev.instantiate(a, in)
			}
			if lv.rel != nil && lv.rel.Contains(database.Tuple(lv.keys)) {
				continue
			}
			out := lv.out[lv.outN*ns : (lv.outN+1)*ns]
			copy(out, in)
			lv.outN++
			if err := re.push(i); err != nil {
				return err
			}
		}
	default: // litRelation
		if cl.probeMask != 0 {
			// Instantiate the whole batch's probe keys, resolve them in
			// one batched probe, then unify the unmasked columns. The
			// accounting is batch-at-a-time: one Probes/TickN update for
			// the n probes (the fault injector, when armed, still sees
			// one Hit per probe so chaos schedules keep their cadence).
			ev.stats.Probes += int64(n)
			if err := ev.check.TickN(n); err != nil {
				return err
			}
			if ev.inject != nil {
				for k := 0; k < n; k++ {
					if err := ev.inject.Hit(faultinject.SiteEngineProbe); err != nil {
						return err
					}
				}
			}
			keys := lv.keys[:0]
			if len(lv.probeSlots) == 1 {
				s := lv.probeSlots[0]
				for k := 0; k < n; k++ {
					keys = append(keys, frames[k*ns+s])
				}
			} else if lv.probeSlots != nil {
				for k := 0; k < n; k++ {
					in := frames[k*ns : (k+1)*ns]
					for _, s := range lv.probeSlots {
						keys = append(keys, in[s])
					}
				}
			} else {
				for k := 0; k < n; k++ {
					in := frames[k*ns : (k+1)*ns]
					for _, j := range lv.probeArgs {
						if a := cl.args[j]; a.kind == ast.Var {
							keys = append(keys, in[a.slot])
						} else {
							keys = append(keys, ev.instantiate(a, in))
						}
					}
				}
			}
			lv.keys = keys
			lv.matches = lv.ix.ProbeRangeBatch(n, keys, lv.lo, lv.hi, lv.matches[:0])
			for _, m := range lv.matches {
				out := lv.out[lv.outN*ns : (lv.outN+1)*ns]
				copy(out, frames[int(m.Key)*ns:(int(m.Key)+1)*ns])
				row := lv.rel.Row(m.Row)
				ok := true
				for _, j := range lv.checkArgs {
					// Inline bind-or-compare for plain variables (the
					// common case); compounds fall back to matchFrame.
					if p := cl.args[j]; p.kind == ast.Var {
						if w := out[p.slot]; w == noValue {
							out[p.slot] = row[j]
						} else if w != row[j] {
							ok = false
							break
						}
					} else if !ev.matchFrame(p, row[j], out) {
						ok = false
						break
					}
				}
				if !ok {
					continue
				}
				lv.outN++
				if err := re.push(i); err != nil {
					return err
				}
			}
		} else {
			// Unindexed source: nested scan of the window per input frame.
			ev.stats.Probes += int64(n)
			if err := ev.check.TickN(n); err != nil {
				return err
			}
			for k := 0; k < n; k++ {
				in := frames[k*ns : (k+1)*ns]
				if ev.inject != nil {
					if err := ev.inject.Hit(faultinject.SiteEngineProbe); err != nil {
						return err
					}
				}
				for id := lv.lo; id < lv.hi; id++ {
					out := lv.out[lv.outN*ns : (lv.outN+1)*ns]
					copy(out, in)
					row := lv.rel.Row(id)
					ok := true
					for _, j := range lv.checkArgs {
						if !ev.matchFrame(cl.args[j], row[j], out) {
							ok = false
							break
						}
					}
					if !ok {
						continue
					}
					lv.outN++
					if err := re.push(i); err != nil {
						return err
					}
				}
			}
		}
	}
	return nil
}

// emitHead instantiates the head for every solution frame and hands the
// tuples to the run's sink: the head relation itself (serial) or the
// worker's private emission relation (parallel).
func (re *ruleExec) emitHead(frames []term.Value, n int) error {
	ev := re.ev
	ns := re.nslots
	ev.stats.Inferences += int64(n)
	if err := ev.check.TickN(n); err != nil {
		return err
	}
	for k := 0; k < n; k++ {
		f := frames[k*ns : (k+1)*ns]
		for j, hp := range re.cr.head {
			switch hp.kind {
			case ast.Var:
				re.headTup[j] = f[hp.slot]
			case ast.Const:
				re.headTup[j] = hp.val
			default:
				re.headTup[j] = ev.instantiate(hp, f)
			}
		}
		if re.emit != nil {
			re.emit.Insert(database.Tuple(re.headTup))
			continue
		}
		if re.headRel.Insert(database.Tuple(re.headTup)) {
			ev.stats.DerivedFacts++
			if err := ev.inject.Hit(faultinject.SiteEngineInsert); err != nil {
				return err
			}
			if n := ev.countFact(); n > ev.maxFacts {
				return ev.limitErr(limits.KindFacts, n, ev.maxFacts)
			}
			if re.grew != nil {
				*re.grew = true
			}
		}
	}
	return nil
}

// matchFrame unifies a pattern with a ground value, binding directly into
// the frame. No trail: batched frames are copies, so a failed match's
// partial bindings die with the discarded frame.
func (ev *evaluator) matchFrame(p pat, v term.Value, frame []term.Value) bool {
	switch p.kind {
	case ast.Const:
		return p.val == v
	case ast.Var:
		if frame[p.slot] != noValue {
			return frame[p.slot] == v
		}
		frame[p.slot] = v
		return true
	default:
		if !v.IsCompound() {
			return false
		}
		c := ev.bank.Deref(v)
		if c.Functor != p.functor || len(c.Args) != len(p.args) {
			return false
		}
		for j, a := range p.args {
			if !ev.matchFrame(a, c.Args[j], frame) {
				return false
			}
		}
		return true
	}
}

// builtinFrame is stepBuiltin without the trail/continuation machinery:
// it evaluates the builtin against (and binds into) an owned frame copy.
func (ev *evaluator) builtinFrame(cl *compiledLit, frame []term.Value) bool {
	x, y := cl.args[0], cl.args[1]
	gx, gy := x.groundIn(frame), y.groundIn(frame)
	bind := func(p pat, v term.Value) bool {
		if frame[p.slot] != noValue {
			return frame[p.slot] == v
		}
		frame[p.slot] = v
		return true
	}
	switch cl.op {
	case opEq:
		switch {
		case gx && gy:
			return ev.instantiate(x, frame) == ev.instantiate(y, frame)
		case gx:
			// The unbound side is a plain variable by the ordering
			// precondition.
			return bind(y, ev.instantiate(x, frame))
		default:
			return bind(x, ev.instantiate(y, frame))
		}
	case opSucc:
		switch {
		case gx && gy:
			a, b := ev.instantiate(x, frame), ev.instantiate(y, frame)
			return a.IsInt() && b.IsInt() && a.AsInt() < succMaxInt && b.AsInt() == a.AsInt()+1
		case gx:
			a := ev.instantiate(x, frame)
			if !a.IsInt() || a.AsInt() >= succMaxInt {
				return false
			}
			return bind(y, term.Int(a.AsInt()+1))
		default:
			b := ev.instantiate(y, frame)
			if !b.IsInt() || b.AsInt() <= succMinInt {
				return false
			}
			return bind(x, term.Int(b.AsInt()-1))
		}
	default:
		a, b := ev.instantiate(x, frame), ev.instantiate(y, frame)
		var c int
		if a.IsInt() && b.IsInt() {
			switch {
			case a.AsInt() < b.AsInt():
				c = -1
			case a.AsInt() > b.AsInt():
				c = 1
			}
		} else {
			c = term.Compare(a, b)
		}
		switch cl.op {
		case opNeq:
			return c != 0
		case opLt:
			return c < 0
		case opLe:
			return c <= 0
		case opGt:
			return c > 0
		case opGe:
			return c >= 0
		}
		return false
	}
}

// flushEmit inserts one emission buffer into the head relation, in
// emission order, applying the derived-fact accounting, fault-injection
// hook and budget exactly as the tuple-at-a-time path does per insert.
func (ev *evaluator) flushEmit(emit *database.Relation, headPred symtab.Sym, grew *bool) error {
	headRel := ev.derived[headPred]
	for id := database.RowID(0); int(id) < emit.Len(); id++ {
		if headRel.Insert(database.Tuple(emit.Row(id))) {
			ev.stats.DerivedFacts++
			if err := ev.inject.Hit(faultinject.SiteEngineInsert); err != nil {
				return err
			}
			if n := ev.countFact(); n > ev.maxFacts {
				return ev.limitErr(limits.KindFacts, n, ev.maxFacts)
			}
			if grew != nil {
				*grew = true
			}
		}
	}
	return nil
}

// runRuleBatched evaluates one rule variant through the batched pipeline,
// partitioning the source window across the worker pool when profitable.
func (ev *evaluator) runRuleBatched(cr *compiledRule, deltaOcc int, delta map[symtab.Sym]deltaView, grew *bool) error {
	re := ev.execFor(cr, deltaOcc)
	re.begin(delta)
	if re.empty {
		return nil
	}
	if w := ev.joinWorkerCount(re); w > 1 {
		return ev.runRuleParallel(re, w, grew)
	}
	re.headRel = ev.derived[cr.headPred]
	re.grew = grew
	return re.run()
}

// joinWorkerCount decides the partition width for one run: the
// configured pool size, clamped, and only for flat rules whose source is
// a relation window wide enough to be worth splitting.
func (ev *evaluator) joinWorkerCount(re *ruleExec) int {
	w := ev.opts.JoinWorkers
	if w <= 1 || !re.cr.flat || len(re.order) == 0 || re.order[0].kind != litRelation {
		return 1
	}
	width := int(re.levels[0].hi - re.levels[0].lo)
	if width < joinParallelMinRows {
		return 1
	}
	if w > maxJoinWorkers {
		w = maxJoinWorkers
	}
	if w > width {
		w = width
	}
	return w
}

// runRuleParallel splits the source window of an already-begun run into w
// contiguous sub-ranges and evaluates them concurrently, each worker on a
// private pipeline clone with private stats and a private emission
// buffer, sharing the parent's relations (frozen for the duration), fault
// injector and atomic fact total. The first error cancels the run's
// context; the workers drain cooperatively. On success the emission
// buffers are flushed in partition order — the deterministic merge.
func (ev *evaluator) runRuleParallel(re *ruleExec, w int, grew *bool) error {
	parent := ev.ctx
	if parent == nil {
		parent = context.Background()
	}
	runCtx, cancel := context.WithCancelCause(parent)
	defer cancel(nil)
	ev.stats.ParallelRuns++

	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstErr error
	)
	fail := func(err error) {
		mu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		mu.Unlock()
		cancel(err)
	}

	if len(re.workers) != w {
		re.workers = make([]*ruleExec, w)
	}
	lo, hi := re.levels[0].lo, re.levels[0].hi
	width := int(hi - lo)
	for i := 0; i < w; i++ {
		wre := re.workers[i]
		if wre == nil {
			wev := &evaluator{
				bank:      ev.bank,
				db:        ev.db,
				derived:   ev.derived,
				arity:     ev.arity,
				opts:      ev.opts,
				maxIter:   ev.maxIter,
				maxFacts:  ev.maxFacts,
				inject:    ev.inject,
				factTotal: ev.factTotal,
			}
			wre = newRuleExec(wev, re.cr, re.deltaOcc)
			wre.emit = database.NewRelationSized(len(re.cr.head), ev.sizeHint(re.cr.headPred))
			re.workers[i] = wre
		}
		wev := wre.ev
		wev.check = limits.NewChecker(runCtx, "engine")
		wev.ctx = runCtx
		wev.stats = Stats{}
		// Share the parent's per-level resolution (relations, windows and
		// index handles were resolved under begin on this goroutine), then
		// narrow the source window to this worker's partition.
		for j := range re.levels {
			wre.levels[j].rel = re.levels[j].rel
			wre.levels[j].lo = re.levels[j].lo
			wre.levels[j].hi = re.levels[j].hi
			wre.levels[j].ix = re.levels[j].ix
			wre.levels[j].ixRel = re.levels[j].ixRel
			wre.levels[j].outN = 0
		}
		wre.empty = false
		wre.levels[0].lo = lo + database.RowID(i*width/w)
		wre.levels[0].hi = lo + database.RowID((i+1)*width/w)
		wre.emit.Reset()

		wg.Add(1)
		go func(wre *ruleExec) {
			defer wg.Done()
			// A panic must not cross the goroutine boundary; carry it out
			// as an error (it resurfaces as *InternalError at the API).
			defer func() {
				if r := recover(); r != nil {
					fail(&limits.PanicError{Component: "engine", Value: r, Stack: debug.Stack()})
				}
			}()
			if err := wre.run(); err != nil {
				fail(err)
			}
		}(wre)
	}
	wg.Wait()
	for i := 0; i < w; i++ {
		ev.stats.Add(re.workers[i].ev.stats)
	}
	if firstErr != nil {
		return firstErr
	}
	if err := ev.check.Check(); err != nil {
		return err
	}
	for i := 0; i < w; i++ {
		if err := ev.flushEmit(re.workers[i].emit, re.cr.headPred, grew); err != nil {
			return err
		}
	}
	return nil
}
