package engine

import (
	"fmt"

	"lincount/internal/ast"
	"lincount/internal/symtab"
	"lincount/internal/term"
)

// noValue is the "unbound" sentinel in binding frames. Its tag bits are 3,
// which no real term.Value uses.
const noValue term.Value = -1

// pat is an ast.Term with variables renumbered to dense frame slots.
type pat struct {
	kind    ast.TermKind
	val     term.Value // Const
	slot    int        // Var
	functor symtab.Sym // Comp
	args    []pat
}

// litKind distinguishes how a body literal is evaluated.
type litKind uint8

const (
	litRelation litKind = iota // positive atom over a base or derived relation
	litNegated                 // negated atom, evaluated by absence check
	litBuiltin                 // builtin predicate
)

// builtinOp enumerates the builtins.
type builtinOp uint8

const (
	opNone builtinOp = iota
	opEq
	opNeq
	opLt
	opLe
	opGt
	opGe
	opSucc
)

func builtinOpFor(name string) builtinOp {
	switch name {
	case ast.BuiltinEq:
		return opEq
	case ast.BuiltinNeq:
		return opNeq
	case ast.BuiltinLt:
		return opLt
	case ast.BuiltinLe:
		return opLe
	case ast.BuiltinGt:
		return opGt
	case ast.BuiltinGe:
		return opGe
	case ast.BuiltinSucc:
		return opSucc
	}
	return opNone
}

// compiledLit is one body literal in evaluation order.
type compiledLit struct {
	kind litKind
	op   builtinOp
	pred symtab.Sym
	args []pat
	// bodyIdx is the literal's position in the source rule body; the
	// evaluator compares it against the delta occurrence.
	bodyIdx int
	// probeMask marks argument positions that are statically ground when
	// this literal is reached (Const args and args whose variables are all
	// bound by earlier literals). Used for index selection.
	probeMask uint64
	// scratchOff is this literal's offset into the rule's shared scratch
	// buffer (len(args) values); literals at different join depths use
	// disjoint windows, so probe values survive the recursion below them.
	scratchOff int
	// litID numbers every compiled literal across all of the rule's
	// orderings; the evaluator's per-evaluation index-handle cache is
	// indexed by it (see joinScratch).
	litID int
	// expect is the estimated cardinality of the probed (build-side)
	// relation at compile time, from the evaluator's size function —
	// planner stats when available, relation length otherwise. It
	// pre-sizes the literal's hash index so growth to the expected size
	// never rehashes, and is surfaced by PlanText. 0 means unknown.
	expect int
}

// compiledRule is a rule prepared for evaluation. For semi-naive variants
// it holds one literal ordering per recursive body occurrence, with the
// delta literal evaluated first — the standard differential join order.
type compiledRule struct {
	src      ast.Rule
	nslots   int
	varNames []symtab.Sym // slot → source-level name, for diagnostics
	head     []pat
	headPred symtab.Sym
	// defaultOrder evaluates the body with no delta substitution.
	defaultOrder []compiledLit
	// deltaOrders[i] is the ordering for the i-th recursive occurrence,
	// that occurrence first. recBodyIdx[i] is its body position.
	deltaOrders [][]compiledLit
	recBodyIdx  []int

	// scratchLen is the total probe/negation scratch the rule needs (the
	// sum of body-literal arities); nlits counts the compiled literals
	// across all orderings (the litID space). A compiled rule is
	// immutable after compileRule returns — all runtime buffers live in
	// per-evaluation joinScratch / ruleExec structs, so one compiled
	// program is safe to evaluate from many goroutines at once.
	scratchLen int
	nlits      int
	// flat reports that neither the head nor any body literal contains a
	// compound pattern: evaluating the rule never interns terms, which is
	// what makes its delta range safe to partition across the join worker
	// pool (the term bank is not synchronized).
	flat bool
}

// nRecOccur reports the number of recursive body occurrences.
func (cr *compiledRule) nRecOccur() int { return len(cr.recBodyIdx) }

// orderFor returns the literal ordering and delta body index for a variant.
func (cr *compiledRule) orderFor(deltaOcc int) ([]compiledLit, int) {
	if deltaOcc < 0 || deltaOcc >= len(cr.deltaOrders) {
		return cr.defaultOrder, -1
	}
	return cr.deltaOrders[deltaOcc], cr.recBodyIdx[deltaOcc]
}

// patVars accumulates the slots occurring in p.
func (p pat) patVars(dst []int) []int {
	switch p.kind {
	case ast.Var:
		dst = append(dst, p.slot)
	case ast.Comp:
		for _, a := range p.args {
			dst = a.patVars(dst)
		}
	}
	return dst
}

// groundUnder reports whether p is ground given the bound-slot set.
func (p pat) groundUnder(bound []bool) bool {
	switch p.kind {
	case ast.Const:
		return true
	case ast.Var:
		return bound[p.slot]
	default:
		for _, a := range p.args {
			if !a.groundUnder(bound) {
				return false
			}
		}
		return true
	}
}

// groundIn reports whether p is ground under a runtime binding frame.
func (p pat) groundIn(frame []term.Value) bool {
	switch p.kind {
	case ast.Const:
		return true
	case ast.Var:
		return frame[p.slot] != noValue
	default:
		for _, a := range p.args {
			if !a.groundIn(frame) {
				return false
			}
		}
		return true
	}
}

type ruleCompiler struct {
	bank  *term.Bank
	slots map[symtab.Sym]int
	names []symtab.Sym
}

func (rc *ruleCompiler) pat(t ast.Term) pat {
	switch t.Kind {
	case ast.Const:
		return pat{kind: ast.Const, val: t.Value}
	case ast.Var:
		s, ok := rc.slots[t.Name]
		if !ok {
			s = len(rc.names)
			rc.slots[t.Name] = s
			rc.names = append(rc.names, t.Name)
		}
		return pat{kind: ast.Var, slot: s}
	default:
		args := make([]pat, len(t.Args))
		for i, a := range t.Args {
			args[i] = rc.pat(a)
		}
		return pat{kind: ast.Comp, functor: t.Name, args: args}
	}
}

// bodyLit is the pre-ordering form of one body literal.
type bodyLit struct {
	lit     ast.Literal
	kind    litKind
	op      builtinOp
	args    []pat
	bodyIdx int
}

// sizeFn estimates a relation's cardinality for join ordering; nil means
// no estimates are available.
type sizeFn func(symtab.Sym) int

// compileRule renumbers variables, picks body evaluation orders and
// computes probe masks. inComponent tells which predicates are mutually
// recursive with the head (for semi-naive variant generation).
//
// Ordering strategy: repeatedly select the next literal among the remaining
// ones, preferring (1) builtins whose binding requirements are met,
// (2) negated literals with all variables bound, (3) the positive literal
// with the most statically-bound argument positions, breaking ties by the
// estimated relation size (smaller first) and then source order. For each
// recursive occurrence an additional ordering is produced with that
// literal forced first, so semi-naive variants start from the (small)
// delta relation.
func compileRule(bank *term.Bank, r ast.Rule, inComponent map[symtab.Sym]bool, sizeOf sizeFn) (*compiledRule, error) {
	syms := bank.Symbols()
	rc := &ruleCompiler{bank: bank, slots: map[symtab.Sym]int{}}

	lits := make([]bodyLit, len(r.Body))
	for i, l := range r.Body {
		name := syms.String(l.Pred)
		bl := bodyLit{lit: l, bodyIdx: i}
		switch {
		case ast.IsBuiltinName(name):
			if l.Negated {
				return nil, fmt.Errorf("engine: negated builtin %s is not supported", name)
			}
			bl.kind = litBuiltin
			bl.op = builtinOpFor(name)
			if len(l.Args) != 2 {
				return nil, fmt.Errorf("engine: builtin %s expects 2 arguments, got %d", name, len(l.Args))
			}
		case l.Negated:
			bl.kind = litNegated
		default:
			bl.kind = litRelation
		}
		args := make([]pat, len(l.Args))
		for j, a := range l.Args {
			args[j] = rc.pat(a)
		}
		bl.args = args
		lits[i] = bl
	}
	headPats := make([]pat, len(r.Head.Args))
	for i, a := range r.Head.Args {
		headPats[i] = rc.pat(a)
	}
	nslots := len(rc.names)

	order := func(first int) ([]compiledLit, error) {
		return orderBody(bank, r, lits, nslots, first, sizeOf)
	}

	defaultOrder, err := order(-1)
	if err != nil {
		return nil, err
	}

	scratchLen := 0
	for _, bl := range lits {
		scratchLen += len(bl.args)
	}
	cr := &compiledRule{
		src:          r,
		nslots:       nslots,
		varNames:     rc.names,
		head:         headPats,
		headPred:     r.Head.Pred,
		defaultOrder: defaultOrder,
		scratchLen:   scratchLen,
	}

	// Safety: every head variable must be bound by the (default) body
	// ordering; all orderings bind the same variable set.
	bound := make([]bool, nslots)
	for _, cl := range defaultOrder {
		for _, a := range cl.args {
			for _, s := range a.patVars(nil) {
				bound[s] = true
			}
		}
	}
	for _, hp := range headPats {
		for _, s := range hp.patVars(nil) {
			if !bound[s] {
				return nil, fmt.Errorf(
					"engine: rule %s is unsafe: head variable %s does not occur in a positive body literal",
					ast.FormatRule(bank, r), syms.String(rc.names[s]))
			}
		}
	}

	for i, bl := range lits {
		if bl.kind == litRelation && inComponent[bl.lit.Pred] {
			deltaOrder, err := order(i)
			if err != nil {
				return nil, err
			}
			cr.deltaOrders = append(cr.deltaOrders, deltaOrder)
			cr.recBodyIdx = append(cr.recBodyIdx, i)
		}
	}

	// Number every compiled literal across the orderings: the evaluator's
	// per-evaluation index-handle caches are flat slices indexed by litID.
	id := 0
	number := func(order []compiledLit) {
		for j := range order {
			order[j].litID = id
			id++
		}
	}
	number(cr.defaultOrder)
	for _, o := range cr.deltaOrders {
		number(o)
	}
	cr.nlits = id

	cr.flat = true
	for _, hp := range headPats {
		if hasComp(hp) {
			cr.flat = false
		}
	}
	for _, bl := range lits {
		for _, a := range bl.args {
			if hasComp(a) {
				cr.flat = false
			}
		}
	}
	return cr, nil
}

// hasComp reports whether the pattern contains a compound term.
func hasComp(p pat) bool {
	if p.kind == ast.Comp {
		return true
	}
	for _, a := range p.args {
		if hasComp(a) {
			return true
		}
	}
	return false
}

// orderBody computes one evaluation ordering; when first >= 0 that body
// literal is placed first (the semi-naive delta position).
func orderBody(bank *term.Bank, r ast.Rule, lits []bodyLit, nslots, first int, sizeOf sizeFn) ([]compiledLit, error) {
	bound := make([]bool, nslots)
	used := make([]bool, len(lits))
	var order []compiledLit
	scratchOff := 0

	litReady := func(bl bodyLit) bool {
		switch bl.kind {
		case litRelation:
			return true
		case litNegated:
			for _, a := range bl.args {
				if !a.groundUnder(bound) {
					return false
				}
			}
			return true
		default:
			x, y := bl.args[0], bl.args[1]
			gx, gy := x.groundUnder(bound), y.groundUnder(bound)
			switch bl.op {
			case opEq, opSucc:
				// One side may be bound by the builtin, but only if it
				// is a plain variable.
				if gx && gy {
					return true
				}
				if gx && y.kind == ast.Var {
					return true
				}
				if gy && x.kind == ast.Var {
					return true
				}
				return false
			default:
				return gx && gy
			}
		}
	}

	boundCount := func(bl bodyLit) int {
		n := 0
		for _, a := range bl.args {
			if a.groundUnder(bound) {
				n++
			}
		}
		return n
	}

	emit := func(i int) {
		bl := lits[i]
		used[i] = true
		var mask uint64
		for j, a := range bl.args {
			if a.groundUnder(bound) {
				mask |= 1 << uint(j)
			}
		}
		expect := 0
		if bl.kind == litRelation && sizeOf != nil {
			expect = sizeOf(bl.lit.Pred)
		}
		order = append(order, compiledLit{
			kind:       bl.kind,
			op:         bl.op,
			pred:       bl.lit.Pred,
			args:       bl.args,
			bodyIdx:    bl.bodyIdx,
			probeMask:  mask,
			scratchOff: scratchOff,
			expect:     expect,
		})
		scratchOff += len(bl.args)
		for _, a := range bl.args {
			for _, s := range a.patVars(nil) {
				bound[s] = true
			}
		}
	}

	if first >= 0 {
		emit(first)
	}
	for len(order) < len(lits) {
		pick := -1
		// Pass 1: ready builtins and negations, in source order.
		for i, bl := range lits {
			if used[i] || bl.kind == litRelation {
				continue
			}
			if litReady(bl) {
				pick = i
				break
			}
		}
		// Pass 2: best positive literal — most bound argument positions,
		// ties broken by estimated relation size, then source order.
		if pick < 0 {
			best, bestSize := -1, 0
			for i, bl := range lits {
				if used[i] || bl.kind != litRelation {
					continue
				}
				c := boundCount(bl)
				size := 0
				if sizeOf != nil {
					size = sizeOf(bl.lit.Pred)
				}
				if c > best || (c == best && sizeOf != nil && size < bestSize) {
					best, bestSize = c, size
					pick = i
				}
			}
		}
		if pick < 0 {
			// Only unready builtins/negations remain: the rule is unsafe.
			for i, bl := range lits {
				if !used[i] {
					return nil, fmt.Errorf(
						"engine: rule %s is unsafe: %s cannot be evaluated with its variables unbound",
						ast.FormatRule(bank, r), ast.FormatLiteral(bank, bl.lit))
				}
			}
		}
		emit(pick)
	}
	return order, nil
}
