package engine

import (
	"fmt"
	"strings"

	"lincount/internal/ast"
	"lincount/internal/database"
	"lincount/internal/symtab"
)

// PlanText renders the evaluation plan of a program: its strata in
// execution order and, for every rule, the compiled body join order with
// the index probe pattern of each literal — the engine's EXPLAIN. When db
// is non-nil its relation cardinalities participate in join ordering, as
// they do during evaluation.
func PlanText(p *ast.Program, db *database.Database) (string, error) {
	comps, err := Stratify(p)
	if err != nil {
		return "", err
	}
	bank := p.Bank
	syms := bank.Symbols()
	// Fact rules embedded in the program count toward the cardinality
	// estimates like database rows do — they seed the same relations at
	// evaluation time (and Plan is often called with no database at all).
	factCount := map[symtab.Sym]int{}
	for _, r := range p.Rules {
		if r.IsFact() {
			factCount[r.Head.Pred]++
		}
	}
	sizeOf := func(pred symtab.Sym) int {
		n := factCount[pred]
		if db != nil {
			if rel := db.Relation(pred); rel != nil {
				n += rel.Len()
			}
		}
		return n
	}

	var sb strings.Builder
	for ci, comp := range comps {
		names := make([]string, len(comp.Preds))
		for i, pr := range comp.Preds {
			names[i] = syms.String(pr)
		}
		kind := "non-recursive"
		if comp.Recursive {
			kind = "recursive (semi-naive fixpoint)"
		}
		fmt.Fprintf(&sb, "stratum %d: {%s} — %s\n", ci+1, strings.Join(names, ", "), kind)

		inComp := map[symtab.Sym]bool{}
		for _, pr := range comp.Preds {
			inComp[pr] = true
		}
		for _, r := range comp.Rules {
			if r.IsFact() {
				fmt.Fprintf(&sb, "  fact  %s\n", ast.FormatRule(bank, r))
				continue
			}
			cr, err := compileRule(bank, r, inComp, sizeOf)
			if err != nil {
				return "", err
			}
			fmt.Fprintf(&sb, "  rule  %s\n", ast.FormatRule(bank, r))
			writeOrder(&sb, bank, "order", cr.defaultOrder, -1)
			for i, o := range cr.deltaOrders {
				writeOrder(&sb, bank, fmt.Sprintf("Δ#%d  ", i+1), o, cr.recBodyIdx[i])
			}
		}
	}
	return sb.String(), nil
}

// writeOrder renders one literal ordering with probe patterns.
func writeOrder(sb *strings.Builder, bank interface {
	Symbols() *symtab.Table
}, label string, order []compiledLit, deltaIdx int) {
	syms := bank.Symbols()
	parts := make([]string, len(order))
	for i, cl := range order {
		name := syms.String(cl.pred)
		probe := make([]byte, len(cl.args))
		for j := range cl.args {
			if cl.probeMask&(1<<uint(j)) != 0 {
				probe[j] = 'b'
			} else {
				probe[j] = 'f'
			}
		}
		tag := ""
		switch cl.kind {
		case litNegated:
			tag = "¬"
		case litBuiltin:
			tag = "⊕"
		}
		delta := ""
		if cl.bodyIdx == deltaIdx && deltaIdx >= 0 && cl.kind == litRelation {
			delta = "Δ"
		}
		// ~N is the expected build-side cardinality the executor will
		// pre-size this literal's probe index (and hash tables) to.
		expect := ""
		if cl.kind == litRelation && cl.expect > 0 {
			expect = fmt.Sprintf("~%d", cl.expect)
		}
		if len(cl.args) == 0 {
			parts[i] = tag + delta + name + expect
		} else {
			parts[i] = fmt.Sprintf("%s%s%s/%s%s", tag, delta, name, probe, expect)
		}
	}
	fmt.Fprintf(sb, "        %s: %s\n", label, strings.Join(parts, " ⋈ "))
}
