package engine

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync/atomic"
	"time"

	"lincount/internal/ast"
	"lincount/internal/database"
	"lincount/internal/faultinject"
	"lincount/internal/limits"
	"lincount/internal/obsv"
	"lincount/internal/symtab"
	"lincount/internal/term"
)

// ErrBudget is the historical name of the unified resource-limit
// sentinel. Budget trips now return a *limits.ResourceLimitError naming
// the kind, limit, usage and component; both errors.Is(err, ErrBudget)
// and errors.Is(err, limits.ErrResourceLimit) match it.
//
// Deprecated: use limits.ErrResourceLimit (lincount.ErrResourceLimit at
// the public API).
var ErrBudget = limits.ErrResourceLimit

// Options configures an evaluation.
type Options struct {
	// Naive selects the naive fixpoint (recompute everything each
	// iteration) instead of semi-naive. Used as a baseline.
	Naive bool
	// MaxIterations bounds fixpoint iterations per recursive component;
	// 0 means DefaultMaxIterations.
	MaxIterations int
	// MaxDerivedFacts bounds the total number of derived tuples;
	// 0 means DefaultMaxDerivedFacts.
	MaxDerivedFacts int
	// Parallel evaluates independent strata concurrently. Components
	// whose rules contain non-ground compound patterns still run
	// sequentially (their evaluation interns terms; see parallel.go).
	// MaxDerivedFacts remains a global cap: the concurrent strata share
	// one atomic fact counter. The first error (or the context's
	// cancellation) cancels the sibling strata, which drain cooperatively
	// before EvalContext returns.
	Parallel bool
	// Trace, when non-nil, receives one event per component and per
	// fixpoint iteration — the engine's EXPLAIN ANALYZE. In parallel
	// mode callbacks are serialized but may interleave across strata.
	Trace func(TraceEvent)
	// Inject, when non-nil, is consulted at the engine's hook sites
	// (relation inserts, index probes, fixpoint iterations) and may
	// surface injected errors, latency, or cancellations. Nil costs one
	// pointer comparison per site.
	Inject *faultinject.Injector
	// Tracer, when non-nil, records structured spans: one per component,
	// one per fixpoint iteration, and one per rule run, with integer
	// arguments for the delta and cumulative fact counts. It also enables
	// per-rule profiling (Result.Rules). Nil costs one pointer comparison
	// per hook site.
	Tracer *obsv.Tracer
	// Profile enables per-rule profiling (Result.Rules) without a
	// tracer: the query server's slow-query log wants rule attribution
	// for requests that never asked for a full trace. A non-nil Tracer
	// implies Profile; with both off the rule loop stays untouched.
	Profile bool
	// FactProgress, when non-nil, receives a live mirror of the
	// evaluation's derived-fact count (one atomic add per derived
	// tuple) — the query server's active-query registry reads it to
	// report facts-so-far for in-flight requests. Nil costs one branch
	// per derived fact.
	FactProgress *atomic.Int64
	// StatsOut, when non-nil, receives the evaluator's Stats even when
	// evaluation fails partway (budget trip, injected fault,
	// cancellation) — the partial work counters a degraded attempt would
	// otherwise discard.
	StatsOut *Stats
	// Sizes, when non-nil, supplies per-predicate cardinality estimates
	// (the planner's stats, threaded through plan.Shared by the facade).
	// They pre-size derived relations, join hash indexes and the batched
	// pipeline's emission buffers, and participate in join ordering the
	// same way relation lengths do. Estimates are hints: a wrong one
	// costs memory or a rehash, never correctness.
	Sizes SizeHint
	// JoinWorkers > 1 partitions a wide rule's delta RowID range across
	// that many workers (sub-stratum parallelism). Workers evaluate
	// disjoint contiguous sub-ranges of the source window into private
	// emission buffers that are merged in partition order, so the head
	// relation's contents and RowID assignment are byte-identical to a
	// serial run. Rules that build compound terms run serially (the term
	// bank is not synchronized). 0 or 1 disables partitioning.
	JoinWorkers int
	// NoBatch disables the batched streaming join pipeline and evaluates
	// rule bodies tuple-at-a-time (the pre-batching execution path, kept
	// for differential testing and as the before-side of benchmarks).
	NoBatch bool
}

// SizeHint estimates a predicate's cardinality; see Options.Sizes.
type SizeHint func(symtab.Sym) int64

// TraceEvent is one step of an evaluation trace.
type TraceEvent struct {
	// Kind is "component" (a stratum starts) or "iteration".
	Kind string
	// Preds names the component's predicates.
	Preds []string
	// Iteration is the 0-based fixpoint round within the component.
	Iteration int
	// DeltaFacts is the number of new tuples this round produced.
	DeltaFacts int64
	// TotalFacts is the cumulative number of derived tuples.
	TotalFacts int64
}

// Default budgets: generous enough for every experiment in the repository,
// small enough that an unsafe program fails in well under a second.
const (
	DefaultMaxIterations   = 1_000_000
	DefaultMaxDerivedFacts = 50_000_000
)

// Stats counts evaluation work. Inferences is the classic deductive-database
// cost metric: the number of successful rule instantiations, including those
// that rederive known facts. ArenaValues is the number of term values
// resident in the derived relations' arenas when evaluation finishes — the
// storage footprint of the materialized model, in values, not bytes.
type Stats struct {
	Iterations   int
	Components   int
	Inferences   int64
	DerivedFacts int64
	Probes       int64
	ArenaValues  int64
	// ParallelRuns counts rule runs that were partitioned across the
	// join worker pool (Options.JoinWorkers).
	ParallelRuns int64
}

// Add accumulates other into s.
func (s *Stats) Add(other Stats) {
	s.Iterations += other.Iterations
	s.Components += other.Components
	s.Inferences += other.Inferences
	s.DerivedFacts += other.DerivedFacts
	s.Probes += other.Probes
	s.ArenaValues += other.ArenaValues
	s.ParallelRuns += other.ParallelRuns
}

// RuleStat is one rule's profiling record, collected only when a Tracer
// is attached or Options.Profile is set (profiling costs clock reads
// per rule run, so unprofiled evaluations skip it entirely).
type RuleStat struct {
	// Rule is the rule's source text.
	Rule string
	// Runs counts evaluations of the rule (one per occurrence per
	// fixpoint iteration in semi-naive mode).
	Runs int
	// Inferences and DerivedFacts are the rule's share of the Stats
	// counters of the same names.
	Inferences   int64
	DerivedFacts int64
	// Duration is the wall-clock time spent joining this rule's body.
	Duration time.Duration
}

// deltaView is a semi-naive delta represented as a RowID window: the rows
// of rel with lo <= id < hi are exactly the facts derived in the previous
// iteration. Deltas are watermarks over the head relation itself, not
// separate relations — no tuple is ever stored twice.
type deltaView struct {
	rel    *database.Relation
	lo, hi database.RowID
}

// Result holds the derived relations of an evaluation.
type Result struct {
	bank    *term.Bank
	Derived map[symtab.Sym]*database.Relation
	Stats   Stats
	// Rules holds per-rule profiles when Options.Tracer was set (nil
	// otherwise), in component order.
	Rules []RuleStat
}

// Relation returns the derived relation for pred, or nil.
func (r *Result) Relation(pred symtab.Sym) *database.Relation { return r.Derived[pred] }

// Bank returns the term bank of the evaluated program.
func (r *Result) Bank() *term.Bank { return r.bank }

type evaluator struct {
	bank    *term.Bank
	db      *database.Database
	derived map[symtab.Sym]*database.Relation
	arity   map[symtab.Sym]int
	opts    Options
	stats   Stats

	maxIter  int
	maxFacts int64
	// check polls the evaluation context (nil when ungoverned); ctx is
	// retained for deriving the parallel scheduler's cancellation scope.
	check *limits.Checker
	ctx   context.Context
	// inject is the fault-injection hook (nil when disabled).
	inject *faultinject.Injector
	// tracer records structured spans (nil when disabled); tid is this
	// evaluator's track in the trace (parallel strata get their own).
	tracer *obsv.Tracer
	tid    int64
	// prof accumulates per-rule profiles when profiling is on (a tracer
	// is attached or Options.Profile is set); profOrder preserves
	// first-run order for Result.Rules.
	prof      map[*compiledRule]*RuleStat
	profOrder []*RuleStat
	// progress, when non-nil, mirrors the derived-fact count for live
	// introspection (Options.FactProgress).
	progress *atomic.Int64
	// factTotal is the global derived-fact count the budget is enforced
	// against. It is shared (one atomic counter) across the concurrent
	// strata of a parallel evaluation, so MaxDerivedFacts is a true
	// global cap there, not a per-component approximation.
	factTotal *atomic.Int64

	// scratches holds the per-evaluation join buffers, one per compiled
	// rule (lazily built; see joinScratch). Buffers belong to the
	// evaluator, not the compiled rule, so one compiled program is safe
	// to evaluate from many goroutines — each gets its own evaluator and
	// therefore its own scratch.
	scratches map[*compiledRule]*joinScratch
	// execs caches the batched pipeline state per rule variant
	// (deltaOcc+1 indexes the inner slice; 0 is the default order).
	execs map[*compiledRule][]*ruleExec

	// Incremental-maintenance hooks (see incremental.go). All zero for
	// ordinary evaluations, costing one branch per occurrence setup.
	//
	// windowed switches join variants to the exact-once counting read
	// discipline: a non-delta occurrence of a pred present in the delta
	// map reads [0, hi) when it precedes the delta occurrence in the
	// source body and [0, lo) when it follows it, so each derivation of
	// the round is enumerated exactly once (at its last newest-atom
	// position) instead of at least once.
	windowed bool
	// rowState, when non-nil, holds per-row lifecycle states for the
	// deletion phases: -1 = logically deleted, 0 = original row, g ≥ 1 =
	// rederived in backward-pass round g. Occurrences are filtered to
	// rows with 0 ≤ state ≤ bound; filterPrefix/filterSuffix arm the
	// filter per side of the delta occurrence, with missing preds and
	// rows past the slice (appended after state capture) treated as live
	// originals.
	rowState     map[symtab.Sym][]int32
	filterPrefix bool
	filterSuffix bool
	prefixBound  int32
	suffixBound  int32
}

// Eval computes the minimal model of p over db. Facts embedded in the
// program (rules with empty bodies and ground heads) are treated as initial
// derived tuples. db is not modified.
func Eval(p *ast.Program, db *database.Database, opts Options) (*Result, error) {
	return EvalContext(context.Background(), p, db, opts)
}

// EvalContext is Eval under a context: the fixpoint loops poll ctx
// cooperatively (once per iteration and every few thousand inferences or
// probes) and return a cancellation error wrapping context.Cause(ctx)
// once it is done. An un-cancelable ctx adds no per-inference cost.
func EvalContext(ctx context.Context, p *ast.Program, db *database.Database, opts Options) (*Result, error) {
	ev := &evaluator{
		bank:      p.Bank,
		db:        db,
		derived:   make(map[symtab.Sym]*database.Relation),
		arity:     make(map[symtab.Sym]int),
		opts:      opts,
		maxIter:   opts.MaxIterations,
		check:     limits.NewChecker(ctx, "engine"),
		ctx:       ctx,
		inject:    opts.Inject,
		tracer:    opts.Tracer,
		tid:       1,
		factTotal: new(atomic.Int64),
		progress:  opts.FactProgress,
	}
	if ev.tracer != nil || opts.Profile {
		ev.prof = make(map[*compiledRule]*RuleStat)
	}
	if opts.StatsOut != nil {
		// Fill even on the error paths: a failed attempt's partial work
		// counters are what Auto-degradation reporting needs.
		defer func() {
			ev.noteArenas()
			*opts.StatsOut = ev.stats
		}()
	}
	if ev.maxIter == 0 {
		ev.maxIter = DefaultMaxIterations
	}
	ev.maxFacts = int64(opts.MaxDerivedFacts)
	if ev.maxFacts == 0 {
		ev.maxFacts = DefaultMaxDerivedFacts
	}
	if db != nil && db.Bank() != p.Bank {
		return nil, errors.New("engine: program and database use different term banks")
	}
	if err := ev.check.Check(); err != nil {
		return nil, err
	}

	if err := ev.checkArities(p); err != nil {
		return nil, err
	}
	comps, err := Stratify(p)
	if err != nil {
		return nil, err
	}

	// Seed derived relations: program facts, plus db tuples for predicates
	// that are also rule heads (so reads see the union).
	for _, r := range p.Rules {
		rel, err := ev.derivedRel(r.Head.Pred, r.Head.Arity())
		if err != nil {
			return nil, err
		}
		if r.IsFact() {
			t := make(database.Tuple, len(r.Head.Args))
			for i, a := range r.Head.Args {
				t[i] = a.Value
			}
			if rel.Insert(t) {
				ev.stats.DerivedFacts++
				ev.countFact()
			}
		}
	}
	for pred, rel := range ev.derived {
		if ev.db == nil {
			break
		}
		if base := ev.db.Relation(pred); base != nil {
			if base.Arity() != rel.Arity() {
				return nil, fmt.Errorf("engine: predicate %s has arity %d in program but %d in database",
					ev.bank.Symbols().String(pred), rel.Arity(), base.Arity())
			}
			for id := database.RowID(0); int(id) < base.Len(); id++ {
				// Insert copies the base row view into the derived arena.
				if rel.Insert(database.Tuple(base.Row(id))) {
					ev.stats.DerivedFacts++
					ev.countFact()
				}
			}
		}
	}

	if ev.opts.Parallel {
		for _, layer := range layerComponents(comps) {
			var par, seq []Component
			for _, ci := range layer {
				c := comps[ci]
				ev.stats.Components++
				if len(layer) > 1 && flatComponent(c) {
					par = append(par, c)
				} else {
					seq = append(seq, c)
				}
			}
			if len(par) == 1 {
				seq = append(seq, par[0])
				par = nil
			}
			for _, c := range seq {
				if err := ev.evalComponent(c); err != nil {
					return nil, err
				}
			}
			if len(par) > 0 {
				if err := ev.evalComponentsParallel(par); err != nil {
					return nil, err
				}
			}
		}
		ev.noteArenas()
		return &Result{bank: p.Bank, Derived: ev.derived, Stats: ev.stats, Rules: ev.ruleStats()}, nil
	}

	for _, comp := range comps {
		ev.stats.Components++
		if err := ev.evalComponent(comp); err != nil {
			return nil, err
		}
	}
	ev.noteArenas()
	return &Result{bank: p.Bank, Derived: ev.derived, Stats: ev.stats, Rules: ev.ruleStats()}, nil
}

// ruleStats flattens the per-rule profiles in first-run order (nil when
// profiling was off).
func (ev *evaluator) ruleStats() []RuleStat {
	if len(ev.profOrder) == 0 {
		return nil
	}
	out := make([]RuleStat, len(ev.profOrder))
	for i, p := range ev.profOrder {
		out[i] = *p
	}
	return out
}

// profFor returns (creating if needed) the profile record for cr.
func (ev *evaluator) profFor(cr *compiledRule) *RuleStat {
	if p, ok := ev.prof[cr]; ok {
		return p
	}
	p := &RuleStat{Rule: ast.FormatRule(ev.bank, cr.src)}
	ev.prof[cr] = p
	ev.profOrder = append(ev.profOrder, p)
	return p
}

// noteArenas records the derived relations' resident arena size in Stats.
func (ev *evaluator) noteArenas() {
	ev.stats.ArenaValues = 0
	for _, rel := range ev.derived {
		ev.stats.ArenaValues += int64(rel.ArenaLen())
	}
}

// checkArities verifies consistent predicate arities across the program.
func (ev *evaluator) checkArities(p *ast.Program) error {
	syms := ev.bank.Symbols()
	note := func(pred symtab.Sym, n int) error {
		if ast.IsBuiltinName(syms.String(pred)) {
			return nil
		}
		if prev, ok := ev.arity[pred]; ok && prev != n {
			return fmt.Errorf("engine: predicate %s used with arities %d and %d",
				syms.String(pred), prev, n)
		}
		ev.arity[pred] = n
		return nil
	}
	for _, r := range p.Rules {
		if err := note(r.Head.Pred, r.Head.Arity()); err != nil {
			return err
		}
		for _, l := range r.Body {
			if err := note(l.Pred, l.Arity()); err != nil {
				return err
			}
		}
	}
	return nil
}

// sizeHintCap bounds how many rows a planner estimate may pre-allocate:
// hints are advisory and an absurd one must not balloon memory up front.
const sizeHintCap = 1 << 20

// sizeHint returns the clamped expected cardinality of pred from
// Options.Sizes, or 0 when no estimate is available.
func (ev *evaluator) sizeHint(pred symtab.Sym) int {
	if ev.opts.Sizes == nil {
		return 0
	}
	n := ev.opts.Sizes(pred)
	if n < 0 {
		return 0
	}
	if n > sizeHintCap {
		return sizeHintCap
	}
	return int(n)
}

func (ev *evaluator) derivedRel(pred symtab.Sym, arity int) (*database.Relation, error) {
	if rel, ok := ev.derived[pred]; ok {
		if rel.Arity() != arity {
			return nil, fmt.Errorf("engine: predicate %s used with arities %d and %d",
				ev.bank.Symbols().String(pred), rel.Arity(), arity)
		}
		return rel, nil
	}
	rel := database.NewRelationSized(arity, ev.sizeHint(pred))
	ev.derived[pred] = rel
	return rel, nil
}

// readRel returns the relation a body literal reads (derived if the
// predicate is a rule head, else base), or nil if empty.
func (ev *evaluator) readRel(pred symtab.Sym) *database.Relation {
	if rel, ok := ev.derived[pred]; ok {
		return rel
	}
	if ev.db != nil {
		return ev.db.Relation(pred)
	}
	return nil
}

func (ev *evaluator) trace(e TraceEvent) {
	if ev.opts.Trace != nil {
		ev.opts.Trace(e)
	}
}

func (ev *evaluator) predNames(preds []symtab.Sym) []string {
	syms := ev.bank.Symbols()
	out := make([]string, len(preds))
	for i, p := range preds {
		out[i] = syms.String(p)
	}
	return out
}

func (ev *evaluator) evalComponent(comp Component) (err error) {
	ev.trace(TraceEvent{Kind: "component", Preds: ev.predNames(comp.Preds)})
	if ev.tracer != nil {
		sp := ev.tracer.BeginTID("engine", "component "+strings.Join(ev.predNames(comp.Preds), ","), ev.tid)
		iter0, facts0 := ev.stats.Iterations, ev.stats.DerivedFacts
		defer func() {
			sp.End(obsv.A("iterations", int64(ev.stats.Iterations-iter0)),
				obsv.A("facts", ev.stats.DerivedFacts-facts0))
		}()
	}
	inComp := make(map[symtab.Sym]bool, len(comp.Preds))
	for _, p := range comp.Preds {
		inComp[p] = true
	}
	var rules []*compiledRule
	for _, r := range comp.Rules {
		if r.IsFact() {
			continue // already seeded
		}
		cr, err := compileRule(ev.bank, r, inComp, func(pred symtab.Sym) int {
			n := 0
			if rel := ev.readRel(pred); rel != nil {
				n = rel.Len()
			}
			// Planner stats see through predicates whose relations have not
			// been derived yet; take whichever estimate is larger.
			if s := ev.sizeHint(pred); s > n {
				n = s
			}
			return n
		})
		if err != nil {
			return err
		}
		rules = append(rules, cr)
	}
	if len(rules) == 0 {
		return nil
	}

	if !comp.Recursive {
		// All body predicates are fully computed: one pass suffices.
		for _, cr := range rules {
			if err := ev.runRule(cr, -1, nil, nil); err != nil {
				return err
			}
		}
		return nil
	}

	if ev.opts.Naive {
		return ev.naiveFixpoint(rules)
	}
	return ev.semiNaiveFixpoint(comp, rules)
}

// limitErr builds the structured budget error for this evaluator.
func (ev *evaluator) limitErr(kind string, used, limit int64) error {
	return &limits.ResourceLimitError{Kind: kind, Limit: limit, Used: used, Component: "engine"}
}

// naiveFixpoint re-evaluates every rule against the full relations until no
// new facts appear.
func (ev *evaluator) naiveFixpoint(rules []*compiledRule) error {
	for iter := 0; ; iter++ {
		if err := ev.check.Check(); err != nil {
			return err
		}
		if err := ev.inject.Hit(faultinject.SiteEngineIter); err != nil {
			return err
		}
		if iter >= ev.maxIter {
			return ev.limitErr(limits.KindIterations, int64(iter), int64(ev.maxIter))
		}
		ev.stats.Iterations++
		isp := ev.tracer.BeginTID("engine", "iteration", ev.tid)
		before := ev.stats.DerivedFacts
		newFacts := false
		for _, cr := range rules {
			grew := false
			if err := ev.runRule(cr, -1, nil, &grew); err != nil {
				isp.End(obsv.A("iter", int64(iter)))
				return err
			}
			newFacts = newFacts || grew
		}
		ev.trace(TraceEvent{
			Kind: "iteration", Iteration: iter,
			DeltaFacts: ev.stats.DerivedFacts - before,
			TotalFacts: ev.stats.DerivedFacts,
		})
		isp.End(obsv.A("iter", int64(iter)),
			obsv.A("delta", ev.stats.DerivedFacts-before),
			obsv.A("total", ev.stats.DerivedFacts))
		if !newFacts {
			return nil
		}
	}
}

// semiNaiveFixpoint runs the standard differential fixpoint: iteration 0
// evaluates every rule naively to seed the deltas; afterwards each
// recursive rule is evaluated once per recursive body occurrence with the
// delta substituted at that occurrence. A delta is a RowID watermark pair
// over the head relation — the rows appended during the previous
// iteration — so no delta tuples are materialized or inserted twice.
func (ev *evaluator) semiNaiveFixpoint(comp Component, rules []*compiledRule) error {
	lo := make(map[symtab.Sym]database.RowID, len(comp.Preds))
	delta := make(map[symtab.Sym]deltaView, len(comp.Preds))
	for _, p := range comp.Preds {
		if rel, ok := ev.derived[p]; ok {
			lo[p] = database.RowID(rel.Len())
		}
	}
	// advance snapshots each head relation's growth since the last call
	// as the next iteration's delta windows and returns the total window
	// size.
	advance := func() int64 {
		var n int64
		for _, p := range comp.Preds {
			rel, ok := ev.derived[p]
			if !ok {
				continue
			}
			hi := database.RowID(rel.Len())
			delta[p] = deltaView{rel: rel, lo: lo[p], hi: hi}
			n += int64(hi - lo[p])
			lo[p] = hi
		}
		return n
	}

	// Iteration 0: naive pass over all rules.
	ev.stats.Iterations++
	isp := ev.tracer.BeginTID("engine", "iteration", ev.tid)
	for _, cr := range rules {
		if err := ev.runRule(cr, -1, nil, nil); err != nil {
			isp.End(obsv.A("iter", 0))
			return err
		}
	}
	dn := advance()
	ev.trace(TraceEvent{
		Kind: "iteration", Iteration: 0,
		DeltaFacts: dn, TotalFacts: ev.stats.DerivedFacts,
	})
	isp.End(obsv.A("iter", 0), obsv.A("delta", dn), obsv.A("total", ev.stats.DerivedFacts))

	for iter := 1; dn > 0; iter++ {
		if err := ev.check.Check(); err != nil {
			return err
		}
		if err := ev.inject.Hit(faultinject.SiteEngineIter); err != nil {
			return err
		}
		if iter >= ev.maxIter {
			return ev.limitErr(limits.KindIterations, int64(iter), int64(ev.maxIter))
		}
		ev.stats.Iterations++
		isp := ev.tracer.BeginTID("engine", "iteration", ev.tid)
		for _, cr := range rules {
			for occ := 0; occ < cr.nRecOccur(); occ++ {
				if err := ev.runRule(cr, occ, delta, nil); err != nil {
					isp.End(obsv.A("iter", int64(iter)))
					return err
				}
			}
		}
		dn = advance()
		ev.trace(TraceEvent{
			Kind: "iteration", Iteration: iter,
			DeltaFacts: dn, TotalFacts: ev.stats.DerivedFacts,
		})
		isp.End(obsv.A("iter", int64(iter)), obsv.A("delta", dn), obsv.A("total", ev.stats.DerivedFacts))
	}
	return nil
}

// countFact bumps the global fact total the budget is enforced against
// and, when armed, the live progress mirror. Returns the new total.
func (ev *evaluator) countFact() int64 {
	n := ev.factTotal.Add(1)
	if ev.progress != nil {
		ev.progress.Add(1)
	}
	return n
}

// runRule evaluates one rule variant into the head relation; grew, if non-
// nil, is set when a new tuple appeared. With profiling on (tracer
// attached or Options.Profile) each run is also timed into the rule's
// profile and, when a tracer is present, recorded as a span.
func (ev *evaluator) runRule(cr *compiledRule, deltaOcc int, delta map[symtab.Sym]deltaView, grew *bool) error {
	if ev.prof == nil {
		return ev.runRuleFast(cr, deltaOcc, delta, grew)
	}
	p := ev.profFor(cr)
	sp := ev.tracer.BeginTID("engine.rule", p.Rule, ev.tid)
	inf0, df0 := ev.stats.Inferences, ev.stats.DerivedFacts
	start := time.Now()
	err := ev.runRuleFast(cr, deltaOcc, delta, grew)
	p.Duration += time.Since(start)
	p.Runs++
	p.Inferences += ev.stats.Inferences - inf0
	p.DerivedFacts += ev.stats.DerivedFacts - df0
	sp.End(obsv.A("inferences", ev.stats.Inferences-inf0),
		obsv.A("facts", ev.stats.DerivedFacts-df0))
	return err
}

func (ev *evaluator) runRuleFast(cr *compiledRule, deltaOcc int, delta map[symtab.Sym]deltaView, grew *bool) error {
	// The batched streaming pipeline (pipeline.go) covers ordinary
	// evaluations; the incremental engine's windowed / row-state read
	// disciplines stay on the tuple-at-a-time path, as does NoBatch.
	if !ev.opts.NoBatch && !ev.windowed && ev.rowState == nil {
		return ev.runRuleBatched(cr, deltaOcc, delta, grew)
	}
	headRel := ev.derived[cr.headPred]
	return ev.join(cr, deltaOcc, delta, func(t database.Tuple) error {
		ev.stats.Inferences++
		if err := ev.check.Tick(); err != nil {
			return err
		}
		if headRel.Insert(t) {
			ev.stats.DerivedFacts++
			if err := ev.inject.Hit(faultinject.SiteEngineInsert); err != nil {
				return err
			}
			if n := ev.countFact(); n > ev.maxFacts {
				return ev.limitErr(limits.KindFacts, n, ev.maxFacts)
			}
			if grew != nil {
				*grew = true
			}
		}
		return nil
	})
}

// joinScratch holds one rule's reusable join buffers for one evaluator:
// the binding frame, probe scratch, head buffer, trail, and the cached
// index handles (by litID) that let repeated probes of one literal skip
// the relation's index mutex and map lookup. Scratch is per-evaluation
// state — compiled rules are immutable and shareable across goroutines.
type joinScratch struct {
	frame   []term.Value // one slot per variable
	scratch []term.Value // probe/negation values, windowed by scratchOff
	headBuf []term.Value // the emitted head tuple, reused across solutions
	trail   []int
	idx     []litIndex // cached index handles, indexed by litID
	inUse   bool
}

// litIndex caches one literal's resolved index handle; rel records which
// relation it was resolved against (relations can change identity across
// runs — clones, rebuilt stores — so the handle revalidates by pointer).
type litIndex struct {
	rel *database.Relation
	ix  database.Index
}

func newJoinScratch(cr *compiledRule) *joinScratch {
	return &joinScratch{
		frame:   make([]term.Value, cr.nslots),
		scratch: make([]term.Value, cr.scratchLen),
		headBuf: make([]term.Value, len(cr.head)),
		idx:     make([]litIndex, cr.nlits),
	}
}

// scratchFor returns (creating if needed) this evaluator's scratch for cr.
func (ev *evaluator) scratchFor(cr *compiledRule) *joinScratch {
	if sc, ok := ev.scratches[cr]; ok {
		return sc
	}
	if ev.scratches == nil {
		ev.scratches = make(map[*compiledRule]*joinScratch)
	}
	sc := newJoinScratch(cr)
	ev.scratches[cr] = sc
	return sc
}

// probeIndex resolves (with caching) the index handle for a relation
// literal's probe against rel, pre-sized from the compile-time estimate.
func (sc *joinScratch) probeIndex(cl *compiledLit, rel *database.Relation) database.Index {
	ci := &sc.idx[cl.litID]
	if ci.rel != rel {
		ci.rel = rel
		ci.ix = rel.IndexFor(cl.probeMask, cl.expect)
	}
	return ci.ix
}

// join runs the nested-loop index join for one rule variant, calling out for
// every successful body instantiation. The hot path is allocation-free: the
// binding frame, the probe values and the emitted head tuple live in the
// evaluator's per-rule joinScratch, index probes return arena iterators,
// and literal matching reads zero-copy row views. The head tuple passed to
// out is reused across solutions — out must copy it to retain it (Insert
// copies into the relation arena).
func (ev *evaluator) join(cr *compiledRule, deltaOcc int, delta map[symtab.Sym]deltaView, out func(database.Tuple) error) error {
	order, deltaBodyIdx := cr.orderFor(deltaOcc)
	sc := ev.scratchFor(cr)
	if sc.inUse {
		// Reentrant use of the same compiled rule (a Solve callback
		// re-entering its own site): fall back to fresh buffers.
		sc = newJoinScratch(cr)
	} else {
		sc.inUse = true
		defer func() { sc.inUse = false }()
	}
	frame, scratch, headBuf := sc.frame, sc.scratch, sc.headBuf
	trail := sc.trail[:0]
	defer func() { sc.trail = trail[:0] }()
	for i := range frame {
		frame[i] = noValue
	}

	var step func(i int) error
	step = func(i int) error {
		if i == len(order) {
			t := database.Tuple(headBuf)
			for j, hp := range cr.head {
				t[j] = ev.instantiate(hp, frame)
			}
			return out(t)
		}
		cl := &order[i]
		switch cl.kind {
		case litBuiltin:
			return ev.stepBuiltin(cl, frame, &trail, func() error { return step(i + 1) })
		case litNegated:
			probe := scratch[cl.scratchOff : cl.scratchOff+len(cl.args)]
			for j, a := range cl.args {
				probe[j] = ev.instantiate(a, frame)
			}
			// Contains hashes the probe against the dedup table directly;
			// no key is materialized.
			rel := ev.readRel(cl.pred)
			if rel != nil && rel.Contains(database.Tuple(probe)) {
				return nil
			}
			return step(i + 1)
		default:
			var rel *database.Relation
			dv := deltaView{lo: 0, hi: -1}
			isDelta := deltaBodyIdx >= 0 && cl.bodyIdx == deltaBodyIdx
			// prefix is the occurrence's side of the delta occurrence in
			// source-body order — the canonical order of the exact-once
			// counting discipline. With no delta (deltaBodyIdx -1) every
			// occurrence counts as suffix.
			prefix := cl.bodyIdx < deltaBodyIdx
			ranged := isDelta
			if isDelta {
				dv = delta[cl.pred]
				rel = dv.rel
			} else {
				rel = ev.readRel(cl.pred)
				if ev.windowed {
					if wv, ok := delta[cl.pred]; ok {
						// Counting window: the new side [0, hi) before the
						// delta occurrence, the old side [0, lo) after it.
						rel = wv.rel
						ranged = true
						if prefix {
							dv = deltaView{rel: rel, lo: 0, hi: wv.hi}
						} else {
							dv = deltaView{rel: rel, lo: 0, hi: wv.lo}
						}
					}
				}
			}
			if rel == nil || rel.Len() == 0 {
				return nil
			}
			var st []int32
			var stBound int32
			if ev.rowState != nil && !isDelta {
				if (prefix && ev.filterPrefix) || (!prefix && ev.filterSuffix) {
					if s, ok := ev.rowState[cl.pred]; ok {
						st = s
						if prefix {
							stBound = ev.prefixBound
						} else {
							stBound = ev.suffixBound
						}
					}
				}
			}
			mark := len(trail)
			var it database.RowIter
			if cl.probeMask != 0 {
				probe := scratch[cl.scratchOff : cl.scratchOff : cl.scratchOff+len(cl.args)]
				for j, a := range cl.args {
					if cl.probeMask&(1<<uint(j)) != 0 {
						probe = append(probe, ev.instantiate(a, frame))
					}
				}
				ev.stats.Probes++
				if err := ev.check.Tick(); err != nil {
					return err
				}
				if err := ev.inject.Hit(faultinject.SiteEngineProbe); err != nil {
					return err
				}
				// Probe through the per-evaluation cached index handle:
				// no mutex, no map lookup, pre-sized on first build.
				ix := sc.probeIndex(cl, rel)
				if ranged {
					it = ix.ProbeRange(probe, dv.lo, dv.hi)
				} else {
					it = ix.ProbeRange(probe, 0, database.RowID(rel.Len()))
				}
			} else {
				ev.stats.Probes++
				if err := ev.check.Tick(); err != nil {
					return err
				}
				if err := ev.inject.Hit(faultinject.SiteEngineProbe); err != nil {
					return err
				}
				if ranged {
					it = rel.ScanRange(dv.lo, dv.hi)
				} else {
					it = rel.Scan()
				}
			}
			for id, ok := it.Next(); ok; id, ok = it.Next() {
				if st != nil && int(id) < len(st) {
					if s := st[id]; s < 0 || s > stBound {
						continue
					}
				}
				if ev.matchTuple(cl, database.Tuple(rel.Row(id)), frame, &trail) {
					if err := step(i + 1); err != nil {
						return err
					}
				}
				unwind(frame, &trail, mark)
			}
			return nil
		}
	}
	return step(0)
}

func unwind(frame []term.Value, trail *[]int, mark int) {
	for len(*trail) > mark {
		s := (*trail)[len(*trail)-1]
		*trail = (*trail)[:len(*trail)-1]
		frame[s] = noValue
	}
}

// matchTuple unifies every literal argument with the tuple, extending frame
// and trail. On failure the caller unwinds to its mark.
func (ev *evaluator) matchTuple(cl *compiledLit, t database.Tuple, frame []term.Value, trail *[]int) bool {
	if len(t) != len(cl.args) {
		return false
	}
	for j, a := range cl.args {
		if !ev.match(a, t[j], frame, trail) {
			return false
		}
	}
	return true
}

// match unifies a pattern with a ground value.
func (ev *evaluator) match(p pat, v term.Value, frame []term.Value, trail *[]int) bool {
	switch p.kind {
	case ast.Const:
		return p.val == v
	case ast.Var:
		if frame[p.slot] != noValue {
			return frame[p.slot] == v
		}
		frame[p.slot] = v
		*trail = append(*trail, p.slot)
		return true
	default:
		if !v.IsCompound() {
			return false
		}
		c := ev.bank.Deref(v)
		if c.Functor != p.functor || len(c.Args) != len(p.args) {
			return false
		}
		for j, a := range p.args {
			if !ev.match(a, c.Args[j], frame, trail) {
				return false
			}
		}
		return true
	}
}

// instantiate builds the ground value of a pattern; every variable in it
// must be bound (guaranteed by the compile-time ordering and safety check).
func (ev *evaluator) instantiate(p pat, frame []term.Value) term.Value {
	switch p.kind {
	case ast.Const:
		return p.val
	case ast.Var:
		v := frame[p.slot]
		if v == noValue {
			panic("engine: internal error: instantiating unbound variable")
		}
		return v
	default:
		args := make([]term.Value, len(p.args))
		for j, a := range p.args {
			args[j] = ev.instantiate(a, frame)
		}
		return ev.bank.Compound(p.functor, args...)
	}
}

// stepBuiltin evaluates a builtin literal, possibly binding one variable,
// then calls cont. The binding is recorded on the trail.
func (ev *evaluator) stepBuiltin(cl *compiledLit, frame []term.Value, trail *[]int, cont func() error) error {
	x, y := cl.args[0], cl.args[1]
	gx, gy := x.groundIn(frame), y.groundIn(frame)

	bindVar := func(p pat, v term.Value) bool {
		if frame[p.slot] != noValue {
			return frame[p.slot] == v
		}
		frame[p.slot] = v
		*trail = append(*trail, p.slot)
		return true
	}

	switch cl.op {
	case opEq:
		switch {
		case gx && gy:
			if ev.instantiate(x, frame) == ev.instantiate(y, frame) {
				return cont()
			}
			return nil
		case gx:
			// y is a plain variable by the ordering precondition.
			mark := len(*trail)
			if bindVar(y, ev.instantiate(x, frame)) {
				if err := cont(); err != nil {
					return err
				}
			}
			unwind(frame, trail, mark)
			return nil
		default:
			mark := len(*trail)
			if bindVar(x, ev.instantiate(y, frame)) {
				if err := cont(); err != nil {
					return err
				}
			}
			unwind(frame, trail, mark)
			return nil
		}
	case opSucc:
		// The 62-bit Value encoding bounds the successor's range; at the
		// boundary the builtin simply fails instead of overflowing.
		const maxTermInt = 1<<61 - 1
		const minTermInt = -(1 << 61)
		switch {
		case gx && gy:
			a, b := ev.instantiate(x, frame), ev.instantiate(y, frame)
			if a.IsInt() && b.IsInt() && a.AsInt() < maxTermInt && b.AsInt() == a.AsInt()+1 {
				return cont()
			}
			return nil
		case gx:
			a := ev.instantiate(x, frame)
			if !a.IsInt() || a.AsInt() >= maxTermInt {
				return nil
			}
			mark := len(*trail)
			if bindVar(y, term.Int(a.AsInt()+1)) {
				if err := cont(); err != nil {
					return err
				}
			}
			unwind(frame, trail, mark)
			return nil
		default:
			b := ev.instantiate(y, frame)
			if !b.IsInt() || b.AsInt() <= minTermInt {
				return nil
			}
			mark := len(*trail)
			if bindVar(x, term.Int(b.AsInt()-1)) {
				if err := cont(); err != nil {
					return err
				}
			}
			unwind(frame, trail, mark)
			return nil
		}
	default:
		a, b := ev.instantiate(x, frame), ev.instantiate(y, frame)
		var c int
		if a.IsInt() && b.IsInt() {
			switch {
			case a.AsInt() < b.AsInt():
				c = -1
			case a.AsInt() > b.AsInt():
				c = 1
			}
		} else {
			c = term.Compare(a, b)
		}
		ok := false
		switch cl.op {
		case opNeq:
			ok = c != 0
		case opLt:
			ok = c < 0
		case opLe:
			ok = c <= 0
		case opGt:
			ok = c > 0
		case opGe:
			ok = c >= 0
		}
		if ok {
			return cont()
		}
		return nil
	}
}

// Answers matches a query goal against an evaluation result (falling back
// to the base database for purely extensional goals) and returns the
// matching tuples in deterministic order.
func Answers(res *Result, db *database.Database, q ast.Query) []database.Tuple {
	var rel *database.Relation
	if res != nil {
		rel = res.Derived[q.Goal.Pred]
	}
	if rel == nil && db != nil {
		rel = db.Relation(q.Goal.Pred)
	}
	if rel == nil {
		return nil
	}
	bank := res.bank
	inComp := map[symtab.Sym]bool{}
	cr, err := compileRule(bank, ast.Rule{
		Head: q.Goal,
		Body: []ast.Literal{q.Goal},
	}, inComp, nil)
	if err != nil {
		return nil
	}
	frame := make([]term.Value, cr.nslots)
	var out []database.Tuple
	var trail []int
	cl := &cr.defaultOrder[0]
	for i := range frame {
		frame[i] = noValue
	}
	ev := &evaluator{bank: bank}
	it := rel.Scan()
	for id, ok := it.Next(); ok; id, ok = it.Next() {
		t := database.Tuple(rel.Row(id))
		mark := len(trail)
		if ev.matchTuple(cl, t, frame, &trail) {
			// Clone is required: answers escape to the public API and must
			// not alias the relation arena, which the evaluator may later
			// Reset or grow while the caller still holds them.
			out = append(out, t.Clone())
		}
		unwind(frame, &trail, mark)
	}
	SortTuplesFormatted(bank, out)
	return out
}

// SortTuplesFormatted orders tuples by their rendered text (integers still
// compare numerically within a column). Slower than SortTuples but gives
// the alphabetical order humans expect from query output.
func SortTuplesFormatted(bank *term.Bank, ts []database.Tuple) {
	sort.Slice(ts, func(i, j int) bool {
		a, b := ts[i], ts[j]
		for k := range a {
			if a[k] == b[k] {
				continue
			}
			if a[k].IsInt() && b[k].IsInt() {
				return a[k].AsInt() < b[k].AsInt()
			}
			fa, fb := bank.Format(a[k]), bank.Format(b[k])
			if fa != fb {
				return fa < fb
			}
		}
		return false
	})
}

// SortTuples orders tuples deterministically (column-major term.Compare).
func SortTuples(ts []database.Tuple) {
	sort.Slice(ts, func(i, j int) bool {
		a, b := ts[i], ts[j]
		for k := range a {
			if c := term.Compare(a[k], b[k]); c != 0 {
				return c < 0
			}
		}
		return false
	})
}
