// Package engine implements bottom-up evaluation of Datalog programs:
// predicate dependency analysis, stratification, safety checking, and naive
// and semi-naive fixpoint computation with stratified negation and a small
// set of builtin predicates.
package engine

import (
	"fmt"
	"sort"

	"lincount/internal/ast"
	"lincount/internal/symtab"
	"lincount/internal/term"
)

// DepGraph is the predicate dependency graph of a program: an edge p → q
// for every rule with head p and body literal q. Edges remember whether any
// occurrence is negated.
type DepGraph struct {
	bank *term.Bank
	// adj[p] lists the distinct body predicates of p's rules.
	adj map[symtab.Sym][]symtab.Sym
	// negEdge[p→q] is true if q occurs negated in some rule for p.
	negEdge map[[2]symtab.Sym]bool
	// derived is the set of head predicates.
	derived map[symtab.Sym]bool
}

// NewDepGraph builds the dependency graph of p. Builtin predicates are not
// graph nodes.
func NewDepGraph(p *ast.Program) *DepGraph {
	g := &DepGraph{
		bank:    p.Bank,
		adj:     make(map[symtab.Sym][]symtab.Sym),
		negEdge: make(map[[2]symtab.Sym]bool),
		derived: make(map[symtab.Sym]bool),
	}
	syms := p.Bank.Symbols()
	seen := make(map[[2]symtab.Sym]bool)
	for _, r := range p.Rules {
		g.derived[r.Head.Pred] = true
		if _, ok := g.adj[r.Head.Pred]; !ok {
			g.adj[r.Head.Pred] = nil
		}
		for _, l := range r.Body {
			if ast.IsBuiltinName(syms.String(l.Pred)) {
				continue
			}
			e := [2]symtab.Sym{r.Head.Pred, l.Pred}
			if !seen[e] {
				seen[e] = true
				g.adj[r.Head.Pred] = append(g.adj[r.Head.Pred], l.Pred)
			}
			if l.Negated {
				g.negEdge[e] = true
			}
		}
	}
	return g
}

// IsDerived reports whether pred is the head of some rule.
func (g *DepGraph) IsDerived(pred symtab.Sym) bool { return g.derived[pred] }

// DependsOn reports whether p (transitively) depends on q.
func (g *DepGraph) DependsOn(p, q symtab.Sym) bool {
	seen := map[symtab.Sym]bool{}
	var walk func(symtab.Sym) bool
	walk = func(x symtab.Sym) bool {
		if seen[x] {
			return false
		}
		seen[x] = true
		for _, y := range g.adj[x] {
			if y == q || walk(y) {
				return true
			}
		}
		return false
	}
	return walk(p)
}

// MutuallyRecursive reports whether p and q are in the same recursive
// clique (p depends on q and q depends on p). A predicate is recursive
// with itself iff it depends on itself.
func (g *DepGraph) MutuallyRecursive(p, q symtab.Sym) bool {
	if p == q {
		return g.DependsOn(p, p)
	}
	return g.DependsOn(p, q) && g.DependsOn(q, p)
}

// Component groups the mutually recursive predicates of one SCC together
// with the rules defining them.
type Component struct {
	// Preds lists the component's predicates, sorted by name.
	Preds []symtab.Sym
	// Rules lists the program rules whose head is in Preds, in program
	// order.
	Rules []ast.Rule
	// Recursive is true if the component has an internal dependency
	// (a genuinely recursive clique, as opposed to a lone non-recursive
	// predicate).
	Recursive bool
}

// Stratify computes the strongly connected components of the dependency
// graph in topological (bottom-up) order and verifies that no negated edge
// is internal to a component. It returns an error for non-stratified
// programs.
func Stratify(p *ast.Program) ([]Component, error) {
	g := NewDepGraph(p)
	syms := p.Bank.Symbols()

	// Deterministic node order: sorted by name.
	nodes := make([]symtab.Sym, 0, len(g.adj))
	for n := range g.adj {
		nodes = append(nodes, n)
	}
	sort.Slice(nodes, func(i, j int) bool {
		return syms.String(nodes[i]) < syms.String(nodes[j])
	})

	// Tarjan's SCC. Emits components in reverse topological order, i.e.
	// callees before callers, which is exactly bottom-up order.
	index := make(map[symtab.Sym]int)
	low := make(map[symtab.Sym]int)
	onStack := make(map[symtab.Sym]bool)
	var stack []symtab.Sym
	var comps [][]symtab.Sym
	counter := 0

	var strongconnect func(v symtab.Sym)
	strongconnect = func(v symtab.Sym) {
		index[v] = counter
		low[v] = counter
		counter++
		stack = append(stack, v)
		onStack[v] = true
		for _, w := range g.adj[v] {
			if !g.derived[w] {
				continue // base predicate: leaf, not a node
			}
			if _, seen := index[w]; !seen {
				strongconnect(w)
				if low[w] < low[v] {
					low[v] = low[w]
				}
			} else if onStack[w] && index[w] < low[v] {
				low[v] = index[w]
			}
		}
		if low[v] == index[v] {
			var comp []symtab.Sym
			for {
				w := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				onStack[w] = false
				comp = append(comp, w)
				if w == v {
					break
				}
			}
			comps = append(comps, comp)
		}
	}
	for _, n := range nodes {
		if _, seen := index[n]; !seen {
			strongconnect(n)
		}
	}

	// Build Component values and check stratification.
	compOf := make(map[symtab.Sym]int)
	for i, c := range comps {
		for _, p := range c {
			compOf[p] = i
		}
	}
	out := make([]Component, 0, len(comps))
	for _, c := range comps {
		sort.Slice(c, func(i, j int) bool {
			return syms.String(c[i]) < syms.String(c[j])
		})
		comp := Component{Preds: c}
		inComp := make(map[symtab.Sym]bool, len(c))
		for _, p := range c {
			inComp[p] = true
		}
		for _, r := range p.Rules {
			if !inComp[r.Head.Pred] {
				continue
			}
			comp.Rules = append(comp.Rules, r)
			for _, l := range r.Body {
				if !inComp[l.Pred] {
					continue
				}
				comp.Recursive = true
				if l.Negated {
					return nil, fmt.Errorf(
						"engine: program is not stratified: %s depends negatively on %s within a recursive clique",
						syms.String(r.Head.Pred), syms.String(l.Pred))
				}
			}
		}
		out = append(out, comp)
	}
	// Sanity: negEdge entries across components are fine by construction;
	// internal ones were rejected above.
	_ = compOf
	return out, nil
}

// RecursiveCliques returns, for each recursive component, its predicate
// set. Convenience for the rewriters.
func RecursiveCliques(p *ast.Program) ([][]symtab.Sym, error) {
	comps, err := Stratify(p)
	if err != nil {
		return nil, err
	}
	var out [][]symtab.Sym
	for _, c := range comps {
		if c.Recursive {
			out = append(out, c.Preds)
		}
	}
	return out, nil
}
