package bench

import (
	"fmt"
	"strings"

	"lincount"
	"lincount/internal/graph"
)

// The E-series experiments re-run the paper's worked examples and verify
// the exact results its text reports. A row's Err column is empty when the
// check passes and carries a diagnostic when it does not, so the rendered
// table doubles as a reproduction record.

func checkRow(name string, got, want string) Row {
	r := Row{Workload: name, Strategy: "check"}
	if got != want {
		r.Err = fmt.Sprintf("got %s, want %s", got, want)
	}
	return r
}

func answersOf(src, facts, query string, s lincount.Strategy) (string, error) {
	p, err := lincount.ParseProgram(src)
	if err != nil {
		return "", err
	}
	db := lincount.NewDatabase(p)
	if err := db.LoadFacts(facts); err != nil {
		return "", err
	}
	// The caps only matter for the intentionally divergent check in E5;
	// every legitimate example run stays far below them.
	res, err := lincount.EvalContext(runCtx, p, db, query, s,
		lincount.WithMaxIterations(20_000), lincount.WithMaxDerivedFacts(1_000_000))
	if err != nil {
		return "", err
	}
	parts := make([]string, len(res.Answers))
	for i, row := range res.Answers {
		parts[i] = strings.Join(row, ",")
	}
	return "[" + strings.Join(parts, " ") + "]", nil
}

const sgExample = `sg(X,Y) :- flat(X,Y).
sg(X,Y) :- up(X,X1), sg(X1,Y1), down(Y1,Y).
`

// E1SameGeneration re-runs Example 1: the same-generation query under every
// rewriting agrees with bottom-up evaluation.
func E1SameGeneration() Table {
	t := Table{
		ID:    "E1",
		Title: "Example 1 — same generation, all strategies agree",
		Note:  "tree data; answers must be identical across strategies (Theorems 1–3).",
	}
	facts := `
up(d,b). up(e,b). up(b,a). up(c,a).
flat(a,a). flat(b,c). flat(c,b).
down(a,a). down(b,d). down(c,e).
`
	want, err := answersOf(sgExample, facts, "?- sg(d,Y).", lincount.SemiNaive)
	if err != nil {
		t.Rows = append(t.Rows, Row{Workload: "baseline", Err: err.Error()})
		return t
	}
	for _, s := range []lincount.Strategy{lincount.Magic, lincount.CountingClassic, lincount.Counting, lincount.CountingRuntime} {
		got, err := answersOf(sgExample, facts, "?- sg(d,Y).", s)
		r := checkRow("sg(d,Y) via "+s.String(), got, want)
		if err != nil {
			r.Err = err.Error()
		}
		t.Rows = append(t.Rows, r)
	}
	return t
}

// E2ArcClassification re-runs Example 2's DFS arc classification.
func E2ArcClassification() Table {
	t := Table{
		ID:    "E2",
		Title: "Example 2 — DFS arc classification",
		Note:  "arcs (a,b),(b,c),(a,d) tree; (a,c) forward; (d,b) cross; (c,b) back.",
	}
	g := graph.New(4)
	names := map[string]int{"a": 0, "b": 1, "c": 2, "d": 3}
	arcs := []string{"ab", "ac", "db", "cb", "bc", "ad"}
	for _, a := range arcs {
		g.AddArc(names[string(a[0])], names[string(a[1])])
	}
	c := g.ClassifyDFS(names["a"])
	want := map[string]graph.ArcClass{
		"ab": graph.Tree, "bc": graph.Tree, "ad": graph.Tree,
		"ac": graph.Forward, "db": graph.Cross, "cb": graph.Back,
	}
	for id, arc := range arcs {
		t.Rows = append(t.Rows, checkRow(
			fmt.Sprintf("arc (%c,%c)", arc[0], arc[1]),
			c.Class[id].String(), want[arc].String()))
	}
	m := g.NodeMultiplicity(names["a"])
	t.Rows = append(t.Rows, checkRow("node a", m[names["a"]].String(), "single"))
	t.Rows = append(t.Rows, checkRow("node d", m[names["d"]].String(), "single"))
	t.Rows = append(t.Rows, checkRow("node b", m[names["b"]].String(), "recurring"))
	t.Rows = append(t.Rows, checkRow("node c", m[names["c"]].String(), "recurring"))
	return t
}

// E3MultiRule re-runs Example 3: with two recursive rules only the answer
// reached by undoing the rules in reverse order exists.
func E3MultiRule() Table {
	t := Table{
		ID:    "E3",
		Title: "Example 3 — two recursive rules, reversed undo order",
		Note:  "up1;up2 applied downward admits only down2;down1 upward.",
	}
	src := `sg(X,Y) :- flat(X,Y).
sg(X,Y) :- up1(X,X1), sg(X1,Y1), down1(Y1,Y).
sg(X,Y) :- up2(X,X1), sg(X1,Y1), down2(Y1,Y).
`
	facts := `
up1(a,b). up2(b,c). flat(c,c2).
down2(c2,d). down1(d,good).
down1(c2,e). down2(e,bad).
`
	for _, s := range []lincount.Strategy{lincount.SemiNaive, lincount.Counting, lincount.CountingRuntime, lincount.Magic} {
		got, err := answersOf(src, facts, "?- sg(a,Y).", s)
		r := checkRow("sg(a,Y) via "+s.String(), got, "[a,good]")
		if err != nil {
			r.Err = err.Error()
		}
		t.Rows = append(t.Rows, r)
	}
	return t
}

// E4SharedVariables re-runs Example 4's two databases.
func E4SharedVariables() Table {
	t := Table{
		ID:    "E4",
		Title: "Example 4 — shared variables between left and right parts",
		Note:  "db1 answers p(a,e) via W=1; db2 answers p(a,e) via X=a.",
	}
	src := `p(X,Y) :- flat(X,Y).
p(X,Y) :- up1(X,X1,W), p(X1,Y1), down1(Y1,Y,W).
p(X,Y) :- up2(X,X1), p(X1,Y1), down2(Y1,Y,X).
`
	db1 := "up1(a,b,1). flat(b,c). down1(c,d,2). down1(c,e,1).\n"
	db2 := "up2(a,b). flat(b,c). down2(c,d,b). down2(c,e,a).\n"
	for _, s := range []lincount.Strategy{lincount.SemiNaive, lincount.Counting, lincount.CountingRuntime, lincount.Magic} {
		got, err := answersOf(src, db1, "?- p(a,Y).", s)
		r := checkRow("db1 p(a,Y) via "+s.String(), got, "[a,e]")
		if err != nil {
			r.Err = err.Error()
		}
		t.Rows = append(t.Rows, r)
		got, err = answersOf(src, db2, "?- p(a,Y).", s)
		r = checkRow("db2 p(a,Y) via "+s.String(), got, "[a,e]")
		if err != nil {
			r.Err = err.Error()
		}
		t.Rows = append(t.Rows, r)
	}
	return t
}

// E5Cyclic re-runs Example 5: the cyclic database with answers h, j, l.
func E5Cyclic() Table {
	t := Table{
		ID:    "E5",
		Title: "Example 5 — cyclic database (counting set o1..o5, cycle at d)",
		Note: `answers are h (2 ups), j (4 ups), l (6 ups through the d–e cycle);
the paper's "up(e,f)" is the OCR form of the back arc up(e,d) its trace requires.`,
	}
	facts := `
up(a,b). up(b,c). up(c,d). up(d,e). up(e,d). up(b,e).
down(f,g). down(g,h). down(h,i). down(i,j). down(j,k). down(k,l).
flat(e,f).
`
	for _, s := range []lincount.Strategy{lincount.SemiNaive, lincount.CountingRuntime, lincount.Magic} {
		got, err := answersOf(sgExample, facts, "?- sg(a,Y).", s)
		r := checkRow("sg(a,Y) via "+s.String(), got, "[a,h a,j a,l]")
		if err != nil {
			r.Err = err.Error()
		}
		t.Rows = append(t.Rows, r)
	}
	// Classical counting must diverge (caught by the guard).
	_, err := answersOf(sgExample, facts, "?- sg(a,Y).", lincount.CountingClassic)
	r := Row{Workload: "classic counting diverges", Strategy: "check"}
	if err == nil {
		r.Err = "expected budget error on cyclic data"
	}
	t.Rows = append(t.Rows, r)
	return t
}

// E6MixedLinear re-runs Example 6's reduction.
func E6MixedLinear() Table {
	t := Table{
		ID:    "E6",
		Title: "Example 6 — mixed-linear program and its reduction",
		Note:  "the reduced program drops the path argument entirely (§5, Fact 1).",
	}
	src := `p(X,Y) :- flat(X,Y).
p(X,Y) :- up(X,X1), p(X1,Y).
p(X,Y) :- p(X,Y1), down(Y1,Y).
`
	p, err := lincount.ParseProgram(src)
	if err != nil {
		t.Rows = append(t.Rows, Row{Workload: "parse", Err: err.Error()})
		return t
	}
	prog, goal, err := lincount.Rewrite(p, "?- p(a,Y).", lincount.CountingReduced)
	if err != nil {
		t.Rows = append(t.Rows, Row{Workload: "rewrite", Err: err.Error()})
		return t
	}
	wantRules := []string{
		"c_p_bf(a).",
		"c_p_bf(X1) :- c_p_bf(X), up(X,X1).",
		"p_bf(Y) :- c_p_bf(X), flat(X,Y).",
		"p_bf(Y) :- p_bf(Y1), down(Y1,Y).",
	}
	for _, w := range wantRules {
		r := Row{Workload: "reduced rule " + w, Strategy: "check"}
		if !strings.Contains(prog, w) {
			r.Err = "missing from reduced program"
		}
		t.Rows = append(t.Rows, r)
	}
	t.Rows = append(t.Rows, checkRow("reduced goal", goal, "?- p_bf(Y)."))

	facts := "up(a,b). up(b,c). flat(c,f0). flat(a,fa). down(f0,f1). down(f1,f2).\n"
	want, _ := answersOf(src, facts, "?- p(a,Y).", lincount.SemiNaive)
	got, err := answersOf(src, facts, "?- p(a,Y).", lincount.CountingReduced)
	r := checkRow("answers via counting-reduced", got, want)
	if err != nil {
		r.Err = err.Error()
	}
	t.Rows = append(t.Rows, r)
	return t
}
