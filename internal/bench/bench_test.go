package bench

import (
	"strings"
	"testing"
)

// TestExampleChecksAllPass runs the E-series reproduction checks; every
// row's Err must be empty.
func TestExampleChecksAllPass(t *testing.T) {
	for _, table := range []Table{
		E1SameGeneration(),
		E2ArcClassification(),
		E3MultiRule(),
		E4SharedVariables(),
		E5Cyclic(),
		E6MixedLinear(),
	} {
		for _, r := range table.Rows {
			if r.Err != "" {
				t.Errorf("%s: %s: %s", table.ID, r.Workload, r.Err)
			}
		}
	}
}

// TestP1ShapeHolds verifies the headline result with small parameters: the
// counting strategies derive fewer facts than magic on a wide cylinder, and
// all strategies agree on the answer count.
func TestP1ShapeHolds(t *testing.T) {
	table := P1MagicVsCounting([]int{6}, 8)
	var magicFacts, countingFacts int64
	answerCounts := map[int]bool{}
	for _, r := range table.Rows {
		if r.Err != "" {
			t.Fatalf("%s/%s: %s", r.Workload, r.Strategy, r.Err)
		}
		answerCounts[r.Answers] = true
		switch r.Strategy {
		case "magic":
			magicFacts = r.DerivedFacts
		case "counting":
			countingFacts = r.DerivedFacts
		}
	}
	if len(answerCounts) != 1 {
		t.Errorf("strategies disagree on answers: %v", answerCounts)
	}
	if countingFacts >= magicFacts {
		t.Errorf("counting derived %d facts, magic %d: expected counting < magic",
			countingFacts, magicFacts)
	}
}

// TestP2ShapeHolds verifies the n² vs n counting-set claim on a shortcut
// chain: the list-based counting set is superlinear in the runtime's node
// count.
func TestP2ShapeHolds(t *testing.T) {
	table := P2CountingSetSize([]int{48})
	var listSet, nodeSet int
	for _, r := range table.Rows {
		if r.Err != "" {
			t.Fatalf("%s/%s: %s", r.Workload, r.Strategy, r.Err)
		}
		switch r.Strategy {
		case "counting":
			listSet = r.CountingNodes
		case "counting-runtime":
			nodeSet = r.CountingNodes
		}
	}
	if nodeSet != 49 {
		t.Errorf("runtime counting set = %d, want 49 nodes", nodeSet)
	}
	if listSet < 5*nodeSet {
		t.Errorf("list-based counting set = %d, not superlinear vs %d nodes", listSet, nodeSet)
	}
}

// TestP3ShapeHolds: on cyclic chains the runtime and magic agree and the
// classic strategy reports divergence.
func TestP3ShapeHolds(t *testing.T) {
	table := P3CyclicData([]int{24}, 6)
	var answers = map[string]int{}
	for _, r := range table.Rows {
		if r.Strategy == "counting-classic" {
			if r.Err == "" {
				t.Error("classic counting did not report divergence on cyclic data")
			}
			continue
		}
		if r.Err != "" {
			t.Fatalf("%s/%s: %s", r.Workload, r.Strategy, r.Err)
		}
		answers[r.Strategy] = r.Answers
	}
	if answers["counting-runtime"] != answers["magic"] || answers["magic"] == 0 {
		t.Errorf("answer counts: %v", answers)
	}
}

// TestP4ShapeHolds: the reduced right-linear program's answer relation is
// not replicated per level.
func TestP4ShapeHolds(t *testing.T) {
	table := P4Reduction(64)
	var reduced, magic Row
	for _, r := range table.Rows {
		if r.Err != "" {
			t.Fatalf("%s/%s: %s", r.Workload, r.Strategy, r.Err)
		}
		if strings.HasPrefix(r.Workload, "right-linear") {
			switch r.Strategy {
			case "counting-reduced":
				reduced = r
			case "magic":
				magic = r
			}
		}
	}
	if reduced.AnswerTuples == 0 || magic.AnswerTuples == 0 {
		t.Fatalf("missing rows: reduced=%+v magic=%+v", reduced, magic)
	}
	if reduced.AnswerTuples >= magic.AnswerTuples {
		t.Errorf("reduced answer tuples %d >= magic %d", reduced.AnswerTuples, magic.AnswerTuples)
	}
	if reduced.Answers != magic.Answers {
		t.Errorf("answer sets differ: %d vs %d", reduced.Answers, magic.Answers)
	}
}

// TestP5AllAgree: every strategy answers multi-rule programs identically.
func TestP5AllAgree(t *testing.T) {
	table := P5MultiRule(24, []int{1, 3})
	counts := map[string]int{}
	for _, r := range table.Rows {
		if r.Err != "" {
			t.Fatalf("%s/%s: %s", r.Workload, r.Strategy, r.Err)
		}
		key := r.Workload
		if prev, ok := counts[key]; ok && prev != r.Answers {
			t.Errorf("%s: answer counts differ (%d vs %d)", key, prev, r.Answers)
		}
		counts[key] = r.Answers
	}
}

// TestP6AblationRuns: both variants complete and count cells.
func TestP6AblationRuns(t *testing.T) {
	table := P6PointerAblation([]int{500})
	if len(table.Rows) != 2 {
		t.Fatalf("rows = %d", len(table.Rows))
	}
	hc, st := table.Rows[0], table.Rows[1]
	if hc.Inferences >= st.Inferences {
		t.Errorf("hash-consed allocated %d cells, structural %d: sharing not visible",
			hc.Inferences, st.Inferences)
	}
}

// TestP7Runs and sanity-checks the answer count (exactly one per chain).
func TestP7Runs(t *testing.T) {
	table := P7PhaseWork([]int{32})
	for _, r := range table.Rows {
		if r.Err != "" {
			t.Fatalf("%s/%s: %s", r.Workload, r.Strategy, r.Err)
		}
		if r.Answers != 1 {
			t.Errorf("%s/%s answers = %d, want 1", r.Workload, r.Strategy, r.Answers)
		}
	}
}

// TestP10ShapeHolds: rewritten strategies are flat in the number of
// irrelevant branches while semi-naive grows linearly.
func TestP10ShapeHolds(t *testing.T) {
	table := P10Selectivity(16, []int{0, 8})
	inf := map[string][2]int64{}
	idx := map[string]int{"branchy(d=16,N=0)": 0, "branchy(d=16,N=8)": 1}
	for _, r := range table.Rows {
		if r.Err != "" {
			t.Fatalf("%s/%s: %s", r.Workload, r.Strategy, r.Err)
		}
		v := inf[r.Strategy]
		v[idx[r.Workload]] = r.Inferences
		inf[r.Strategy] = v
	}
	if inf["semi-naive"][1] <= 4*inf["semi-naive"][0] {
		t.Errorf("semi-naive did not scale with the database: %v", inf["semi-naive"])
	}
	for _, s := range []string{"magic", "counting", "counting-runtime"} {
		if inf[s][1] != inf[s][0] {
			t.Errorf("%s inferences changed with irrelevant data: %v", s, inf[s])
		}
	}
}

func TestTableCSV(t *testing.T) {
	table := Table{ID: "X", Rows: []Row{
		{Workload: "w,1", Strategy: "s", Answers: 2},
	}}
	out := table.CSV()
	if !strings.Contains(out, "\"w,1\"") || !strings.Contains(out, "experiment,workload") {
		t.Errorf("CSV:\n%s", out)
	}
}

func TestTableFormat(t *testing.T) {
	table := Table{ID: "X", Title: "demo", Note: "a note", Rows: []Row{
		{Workload: "w", Strategy: "s", Answers: 1},
		{Workload: "w2", Strategy: "s2", Err: "boom"},
	}}
	out := table.Format()
	for _, want := range []string{"== X: demo ==", "a note", "workload", "boom"} {
		if !strings.Contains(out, want) {
			t.Errorf("Format missing %q:\n%s", want, out)
		}
	}
}
