package bench

import (
	"encoding/json"
	"io"
)

// jsonRow is one measurement in the machine-readable report. The names
// follow Go benchmark conventions (ns/op, allocs/op, bytes/op); each
// bench cell runs the evaluation once, so per-op equals per-run.
type jsonRow struct {
	Name          string `json:"name"`
	Strategy      string `json:"strategy"`
	Answers       int    `json:"answers"`
	Inferences    int64  `json:"inferences"`
	Probes        int64  `json:"probes"`
	NsOp          int64  `json:"ns_op"`
	AllocsOp      uint64 `json:"allocs_op"`
	BytesOp       uint64 `json:"bytes_op"`
	CountingNodes int    `json:"counting_nodes"`
	Err           string `json:"err,omitempty"`
}

type jsonExperiment struct {
	ID    string    `json:"id"`
	Title string    `json:"title"`
	Rows  []jsonRow `json:"rows"`
}

type jsonReport struct {
	Generated   string           `json:"generated"`
	Quick       bool             `json:"quick"`
	Experiments []jsonExperiment `json:"experiments"`
}

// WriteJSON renders the experiment tables as an indented JSON report.
// generated is an RFC 3339 timestamp supplied by the caller.
func WriteJSON(w io.Writer, generated string, quick bool, tables []Table) error {
	rep := jsonReport{Generated: generated, Quick: quick, Experiments: []jsonExperiment{}}
	for _, t := range tables {
		exp := jsonExperiment{ID: t.ID, Title: t.Title, Rows: []jsonRow{}}
		for _, r := range t.Rows {
			exp.Rows = append(exp.Rows, jsonRow{
				Name:          r.Workload,
				Strategy:      r.Strategy,
				Answers:       r.Answers,
				Inferences:    r.Inferences,
				Probes:        r.Probes,
				NsOp:          r.Duration.Nanoseconds(),
				AllocsOp:      r.Allocs,
				BytesOp:       r.Bytes,
				CountingNodes: r.CountingNodes,
				Err:           r.Err,
			})
		}
		rep.Experiments = append(rep.Experiments, exp)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}
