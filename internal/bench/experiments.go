package bench

import (
	"fmt"
	"runtime"
	"strings"
	"time"

	"lincount"
	"lincount/internal/symtab"
	"lincount/internal/term"
	"lincount/internal/workload"
)

// P1MagicVsCounting is the paper's headline comparison (§1, citing [4,11]):
// same generation on cylinders of growing width. Counting carries answers
// per level; magic carries answers per (binding, level) pair, so counting
// wins by roughly the width factor.
func P1MagicVsCounting(widths []int, depth int) Table {
	t := Table{
		ID:      "P1",
		MemCols: true,
		Title:   "magic vs counting, same generation on cylinders",
		Note: fmt.Sprintf(`depth %d, fan 2, width sweep; query sg(%s,Y).
"cset" is the counting-set (or magic-set) size; counting's answer relation
stays linear in the width where magic's grows quadratically.`, depth, workload.CylinderQuery),
	}
	for _, w := range widths {
		facts := workload.Cylinder(depth, w, 2)
		query := fmt.Sprintf("?- sg(%s,Y).", workload.CylinderQuery)
		name := fmt.Sprintf("cylinder(w=%d,d=%d)", w, depth)
		for _, s := range []lincount.Strategy{lincount.Magic, lincount.CountingClassic, lincount.Counting, lincount.CountingRuntime} {
			t.Rows = append(t.Rows, Measure(name, workload.SGProgram, facts, query, s))
		}
	}
	return t
}

// P2CountingSetSize demonstrates §3.4's n² vs n claim: on shortcut chains a
// node is reachable by paths of many lengths, so the list-based counting
// set (one tuple per path shape) grows quadratically while the
// pointer-based runtime keeps one node per value.
func P2CountingSetSize(sizes []int) Table {
	t := Table{
		ID:      "P2",
		MemCols: true,
		Title:   "counting-set size: path lists (Alg.1) vs pointer nodes (Alg.2)",
		Note: `shortcut chains; "cset" column: counting tuples for strategy
counting, counting nodes for counting-runtime, magic tuples for magic.`,
	}
	for _, n := range sizes {
		facts := workload.ShortcutChain(n)
		name := fmt.Sprintf("shortcut-chain(%d)", n)
		query := "?- sg(v0,Y)."
		for _, s := range []lincount.Strategy{lincount.Counting, lincount.CountingRuntime, lincount.Magic} {
			t.Rows = append(t.Rows, Measure(name, workload.SGProgram, facts, query, s))
		}
	}
	return t
}

// P3CyclicData compares strategies on cyclic databases (§4): classical
// counting diverges (caught by the budget guard), the counting runtime and
// magic sets terminate and agree.
func P3CyclicData(sizes []int, period int) Table {
	t := Table{
		ID:    "P3",
		Title: "cyclic databases: runtime (Alg.2) vs magic; classic diverges",
		Note:  fmt.Sprintf("chains with a back arc every %d nodes (Example 5 shape).", period),
	}
	for _, n := range sizes {
		facts := workload.CyclicChain(n, period)
		name := fmt.Sprintf("cyclic-chain(%d,p=%d)", n, period)
		query := "?- sg(u0,Y)."
		for _, s := range []lincount.Strategy{lincount.CountingRuntime, lincount.Magic, lincount.CountingClassic} {
			t.Rows = append(t.Rows, Measure(name, workload.SGProgram, facts, query, s))
		}
	}
	return t
}

// P4Reduction shows §5's factorization: on right-/left-/mixed-linear
// programs the reduced program avoids the per-level replication entirely.
func P4Reduction(n int) Table {
	t := Table{
		ID:    "P4",
		Title: "reduction of RLC-linear programs (Algorithm 3)",
		Note:  fmt.Sprintf("chains of length %d; 8 answers at the top.", n),
	}
	rl := workload.RightLinearChain(n, 8)
	for _, s := range []lincount.Strategy{lincount.Magic, lincount.Counting, lincount.CountingReduced} {
		t.Rows = append(t.Rows, Measure(fmt.Sprintf("right-linear(%d)", n),
			workload.RightLinearProgram, rl, "?- p(u0,Y).", s))
	}
	// Left-linear: flat at the query node, then a down chain.
	llFacts := fmt.Sprintf("flat(u0,d0).\n%s", downChain(n))
	for _, s := range []lincount.Strategy{lincount.Magic, lincount.Counting, lincount.CountingReduced} {
		t.Rows = append(t.Rows, Measure(fmt.Sprintf("left-linear(%d)", n),
			workload.LeftLinearProgram, llFacts, "?- p(u0,Y).", s))
	}
	// Mixed: up chain, flat at top, down chain from there.
	mixed := workload.RightLinearChain(n, 1) + downChainFrom("ans0", n)
	for _, s := range []lincount.Strategy{lincount.Magic, lincount.Counting, lincount.CountingReduced} {
		t.Rows = append(t.Rows, Measure(fmt.Sprintf("mixed-linear(%d)", n),
			workload.MixedLinearProgram, mixed, "?- p(u0,Y).", s))
	}
	return t
}

func downChain(n int) string {
	return downChainFrom("d0", n)
}

func downChainFrom(start string, n int) string {
	out := ""
	prev := start
	for i := 1; i <= n; i++ {
		next := fmt.Sprintf("dn%d", i)
		out += fmt.Sprintf("down(%s,%s).\n", prev, next)
		prev = next
	}
	return out
}

// P5MultiRule scales the number of recursive rules (§3.1, Example 3).
func P5MultiRule(depth int, ks []int) Table {
	t := Table{
		ID:    "P5",
		Title: "multiple recursive rules (extended counting, Algorithm 1)",
		Note:  fmt.Sprintf("alternating-relation chains of depth %d; k = number of recursive rules.", depth),
	}
	for _, k := range ks {
		src := workload.MultiRuleProgram(k)
		facts := workload.MultiRule(depth, k)
		name := fmt.Sprintf("multi-rule(k=%d,d=%d)", k, depth)
		for _, s := range []lincount.Strategy{lincount.Counting, lincount.CountingRuntime, lincount.Magic} {
			t.Rows = append(t.Rows, Measure(name, src, facts, "?- sg(u0,Y).", s))
		}
	}
	return t
}

// P6PointerAblation isolates the §3.4 implementation claim: with
// hash-consing, path equality is handle comparison; without it, every
// push, hash and comparison walks the list. The workload builds the path
// lists of a depth-n counting run and deduplicates them both ways.
func P6PointerAblation(sizes []int) Table {
	t := Table{
		ID:      "P6",
		MemCols: true,
		Title:   "pointer-based path lists vs structural lists (ablation)",
		Note: `"inferences" column counts list cells allocated; the time columns
are what matter: hash-consed handles dedup in O(1) per path.`,
	}
	for _, n := range sizes {
		hc, cells := pointerPaths(n)
		t.Rows = append(t.Rows, Row{
			Workload:   fmt.Sprintf("paths(n=%d)", n),
			Strategy:   "hash-consed",
			Inferences: cells,
			Duration:   hc,
		})
		st, cells2 := structuralPaths(n)
		t.Rows = append(t.Rows, Row{
			Workload:   fmt.Sprintf("paths(n=%d)", n),
			Strategy:   "structural",
			Inferences: cells2,
			Duration:   st,
		})
	}
	return t
}

// pointerPaths builds n paths of length 1..n by consing onto shared tails
// in a Bank and deduplicates them by handle.
func pointerPaths(n int) (time.Duration, int64) {
	start := time.Now()
	bank := term.NewBank(symtab.New())
	e := term.Symbol(bank.Symbols().Intern("r1"))
	var cells int64
	seen := map[term.Value]bool{}
	// Simulate the counting phase: each level pushes one entry; levels
	// are revisited (as joins do) and must dedup cheaply.
	path := bank.Nil()
	for i := 0; i < n; i++ {
		path = bank.Cons(e, path)
		cells++
		for j := 0; j < 50; j++ { // 50 rediscoveries per level
			p2 := bank.Cons(e, bank.Deref(path).Args[1])
			seen[p2] = true
		}
	}
	_ = len(seen)
	return time.Since(start), cells
}

// structuralPaths does the same with plain Go slices: each push copies,
// each dedup hashes the whole list.
func structuralPaths(n int) (time.Duration, int64) {
	start := time.Now()
	var cells int64
	seen := map[string]bool{}
	path := []byte{}
	for i := 0; i < n; i++ {
		path = append(append([]byte{}, 'r'), path...)
		cells += int64(len(path))
		for j := 0; j < 50; j++ {
			p2 := append(append([]byte{}, 'r'), path[1:]...)
			seen[string(p2)] = true
		}
	}
	_ = len(seen)
	return time.Since(start), cells
}

// P7PhaseWork illustrates §1's "the computation of sg at level I uses only
// the tuples computed at level I+1": on deep chains the counting answer
// phase does constant work per level, while magic re-joins the magic set
// with up each iteration.
func P7PhaseWork(sizes []int) Table {
	t := Table{
		ID:    "P7",
		Title: "per-level answer-phase work on deep chains",
		Note:  `"probes" counts index lookups; counting stays proportional to the chain.`,
	}
	for _, n := range sizes {
		facts := workload.Chain(n)
		name := fmt.Sprintf("chain(%d)", n)
		for _, s := range []lincount.Strategy{lincount.Magic, lincount.MagicSup, lincount.CountingClassic, lincount.Counting, lincount.SemiNaive} {
			t.Rows = append(t.Rows, Measure(name, workload.SGProgram, facts, "?- sg(u0,Y).", s))
		}
	}
	return t
}

// P8TreeData runs the Bancilhon–Ramakrishnan tree datasets, where the
// up-path from the query leaf is unique: counting and magic materialize
// comparably sized sets and the methods roughly tie — the honest
// break-even regime the cylinder results should be read against.
func P8TreeData(depths []int) Table {
	t := Table{
		ID:    "P8",
		Title: "tree data (B&R): counting ≈ magic when the up-path is unique",
		Note:  "complete binary trees; query from the leftmost leaf; answers are all equal-depth leaves.",
	}
	for _, d := range depths {
		facts := workload.Tree(2, d)
		query := fmt.Sprintf("?- sg(%s,Y).", workload.TreeQuery(d))
		name := fmt.Sprintf("tree(f=2,d=%d)", d)
		for _, s := range []lincount.Strategy{lincount.Magic, lincount.CountingClassic, lincount.Counting, lincount.CountingRuntime} {
			t.Rows = append(t.Rows, Measure(name, workload.SGProgram, facts, query, s))
		}
	}
	return t
}

// P9Grid runs the grid variant of the cylinder (no wraparound); the
// counting advantage persists with thinner answer sets at the borders.
func P9Grid(widths []int, depth int) Table {
	t := Table{
		ID:    "P9",
		Title: "grid data: counting vs magic without wraparound",
		Note:  fmt.Sprintf("depth %d; query sg(%s,Y).", depth, workload.GridQuery),
	}
	for _, w := range widths {
		facts := workload.Grid(depth, w)
		query := fmt.Sprintf("?- sg(%s,Y).", workload.GridQuery)
		name := fmt.Sprintf("grid(w=%d,d=%d)", w, depth)
		for _, s := range []lincount.Strategy{lincount.Magic, lincount.Counting, lincount.CountingRuntime} {
			t.Rows = append(t.Rows, Measure(name, workload.SGProgram, facts, query, s))
		}
	}
	return t
}

// P10Selectivity sweeps the fraction of query-relevant data: one relevant
// chain plus a growing number of disconnected ones. This is the raison
// d'être of binding propagation — rewritten programs cost O(relevant),
// plain bottom-up costs O(database).
func P10Selectivity(depth int, branches []int) Table {
	t := Table{
		ID:    "P10",
		Title: "selectivity: binding propagation vs whole-database evaluation",
		Note: fmt.Sprintf(`one relevant chain of depth %d plus N disconnected ones;
semi-naive scales with the database, the rewritings with the relevant part.`, depth),
	}
	for _, n := range branches {
		facts := workload.Branchy(depth, n)
		name := fmt.Sprintf("branchy(d=%d,N=%d)", depth, n)
		for _, s := range []lincount.Strategy{lincount.SemiNaive, lincount.Magic, lincount.Counting, lincount.CountingRuntime} {
			t.Rows = append(t.Rows, Measure(name, workload.SGProgram, facts, "?- sg(u0,Y).", s))
		}
	}
	return t
}

// P11IntegerEncoding reproduces §3.4's argument against the generalized
// counting of Saccà & Zaniolo [15], which encodes the log of applied rules
// into one integer with base = number of rules: "the size of the number
// grows exponentially with the number of steps". The table reports, for
// k rules, the recursion depth at which a 62-bit integer overflows,
// against the list/pointer representation which never does (its cost is
// one cons cell per step, cf. P6).
func P11IntegerEncoding(ks []int) Table {
	t := Table{
		ID:    "P11",
		Title: "integer-encoded rule logs ([15]) vs path lists: overflow depth",
		Note: `"answers" column: maximum depth before a 62-bit encoded log overflows;
"inferences" column: bits consumed per recursion step (log2 of base).`,
	}
	for _, k := range ks {
		base := uint64(k + 1) // digits 1..k, 0 reserved for the empty log
		depth := 0
		for val := uint64(0); ; depth++ {
			next := val*base + uint64(k) // push the worst-case digit
			if next >= 1<<62 {
				break
			}
			val = next
		}
		bits := 0
		for b := base; b > 1; b >>= 1 {
			bits++
		}
		t.Rows = append(t.Rows, Row{
			Workload:   fmt.Sprintf("k=%d rules (base %d)", k, base),
			Strategy:   "integer-log [15]",
			Answers:    depth,
			Inferences: int64(bits),
		})
	}
	t.Rows = append(t.Rows, Row{
		Workload: "any k", Strategy: "path lists (§3.4)",
		Answers: -1, // unbounded: one shared cons cell per step
	})
	return t
}

// P12QSQ compares the top-down Query-SubQuery method against the
// rewriting strategies. Our QSQ is the *iterative* variant (QSQI): every
// global pass re-derives from scratch, which is quadratic on deep chains —
// the very overhead that motivated the rewriting approaches ([4] measures
// the same gap). The subquery set ("cset") matches the magic set exactly.
func P12QSQ(sizes []int) Table {
	t := Table{
		ID:    "P12",
		Title: "QSQ (top-down, iterative) vs the rewriting methods",
		Note: `QSQI re-sweeps all subqueries each pass: inference counts grow
quadratically with depth while the rewritings stay linear; the input
(subquery) set equals the magic set.`,
	}
	for _, n := range sizes {
		facts := workload.Chain(n)
		name := fmt.Sprintf("chain(%d)", n)
		for _, s := range []lincount.Strategy{lincount.QSQ, lincount.Magic, lincount.Counting} {
			t.Rows = append(t.Rows, Measure(name, workload.SGProgram, facts, "?- sg(u0,Y).", s))
		}
	}
	return t
}

// P14PreparedVsCold measures compilation amortization through the plan
// cache: the same Auto query evaluated cold (plan cache bypassed, every
// evaluation re-runs parsing, adornment, analysis and rewriting) versus
// through a PreparedQuery whose plan compiles once and is a cache hit
// thereafter. Rows report the mean per-evaluation duration over reps
// evaluations on small P1/P2-shaped instances, where compilation and
// execution cost are comparable — the point-query regime the cache
// exists for.
func P14PreparedVsCold(reps int) Table {
	t := Table{
		ID:    "P14",
		Title: "prepared (plan-cache hit) vs cold (cache bypassed) evaluation",
		Note: `Both rows of a pair run the identical Auto evaluation; "prepared"
skips query parsing and the compile passes after the first call. The
stats columns are identical by construction — only time moves.`,
	}
	workloads := []struct {
		name, src, facts, query string
	}{
		{"cylinder(3,2)", workload.SGProgram, workload.Cylinder(3, 2, 2),
			fmt.Sprintf("?- sg(%s,Y).", workload.CylinderQuery)},
		{"shortcut(4)", workload.SGProgram, workload.ShortcutChain(4), "?- sg(v0,Y)."},
	}
	for _, w := range workloads {
		p, err := lincount.ParseProgram(w.src)
		if err != nil {
			t.Rows = append(t.Rows, Row{Workload: w.name, Err: err.Error()})
			continue
		}
		db := lincount.NewDatabase(p)
		if err := db.LoadFacts(w.facts); err != nil {
			t.Rows = append(t.Rows, Row{Workload: w.name, Err: err.Error()})
			continue
		}
		t.Rows = append(t.Rows, measureRepeated(w.name+" cold", reps, func() (*lincount.Result, error) {
			return lincount.EvalContext(runCtx, p, db, w.query, lincount.Auto, lincount.WithoutPlanCache())
		}))
		pq, err := lincount.Prepare(p, w.query, lincount.Auto)
		if err != nil {
			t.Rows = append(t.Rows, Row{Workload: w.name + " prepared", Err: err.Error()})
			continue
		}
		if _, err := pq.EvalContext(runCtx, db); err != nil { // warm the cache
			t.Rows = append(t.Rows, Row{Workload: w.name + " prepared", Err: shortErr(err)})
			continue
		}
		t.Rows = append(t.Rows, measureRepeated(w.name+" prepared", reps, func() (*lincount.Result, error) {
			return pq.EvalContext(runCtx, db)
		}))
	}
	return t
}

// measureRepeated runs eval reps times and reports the mean duration
// (stats come from the last run; all runs are identical).
func measureRepeated(name string, reps int, eval func() (*lincount.Result, error)) Row {
	row := Row{Workload: name, Strategy: lincount.Auto.String()}
	if reps < 1 {
		reps = 1
	}
	start := time.Now()
	var res *lincount.Result
	for i := 0; i < reps; i++ {
		var err error
		if res, err = eval(); err != nil {
			row.Err = shortErr(err)
			return row
		}
	}
	row.Duration = time.Since(start) / time.Duration(reps)
	row.Strategy = res.Strategy.String()
	row.Answers = len(res.Answers)
	row.Inferences = res.Stats.Inferences
	row.DerivedFacts = res.Stats.DerivedFacts
	row.CountingNodes = res.Stats.CountingNodes
	row.AnswerTuples = res.Stats.AnswerTuples
	row.Probes = res.Stats.Probes
	return row
}

// P16UpdateLatency compares incremental maintenance of a materialisation
// (Materialization.Apply) against full re-evaluation of the updated
// database when a small write batch lands. The workload is a forest of
// disjoint "bands" under transitive closure — each band is a ladder of
// layers with every node wired to every node of the next layer — so
// each derived fact has several derivations (re-evaluation pays for all
// of them) and the delta perturbs only one band's closure. The batch
// mixes retracts (tail edges of band 0) and asserts (a fresh side
// chain) and stays at or under 1% of the EDB.
func P16UpdateLatency(layers []int, reps int) Table {
	const bands, width = 16, 4
	const tcProg = "tc(X,Y) :- e(X,Y).\ntc(X,Y) :- e(X,Z), tc(Z,Y).\n"
	t := Table{
		ID:    "P16",
		Title: "update latency: incremental maintenance vs full re-evaluation",
		Note: fmt.Sprintf(`%d disjoint bands (complete bipartite between consecutive layers of
width %d) under transitive closure; the write batch retracts tail edges
of band 0 and asserts a fresh side chain (≤1%% of the EDB). "maintain"
is Materialization.Apply on the published materialisation; "re-eval"
forks the database, applies the same ops, and re-materialises from
scratch. Both rows end in the identical derived set.`, bands, width),
	}
	if reps < 1 {
		reps = 1
	}
	for _, depth := range layers {
		edb := bands * (depth - 1) * width * width
		name := fmt.Sprintf("bands(%d×%d×%d)", bands, depth, width)
		var facts strings.Builder
		for b := 0; b < bands; b++ {
			for l := 0; l < depth-1; l++ {
				for i := 0; i < width; i++ {
					for j := 0; j < width; j++ {
						fmt.Fprintf(&facts, "e(b%d_%d_%d,b%d_%d_%d).\n", b, l, i, b, l+1, j)
					}
				}
			}
		}
		k := edb / 100
		if k < 2 {
			k = 2
		}
		k &^= 1 // even: half retracts, half asserts
		ops := make([]lincount.WriteOp, 0, k)
		// Retract band 0's tail edges, last inter-layer slab first.
		for n := 0; n < k/2; n++ {
			slab := depth - 2 - n/(width*width)
			i, j := (n%(width*width))/width, n%width
			ops = append(ops, lincount.WriteOp{Retract: true,
				Text: fmt.Sprintf("e(b0_%d_%d,b0_%d_%d).", slab, i, slab+1, j)})
		}
		for i := 0; i < k/2; i++ {
			ops = append(ops, lincount.WriteOp{
				Text: fmt.Sprintf("e(x%d,x%d).", i, i+1)})
		}

		p, err := lincount.ParseProgram(tcProg)
		if err != nil {
			t.Rows = append(t.Rows, Row{Workload: name, Err: shortErr(err)})
			continue
		}
		db := lincount.NewDatabase(p)
		if err := db.LoadFacts(facts.String()); err != nil {
			t.Rows = append(t.Rows, Row{Workload: name, Err: shortErr(err)})
			continue
		}
		base, err := p.Materialize(runCtx, db)
		if err != nil {
			t.Rows = append(t.Rows, Row{Workload: name, Err: shortErr(err)})
			continue
		}

		// One untimed pass each warms the compile/prepare caches (the P14
		// convention) and produces the states for the cross-check below.
		// Timed reps report the best rep, not the mean: both sides are
		// single-threaded and deterministic, so the minimum is the run
		// least disturbed by the scheduler.
		maintRow := Row{Workload: name, Strategy: "maintain"}
		maintained, _, err := base.Apply(runCtx, ops)
		if err != nil {
			maintRow.Err = shortErr(err)
		} else {
			for r := 0; r < reps && maintRow.Err == ""; r++ {
				start := time.Now()
				if _, _, err := base.Apply(runCtx, ops); err != nil {
					maintRow.Err = shortErr(err)
				} else if d := time.Since(start); r == 0 || d < maintRow.Duration {
					maintRow.Duration = d
				}
			}
			if maintRow.Err == "" {
				maintRow.DerivedFacts = maintained.DerivedFacts()
			}
		}

		evalRow := Row{Workload: name, Strategy: "re-eval"}
		reEval := func() (*lincount.Materialization, error) {
			fork := db.Fork()
			for _, op := range ops {
				var err error
				if op.Retract {
					_, err = fork.RetractFacts(op.Text)
				} else {
					err = fork.LoadFacts(op.Text)
				}
				if err != nil {
					return nil, err
				}
			}
			return p.Materialize(runCtx, fork)
		}
		full, err := reEval()
		if err != nil {
			evalRow.Err = shortErr(err)
		} else {
			for r := 0; r < reps && evalRow.Err == ""; r++ {
				start := time.Now()
				if _, err := reEval(); err != nil {
					evalRow.Err = shortErr(err)
				} else if d := time.Since(start); r == 0 || d < evalRow.Duration {
					evalRow.Duration = d
				}
			}
			if evalRow.Err == "" {
				evalRow.DerivedFacts = full.DerivedFacts()
			}
		}

		// Cross-check: the maintained and re-evaluated states must agree,
		// and the maintained counts must survive verification.
		if maintRow.Err == "" && evalRow.Err == "" {
			if maintRow.DerivedFacts != evalRow.DerivedFacts {
				maintRow.Err = fmt.Sprintf("derived mismatch: maintain %d, re-eval %d",
					maintRow.DerivedFacts, evalRow.DerivedFacts)
			} else if err := maintained.Verify(runCtx); err != nil {
				maintRow.Err = shortErr(err)
			}
		}
		t.Rows = append(t.Rows, maintRow, evalRow)
	}
	return t
}

// P17BatchedJoin compares the engine's join execution paths on the same
// semi-naive evaluations: the tuple-at-a-time legacy path
// (WithBatchedJoin(false)), the batched streaming pipeline (the
// default), and the pipeline with the delta window partitioned across a
// worker pool (WithJoinWorkers). The wide workload is a 4-literal
// linear-recursive rule whose middle literals fan out and whose last
// literal filters — many probes and intermediate frames per derived
// fact, the shape batching exists for. The band workload is the P16
// shape — complete bipartite slabs, insert-bound rather than
// probe-bound, so it measures the floor of the win. The narrow chain
// workload is the regression guard: delta windows of one row, where
// batching can win nothing and must not lose.
func P17BatchedJoin(layers []int, reps int) Table {
	const bands, width = 8, 6
	const tcProg = "tc(X,Y) :- e(X,Y).\ntc(X,Y) :- e(X,Z), tc(Z,Y).\n"
	const wideProg = "p(X,Y) :- s(X,Y).\np(X,W) :- p(X,Y), a(Y,Z), a2(Z,U), b(U,W).\n"
	t := Table{
		ID:      "P17",
		Title:   "batched streaming join pipeline vs tuple-at-a-time execution",
		MemCols: true,
		Note: fmt.Sprintf(`Semi-naive, identical fixpoints per workload group (inferences/facts
columns must match within a group; only time and allocations move).
wide(K×N×F) is a 4-literal recursive rule with F×F fanout filtered to
one continuation — probe-bound, where batching wins most.
bands(%d×L×%d) joins complete bipartite slabs — insert-bound.
chain(N) is the one-row-delta worst case for batching. "+4w" adds
WithJoinWorkers(4) — on a single-core host it measures partition
overhead, not speedup.`, bands, width),
	}
	modes := []struct {
		name string
		opts []lincount.Option
	}{
		{"legacy", []lincount.Option{lincount.WithBatchedJoin(false)}},
		{"batched", nil},
		{"+4w", []lincount.Option{lincount.WithJoinWorkers(4)}},
	}
	bandFacts := func(depth int) string {
		var facts strings.Builder
		for b := 0; b < bands; b++ {
			for l := 0; l < depth-1; l++ {
				for i := 0; i < width; i++ {
					for j := 0; j < width; j++ {
						fmt.Fprintf(&facts, "e(b%d_%d_%d,b%d_%d_%d).\n", b, l, i, b, l+1, j)
					}
				}
			}
		}
		return facts.String()
	}
	wideFacts := func(sources, steps, fanout int) string {
		var facts strings.Builder
		for i := 0; i < steps; i++ {
			for j := 0; j < fanout; j++ {
				fmt.Fprintf(&facts, "a(y%d,m%d_%d).\n", i, i, j)
				for l := 0; l < fanout; l++ {
					fmt.Fprintf(&facts, "a2(m%d_%d,u%d_%d_%d).\n", i, j, i, j, l)
				}
			}
			fmt.Fprintf(&facts, "b(u%d_0_0,y%d).\n", i, i+1)
		}
		for k := 0; k < sources; k++ {
			fmt.Fprintf(&facts, "s(x%d,y0).\n", k)
		}
		return facts.String()
	}
	type wl struct {
		name, src, facts, query string
	}
	ws := make([]wl, 0, len(layers)+2)
	ws = append(ws, wl{
		name:  "wide(192×64×4)",
		src:   wideProg,
		facts: wideFacts(192, 64, 4),
		query: "?- p(x0,W).",
	})
	for _, depth := range layers {
		ws = append(ws, wl{
			name:  fmt.Sprintf("bands(%d×%d×%d)", bands, depth, width),
			src:   tcProg,
			facts: bandFacts(depth),
			query: "?- tc(b0_0_0,Y).",
		})
	}
	var chain strings.Builder
	for i := 0; i < 512; i++ {
		fmt.Fprintf(&chain, "e(n%d,n%d).\n", i, i+1)
	}
	ws = append(ws, wl{
		name:  "chain(512)",
		src:   tcProg,
		facts: chain.String(),
		query: "?- tc(n0,Y).",
	})
	for _, w := range ws {
		for _, m := range modes {
			t.Rows = append(t.Rows, measureJoinMode(w.name+" "+m.name, w.src, w.facts, w.query, reps, m.opts))
		}
	}
	return t
}

// measureJoinMode times reps semi-naive evaluations of one workload under
// one set of join options, reporting the minimum duration across reps
// and the mean allocation deltas per evaluation.
func measureJoinMode(name, src, facts, query string, reps int, opts []lincount.Option) Row {
	row := Row{Workload: name, Strategy: lincount.SemiNaive.String()}
	if reps < 1 {
		reps = 1
	}
	p, err := lincount.ParseProgram(src)
	if err != nil {
		row.Err = err.Error()
		return row
	}
	db := lincount.NewDatabase(p)
	if err := db.LoadFacts(facts); err != nil {
		row.Err = err.Error()
		return row
	}
	all := append([]lincount.Option{
		lincount.WithMaxDerivedFacts(5_000_000),
		lincount.WithMaxIterations(50_000),
	}, opts...)
	pq, err := lincount.Prepare(p, query, lincount.SemiNaive, all...)
	if err != nil {
		row.Err = shortErr(err)
		return row
	}
	var res *lincount.Result
	if res, err = pq.EvalContext(runCtx, db); err != nil { // warm caches and indexes
		row.Err = shortErr(err)
		return row
	}
	var memBefore runtime.MemStats
	runtime.ReadMemStats(&memBefore)
	// Min-of-reps timing: on a shared single-core box the mean is dominated
	// by scheduler noise; the minimum is the stable estimate of the true cost.
	best := time.Duration(0)
	for i := 0; i < reps; i++ {
		start := time.Now()
		if res, err = pq.EvalContext(runCtx, db); err != nil {
			row.Err = shortErr(err)
			return row
		}
		if d := time.Since(start); best == 0 || d < best {
			best = d
		}
	}
	row.Duration = best
	var memAfter runtime.MemStats
	runtime.ReadMemStats(&memAfter)
	row.Allocs = (memAfter.Mallocs - memBefore.Mallocs) / uint64(reps)
	row.Bytes = (memAfter.TotalAlloc - memBefore.TotalAlloc) / uint64(reps)
	row.Strategy = res.Strategy.String()
	row.Answers = len(res.Answers)
	row.Inferences = res.Stats.Inferences
	row.DerivedFacts = res.Stats.DerivedFacts
	row.Probes = res.Stats.Probes
	return row
}

// RunAll executes the full experiment suite with the default parameters
// recorded in EXPERIMENTS.md.
func RunAll() []Table {
	return []Table{
		E1SameGeneration(),
		E2ArcClassification(),
		E3MultiRule(),
		E4SharedVariables(),
		E5Cyclic(),
		E6MixedLinear(),
		P1MagicVsCounting([]int{2, 4, 8, 16}, 16),
		P2CountingSetSize([]int{16, 32, 64, 128}),
		P3CyclicData([]int{32, 64, 128}, 8),
		P4Reduction(256),
		P5MultiRule(64, []int{1, 2, 4, 8}),
		P6PointerAblation([]int{1000, 2000, 4000}),
		P7PhaseWork([]int{64, 256, 1024}),
		P8TreeData([]int{6, 8, 10}),
		P9Grid([]int{4, 8, 16}, 16),
		P10Selectivity(32, []int{0, 4, 16, 64}),
		P11IntegerEncoding([]int{1, 2, 4, 8, 16}),
		P12QSQ([]int{16, 32, 64}),
		P14PreparedVsCold(200),
		P16UpdateLatency([]int{20, 28}, 9),
		P17BatchedJoin([]int{16, 24}, 5),
	}
}
