// Package bench is the experiment harness: it runs the (program, workload,
// strategy) matrix behind every experiment in EXPERIMENTS.md and renders
// the result tables. The package exercises only the public lincount API so
// the numbers reflect what a library user would see.
package bench

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"strings"
	"time"

	"lincount"
)

// runCtx governs every Measure call; the bench CLI installs its signal- and
// timeout-aware context here so Ctrl-C stops the suite between (and inside)
// cells instead of waiting out a long run.
var runCtx = context.Background()

// SetContext installs the context under which subsequent measurements run.
// A nil ctx restores the default (context.Background()). Not safe for
// concurrent use with Measure; call it before starting the suite.
func SetContext(ctx context.Context) {
	if ctx == nil {
		ctx = context.Background()
	}
	runCtx = ctx
}

// Row is one measurement.
type Row struct {
	Workload      string
	Strategy      string
	Answers       int
	Inferences    int64
	DerivedFacts  int64
	CountingNodes int
	AnswerTuples  int
	Probes        int64
	// Allocs and Bytes are heap-allocation deltas (runtime.MemStats
	// Mallocs/TotalAlloc) across the evaluation — coarser than testing.B's
	// per-op numbers but comparable run to run. Rendered only for tables
	// with MemCols set.
	Allocs   uint64
	Bytes    uint64
	Duration time.Duration
	Err      string
}

// Table is one experiment's result set.
type Table struct {
	ID    string
	Title string
	Note  string
	// MemCols adds the allocs and bytes columns to the rendered table
	// (the allocation-sensitive experiments P1, P2 and P6).
	MemCols bool
	Rows    []Row
}

// Format renders the table as aligned text.
func (t Table) Format() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "== %s: %s ==\n", t.ID, t.Title)
	if t.Note != "" {
		for _, line := range strings.Split(strings.TrimSpace(t.Note), "\n") {
			fmt.Fprintf(&sb, "   %s\n", strings.TrimSpace(line))
		}
	}
	header := []string{"workload", "strategy", "answers", "inferences", "facts", "cset", "atuples", "probes"}
	if t.MemCols {
		header = append(header, "allocs", "bytes")
	}
	header = append(header, "time")
	rows := [][]string{header}
	for _, r := range t.Rows {
		if r.Err != "" {
			row := []string{r.Workload, r.Strategy}
			for len(row) < len(header)-1 {
				row = append(row, "—")
			}
			rows = append(rows, append(row, r.Err))
			continue
		}
		row := []string{
			r.Workload, r.Strategy,
			fmt.Sprint(r.Answers), fmt.Sprint(r.Inferences), fmt.Sprint(r.DerivedFacts),
			fmt.Sprint(r.CountingNodes), fmt.Sprint(r.AnswerTuples), fmt.Sprint(r.Probes),
		}
		if t.MemCols {
			row = append(row, fmt.Sprint(r.Allocs), fmt.Sprint(r.Bytes))
		}
		rows = append(rows, append(row, r.Duration.Round(10*time.Microsecond).String()))
	}
	widths := make([]int, len(header))
	for _, row := range rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	for ri, row := range rows {
		for i, c := range row {
			pad := widths[i]
			if i == len(row)-1 {
				fmt.Fprintf(&sb, "%s", c)
			} else {
				fmt.Fprintf(&sb, "%-*s  ", pad, c)
			}
		}
		sb.WriteByte('\n')
		if ri == 0 {
			total := 0
			for _, w := range widths {
				total += w + 2
			}
			sb.WriteString(strings.Repeat("-", total))
			sb.WriteByte('\n')
		}
	}
	return sb.String()
}

// CSV renders the table as comma-separated values with a header row, for
// spreadsheet import; the experiment id is repeated in the first column.
func (t Table) CSV() string {
	var sb strings.Builder
	sb.WriteString("experiment,workload,strategy,answers,inferences,facts,cset,atuples,probes,allocs,bytes,micros,error\n")
	for _, r := range t.Rows {
		fmt.Fprintf(&sb, "%s,%s,%s,%d,%d,%d,%d,%d,%d,%d,%d,%d,%s\n",
			csvEscape(t.ID), csvEscape(r.Workload), csvEscape(r.Strategy),
			r.Answers, r.Inferences, r.DerivedFacts, r.CountingNodes,
			r.AnswerTuples, r.Probes, r.Allocs, r.Bytes,
			r.Duration.Microseconds(), csvEscape(r.Err))
	}
	return sb.String()
}

func csvEscape(s string) string {
	if !strings.ContainsAny(s, ",\"\n") {
		return s
	}
	return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
}

// Measure runs one (program, facts, query, strategy) cell.
func Measure(workload, src, facts, query string, s lincount.Strategy) Row {
	row := Row{Workload: workload, Strategy: s.String()}
	p, err := lincount.ParseProgram(src)
	if err != nil {
		row.Err = err.Error()
		return row
	}
	db := lincount.NewDatabase(p)
	if err := db.LoadFacts(facts); err != nil {
		row.Err = err.Error()
		return row
	}
	// The caps are far above any legitimate run in the suite; they exist
	// so that intentionally divergent cells (classical counting on cyclic
	// data) report quickly instead of burning the default budget.
	pq, err := lincount.Prepare(p, query, s,
		lincount.WithMaxDerivedFacts(5_000_000),
		lincount.WithMaxIterations(50_000))
	if err != nil {
		row.Err = shortErr(err)
		return row
	}
	var memBefore runtime.MemStats
	runtime.ReadMemStats(&memBefore)
	start := time.Now()
	res, err := pq.EvalContext(runCtx, db)
	row.Duration = time.Since(start)
	var memAfter runtime.MemStats
	runtime.ReadMemStats(&memAfter)
	row.Allocs = memAfter.Mallocs - memBefore.Mallocs
	row.Bytes = memAfter.TotalAlloc - memBefore.TotalAlloc
	if err == nil && res.Stats.Duration > 0 {
		row.Duration = res.Stats.Duration
	}
	if err != nil {
		row.Err = shortErr(err)
		return row
	}
	row.Strategy = res.Strategy.String()
	row.Answers = len(res.Answers)
	row.Inferences = res.Stats.Inferences
	row.DerivedFacts = res.Stats.DerivedFacts
	row.CountingNodes = res.Stats.CountingNodes
	row.AnswerTuples = res.Stats.AnswerTuples
	row.Probes = res.Stats.Probes
	return row
}

func shortErr(err error) string {
	switch {
	case errors.Is(err, lincount.ErrResourceLimit):
		return "diverges (budget guard)"
	case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
		return "interrupted"
	}
	s := err.Error()
	if len(s) > 60 {
		return s[:57] + "..."
	}
	return s
}
