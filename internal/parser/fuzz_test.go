package parser

import (
	"testing"

	"lincount/internal/ast"
	"lincount/internal/symtab"
	"lincount/internal/term"
)

// FuzzParse checks that the parser never panics and that everything it
// accepts survives a format/re-parse round trip. The seeds cover every
// syntactic construct; `go test` runs them as regular tests, and
// `go test -fuzz=FuzzParse ./internal/parser` explores further.
func FuzzParse(f *testing.F) {
	seeds := []string{
		"p(a).",
		"p(X) :- q(X).",
		"sg(X,Y) :- up(X,X1), sg(X1,Y1), down(Y1,Y).",
		"?- sg(a,Y).",
		"p(Y,L) :- q(Y1,[e(r1,[W])|L]), down1(Y1,Y,W).",
		"f([1,2,3]). g([]). h([X|T]) :- h(T).",
		"n(-42). m(0).",
		"t(X) :- s(X), X != b, X >= 0, succ(X,Y).",
		"p :- q, not r.",
		"% comment only",
		"p(X) :- q(X), not r(X,_).",
		"weird( deep(f(g(h(1)),[a|T])) ).",
		"p(X", "p(X) :-", ":-", "?-", "[", "]])(", "p..", "..",
		"p(X) :- q(X)", "1 + 2.", "X.", "p(X,Y) :- X = Y.",
		// Cyclic-graph programs: the inputs that historically stressed the
		// budget guards downstream of the parser.
		"sg(X,Y) :- flat(X,Y).\nsg(X,Y) :- up(X,X1), sg(X1,Y1), down(Y1,Y).\nup(a,b). up(b,c). up(c,a). flat(b,f). down(f,g).\n?- sg(a,Y).",
		"e(a,b). e(b,a). tc(X,Y) :- e(X,Y). tc(X,Y) :- e(X,Z), tc(Z,Y). ?- tc(a,Y).",
		// Budget-edge shapes: unbounded arithmetic generation and deep
		// right recursion.
		"num(0).\nnum(N) :- num(M), M < 100000000000, succ(M,N).\n?- num(X).",
		"n(X) :- stop(X).\nn(X) :- succ(X,X1), n(X1).\nstop(99999999999).\n?- n(0).",
		"num(9223372036854775807). p(N) :- num(N), succ(N,M), q(M).",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		bank := term.NewBank(symtab.New())
		res, err := Parse(bank, src)
		if err != nil {
			return // rejected input is fine; panics are not
		}
		// Accepted input must round-trip through the printer.
		text := res.Program.Format()
		bank2 := term.NewBank(symtab.New())
		res2, err := Parse(bank2, text)
		if err != nil {
			t.Fatalf("formatted program does not re-parse: %v\noriginal: %q\nformatted: %q", err, src, text)
		}
		if len(res2.Program.Rules) != len(res.Program.Rules) {
			t.Fatalf("rule count changed: %d vs %d", len(res.Program.Rules), len(res2.Program.Rules))
		}
		if res2.Program.Format() != text {
			t.Fatalf("format not a fixpoint:\n%q\nvs\n%q", text, res2.Program.Format())
		}
		_ = ast.FormatQuery // keep import shape stable
	})
}
