// Package parser turns Datalog source text into ast values.
//
// Syntax summary:
//
//	fact.                      % ground head, no body
//	head :- lit, ..., lit.     % rule
//	?- goal.                   % query
//
// Literals are atoms p(t,...), optionally prefixed with `not`, or infix
// builtins t1 = t2, t1 != t2, t1 < t2, and so on. Terms are integers,
// lowercase identifiers (constants), uppercase or `_`-prefixed identifiers
// (variables), compounds f(t,...), and lists [a,b|T]. `%` starts a comment
// running to end of line.
package parser

import (
	"fmt"
	"unicode"
)

type tokenKind uint8

const (
	tokEOF   tokenKind = iota
	tokIdent           // lowercase-leading identifier
	tokVar             // uppercase- or underscore-leading identifier
	tokInt
	tokPunct // ( ) [ ] , . | and operators :- ?- = != < <= > >=
)

type token struct {
	kind tokenKind
	text string
	line int
	col  int
}

func (t token) String() string {
	switch t.kind {
	case tokEOF:
		return "end of input"
	default:
		return fmt.Sprintf("%q", t.text)
	}
}

type lexer struct {
	src  string
	pos  int
	line int
	col  int
}

func newLexer(src string) *lexer {
	return &lexer{src: src, line: 1, col: 1}
}

func (lx *lexer) errorf(line, col int, format string, args ...any) error {
	return fmt.Errorf("%d:%d: %s", line, col, fmt.Sprintf(format, args...))
}

func (lx *lexer) peekByte() (byte, bool) {
	if lx.pos >= len(lx.src) {
		return 0, false
	}
	return lx.src[lx.pos], true
}

func (lx *lexer) advance() byte {
	c := lx.src[lx.pos]
	lx.pos++
	if c == '\n' {
		lx.line++
		lx.col = 1
	} else {
		lx.col++
	}
	return c
}

func (lx *lexer) skipSpaceAndComments() {
	for {
		c, ok := lx.peekByte()
		if !ok {
			return
		}
		switch {
		case c == '%':
			for {
				c, ok := lx.peekByte()
				if !ok || c == '\n' {
					break
				}
				lx.advance()
			}
		case c == ' ' || c == '\t' || c == '\r' || c == '\n':
			lx.advance()
		default:
			return
		}
	}
}

func isIdentStart(c byte) bool {
	return c == '_' || unicode.IsLetter(rune(c))
}

func isIdentPart(c byte) bool {
	return c == '_' || unicode.IsLetter(rune(c)) || unicode.IsDigit(rune(c))
}

// next returns the next token.
func (lx *lexer) next() (token, error) {
	lx.skipSpaceAndComments()
	line, col := lx.line, lx.col
	c, ok := lx.peekByte()
	if !ok {
		return token{kind: tokEOF, line: line, col: col}, nil
	}
	switch {
	case unicode.IsDigit(rune(c)):
		start := lx.pos
		for {
			c, ok := lx.peekByte()
			if !ok || !unicode.IsDigit(rune(c)) {
				break
			}
			lx.advance()
		}
		return token{kind: tokInt, text: lx.src[start:lx.pos], line: line, col: col}, nil
	case isIdentStart(c):
		start := lx.pos
		for {
			c, ok := lx.peekByte()
			if !ok || !isIdentPart(c) {
				break
			}
			lx.advance()
		}
		text := lx.src[start:lx.pos]
		kind := tokIdent
		if text[0] == '_' || unicode.IsUpper(rune(text[0])) {
			kind = tokVar
		}
		return token{kind: kind, text: text, line: line, col: col}, nil
	}
	// Punctuation and operators.
	two := ""
	if lx.pos+1 < len(lx.src) {
		two = lx.src[lx.pos : lx.pos+2]
	}
	switch two {
	case ":-", "?-", "!=", "<=", ">=":
		lx.advance()
		lx.advance()
		return token{kind: tokPunct, text: two, line: line, col: col}, nil
	}
	switch c {
	case '(', ')', '[', ']', ',', '.', '|', '=', '<', '>', '-', '+':
		lx.advance()
		return token{kind: tokPunct, text: string(c), line: line, col: col}, nil
	}
	return token{}, lx.errorf(line, col, "unexpected character %q", string(c))
}

// lexAll tokenizes the entire input (used by the parser, which needs one
// token of lookahead and benefits from a flat slice).
func lexAll(src string) ([]token, error) {
	lx := newLexer(src)
	var toks []token
	for {
		t, err := lx.next()
		if err != nil {
			return nil, err
		}
		toks = append(toks, t)
		if t.kind == tokEOF {
			return toks, nil
		}
	}
}
