package parser

import (
	"math/rand"
	"testing"
	"testing/quick"

	"lincount/internal/ast"
	"lincount/internal/symtab"
	"lincount/internal/term"
)

// Property: formatting a randomly generated program and re-parsing it
// yields a structurally equal program. This pins the printer and parser
// to each other, which every rewriting test depends on.

type progGen struct {
	bank *term.Bank
	r    *rand.Rand
}

func (g *progGen) ident(prefix string, n int) string {
	return prefix + string(rune('a'+g.r.Intn(n)))
}

func (g *progGen) varName() string {
	return "V" + string(rune('A'+g.r.Intn(6)))
}

func (g *progGen) term(depth int) ast.Term {
	switch {
	case depth == 0 || g.r.Intn(4) == 0:
		switch g.r.Intn(3) {
		case 0:
			return ast.C(term.Int(int64(g.r.Intn(20) - 10)))
		case 1:
			return ast.C(term.Symbol(g.bank.Symbols().Intern(g.ident("c", 5))))
		default:
			return ast.V(g.bank.Symbols().Intern(g.varName()))
		}
	case g.r.Intn(3) == 0:
		// A list with 0-2 elements and possibly a variable tail.
		n := g.r.Intn(3)
		elems := make([]ast.Term, n)
		for i := range elems {
			elems[i] = g.term(depth - 1)
		}
		tail := ast.NilTerm(g.bank)
		if n > 0 && g.r.Intn(2) == 0 {
			tail = ast.V(g.bank.Symbols().Intern(g.varName()))
		}
		return ast.MkList(g.bank, elems, tail)
	default:
		f := g.bank.Symbols().Intern(g.ident("f", 3))
		n := 1 + g.r.Intn(2)
		args := make([]ast.Term, n)
		for i := range args {
			args[i] = g.term(depth - 1)
		}
		return ast.Mk(g.bank, f, args...)
	}
}

func (g *progGen) literal(negated bool) ast.Literal {
	pred := g.bank.Symbols().Intern(g.ident("p", 4))
	n := g.r.Intn(3)
	args := make([]ast.Term, n)
	for i := range args {
		args[i] = g.term(2)
	}
	return ast.Literal{Pred: pred, Args: args, Negated: negated}
}

func (g *progGen) rule() ast.Rule {
	r := ast.Rule{Head: g.literal(false)}
	n := g.r.Intn(4)
	for i := 0; i < n; i++ {
		r.Body = append(r.Body, g.literal(g.r.Intn(5) == 0))
	}
	return r
}

func TestFormatParseRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		bank := term.NewBank(symtab.New())
		g := &progGen{bank: bank, r: rand.New(rand.NewSource(seed))}
		p := ast.NewProgram(bank)
		n := 1 + g.r.Intn(6)
		for i := 0; i < n; i++ {
			p.Add(g.rule())
		}
		text := p.Format()
		res, err := Parse(bank, text)
		if err != nil {
			t.Logf("re-parse failed for:\n%s\nerr: %v", text, err)
			return false
		}
		if len(res.Program.Rules) != len(p.Rules) {
			return false
		}
		for i := range p.Rules {
			if !res.Program.Rules[i].Equal(p.Rules[i]) {
				t.Logf("rule %d mismatch:\n  want %s\n  got  %s", i,
					ast.FormatRule(bank, p.Rules[i]),
					ast.FormatRule(bank, res.Program.Rules[i]))
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: Format is a fixpoint — parse(format(p)) formats identically.
func TestFormatIsFixpoint(t *testing.T) {
	f := func(seed int64) bool {
		bank := term.NewBank(symtab.New())
		g := &progGen{bank: bank, r: rand.New(rand.NewSource(seed))}
		p := ast.NewProgram(bank)
		for i := 0; i < 4; i++ {
			p.Add(g.rule())
		}
		text := p.Format()
		res, err := Parse(bank, text)
		if err != nil {
			return false
		}
		return res.Program.Format() == text
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
