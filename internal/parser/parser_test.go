package parser

import (
	"strings"
	"testing"

	"lincount/internal/ast"
	"lincount/internal/symtab"
	"lincount/internal/term"
)

func newBank() *term.Bank { return term.NewBank(symtab.New()) }

func TestParseFact(t *testing.T) {
	b := newBank()
	res := MustParse(b, "up(a, b).")
	if len(res.Program.Rules) != 1 || len(res.Queries) != 0 {
		t.Fatalf("got %d rules, %d queries", len(res.Program.Rules), len(res.Queries))
	}
	r := res.Program.Rules[0]
	if !r.IsFact() {
		t.Error("up(a,b) not recognized as fact")
	}
	if got := ast.FormatRule(b, r); got != "up(a,b)." {
		t.Errorf("formatted %q", got)
	}
}

func TestParseRuleRoundTrip(t *testing.T) {
	b := newBank()
	cases := []string{
		"sg(X,Y) :- flat(X,Y).",
		"sg(X,Y) :- up(X,X1), sg(X1,Y1), down(Y1,Y).",
		"p(Y,L) :- q(Y1,[e(r1,[W])|L]), cp(X,L), down1(Y1,Y,W).",
		"cp(a,[]).",
		"t(X) :- s(X), X != b.",
		"t(X,Y) :- s(X), succ(X,Y).",
		"n(X) :- s(X), not t(X).",
		"zero.",
		"zero :- one, two.",
		"f(-3).",
		"g([1,2,3]).",
		"h([X|T]) :- h(T).",
		"cmp(X,Y) :- s(X), s(Y), X < Y.",
		"cmp2(X,Y) :- s(X), s(Y), X >= Y.",
	}
	for _, src := range cases {
		r, err := ParseRule(b, src)
		if err != nil {
			t.Errorf("ParseRule(%q): %v", src, err)
			continue
		}
		got := ast.FormatRule(b, r)
		want := strings.ReplaceAll(src, ", ", ",")
		got2 := strings.ReplaceAll(got, ", ", ",")
		want = strings.ReplaceAll(want, " :- ", ":-")
		got2 = strings.ReplaceAll(got2, " :- ", ":-")
		if got2 != want {
			t.Errorf("round trip %q -> %q", src, got)
		}
	}
}

func TestParseQuery(t *testing.T) {
	b := newBank()
	q, err := ParseQuery(b, "?- sg(a, Y).")
	if err != nil {
		t.Fatal(err)
	}
	if got := ast.FormatQuery(b, q); got != "?- sg(a,Y)." {
		t.Errorf("formatted %q", got)
	}
	if q.Goal.Args[0].Kind != ast.Const || q.Goal.Args[1].Kind != ast.Var {
		t.Error("argument kinds wrong")
	}
}

func TestParseProgramWithQueriesAndComments(t *testing.T) {
	b := newBank()
	src := `
% same generation
sg(X,Y) :- flat(X,Y).          % exit rule
sg(X,Y) :- up(X,X1), sg(X1,Y1), down(Y1,Y).
up(a,b). flat(b,c). down(c,d).
?- sg(a,Y).
`
	res := MustParse(b, src)
	if len(res.Program.Rules) != 5 {
		t.Errorf("rules = %d, want 5", len(res.Program.Rules))
	}
	if len(res.Queries) != 1 {
		t.Errorf("queries = %d, want 1", len(res.Queries))
	}
}

func TestAnonymousVarsAreFresh(t *testing.T) {
	b := newBank()
	r, err := ParseRule(b, "p(X) :- q(X,_), r(_,X).")
	if err != nil {
		t.Fatal(err)
	}
	v1 := r.Body[0].Args[1]
	v2 := r.Body[1].Args[0]
	if v1.Kind != ast.Var || v2.Kind != ast.Var {
		t.Fatal("anonymous terms are not variables")
	}
	if v1.Name == v2.Name {
		t.Error("two anonymous variables share a name")
	}
}

func TestListParsing(t *testing.T) {
	b := newBank()
	r, err := ParseRule(b, "f([a,b|T]).")
	if err != nil {
		t.Fatal(err)
	}
	arg := r.Head.Args[0]
	if arg.Kind != ast.Comp {
		t.Fatalf("list with var tail should be a Comp term, got kind %d", arg.Kind)
	}
	if got := ast.FormatTerm(b, arg); got != "[a,b|T]" {
		t.Errorf("formatted %q", got)
	}
	r2, err := ParseRule(b, "g([a,b]).")
	if err != nil {
		t.Fatal(err)
	}
	if r2.Head.Args[0].Kind != ast.Const {
		t.Error("ground list should have been interned to a Const")
	}
	elems, ok := b.ListElems(r2.Head.Args[0].Value)
	if !ok || len(elems) != 2 {
		t.Errorf("ListElems = %v, %v", elems, ok)
	}
}

func TestGroundCompoundArgsInLiteral(t *testing.T) {
	b := newBank()
	r, err := ParseRule(b, "cp(a,[e(r1,[1])]).")
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Head.Args) != 2 {
		t.Fatalf("args = %d", len(r.Head.Args))
	}
	if !r.IsFact() {
		t.Error("ground compound fact not recognized as fact")
	}
}

func TestParseErrors(t *testing.T) {
	b := newBank()
	cases := []string{
		"p(X",            // unterminated
		"p(X) :- .",      // empty body literal
		"p(X) q(X).",     // missing :-
		"?- not p(X).",   // negated query
		"not p(X) :- q.", // negated head
		"p(X) :- q(X)",   // missing period
		"p(@).",          // bad character
		"[a,b].",         // list is not a literal
		"7.",             // integer is not a literal
	}
	for _, src := range cases {
		if _, err := Parse(b, src); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", src)
		}
	}
}

func TestInfixBuiltinsParseToReservedPreds(t *testing.T) {
	b := newBank()
	r, err := ParseRule(b, "p(X,Y) :- X != Y.")
	if err != nil {
		t.Fatal(err)
	}
	if got := b.Symbols().String(r.Body[0].Pred); got != ast.BuiltinNeq {
		t.Errorf("pred = %q", got)
	}
}

func TestZeroArityAtomInBody(t *testing.T) {
	b := newBank()
	r, err := ParseRule(b, "p :- q, not r.")
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Body) != 2 || !r.Body[1].Negated {
		t.Errorf("body parsed wrong: %+v", r.Body)
	}
}
