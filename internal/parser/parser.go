package parser

import (
	"fmt"
	"strconv"

	"lincount/internal/ast"
	"lincount/internal/symtab"
	"lincount/internal/term"
)

// Result holds everything found in one source unit: a program (rules and
// facts, in order) and any queries.
type Result struct {
	Program *ast.Program
	Queries []ast.Query
}

type parser struct {
	bank  *term.Bank
	toks  []token
	pos   int
	anonN int
}

// Parse parses src into rules, facts and queries over the given bank.
func Parse(b *term.Bank, src string) (*Result, error) {
	toks, err := lexAll(src)
	if err != nil {
		return nil, err
	}
	p := &parser{bank: b, toks: toks}
	res := &Result{Program: ast.NewProgram(b)}
	for p.peek().kind != tokEOF {
		if p.peek().kind == tokPunct && p.peek().text == "?-" {
			p.advance()
			goal, err := p.literal()
			if err != nil {
				return nil, err
			}
			if goal.Negated {
				return nil, p.errAt(p.peek(), "query goal must be positive")
			}
			if err := p.expect("."); err != nil {
				return nil, err
			}
			res.Queries = append(res.Queries, ast.Query{Goal: goal})
			continue
		}
		r, err := p.rule()
		if err != nil {
			return nil, err
		}
		res.Program.Add(r)
	}
	return res, nil
}

// ParseRule parses a single rule or fact (terminated by '.').
func ParseRule(b *term.Bank, src string) (ast.Rule, error) {
	res, err := Parse(b, src)
	if err != nil {
		return ast.Rule{}, err
	}
	if len(res.Queries) != 0 || len(res.Program.Rules) != 1 {
		return ast.Rule{}, fmt.Errorf("expected exactly one rule in %q", src)
	}
	return res.Program.Rules[0], nil
}

// ParseQuery parses a single "?- goal." query.
func ParseQuery(b *term.Bank, src string) (ast.Query, error) {
	res, err := Parse(b, src)
	if err != nil {
		return ast.Query{}, err
	}
	if len(res.Queries) != 1 || len(res.Program.Rules) != 0 {
		return ast.Query{}, fmt.Errorf("expected exactly one query in %q", src)
	}
	return res.Queries[0], nil
}

func (p *parser) peek() token { return p.toks[p.pos] }
func (p *parser) advance() token {
	t := p.toks[p.pos]
	if t.kind != tokEOF {
		p.pos++
	}
	return t
}

func (p *parser) errAt(t token, format string, args ...any) error {
	return fmt.Errorf("%d:%d: %s", t.line, t.col, fmt.Sprintf(format, args...))
}

func (p *parser) expect(text string) error {
	t := p.peek()
	if t.kind != tokPunct || t.text != text {
		return p.errAt(t, "expected %q, found %s", text, t)
	}
	p.advance()
	return nil
}

func (p *parser) rule() (ast.Rule, error) {
	head, err := p.literal()
	if err != nil {
		return ast.Rule{}, err
	}
	if head.Negated {
		return ast.Rule{}, p.errAt(p.peek(), "rule head must be positive")
	}
	r := ast.Rule{Head: head}
	if p.peek().kind == tokPunct && p.peek().text == ":-" {
		p.advance()
		for {
			l, err := p.literal()
			if err != nil {
				return ast.Rule{}, err
			}
			r.Body = append(r.Body, l)
			if p.peek().kind == tokPunct && p.peek().text == "," {
				p.advance()
				continue
			}
			break
		}
	}
	if err := p.expect("."); err != nil {
		return ast.Rule{}, err
	}
	return r, nil
}

var infixOps = map[string]bool{
	ast.BuiltinEq: true, ast.BuiltinNeq: true,
	ast.BuiltinLt: true, ast.BuiltinLe: true,
	ast.BuiltinGt: true, ast.BuiltinGe: true,
}

func (p *parser) literal() (ast.Literal, error) {
	negated := false
	if t := p.peek(); t.kind == tokIdent && t.text == "not" {
		p.advance()
		negated = true
	}
	// An atom starting with an identifier could still be the left side of
	// an infix builtin only if it is a plain term; parse a term first and
	// decide.
	t := p.peek()
	lhs, err := p.term()
	if err != nil {
		return ast.Literal{}, err
	}
	if op := p.peek(); op.kind == tokPunct && infixOps[op.text] {
		p.advance()
		rhs, err := p.term()
		if err != nil {
			return ast.Literal{}, err
		}
		pred := p.bank.Symbols().Intern(op.text)
		return ast.Literal{Pred: pred, Args: []ast.Term{lhs, rhs}, Negated: negated}, nil
	}
	// Otherwise the term must itself be an atom: a constant symbol
	// (zero-arity predicate) or a compound with an identifier functor.
	consSym := p.bank.Symbols().Intern(term.ListConsName)
	switch lhs.Kind {
	case ast.Comp:
		if lhs.Name != consSym {
			return ast.Literal{Pred: lhs.Name, Args: lhs.Args, Negated: negated}, nil
		}
	case ast.Const:
		v := lhs.Value
		if v.IsSymbol() && !p.bank.IsNil(v) {
			return ast.Literal{Pred: v.AsSymbol(), Args: nil, Negated: negated}, nil
		}
		if v.IsCompound() {
			if c := p.bank.Deref(v); c.Functor != consSym {
				args := make([]ast.Term, len(c.Args))
				for i, a := range c.Args {
					args[i] = ast.C(a)
				}
				return ast.Literal{Pred: c.Functor, Args: args, Negated: negated}, nil
			}
		}
	}
	return ast.Literal{}, p.errAt(t, "expected a literal")
}

func (p *parser) term() (ast.Term, error) {
	t := p.peek()
	switch {
	case t.kind == tokInt:
		p.advance()
		n, err := p.parseInt(t, t.text, false)
		if err != nil {
			return ast.Term{}, err
		}
		return ast.C(term.Int(n)), nil
	case t.kind == tokPunct && t.text == "-":
		p.advance()
		it := p.peek()
		if it.kind != tokInt {
			return ast.Term{}, p.errAt(it, "expected integer after '-'")
		}
		p.advance()
		n, err := p.parseInt(it, it.text, true)
		if err != nil {
			return ast.Term{}, err
		}
		return ast.C(term.Int(n)), nil
	case t.kind == tokVar:
		p.advance()
		name := t.text
		if name == "_" {
			p.anonN++
			name = fmt.Sprintf("_G%d", p.anonN)
		}
		return ast.V(p.bank.Symbols().Intern(name)), nil
	case t.kind == tokIdent:
		p.advance()
		sym := p.bank.Symbols().Intern(t.text)
		if nt := p.peek(); nt.kind == tokPunct && nt.text == "(" {
			p.advance()
			var args []ast.Term
			if p.peek().kind == tokPunct && p.peek().text == ")" {
				p.advance()
			} else {
				for {
					a, err := p.term()
					if err != nil {
						return ast.Term{}, err
					}
					args = append(args, a)
					if p.peek().kind == tokPunct && p.peek().text == "," {
						p.advance()
						continue
					}
					break
				}
				if err := p.expect(")"); err != nil {
					return ast.Term{}, err
				}
			}
			return ast.Mk(p.bank, sym, args...), nil
		}
		return ast.C(term.Symbol(sym)), nil
	case t.kind == tokPunct && t.text == "[":
		return p.list()
	}
	return ast.Term{}, p.errAt(t, "expected a term, found %s", t)
}

// parseInt converts an integer token, enforcing the 62-bit range the
// term.Value encoding supports.
func (p *parser) parseInt(t token, text string, negate bool) (int64, error) {
	n, err := strconv.ParseInt(text, 10, 64)
	if err != nil {
		return 0, p.errAt(t, "bad integer %q", text)
	}
	if negate {
		n = -n
	}
	const maxTermInt = 1<<61 - 1
	if n > maxTermInt || n < -(1<<61) {
		return 0, p.errAt(t, "integer %d outside the supported range [−2^61, 2^61−1]", n)
	}
	return n, nil
}

func (p *parser) list() (ast.Term, error) {
	if err := p.expect("["); err != nil {
		return ast.Term{}, err
	}
	if p.peek().kind == tokPunct && p.peek().text == "]" {
		p.advance()
		return ast.NilTerm(p.bank), nil
	}
	var elems []ast.Term
	for {
		e, err := p.term()
		if err != nil {
			return ast.Term{}, err
		}
		elems = append(elems, e)
		if p.peek().kind == tokPunct && p.peek().text == "," {
			p.advance()
			continue
		}
		break
	}
	tail := ast.NilTerm(p.bank)
	if p.peek().kind == tokPunct && p.peek().text == "|" {
		p.advance()
		var err error
		tail, err = p.term()
		if err != nil {
			return ast.Term{}, err
		}
	}
	if err := p.expect("]"); err != nil {
		return ast.Term{}, err
	}
	return ast.MkList(p.bank, elems, tail), nil
}

// MustParse is a test and example helper: it parses src and panics on error.
func MustParse(b *term.Bank, src string) *Result {
	res, err := Parse(b, src)
	if err != nil {
		panic(fmt.Sprintf("parser.MustParse: %v", err))
	}
	return res
}

// Pred is a small helper to intern a predicate name.
func Pred(b *term.Bank, name string) symtab.Sym {
	return b.Symbols().Intern(name)
}
