package limits

import (
	"context"
	"errors"
	"testing"
)

func TestResourceLimitErrorIs(t *testing.T) {
	err := error(&ResourceLimitError{Kind: KindFacts, Limit: 10, Used: 11, Component: "engine"})
	if !errors.Is(err, ErrResourceLimit) {
		t.Errorf("errors.Is(%v, ErrResourceLimit) = false", err)
	}
	var rle *ResourceLimitError
	if !errors.As(err, &rle) || rle.Kind != KindFacts {
		t.Errorf("errors.As failed or wrong kind: %+v", rle)
	}
	if errors.Is(err, context.Canceled) {
		t.Error("resource-limit error must not match context.Canceled")
	}
}

func TestCanceledErrorUnwraps(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	err := error(&CanceledError{Component: "engine", Cause: context.Cause(ctx)})
	if !errors.Is(err, context.Canceled) {
		t.Errorf("errors.Is(%v, context.Canceled) = false", err)
	}
}

func TestNilCheckerIsNoop(t *testing.T) {
	var c *Checker
	if err := c.Check(); err != nil {
		t.Errorf("nil.Check() = %v", err)
	}
	for i := 0; i < 3*DefaultCheckInterval; i++ {
		if err := c.Tick(); err != nil {
			t.Fatalf("nil.Tick() = %v", err)
		}
	}
	if c.Fork() != nil {
		t.Error("nil.Fork() != nil")
	}
	if c.Context() == nil {
		t.Error("nil.Context() = nil")
	}
}

func TestNewCheckerBackgroundIsNil(t *testing.T) {
	if c := NewChecker(context.Background(), "engine"); c != nil {
		t.Error("NewChecker(Background) should be nil (never cancelable)")
	}
	if c := NewChecker(nil, "engine"); c != nil {
		t.Error("NewChecker(nil) should be nil")
	}
}

func TestCheckerObservesCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	c := NewChecker(ctx, "engine")
	if c == nil {
		t.Fatal("NewChecker returned nil for cancelable context")
	}
	if err := c.Check(); err != nil {
		t.Fatalf("Check before cancel: %v", err)
	}
	cancel()
	err := c.Check()
	if !errors.Is(err, context.Canceled) {
		t.Errorf("Check after cancel = %v, want context.Canceled", err)
	}
	var ce *CanceledError
	if !errors.As(err, &ce) || ce.Component != "engine" {
		t.Errorf("want *CanceledError with component engine, got %#v", err)
	}
}

func TestTickPollsEveryInterval(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	c := NewChecker(ctx, "engine")
	cancel()
	var err error
	for i := 0; i < DefaultCheckInterval; i++ {
		if err = c.Tick(); err != nil {
			break
		}
	}
	if !errors.Is(err, context.Canceled) {
		t.Errorf("Tick never observed cancellation within one interval: %v", err)
	}
}
