// Package limits is the shared resource-governance core of the engine:
// the one structured resource-limit error every evaluator returns when a
// budget trips, and the cooperative cancellation checker every fixpoint
// loop polls. Keeping both here (below engine, counting and topdown in
// the import graph) is what lets the public package re-export a single
// error vocabulary for all strategies.
package limits

import (
	"context"
	"errors"
	"fmt"
)

// ErrResourceLimit is the sentinel matched by every resource-limit error,
// whichever component tripped it: errors.Is(err, ErrResourceLimit) is the
// one test callers need. The engine's historical engine.ErrBudget and
// counting.ErrRuntimeBudget are aliases of this value.
var ErrResourceLimit = errors.New("lincount: resource limit exceeded")

// Limit kinds, naming the budget that tripped.
const (
	// KindIterations: fixpoint rounds within one recursive component.
	KindIterations = "iterations"
	// KindFacts: derived tuples across the whole evaluation.
	KindFacts = "derived-facts"
	// KindTuples: counting nodes + answer tuples of the counting runtime.
	KindTuples = "tuples"
	// KindPasses: global sweeps of the QSQ evaluator.
	KindPasses = "passes"
)

// ResourceLimitError reports that an evaluation exceeded one of its
// budgets. A counting-rewritten program run over cyclic data is unsafe
// and trips a budget instead of looping forever; callers distinguish
// limit trips from real failures with errors.Is(err, ErrResourceLimit).
type ResourceLimitError struct {
	// Kind is the budget that tripped (KindIterations, KindFacts,
	// KindTuples, KindPasses).
	Kind string
	// Limit is the configured budget; Used is the amount consumed when
	// the limit tripped (Used > Limit for counted quantities).
	Limit int64
	Used  int64
	// Component is the evaluator that tripped: "engine",
	// "counting-runtime" or "topdown".
	Component string
}

func (e *ResourceLimitError) Error() string {
	return fmt.Sprintf("%s: %s limit exceeded (used %d of %d; the program may be unsafe on this database)",
		e.Component, e.Kind, e.Used, e.Limit)
}

// Is makes errors.Is(err, ErrResourceLimit) — and, via aliasing, the
// legacy errors.Is(err, engine.ErrBudget) — report true.
func (e *ResourceLimitError) Is(target error) bool { return target == ErrResourceLimit }

// CanceledError reports a cooperative stop: the evaluation observed its
// context's cancellation or deadline and unwound cleanly. It unwraps to
// the context's cause, so errors.Is(err, context.Canceled) and
// errors.Is(err, context.DeadlineExceeded) work as expected.
type CanceledError struct {
	// Component is the evaluator that observed the cancellation.
	Component string
	// Cause is context.Cause of the evaluation context.
	Cause error
}

func (e *CanceledError) Error() string {
	return fmt.Sprintf("%s: evaluation interrupted: %v", e.Component, e.Cause)
}

func (e *CanceledError) Unwrap() error { return e.Cause }

// PanicError carries a panic recovered inside an evaluator goroutine
// (the parallel scheduler cannot let a stratum panic cross its goroutine
// boundary). The public Eval boundary converts it to *InternalError.
type PanicError struct {
	Component string
	Value     any
	Stack     []byte
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("%s: internal panic: %v", e.Component, e.Value)
}

// DefaultCheckInterval is how many Tick calls elapse between context
// polls. Fixpoint inner loops advance by at least one inference or probe
// per tick, so cancellation latency is bounded by the time those take —
// microseconds — plus the per-iteration Check calls.
const DefaultCheckInterval = 1024

// Checker polls a context cooperatively. A nil *Checker is a valid no-op
// (every method returns nil), and NewChecker returns nil for contexts
// that can never be canceled, so ungoverned evaluations pay only a nil
// check per tick. Checker is not safe for concurrent use; concurrent
// evaluators each take their own via Fork.
type Checker struct {
	ctx       context.Context
	component string
	interval  uint32
	n         uint32
}

// NewChecker returns a checker for ctx, or nil when ctx is nil or can
// never be canceled (ctx.Done() == nil, e.g. context.Background()).
func NewChecker(ctx context.Context, component string) *Checker {
	if ctx == nil || ctx.Done() == nil {
		return nil
	}
	return &Checker{ctx: ctx, component: component, interval: DefaultCheckInterval}
}

// Context returns the checker's context (context.Background() for the
// nil checker), for deriving child contexts.
func (c *Checker) Context() context.Context {
	if c == nil {
		return context.Background()
	}
	return c.ctx
}

// Fork returns an independent checker over the same context, for handing
// to a concurrently running evaluator (the tick counter is per-checker).
func (c *Checker) Fork() *Checker {
	if c == nil {
		return nil
	}
	return &Checker{ctx: c.ctx, component: c.component, interval: c.interval}
}

// Check polls the context now. It returns a *CanceledError wrapping the
// context's cause once the context is done, nil before.
func (c *Checker) Check() error {
	if c == nil {
		return nil
	}
	select {
	case <-c.ctx.Done():
		return &CanceledError{Component: c.component, Cause: context.Cause(c.ctx)}
	default:
		return nil
	}
}

// Tick counts one unit of inner-loop work and polls the context every
// DefaultCheckInterval-th call. Call it on the hot path (per inference,
// per probe); call Check at natural coarse boundaries (per iteration).
func (c *Checker) Tick() error {
	if c == nil {
		return nil
	}
	c.n++
	if c.n%c.interval != 0 {
		return nil
	}
	return c.Check()
}

// TickN counts n units of inner-loop work at once — the batched
// execution paths account a whole batch with one call. It polls the
// context whenever the counter crosses a DefaultCheckInterval boundary,
// so cancellation latency matches n individual Ticks.
func (c *Checker) TickN(n int) error {
	if c == nil || n <= 0 {
		return nil
	}
	prev := c.n
	c.n += uint32(n)
	if c.n/c.interval != prev/c.interval || c.n < prev {
		return c.Check()
	}
	return nil
}
