package server

// The server's robustness contract, tested white-box: snapshot isolation
// under concurrent writes with injected faults, admission-control
// shedding, write retry/restart semantics, and graceful drain with a
// goroutine-leak assertion.

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"

	"lincount"
	"lincount/internal/faultinject"
	"lincount/internal/workload"
)

// newTestServer builds a server over the trivial projection program
// p(X,Y) :- f(X,Y), so answer count == fact count of f.
func newTestServer(t *testing.T, cfg Config) *Server {
	t.Helper()
	if cfg.Program == nil {
		cfg.Program = lincount.MustParseProgram("p(X,Y) :- f(X,Y).")
	}
	if cfg.DB == nil {
		cfg.DB = lincount.NewDatabase(cfg.Program)
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// checkGoroutines asserts the goroutine count returns to its baseline —
// a drained server leaves nothing behind. Stragglers get a grace period
// (the runtime needs a moment to reap exiting goroutines).
func checkGoroutines(t *testing.T, before int) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= before {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			n := runtime.Stack(buf, true)
			t.Fatalf("goroutines leaked: %d before, %d after\n%s",
				before, runtime.NumGoroutine(), buf[:n])
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestServerQueryWriteRoundTrip(t *testing.T) {
	before := runtime.NumGoroutine()
	s := newTestServer(t, Config{})
	ctx := context.Background()

	wres, err := s.Write(ctx, WriteRequest{Assert: "f(a,b). f(b,c)."})
	if err != nil {
		t.Fatal(err)
	}
	if wres.Epoch != 1 {
		t.Fatalf("first write epoch = %d, want 1", wres.Epoch)
	}
	qres, err := s.Query(ctx, QueryRequest{Query: "?- p(X,Y)."})
	if err != nil {
		t.Fatal(err)
	}
	if len(qres.Answers) != 2 {
		t.Fatalf("answers = %v, want 2 rows", qres.Answers)
	}
	if qres.Epoch != 1 {
		t.Fatalf("query epoch = %d, want 1", qres.Epoch)
	}

	// Retract one fact; the next epoch must reflect exactly that.
	wres, err = s.Write(ctx, WriteRequest{Retract: "f(a,b)."})
	if err != nil {
		t.Fatal(err)
	}
	if wres.Epoch != 2 || wres.Retracted != 1 {
		t.Fatalf("retract: epoch=%d retracted=%d, want 2, 1", wres.Epoch, wres.Retracted)
	}
	qres, err = s.Query(ctx, QueryRequest{Query: "?- p(X,Y)."})
	if err != nil {
		t.Fatal(err)
	}
	if len(qres.Answers) != 1 {
		t.Fatalf("answers after retract = %v, want 1 row", qres.Answers)
	}

	if err := s.Drain(ctx); err != nil {
		t.Fatalf("Drain: %v", err)
	}
	checkGoroutines(t, before)
}

// TestServerSnapshotIsolation is the acceptance scenario: concurrent
// readers and writers, injected faults on both write-path sites, and the
// invariant that a reader can never observe a partially applied write
// batch. Each write request asserts exactly K facts, so every published
// epoch holds a multiple of K facts of f — any other count is a torn
// batch. A differential oracle then replays the successful writes on a
// fresh database and demands the identical answer set.
func TestServerSnapshotIsolation(t *testing.T) {
	const (
		K          = 5
		numWriters = 4
		numWrites  = 25
		numReaders = 4
	)
	before := runtime.NumGoroutine()

	inj := faultinject.New(42)
	inj.Fail(faultinject.SiteServerApply, 0.10)
	inj.Fail(faultinject.SiteServerPublish, 0.05)
	s := newTestServer(t, Config{
		Inject:       inj,
		WriteRetries: 2,
		RetryBackoff: 100 * time.Microsecond,
	})
	ctx := context.Background()

	var mu sync.Mutex
	var applied []string // assert text of every write the server accepted

	var writers sync.WaitGroup
	for w := 0; w < numWriters; w++ {
		writers.Add(1)
		go func(w int) {
			defer writers.Done()
			for j := 0; j < numWrites; j++ {
				var sb strings.Builder
				for k := 0; k < K; k++ {
					fmt.Fprintf(&sb, "f(w%d_%d,k%d). ", w, j, k)
				}
				res, err := s.Write(ctx, WriteRequest{Assert: sb.String()})
				if err != nil {
					// Only injected faults (after retries ran out) may
					// fail a write here.
					if !errors.Is(err, faultinject.ErrInjected) {
						t.Errorf("writer %d: unexpected error: %v", w, err)
					}
					continue
				}
				if res.Epoch == 0 {
					t.Errorf("writer %d: published epoch 0", w)
				}
				mu.Lock()
				applied = append(applied, sb.String())
				mu.Unlock()
			}
		}(w)
	}

	stop := make(chan struct{})
	var readers sync.WaitGroup
	for r := 0; r < numReaders; r++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			var lastEpoch uint64
			for {
				select {
				case <-stop:
					return
				default:
				}
				res, err := s.Query(ctx, QueryRequest{Query: "?- p(X,Y)."})
				if err != nil {
					t.Errorf("reader: %v", err)
					return
				}
				if len(res.Answers)%K != 0 {
					t.Errorf("torn batch: reader saw %d facts at epoch %d (not a multiple of %d)",
						len(res.Answers), res.Epoch, K)
					return
				}
				if res.Epoch < lastEpoch {
					t.Errorf("epoch went backwards: %d after %d", res.Epoch, lastEpoch)
					return
				}
				lastEpoch = res.Epoch
			}
		}()
	}

	writers.Wait()
	close(stop)
	readers.Wait()

	// Differential oracle: the final snapshot must equal a fresh
	// database with exactly the accepted writes replayed.
	final := s.Snapshot()
	oracle := lincount.NewDatabase(s.cfg.Program)
	for _, text := range applied {
		if err := oracle.LoadFacts(text); err != nil {
			t.Fatal(err)
		}
	}
	want, err := lincount.Eval(s.cfg.Program, oracle, "?- p(X,Y).", lincount.Auto)
	if err != nil {
		t.Fatal(err)
	}
	got, err := lincount.Eval(s.cfg.Program, final.DB, "?- p(X,Y).", lincount.Auto)
	if err != nil {
		t.Fatal(err)
	}
	if !sameAnswers(got.Answers, want.Answers) {
		t.Fatalf("final state diverged from oracle: server has %d answers, oracle %d",
			len(got.Answers), len(want.Answers))
	}
	if len(applied) == 0 {
		t.Fatal("no write succeeded; fault rates too high for the test to mean anything")
	}

	if err := s.Drain(ctx); err != nil {
		t.Fatalf("Drain: %v", err)
	}
	checkGoroutines(t, before)
}

func sameAnswers(a, b [][]string) bool {
	if len(a) != len(b) {
		return false
	}
	key := func(rows [][]string) []string {
		out := make([]string, len(rows))
		for i, r := range rows {
			out[i] = strings.Join(r, "\x1f")
		}
		sort.Strings(out)
		return out
	}
	ka, kb := key(a), key(b)
	for i := range ka {
		if ka[i] != kb[i] {
			return false
		}
	}
	return true
}

// TestServerWriteRetry: an injected fault on the apply site fails the
// first attempt; the batch retries on a fresh fork and publishes exactly
// one epoch — the failed attempt leaves no trace.
func TestServerWriteRetry(t *testing.T) {
	inj := faultinject.New(7)
	inj.FailAt(faultinject.SiteServerApply, 1)
	s := newTestServer(t, Config{Inject: inj, RetryBackoff: 100 * time.Microsecond})
	defer s.Close()
	ctx := context.Background()

	res, err := s.Write(ctx, WriteRequest{Assert: "f(a,b)."})
	if err != nil {
		t.Fatalf("write should have succeeded on retry: %v", err)
	}
	if res.Epoch != 1 {
		t.Fatalf("epoch = %d, want 1 (retry must not burn an epoch)", res.Epoch)
	}
}

// TestServerWriteRetryExhausted: when every attempt fails, the write
// reports the injected fault and no epoch is published.
func TestServerWriteRetryExhausted(t *testing.T) {
	inj := faultinject.New(7)
	inj.Fail(faultinject.SiteServerApply, 1.0)
	s := newTestServer(t, Config{Inject: inj, WriteRetries: 2, RetryBackoff: 100 * time.Microsecond})
	defer s.Close()

	_, err := s.Write(context.Background(), WriteRequest{Assert: "f(a,b)."})
	if !errors.Is(err, faultinject.ErrInjected) {
		t.Fatalf("err = %v, want injected fault", err)
	}
	if got := s.Snapshot().Epoch; got != 0 {
		t.Fatalf("epoch = %d after failed write, want 0", got)
	}
}

// TestServerWriteBadRequest: a parse error fails only the offending
// request; the write path keeps serving and the database is untouched by
// the bad text.
func TestServerWriteBadRequest(t *testing.T) {
	s := newTestServer(t, Config{})
	defer s.Close()
	ctx := context.Background()

	_, err := s.Write(ctx, WriteRequest{Assert: "this is not datalog((("})
	var badReq *badRequestError
	if !errors.As(err, &badReq) {
		t.Fatalf("err = %v, want badRequestError", err)
	}
	res, err := s.Write(ctx, WriteRequest{Assert: "f(a,b)."})
	if err != nil {
		t.Fatalf("write after bad request: %v", err)
	}
	if res.Epoch != 1 {
		t.Fatalf("epoch = %d, want 1 (bad request must not burn an epoch)", res.Epoch)
	}
}

// TestServerAdmissionShed: with the one concurrency slot taken and the
// one queue seat filled, the next request is shed immediately with a
// typed BusyError rather than waiting.
func TestServerAdmissionShed(t *testing.T) {
	before := runtime.NumGoroutine()
	s := newTestServer(t, Config{MaxConcurrent: 1, MaxQueue: 1})
	ctx := context.Background()
	if _, err := s.Write(ctx, WriteRequest{Assert: "f(a,b)."}); err != nil {
		t.Fatal(err)
	}

	s.sem <- struct{}{} // occupy the only slot
	queuedErr := make(chan error, 1)
	go func() { queuedErr <- s.acquire(ctx) }()
	deadline := time.Now().Add(2 * time.Second)
	for s.queued.Load() != 1 {
		if time.Now().After(deadline) {
			t.Fatal("queued request never registered")
		}
		time.Sleep(time.Millisecond)
	}

	_, err := s.Query(ctx, QueryRequest{Query: "?- p(X,Y)."})
	if !errors.Is(err, ErrBusy) {
		t.Fatalf("err = %v, want ErrBusy", err)
	}
	var busy *BusyError
	if !errors.As(err, &busy) || busy.Queued != 1 {
		t.Fatalf("err = %#v, want BusyError with Queued=1", err)
	}

	<-s.sem // free the slot; the queued request takes it
	if err := <-queuedErr; err != nil {
		t.Fatalf("queued acquire: %v", err)
	}
	s.release()

	// With the queue clear again, requests are admitted normally.
	if _, err := s.Query(ctx, QueryRequest{Query: "?- p(X,Y)."}); err != nil {
		t.Fatalf("query after shed: %v", err)
	}

	if err := s.Drain(ctx); err != nil {
		t.Fatal(err)
	}
	checkGoroutines(t, before)
}

// TestServerDrainRejectsNewRequests: after Drain begins, both reads and
// writes are refused with ErrDraining; Drain is idempotent.
func TestServerDrainRejectsNewRequests(t *testing.T) {
	before := runtime.NumGoroutine()
	s := newTestServer(t, Config{})
	ctx := context.Background()
	if err := s.Drain(ctx); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Query(ctx, QueryRequest{Query: "?- p(X,Y)."}); !errors.Is(err, ErrDraining) {
		t.Fatalf("Query after drain: %v, want ErrDraining", err)
	}
	if _, err := s.Write(ctx, WriteRequest{Assert: "f(a,b)."}); !errors.Is(err, ErrDraining) {
		t.Fatalf("Write after drain: %v, want ErrDraining", err)
	}
	if err := s.Drain(ctx); err != nil {
		t.Fatalf("second Drain: %v", err)
	}
	if st := s.State(); st != "closed" {
		t.Fatalf("state = %q, want closed", st)
	}
	checkGoroutines(t, before)
}

// TestServerDrainDeadlineForcesCancel: a long-running evaluation (every
// engine fixpoint round delayed by an injected fault) is canceled
// cooperatively when the drain deadline expires; Drain reports the
// forced path, the request unwinds with a cancellation error, and no
// goroutine outlives the drain.
func TestServerDrainDeadlineForcesCancel(t *testing.T) {
	before := runtime.NumGoroutine()
	p := lincount.MustParseProgram(workload.SGProgram)
	db := lincount.NewDatabase(p)
	if err := db.LoadFacts(workload.Chain(200)); err != nil {
		t.Fatal(err)
	}
	s := newTestServer(t, Config{
		Program: p,
		DB:      db,
		EvalOptions: []lincount.Option{
			lincount.WithFaultInjection(3, "engine.iter=delay~1:10ms"),
		},
	})

	qerr := make(chan error, 1)
	go func() {
		// SemiNaive explicitly: Auto must not degrade around the
		// injected delays, and the chain keeps the fixpoint busy for
		// seconds — far longer than the drain deadline below.
		_, err := s.Query(context.Background(), QueryRequest{
			Query: "?- sg(u0,Y).", Strategy: "semi-naive", TimeoutMS: 60_000,
		})
		qerr <- err
	}()
	// Wait until the query is admitted and evaluating.
	deadline := time.Now().Add(5 * time.Second)
	for len(s.sem) == 0 {
		if time.Now().After(deadline) {
			t.Fatal("query never started evaluating")
		}
		time.Sleep(time.Millisecond)
	}

	dctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	start := time.Now()
	err := s.Drain(dctx)
	if err == nil {
		t.Fatal("Drain = nil, want forced-cancellation error")
	}
	if d := time.Since(start); d > 5*time.Second {
		t.Fatalf("forced drain took %v; cooperative cancellation is not prompt", d)
	}
	select {
	case err := <-qerr:
		var canceled *lincount.CanceledError
		if !errors.As(err, &canceled) && !errors.Is(err, context.Canceled) {
			t.Fatalf("canceled query returned %v, want a cancellation error", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("query did not unwind after forced drain")
	}
	checkGoroutines(t, before)
}

// TestServerPreparedCacheSurvivesEpochs: the same PreparedQuery entry
// serves every epoch — plans are pure functions of program and query, so
// writes must not invalidate them, and answers must still track the
// snapshot the request was admitted against.
func TestServerPreparedCacheSurvivesEpochs(t *testing.T) {
	s := newTestServer(t, Config{})
	defer s.Close()
	ctx := context.Background()

	// An explicit strategy keeps the request on the prepared-evaluation
	// path (auto reads on a maintained server are answered from the
	// materialisation without touching the cache).
	for i := 0; i < 10; i++ {
		if _, err := s.Write(ctx, WriteRequest{Assert: fmt.Sprintf("f(a%d,b%d).", i, i)}); err != nil {
			t.Fatal(err)
		}
		res, err := s.Query(ctx, QueryRequest{Query: "?- p(X,Y).", Strategy: "semi-naive"})
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Answers) != i+1 {
			t.Fatalf("epoch %d: %d answers, want %d", res.Epoch, len(res.Answers), i+1)
		}
	}
	s.prepMu.Lock()
	n := len(s.prepared)
	s.prepMu.Unlock()
	if n != 1 {
		t.Fatalf("prepared cache has %d entries after 10 epochs of one query, want 1", n)
	}
}

// TestServerMaintainedWrites: a recursive program served from the
// maintained materialisation — writes ride the incremental engine,
// auto reads are answered without evaluation, and every epoch matches
// an explicit from-scratch evaluation of the same snapshot.
func TestServerMaintainedWrites(t *testing.T) {
	p := lincount.MustParseProgram("tc(X,Y) :- e(X,Y).\ntc(X,Y) :- e(X,Z), tc(Z,Y).")
	s := newTestServer(t, Config{Program: p})
	defer s.Close()
	ctx := context.Background()

	if s.Snapshot().Mat == nil {
		t.Fatal("server did not materialise an incrementalisable program")
	}
	steps := []WriteRequest{
		{Assert: "e(a,b). e(b,c)."},
		{Assert: "e(c,d)."},
		{Retract: "e(b,c)."},
		{Assert: "e(b,c). e(d,a)."},
		{Retract: "e(a,b). e(c,d)."},
	}
	for i, req := range steps {
		if _, err := s.Write(ctx, req); err != nil {
			t.Fatalf("step %d: %v", i, err)
		}
		res, err := s.Query(ctx, QueryRequest{Query: "?- tc(X,Y)."})
		if err != nil {
			t.Fatalf("step %d query: %v", i, err)
		}
		if res.Strategy != "materialized" {
			t.Fatalf("step %d: strategy = %q, want materialized", i, res.Strategy)
		}
		want, err := s.Query(ctx, QueryRequest{Query: "?- tc(X,Y).", Strategy: "semi-naive"})
		if err != nil {
			t.Fatalf("step %d eval: %v", i, err)
		}
		if fmt.Sprint(res.Answers) != fmt.Sprint(want.Answers) {
			t.Fatalf("step %d: materialized answers diverge:\n got %v\nwant %v", i, res.Answers, want.Answers)
		}
		snap := s.Snapshot()
		if snap.Mat == nil {
			t.Fatalf("step %d: materialisation lost", i)
		}
		if err := snap.Mat.Verify(ctx); err != nil {
			t.Fatalf("step %d: %v", i, err)
		}
	}
	if n := s.maintBatches.Load(); n == 0 {
		t.Error("no write batch went through maintenance")
	}
	if n := s.maintFallbacks.Load(); n != 0 {
		t.Errorf("maintFallbacks = %d, want 0", n)
	}
}

// TestServerMaintenanceUnavailable: a program with negation is outside
// the maintainable fragment — the server must come up with Mat nil and
// serve reads through per-request evaluation as before.
func TestServerMaintenanceUnavailable(t *testing.T) {
	p := lincount.MustParseProgram("p(X) :- f(X), not g(X).")
	s := newTestServer(t, Config{Program: p})
	defer s.Close()
	ctx := context.Background()

	if s.Snapshot().Mat != nil {
		t.Fatal("negation program unexpectedly materialised")
	}
	if _, err := s.Write(ctx, WriteRequest{Assert: "f(a). f(b). g(b)."}); err != nil {
		t.Fatal(err)
	}
	res, err := s.Query(ctx, QueryRequest{Query: "?- p(X)."})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Answers) != 1 || res.Strategy == "materialized" {
		t.Fatalf("answers = %v via %q, want 1 row via evaluation", res.Answers, res.Strategy)
	}
}
