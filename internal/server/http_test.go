package server

// The HTTP surface: JSON round trips, the error-status contract, the
// health probes' drain transition, and the embedded obsv handler.

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func postJSON(t *testing.T, h http.Handler, path, body string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest(http.MethodPost, path, strings.NewReader(body))
	req.Header.Set("Content-Type", "application/json")
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	return rec
}

func get(t *testing.T, h http.Handler, path string) *httptest.ResponseRecorder {
	t.Helper()
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, path, nil))
	return rec
}

func TestHTTPRoundTrip(t *testing.T) {
	s := newTestServer(t, Config{})
	defer s.Close()
	h := s.Handler()

	rec := postJSON(t, h, "/v1/write", `{"assert":"f(a,b). f(b,c)."}`)
	if rec.Code != http.StatusOK {
		t.Fatalf("write: %d %s", rec.Code, rec.Body)
	}
	var wres WriteResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &wres); err != nil {
		t.Fatal(err)
	}
	if wres.Epoch != 1 {
		t.Fatalf("epoch = %d, want 1", wres.Epoch)
	}

	rec = postJSON(t, h, "/v1/query", `{"query":"?- p(X,Y)."}`)
	if rec.Code != http.StatusOK {
		t.Fatalf("query: %d %s", rec.Code, rec.Body)
	}
	var qres QueryResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &qres); err != nil {
		t.Fatal(err)
	}
	if len(qres.Answers) != 2 || qres.Epoch != 1 {
		t.Fatalf("query response = %+v, want 2 answers at epoch 1", qres)
	}

	rec = get(t, h, "/v1/stats")
	var stats StatsResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &stats); err != nil {
		t.Fatal(err)
	}
	if stats.State != "serving" || stats.Epoch != 1 {
		t.Fatalf("stats = %+v, want serving at epoch 1", stats)
	}
}

func TestHTTPErrorContract(t *testing.T) {
	s := newTestServer(t, Config{})
	defer s.Close()
	h := s.Handler()

	cases := []struct {
		name, path, body string
		wantStatus       int
		wantClass        string
	}{
		{"malformed json", "/v1/query", `{"query"`, http.StatusBadRequest, "bad_request"},
		{"unknown field", "/v1/query", `{"qeury":"?- p(X,Y)."}`, http.StatusBadRequest, "bad_request"},
		{"missing query", "/v1/query", `{}`, http.StatusBadRequest, "bad_request"},
		{"bad strategy", "/v1/query", `{"query":"?- p(X,Y).","strategy":"nope"}`, http.StatusBadRequest, "bad_request"},
		{"unparsable query", "/v1/query", `{"query":"not a goal"}`, http.StatusBadRequest, "bad_request"},
		{"empty write", "/v1/write", `{}`, http.StatusBadRequest, "bad_request"},
		{"unparsable facts", "/v1/write", `{"assert":"f(("}`, http.StatusBadRequest, "bad_request"},
	}
	for _, tc := range cases {
		rec := postJSON(t, h, tc.path, tc.body)
		if rec.Code != tc.wantStatus {
			t.Errorf("%s: status = %d, want %d (%s)", tc.name, rec.Code, tc.wantStatus, rec.Body)
			continue
		}
		var er errorResponse
		if err := json.Unmarshal(rec.Body.Bytes(), &er); err != nil {
			t.Errorf("%s: non-JSON error body %q", tc.name, rec.Body)
			continue
		}
		if er.Error != tc.wantClass {
			t.Errorf("%s: class = %q, want %q", tc.name, er.Error, tc.wantClass)
		}
	}
}

func TestHTTPHealthAndDrain(t *testing.T) {
	s := newTestServer(t, Config{})
	h := s.Handler()

	if rec := get(t, h, "/healthz"); rec.Code != http.StatusOK {
		t.Fatalf("healthz = %d", rec.Code)
	}
	if rec := get(t, h, "/readyz"); rec.Code != http.StatusOK {
		t.Fatalf("readyz = %d before drain", rec.Code)
	}
	// The obsv surface rides on the same mux.
	if rec := get(t, h, "/metrics"); rec.Code != http.StatusOK ||
		!strings.Contains(rec.Body.String(), "lincount_server_requests_total") {
		t.Fatalf("metrics = %d; body misses server metrics", rec.Code)
	}

	if err := s.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
	if rec := get(t, h, "/readyz"); rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("readyz = %d after drain, want 503", rec.Code)
	}
	if rec := get(t, h, "/healthz"); rec.Code != http.StatusOK {
		t.Fatalf("healthz = %d after drain, want 200 while process lives", rec.Code)
	}
	if rec := postJSON(t, h, "/v1/query", `{"query":"?- p(X,Y)."}`); rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("query after drain = %d, want 503", rec.Code)
	}
}

func TestHTTPRequestIDEcho(t *testing.T) {
	s := newTestServer(t, Config{})
	defer s.Close()
	h := s.Handler()

	// Inbound id is honoured and echoed on success...
	req := httptest.NewRequest(http.MethodPost, "/v1/query", strings.NewReader(`{"query":"?- p(X,Y)."}`))
	req.Header.Set("X-Request-Id", "client-42")
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if got := rec.Header().Get("X-Request-Id"); got != "client-42" {
		t.Fatalf("echoed id = %q, want client-42", got)
	}

	// ...and included in error bodies, here a 400.
	req = httptest.NewRequest(http.MethodPost, "/v1/query", strings.NewReader(`{}`))
	req.Header.Set("X-Request-Id", "client-43")
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("status = %d", rec.Code)
	}
	var er errorResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &er); err != nil {
		t.Fatal(err)
	}
	if er.RequestID != "client-43" {
		t.Fatalf("error body request_id = %q, want client-43", er.RequestID)
	}

	// Junk inbound ids are replaced by a generated one.
	req = httptest.NewRequest(http.MethodGet, "/v1/stats", nil)
	req.Header.Set("X-Request-Id", "bad id\nwith junk")
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	got := rec.Header().Get("X-Request-Id")
	if got == "" || strings.Contains(got, "junk") {
		t.Fatalf("junk id not replaced: %q", got)
	}

	// No inbound id: one is generated, and distinct per request.
	first := get(t, h, "/healthz").Header().Get("X-Request-Id")
	second := get(t, h, "/healthz").Header().Get("X-Request-Id")
	if first == "" || first == second {
		t.Fatalf("generated ids = %q, %q; want distinct non-empty", first, second)
	}
}

// TestHTTPShedCarriesRequestID: the 503 shed path — the error body most
// likely to be grepped for during an incident — carries the request id.
func TestHTTPShedCarriesRequestID(t *testing.T) {
	s := newTestServer(t, Config{MaxConcurrent: 1, MaxQueue: 1})
	defer s.Close()
	h := s.Handler()

	s.sem <- struct{}{} // occupy the only slot
	go func() { _ = s.acquire(context.Background()) }()
	deadline := time.Now().Add(2 * time.Second)
	for s.queued.Load() != 1 {
		if time.Now().After(deadline) {
			t.Fatal("queued request never registered")
		}
		time.Sleep(time.Millisecond)
	}

	req := httptest.NewRequest(http.MethodPost, "/v1/query", strings.NewReader(`{"query":"?- p(X,Y)."}`))
	req.Header.Set("X-Request-Id", "shed-me")
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("status = %d, want 503", rec.Code)
	}
	var er errorResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &er); err != nil {
		t.Fatal(err)
	}
	if er.Error != "busy" || er.RequestID != "shed-me" {
		t.Fatalf("shed body = %+v, want class busy with request id", er)
	}
	<-s.sem // unblock the queued acquire so Close can drain
	s.release()
}

func TestHTTPQueriesAndSlowlogEndpoints(t *testing.T) {
	s := newTestServer(t, Config{SlowQuery: time.Nanosecond})
	defer s.Close()
	h := s.Handler()

	if rec := postJSON(t, h, "/v1/write", `{"assert":"f(a,b)."}`); rec.Code != http.StatusOK {
		t.Fatalf("write: %d %s", rec.Code, rec.Body)
	}

	// Idle registry renders an empty array, not null.
	rec := get(t, h, "/v1/queries")
	if rec.Code != http.StatusOK || !strings.Contains(rec.Body.String(), `"queries":[]`) {
		t.Fatalf("queries = %d %s", rec.Code, rec.Body)
	}

	// Killing a query that is not in flight is a 404 with the request id.
	req := httptest.NewRequest(http.MethodDelete, "/v1/queries/12345", nil)
	req.Header.Set("X-Request-Id", "kill-miss")
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusNotFound {
		t.Fatalf("kill miss = %d, want 404", rec.Code)
	}
	var er errorResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &er); err != nil {
		t.Fatal(err)
	}
	if er.Error != "not_found" || er.RequestID != "kill-miss" {
		t.Fatalf("kill-miss body = %+v", er)
	}

	// Every request is "slow" at a 1ns threshold; the slowlog endpoint
	// serves the record and stats counts it.
	req = httptest.NewRequest(http.MethodPost, "/v1/query", strings.NewReader(`{"query":"?- p(X,Y)."}`))
	req.Header.Set("X-Request-Id", "slow-http")
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("query: %d %s", rec.Code, rec.Body)
	}

	rec = get(t, h, "/v1/debug/slowlog")
	if rec.Code != http.StatusOK {
		t.Fatalf("slowlog = %d", rec.Code)
	}
	var slow SlowlogResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &slow); err != nil {
		t.Fatal(err)
	}
	if slow.Total != 1 || len(slow.Records) != 1 {
		t.Fatalf("slowlog = %+v, want one record", slow)
	}
	if r0 := slow.Records[0]; r0.RequestID != "slow-http" || r0.Query != "?- p(X,Y)." {
		t.Fatalf("slowlog record = %+v", r0)
	}

	var stats StatsResponse
	rec = get(t, h, "/v1/stats")
	if err := json.Unmarshal(rec.Body.Bytes(), &stats); err != nil {
		t.Fatal(err)
	}
	if stats.SlowQueries != 1 || stats.ActiveQueries != 0 {
		t.Fatalf("stats = %+v, want slow_queries=1 active_queries=0", stats)
	}
}
