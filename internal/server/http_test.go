package server

// The HTTP surface: JSON round trips, the error-status contract, the
// health probes' drain transition, and the embedded obsv handler.

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func postJSON(t *testing.T, h http.Handler, path, body string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest(http.MethodPost, path, strings.NewReader(body))
	req.Header.Set("Content-Type", "application/json")
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	return rec
}

func get(t *testing.T, h http.Handler, path string) *httptest.ResponseRecorder {
	t.Helper()
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, path, nil))
	return rec
}

func TestHTTPRoundTrip(t *testing.T) {
	s := newTestServer(t, Config{})
	defer s.Close()
	h := s.Handler()

	rec := postJSON(t, h, "/v1/write", `{"assert":"f(a,b). f(b,c)."}`)
	if rec.Code != http.StatusOK {
		t.Fatalf("write: %d %s", rec.Code, rec.Body)
	}
	var wres WriteResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &wres); err != nil {
		t.Fatal(err)
	}
	if wres.Epoch != 1 {
		t.Fatalf("epoch = %d, want 1", wres.Epoch)
	}

	rec = postJSON(t, h, "/v1/query", `{"query":"?- p(X,Y)."}`)
	if rec.Code != http.StatusOK {
		t.Fatalf("query: %d %s", rec.Code, rec.Body)
	}
	var qres QueryResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &qres); err != nil {
		t.Fatal(err)
	}
	if len(qres.Answers) != 2 || qres.Epoch != 1 {
		t.Fatalf("query response = %+v, want 2 answers at epoch 1", qres)
	}

	rec = get(t, h, "/v1/stats")
	var stats StatsResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &stats); err != nil {
		t.Fatal(err)
	}
	if stats.State != "serving" || stats.Epoch != 1 {
		t.Fatalf("stats = %+v, want serving at epoch 1", stats)
	}
}

func TestHTTPErrorContract(t *testing.T) {
	s := newTestServer(t, Config{})
	defer s.Close()
	h := s.Handler()

	cases := []struct {
		name, path, body string
		wantStatus       int
		wantClass        string
	}{
		{"malformed json", "/v1/query", `{"query"`, http.StatusBadRequest, "bad_request"},
		{"unknown field", "/v1/query", `{"qeury":"?- p(X,Y)."}`, http.StatusBadRequest, "bad_request"},
		{"missing query", "/v1/query", `{}`, http.StatusBadRequest, "bad_request"},
		{"bad strategy", "/v1/query", `{"query":"?- p(X,Y).","strategy":"nope"}`, http.StatusBadRequest, "bad_request"},
		{"unparsable query", "/v1/query", `{"query":"not a goal"}`, http.StatusBadRequest, "bad_request"},
		{"empty write", "/v1/write", `{}`, http.StatusBadRequest, "bad_request"},
		{"unparsable facts", "/v1/write", `{"assert":"f(("}`, http.StatusBadRequest, "bad_request"},
	}
	for _, tc := range cases {
		rec := postJSON(t, h, tc.path, tc.body)
		if rec.Code != tc.wantStatus {
			t.Errorf("%s: status = %d, want %d (%s)", tc.name, rec.Code, tc.wantStatus, rec.Body)
			continue
		}
		var er errorResponse
		if err := json.Unmarshal(rec.Body.Bytes(), &er); err != nil {
			t.Errorf("%s: non-JSON error body %q", tc.name, rec.Body)
			continue
		}
		if er.Error != tc.wantClass {
			t.Errorf("%s: class = %q, want %q", tc.name, er.Error, tc.wantClass)
		}
	}
}

func TestHTTPHealthAndDrain(t *testing.T) {
	s := newTestServer(t, Config{})
	h := s.Handler()

	if rec := get(t, h, "/healthz"); rec.Code != http.StatusOK {
		t.Fatalf("healthz = %d", rec.Code)
	}
	if rec := get(t, h, "/readyz"); rec.Code != http.StatusOK {
		t.Fatalf("readyz = %d before drain", rec.Code)
	}
	// The obsv surface rides on the same mux.
	if rec := get(t, h, "/metrics"); rec.Code != http.StatusOK ||
		!strings.Contains(rec.Body.String(), "lincount_server_requests_total") {
		t.Fatalf("metrics = %d; body misses server metrics", rec.Code)
	}

	if err := s.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
	if rec := get(t, h, "/readyz"); rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("readyz = %d after drain, want 503", rec.Code)
	}
	if rec := get(t, h, "/healthz"); rec.Code != http.StatusOK {
		t.Fatalf("healthz = %d after drain, want 200 while process lives", rec.Code)
	}
	if rec := postJSON(t, h, "/v1/query", `{"query":"?- p(X,Y)."}`); rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("query after drain = %d, want 503", rec.Code)
	}
}
