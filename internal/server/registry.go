package server

// The active-query registry: a fixed pool of slots, one per in-flight
// query, sized by the admission semaphore (MaxConcurrent). A query
// registers after it is admitted and unregisters when it completes, so
// the pool can never overflow and the steady-state cost of tracking a
// request is two mutex-guarded slot operations with zero allocations.
// GET /v1/queries snapshots the pool; DELETE /v1/queries/{id} cancels a
// slot's request context, which the evaluation observes at its next
// cooperative check.

import (
	"context"
	"errors"
	"fmt"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// ErrKilled is the sentinel for queries cancelled by an operator via
// DELETE /v1/queries/{id}. errors.Is(err, ErrKilled) matches the
// *KilledError the server returns in that case.
var ErrKilled = errors.New("server: query killed by operator")

// KilledError reports that an in-flight query was cancelled through the
// registry rather than by its own deadline or client disconnect.
type KilledError struct {
	// ID is the registry id of the killed query.
	ID uint64
}

func (e *KilledError) Error() string {
	return fmt.Sprintf("server: query %d killed by operator", e.ID)
}

// Is makes errors.Is(err, ErrKilled) true for *KilledError.
func (e *KilledError) Is(target error) bool { return target == ErrKilled }

// QueryInfo is one in-flight query as reported by GET /v1/queries.
type QueryInfo struct {
	ID        uint64    `json:"id"`
	RequestID string    `json:"request_id,omitempty"`
	Query     string    `json:"query,omitempty"`
	Strategy  string    `json:"strategy,omitempty"`
	Epoch     uint64    `json:"epoch,omitempty"`
	StartedAt time.Time `json:"started_at"`
	// ElapsedUS is time since admission; DeadlineInUS is time remaining
	// until the request's deadline (0 when already past).
	ElapsedUS    int64 `json:"elapsed_us"`
	DeadlineInUS int64 `json:"deadline_in_us,omitempty"`
	// Facts is the evaluation's derived-fact count so far (engine
	// strategies only; 0 for materialized reads, which do not evaluate).
	Facts  int64 `json:"facts"`
	Killed bool  `json:"killed,omitempty"`
}

// qslot is one registry slot. The facts counter is written lock-free by
// the evaluation (via WithFactProgress) and read by snapshots; every
// other field is guarded by the registry mutex. Slots are recycled, so
// a *qslot held by a finished request must not be dereferenced after
// end() — the Query path only holds it for its own lifetime.
type qslot struct {
	idx      int
	active   bool
	id       uint64
	reqID    string
	query    string
	strategy string
	epoch    uint64
	start    time.Time
	deadline time.Time
	cancel   context.CancelFunc
	killed   bool
	facts    atomic.Int64
}

// ID returns the slot's registry id (0 for an untracked request). Safe
// without the registry lock: only begin, on the owning goroutine, ever
// writes it while the slot is held.
func (s *qslot) ID() uint64 {
	if s == nil {
		return 0
	}
	return s.id
}

// Facts returns the slot's live derived-fact counter for wiring into
// WithFactProgress (nil for an untracked request).
func (s *qslot) Facts() *atomic.Int64 {
	if s == nil {
		return nil
	}
	return &s.facts
}

type registry struct {
	mu    sync.Mutex
	slots []qslot
	free  []int // stack of free slot indices
	seq   uint64
}

func newRegistry(capacity int) *registry {
	if capacity < 1 {
		capacity = 1
	}
	r := &registry{
		slots: make([]qslot, capacity),
		free:  make([]int, capacity),
	}
	for i := range r.slots {
		r.slots[i].idx = i
		r.free[i] = capacity - 1 - i // pop order 0,1,2,...
	}
	return r
}

// begin claims a slot for an admitted query. cancel is the request
// context's own CancelFunc — kill() reuses it rather than wrapping the
// context. Returns nil when the pool is exhausted (cannot happen while
// capacity == MaxConcurrent, but callers guard anyway); a nil slot is
// accepted by every other method as "untracked".
func (r *registry) begin(reqID, query string, cancel context.CancelFunc, deadline time.Time) *qslot {
	now := time.Now()
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.free) == 0 {
		return nil
	}
	idx := r.free[len(r.free)-1]
	r.free = r.free[:len(r.free)-1]
	r.seq++
	s := &r.slots[idx]
	s.active = true
	s.id = r.seq
	s.reqID = reqID
	s.query = query
	s.strategy = ""
	s.epoch = 0
	s.start = now
	s.deadline = deadline
	s.cancel = cancel
	s.killed = false
	s.facts.Store(0)
	return s
}

// setRunning records the resolved strategy and snapshot epoch once the
// query is past planning.
func (r *registry) setRunning(s *qslot, strategy string, epoch uint64) {
	if s == nil {
		return
	}
	r.mu.Lock()
	s.strategy = strategy
	s.epoch = epoch
	r.mu.Unlock()
}

// end releases the slot and reports whether the query had been killed.
func (r *registry) end(s *qslot) bool {
	if s == nil {
		return false
	}
	r.mu.Lock()
	killed := s.killed
	s.active = false
	s.cancel = nil
	s.reqID = ""
	s.query = ""
	s.strategy = ""
	r.free = append(r.free, s.idx)
	r.mu.Unlock()
	return killed
}

// killed reports whether the slot was cancelled through the registry.
func (r *registry) killed(s *qslot) bool {
	if s == nil {
		return false
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return s.killed
}

// kill cancels the in-flight query whose registry id (decimal) or
// request id equals key. It returns the registry id and whether a match
// was found. The cancel runs outside the registry lock.
func (r *registry) kill(key string) (uint64, bool) {
	var (
		cancel context.CancelFunc
		id     uint64
	)
	byID, numeric := strconv.ParseUint(key, 10, 64)
	r.mu.Lock()
	for i := range r.slots {
		s := &r.slots[i]
		if !s.active {
			continue
		}
		if (numeric == nil && s.id == byID) || (s.reqID != "" && s.reqID == key) {
			s.killed = true
			cancel = s.cancel
			id = s.id
			break
		}
	}
	r.mu.Unlock()
	if cancel == nil {
		return 0, false
	}
	cancel()
	return id, true
}

// snapshot returns the in-flight queries, oldest first.
func (r *registry) snapshot(now time.Time) []QueryInfo {
	r.mu.Lock()
	defer r.mu.Unlock()
	var out []QueryInfo
	for i := range r.slots {
		s := &r.slots[i]
		if !s.active {
			continue
		}
		info := QueryInfo{
			ID:        s.id,
			RequestID: s.reqID,
			Query:     s.query,
			Strategy:  s.strategy,
			Epoch:     s.epoch,
			StartedAt: s.start,
			ElapsedUS: now.Sub(s.start).Microseconds(),
			Facts:     s.facts.Load(),
			Killed:    s.killed,
		}
		if !s.deadline.IsZero() {
			if in := s.deadline.Sub(now).Microseconds(); in > 0 {
				info.DeadlineInUS = in
			}
		}
		out = append(out, info)
	}
	// Oldest first: registry ids are monotonic.
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j].ID < out[j-1].ID; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

// active returns the number of in-flight queries.
func (r *registry) active() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.slots) - len(r.free)
}
