package server

// The durability contract, tested white-box: recovery rebuilds exactly
// the acknowledged writes and resumes the epoch sequence, checkpoints
// truncate the log behind a manifest swap, injected WAL faults are
// retried without double-applying, and the checkpointer participates in
// graceful drain without leaking goroutines.

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"lincount"
	"lincount/internal/faultinject"
	"lincount/internal/wal"
)

// newDurableServer builds a server over dir with small checkpoint
// thresholds disabled (explicit checkpoints only) unless cfg overrides.
func newDurableServer(t *testing.T, dir string, cfg Config) *Server {
	t.Helper()
	cfg.DataDir = dir
	if cfg.CheckpointBytes == 0 {
		cfg.CheckpointBytes = -1
	}
	if cfg.CheckpointRecords == 0 {
		cfg.CheckpointRecords = -1
	}
	return newTestServer(t, cfg)
}

func mustWrite(t *testing.T, s *Server, req WriteRequest) *WriteResponse {
	t.Helper()
	res, err := s.Write(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func answerCount(t *testing.T, s *Server) int {
	t.Helper()
	res, err := s.Query(context.Background(), QueryRequest{Query: "?- p(X,Y)."})
	if err != nil {
		t.Fatal(err)
	}
	return len(res.Answers)
}

func drain(t *testing.T, s *Server) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s.Drain(ctx); err != nil {
		t.Fatal(err)
	}
}

func TestDurableRecoveryRoundTrip(t *testing.T) {
	dir := t.TempDir()
	s := newDurableServer(t, dir, Config{})
	if !s.Durable() {
		t.Fatal("server with DataDir is not durable")
	}
	mustWrite(t, s, WriteRequest{Assert: "f(a,b). f(b,c)."})
	mustWrite(t, s, WriteRequest{Assert: "f(c,d)."})
	mustWrite(t, s, WriteRequest{Retract: "f(a,b)."})
	epoch := s.Snapshot().Epoch
	if epoch != 3 {
		t.Fatalf("epoch = %d after 3 writes, want 3", epoch)
	}
	if n := answerCount(t, s); n != 2 {
		t.Fatalf("answers = %d, want 2", n)
	}
	drain(t, s)

	// A new server over the same directory rebuilds the exact state and
	// resumes the epoch sequence — epochs never restart from zero, so
	// clients' read-your-writes reasoning survives the restart.
	s2 := newDurableServer(t, dir, Config{})
	if got := s2.Snapshot().Epoch; got != epoch {
		t.Fatalf("recovered epoch = %d, want %d", got, epoch)
	}
	if info := s2.Recovery(); info.Records != 3 || info.Epoch != epoch {
		t.Fatalf("recovery info = %+v, want 3 records at epoch %d", info, epoch)
	}
	if n := answerCount(t, s2); n != 2 {
		t.Fatalf("recovered answers = %d, want 2", n)
	}
	// Retracted facts stay retracted; new writes continue the chain.
	mustWrite(t, s2, WriteRequest{Assert: "f(x,y)."})
	if got := s2.Snapshot().Epoch; got != epoch+1 {
		t.Fatalf("epoch after post-recovery write = %d, want %d", got, epoch+1)
	}
	drain(t, s2)
}

func TestCheckpointTruncatesLog(t *testing.T) {
	dir := t.TempDir()
	s := newDurableServer(t, dir, Config{})
	mustWrite(t, s, WriteRequest{Assert: "f(a,b)."})
	mustWrite(t, s, WriteRequest{Assert: "f(b,c)."})

	res, err := s.Checkpoint(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if res.Skipped || res.Epoch != 2 {
		t.Fatalf("checkpoint = %+v, want epoch 2, not skipped", res)
	}
	m, err := wal.ReadManifest(dir)
	if err != nil || m == nil {
		t.Fatalf("manifest = %+v, err %v", m, err)
	}
	if m.Seq != 2 || m.Snapshot != res.Snapshot {
		t.Fatalf("manifest = %+v, want seq 2 snapshot %s", m, res.Snapshot)
	}
	// The live segment is fresh: zero records.
	if wl := s.walW.Load(); wl.Records() != 0 {
		t.Fatalf("live segment has %d records after checkpoint, want 0", wl.Records())
	}
	// A second checkpoint with nothing new is a no-op.
	res2, err := s.Checkpoint(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if !res2.Skipped {
		t.Fatalf("checkpoint with no new epochs = %+v, want skipped", res2)
	}

	// Post-checkpoint writes land in the new segment; recovery composes
	// snapshot + replay.
	mustWrite(t, s, WriteRequest{Assert: "f(c,d)."})
	drain(t, s)
	s2 := newDurableServer(t, dir, Config{})
	if got := s2.Snapshot().Epoch; got != 3 {
		t.Fatalf("recovered epoch = %d, want 3", got)
	}
	if info := s2.Recovery(); info.CheckpointSeq != 2 || info.Records != 1 {
		t.Fatalf("recovery info = %+v, want checkpoint 2 + 1 replayed record", info)
	}
	if n := answerCount(t, s2); n != 3 {
		t.Fatalf("recovered answers = %d, want 3", n)
	}
	drain(t, s2)
	// Superseded segments were deleted: only the manifest's chain remains.
	segs, err := wal.ListSegments(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) != 1 {
		t.Fatalf("segments after checkpoint = %v, want just the live one", segs)
	}
}

func TestAutoCheckpointByRecordThreshold(t *testing.T) {
	dir := t.TempDir()
	s := newDurableServer(t, dir, Config{CheckpointRecords: 3, CheckpointBytes: -1})
	for i := 0; i < 8; i++ {
		mustWrite(t, s, WriteRequest{Assert: "f(a" + strings.Repeat("x", i) + ",b)."})
	}
	// The threshold kick is asynchronous; wait for a manifest to appear.
	deadline := time.Now().Add(5 * time.Second)
	for {
		m, err := wal.ReadManifest(dir)
		if err != nil {
			t.Fatal(err)
		}
		if m != nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("no automatic checkpoint after exceeding the record threshold")
		}
		time.Sleep(10 * time.Millisecond)
	}
	drain(t, s)
	s2 := newDurableServer(t, dir, Config{})
	if n := answerCount(t, s2); n != 8 {
		t.Fatalf("recovered answers = %d, want 8", n)
	}
	drain(t, s2)
}

func TestWALAppendFaultRetriedOnce(t *testing.T) {
	dir := t.TempDir()
	inj := faultinject.New(7)
	inj.FailAt(faultinject.SiteWALAppend, 2)
	s := newDurableServer(t, dir, Config{Inject: inj})
	mustWrite(t, s, WriteRequest{Assert: "f(a,b)."})
	// The second write's first append attempt fails injected; the batch
	// retries and must publish exactly once with no duplicate record.
	mustWrite(t, s, WriteRequest{Assert: "f(b,c)."})
	if got := s.Snapshot().Epoch; got != 2 {
		t.Fatalf("epoch = %d, want 2", got)
	}
	drain(t, s)

	s2 := newDurableServer(t, dir, Config{})
	if got := s2.Snapshot().Epoch; got != 2 {
		t.Fatalf("recovered epoch = %d, want 2", got)
	}
	if n := answerCount(t, s2); n != 2 {
		t.Fatalf("recovered answers = %d, want 2", n)
	}
	drain(t, s2)
}

func TestRecoveryFailsClosedOnReplayFault(t *testing.T) {
	dir := t.TempDir()
	s := newDurableServer(t, dir, Config{})
	mustWrite(t, s, WriteRequest{Assert: "f(a,b)."})
	drain(t, s)

	inj := faultinject.New(1)
	inj.FailAt(faultinject.SiteWALReplay, 1)
	cfg := Config{
		Program: lincount.MustParseProgram("p(X,Y) :- f(X,Y)."),
		DataDir: dir,
		Inject:  inj,
	}
	cfg.DB = lincount.NewDatabase(cfg.Program)
	if _, err := New(cfg); !errors.Is(err, faultinject.ErrInjected) {
		t.Fatalf("New with replay fault = %v, want injected error", err)
	}

	// Without the fault the directory is still recoverable — the failed
	// boot mutated nothing on disk.
	s2 := newDurableServer(t, dir, Config{})
	if n := answerCount(t, s2); n != 1 {
		t.Fatalf("answers = %d, want 1", n)
	}
	drain(t, s2)
}

func TestRecoveryRejectsMidLogCorruption(t *testing.T) {
	dir := t.TempDir()
	s := newDurableServer(t, dir, Config{})
	mustWrite(t, s, WriteRequest{Assert: "f(a,b)."})
	mustWrite(t, s, WriteRequest{Assert: "f(b,c)."})
	drain(t, s)

	segs, err := wal.ListSegments(dir)
	if err != nil || len(segs) != 1 {
		t.Fatalf("segments = %v, err %v", segs, err)
	}
	path := filepath.Join(dir, segs[0].Name)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(wal.Magic)+10] ^= 0xff // first record's payload
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	cfg := Config{Program: lincount.MustParseProgram("p(X,Y) :- f(X,Y)."), DataDir: dir}
	cfg.DB = lincount.NewDatabase(cfg.Program)
	_, err = New(cfg)
	var corrupt *wal.WALCorruptError
	if !errors.As(err, &corrupt) {
		t.Fatalf("New over bit-rotted log = %v, want WALCorruptError", err)
	}
}

func TestRecoveryTruncatesTornTail(t *testing.T) {
	dir := t.TempDir()
	s := newDurableServer(t, dir, Config{})
	mustWrite(t, s, WriteRequest{Assert: "f(a,b)."})
	drain(t, s)

	segs, _ := wal.ListSegments(dir)
	path := filepath.Join(dir, segs[0].Name)
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{42, 0, 0, 0, 9}); err != nil { // torn frame
		t.Fatal(err)
	}
	f.Close()

	s2 := newDurableServer(t, dir, Config{})
	if info := s2.Recovery(); info.TruncatedBytes != 5 || info.Records != 1 {
		t.Fatalf("recovery info = %+v, want 1 record + 5 truncated bytes", info)
	}
	if n := answerCount(t, s2); n != 1 {
		t.Fatalf("answers = %d, want 1", n)
	}
	// The torn bytes are gone from disk and appends resume cleanly.
	mustWrite(t, s2, WriteRequest{Assert: "f(b,c)."})
	drain(t, s2)
	s3 := newDurableServer(t, dir, Config{})
	if n := answerCount(t, s3); n != 2 {
		t.Fatalf("answers after resume = %d, want 2", n)
	}
	drain(t, s3)
}

func TestCheckpointNotDurable(t *testing.T) {
	s := newTestServer(t, Config{})
	if _, err := s.Checkpoint(context.Background()); !errors.Is(err, ErrNotDurable) {
		t.Fatalf("Checkpoint on in-memory server = %v, want ErrNotDurable", err)
	}
	drain(t, s)
}

// TestDrainRacesCheckpoint exercises the shutdown ordering: drains
// racing in-progress checkpoints (including ones blocked on the writer
// rendezvous) must neither deadlock nor leak the checkpointer or writer
// goroutines.
func TestDrainRacesCheckpoint(t *testing.T) {
	before := runtime.NumGoroutine()
	for i := 0; i < 20; i++ {
		dir := t.TempDir()
		s := newDurableServer(t, dir, Config{})
		mustWrite(t, s, WriteRequest{Assert: "f(a,b)."})

		var wg sync.WaitGroup
		wg.Add(2)
		go func() {
			defer wg.Done()
			// Errors are expected when the drain wins the race.
			_, _ = s.Checkpoint(context.Background())
		}()
		go func() {
			defer wg.Done()
			ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
			defer cancel()
			_ = s.Drain(ctx)
		}()
		wg.Wait()
		// After both settle the server must be fully closed.
		if st := s.State(); st != "closed" {
			t.Fatalf("iteration %d: state = %s, want closed", i, st)
		}
	}
	checkGoroutines(t, before)
}
