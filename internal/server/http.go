package server

// The HTTP/JSON surface over Server. One mux serves the query API, the
// health probes, and the whole obsv handler (metrics, traces, pprof) —
// lincountd binds a single listener for everything.

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"runtime/debug"
	"strconv"

	"lincount"
	"lincount/internal/obsv"
)

// maxBodyBytes bounds request bodies; a fact-load bigger than this
// should arrive as a file at startup, not over the write API.
const maxBodyBytes = 8 << 20

// errorResponse is the JSON error shape: a stable machine-readable
// class plus the human-readable detail.
type errorResponse struct {
	Error  string `json:"error"`
	Detail string `json:"detail"`
}

// StatsResponse is /v1/stats: a point-in-time view of the server.
type StatsResponse struct {
	State    string `json:"state"`
	Epoch    uint64 `json:"epoch"`
	InFlight int    `json:"in_flight"`
	Queued   int    `json:"queued"`

	// Durability gauges, present only when the server runs with a data
	// directory.
	Durable       bool   `json:"durable,omitempty"`
	WALBytes      int64  `json:"wal_bytes,omitempty"`
	WALRecords    int    `json:"wal_records,omitempty"`
	CheckpointSeq uint64 `json:"checkpoint_seq,omitempty"`

	// Incremental-maintenance gauges. Materialized reports whether the
	// current snapshot carries a maintained materialisation (auto reads
	// are served from it); MaintBatches counts write batches applied
	// through maintenance, MaintFallbacks those that fell back to base
	// apply plus full re-materialisation.
	Materialized   bool  `json:"materialized,omitempty"`
	DerivedFacts   int64 `json:"derived_facts,omitempty"`
	MaintBatches   int64 `json:"maint_batches,omitempty"`
	MaintFallbacks int64 `json:"maint_fallbacks,omitempty"`
}

// Handler returns the server's HTTP mux:
//
//	POST /v1/query       evaluate a query against the current snapshot
//	POST /v1/write       assert/retract facts (one atomic batch entry)
//	POST /v1/checkpoint  snapshot + truncate the WAL (durable servers only)
//	GET  /v1/stats       lifecycle state, epoch, admission + durability gauges
//	GET  /healthz        200 while the process serves HTTP at all
//	GET  /readyz         200 while serving, 503 once draining
//	/...                 the obsv handler (/metrics, /trace.json, /debug/pprof/)
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/query", s.handleQuery)
	mux.HandleFunc("POST /v1/write", s.handleWrite)
	mux.HandleFunc("POST /v1/checkpoint", s.handleCheckpoint)
	mux.HandleFunc("GET /v1/stats", s.handleStats)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("GET /readyz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		if st := s.State(); st != "serving" {
			w.WriteHeader(http.StatusServiceUnavailable)
			fmt.Fprintln(w, st)
			return
		}
		fmt.Fprintln(w, "serving")
	})
	mux.Handle("/", obsv.Handler())
	return contain(mux)
}

// contain is the outermost middleware: a panic anywhere in a handler is
// converted to a 500 instead of killing the connection (and, with
// http.Server's default, logging a stack to stderr while other requests
// proceed — here we keep the process quiet and the client informed).
func contain(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		defer func() {
			if rec := recover(); rec != nil {
				obsv.MServerErrors.Add("internal", 1)
				writeError(w, http.StatusInternalServerError, "internal",
					fmt.Sprintf("panic serving %s: %v\n%s", r.URL.Path, rec, debug.Stack()))
			}
		}()
		next.ServeHTTP(w, r)
	})
}

func writeError(w http.ResponseWriter, status int, class, detail string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(errorResponse{Error: class, Detail: detail})
}

// retryAfterSeconds estimates when a shed client should try again: one
// second when the server is merely at its concurrency limit, growing
// with the backlog (each MaxConcurrent's worth of waiting work is
// roughly one more "turn" of the semaphore), clamped so a pathological
// queue never tells clients to go away for minutes.
func (s *Server) retryAfterSeconds() int {
	backlog := len(s.sem) + int(s.queued.Load()) + len(s.writes)
	secs := 1 + backlog/s.cfg.MaxConcurrent
	if secs > 30 {
		secs = 30
	}
	return secs
}

// drainRetryAfterSeconds is the Retry-After sent while draining —
// deliberately distinct from the busy path's load-derived value: the
// request will never succeed against this instance, so the hint is
// "give a replacement instance time to come up", not "back off a turn".
const drainRetryAfterSeconds = 5

// writeErr maps a typed server error onto HTTP status + JSON body. The
// mapping is the degradation contract clients program against: 503 is
// retryable elsewhere/later, 504 means the request's own deadline, 422
// means the query is too expensive under the server's budgets, 400 is
// the client's fault, 500 is ours. 503s carry a Retry-After derived
// from the actual backlog (busy) or the drain constant.
func (s *Server) writeErr(w http.ResponseWriter, err error) {
	var busy *BusyError
	var badReq *badRequestError
	var interr *lincount.InternalError
	switch {
	case errors.As(err, &busy):
		w.Header().Set("Retry-After", strconv.Itoa(s.retryAfterSeconds()))
		writeError(w, http.StatusServiceUnavailable, "busy", err.Error())
	case errors.Is(err, ErrDraining):
		w.Header().Set("Retry-After", strconv.Itoa(drainRetryAfterSeconds))
		writeError(w, http.StatusServiceUnavailable, "draining", err.Error())
	case errors.Is(err, ErrNotDurable):
		writeError(w, http.StatusConflict, "not_durable", err.Error())
	case errors.Is(err, context.DeadlineExceeded), errors.Is(err, context.Canceled):
		writeError(w, http.StatusGatewayTimeout, "canceled", err.Error())
	case errors.Is(err, lincount.ErrResourceLimit):
		writeError(w, http.StatusUnprocessableEntity, "limit", err.Error())
	case errors.As(err, &badReq):
		writeError(w, http.StatusBadRequest, "bad_request", err.Error())
	case errors.As(err, &interr):
		writeError(w, http.StatusInternalServerError, "internal", err.Error())
	default:
		writeError(w, http.StatusInternalServerError, "other", err.Error())
	}
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(v)
}

func decode(w http.ResponseWriter, r *http.Request, v any) bool {
	body := http.MaxBytesReader(w, r.Body, maxBodyBytes)
	dec := json.NewDecoder(body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		obsv.MServerErrors.Add("bad_request", 1)
		writeError(w, http.StatusBadRequest, "bad_request", "decoding request body: "+err.Error())
		return false
	}
	return true
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	var req QueryRequest
	if !decode(w, r, &req) {
		return
	}
	if req.Query == "" {
		obsv.MServerErrors.Add("bad_request", 1)
		writeError(w, http.StatusBadRequest, "bad_request", `missing "query"`)
		return
	}
	res, err := s.Query(r.Context(), req)
	if err != nil {
		s.writeErr(w, err)
		return
	}
	writeJSON(w, res)
}

func (s *Server) handleWrite(w http.ResponseWriter, r *http.Request) {
	var req WriteRequest
	if !decode(w, r, &req) {
		return
	}
	if req.Assert == "" && req.Retract == "" {
		obsv.MServerErrors.Add("bad_request", 1)
		writeError(w, http.StatusBadRequest, "bad_request", `need "assert" and/or "retract"`)
		return
	}
	res, err := s.Write(r.Context(), req)
	if err != nil {
		s.writeErr(w, err)
		return
	}
	writeJSON(w, res)
}

func (s *Server) handleCheckpoint(w http.ResponseWriter, r *http.Request) {
	res, err := s.Checkpoint(r.Context())
	if err != nil {
		s.writeErr(w, err)
		return
	}
	writeJSON(w, res)
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	snap := s.snap.Load()
	resp := StatsResponse{
		State:    s.State(),
		Epoch:    snap.Epoch,
		InFlight: len(s.sem),
		Queued:   int(s.queued.Load()),
	}
	if wl := s.walW.Load(); wl != nil {
		resp.Durable = true
		resp.WALBytes = wl.Size()
		resp.WALRecords = wl.Records()
		resp.CheckpointSeq = s.lastCkptSeq.Load()
	}
	if snap.Mat != nil {
		resp.Materialized = true
		resp.DerivedFacts = snap.Mat.DerivedFacts()
	}
	resp.MaintBatches = s.maintBatches.Load()
	resp.MaintFallbacks = s.maintFallbacks.Load()
	writeJSON(w, resp)
}
