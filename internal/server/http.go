package server

// The HTTP/JSON surface over Server. One mux serves the query API, the
// health probes, and the whole obsv handler (metrics, traces, pprof) —
// lincountd binds a single listener for everything.
//
// Every request carries a request id: the sanitized inbound
// X-Request-Id when the client sent one, a generated one otherwise. The
// id is echoed on the response (success and error alike), stored in the
// request context for the registry and the slow-query log, and included
// in every JSON error body — so a 503 shed under load, a slowlog
// record, and the client's own logs all correlate on one string.

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"runtime/debug"
	"strconv"
	"sync/atomic"

	"lincount"
	"lincount/internal/obsv"
)

// maxBodyBytes bounds request bodies; a fact-load bigger than this
// should arrive as a file at startup, not over the write API.
const maxBodyBytes = 8 << 20

// errorResponse is the JSON error shape: a stable machine-readable
// class, the human-readable detail, and the request id for correlation.
type errorResponse struct {
	Error     string `json:"error"`
	Detail    string `json:"detail"`
	RequestID string `json:"request_id,omitempty"`
}

// StatsResponse is /v1/stats: a point-in-time view of the server.
type StatsResponse struct {
	State    string `json:"state"`
	Epoch    uint64 `json:"epoch"`
	InFlight int    `json:"in_flight"`
	Queued   int    `json:"queued"`

	// ActiveQueries is the registry's in-flight query count (the detail
	// lives at /v1/queries); SlowQueries counts slowlog records ever
	// captured.
	ActiveQueries int    `json:"active_queries"`
	SlowQueries   uint64 `json:"slow_queries,omitempty"`

	// Durability gauges, present only when the server runs with a data
	// directory.
	Durable       bool   `json:"durable,omitempty"`
	WALBytes      int64  `json:"wal_bytes,omitempty"`
	WALRecords    int    `json:"wal_records,omitempty"`
	CheckpointSeq uint64 `json:"checkpoint_seq,omitempty"`

	// Incremental-maintenance gauges. Materialized reports whether the
	// current snapshot carries a maintained materialisation (auto reads
	// are served from it); MaintBatches counts write batches applied
	// through maintenance, MaintFallbacks those that fell back to base
	// apply plus full re-materialisation.
	Materialized   bool  `json:"materialized,omitempty"`
	DerivedFacts   int64 `json:"derived_facts,omitempty"`
	MaintBatches   int64 `json:"maint_batches,omitempty"`
	MaintFallbacks int64 `json:"maint_fallbacks,omitempty"`
}

// QueriesResponse is GET /v1/queries: the in-flight queries, oldest
// first.
type QueriesResponse struct {
	Queries []QueryInfo `json:"queries"`
	Count   int         `json:"count"`
}

// KillResponse is DELETE /v1/queries/{id}: the registry id of the query
// whose cancellation was requested. The query's own request fails with
// class "killed"; this response only confirms the request was delivered.
type KillResponse struct {
	ID     uint64 `json:"id"`
	Killed bool   `json:"killed"`
}

// SlowlogResponse is GET /v1/debug/slowlog: the retained slow-query
// records, newest first, plus the monotonic count of records ever
// captured (so a scraper can tell eviction from quiescence).
type SlowlogResponse struct {
	Total   uint64               `json:"total"`
	Records []obsv.RequestRecord `json:"records"`
}

// Handler returns the server's HTTP mux:
//
//	POST   /v1/query         evaluate a query against the current snapshot
//	POST   /v1/write         assert/retract facts (one atomic batch entry)
//	POST   /v1/checkpoint    snapshot + truncate the WAL (durable servers only)
//	GET    /v1/stats         lifecycle state, epoch, admission + durability gauges
//	GET    /v1/queries       in-flight queries (id, query, strategy, facts so far)
//	DELETE /v1/queries/{id}  cancel an in-flight query by registry or request id
//	GET    /v1/debug/slowlog the slow-query log (see Config.SlowQuery)
//	GET    /healthz          200 while the process serves HTTP at all
//	GET    /readyz           200 while serving, 503 once draining
//	/...                     the obsv handler (/metrics, /trace.json, /debug/pprof/)
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/query", s.handleQuery)
	mux.HandleFunc("POST /v1/write", s.handleWrite)
	mux.HandleFunc("POST /v1/checkpoint", s.handleCheckpoint)
	mux.HandleFunc("GET /v1/stats", s.handleStats)
	mux.HandleFunc("GET /v1/queries", s.handleQueries)
	mux.HandleFunc("DELETE /v1/queries/{id}", s.handleKillQuery)
	mux.HandleFunc("GET /v1/debug/slowlog", s.handleSlowlog)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("GET /readyz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		if st := s.State(); st != "serving" {
			w.WriteHeader(http.StatusServiceUnavailable)
			fmt.Fprintln(w, st)
			return
		}
		fmt.Fprintln(w, "serving")
	})
	mux.Handle("/", obsv.Handler())
	// Request-id assignment wraps panic containment so even a panic
	// response carries the id.
	return withRequestID(contain(mux))
}

// ridPrefix distinguishes this process's generated ids; ridCounter
// makes them unique within it.
var (
	ridPrefix  = func() string { var b [4]byte; _, _ = rand.Read(b[:]); return hex.EncodeToString(b[:]) }()
	ridCounter atomic.Uint64
)

// sanitizeRequestID accepts a client-supplied id only when it is short
// and printable-token-ish — anything else (header injection, binary
// junk, essay-length ids) is replaced by a generated one.
func sanitizeRequestID(id string) string {
	if id == "" || len(id) > 64 {
		return ""
	}
	for i := 0; i < len(id); i++ {
		c := id[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9',
			c == '-', c == '_', c == '.', c == ':':
		default:
			return ""
		}
	}
	return id
}

// withRequestID assigns every request its id: the sanitized inbound
// X-Request-Id when usable, a generated one otherwise. The id is echoed
// on the response and stored in the request context for the handlers,
// the registry and the slow-query log.
func withRequestID(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		id := sanitizeRequestID(r.Header.Get("X-Request-Id"))
		if id == "" {
			id = ridPrefix + "-" + strconv.FormatUint(ridCounter.Add(1), 10)
		}
		w.Header().Set("X-Request-Id", id)
		next.ServeHTTP(w, r.WithContext(WithRequestID(r.Context(), id)))
	})
}

// contain converts a panic anywhere in a handler to a 500 instead of
// killing the connection (and, with http.Server's default, logging a
// stack to stderr while other requests proceed — here we keep the
// process quiet and the client informed).
func contain(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		defer func() {
			if rec := recover(); rec != nil {
				obsv.MServerErrors.Add("internal", 1)
				writeError(w, http.StatusInternalServerError, "internal",
					fmt.Sprintf("panic serving %s: %v\n%s", r.URL.Path, rec, debug.Stack()),
					RequestID(r.Context()))
			}
		}()
		next.ServeHTTP(w, r)
	})
}

func writeError(w http.ResponseWriter, status int, class, detail, reqID string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(errorResponse{Error: class, Detail: detail, RequestID: reqID})
}

// retryAfterSeconds estimates when a shed client should try again: one
// second when the server is merely at its concurrency limit, growing
// with the backlog (each MaxConcurrent's worth of waiting work is
// roughly one more "turn" of the semaphore), clamped so a pathological
// queue never tells clients to go away for minutes.
func (s *Server) retryAfterSeconds() int {
	backlog := len(s.sem) + int(s.queued.Load()) + len(s.writes)
	secs := 1 + backlog/s.cfg.MaxConcurrent
	if secs > 30 {
		secs = 30
	}
	return secs
}

// drainRetryAfterSeconds is the Retry-After sent while draining —
// deliberately distinct from the busy path's load-derived value: the
// request will never succeed against this instance, so the hint is
// "give a replacement instance time to come up", not "back off a turn".
const drainRetryAfterSeconds = 5

// writeErr maps a typed server error onto HTTP status + JSON body. The
// mapping is the degradation contract clients program against: 503 is
// retryable elsewhere/later, 504 means the request's own deadline, 409
// means an operator killed the query, 422 means the query is too
// expensive under the server's budgets, 400 is the client's fault, 500
// is ours. 503s carry a Retry-After derived from the actual backlog
// (busy) or the drain constant. Every body carries the request id.
func (s *Server) writeErr(w http.ResponseWriter, r *http.Request, err error) {
	reqID := RequestID(r.Context())
	var busy *BusyError
	var badReq *badRequestError
	var interr *lincount.InternalError
	switch {
	case errors.As(err, &busy):
		w.Header().Set("Retry-After", strconv.Itoa(s.retryAfterSeconds()))
		writeError(w, http.StatusServiceUnavailable, "busy", err.Error(), reqID)
	case errors.Is(err, ErrDraining):
		w.Header().Set("Retry-After", strconv.Itoa(drainRetryAfterSeconds))
		writeError(w, http.StatusServiceUnavailable, "draining", err.Error(), reqID)
	case errors.Is(err, ErrNotDurable):
		writeError(w, http.StatusConflict, "not_durable", err.Error(), reqID)
	case errors.Is(err, ErrKilled):
		writeError(w, http.StatusConflict, "killed", err.Error(), reqID)
	case errors.Is(err, context.DeadlineExceeded), errors.Is(err, context.Canceled):
		writeError(w, http.StatusGatewayTimeout, "canceled", err.Error(), reqID)
	case errors.Is(err, lincount.ErrResourceLimit):
		writeError(w, http.StatusUnprocessableEntity, "limit", err.Error(), reqID)
	case errors.As(err, &badReq):
		writeError(w, http.StatusBadRequest, "bad_request", err.Error(), reqID)
	case errors.As(err, &interr):
		writeError(w, http.StatusInternalServerError, "internal", err.Error(), reqID)
	default:
		writeError(w, http.StatusInternalServerError, "other", err.Error(), reqID)
	}
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(v)
}

func decode(w http.ResponseWriter, r *http.Request, v any) bool {
	body := http.MaxBytesReader(w, r.Body, maxBodyBytes)
	dec := json.NewDecoder(body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		obsv.MServerErrors.Add("bad_request", 1)
		writeError(w, http.StatusBadRequest, "bad_request", "decoding request body: "+err.Error(),
			RequestID(r.Context()))
		return false
	}
	return true
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	var req QueryRequest
	if !decode(w, r, &req) {
		return
	}
	if req.Query == "" {
		obsv.MServerErrors.Add("bad_request", 1)
		writeError(w, http.StatusBadRequest, "bad_request", `missing "query"`, RequestID(r.Context()))
		return
	}
	res, err := s.Query(r.Context(), req)
	if err != nil {
		s.writeErr(w, r, err)
		return
	}
	writeJSON(w, res)
}

func (s *Server) handleWrite(w http.ResponseWriter, r *http.Request) {
	var req WriteRequest
	if !decode(w, r, &req) {
		return
	}
	if req.Assert == "" && req.Retract == "" {
		obsv.MServerErrors.Add("bad_request", 1)
		writeError(w, http.StatusBadRequest, "bad_request", `need "assert" and/or "retract"`, RequestID(r.Context()))
		return
	}
	res, err := s.Write(r.Context(), req)
	if err != nil {
		s.writeErr(w, r, err)
		return
	}
	writeJSON(w, res)
}

func (s *Server) handleCheckpoint(w http.ResponseWriter, r *http.Request) {
	res, err := s.Checkpoint(r.Context())
	if err != nil {
		s.writeErr(w, r, err)
		return
	}
	writeJSON(w, res)
}

func (s *Server) handleQueries(w http.ResponseWriter, r *http.Request) {
	qs := s.ActiveQueries()
	if qs == nil {
		qs = []QueryInfo{} // render "queries": [] rather than null
	}
	writeJSON(w, QueriesResponse{Queries: qs, Count: len(qs)})
}

func (s *Server) handleKillQuery(w http.ResponseWriter, r *http.Request) {
	key := r.PathValue("id")
	id, ok := s.KillQuery(key)
	if !ok {
		writeError(w, http.StatusNotFound, "not_found",
			"no in-flight query matches "+strconv.Quote(key), RequestID(r.Context()))
		return
	}
	writeJSON(w, KillResponse{ID: id, Killed: true})
}

func (s *Server) handleSlowlog(w http.ResponseWriter, r *http.Request) {
	recs := s.SlowLog()
	if recs == nil {
		recs = []obsv.RequestRecord{}
	}
	writeJSON(w, SlowlogResponse{Total: s.slow.Total(), Records: recs})
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	snap := s.snap.Load()
	resp := StatsResponse{
		State:         s.State(),
		Epoch:         snap.Epoch,
		InFlight:      len(s.sem),
		Queued:        int(s.queued.Load()),
		ActiveQueries: s.reg.active(),
		SlowQueries:   s.slow.Total(),
	}
	if wl := s.walW.Load(); wl != nil {
		resp.Durable = true
		resp.WALBytes = wl.Size()
		resp.WALRecords = wl.Records()
		resp.CheckpointSeq = s.lastCkptSeq.Load()
	}
	if snap.Mat != nil {
		resp.Materialized = true
		resp.DerivedFacts = snap.Mat.DerivedFacts()
	}
	resp.MaintBatches = s.maintBatches.Load()
	resp.MaintFallbacks = s.maintFallbacks.Load()
	writeJSON(w, resp)
}
