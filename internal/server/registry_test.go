package server

// Per-request observability: the active-query registry's lifecycle and
// kill semantics (unit level and through a live server), the slow-query
// log's capture contract, and the zero-allocation guarantee of the
// tracking machinery on the off path.

import (
	"context"
	"errors"
	"runtime"
	"strconv"
	"strings"
	"testing"
	"time"

	"lincount"
	"lincount/internal/obsv"
	"lincount/internal/workload"
)

func TestRegistryLifecycle(t *testing.T) {
	r := newRegistry(2)
	if got := r.active(); got != 0 {
		t.Fatalf("active = %d, want 0", got)
	}
	deadline := time.Now().Add(time.Second)
	s1 := r.begin("req-1", "?- p(X).", func() {}, deadline)
	s2 := r.begin("req-2", "?- q(X).", func() {}, deadline)
	if s1 == nil || s2 == nil {
		t.Fatal("begin returned nil with free slots")
	}
	if s1.ID() == s2.ID() || s1.ID() == 0 {
		t.Fatalf("ids not unique/nonzero: %d, %d", s1.ID(), s2.ID())
	}
	// Pool exhausted: a third begin degrades to untracked, and every
	// method tolerates the nil slot.
	s3 := r.begin("req-3", "?- r(X).", func() {}, deadline)
	if s3 != nil {
		t.Fatalf("begin with full pool = %v, want nil", s3)
	}
	r.setRunning(s3, "semi-naive", 1)
	if r.end(s3) || r.killed(s3) || s3.ID() != 0 || s3.Facts() != nil {
		t.Fatal("nil slot operations must be inert")
	}

	r.setRunning(s1, "semi-naive", 7)
	s1.Facts().Store(42)
	infos := r.snapshot(time.Now())
	if len(infos) != 2 {
		t.Fatalf("snapshot has %d entries, want 2", len(infos))
	}
	if infos[0].ID != s1.ID() || infos[1].ID != s2.ID() {
		t.Fatalf("snapshot not oldest-first: %+v", infos)
	}
	got := infos[0]
	if got.RequestID != "req-1" || got.Query != "?- p(X)." ||
		got.Strategy != "semi-naive" || got.Epoch != 7 || got.Facts != 42 {
		t.Fatalf("snapshot entry = %+v", got)
	}
	if got.DeadlineInUS <= 0 {
		t.Fatalf("DeadlineInUS = %d, want positive", got.DeadlineInUS)
	}

	if r.end(s1) {
		t.Fatal("end reported killed for an unkilled slot")
	}
	if got := r.active(); got != 1 {
		t.Fatalf("active after end = %d, want 1", got)
	}
	// The freed slot is reusable.
	if s4 := r.begin("req-4", "?- s(X).", func() {}, deadline); s4 == nil {
		t.Fatal("freed slot not reusable")
	}
}

func TestRegistryKill(t *testing.T) {
	r := newRegistry(4)
	canceled := make(chan string, 4)
	mk := func(req string) *qslot {
		return r.begin(req, "?- p(X).", func() { canceled <- req }, time.Time{})
	}
	byNum := mk("alpha")
	byReq := mk("beta")
	mk("gamma")

	// Kill by decimal registry id.
	id, ok := r.kill(strconv.FormatUint(byNum.ID(), 10))
	if !ok || id != byNum.ID() {
		t.Fatalf("kill by id = (%d, %v), want (%d, true)", id, ok, byNum.ID())
	}
	if got := <-canceled; got != "alpha" {
		t.Fatalf("cancel fired for %q, want alpha", got)
	}
	if !r.killed(byNum) {
		t.Fatal("killed flag not set")
	}

	// Kill by request id.
	if id, ok := r.kill("beta"); !ok || id != byReq.ID() {
		t.Fatalf("kill by request id = (%d, %v), want (%d, true)", id, ok, byReq.ID())
	}
	if got := <-canceled; got != "beta" {
		t.Fatalf("cancel fired for %q, want beta", got)
	}

	// No match: unknown key, and a slot already ended.
	if _, ok := r.kill("nope"); ok {
		t.Fatal("kill matched an unknown key")
	}
	if !r.end(byNum) {
		t.Fatal("end lost the killed verdict")
	}
	if _, ok := r.kill(strconv.FormatUint(byNum.ID(), 10)); ok {
		t.Fatal("kill matched a finished query")
	}
}

func TestKilledErrorIdentity(t *testing.T) {
	err := error(&KilledError{ID: 9})
	if !errors.Is(err, ErrKilled) {
		t.Fatal("KilledError does not match ErrKilled")
	}
	if classOf(err) != "killed" {
		t.Fatalf("classOf = %q, want killed", classOf(err))
	}
	if outcomeOf(err) != "killed" {
		t.Fatalf("outcomeOf = %q, want killed", outcomeOf(err))
	}
	if !strings.Contains(err.Error(), "9") {
		t.Fatalf("Error() = %q, want the registry id", err)
	}
}

// TestServerKillQuery drives the kill path end to end at the library
// level: a slow evaluation becomes visible in ActiveQueries (with live
// fact progress), KillQuery cancels it, and the request fails with the
// typed *KilledError while the registry returns to empty.
func TestServerKillQuery(t *testing.T) {
	before := runtime.NumGoroutine()
	p := lincount.MustParseProgram(workload.SGProgram)
	db := lincount.NewDatabase(p)
	if err := db.LoadFacts(workload.Chain(200)); err != nil {
		t.Fatal(err)
	}
	s := newTestServer(t, Config{
		Program: p,
		DB:      db,
		EvalOptions: []lincount.Option{
			lincount.WithFaultInjection(3, "engine.iter=delay~1:10ms"),
		},
	})

	qerr := make(chan error, 1)
	go func() {
		_, err := s.Query(WithRequestID(context.Background(), "victim-1"), QueryRequest{
			Query: "?- sg(u0,Y).", Strategy: "semi-naive", TimeoutMS: 60_000,
		})
		qerr <- err
	}()

	// Wait for the query to show up in the registry, running.
	var info QueryInfo
	deadline := time.Now().Add(5 * time.Second)
	for {
		if qs := s.ActiveQueries(); len(qs) == 1 && qs[0].Strategy != "" {
			info = qs[0]
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("query never appeared in ActiveQueries")
		}
		time.Sleep(time.Millisecond)
	}
	if info.RequestID != "victim-1" || info.Query != "?- sg(u0,Y)." || info.Strategy != "semi-naive" {
		t.Fatalf("registry entry = %+v", info)
	}

	id, ok := s.KillQuery("victim-1")
	if !ok || id != info.ID {
		t.Fatalf("KillQuery = (%d, %v), want (%d, true)", id, ok, info.ID)
	}
	select {
	case err := <-qerr:
		var killed *KilledError
		if !errors.As(err, &killed) || killed.ID != info.ID {
			t.Fatalf("query returned %v, want *KilledError with ID %d", err, info.ID)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("killed query did not unwind")
	}
	if qs := s.ActiveQueries(); len(qs) != 0 {
		t.Fatalf("registry not empty after kill: %+v", qs)
	}
	if err := s.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
	checkGoroutines(t, before)
}

// TestServerSlowLog: with a threshold of 1ns every request is slow; the
// captured record carries the request id, the resolved strategy, the
// planner ranking, and per-rule profiles — without the request asking
// for a trace.
func TestServerSlowLog(t *testing.T) {
	p := lincount.MustParseProgram(workload.SGProgram)
	db := lincount.NewDatabase(p)
	if err := db.LoadFacts(workload.Chain(10)); err != nil {
		t.Fatal(err)
	}
	s := newTestServer(t, Config{Program: p, DB: db, SlowQuery: time.Nanosecond})
	defer s.Close()

	ctx := WithRequestID(context.Background(), "slow-req")
	res, err := s.Query(ctx, QueryRequest{Query: "?- sg(u0,Y).", Strategy: "semi-naive"})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Answers) == 0 {
		t.Fatal("no answers")
	}

	recs := s.SlowLog()
	if len(recs) != 1 {
		t.Fatalf("slowlog has %d records, want 1", len(recs))
	}
	rec := recs[0]
	if rec.RequestID != "slow-req" || rec.Query != "?- sg(u0,Y)." ||
		rec.Strategy != "semi-naive" || rec.Outcome != "ok" || rec.Handler != "query" {
		t.Fatalf("record = %+v", rec)
	}
	if rec.ID == 0 || rec.DurationUS <= 0 {
		t.Fatalf("record missing id/duration: %+v", rec)
	}
	if len(rec.Rules) == 0 {
		t.Fatal("record has no per-rule profiles")
	}
	if len(rec.Planner) == 0 {
		t.Fatal("record has no planner ranking")
	}
	if rec.DerivedFacts <= 0 || rec.AnswerTuples != len(res.Answers) {
		t.Fatalf("record work counters = %+v", rec)
	}

	// A materialized read is also captured (strategy "materialized",
	// no per-rule profiles because nothing evaluated).
	if _, err := s.Query(ctx, QueryRequest{Query: "?- sg(u0,Y)."}); err != nil {
		t.Fatal(err)
	}
	recs = s.SlowLog()
	if len(recs) != 2 || recs[0].Strategy != "materialized" {
		t.Fatalf("slowlog after materialized read = %+v", recs)
	}
	if s.slow.Total() != 2 {
		t.Fatalf("Total = %d, want 2", s.slow.Total())
	}
}

// TestRequestObservabilityZeroAlloc pins the off-path cost of the new
// machinery: registry begin/setRunning/end, a disabled (nil) logger, a
// suppressed (below-level) logger, and the slow-threshold comparison
// must all add zero allocations per request.
func TestRequestObservabilityZeroAlloc(t *testing.T) {
	r := newRegistry(4)
	var nilLog *obsv.Logger
	offLog := obsv.NewLogger(discard{}, "json", obsv.LevelError)
	slowThreshold := 250 * time.Millisecond
	cancel := func() {}
	deadline := time.Now().Add(time.Second)
	start := time.Now()

	allocs := testing.AllocsPerRun(1000, func() {
		slot := r.begin("req", "?- p(X).", cancel, deadline)
		r.setRunning(slot, "materialized", 1)
		slot.Facts().Add(1)
		nilLog.Info("ignored", obsv.FStr("k", "v"))
		offLog.Debug("suppressed", obsv.FInt("n", 1))
		if slowThreshold > 0 && time.Since(start) >= slowThreshold {
			t.Fatal("unexpectedly slow")
		}
		r.end(slot)
	})
	if allocs != 0 {
		t.Fatalf("request tracking allocates %.1f allocs/op, want 0", allocs)
	}
}

type discard struct{}

func (discard) Write(p []byte) (int, error) { return len(p), nil }

// BenchmarkRequestObservabilityOff is the perf-guard form of the
// zero-alloc test: run with -benchmem to see 0 B/op, 0 allocs/op.
func BenchmarkRequestObservabilityOff(b *testing.B) {
	r := newRegistry(4)
	var nilLog *obsv.Logger
	cancel := func() {}
	deadline := time.Now().Add(time.Hour)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		slot := r.begin("req", "?- p(X).", cancel, deadline)
		r.setRunning(slot, "materialized", 1)
		slot.Facts().Add(1)
		nilLog.Info("ignored", obsv.FStr("k", "v"))
		r.end(slot)
	}
}
