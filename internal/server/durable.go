// Durability for the query server: a write-ahead log appended by the
// single-writer goroutine before each epoch publish, checkpoints that
// bound replay time, and boot-time crash recovery.
//
// The ordering invariant is durable-before-visible-before-acked: a
// batch's WAL record is appended (and fsynced, per policy) before the
// new snapshot is stored, which happens before any request in the batch
// is answered. A crash therefore loses no acknowledged write; at worst
// it persists a write whose client never saw the ack (the client's
// context expired while the batch was in flight), which the Write
// contract already declares at-most-once from the caller's view.
//
// Checkpointing is a rendezvous between two goroutines. The
// checkpointer asks the writer to rotate: the writer — idle between
// batches, so no append can race the swap — syncs and closes the live
// segment, installs a fresh one named for the current epoch, and hands
// back the epoch plus its immutable database. The checkpointer then
// writes the LCDB2 snapshot and the manifest at its leisure, concurrent
// with new writes landing in the fresh segment, and finally deletes the
// superseded segments and snapshots. A crash at any point leaves a
// recoverable directory: before the manifest swap the old
// snapshot+segments chain is intact (recovery also replays segments the
// manifest has never heard of); after it the new pair is.
//
// Recovery runs before the server accepts traffic: load the manifest's
// snapshot, replay the manifest's segment and every higher-numbered
// one in order — all but the last with a strict tail, because rotation
// syncs and closes them — and resume appending to the last segment at
// its intact prefix. Sequence numbers are epoch numbers and every
// published epoch logs exactly one record, so recovery insists the
// replayed chain is gapless; a hole means an acknowledged write went
// missing and the server refuses to start rather than serve it.
package server

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"lincount"
	"lincount/internal/faultinject"
	"lincount/internal/obsv"
	"lincount/internal/wal"
)

// ErrNotDurable is returned by Checkpoint when the server runs without
// a data directory.
var ErrNotDurable = errors.New("server: not durable (no data directory configured)")

// RecoveryInfo summarizes what boot-time recovery rebuilt.
type RecoveryInfo struct {
	// Epoch is the recovered epoch (manifest seq plus replayed records).
	Epoch uint64
	// CheckpointSeq is the manifest's epoch (0 when no checkpoint existed).
	CheckpointSeq uint64
	// Records is how many WAL records were replayed on top of the
	// checkpoint snapshot.
	Records int
	// TruncatedBytes is the size of the torn tail dropped from the live
	// segment (0 after a clean shutdown).
	TruncatedBytes int64
	// Segments is how many segment files were replayed.
	Segments int
}

// CheckpointResult reports one completed checkpoint.
type CheckpointResult struct {
	// Epoch is the epoch the snapshot captured.
	Epoch uint64 `json:"epoch"`
	// Snapshot is the snapshot's file name inside the data directory.
	Snapshot string `json:"snapshot"`
	// Skipped reports that no epoch was published since the previous
	// checkpoint, so nothing was written.
	Skipped bool `json:"skipped,omitempty"`
}

// rotateReq asks the writer goroutine to swap in a fresh WAL segment.
type rotateReq struct {
	reply chan rotateReply // buffered; the writer always answers exactly once
}

type rotateReply struct {
	epoch   uint64
	db      *lincount.Database
	segment string // live segment's file name after the swap
	err     error
}

// ckptCall is one admin-triggered checkpoint waiting on the checkpointer.
type ckptCall struct {
	reply chan ckptReply // buffered
}

type ckptReply struct {
	res *CheckpointResult
	err error
}

func (c *Config) walOptions() wal.Options {
	return wal.Options{Sync: c.WALSync, Interval: c.WALSyncInterval, Inject: c.Inject}
}

// recoverData rebuilds the database state from cfg.DataDir: manifest
// snapshot, then WAL replay, then a writer resumed on the live segment.
// The base database is mutated in place (the server owns it). Called
// from New before the snapshot is published, so no reader can observe a
// half-replayed state.
func recoverData(c *Config, base *lincount.Database) (*wal.Writer, RecoveryInfo, error) {
	var info RecoveryInfo
	dir := c.DataDir
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, info, fmt.Errorf("server: creating data dir: %w", err)
	}
	m, err := wal.ReadManifest(dir)
	if err != nil {
		return nil, info, err
	}

	var chainSeq uint64
	firstSegSeq := uint64(0)
	if m != nil {
		f, err := os.Open(filepath.Join(dir, m.Snapshot))
		if err != nil {
			return nil, info, fmt.Errorf("server: opening checkpoint snapshot: %w", err)
		}
		err = base.LoadSnapshot(f)
		f.Close()
		if err != nil {
			return nil, info, fmt.Errorf("server: loading checkpoint snapshot %s: %w", m.Snapshot, err)
		}
		chainSeq = m.Seq
		info.CheckpointSeq = m.Seq
		firstSegSeq, _ = wal.SegmentSeq(m.Segment) // validated by ReadManifest
	}

	segs, err := wal.ListSegments(dir)
	if err != nil {
		return nil, info, err
	}
	// Segments below the manifest's are superseded leftovers of a crash
	// mid-cleanup; segments at or above it (including ones a crash left
	// unmentioned between rotation and manifest write) are the live chain.
	live := segs[:0]
	for _, seg := range segs {
		if seg.Seq >= firstSegSeq {
			live = append(live, seg)
		}
	}
	if m != nil {
		if len(live) == 0 || live[0].Name != m.Segment {
			return nil, info, fmt.Errorf("server: manifest names segment %s but it is missing from %s", m.Segment, dir)
		}
	}

	replayOne := func(rec wal.Record) error {
		if err := c.Inject.Hit(faultinject.SiteWALReplay); err != nil {
			return err
		}
		if rec.Seq != chainSeq+1 {
			return fmt.Errorf("server: recovery found an epoch gap (record %d after %d): acknowledged writes are missing", rec.Seq, chainSeq)
		}
		// Replay the epoch's op frame through the same sequential
		// application path the live write path uses (and maintenance
		// mirrors), so recovered and live state cannot drift.
		ops := make([]lincount.WriteOp, len(rec.Ops))
		for i, op := range rec.Ops {
			ops[i] = lincount.WriteOp{Retract: op.Retract, Text: op.Text}
		}
		if _, err := applySequential(base, ops); err != nil {
			return fmt.Errorf("server: replaying epoch %d: %w", rec.Seq, err)
		}
		chainSeq = rec.Seq
		return nil
	}

	var lastRes *wal.ReplayResult
	for i, seg := range live {
		// Rotation-boundary continuity: a segment is created at the epoch
		// current when its predecessor was retired, so its number must
		// equal the chain seq reached so far (the manifest's own segment
		// may predate the checkpoint when empty rotations were skipped).
		if i > 0 && seg.Seq != chainSeq {
			return nil, info, fmt.Errorf("server: recovery found a segment gap (%s after epoch %d): acknowledged writes are missing", seg.Name, chainSeq)
		}
		strict := i < len(live)-1 // only the live tail may legally tear
		res, err := wal.ReplayFile(filepath.Join(dir, seg.Name), chainSeq, strict, replayOne)
		if err != nil {
			return nil, info, err
		}
		info.Records += res.Records
		info.Segments++
		lastRes = res
	}
	obsv.MWALRecoveryRecords.Add(int64(info.Records))
	info.Epoch = chainSeq

	var w *wal.Writer
	if len(live) == 0 {
		w, err = wal.Create(filepath.Join(dir, wal.SegmentName(chainSeq)), c.walOptions())
	} else {
		last := live[len(live)-1]
		if lastRes.TornBytes > 0 {
			info.TruncatedBytes = lastRes.TornBytes
			obsv.MWALRecoveryTruncated.Add(lastRes.TornBytes)
		}
		w, err = wal.OpenAt(filepath.Join(dir, last.Name), lastRes.GoodSize, lastRes.Records, c.walOptions())
	}
	if err != nil {
		return nil, info, err
	}
	return w, info, nil
}

// Recovery returns what boot-time recovery rebuilt (the zero value when
// the server is not durable or the directory was fresh).
func (s *Server) Recovery() RecoveryInfo { return s.recovered }

// Durable reports whether the server writes a WAL.
func (s *Server) Durable() bool { return s.walW.Load() != nil }

// walAppend logs one batch's operations as the record for epoch seq.
// Returns nil immediately when the server is not durable.
func (s *Server) walAppend(seq uint64, batch []writeReq, failed []error) error {
	w := s.walW.Load()
	if w == nil {
		return nil
	}
	// The record frames exactly the op stream maintenance consumed (see
	// batchOps): live maintenance and recovery replay share one input.
	var ops []wal.Op
	for i, wr := range batch {
		if failed[i] != nil {
			continue
		}
		for _, op := range reqWriteOps(wr.req) {
			ops = append(ops, wal.Op{Retract: op.Retract, Text: op.Text})
		}
	}
	return w.Append(wal.Record{Seq: seq, Ops: ops})
}

// maybeKickCheckpoint nudges the checkpointer when the live segment has
// outgrown the configured thresholds. Called by the writer after each
// publish; non-blocking, so a checkpoint already in progress simply
// absorbs the kick.
func (s *Server) maybeKickCheckpoint() {
	w := s.walW.Load()
	if w == nil {
		return
	}
	overBytes := s.cfg.CheckpointBytes > 0 && w.Size() >= s.cfg.CheckpointBytes
	overRecords := s.cfg.CheckpointRecords > 0 && w.Records() >= s.cfg.CheckpointRecords
	if !overBytes && !overRecords {
		return
	}
	select {
	case s.ckptKick <- struct{}{}:
	default:
	}
}

// rotate is executed by the writer goroutine between batches: it swaps
// in a fresh segment named for the current epoch and hands the
// checkpointer the epoch plus its immutable database. When no record
// has landed since the last rotation the live segment is reused — a new
// one would collide with its name and checkpoint nothing new.
func (s *Server) rotate(rr rotateReq) {
	cur := s.snap.Load()
	old := s.walW.Load()
	if old.Records() == 0 {
		rr.reply <- rotateReply{epoch: cur.Epoch, db: cur.DB, segment: filepath.Base(old.Path())}
		return
	}
	// Seal the outgoing segment first: rotated segments are replayed with
	// a strict tail, so they must be whole at rest.
	if err := old.Sync(); err != nil {
		rr.reply <- rotateReply{err: err}
		return
	}
	next, err := wal.Create(filepath.Join(s.cfg.DataDir, wal.SegmentName(cur.Epoch)), s.cfg.walOptions())
	if err != nil {
		rr.reply <- rotateReply{err: err}
		return
	}
	s.walW.Store(next)
	old.Close()
	rr.reply <- rotateReply{epoch: cur.Epoch, db: cur.DB, segment: filepath.Base(next.Path())}
}

// checkpointer is the checkpoint goroutine: it serializes admin-
// triggered and threshold-triggered checkpoints, performing the slow
// parts (snapshot save, manifest swap, cleanup) off the writer's path.
func (s *Server) checkpointer() {
	defer close(s.ckptDone)
	for {
		select {
		case <-s.ckptStop:
			return
		case call := <-s.ckptC:
			res, err := s.doCheckpoint()
			call.reply <- ckptReply{res: res, err: err}
		case <-s.ckptKick:
			if _, err := s.doCheckpoint(); err != nil && !errors.Is(err, ErrDraining) {
				obsv.MWALCheckpointErrors.Add(1)
			}
		}
	}
}

// doCheckpoint rotates the log, saves the rotated-out state as a
// snapshot, swaps the manifest, and deletes superseded files. An
// injected wal.checkpoint fault (or any I/O failure) aborts after the
// rotation: the manifest still names the old pair, and recovery replays
// the new segment on top of it, so an aborted checkpoint costs only the
// orphaned temp file it may leave.
func (s *Server) doCheckpoint() (*CheckpointResult, error) {
	start := time.Now()
	rr := rotateReq{reply: make(chan rotateReply, 1)}
	select {
	case s.rotateC <- rr:
	case <-s.writerDone:
		return nil, ErrDraining
	}
	rep := <-rr.reply
	if rep.err != nil {
		obsv.MWALCheckpointErrors.Add(1)
		return nil, fmt.Errorf("server: checkpoint rotation: %w", rep.err)
	}
	if rep.epoch == s.lastCkptSeq.Load() {
		return &CheckpointResult{Epoch: rep.epoch, Skipped: true}, nil
	}

	snapName, err := s.writeCheckpointSnapshot(rep.epoch, rep.db)
	if err != nil {
		obsv.MWALCheckpointErrors.Add(1)
		return nil, err
	}
	if err := wal.WriteManifest(s.cfg.DataDir, wal.Manifest{
		Seq:      rep.epoch,
		Snapshot: snapName,
		Segment:  rep.segment,
	}); err != nil {
		obsv.MWALCheckpointErrors.Add(1)
		return nil, err
	}
	s.lastCkptSeq.Store(rep.epoch)
	s.cleanupData(rep.epoch, snapName, rep.segment)
	obsv.MWALCheckpoints.Add(1)
	obsv.MWALCheckpointSeconds.Observe(time.Since(start).Seconds())
	s.cfg.Log.Info("checkpoint",
		obsv.FUint("epoch", rep.epoch),
		obsv.FStr("snapshot", snapName),
		obsv.FDur("duration", time.Since(start)))
	return &CheckpointResult{Epoch: rep.epoch, Snapshot: snapName}, nil
}

// writeCheckpointSnapshot saves db as the epoch's snapshot file,
// rename-atomically.
func (s *Server) writeCheckpointSnapshot(epoch uint64, db *lincount.Database) (string, error) {
	if err := s.cfg.Inject.Hit(faultinject.SiteWALCheckpoint); err != nil {
		return "", err
	}
	name := wal.SnapshotFileName(epoch)
	path := filepath.Join(s.cfg.DataDir, name)
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return "", fmt.Errorf("server: writing checkpoint snapshot: %w", err)
	}
	if err := db.Save(f); err != nil {
		f.Close()
		os.Remove(tmp)
		return "", fmt.Errorf("server: writing checkpoint snapshot: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return "", fmt.Errorf("server: syncing checkpoint snapshot: %w", err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return "", fmt.Errorf("server: closing checkpoint snapshot: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return "", fmt.Errorf("server: publishing checkpoint snapshot: %w", err)
	}
	return name, nil
}

// cleanupData deletes segments and snapshots superseded by the
// checkpoint at epoch. Deletion failures are ignored: stale files cost
// disk, not correctness (recovery filters below the manifest's segment).
func (s *Server) cleanupData(epoch uint64, keepSnap, keepSeg string) {
	entries, err := os.ReadDir(s.cfg.DataDir)
	if err != nil {
		return
	}
	for _, e := range entries {
		name := e.Name()
		if name == keepSnap || name == keepSeg || name == wal.ManifestName {
			continue
		}
		if seq, ok := wal.SegmentSeq(name); ok && seq < epoch {
			os.Remove(filepath.Join(s.cfg.DataDir, name))
		}
		if len(name) > 5 && name[:5] == "snap-" && name != keepSnap {
			os.Remove(filepath.Join(s.cfg.DataDir, name))
		}
	}
}

// Checkpoint triggers a checkpoint and waits for it: rotate the WAL,
// snapshot the rotated-out state, swap the manifest, delete superseded
// files. Safe to call concurrently (the checkpointer serializes);
// returns ErrNotDurable without a data directory and ErrDraining once a
// drain has begun. Registered as in-flight so Drain waits for a
// checkpoint already underway.
func (s *Server) Checkpoint(ctx context.Context) (*CheckpointResult, error) {
	if !s.Durable() {
		return nil, fail(ErrNotDurable)
	}
	if err := s.begin(); err != nil {
		return nil, fail(err)
	}
	defer s.inflight.Done()
	ctx, _, stop := s.requestCtx(ctx, 0)
	defer stop()

	call := ckptCall{reply: make(chan ckptReply, 1)}
	select {
	case s.ckptC <- call:
	case <-ctx.Done():
		return nil, fail(&lincount.CanceledError{Component: "server", Cause: context.Cause(ctx)})
	}
	select {
	case rep := <-call.reply:
		if rep.err != nil {
			return nil, fail(rep.err)
		}
		return rep.res, nil
	case <-ctx.Done():
		// The checkpointer still completes the checkpoint; only this
		// caller stops waiting for it.
		return nil, fail(&lincount.CanceledError{Component: "server", Cause: context.Cause(ctx)})
	}
}
