// Package server implements lincountd's resident query server: a
// long-lived process that holds one loaded Program plus a Database and
// serves many concurrent prepared-query evaluations over HTTP/JSON.
//
// The design is MVCC with a single writer. Reads never lock anything:
// every request loads the current Snapshot (an epoch number plus an
// immutable Database) from an atomic pointer and evaluates against it.
// Writes funnel through one batching writer goroutine that forks the
// current snapshot copy-on-write (Database.Fork), applies a coalesced
// batch of asserts/retracts to the fork, and publishes the fork
// atomically as the next epoch — so a reader observes either all of a
// batch or none of it, never a half-applied state.
//
// Robustness is the point, not throughput:
//
//   - Admission control: a concurrency semaphore with a bounded wait
//     queue. When both are full the request is shed immediately with a
//     typed BusyError (HTTP 503) instead of queueing unboundedly.
//   - Per-request deadlines and fact budgets, inherited from the
//     context/ResourceLimitError machinery the evaluators already honor.
//   - Panic containment per request: the Eval boundary already recovers
//     evaluator panics into InternalError; the HTTP layer adds a second
//     recover so even a handler bug cannot take the process down.
//   - Retry with backoff on retryable write failures (injected faults,
//     per the degradation taxonomy), re-applying the batch to a fresh
//     fork each attempt — a failed attempt leaves no trace.
//   - Graceful drain: stop admitting, finish in-flight requests within a
//     deadline, cancel cooperatively past it, then stop the writer; zero
//     goroutines outlive Drain.
//
// Fault injection reaches the write path through two dedicated sites
// (faultinject.SiteServerApply, faultinject.SiteServerPublish) so the
// chaos suite can hammer a live server and assert snapshot isolation.
package server

import (
	"context"
	"errors"
	"fmt"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"

	"lincount"
	"lincount/internal/faultinject"
	"lincount/internal/obsv"
	"lincount/internal/wal"
)

// Config parameterizes a Server. The zero value of every limit field
// selects a sane default; Program and DB are required.
type Config struct {
	// Program is the loaded program all queries evaluate against.
	Program *lincount.Program
	// DB is the initial database. Ownership passes to the server: the
	// caller must not write to it after New (reads would race the write
	// path's forks).
	DB *lincount.Database

	// MaxConcurrent bounds simultaneously evaluating read requests
	// (default 16).
	MaxConcurrent int
	// MaxQueue bounds read requests waiting for a concurrency slot;
	// beyond it requests are shed with BusyError (default 64).
	MaxQueue int
	// WriteQueue bounds write requests waiting for the writer goroutine;
	// beyond it writes are shed with BusyError (default 256).
	WriteQueue int
	// MaxBatch bounds write requests coalesced into one epoch (default 64).
	MaxBatch int
	// WriteRetries is how many times a retryably failing batch apply is
	// retried before the batch's requests fail (default 3).
	WriteRetries int
	// RetryBackoff is the first retry's backoff, doubling per attempt
	// (default 1ms).
	RetryBackoff time.Duration

	// DefaultTimeout is applied to requests that carry no deadline of
	// their own (default 10s). MaxTimeout clamps requested deadlines
	// (default 60s).
	DefaultTimeout time.Duration
	MaxTimeout     time.Duration
	// MaxDerivedFacts is the per-request derived-fact budget when the
	// request does not set a smaller one (default 10,000,000; 0 keeps
	// the default, use -1 for unlimited).
	MaxDerivedFacts int

	// DataDir, when set, makes the server durable: writes are logged to
	// a WAL under this directory before they become visible, and New
	// recovers the directory's checkpoint+log state before serving. The
	// recovered state is applied ON TOP of DB, so when a manifest exists
	// the caller should pass a database without preloaded facts (loading
	// them again would resurrect ones later retracted). Empty means
	// in-memory only — the pre-durability behavior.
	DataDir string
	// WALSync is the WAL fsync policy (default wal.SyncAlways);
	// WALSyncInterval is the flush lag under wal.SyncInterval.
	WALSync         wal.SyncPolicy
	WALSyncInterval time.Duration
	// CheckpointBytes and CheckpointRecords are the live-segment size and
	// record-count thresholds past which a checkpoint is triggered
	// automatically (defaults 8MiB and 4096; negative disables the
	// threshold).
	CheckpointBytes   int64
	CheckpointRecords int

	// Inject, when non-nil, arms the server-side fault sites
	// (server.write, server.publish, and the wal.* sites when durable) —
	// the chaos harness's hook. Production servers leave it nil and pay
	// one pointer comparison.
	Inject *faultinject.Injector
	// EvalOptions are appended to every evaluation (chaos tests pass
	// WithFaultInjection here to perturb the read path).
	EvalOptions []lincount.Option

	// SlowQuery is the latency threshold past which a completed query is
	// captured in the slow-query log with its full diagnostic record —
	// planner ranking, per-rule profiles, degradation chain, queue wait —
	// and logged at warn level. Zero disables the slow log; requests
	// under the threshold pay one time comparison.
	SlowQuery time.Duration
	// SlowLogSize bounds the slow-query ring (default 256).
	SlowLogSize int
	// Log receives the server's structured log lines (request outcomes,
	// writer-path events, recovery, drain). Nil disables logging — every
	// method of a nil *obsv.Logger is a no-op.
	Log *obsv.Logger
}

func (c *Config) withDefaults() Config {
	out := *c
	if out.MaxConcurrent <= 0 {
		out.MaxConcurrent = 16
	}
	if out.MaxQueue < 0 {
		out.MaxQueue = 0
	} else if out.MaxQueue == 0 {
		out.MaxQueue = 64
	}
	if out.WriteQueue <= 0 {
		out.WriteQueue = 256
	}
	if out.MaxBatch <= 0 {
		out.MaxBatch = 64
	}
	if out.WriteRetries < 0 {
		out.WriteRetries = 0
	} else if out.WriteRetries == 0 {
		out.WriteRetries = 3
	}
	if out.RetryBackoff <= 0 {
		out.RetryBackoff = time.Millisecond
	}
	if out.DefaultTimeout <= 0 {
		out.DefaultTimeout = 10 * time.Second
	}
	if out.MaxTimeout <= 0 {
		out.MaxTimeout = 60 * time.Second
	}
	if out.MaxDerivedFacts == 0 {
		out.MaxDerivedFacts = 10_000_000
	}
	if out.CheckpointBytes == 0 {
		out.CheckpointBytes = 8 << 20
	}
	if out.CheckpointRecords == 0 {
		out.CheckpointRecords = 4096
	}
	if out.SlowLogSize <= 0 {
		out.SlowLogSize = 256
	}
	return out
}

// Snapshot is one published epoch: an immutable database plus its
// sequence number. Readers evaluate against the snapshot they loaded at
// admission; the epoch is echoed in responses so clients can reason
// about read-your-writes.
type Snapshot struct {
	Epoch uint64
	DB    *lincount.Database
	// Mat is the epoch's incrementally maintained materialisation, kept
	// in lockstep with DB by the writer goroutine. Nil when the program
	// is outside the maintainable fragment (negation) or when the
	// initial materialisation failed — reads then evaluate per request
	// as before.
	Mat *lincount.Materialization
}

// ErrBusy is the sentinel every admission-control rejection matches:
// errors.Is(err, ErrBusy) reports the server shed the request because
// the concurrency semaphore and its wait queue (or the write queue)
// were full. Busy errors are retryable by the client after backoff.
var ErrBusy = errors.New("server: too busy")

// BusyError is the structured load-shedding error: the admission state
// at the moment the request was shed. It matches errors.Is(err, ErrBusy).
type BusyError struct {
	// InFlight and Queued are the admission gauges at shed time.
	InFlight, Queued int
	// Write reports whether the write queue (rather than the read
	// semaphore) was the full resource.
	Write bool
}

func (e *BusyError) Error() string {
	if e.Write {
		return fmt.Sprintf("server: too busy (write queue full, %d in flight)", e.InFlight)
	}
	return fmt.Sprintf("server: too busy (%d in flight, %d queued)", e.InFlight, e.Queued)
}

// Is makes errors.Is(err, ErrBusy) report true.
func (e *BusyError) Is(target error) bool { return target == ErrBusy }

// ErrDraining is returned to requests that arrive after a drain began
// (or after Close). Clients should fail over to another replica.
var ErrDraining = errors.New("server: draining")

// server lifecycle states, guarded by stateMu.
const (
	stateServing = iota
	stateDraining
	stateClosed
)

// Server is a running query server. Create with New, serve its Handler,
// stop with Drain (graceful) or Close (immediate).
type Server struct {
	cfg  Config
	snap atomic.Pointer[Snapshot]

	// Admission control: sem holds one token per evaluating request;
	// queued counts requests waiting for a token, bounded by MaxQueue.
	sem    chan struct{}
	queued atomic.Int64

	// Lifecycle: state transitions serving → draining → closed under
	// stateMu; requests take the read lock to check the state and join
	// the in-flight WaitGroup atomically with respect to Drain.
	stateMu  sync.RWMutex
	state    int
	inflight sync.WaitGroup

	// baseCtx is canceled (with cause) to force-cancel in-flight
	// requests when the drain deadline expires.
	baseCtx    context.Context
	baseCancel context.CancelCauseFunc

	// The single-writer path: Write requests enqueue on writes; the
	// writer goroutine coalesces, applies, publishes, and answers.
	writes     chan writeReq
	writerDone chan struct{}

	// Durability (nil/zero when Config.DataDir is empty). walW is the
	// live WAL segment writer, swapped by rotation; rotateC carries the
	// checkpointer's rotation rendezvous to the writer goroutine; ckptC
	// and ckptKick feed the checkpointer goroutine (admin calls and
	// threshold nudges); ckptStop/ckptDone bound its lifetime.
	walW        atomic.Pointer[wal.Writer]
	rotateC     chan rotateReq
	ckptC       chan ckptCall
	ckptKick    chan struct{}
	ckptStop    chan struct{}
	ckptDone    chan struct{}
	lastCkptSeq atomic.Uint64
	recovered   RecoveryInfo

	// Maintenance gauges for /v1/stats: batches applied through the
	// incremental engine and batches that fell back to base apply plus
	// re-materialisation.
	maintBatches   atomic.Int64
	maintFallbacks atomic.Int64

	// prepared caches PreparedQuery by (query, strategy). Prepared
	// queries are immutable and DB-independent (plans are pure functions
	// of program x query x strategy), so one entry serves every epoch.
	prepMu   sync.Mutex
	prepared map[prepKey]*lincount.PreparedQuery

	// Per-request observability: reg tracks in-flight queries (GET
	// /v1/queries, DELETE /v1/queries/{id}); slow is the slow-query ring
	// behind GET /v1/debug/slowlog.
	reg  *registry
	slow *obsv.RequestLog
}

// badRequestError wraps validation failures (unparsable query or fact
// text, unknown strategy) — the client's fault, mapped to HTTP 400.
type badRequestError struct{ err error }

func (e *badRequestError) Error() string { return e.err.Error() }
func (e *badRequestError) Unwrap() error { return e.err }

// classOf maps a request error to its metrics label (the "class" label
// of lincount_server_errors_total) — the server-side degradation
// taxonomy: shed, refused, canceled, over budget, bug, bad input, other.
func classOf(err error) string {
	var interr *lincount.InternalError
	var badReq *badRequestError
	switch {
	case errors.As(err, &badReq):
		return "bad_request"
	case errors.Is(err, ErrBusy):
		return "busy"
	case errors.Is(err, ErrDraining):
		return "draining"
	case errors.Is(err, ErrKilled):
		return "killed"
	case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
		return "canceled"
	case errors.Is(err, lincount.ErrResourceLimit):
		return "limit"
	case errors.As(err, &interr):
		return "internal"
	default:
		return "other"
	}
}

// fail counts err into the error metrics and returns it — every public
// entry point's single exit for failures.
func fail(err error) error {
	obsv.MServerErrors.Add(classOf(err), 1)
	return err
}

// outcomeOf maps a request's final error to the outcome label of
// lincount_request_duration_seconds.
func outcomeOf(err error) string {
	switch {
	case err == nil:
		return "ok"
	case errors.Is(err, ErrBusy), errors.Is(err, ErrDraining):
		return "shed"
	case errors.Is(err, ErrKilled):
		return "killed"
	case errors.Is(err, context.DeadlineExceeded):
		return "timeout"
	default:
		return "error"
	}
}

type prepKey struct {
	query    string
	strategy lincount.Strategy
}

// preparedCacheCap bounds the server's prepared-query map; past it the
// map is dropped wholesale (entries are cheap to rebuild — the plans
// behind them stay in the program's LRU plan cache).
const preparedCacheCap = 4096

// New starts a server over cfg: the initial snapshot is published and
// the writer goroutine is running. With Config.DataDir set, the data
// directory's checkpoint and WAL are recovered first — the published
// snapshot already contains every replayed write, and its epoch resumes
// where the log left off — so by the time New returns no client can
// observe a pre-recovery state. The server is serving immediately;
// attach Handler to an http.Server to expose it.
func New(cfg Config) (*Server, error) {
	if cfg.Program == nil || cfg.DB == nil {
		return nil, errors.New("server: Config.Program and Config.DB are required")
	}
	c := cfg.withDefaults()
	baseCtx, baseCancel := context.WithCancelCause(context.Background())
	s := &Server{
		cfg:        c,
		sem:        make(chan struct{}, c.MaxConcurrent),
		baseCtx:    baseCtx,
		baseCancel: baseCancel,
		writes:     make(chan writeReq, c.WriteQueue),
		writerDone: make(chan struct{}),
		prepared:   make(map[prepKey]*lincount.PreparedQuery),
		reg:        newRegistry(c.MaxConcurrent),
		slow:       obsv.NewRequestLog(c.SlowLogSize),
	}
	epoch := uint64(0)
	if c.DataDir != "" {
		w, info, err := recoverData(&c, c.DB)
		if err != nil {
			c.Log.Error("recovery failed", obsv.FStr("dir", c.DataDir), obsv.FErr("error", err))
			return nil, err
		}
		c.Log.Info("recovered data dir",
			obsv.FStr("dir", c.DataDir),
			obsv.FUint("epoch", info.Epoch),
			obsv.FUint("checkpoint_seq", info.CheckpointSeq),
			obsv.FInt("segments", int64(info.Segments)),
			obsv.FInt("records_replayed", int64(info.Records)),
			obsv.FInt("truncated_bytes", info.TruncatedBytes))
		s.walW.Store(w)
		s.recovered = info
		s.lastCkptSeq.Store(info.CheckpointSeq)
		epoch = info.Epoch
		s.rotateC = make(chan rotateReq)
		s.ckptC = make(chan ckptCall)
		s.ckptKick = make(chan struct{}, 1)
		s.ckptStop = make(chan struct{})
		s.ckptDone = make(chan struct{})
	}
	// Materialise the recovered state once; every subsequent epoch is
	// maintained incrementally by the writer from the same ordered op
	// stream the WAL frames. Programs outside the maintainable fragment
	// (ErrNotIncremental) — or any materialisation failure — downgrade
	// to per-request evaluation rather than failing startup.
	var mat *lincount.Materialization
	if m, err := c.Program.Materialize(baseCtx, c.DB); err == nil {
		mat = m
	}
	s.snap.Store(&Snapshot{Epoch: epoch, DB: c.DB, Mat: mat})
	obsv.MServerEpoch.Set(int64(epoch))
	c.Log.Info("server started",
		obsv.FUint("epoch", epoch),
		obsv.FBool("materialized", mat != nil),
		obsv.FBool("durable", c.DataDir != ""),
		obsv.FInt("max_concurrent", int64(c.MaxConcurrent)),
		obsv.FDur("slow_query", c.SlowQuery))
	go s.writer()
	if c.DataDir != "" {
		go s.checkpointer()
	}
	return s, nil
}

// Snapshot returns the currently published epoch. The database inside is
// immutable; it is safe to evaluate against it indefinitely (later
// epochs share its storage copy-on-write).
func (s *Server) Snapshot() Snapshot { return *s.snap.Load() }

// State returns the lifecycle state as a readiness string: "serving",
// "draining" or "closed".
func (s *Server) State() string {
	s.stateMu.RLock()
	defer s.stateMu.RUnlock()
	switch s.state {
	case stateServing:
		return "serving"
	case stateDraining:
		return "draining"
	default:
		return "closed"
	}
}

// begin registers a request as in-flight, failing with ErrDraining once
// a drain has begun. The read lock orders the WaitGroup Add against
// Drain's state flip, so Drain's Wait always covers every admitted
// request and never races an Add.
func (s *Server) begin() error {
	s.stateMu.RLock()
	defer s.stateMu.RUnlock()
	if s.state != stateServing {
		return ErrDraining
	}
	s.inflight.Add(1)
	return nil
}

// acquire takes a concurrency slot, waiting in the bounded queue when
// the semaphore is full and shedding with BusyError when the queue is
// full too. The wait respects ctx, so a queued request's deadline keeps
// counting while it waits.
func (s *Server) acquire(ctx context.Context) error {
	select {
	case s.sem <- struct{}{}:
		return nil
	default:
	}
	for {
		q := s.queued.Load()
		if q >= int64(s.cfg.MaxQueue) {
			obsv.MServerShed.Add(1)
			return &BusyError{InFlight: len(s.sem), Queued: int(q)}
		}
		if s.queued.CompareAndSwap(q, q+1) {
			break
		}
	}
	obsv.MServerQueued.Add(1)
	defer func() {
		s.queued.Add(-1)
		obsv.MServerQueued.Add(-1)
	}()
	select {
	case s.sem <- struct{}{}:
		return nil
	case <-ctx.Done():
		return &lincount.CanceledError{Component: "server", Cause: context.Cause(ctx)}
	}
}

func (s *Server) release() { <-s.sem }

// requestCtx derives the evaluation context for one request: the
// caller's context, the request deadline (clamped to MaxTimeout,
// defaulted to DefaultTimeout), and the server's base context so a
// drain-deadline force-cancel reaches every in-flight evaluation. The
// middle return is the context's own cancel func — the registry stores
// it as the kill lever for DELETE /v1/queries/{id}, avoiding a wrapper
// context per request. The last return (stop) must be deferred.
func (s *Server) requestCtx(ctx context.Context, timeout time.Duration) (context.Context, context.CancelFunc, func()) {
	if timeout <= 0 || timeout > s.cfg.MaxTimeout {
		if timeout > s.cfg.MaxTimeout {
			timeout = s.cfg.MaxTimeout
		} else {
			timeout = s.cfg.DefaultTimeout
		}
	}
	ctx, cancel := context.WithTimeout(ctx, timeout)
	stopAfter := context.AfterFunc(s.baseCtx, cancel)
	return ctx, cancel, func() {
		stopAfter()
		cancel()
	}
}

// QueryRequest is one read: a query evaluated against the snapshot
// current at admission time.
type QueryRequest struct {
	// Query is the goal text, e.g. "?- sg(a,X).".
	Query string `json:"query"`
	// Strategy names the evaluation strategy ("" = auto).
	Strategy string `json:"strategy,omitempty"`
	// TimeoutMS bounds the request (0 = server default; clamped to the
	// server max).
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
	// MaxFacts bounds derived facts for this request (0 = server
	// default; requests can lower the budget, never raise it past the
	// server's).
	MaxFacts int `json:"max_facts,omitempty"`
	// Trace records a structured trace of this evaluation and publishes
	// it at /trace.json.
	Trace bool `json:"trace,omitempty"`
}

// QueryStats is the response's work summary (a subset of lincount.Stats).
type QueryStats struct {
	Inferences   int64 `json:"inferences"`
	DerivedFacts int64 `json:"derived_facts"`
	Probes       int64 `json:"probes"`
	Iterations   int   `json:"iterations"`
	AnswerTuples int   `json:"answer_tuples,omitempty"`
	DurationUS   int64 `json:"duration_us"`
}

// QueryResponse is one read's answer set plus provenance: the epoch it
// was served from and the concrete strategy that produced it.
type QueryResponse struct {
	Answers      [][]string `json:"answers"`
	Epoch        uint64     `json:"epoch"`
	Strategy     string     `json:"strategy"`
	PlanCacheHit bool       `json:"plan_cache_hit"`
	Degraded     int        `json:"degraded,omitempty"`
	Stats        QueryStats `json:"stats"`
}

// Query evaluates one read request against the current snapshot. It
// applies admission control, the request deadline and fact budget, and
// returns typed errors: BusyError (shed), ErrDraining, CanceledError,
// ResourceLimitError, or the evaluation's own error.
func (s *Server) Query(ctx context.Context, req QueryRequest) (resp *QueryResponse, err error) {
	if err = s.begin(); err != nil {
		return nil, fail(err)
	}
	defer s.inflight.Done()

	start := time.Now()
	obsv.MServerInFlight.Add(1)
	defer obsv.MServerInFlight.Add(-1)
	defer func() {
		obsv.MServerReqDuration.Observe("query", outcomeOf(err), time.Since(start).Seconds())
	}()

	ctx, cancel, stop := s.requestCtx(ctx, time.Duration(req.TimeoutMS)*time.Millisecond)
	defer stop()
	if err = s.acquire(ctx); err != nil {
		return nil, fail(err)
	}
	defer s.release()
	queueWait := time.Since(start)
	obsv.MServerQueueWait.Observe(queueWait.Seconds())

	// Register the admitted query in the active-query registry. The slot
	// holds the request context's own cancel func, so DELETE
	// /v1/queries/{id} stops the evaluation without a wrapper context;
	// registering after admission keeps the fixed slot pool (sized by
	// MaxConcurrent) from ever running dry.
	reqID := RequestID(ctx)
	deadline, _ := ctx.Deadline()
	slot := s.reg.begin(reqID, req.Query, cancel, deadline)
	defer s.reg.end(slot)

	// Auto reads on a maintained server are served straight from the
	// materialisation: a scan or index probe over the already-derived
	// relations, no fixpoint. Explicit strategies and traced requests
	// still evaluate — they are asking for a specific computation.
	if snap := s.snap.Load(); snap.Mat != nil && !req.Trace &&
		(req.Strategy == "" || req.Strategy == "auto") {
		s.reg.setRunning(slot, "materialized", snap.Epoch)
		rows, merr := snap.Mat.Answers(req.Query)
		if merr != nil {
			return nil, fail(&badRequestError{merr})
		}
		obsv.MServerRequests.Add("query", 1)
		resp = &QueryResponse{
			Answers:  rows,
			Epoch:    snap.Epoch,
			Strategy: "materialized",
			Stats: QueryStats{
				DerivedFacts: snap.Mat.DerivedFacts(),
				AnswerTuples: len(rows),
				DurationUS:   time.Since(start).Microseconds(),
			},
		}
		if s.cfg.SlowQuery > 0 && time.Since(start) >= s.cfg.SlowQuery {
			s.recordSlow(slot, reqID, req, snap, "materialized", start, queueWait, nil, nil, len(rows))
		}
		return resp, nil
	}

	strategy := lincount.Auto
	if req.Strategy != "" && req.Strategy != "auto" {
		st, perr := lincount.ParseStrategy(req.Strategy)
		if perr != nil {
			return nil, fail(&badRequestError{perr})
		}
		strategy = st
	}
	pq, perr := s.preparedFor(req.Query, strategy)
	if perr != nil {
		return nil, fail(&badRequestError{perr})
	}

	maxFacts := s.cfg.MaxDerivedFacts
	if req.MaxFacts > 0 && (maxFacts < 0 || req.MaxFacts < maxFacts) {
		maxFacts = req.MaxFacts
	}
	opts := append([]lincount.Option{}, s.cfg.EvalOptions...)
	if maxFacts > 0 {
		opts = append(opts, lincount.WithMaxDerivedFacts(maxFacts))
	}
	var tracer *lincount.Tracer
	if req.Trace {
		tracer = lincount.NewTracer()
		opts = append(opts, lincount.WithTracer(tracer))
	} else if s.cfg.SlowQuery > 0 {
		// Profile every untraced evaluation so a slow one can be
		// attributed rule by rule: per-rule clock reads, no event buffer.
		opts = append(opts, lincount.WithRuleProfile())
	}
	if slot != nil {
		// Mirror derived-fact progress into the slot for GET /v1/queries.
		opts = append(opts, lincount.WithFactProgress(slot.Facts()))
	}

	snap := s.snap.Load()
	obsv.MServerRequests.Add("query", 1)
	s.reg.setRunning(slot, strategy.String(), snap.Epoch)
	res, eerr := pq.EvalContext(ctx, snap.DB, opts...)
	if eerr != nil {
		// An operator kill surfaces as a cancellation; convert it to its
		// typed error so clients can tell it from their own deadline.
		if s.reg.killed(slot) {
			eerr = &KilledError{ID: slot.ID()}
		}
		if s.cfg.SlowQuery > 0 && time.Since(start) >= s.cfg.SlowQuery {
			s.recordSlow(slot, reqID, req, snap, strategy.String(), start, queueWait, nil, eerr, 0)
		}
		return nil, fail(eerr)
	}
	if tracer != nil {
		obsv.SetLastTrace(tracer)
	}
	resp = &QueryResponse{
		Answers:      res.Answers,
		Epoch:        snap.Epoch,
		Strategy:     res.Strategy.String(),
		PlanCacheHit: res.PlanCacheHit,
		Degraded:     len(res.Degraded),
		Stats: QueryStats{
			Inferences:   res.Stats.Inferences,
			DerivedFacts: res.Stats.DerivedFacts,
			Probes:       res.Stats.Probes,
			Iterations:   res.Stats.Iterations,
			DurationUS:   res.Stats.Duration.Microseconds(),
		},
	}
	if s.cfg.SlowQuery > 0 && time.Since(start) >= s.cfg.SlowQuery {
		s.recordSlow(slot, reqID, req, snap, res.Strategy.String(), start, queueWait, res, nil, len(res.Answers))
	}
	return resp, nil
}

// recordSlow captures the full diagnostic record of a request that
// crossed Config.SlowQuery: identity, timing split, planner ranking,
// per-rule profiles and the degradation chain. Everything beyond the
// threshold comparison — including the planner ranking — is computed
// only here, on the slow path.
func (s *Server) recordSlow(slot *qslot, reqID string, req QueryRequest, snap *Snapshot,
	strategy string, start time.Time, queueWait time.Duration, res *lincount.Result, evalErr error, answers int) {
	dur := time.Since(start)
	rec := obsv.RequestRecord{
		ID:          slot.ID(),
		RequestID:   reqID,
		Handler:     "query",
		Query:       req.Query,
		Strategy:    strategy,
		Epoch:       snap.Epoch,
		Start:       start,
		DurationUS:  dur.Microseconds(),
		QueueWaitUS: queueWait.Microseconds(),
		Outcome:     outcomeOf(evalErr),
	}
	if evalErr != nil {
		rec.Err = evalErr.Error()
	}
	if res != nil {
		rec.PlanCacheHit = res.PlanCacheHit
		rec.DerivedFacts = res.Stats.DerivedFacts
		rec.AnswerTuples = len(res.Answers)
		for _, rp := range res.RuleProfile {
			rec.Rules = append(rec.Rules, obsv.RuleRecord{
				Rule:         rp.Rule,
				Runs:         rp.Runs,
				Inferences:   rp.Inferences,
				DerivedFacts: rp.DerivedFacts,
				DurationUS:   rp.Duration.Microseconds(),
			})
		}
		for _, a := range res.Degraded {
			rec.Degraded = append(rec.Degraded, obsv.AttemptRecord{
				Strategy:   a.Strategy.String(),
				Err:        a.Err,
				DurationUS: a.Duration.Microseconds(),
			})
		}
	} else {
		rec.AnswerTuples = answers
	}
	if choices, cerr := lincount.PlannerChoices(s.cfg.Program, snap.DB, req.Query); cerr == nil {
		for _, c := range choices {
			rec.Planner = append(rec.Planner, obsv.PlannerRank{
				Strategy: c.Strategy.String(),
				Cost:     c.Cost,
				Reason:   c.Reason,
			})
		}
	}
	s.slow.Add(rec)
	obsv.MServerSlowQueries.Add(1)
	s.cfg.Log.Warn("slow query",
		obsv.FUint("id", rec.ID),
		obsv.FStr("request_id", reqID),
		obsv.FStr("query", req.Query),
		obsv.FStr("strategy", strategy),
		obsv.FStr("outcome", rec.Outcome),
		obsv.FDur("duration", dur),
		obsv.FDur("queue_wait", queueWait),
		obsv.FUint("epoch", snap.Epoch))
}

// ActiveQueries returns the in-flight queries, oldest first — the data
// behind GET /v1/queries.
func (s *Server) ActiveQueries() []QueryInfo { return s.reg.snapshot(time.Now()) }

// KillQuery cancels the in-flight query whose registry id (decimal) or
// request id equals key, returning the registry id of the query it
// found. The evaluation observes the cancellation at its next
// cooperative check and its request fails with a *KilledError.
func (s *Server) KillQuery(key string) (uint64, bool) {
	id, ok := s.reg.kill(key)
	if ok {
		obsv.MServerQueriesKilled.Add(1)
		s.cfg.Log.Info("query killed", obsv.FUint("id", id), obsv.FStr("key", key))
	}
	return id, ok
}

// SlowLog returns the retained slow-query records, newest first — the
// data behind GET /v1/debug/slowlog.
func (s *Server) SlowLog() []obsv.RequestRecord { return s.slow.Snapshot() }

// preparedFor returns the cached PreparedQuery for (query, strategy),
// preparing it on first use. Prepared queries are immutable and safe to
// share; the underlying compiled plans live in the program's LRU plan
// cache, so this map only amortizes parsing and the facade plumbing.
func (s *Server) preparedFor(query string, strategy lincount.Strategy) (*lincount.PreparedQuery, error) {
	key := prepKey{query: query, strategy: strategy}
	s.prepMu.Lock()
	pq := s.prepared[key]
	s.prepMu.Unlock()
	if pq != nil {
		return pq, nil
	}
	pq, err := lincount.Prepare(s.cfg.Program, query, strategy)
	if err != nil {
		return nil, err
	}
	s.prepMu.Lock()
	if cached, ok := s.prepared[key]; ok {
		pq = cached // a concurrent Prepare won; keep one canonical entry
	} else {
		if len(s.prepared) >= preparedCacheCap {
			s.prepared = make(map[prepKey]*lincount.PreparedQuery)
		}
		s.prepared[key] = pq
	}
	s.prepMu.Unlock()
	return pq, nil
}

// WriteRequest is one write: fact text to assert and/or retract. The
// request is applied atomically — a snapshot either contains all of its
// effects or none.
type WriteRequest struct {
	// Assert is fact text to add, e.g. "up(a,b). flat(b,c).".
	Assert string `json:"assert,omitempty"`
	// Retract is fact text to remove; absent facts are no-ops.
	Retract string `json:"retract,omitempty"`
	// TimeoutMS bounds how long the request waits for its batch to
	// publish (0 = server default).
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
}

// WriteResponse reports the epoch that first contains the write.
type WriteResponse struct {
	Epoch     uint64 `json:"epoch"`
	Retracted int    `json:"retracted"`
}

type writeResult struct {
	epoch     uint64
	retracted int
	err       error
}

type writeReq struct {
	req  WriteRequest
	done chan writeResult
}

// Write submits one write request to the single-writer path and waits
// for its batch to publish (or fail). Shed with BusyError when the write
// queue is full. If ctx expires while the batch is in flight, Write
// returns a CanceledError but the batch may still publish — the write is
// at-most-once from the caller's perspective, exactly-once from the
// server's.
func (s *Server) Write(ctx context.Context, req WriteRequest) (resp *WriteResponse, err error) {
	if err = s.begin(); err != nil {
		return nil, fail(err)
	}
	defer s.inflight.Done()

	start := time.Now()
	obsv.MServerInFlight.Add(1)
	defer obsv.MServerInFlight.Add(-1)
	defer func() {
		obsv.MServerReqDuration.Observe("write", outcomeOf(err), time.Since(start).Seconds())
	}()

	ctx, _, stop := s.requestCtx(ctx, time.Duration(req.TimeoutMS)*time.Millisecond)
	defer stop()

	wr := writeReq{req: req, done: make(chan writeResult, 1)}
	select {
	case s.writes <- wr:
	default:
		obsv.MServerShed.Add(1)
		return nil, fail(&BusyError{InFlight: len(s.writes), Write: true})
	}
	obsv.MServerRequests.Add("write", 1)
	select {
	case res := <-wr.done:
		if res.err != nil {
			return nil, fail(res.err)
		}
		return &WriteResponse{Epoch: res.epoch, Retracted: res.retracted}, nil
	case <-ctx.Done():
		return nil, fail(&lincount.CanceledError{Component: "server", Cause: context.Cause(ctx)})
	}
}

// RequestID request-scoped correlation: the HTTP layer stores each
// request's id in the context (WithRequestID); the server reads it back
// for the registry and the slow-query log, so a record found in either
// can be matched to the access-log line and the client's response
// header.
type reqIDKey struct{}

// WithRequestID returns a context carrying the request id.
func WithRequestID(ctx context.Context, id string) context.Context {
	return context.WithValue(ctx, reqIDKey{}, id)
}

// RequestID returns the context's request id, or "".
func RequestID(ctx context.Context) string {
	id, _ := ctx.Value(reqIDKey{}).(string)
	return id
}

// writer is the single-writer goroutine: it owns the fork-apply-publish
// cycle, so snapshot publication is trivially serialized — and, when
// durable, it owns the WAL appends and segment swaps for the same
// reason. It exits when the writes channel is closed (Drain), after
// draining queued requests. Rotation requests are only serviced between
// batches, so a swap can never race an append (rotateC is nil, hence
// never ready, on non-durable servers).
func (s *Server) writer() {
	defer close(s.writerDone)
	for {
		var wr writeReq
		var ok bool
		select {
		case rr := <-s.rotateC:
			s.rotate(rr)
			continue
		case wr, ok = <-s.writes:
			if !ok {
				return
			}
		}
		batch := []writeReq{wr}
		// Coalesce whatever is already queued, up to the batch cap: one
		// fork + one publish amortized over every waiting request.
		for len(batch) < s.cfg.MaxBatch {
			select {
			case more, ok := <-s.writes:
				if !ok {
					s.applyBatch(batch)
					return
				}
				batch = append(batch, more)
			default:
				goto apply
			}
		}
	apply:
		s.applyBatch(batch)
		s.maybeKickCheckpoint()
	}
}

// retryableWrite reports whether a batch-apply failure is worth
// retrying: injected faults (the degradation taxonomy's retryable class)
// and resource-limit trips. Parse and arity errors are permanent.
func retryableWrite(err error) bool {
	return errors.Is(err, faultinject.ErrInjected) || errors.Is(err, lincount.ErrResourceLimit)
}

// applyBatch forks the current snapshot, applies every request in the
// batch, and publishes the fork as the next epoch. A retryable failure
// (injected fault) discards the fork and retries the whole batch with
// exponential backoff; a permanent failure (parse error, arity clash)
// fails only the offending request and re-applies the rest from a fresh
// fork. Each surviving request is answered with the published epoch.
// Panics are contained per batch: every request gets an InternalError
// and the snapshot stays at the previous epoch.
func (s *Server) applyBatch(batch []writeReq) {
	failed := make([]error, len(batch))
	retracted := make([]int, len(batch))
	answered := make([]bool, len(batch))
	defer func() {
		r := recover()
		for i, wr := range batch {
			if answered[i] {
				continue
			}
			err := failed[i]
			if err == nil {
				// Only reachable when the apply loop panicked before
				// this request got a verdict.
				err = &lincount.InternalError{Value: r, Stack: string(debug.Stack())}
			}
			wr.done <- writeResult{err: err}
		}
	}()

	cur := s.snap.Load()
	attempt := 0
	for {
		fork, nextMat, retryErr, restarted := s.applyAttempt(cur, batch, failed, retracted)
		if retryErr == nil && !restarted {
			// The batch applied cleanly; the publish site is the last
			// chance for the chaos harness to object before readers can
			// observe the new epoch.
			if err := s.cfg.Inject.Hit(faultinject.SiteServerPublish); err != nil {
				retryErr = err
			}
		}
		if retryErr != nil {
			attempt++
			if attempt > s.cfg.WriteRetries {
				s.cfg.Log.Error("write batch failed",
					obsv.FUint("epoch", cur.Epoch+1),
					obsv.FInt("attempts", int64(attempt)),
					obsv.FErr("error", retryErr))
				for i := range batch {
					if failed[i] == nil {
						failed[i] = retryErr
					}
				}
				return
			}
			obsv.MServerWriteRetries.Add(1)
			s.cfg.Log.Warn("write batch retry",
				obsv.FUint("epoch", cur.Epoch+1),
				obsv.FInt("attempt", int64(attempt)),
				obsv.FErr("error", retryErr))
			time.Sleep(s.cfg.RetryBackoff << (attempt - 1))
			continue
		}
		if restarted {
			continue // no backoff: the deterministic failure was excised
		}
		live := 0
		for i := range batch {
			if failed[i] == nil {
				live++
			}
		}
		if live == 0 {
			return // nothing survived; do not publish an empty epoch
		}

		// Durable before visible before acked: the batch's WAL record
		// must be on the log before the snapshot is stored. A failed
		// append rolls its partial frame back, so injected faults retry
		// the whole cycle cleanly; a real I/O failure fails the batch —
		// the epoch is never published without its durability.
		if err := s.walAppend(cur.Epoch+1, batch, failed); err != nil {
			if errors.Is(err, faultinject.ErrInjected) {
				attempt++
				if attempt > s.cfg.WriteRetries {
					for i := range batch {
						if failed[i] == nil {
							failed[i] = err
						}
					}
					return
				}
				obsv.MServerWriteRetries.Add(1)
				time.Sleep(s.cfg.RetryBackoff << (attempt - 1))
				continue
			}
			s.cfg.Log.Error("wal append failed",
				obsv.FUint("epoch", cur.Epoch+1),
				obsv.FErr("error", err))
			for i := range batch {
				if failed[i] == nil {
					failed[i] = fmt.Errorf("server: write not durable: %w", err)
				}
			}
			return
		}

		next := &Snapshot{Epoch: cur.Epoch + 1, DB: fork, Mat: nextMat}
		s.snap.Store(next)
		obsv.MServerEpoch.Set(int64(next.Epoch))
		obsv.MServerWriteBatches.Add(1)
		obsv.MServerWriteBatchOps.Observe(float64(len(batch)))
		s.cfg.Log.Debug("batch applied",
			obsv.FUint("epoch", next.Epoch),
			obsv.FInt("requests", int64(len(batch))),
			obsv.FInt("live", int64(live)),
			obsv.FBool("maintained", nextMat != nil))
		for i, wr := range batch {
			if failed[i] == nil {
				answered[i] = true
				wr.done <- writeResult{epoch: next.Epoch, retracted: retracted[i]}
			}
		}
		return
	}
}

// reqWriteOps frames one request as its ordered write ops — assert
// before retract, the exact op order the WAL logs for the request and
// the order recovery replays. Maintenance, base apply, and replay all
// consume this one framing, so the three paths cannot drift.
func reqWriteOps(req WriteRequest) []lincount.WriteOp {
	var ops []lincount.WriteOp
	if req.Assert != "" {
		ops = append(ops, lincount.WriteOp{Text: req.Assert})
	}
	if req.Retract != "" {
		ops = append(ops, lincount.WriteOp{Retract: true, Text: req.Retract})
	}
	return ops
}

// applySequential applies ordered ops to db without maintenance:
// asserts via LoadFacts, retracts via RetractFacts, in frame order. It
// is the shared base-application path of the non-materialized write
// path, the maintenance fallback, and WAL recovery replay.
func applySequential(db *lincount.Database, ops []lincount.WriteOp) (retracted int, err error) {
	for _, op := range ops {
		if op.Retract {
			n, err := db.RetractFacts(op.Text)
			retracted += n
			if err != nil {
				return retracted, err
			}
		} else if err := db.LoadFacts(op.Text); err != nil {
			return retracted, err
		}
	}
	return retracted, nil
}

// batchOps flattens the live requests of a batch into one ordered op
// stream; opReq maps each op back to its request's batch index.
func batchOps(batch []writeReq, failed []error) (ops []lincount.WriteOp, opReq []int) {
	for i, wr := range batch {
		if failed[i] != nil {
			continue
		}
		for _, op := range reqWriteOps(wr.req) {
			ops = append(ops, op)
			opReq = append(opReq, i)
		}
	}
	return ops, opReq
}

// applyAttempt runs one attempt at applying the batch on top of cur:
// through incremental maintenance when the snapshot carries a
// materialisation, through plain base application otherwise. It returns
// the fork to publish plus the next epoch's materialisation (nil when
// maintenance is off), or a retryable error, or restarted=true when a
// permanently failing request was excised and the batch must be rebuilt
// from a fresh fork.
func (s *Server) applyAttempt(cur *Snapshot, batch []writeReq, failed []error, retracted []int) (*lincount.Database, *lincount.Materialization, error, bool) {
	// The write fault site fires once per live request per attempt,
	// before any application path runs, so the chaos schedules exercise
	// maintained and unmaintained servers identically.
	for i := range batch {
		if failed[i] != nil {
			continue
		}
		if err := s.cfg.Inject.Hit(faultinject.SiteServerApply); err != nil {
			return nil, nil, err, false
		}
	}

	if cur.Mat != nil {
		ops, opReq := batchOps(batch, failed)
		m2, info, err := cur.Mat.Apply(s.baseCtx, ops)
		if err == nil {
			for i := range batch {
				if failed[i] == nil {
					retracted[i] = 0
				}
			}
			for k, op := range ops {
				if op.Retract {
					retracted[opReq[k]] += info.RetractedPerOp[k]
				}
			}
			s.maintBatches.Add(1)
			obsv.MServerMaintBatches.Add(1)
			return m2.Database(), m2, nil, false
		}
		var we *lincount.WriteError
		if errors.As(err, &we) {
			// Permanent per-op failure: maintenance rejected the whole
			// batch atomically, so excise the offending request and
			// restart with the rest.
			failed[opReq[we.Index]] = &badRequestError{we.Err}
			return nil, nil, nil, true
		}
		if errors.Is(err, faultinject.ErrInjected) {
			return nil, nil, err, false
		}
		// Typed maintenance failure (internal invariant, resource limit,
		// cancellation): fall back to base application for this batch and
		// re-materialise from scratch. If even that fails, maintenance
		// stays off for subsequent epochs (Mat nil) — reads degrade to
		// per-request evaluation, writes keep working.
		s.maintFallbacks.Add(1)
		obsv.MServerMaintFallbacks.Add(1)
		s.cfg.Log.Warn("maintenance fallback",
			obsv.FUint("epoch", cur.Epoch+1),
			obsv.FErr("error", err))
	}

	fork := cur.DB.Fork()
	for i, wr := range batch {
		if failed[i] != nil {
			continue
		}
		retracted[i] = 0
		n, err := applySequential(fork, reqWriteOps(wr.req))
		retracted[i] = n
		if err == nil {
			continue
		}
		if retryableWrite(err) {
			return nil, nil, err, false
		}
		// Permanent: fail this request and rebuild the batch without it
		// (the fork may hold its partial effects).
		failed[i] = &badRequestError{err}
		return nil, nil, nil, true
	}
	var nextMat *lincount.Materialization
	if cur.Mat != nil {
		if m, err := s.cfg.Program.Materialize(s.baseCtx, fork); err == nil {
			nextMat = m
		}
	}
	return fork, nextMat, nil, false
}

// Drain gracefully stops the server: flip to draining (new requests get
// ErrDraining, /readyz goes unready), wait for in-flight requests to
// finish, and past ctx's deadline cancel them cooperatively and wait for
// the (prompt) unwind. The writer goroutine drains its queue and exits.
// Drain is idempotent; concurrent calls all block until the first
// completes. It returns an error only when the deadline forced
// cancellation — the server is fully stopped either way, with no
// goroutines left behind.
func (s *Server) Drain(ctx context.Context) error {
	s.stateMu.Lock()
	if s.state != stateServing {
		s.stateMu.Unlock()
		<-s.writerDone // wait for the first drainer to finish the job
		return nil
	}
	s.state = stateDraining
	s.stateMu.Unlock()
	obsv.MServerDrains.Add(1)
	s.cfg.Log.Info("drain started", obsv.FInt("active_queries", int64(s.reg.active())))

	done := make(chan struct{})
	go func() {
		s.inflight.Wait()
		close(done)
	}()
	forced := false
	select {
	case <-done:
	case <-ctx.Done():
		// Deadline: cancel every in-flight evaluation through the base
		// context. Cooperative cancellation is threaded through every
		// strategy, so the unwind is prompt.
		forced = true
		s.baseCancel(ErrDraining)
		<-done
	}

	// No producers remain (begin() rejects new requests, and every
	// admitted one has returned), so closing the write queue is safe;
	// the writer finishes whatever is still queued and exits. An admin
	// checkpoint registers as in-flight, so by this point the
	// checkpointer is idle or mid-auto-checkpoint; stopping it after the
	// writer means a rotation it is still waiting on aborts via
	// writerDone instead of deadlocking, and a snapshot save it is mid-
	// way through finishes against an immutable database. The WAL is
	// sealed last, once nothing can append.
	close(s.writes)
	<-s.writerDone
	if s.ckptStop != nil {
		close(s.ckptStop)
		<-s.ckptDone
	}
	if w := s.walW.Load(); w != nil {
		_ = w.Sync() // best effort: every acked record is already synced per policy
		w.Close()
	}

	s.stateMu.Lock()
	s.state = stateClosed
	s.stateMu.Unlock()
	s.baseCancel(nil) // release the context subtree either way
	s.cfg.Log.Info("drain complete", obsv.FBool("forced", forced))
	if forced {
		obsv.MServerDrainCanceled.Add(1)
		return errors.New("server: drain deadline expired; in-flight requests were canceled")
	}
	return nil
}

// Close stops the server immediately: in-flight requests are canceled
// right away and the writer exits after its queue drains. Equivalent to
// Drain with an already-expired deadline.
func (s *Server) Close() error {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_ = s.Drain(ctx) // forced cancellation is the expected path for Close
	return nil
}
