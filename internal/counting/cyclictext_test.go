package counting

import (
	"strings"
	"testing"
)

// TestCyclicTextExample5Shape: the declarative Algorithm 2 listing for the
// same-generation program has the structure of the paper's Example 5
// program — reified left part, counting rule with the weak-stratification
// guard, cycle rule, the f predicate and the set-navigating modified rules.
func TestCyclicTextExample5Shape(t *testing.T) {
	f := newRW(t, sgProgram, "?- sg(a,Y).", "")
	an, err := Analyze(f.adorned(t))
	if err != nil {
		t.Fatal(err)
	}
	text := RewriteCyclicText(an)
	for _, want := range []string{
		"c_sg_bf(a,{(r0,[],nil)}).",
		"left_r1(X,X1,[],r1) :- up(X,X1).",
		"left_r1_a(X,X1,[],r1)",
		"not (left_r1_a(W,X1,_,_), W != X, not c_sg_bf(W,_))",
		"cycle_sg_bf(X1,<(r1,[],Id)>) :- Id : c_sg_bf(X,_), left_r1_b(X,X1,[],r1).",
		"f(A,S) :- A : c_sg_bf(X,S1), if(cycle_sg_bf(X,S2) then S = S1 ∪ S2 else S = S1).",
		"sg_bf(Y,S) :- A : c_sg_bf(X,_), f(A,S), flat(X,Y).",
		"sg_bf(Y,S) :- sg_bf(Y1,T), (r1,[],Id) ∈ T, f(Id,S), down(Y1,Y).",
		"% query: sg_bf(Y,S), (r0,[],nil) ∈ S.",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("listing missing %q:\n%s", want, text)
		}
	}
}

func TestCyclicTextSharedVariables(t *testing.T) {
	f := newRW(t, `
p(X,Y) :- flat(X,Y).
p(X,Y) :- up(X,X1,W), p(X1,Y1), down(Y1,Y,W).
`, "?- p(a,Y).", "")
	an, err := Analyze(f.adorned(t))
	if err != nil {
		t.Fatal(err)
	}
	text := RewriteCyclicText(an)
	if !strings.Contains(text, "left_r1(X,X1,[W],r1) :- up(X,X1,W).") {
		t.Errorf("shared variable not reified:\n%s", text)
	}
	if !strings.Contains(text, "(r1,[W],Id) ∈ T") {
		t.Errorf("modified rule does not read the shared values:\n%s", text)
	}
}

func TestCyclicTextMixedLinearSpecialCases(t *testing.T) {
	f := newRW(t, `
p(X,Y) :- flat(X,Y).
p(X,Y) :- up(X,X1), p(X1,Y).
p(X,Y) :- p(X,Y1), down(Y1,Y).
`, "?- p(a,Y).", "")
	an, err := Analyze(f.adorned(t))
	if err != nil {
		t.Fatal(err)
	}
	text := RewriteCyclicText(an)
	// The right-linear rule's counting rule copies entry sets
	// ((R,C,Id) ∈ T form); the left-linear rule's modified rule copies T.
	if !strings.Contains(text, "(R,C,Id) ∈ T") {
		t.Errorf("right-linear set copy missing:\n%s", text)
	}
	if !strings.Contains(text, "p_bf(Y,T) :- p_bf(Y1,T)") {
		t.Errorf("left-linear pass-through missing:\n%s", text)
	}
	// Exactly one cycle rule (from the right-linear rule; the left-linear
	// one generates none) plus the reference inside the f rule.
	if strings.Count(text, "cycle_p_bf") != 2 {
		t.Errorf("cycle rules:\n%s", text)
	}
}

func TestCyclicTextBoundHeadVariable(t *testing.T) {
	f := newRW(t, `
p(X,Y) :- flat(X,Y).
p(X,Y) :- up(X,X1), p(X1,Y1), down(Y1,Y,X).
`, "?- p(a,Y).", "")
	an, err := Analyze(f.adorned(t))
	if err != nil {
		t.Fatal(err)
	}
	text := RewriteCyclicText(an)
	// D_r ≠ ∅: the modified rule keeps the identifier-joined counting
	// literal (sound here: identifiers name nodes, not paths).
	if !strings.Contains(text, "Id : c_p_bf(X,_), down(Y1,Y,X)") {
		t.Errorf("counting literal missing for D_r:\n%s", text)
	}
}
