package counting

import (
	"context"
	"encoding/binary"
	"fmt"

	"lincount/internal/ast"
	"lincount/internal/database"
	"lincount/internal/engine"
	"lincount/internal/faultinject"
	"lincount/internal/limits"
	"lincount/internal/symtab"
	"lincount/internal/term"
)

// The counting runtime is the practical form of Algorithm 2 (§4): instead
// of evaluating the declarative rewriting with set terms and weak
// stratification, it performs the Bushy-Depth-First computation the paper
// describes at the end of §4:
//
//   - Phase 1 explores the left-part graph from the query constants. Nodes
//     are (predicate, bound-argument tuple) pairs; arcs are instantiations
//     of the recursive rules' left parts, labelled with the rule and the
//     values of its shared variables C_r. The depth-first search classifies
//     arcs into ahead (tree/forward/cross) and back arcs on the fly; each
//     node accumulates its set of predecessor entries (rule, C_r, node).
//     Ahead entries are the counting set; back entries are the cycle links
//     the paper's `cycle` predicate holds; f(node) is their union.
//
//   - Phase 2 computes answers as tuples (predicate, free-argument tuple,
//     node): the tuple's node is the paper's counting-tuple address — the
//     object identifier of §3.4. Exit rules seed tuples at every node;
//     consuming a predecessor entry (r, c, id) applies rule r's right part
//     with the recursive answer's bindings, C_r = c and (when D_r ≠ ∅)
//     the head's bound arguments taken from node id, yielding a tuple at
//     node id. Left-linear rules (which generate no arcs) apply their
//     right part at the same node. A tuple at the source node for the goal
//     predicate is an answer.
//
// Because nodes and database constants are finite the computation always
// terminates, even on cyclic data (Theorem 2.3).

// ErrRuntimeBudget is the historical name of the unified resource-limit
// sentinel. Budget trips now return a *limits.ResourceLimitError with
// Kind "tuples" and Component "counting-runtime"; both
// errors.Is(err, ErrRuntimeBudget) and
// errors.Is(err, limits.ErrResourceLimit) match it.
//
// Deprecated: use limits.ErrResourceLimit (lincount.ErrResourceLimit at
// the public API).
var ErrRuntimeBudget = limits.ErrResourceLimit

// RuntimeStats describes the work done by one runtime evaluation.
type RuntimeStats struct {
	// CountingNodes is the size of the counting set (distinct nodes).
	CountingNodes int
	// AheadEntries and BackEntries count predecessor entries by class.
	AheadEntries int
	BackEntries  int
	// AnswerTuples is the number of distinct (pred, frees, node) tuples.
	AnswerTuples int
	// Moves is the number of successful answer-phase derivations,
	// including rederivations (the inference metric).
	Moves int64
	// Solves and Probes aggregate the conjunction-matcher work.
	Solves int64
	Probes int64
}

// RunResult is the outcome of a runtime evaluation.
type RunResult struct {
	// Answers holds the goal's free-argument tuples, deterministically
	// ordered.
	Answers []database.Tuple
	Stats   RuntimeStats
}

// RuntimeOptions bounds a runtime evaluation.
type RuntimeOptions struct {
	// MaxTuples bounds counting nodes + answer tuples (0 = default).
	MaxTuples int
	// Inject, when non-nil, is consulted at the runtime's hook sites
	// (node interning in phase 1, tuple derivation in phase 2) and at the
	// engine sites of the passthrough strata. Nil costs one pointer
	// comparison per site.
	Inject *faultinject.Injector
}

// DefaultMaxRuntimeTuples bounds runaway evaluations.
const DefaultMaxRuntimeTuples = 50_000_000

// entry is one predecessor record (r, C_r, Id) of §4.
type entry struct {
	rule int // index into Analysis.Rec, -1 for the source's nil entry
	c    term.Value
	node int32
}

const nilNode = int32(-1)

type node struct {
	pred symtab.Sym
	vals []term.Value
	// ahead and back are the predecessor entries by arc class.
	ahead []entry
	back  []entry
}

// varsOrdered returns the distinct variables of the terms in first-
// occurrence order.
func varsOrdered(ts []ast.Term) []symtab.Sym {
	var out []symtab.Sym
	seen := map[symtab.Sym]bool{}
	var walk func(t ast.Term)
	walk = func(t ast.Term) {
		switch t.Kind {
		case ast.Var:
			if !seen[t.Name] {
				seen[t.Name] = true
				out = append(out, t.Name)
			}
		case ast.Comp:
			for _, a := range t.Args {
				walk(a)
			}
		}
	}
	for _, t := range ts {
		walk(t)
	}
	return out
}

func appendNew(dst []symtab.Sym, src []symtab.Sym) []symtab.Sym {
	for _, v := range src {
		dup := false
		for _, d := range dst {
			if d == v {
				dup = true
				break
			}
		}
		if !dup {
			dst = append(dst, v)
		}
	}
	return dst
}

// preparedRec holds the compiled solvers of one recursive rule.
type preparedRec struct {
	r   *RecRule
	idx int // position in Runtime.recs (= Analysis.Rec index)
	// Left part: given the head's bound variables, produce the recursive
	// call's bound variables and the shared variables.
	left      *engine.PreparedSolve
	leftBound []symtab.Sym
	leftWant  []symtab.Sym
	// Right part: given the recursive answer's variables, the shared
	// variables and (when needed) the head's bound variables, produce the
	// free head arguments' variables.
	right      *engine.PreparedSolve
	rightBound []symtab.Sym
	rightWant  []symtab.Sym
	needsDest  bool // head bound vars must be matched against the landing node
}

// preparedExit holds the compiled solver of one exit rule.
type preparedExit struct {
	e     *ExitRule
	ps    *engine.PreparedSolve
	bound []symtab.Sym
	want  []symtab.Sym
}

// Runtime evaluates one analyzed query over one database.
type Runtime struct {
	an      *Analysis
	bank    *term.Bank
	db      *database.Database
	matcher *engine.Matcher
	opts    RuntimeOptions

	recs  []preparedRec
	exits []preparedExit

	nodes   []*node
	nodeIDs map[string]int32
	// discovery lists node ids in depth-first discovery order (the
	// paper's o1, o2, … numbering).
	discovery []int32

	// answer tuples, deduplicated by (pred, frees, node).
	tupleSeen map[string]bool

	// provenance (nil unless enabled): first derivation of each tuple.
	meta       map[string]tupleMeta
	tupleOfKey map[string]tuple

	check *limits.Checker
	stats RuntimeStats
}

// NewRuntime prepares a runtime for the analyzed query an over db. The
// passthrough rules of the analysis (lower strata) are evaluated eagerly
// with the standard engine so the left/exit/right conjunctions can read
// them; the conjunction solvers are compiled once here.
func NewRuntime(an *Analysis, db *database.Database, opts RuntimeOptions) (*Runtime, error) {
	return NewRuntimeContext(context.Background(), an, db, opts)
}

// NewRuntimeContext is NewRuntime under a context: both phases poll ctx
// cooperatively (per node expansion, per consumed tuple, and inside
// every conjunction join) and return a cancellation error wrapping
// context.Cause(ctx) once it is done.
func NewRuntimeContext(ctx context.Context, an *Analysis, db *database.Database, opts RuntimeOptions) (*Runtime, error) {
	bank := an.Adorned.Program.Bank
	check := limits.NewChecker(ctx, "counting-runtime")
	var derived map[symtab.Sym]*database.Relation
	if len(an.Passthrough) > 0 {
		sub := ast.NewProgram(bank)
		sub.Add(an.Passthrough...)
		res, err := engine.EvalContext(ctx, sub, db, engine.Options{Inject: opts.Inject})
		if err != nil {
			return nil, fmt.Errorf("counting: evaluating lower strata: %w", err)
		}
		derived = res.Derived
	}
	if opts.MaxTuples == 0 {
		opts.MaxTuples = DefaultMaxRuntimeTuples
	}
	rt := &Runtime{
		an:        an,
		bank:      bank,
		db:        db,
		matcher:   engine.NewMatcher(bank, db, derived),
		opts:      opts,
		nodeIDs:   map[string]int32{},
		tupleSeen: map[string]bool{},
		check:     check,
	}
	rt.matcher.SetChecker(check)

	for i := range an.Rec {
		r := &an.Rec[i]
		pr := preparedRec{r: r, idx: i}
		if !r.SkipCounting {
			pr.leftBound = varsOrdered(r.HeadBound)
			pr.leftWant = appendNew(varsOrdered(r.RecBound), r.Shared)
			var body []ast.Literal
			for _, li := range r.Left {
				body = append(body, r.Rule.Body[li])
			}
			ps, err := rt.matcher.Prepare(body, pr.leftBound, pr.leftWant)
			if err != nil {
				return nil, fmt.Errorf("counting: preparing left part of %s: %w",
					ast.FormatRule(bank, r.Rule), err)
			}
			pr.left = ps
		}
		if !r.SkipModified {
			pr.needsDest = len(r.BoundInRight) > 0
			pr.rightBound = appendNew(varsOrdered(r.RecFree), r.Shared)
			if pr.needsDest {
				// The head's bound arguments are matched against the
				// landing node (for left-linear rules, the same node).
				pr.rightBound = appendNew(pr.rightBound, varsOrdered(r.HeadBound))
			}
			pr.rightWant = varsOrdered(r.HeadFree)
			var body []ast.Literal
			for _, ri := range r.Right {
				body = append(body, r.Rule.Body[ri])
			}
			ps, err := rt.matcher.Prepare(body, pr.rightBound, pr.rightWant)
			if err != nil {
				return nil, fmt.Errorf("counting: preparing right part of %s: %w",
					ast.FormatRule(bank, r.Rule), err)
			}
			pr.right = ps
		}
		rt.recs = append(rt.recs, pr)
	}
	for i := range an.Exit {
		e := &an.Exit[i]
		pe := preparedExit{
			e:     e,
			bound: varsOrdered(e.Bound),
			want:  varsOrdered(e.Free),
		}
		ps, err := rt.matcher.Prepare(e.Rule.Body, pe.bound, pe.want)
		if err != nil {
			return nil, fmt.Errorf("counting: preparing exit rule %s: %w",
				ast.FormatRule(bank, e.Rule), err)
		}
		pe.ps = ps
		rt.exits = append(rt.exits, pe)
	}
	return rt, nil
}

// Run executes both phases and returns the goal answers.
func Run(an *Analysis, db *database.Database, opts RuntimeOptions) (*RunResult, error) {
	return RunContext(context.Background(), an, db, opts)
}

// RunContext is Run under a context (see NewRuntimeContext).
func RunContext(ctx context.Context, an *Analysis, db *database.Database, opts RuntimeOptions) (*RunResult, error) {
	rt, err := NewRuntimeContext(ctx, an, db, opts)
	if err != nil {
		return nil, err
	}
	return rt.Run()
}

// Run executes the two phases.
func (rt *Runtime) Run() (*RunResult, error) {
	if err := rt.buildCountingSet(); err != nil {
		return nil, err
	}
	answers, err := rt.answerPhase()
	if err != nil {
		return nil, err
	}
	rt.stats.Solves = rt.matcher.Solves
	rt.stats.Probes = rt.matcher.Probes
	rt.stats.CountingNodes = len(rt.nodes)
	for _, n := range rt.nodes {
		rt.stats.AheadEntries += len(n.ahead)
		rt.stats.BackEntries += len(n.back)
	}
	rt.stats.AnswerTuples = len(rt.tupleSeen)
	engine.SortTuplesFormatted(rt.bank, answers)
	return &RunResult{Answers: answers, Stats: rt.stats}, nil
}

// limitErr builds the structured budget error for this runtime.
func (rt *Runtime) limitErr(used int) error {
	return &limits.ResourceLimitError{
		Kind: limits.KindTuples, Limit: int64(rt.opts.MaxTuples),
		Used: int64(used), Component: "counting-runtime",
	}
}

func valsKey(pred symtab.Sym, vals []term.Value) string {
	buf := make([]byte, 0, 8+len(vals)*4)
	buf = binary.AppendVarint(buf, int64(pred))
	for _, v := range vals {
		buf = binary.AppendVarint(buf, int64(v))
	}
	return string(buf)
}

// internNode returns the id for (pred, vals), creating the node if new.
func (rt *Runtime) internNode(pred symtab.Sym, vals []term.Value) (int32, bool, error) {
	k := valsKey(pred, vals)
	if id, ok := rt.nodeIDs[k]; ok {
		return id, false, nil
	}
	if err := rt.opts.Inject.Hit(faultinject.SiteCountingNode); err != nil {
		return 0, false, err
	}
	if used := len(rt.nodes) + len(rt.tupleSeen); used >= rt.opts.MaxTuples {
		return 0, false, rt.limitErr(used)
	}
	id := int32(len(rt.nodes))
	rt.nodes = append(rt.nodes, &node{pred: pred, vals: append([]term.Value(nil), vals...)})
	rt.nodeIDs[k] = id
	return id, true, nil
}

// arcTarget is one instantiation of a rule's left part from a given node.
type arcTarget struct {
	rule int
	c    term.Value
	to   int32
}

// expand computes the outgoing arcs of node id by instantiating every
// applicable recursive rule's left part.
func (rt *Runtime) expand(id int32) ([]arcTarget, error) {
	n := rt.nodes[id]
	var out []arcTarget
	seen := map[arcTarget]bool{}
	for ri := range rt.recs {
		pr := &rt.recs[ri]
		r := pr.r
		if r.SkipCounting || r.Rule.Head.Pred != n.pred {
			continue
		}
		bound := map[symtab.Sym]term.Value{}
		if !engine.MatchTerms(rt.bank, r.HeadBound, n.vals, bound) {
			continue
		}
		boundVals := make([]term.Value, len(pr.leftBound))
		for i, v := range pr.leftBound {
			boundVals[i] = bound[v]
		}
		recPred := r.Rule.Body[r.RecIndex].Pred
		sol := map[symtab.Sym]term.Value{}
		err := pr.left.Solve(boundVals, func(vals []term.Value) error {
			for i, v := range pr.leftWant {
				sol[v] = vals[i]
			}
			for v, val := range bound {
				sol[v] = val
			}
			x1 := make([]term.Value, len(r.RecBound))
			for i, t := range r.RecBound {
				v, ok := engine.InstantiateTerm(rt.bank, t, sol)
				if !ok {
					return fmt.Errorf("counting: left part did not bind the recursive call in rule %s",
						ast.FormatRule(rt.bank, r.Rule))
				}
				x1[i] = v
			}
			cvals := make([]term.Value, len(r.Shared))
			for i, v := range r.Shared {
				cvals[i] = sol[v]
			}
			cList := rt.bank.List(cvals...)
			to, _, err := rt.internNode(recPred, x1)
			if err != nil {
				return err
			}
			a := arcTarget{rule: ri, c: cList, to: to}
			if !seen[a] {
				seen[a] = true
				out = append(out, a)
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// buildCountingSet runs the depth-first exploration with on-the-fly arc
// classification, filling each node's ahead and back entry sets.
func (rt *Runtime) buildCountingSet() error {
	goalBound := make([]term.Value, len(rt.an.GoalBound))
	for i, t := range rt.an.GoalBound {
		if !t.IsGround() {
			return fmt.Errorf("counting: query bound argument %s is not ground",
				ast.FormatTerm(rt.bank, t))
		}
		goalBound[i] = t.Value
	}
	src, _, err := rt.internNode(rt.an.GoalPred, goalBound)
	if err != nil {
		return err
	}
	// The source carries the paper's (r0, [], nil) entry.
	rt.nodes[src].ahead = append(rt.nodes[src].ahead, entry{rule: -1, c: rt.bank.Nil(), node: nilNode})

	type frame struct {
		id   int32
		arcs []arcTarget
		idx  int
	}
	onStack := map[int32]bool{}
	visited := map[int32]bool{}
	type entryKey struct {
		to   int32
		e    entry
		back bool
	}
	entrySeen := map[entryKey]bool{}

	addEntry := func(to int32, e entry, back bool) {
		k := entryKey{to, e, back}
		if entrySeen[k] {
			return
		}
		entrySeen[k] = true
		n := rt.nodes[to]
		if back {
			n.back = append(n.back, e)
		} else {
			n.ahead = append(n.ahead, e)
		}
	}

	arcs, err := rt.expand(src)
	if err != nil {
		return err
	}
	stack := []frame{{id: src, arcs: arcs}}
	onStack[src] = true
	visited[src] = true
	rt.discovery = append(rt.discovery, src)

	for len(stack) > 0 {
		if err := rt.check.Tick(); err != nil {
			return err
		}
		f := &stack[len(stack)-1]
		if f.idx >= len(f.arcs) {
			onStack[f.id] = false
			stack = stack[:len(stack)-1]
			continue
		}
		a := f.arcs[f.idx]
		f.idx++
		e := entry{rule: a.rule, c: a.c, node: f.id}
		switch {
		case onStack[a.to]:
			addEntry(a.to, e, true)
		case visited[a.to]:
			addEntry(a.to, e, false)
		default:
			addEntry(a.to, e, false)
			visited[a.to] = true
			onStack[a.to] = true
			rt.discovery = append(rt.discovery, a.to)
			arcs, err := rt.expand(a.to)
			if err != nil {
				return err
			}
			stack = append(stack, frame{id: a.to, arcs: arcs})
		}
	}
	return nil
}

// tuple is one answer-phase fact: the original predicate holds between the
// node's bound values and frees.
type tuple struct {
	pred  symtab.Sym
	frees []term.Value
	node  int32
}

func (rt *Runtime) tupleKey(t tuple) string {
	buf := make([]byte, 0, 16+len(t.frees)*4)
	buf = binary.AppendVarint(buf, int64(t.node))
	buf = binary.AppendVarint(buf, int64(t.pred))
	for _, v := range t.frees {
		buf = binary.AppendVarint(buf, int64(v))
	}
	return string(buf)
}

// pushTuple records a derived tuple; kind/rule/parent describe the
// derivation for provenance (parent is nil for exit seeds).
func (rt *Runtime) pushTuple(t tuple, queue *[]tuple, kind StepKind, rule int, parent *tuple) error {
	rt.stats.Moves++
	k := rt.tupleKey(t)
	if rt.tupleSeen[k] {
		return nil
	}
	if err := rt.opts.Inject.Hit(faultinject.SiteCountingStep); err != nil {
		return err
	}
	if used := len(rt.nodes) + len(rt.tupleSeen); used >= rt.opts.MaxTuples {
		return rt.limitErr(used)
	}
	rt.tupleSeen[k] = true
	if rt.meta != nil {
		m := tupleMeta{kind: kind, rule: rule}
		if parent != nil {
			m.parentKey = rt.tupleKey(*parent)
		}
		rt.meta[k] = m
		if rt.tupleOfKey == nil {
			rt.tupleOfKey = map[string]tuple{}
		}
		rt.tupleOfKey[k] = t
	}
	*queue = append(*queue, t)
	return nil
}

// answerPhase seeds tuples from the exit rules at every counting node and
// saturates the move relation.
func (rt *Runtime) answerPhase() ([]database.Tuple, error) {
	var queue []tuple

	// Exit seeds.
	for id := int32(0); int(id) < len(rt.nodes); id++ {
		n := rt.nodes[id]
		for ei := range rt.exits {
			pe := &rt.exits[ei]
			if pe.e.Rule.Head.Pred != n.pred {
				continue
			}
			bound := map[symtab.Sym]term.Value{}
			if !engine.MatchTerms(rt.bank, pe.e.Bound, n.vals, bound) {
				continue
			}
			boundVals := make([]term.Value, len(pe.bound))
			for i, v := range pe.bound {
				boundVals[i] = bound[v]
			}
			err := pe.ps.Solve(boundVals, func(vals []term.Value) error {
				sol := map[symtab.Sym]term.Value{}
				for i, v := range pe.want {
					sol[v] = vals[i]
				}
				for v, val := range bound {
					sol[v] = val
				}
				frees, err := rt.instantiateFrees(pe.e.Free, sol, pe.e.Rule)
				if err != nil {
					return err
				}
				return rt.pushTuple(tuple{pred: n.pred, frees: frees, node: id}, &queue, StepExit, ei, nil)
			})
			if err != nil {
				return nil, err
			}
		}
	}

	var answers []database.Tuple
	srcID := int32(0) // the source is always node 0

	for len(queue) > 0 {
		if err := rt.check.Tick(); err != nil {
			return nil, err
		}
		t := queue[len(queue)-1]
		queue = queue[:len(queue)-1]

		if t.node == srcID && t.pred == rt.an.GoalPred {
			answers = append(answers, append(database.Tuple(nil), t.frees...))
		}

		n := rt.nodes[t.node]

		// Entry consumption: undo one left-part step.
		for _, e := range n.ahead {
			if e.rule < 0 {
				continue // the nil entry: nothing to undo
			}
			if err := rt.applyMove(&rt.recs[e.rule], t, e.node, e.c, StepMove, &queue); err != nil {
				return nil, err
			}
		}
		for _, e := range n.back {
			if err := rt.applyMove(&rt.recs[e.rule], t, e.node, e.c, StepMove, &queue); err != nil {
				return nil, err
			}
		}

		// Left-linear moves: rules that generate no arcs apply their
		// right part at the same node.
		for ri := range rt.recs {
			pr := &rt.recs[ri]
			if !pr.r.SkipCounting || pr.r.SkipModified {
				continue
			}
			if pr.r.Rule.Body[pr.r.RecIndex].Pred != t.pred {
				continue
			}
			if err := rt.applyMove(pr, t, t.node, rt.bank.Nil(), StepSame, &queue); err != nil {
				return nil, err
			}
		}
	}
	return answers, nil
}

// applyMove consumes rule pr from tuple t, landing at node dest with shared
// values c.
func (rt *Runtime) applyMove(pr *preparedRec, t tuple, dest int32, c term.Value, kind StepKind, queue *[]tuple) error {
	r := pr.r
	// The entry was created by an arc of rule r, whose target predicate is
	// the recursive literal's; it must match the tuple's predicate.
	if r.Rule.Body[r.RecIndex].Pred != t.pred {
		return nil
	}
	bound := map[symtab.Sym]term.Value{}
	if !engine.MatchTerms(rt.bank, r.RecFree, t.frees, bound) {
		return nil
	}
	cvals, ok := rt.bank.ListElems(c)
	if !ok || len(cvals) != len(r.Shared) {
		return fmt.Errorf("counting: malformed shared-variable record %s", rt.bank.Format(c))
	}
	for i, v := range r.Shared {
		if old, exists := bound[v]; exists {
			if old != cvals[i] {
				return nil
			}
			continue
		}
		bound[v] = cvals[i]
	}
	if len(r.BoundInRight) > 0 || r.SkipModified {
		// The head's bound arguments come from the destination node.
		if !engine.MatchTerms(rt.bank, r.HeadBound, rt.nodes[dest].vals, bound) {
			return nil
		}
	}
	if r.SkipModified {
		// Right-linear: the free arguments pass through unchanged.
		return rt.pushTuple(tuple{pred: r.Rule.Head.Pred, frees: t.frees, node: dest},
			queue, kind, pr.idx, &t)
	}
	boundVals := make([]term.Value, len(pr.rightBound))
	for i, v := range pr.rightBound {
		val, ok := bound[v]
		if !ok {
			return fmt.Errorf("counting: internal error: variable %s unbound in right part of %s",
				rt.bank.Symbols().String(v), ast.FormatRule(rt.bank, r.Rule))
		}
		boundVals[i] = val
	}
	return pr.right.Solve(boundVals, func(vals []term.Value) error {
		sol := map[symtab.Sym]term.Value{}
		for i, v := range pr.rightWant {
			sol[v] = vals[i]
		}
		for v, val := range bound {
			sol[v] = val
		}
		frees, err := rt.instantiateFrees(r.HeadFree, sol, r.Rule)
		if err != nil {
			return err
		}
		return rt.pushTuple(tuple{pred: r.Rule.Head.Pred, frees: frees, node: dest},
			queue, kind, pr.idx, &t)
	})
}

// instantiateFrees grounds the free head arguments under sol.
func (rt *Runtime) instantiateFrees(freeTerms []ast.Term, sol map[symtab.Sym]term.Value, srcRule ast.Rule) ([]term.Value, error) {
	frees := make([]term.Value, len(freeTerms))
	for i, ft := range freeTerms {
		v, ok := engine.InstantiateTerm(rt.bank, ft, sol)
		if !ok {
			return nil, fmt.Errorf("counting: free head argument %s not bound in rule %s",
				ast.FormatTerm(rt.bank, ft), ast.FormatRule(rt.bank, srcRule))
		}
		frees[i] = v
	}
	return frees, nil
}
