package counting

import (
	"context"
	"fmt"

	"lincount/internal/ast"
	"lincount/internal/database"
	"lincount/internal/engine"
	"lincount/internal/faultinject"
	"lincount/internal/limits"
	"lincount/internal/obsv"
	"lincount/internal/symtab"
	"lincount/internal/term"
)

// The counting runtime is the practical form of Algorithm 2 (§4): instead
// of evaluating the declarative rewriting with set terms and weak
// stratification, it performs the Bushy-Depth-First computation the paper
// describes at the end of §4:
//
//   - Phase 1 explores the left-part graph from the query constants. Nodes
//     are (predicate, bound-argument tuple) pairs; arcs are instantiations
//     of the recursive rules' left parts, labelled with the rule and the
//     values of its shared variables C_r. The depth-first search classifies
//     arcs into ahead (tree/forward/cross) and back arcs on the fly; each
//     node accumulates its set of predecessor entries (rule, C_r, node).
//     Ahead entries are the counting set; back entries are the cycle links
//     the paper's `cycle` predicate holds; f(node) is their union.
//
//   - Phase 2 computes answers as tuples (predicate, free-argument tuple,
//     node): the tuple's node is the paper's counting-tuple address — the
//     object identifier of §3.4. Exit rules seed tuples at every node;
//     consuming a predecessor entry (r, c, id) applies rule r's right part
//     with the recursive answer's bindings, C_r = c and (when D_r ≠ ∅)
//     the head's bound arguments taken from node id, yielding a tuple at
//     node id. Left-linear rules (which generate no arcs) apply their
//     right part at the same node. A tuple at the source node for the goal
//     predicate is an answer.
//
// Because nodes and database constants are finite the computation always
// terminates, even on cyclic data (Theorem 2.3).
//
// Storage follows the same §3.4 address discipline as internal/database:
// node bound values and answer-tuple free values live in flat arenas,
// nodes and tuples are interned to dense int32 ids through open-addressing
// tables that hash term values directly (no key strings), and the phase-2
// worklist is a queue of tuple ids, not copied tuples.

// ErrRuntimeBudget is the historical name of the unified resource-limit
// sentinel. Budget trips now return a *limits.ResourceLimitError with
// Kind "tuples" and Component "counting-runtime"; both
// errors.Is(err, ErrRuntimeBudget) and
// errors.Is(err, limits.ErrResourceLimit) match it.
//
// Deprecated: use limits.ErrResourceLimit (lincount.ErrResourceLimit at
// the public API).
var ErrRuntimeBudget = limits.ErrResourceLimit

// RuntimeStats describes the work done by one runtime evaluation.
type RuntimeStats struct {
	// CountingNodes is the size of the counting set (distinct nodes).
	CountingNodes int
	// AheadEntries and BackEntries count predecessor entries by class.
	AheadEntries int
	BackEntries  int
	// AnswerTuples is the number of distinct (pred, frees, node) tuples.
	AnswerTuples int
	// Moves is the number of successful answer-phase derivations,
	// including rederivations (the inference metric).
	Moves int64
	// Solves and Probes aggregate the conjunction-matcher work.
	Solves int64
	Probes int64
	// ArenaValues is the number of term values resident in the node and
	// tuple arenas when the run completes.
	ArenaValues int64
}

// RunResult is the outcome of a runtime evaluation.
type RunResult struct {
	// Answers holds the goal's free-argument tuples, deterministically
	// ordered.
	Answers []database.Tuple
	Stats   RuntimeStats
}

// RuntimeOptions bounds a runtime evaluation.
type RuntimeOptions struct {
	// MaxTuples bounds counting nodes + answer tuples (0 = default).
	MaxTuples int
	// Inject, when non-nil, is consulted at the runtime's hook sites
	// (node interning in phase 1, tuple derivation in phase 2) and at the
	// engine sites of the passthrough strata. Nil costs one pointer
	// comparison per site.
	Inject *faultinject.Injector
	// Tracer, when non-nil, records phase spans (counting set
	// construction, answer saturation), worklist-depth counter samples,
	// and the passthrough strata's engine spans. Nil costs one pointer
	// comparison per site.
	Tracer *obsv.Tracer
	// StatsOut, when non-nil, receives the runtime's Stats even when a
	// phase fails partway (budget trip, injected fault, cancellation).
	StatsOut *RuntimeStats
}

// DefaultMaxRuntimeTuples bounds runaway evaluations.
const DefaultMaxRuntimeTuples = 50_000_000

// entry is one predecessor record (r, C_r, Id) of §4.
type entry struct {
	rule int // index into Analysis.Rec, -1 for the source's nil entry
	c    term.Value
	node int32
}

const nilNode = int32(-1)

// node is one counting-set element. Its bound values live in the runtime's
// nodeArena at [off, end) — the node holds an address, not a copy.
type node struct {
	pred     symtab.Sym
	off, end int32
	// ahead and back are the predecessor entries by arc class.
	ahead []entry
	back  []entry
}

// tupleInfo is one interned answer tuple (pred, frees, node); frees live
// in tupleArena at [off, end). The tuple's dense id (its index) is the
// provenance key and the worklist element.
type tupleInfo struct {
	pred     symtab.Sym
	node     int32
	off, end int32
}

// varsOrdered returns the distinct variables of the terms in first-
// occurrence order.
func varsOrdered(ts []ast.Term) []symtab.Sym {
	var out []symtab.Sym
	seen := map[symtab.Sym]bool{}
	var walk func(t ast.Term)
	walk = func(t ast.Term) {
		switch t.Kind {
		case ast.Var:
			if !seen[t.Name] {
				seen[t.Name] = true
				out = append(out, t.Name)
			}
		case ast.Comp:
			for _, a := range t.Args {
				walk(a)
			}
		}
	}
	for _, t := range ts {
		walk(t)
	}
	return out
}

func appendNew(dst []symtab.Sym, src []symtab.Sym) []symtab.Sym {
	for _, v := range src {
		dup := false
		for _, d := range dst {
			if d == v {
				dup = true
				break
			}
		}
		if !dup {
			dst = append(dst, v)
		}
	}
	return dst
}

// preparedRec holds the compiled solvers of one recursive rule.
type preparedRec struct {
	r   *RecRule
	idx int // position in Runtime.recs (= Analysis.Rec index)
	// Left part: given the head's bound variables, produce the recursive
	// call's bound variables and the shared variables.
	left      *engine.PreparedSolve
	leftBound []symtab.Sym
	leftWant  []symtab.Sym
	// Right part: given the recursive answer's variables, the shared
	// variables and (when needed) the head's bound variables, produce the
	// free head arguments' variables.
	right      *engine.PreparedSolve
	rightBound []symtab.Sym
	rightWant  []symtab.Sym
	needsDest  bool // head bound vars must be matched against the landing node

	// Reusable per-solution buffers for the expand loop.
	x1Buf    []term.Value
	cvalsBuf []term.Value
}

// preparedExit holds the compiled solver of one exit rule.
type preparedExit struct {
	e     *ExitRule
	ps    *engine.PreparedSolve
	bound []symtab.Sym
	want  []symtab.Sym
}

// Runtime evaluates one analyzed query over one database.
type Runtime struct {
	an      *Analysis
	bank    *term.Bank
	db      *database.Database
	matcher *engine.Matcher
	opts    RuntimeOptions

	recs  []preparedRec
	exits []preparedExit

	// Counting nodes: values in nodeArena, interned through nodeSlots
	// (open addressing, -1 empty, hashing the arena directly).
	nodes     []node
	nodeArena []term.Value
	nodeSlots []int32
	// discovery lists node ids in depth-first discovery order (the
	// paper's o1, o2, … numbering).
	discovery []int32

	// Answer tuples, interned to dense ids the same way.
	tuples     []tupleInfo
	tupleArena []term.Value
	tupleSlots []int32

	// provenance: when enabled, meta[id] records the first derivation of
	// tuple id (parent is a tuple id, -1 for exit seeds).
	provenance bool
	meta       []tupleMeta

	// freesBuf is the scratch the free head arguments are instantiated
	// into before interning copies them (only new tuples are copied).
	freesBuf []term.Value

	check *limits.Checker
	stats RuntimeStats
}

// nodeVals returns the bound values of node id (a view into nodeArena).
func (rt *Runtime) nodeVals(id int32) []term.Value {
	n := &rt.nodes[id]
	return rt.nodeArena[n.off:n.end:n.end]
}

// tupleFrees returns the free values of tuple id (a view into tupleArena).
func (rt *Runtime) tupleFrees(id int32) []term.Value {
	t := &rt.tuples[id]
	return rt.tupleArena[t.off:t.end:t.end]
}

// NewRuntime prepares a runtime for the analyzed query an over db. The
// passthrough rules of the analysis (lower strata) are evaluated eagerly
// with the standard engine so the left/exit/right conjunctions can read
// them; the conjunction solvers are compiled once here.
func NewRuntime(an *Analysis, db *database.Database, opts RuntimeOptions) (*Runtime, error) {
	return NewRuntimeContext(context.Background(), an, db, opts)
}

// NewRuntimeContext is NewRuntime under a context: both phases poll ctx
// cooperatively (per node expansion, per consumed tuple, and inside
// every conjunction join) and return a cancellation error wrapping
// context.Cause(ctx) once it is done.
func NewRuntimeContext(ctx context.Context, an *Analysis, db *database.Database, opts RuntimeOptions) (*Runtime, error) {
	bank := an.Adorned.Program.Bank
	check := limits.NewChecker(ctx, "counting-runtime")
	var derived map[symtab.Sym]*database.Relation
	if len(an.Passthrough) > 0 {
		sub := ast.NewProgram(bank)
		sub.Add(an.Passthrough...)
		res, err := engine.EvalContext(ctx, sub, db, engine.Options{Inject: opts.Inject, Tracer: opts.Tracer})
		if err != nil {
			return nil, fmt.Errorf("counting: evaluating lower strata: %w", err)
		}
		derived = res.Derived
	}
	if opts.MaxTuples == 0 {
		opts.MaxTuples = DefaultMaxRuntimeTuples
	}
	rt := &Runtime{
		an:      an,
		bank:    bank,
		db:      db,
		matcher: engine.NewMatcher(bank, db, derived),
		opts:    opts,
		check:   check,
	}
	rt.matcher.SetChecker(check)

	for i := range an.Rec {
		r := &an.Rec[i]
		pr := preparedRec{r: r, idx: i}
		if !r.SkipCounting {
			pr.leftBound = varsOrdered(r.HeadBound)
			pr.leftWant = appendNew(varsOrdered(r.RecBound), r.Shared)
			var body []ast.Literal
			for _, li := range r.Left {
				body = append(body, r.Rule.Body[li])
			}
			ps, err := rt.matcher.Prepare(body, pr.leftBound, pr.leftWant)
			if err != nil {
				return nil, fmt.Errorf("counting: preparing left part of %s: %w",
					ast.FormatRule(bank, r.Rule), err)
			}
			pr.left = ps
			pr.x1Buf = make([]term.Value, len(r.RecBound))
			pr.cvalsBuf = make([]term.Value, len(r.Shared))
		}
		if !r.SkipModified {
			pr.needsDest = len(r.BoundInRight) > 0
			pr.rightBound = appendNew(varsOrdered(r.RecFree), r.Shared)
			if pr.needsDest {
				// The head's bound arguments are matched against the
				// landing node (for left-linear rules, the same node).
				pr.rightBound = appendNew(pr.rightBound, varsOrdered(r.HeadBound))
			}
			pr.rightWant = varsOrdered(r.HeadFree)
			var body []ast.Literal
			for _, ri := range r.Right {
				body = append(body, r.Rule.Body[ri])
			}
			ps, err := rt.matcher.Prepare(body, pr.rightBound, pr.rightWant)
			if err != nil {
				return nil, fmt.Errorf("counting: preparing right part of %s: %w",
					ast.FormatRule(bank, r.Rule), err)
			}
			pr.right = ps
		}
		rt.recs = append(rt.recs, pr)
	}
	for i := range an.Exit {
		e := &an.Exit[i]
		pe := preparedExit{
			e:     e,
			bound: varsOrdered(e.Bound),
			want:  varsOrdered(e.Free),
		}
		ps, err := rt.matcher.Prepare(e.Rule.Body, pe.bound, pe.want)
		if err != nil {
			return nil, fmt.Errorf("counting: preparing exit rule %s: %w",
				ast.FormatRule(bank, e.Rule), err)
		}
		pe.ps = ps
		rt.exits = append(rt.exits, pe)
	}
	return rt, nil
}

// Run executes both phases and returns the goal answers.
func Run(an *Analysis, db *database.Database, opts RuntimeOptions) (*RunResult, error) {
	return RunContext(context.Background(), an, db, opts)
}

// RunContext is Run under a context (see NewRuntimeContext).
func RunContext(ctx context.Context, an *Analysis, db *database.Database, opts RuntimeOptions) (*RunResult, error) {
	rt, err := NewRuntimeContext(ctx, an, db, opts)
	if err != nil {
		return nil, err
	}
	return rt.Run()
}

// Run executes the two phases.
func (rt *Runtime) Run() (*RunResult, error) {
	if rt.opts.StatsOut != nil {
		// Fill even on the error paths: a failed attempt's partial work
		// counters are what Auto-degradation reporting needs.
		defer func() {
			rt.snapshotStats()
			*rt.opts.StatsOut = rt.stats
		}()
	}
	tracer := rt.opts.Tracer
	bsp := tracer.Begin("counting", "counting.build")
	if err := rt.buildCountingSet(); err != nil {
		bsp.End(obsv.A("nodes", int64(len(rt.nodes))))
		return nil, err
	}
	if tracer != nil {
		var ahead, back int64
		for i := range rt.nodes {
			ahead += int64(len(rt.nodes[i].ahead))
			back += int64(len(rt.nodes[i].back))
		}
		bsp.End(obsv.A("nodes", int64(len(rt.nodes))),
			obsv.A("ahead", ahead), obsv.A("back", back))
	}
	asp := tracer.Begin("counting", "counting.answer")
	answers, err := rt.answerPhase()
	asp.End(obsv.A("tuples", int64(len(rt.tuples))), obsv.A("moves", rt.stats.Moves))
	if err != nil {
		return nil, err
	}
	rt.snapshotStats()
	engine.SortTuplesFormatted(rt.bank, answers)
	return &RunResult{Answers: answers, Stats: rt.stats}, nil
}

// snapshotStats fills the derived counters of rt.stats from the current
// node/tuple/matcher state; safe to call mid-run or after a failure.
func (rt *Runtime) snapshotStats() {
	rt.stats.Solves = rt.matcher.Solves
	rt.stats.Probes = rt.matcher.Probes
	rt.stats.CountingNodes = len(rt.nodes)
	rt.stats.AheadEntries, rt.stats.BackEntries = 0, 0
	for i := range rt.nodes {
		rt.stats.AheadEntries += len(rt.nodes[i].ahead)
		rt.stats.BackEntries += len(rt.nodes[i].back)
	}
	rt.stats.AnswerTuples = len(rt.tuples)
	rt.stats.ArenaValues = int64(len(rt.nodeArena) + len(rt.tupleArena))
}

// limitErr builds the structured budget error for this runtime.
func (rt *Runtime) limitErr(used int) error {
	return &limits.ResourceLimitError{
		Kind: limits.KindTuples, Limit: int64(rt.opts.MaxTuples),
		Used: int64(used), Component: "counting-runtime",
	}
}

// hashPredVals hashes (pred, vals) the same way the database layer hashes
// rows, with the predicate folded in last.
func hashPredVals(pred symtab.Sym, vals []term.Value) uint64 {
	return database.HashValue(database.HashValues(vals), term.Value(pred))
}

func valuesEqual(a, b []term.Value) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// growNodeSlots doubles the node table and rehashes from the arena.
func (rt *Runtime) growNodeSlots() {
	n := len(rt.nodeSlots) * 2
	if n < 16 {
		n = 16
	}
	slots := make([]int32, n)
	for i := range slots {
		slots[i] = -1
	}
	m := uint64(n - 1)
	for id := range rt.nodes {
		i := hashPredVals(rt.nodes[id].pred, rt.nodeVals(int32(id))) & m
		for slots[i] >= 0 {
			i = (i + 1) & m
		}
		slots[i] = int32(id)
	}
	rt.nodeSlots = slots
}

// internNode returns the id for (pred, vals), creating the node if new.
// Lookup hashes vals directly; only a genuinely new node copies vals into
// the arena.
func (rt *Runtime) internNode(pred symtab.Sym, vals []term.Value) (int32, bool, error) {
	if (len(rt.nodes)+1)*4 > len(rt.nodeSlots)*3 {
		rt.growNodeSlots()
	}
	m := uint64(len(rt.nodeSlots) - 1)
	i := hashPredVals(pred, vals) & m
	for {
		id := rt.nodeSlots[i]
		if id < 0 {
			break
		}
		if rt.nodes[id].pred == pred && valuesEqual(rt.nodeVals(id), vals) {
			return id, false, nil
		}
		i = (i + 1) & m
	}
	if err := rt.opts.Inject.Hit(faultinject.SiteCountingNode); err != nil {
		return 0, false, err
	}
	if used := len(rt.nodes) + len(rt.tuples); used >= rt.opts.MaxTuples {
		return 0, false, rt.limitErr(used)
	}
	id := int32(len(rt.nodes))
	off := int32(len(rt.nodeArena))
	rt.nodeArena = append(rt.nodeArena, vals...)
	rt.nodes = append(rt.nodes, node{pred: pred, off: off, end: off + int32(len(vals))})
	rt.nodeSlots[i] = id
	return id, true, nil
}

// arcTarget is one instantiation of a rule's left part from a given node.
type arcTarget struct {
	rule int
	c    term.Value
	to   int32
}

// expand computes the outgoing arcs of node id by instantiating every
// applicable recursive rule's left part.
func (rt *Runtime) expand(id int32) ([]arcTarget, error) {
	nPred := rt.nodes[id].pred
	nVals := rt.nodeVals(id)
	var out []arcTarget
	seen := map[arcTarget]bool{}
	for ri := range rt.recs {
		pr := &rt.recs[ri]
		r := pr.r
		if r.SkipCounting || r.Rule.Head.Pred != nPred {
			continue
		}
		bound := map[symtab.Sym]term.Value{}
		if !engine.MatchTerms(rt.bank, r.HeadBound, nVals, bound) {
			continue
		}
		boundVals := make([]term.Value, len(pr.leftBound))
		for i, v := range pr.leftBound {
			boundVals[i] = bound[v]
		}
		recPred := r.Rule.Body[r.RecIndex].Pred
		sol := map[symtab.Sym]term.Value{}
		err := pr.left.Solve(boundVals, func(vals []term.Value) error {
			for i, v := range pr.leftWant {
				sol[v] = vals[i]
			}
			for v, val := range bound {
				sol[v] = val
			}
			x1 := pr.x1Buf
			for i, t := range r.RecBound {
				v, ok := engine.InstantiateTerm(rt.bank, t, sol)
				if !ok {
					return fmt.Errorf("counting: left part did not bind the recursive call in rule %s",
						ast.FormatRule(rt.bank, r.Rule))
				}
				x1[i] = v
			}
			cvals := pr.cvalsBuf
			for i, v := range r.Shared {
				cvals[i] = sol[v]
			}
			cList := rt.bank.List(cvals...)
			// internNode copies x1 only if the node is new, so the
			// reusable buffer is safe to hand over.
			to, _, err := rt.internNode(recPred, x1)
			if err != nil {
				return err
			}
			a := arcTarget{rule: ri, c: cList, to: to}
			if !seen[a] {
				seen[a] = true
				out = append(out, a)
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// buildCountingSet runs the depth-first exploration with on-the-fly arc
// classification, filling each node's ahead and back entry sets.
func (rt *Runtime) buildCountingSet() error {
	goalBound := make([]term.Value, len(rt.an.GoalBound))
	for i, t := range rt.an.GoalBound {
		if !t.IsGround() {
			return fmt.Errorf("counting: query bound argument %s is not ground",
				ast.FormatTerm(rt.bank, t))
		}
		goalBound[i] = t.Value
	}
	src, _, err := rt.internNode(rt.an.GoalPred, goalBound)
	if err != nil {
		return err
	}
	// The source carries the paper's (r0, [], nil) entry.
	rt.nodes[src].ahead = append(rt.nodes[src].ahead, entry{rule: -1, c: rt.bank.Nil(), node: nilNode})

	type frame struct {
		id   int32
		arcs []arcTarget
		idx  int
	}
	onStack := map[int32]bool{}
	visited := map[int32]bool{}
	type entryKey struct {
		to   int32
		e    entry
		back bool
	}
	entrySeen := map[entryKey]bool{}

	addEntry := func(to int32, e entry, back bool) {
		k := entryKey{to, e, back}
		if entrySeen[k] {
			return
		}
		entrySeen[k] = true
		n := &rt.nodes[to]
		if back {
			n.back = append(n.back, e)
		} else {
			n.ahead = append(n.ahead, e)
		}
	}

	arcs, err := rt.expand(src)
	if err != nil {
		return err
	}
	stack := []frame{{id: src, arcs: arcs}}
	onStack[src] = true
	visited[src] = true
	rt.discovery = append(rt.discovery, src)

	for len(stack) > 0 {
		if err := rt.check.Tick(); err != nil {
			return err
		}
		f := &stack[len(stack)-1]
		if f.idx >= len(f.arcs) {
			onStack[f.id] = false
			stack = stack[:len(stack)-1]
			continue
		}
		a := f.arcs[f.idx]
		f.idx++
		e := entry{rule: a.rule, c: a.c, node: f.id}
		switch {
		case onStack[a.to]:
			addEntry(a.to, e, true)
		case visited[a.to]:
			addEntry(a.to, e, false)
		default:
			addEntry(a.to, e, false)
			visited[a.to] = true
			onStack[a.to] = true
			rt.discovery = append(rt.discovery, a.to)
			arcs, err := rt.expand(a.to)
			if err != nil {
				return err
			}
			stack = append(stack, frame{id: a.to, arcs: arcs})
		}
	}
	return nil
}

// growTupleSlots doubles the tuple table and rehashes from the arena.
func (rt *Runtime) growTupleSlots() {
	n := len(rt.tupleSlots) * 2
	if n < 16 {
		n = 16
	}
	slots := make([]int32, n)
	for i := range slots {
		slots[i] = -1
	}
	m := uint64(n - 1)
	for id := range rt.tuples {
		t := &rt.tuples[id]
		h := database.HashValue(hashPredVals(t.pred, rt.tupleFrees(int32(id))), term.Value(t.node))
		i := h & m
		for slots[i] >= 0 {
			i = (i + 1) & m
		}
		slots[i] = int32(id)
	}
	rt.tupleSlots = slots
}

// findTuple returns the dense id of (pred, frees, node), or -1.
func (rt *Runtime) findTuple(pred symtab.Sym, frees []term.Value, nodeID int32) int32 {
	if len(rt.tuples) == 0 {
		return -1
	}
	m := uint64(len(rt.tupleSlots) - 1)
	h := database.HashValue(hashPredVals(pred, frees), term.Value(nodeID))
	for i := h & m; ; i = (i + 1) & m {
		id := rt.tupleSlots[i]
		if id < 0 {
			return -1
		}
		t := &rt.tuples[id]
		if t.pred == pred && t.node == nodeID && valuesEqual(rt.tupleFrees(id), frees) {
			return id
		}
	}
}

// pushTuple interns a derived tuple and, when new, enqueues its id;
// kind/rule/parent describe the derivation for provenance (parent is -1
// for exit seeds). frees may be a reusable buffer: it is copied into the
// arena only when the tuple is new.
func (rt *Runtime) pushTuple(pred symtab.Sym, frees []term.Value, nodeID int32, queue *[]int32, kind StepKind, rule int, parent int32) error {
	rt.stats.Moves++
	if (len(rt.tuples)+1)*4 > len(rt.tupleSlots)*3 {
		rt.growTupleSlots()
	}
	m := uint64(len(rt.tupleSlots) - 1)
	h := database.HashValue(hashPredVals(pred, frees), term.Value(nodeID))
	i := h & m
	for {
		id := rt.tupleSlots[i]
		if id < 0 {
			break
		}
		t := &rt.tuples[id]
		if t.pred == pred && t.node == nodeID && valuesEqual(rt.tupleFrees(id), frees) {
			return nil // rederivation
		}
		i = (i + 1) & m
	}
	if err := rt.opts.Inject.Hit(faultinject.SiteCountingStep); err != nil {
		return err
	}
	if used := len(rt.nodes) + len(rt.tuples); used >= rt.opts.MaxTuples {
		return rt.limitErr(used)
	}
	id := int32(len(rt.tuples))
	off := int32(len(rt.tupleArena))
	rt.tupleArena = append(rt.tupleArena, frees...)
	rt.tuples = append(rt.tuples, tupleInfo{pred: pred, node: nodeID, off: off, end: off + int32(len(frees))})
	rt.tupleSlots[i] = id
	if rt.provenance {
		rt.meta = append(rt.meta, tupleMeta{kind: kind, rule: rule, parent: parent})
	}
	*queue = append(*queue, id)
	return nil
}

// answerPhase seeds tuples from the exit rules at every counting node and
// saturates the move relation.
func (rt *Runtime) answerPhase() ([]database.Tuple, error) {
	var queue []int32

	// Exit seeds.
	for id := int32(0); int(id) < len(rt.nodes); id++ {
		nPred := rt.nodes[id].pred
		nVals := rt.nodeVals(id)
		for ei := range rt.exits {
			pe := &rt.exits[ei]
			if pe.e.Rule.Head.Pred != nPred {
				continue
			}
			bound := map[symtab.Sym]term.Value{}
			if !engine.MatchTerms(rt.bank, pe.e.Bound, nVals, bound) {
				continue
			}
			boundVals := make([]term.Value, len(pe.bound))
			for i, v := range pe.bound {
				boundVals[i] = bound[v]
			}
			sol := map[symtab.Sym]term.Value{}
			err := pe.ps.Solve(boundVals, func(vals []term.Value) error {
				for i, v := range pe.want {
					sol[v] = vals[i]
				}
				for v, val := range bound {
					sol[v] = val
				}
				frees, err := rt.instantiateFrees(pe.e.Free, sol, pe.e.Rule)
				if err != nil {
					return err
				}
				return rt.pushTuple(nPred, frees, id, &queue, StepExit, ei, -1)
			})
			if err != nil {
				return nil, err
			}
		}
	}

	var answers []database.Tuple
	srcID := int32(0) // the source is always node 0
	tracer := rt.opts.Tracer

	for pops := int64(0); len(queue) > 0; pops++ {
		if err := rt.check.Tick(); err != nil {
			return nil, err
		}
		if tracer != nil && pops%4096 == 0 {
			// Sampled, not per-pop: the worklist-depth counter track shows
			// saturation progress without flooding the event buffer.
			tracer.Counter("counting.worklist", int64(len(queue)))
		}
		tid := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		t := &rt.tuples[tid]
		tPred, tNode := t.pred, t.node
		tFrees := rt.tupleFrees(tid)

		if tNode == srcID && tPred == rt.an.GoalPred {
			// Copy: answers escape through the public result while tFrees
			// is a view into the (growing) tuple arena.
			answers = append(answers, append(database.Tuple(nil), tFrees...))
		}

		n := &rt.nodes[tNode]

		// Entry consumption: undo one left-part step.
		for _, e := range n.ahead {
			if e.rule < 0 {
				continue // the nil entry: nothing to undo
			}
			if err := rt.applyMove(&rt.recs[e.rule], tid, tPred, tFrees, e.node, e.c, StepMove, &queue); err != nil {
				return nil, err
			}
		}
		for _, e := range n.back {
			if err := rt.applyMove(&rt.recs[e.rule], tid, tPred, tFrees, e.node, e.c, StepMove, &queue); err != nil {
				return nil, err
			}
		}

		// Left-linear moves: rules that generate no arcs apply their
		// right part at the same node.
		for ri := range rt.recs {
			pr := &rt.recs[ri]
			if !pr.r.SkipCounting || pr.r.SkipModified {
				continue
			}
			if pr.r.Rule.Body[pr.r.RecIndex].Pred != tPred {
				continue
			}
			if err := rt.applyMove(pr, tid, tPred, tFrees, tNode, rt.bank.Nil(), StepSame, &queue); err != nil {
				return nil, err
			}
		}
	}
	return answers, nil
}

// applyMove consumes rule pr from tuple tid (= (tPred, tFrees) at its
// node), landing at node dest with shared values c.
func (rt *Runtime) applyMove(pr *preparedRec, tid int32, tPred symtab.Sym, tFrees []term.Value, dest int32, c term.Value, kind StepKind, queue *[]int32) error {
	r := pr.r
	// The entry was created by an arc of rule r, whose target predicate is
	// the recursive literal's; it must match the tuple's predicate.
	if r.Rule.Body[r.RecIndex].Pred != tPred {
		return nil
	}
	bound := map[symtab.Sym]term.Value{}
	if !engine.MatchTerms(rt.bank, r.RecFree, tFrees, bound) {
		return nil
	}
	cvals, ok := rt.bank.ListElems(c)
	if !ok || len(cvals) != len(r.Shared) {
		return fmt.Errorf("counting: malformed shared-variable record %s", rt.bank.Format(c))
	}
	for i, v := range r.Shared {
		if old, exists := bound[v]; exists {
			if old != cvals[i] {
				return nil
			}
			continue
		}
		bound[v] = cvals[i]
	}
	if len(r.BoundInRight) > 0 || r.SkipModified {
		// The head's bound arguments come from the destination node.
		if !engine.MatchTerms(rt.bank, r.HeadBound, rt.nodeVals(dest), bound) {
			return nil
		}
	}
	if r.SkipModified {
		// Right-linear: the free arguments pass through unchanged.
		return rt.pushTuple(r.Rule.Head.Pred, tFrees, dest, queue, kind, pr.idx, tid)
	}
	boundVals := make([]term.Value, len(pr.rightBound))
	for i, v := range pr.rightBound {
		val, ok := bound[v]
		if !ok {
			return fmt.Errorf("counting: internal error: variable %s unbound in right part of %s",
				rt.bank.Symbols().String(v), ast.FormatRule(rt.bank, r.Rule))
		}
		boundVals[i] = val
	}
	sol := map[symtab.Sym]term.Value{}
	return pr.right.Solve(boundVals, func(vals []term.Value) error {
		for i, v := range pr.rightWant {
			sol[v] = vals[i]
		}
		for v, val := range bound {
			sol[v] = val
		}
		frees, err := rt.instantiateFrees(r.HeadFree, sol, r.Rule)
		if err != nil {
			return err
		}
		return rt.pushTuple(r.Rule.Head.Pred, frees, dest, queue, kind, pr.idx, tid)
	})
}

// instantiateFrees grounds the free head arguments under sol into the
// runtime's reusable scratch buffer; pushTuple copies it into the tuple
// arena only when the tuple is new.
func (rt *Runtime) instantiateFrees(freeTerms []ast.Term, sol map[symtab.Sym]term.Value, srcRule ast.Rule) ([]term.Value, error) {
	if cap(rt.freesBuf) < len(freeTerms) {
		rt.freesBuf = make([]term.Value, len(freeTerms))
	}
	frees := rt.freesBuf[:len(freeTerms)]
	for i, ft := range freeTerms {
		v, ok := engine.InstantiateTerm(rt.bank, ft, sol)
		if !ok {
			return nil, fmt.Errorf("counting: free head argument %s not bound in rule %s",
				ast.FormatTerm(rt.bank, ft), ast.FormatRule(rt.bank, srcRule))
		}
		frees[i] = v
	}
	return frees, nil
}
