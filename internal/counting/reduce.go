package counting

import (
	"lincount/internal/ast"
	"lincount/internal/symtab"
)

// Reduce applies Algorithm 3 (program reduction) to a counting-rewritten
// query:
//
//  1. The path argument (by construction the last argument) of a recursive
//     clique of the rewritten program — the counting predicates or the
//     answer predicates — is deleted when no rule of that clique modifies
//     it, i.e. every rule propagates the path unchanged from its recursive
//     body literal to its head.
//  2. A counting literal in a rule body is deleted when it shares no
//     variable with the head or any other body literal (it is a semijoin
//     against a provably non-empty relation, so dropping it preserves the
//     answers).
//
// For right-linear, left-linear and mixed-linear programs this reproduces
// the specialized optimizations of Naughton et al. (§5, Fact 1); for
// general linear programs it returns the input unchanged.
func Reduce(rw *Rewritten) *Rewritten {
	out := &Rewritten{
		Program:       rw.Program.Clone(),
		Query:         rw.Query,
		CountingPreds: rw.CountingPreds,
		AnswerPreds:   rw.AnswerPreds,
		Analysis:      rw.Analysis,
	}

	countingSet := map[symtab.Sym]bool{}
	for c := range rw.CountingPreds {
		countingSet[c] = true
	}

	// Rule 1, applied independently to the counting clique and to the
	// answer clique.
	if !modifiesPath(out.Program, countingSet) {
		deletePathArg(out, countingSet)
	}
	if !modifiesPath(out.Program, rw.AnswerPreds) {
		deletePathArg(out, rw.AnswerPreds)
	}

	// Rule 2: drop unconnected counting literals.
	for ri := range out.Program.Rules {
		r := &out.Program.Rules[ri]
		var kept []ast.Literal
		for i, l := range r.Body {
			if countingSet[l.Pred] && !connected(*r, i) {
				continue
			}
			kept = append(kept, l)
		}
		r.Body = kept
	}

	dedupeRules(out.Program)
	return out
}

// modifiesPath reports whether any rule whose head predicate is in clique
// changes the path argument between a same-clique body literal and the
// head. Rules without a same-clique body literal (seeds, exit-modified
// rules) introduce the path rather than modify it.
func modifiesPath(p *ast.Program, clique map[symtab.Sym]bool) bool {
	for _, r := range p.Rules {
		if !clique[r.Head.Pred] || len(r.Head.Args) == 0 {
			continue
		}
		headPath := r.Head.Args[len(r.Head.Args)-1]
		for _, l := range r.Body {
			if !clique[l.Pred] || len(l.Args) == 0 {
				continue
			}
			if !l.Args[len(l.Args)-1].Equal(headPath) {
				return true
			}
		}
	}
	return false
}

// deletePathArg removes the last argument of every literal over a clique
// predicate, program-wide, and fixes the query goal.
func deletePathArg(rw *Rewritten, clique map[symtab.Sym]bool) {
	strip := func(l ast.Literal) ast.Literal {
		if clique[l.Pred] && len(l.Args) > 0 {
			l.Args = l.Args[:len(l.Args)-1]
		}
		return l
	}
	for ri := range rw.Program.Rules {
		r := &rw.Program.Rules[ri]
		r.Head = strip(r.Head)
		for i := range r.Body {
			r.Body[i] = strip(r.Body[i])
		}
	}
	rw.Query.Goal = strip(rw.Query.Goal)
}

// connected reports whether body literal i shares a variable with the head
// or another body literal of r.
func connected(r ast.Rule, i int) bool {
	mine := map[symtab.Sym]bool{}
	for _, v := range r.Body[i].Vars() {
		mine[v] = true
	}
	if len(mine) == 0 {
		return false // fully ground literal constrains nothing shared
	}
	for _, v := range r.Head.Vars() {
		if mine[v] {
			return true
		}
	}
	for j, l := range r.Body {
		if j == i {
			continue
		}
		for _, v := range l.Vars() {
			if mine[v] {
				return true
			}
		}
	}
	return false
}

// dedupeRules removes structurally identical rules (they arise when
// deleting the path argument collapses push and no-push variants).
func dedupeRules(p *ast.Program) {
	var kept []ast.Rule
	for _, r := range p.Rules {
		dup := false
		for _, k := range kept {
			if r.Equal(k) {
				dup = true
				break
			}
		}
		if !dup {
			kept = append(kept, r)
		}
	}
	p.Rules = kept
}
