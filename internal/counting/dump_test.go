package counting

import (
	"strings"
	"testing"
)

// TestDumpExample5 checks the dump against the paper's Example 5 trace:
// counting set {o1:(a,{nil}), o2:(b,{o1}), o3:(c,{o2}), o4:(d,{o3}),
// o5:(e,{o2,o4})} (ahead entries), cycle(d)={o5}, f(o4)={o3,o5}.
func TestDumpExample5(t *testing.T) {
	f := newRW(t, sgProgram, "?- sg(a,Y).", example5Facts)
	an, err := Analyze(f.adorned(t))
	if err != nil {
		t.Fatal(err)
	}
	out, err := DumpCountingSet(an, f.db)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"o1 : (a, {nil})",
		"o2 : (b, {o1})",
		"o3 : (c, {o2})",
		"o4 : (d, {o3})",
		"o5 : (e, {o4,o2})",
		"cycle(d) = {o5}",
		"f(o4) = {o3,o5}",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("dump missing %q:\n%s", want, out)
		}
	}
}

func TestDumpAcyclicNote(t *testing.T) {
	f := newRW(t, sgProgram, "?- sg(a,Y).", "up(a,b). up(b,c). flat(c,x). down(x,y).")
	an, err := Analyze(f.adorned(t))
	if err != nil {
		t.Fatal(err)
	}
	out, err := DumpCountingSet(an, f.db)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "no back arcs") {
		t.Errorf("dump:\n%s", out)
	}
	if strings.Contains(out, "cycle(") {
		t.Errorf("acyclic dump has cycle links:\n%s", out)
	}
}

func TestDumpSharedVariablesShowEntries(t *testing.T) {
	f := newRW(t, `
p(X,Y) :- flat(X,Y).
p(X,Y) :- up(X,X1,W), p(X1,Y1), down(Y1,Y,W).
`, "?- p(a,Y).", "up(a,b,7). flat(b,x).")
	an, err := Analyze(f.adorned(t))
	if err != nil {
		t.Fatal(err)
	}
	out, err := DumpCountingSet(an, f.db)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "(r1,[7],o1)") {
		t.Errorf("shared-variable entry missing:\n%s", out)
	}
}

func TestDumpMutualRecursionShowsPredicates(t *testing.T) {
	f := newRW(t, `
p(X,Y) :- flat(X,Y).
p(X,Y) :- up(X,X1), q(X1,Y1), down(Y1,Y).
q(X,Y) :- over(X,X1), p(X1,Y1), under(Y1,Y).
`, "?- p(a,Y).", "up(a,b). over(b,c).")
	an, err := Analyze(f.adorned(t))
	if err != nil {
		t.Fatal(err)
	}
	out, err := DumpCountingSet(an, f.db)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "p_bf:") || !strings.Contains(out, "q_bf:") {
		t.Errorf("predicate tags missing:\n%s", out)
	}
}
