package counting

import (
	"context"

	"lincount/internal/database"
	"lincount/internal/symtab"
	"lincount/internal/term"
)

// The magic-counting method (Saccà & Zaniolo, SIGMOD 1987 — reference [16]
// of the paper) combines the counting and magic-set methods so that
// counting's speed is obtained where the data permits it and magic's
// safety where it does not. The paper positions Algorithm 2 against it.
//
// We implement the method's decision procedure in its practical form: probe
// the left-part graph reachable from the query constants with a bounded
// depth-first search; if it is acyclic, the (fast, level-collapsing)
// extended counting program is safe and is used; if a back arc is found,
// fall back to the magic-set program. The probe reuses the runtime's arc
// expansion, so its cost is one traversal of the reachable left graph —
// the same work the counting phase would do anyway.

// LeftGraphProbe is the result of probing the left-part graph.
type LeftGraphProbe struct {
	// Acyclic reports whether the reachable left graph has no back arc.
	Acyclic bool
	// Nodes is the number of reachable counting nodes visited.
	Nodes int
	// BackArcs counts the back arcs found (0 when Acyclic).
	BackArcs int
}

// ProbeLeftGraph explores the left-part graph of the analyzed query over
// db and classifies it. maxNodes bounds the exploration (0 = default).
func ProbeLeftGraph(an *Analysis, db *database.Database, maxNodes int) (*LeftGraphProbe, error) {
	return ProbeLeftGraphContext(context.Background(), an, db, maxNodes)
}

// ProbeLeftGraphContext is ProbeLeftGraph under a context: the probe's
// depth-first exploration polls ctx cooperatively.
func ProbeLeftGraphContext(ctx context.Context, an *Analysis, db *database.Database, maxNodes int) (*LeftGraphProbe, error) {
	if maxNodes == 0 {
		maxNodes = DefaultMaxRuntimeTuples
	}
	rt, err := NewRuntimeContext(ctx, an, db, RuntimeOptions{MaxTuples: maxNodes})
	if err != nil {
		return nil, err
	}
	if err := rt.buildCountingSet(); err != nil {
		return nil, err
	}
	probe := &LeftGraphProbe{Nodes: len(rt.nodes)}
	for _, n := range rt.nodes {
		probe.BackArcs += len(n.back)
	}
	probe.Acyclic = probe.BackArcs == 0
	return probe, nil
}

// CountingNodeValues exposes the probed counting nodes (bound-argument
// tuples per adorned predicate); useful for diagnostics and tests.
func CountingNodeValues(an *Analysis, db *database.Database) (map[symtab.Sym][][]term.Value, error) {
	rt, err := NewRuntime(an, db, RuntimeOptions{})
	if err != nil {
		return nil, err
	}
	if err := rt.buildCountingSet(); err != nil {
		return nil, err
	}
	out := map[symtab.Sym][][]term.Value{}
	for id := range rt.nodes {
		n := &rt.nodes[id]
		out[n.pred] = append(out[n.pred], rt.nodeVals(int32(id)))
	}
	return out, nil
}
