package counting

import (
	"fmt"
	"strings"

	"lincount/internal/ast"
)

// RewriteCyclicText renders the declarative form of Algorithm 2 (the
// extended counting rewriting for cyclic databases) for an analyzed query.
// Following §4, each recursive rule's left part a(A) is first reified as
//
//	left_rI(X, X1, C_r, rI) :- a(A).
//
// whose relation is partitioned into ahead arcs left_rI_a and back arcs
// left_rI_b by a depth-first search from the query constants. The output
// uses the paper's LDL-flavoured notation — object identifiers
// (Id : p(...)), set terms (<...>, ∈) and an if/then/else for the f
// predicate — which the engine does not evaluate directly; the counting
// Runtime implements this program procedurally, as the end of §4
// prescribes. The text is produced for inspection and the explain tool.
func RewriteCyclicText(an *Analysis) string {
	bank := an.Adorned.Program.Bank
	syms := bank.Symbols()
	var sb strings.Builder

	name := func(p ast.Literal) string { return syms.String(p.Pred) }
	terms := func(ts []ast.Term) string {
		parts := make([]string, len(ts))
		for i, t := range ts {
			parts[i] = ast.FormatTerm(bank, t)
		}
		return strings.Join(parts, ",")
	}
	lits := func(idx []int, body []ast.Literal) string {
		parts := make([]string, len(idx))
		for i, j := range idx {
			parts[i] = ast.FormatLiteral(bank, body[j])
		}
		return strings.Join(parts, ", ")
	}
	shared := func(r *RecRule) string {
		parts := make([]string, len(r.Shared))
		for i, v := range r.Shared {
			parts[i] = syms.String(v)
		}
		return "[" + strings.Join(parts, ",") + "]"
	}

	sb.WriteString("% Algorithm 2: extended counting for cyclic databases.\n")
	sb.WriteString("% left_rI_a / left_rI_b are the ahead/back partitions of each reified\n")
	sb.WriteString("% left part with respect to the query binding (depth-first search).\n")

	goal := syms.String(an.GoalPred)
	fmt.Fprintf(&sb, "c_%s(%s,{(r0,[],nil)}).\n", goal, terms(an.GoalBound))

	// Reified left parts (the paper's a' rules).
	for i := range an.Rec {
		r := &an.Rec[i]
		if r.SkipCounting {
			continue
		}
		left := lits(r.Left, r.Rule.Body)
		if left == "" {
			left = "true"
		}
		fmt.Fprintf(&sb, "left_r%d(%s,%s,%s,r%d) :- %s.\n",
			r.ID, terms(r.HeadBound), terms(r.RecBound), shared(r), r.ID, left)
	}

	// Counting rules over ahead arcs.
	for i := range an.Rec {
		r := &an.Rec[i]
		if r.SkipCounting {
			continue
		}
		headPred := syms.String(r.Rule.Head.Pred)
		recPred := name(r.Rule.Body[r.RecIndex])
		guard := fmt.Sprintf("not (left_r%d_a(W,%s,_,_), W != %s, not c_%s(W,_))",
			r.ID, terms(r.RecBound), terms(r.HeadBound), headPred)
		if r.PushesCounting {
			fmt.Fprintf(&sb, "c_%s(%s,<(r%d,%s,Id)>) :- Id : c_%s(%s,_), left_r%d_a(%s,%s,%s,r%d), %s.\n",
				recPred, terms(r.RecBound), r.ID, shared(r), headPred, terms(r.HeadBound),
				r.ID, terms(r.HeadBound), terms(r.RecBound), shared(r), r.ID, guard)
		} else {
			fmt.Fprintf(&sb, "c_%s(%s,<(R,C,Id)>) :- c_%s(%s,T), (R,C,Id) ∈ T, left_r%d_a(%s,%s,_,_), %s.\n",
				recPred, terms(r.RecBound), headPred, terms(r.HeadBound),
				r.ID, terms(r.HeadBound), terms(r.RecBound), guard)
		}
	}

	// Cycle rules over back arcs.
	for i := range an.Rec {
		r := &an.Rec[i]
		if r.SkipCounting {
			continue
		}
		headPred := syms.String(r.Rule.Head.Pred)
		recPred := name(r.Rule.Body[r.RecIndex])
		if r.PushesCounting {
			fmt.Fprintf(&sb, "cycle_%s(%s,<(r%d,%s,Id)>) :- Id : c_%s(%s,_), left_r%d_b(%s,%s,%s,r%d).\n",
				recPred, terms(r.RecBound), r.ID, shared(r), headPred, terms(r.HeadBound),
				r.ID, terms(r.HeadBound), terms(r.RecBound), shared(r), r.ID)
		} else {
			fmt.Fprintf(&sb, "cycle_%s(%s,<(R,C,Id)>) :- c_%s(%s,T), (R,C,Id) ∈ T, left_r%d_b(%s,%s,_,_).\n",
				recPred, terms(r.RecBound), headPred, terms(r.HeadBound),
				r.ID, terms(r.HeadBound), terms(r.RecBound))
		}
	}

	// The f predicate.
	fmt.Fprintf(&sb, "f(A,S) :- A : c_%s(X,S1), if(cycle_%s(X,S2) then S = S1 ∪ S2 else S = S1).\n",
		goal, goal)

	// Modified exit rules.
	for i := range an.Exit {
		e := &an.Exit[i]
		headPred := syms.String(e.Rule.Head.Pred)
		body := make([]int, len(e.Rule.Body))
		for j := range e.Rule.Body {
			body[j] = j
		}
		exit := lits(body, e.Rule.Body)
		if exit == "" {
			exit = "true"
		}
		fmt.Fprintf(&sb, "%s(%s,S) :- A : c_%s(%s,_), f(A,S), %s.\n",
			headPred, terms(e.Free), headPred, terms(e.Bound), exit)
	}

	// Modified recursive rules.
	for i := range an.Rec {
		r := &an.Rec[i]
		if r.SkipModified {
			continue
		}
		headPred := syms.String(r.Rule.Head.Pred)
		recPred := name(r.Rule.Body[r.RecIndex])
		right := lits(r.Right, r.Rule.Body)
		if right == "" {
			right = "true"
		}
		cnt := ""
		if len(r.BoundInRight) > 0 {
			cnt = fmt.Sprintf(", Id : c_%s(%s,_)", headPred, terms(r.HeadBound))
		}
		if r.PushesModified {
			fmt.Fprintf(&sb, "%s(%s,S) :- %s(%s,T), (r%d,%s,Id) ∈ T, f(Id,S)%s, %s.\n",
				headPred, terms(r.HeadFree), recPred, terms(r.RecFree),
				r.ID, shared(r), cnt, right)
		} else {
			fmt.Fprintf(&sb, "%s(%s,T) :- %s(%s,T)%s, %s.\n",
				headPred, terms(r.HeadFree), recPred, terms(r.RecFree), cnt, right)
		}
	}

	fmt.Fprintf(&sb, "%% query: %s(%s,S), (r0,[],nil) ∈ S.\n", goal, terms(an.GoalFree))
	return sb.String()
}
