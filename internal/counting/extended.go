package counting

import (
	"fmt"
	"strconv"

	"lincount/internal/adorn"
	"lincount/internal/ast"
	"lincount/internal/symtab"
	"lincount/internal/term"
)

// Naming conventions of the rewrite.
const (
	// CountingPrefix is prepended to an adorned predicate name to form
	// its counting predicate.
	CountingPrefix = "c_"
	// EntryFunctor is the functor of path entries e(rule, [shared…]).
	EntryFunctor = "e"
	// RuleIDPrefix prefixes rule identifiers r1, r2, … in path entries.
	RuleIDPrefix = "r"
)

// Rewritten is the output of a counting rewrite. The Program is evaluated
// with the ordinary engine; the Query's answers are the original goal's
// free-argument tuples.
type Rewritten struct {
	Program *ast.Program
	Query   ast.Query
	// CountingPreds maps each counting predicate to the adorned predicate
	// it counts.
	CountingPreds map[symtab.Sym]symtab.Sym
	// AnswerPreds is the set of rewritten answer predicates (the goal
	// clique, with free-args+path signatures).
	AnswerPreds map[symtab.Sym]bool
	// Analysis is the decomposition the rewrite was built from.
	Analysis *Analysis
}

// freshVar returns a variable name starting with base that does not occur
// in used, interned into syms.
func freshVar(syms *symtab.Table, used map[symtab.Sym]bool, base string) symtab.Sym {
	name := base
	for i := 1; ; i++ {
		s := syms.Intern(name)
		if !used[s] {
			used[s] = true
			return s
		}
		name = base + strconv.Itoa(i)
	}
}

// ruleIDConst returns the constant identifying rule r in path entries.
func ruleIDConst(bank *term.Bank, id int) ast.Term {
	return ast.C(term.Symbol(bank.Symbols().Intern(RuleIDPrefix + strconv.Itoa(id))))
}

// entryVars lists the variables a rule's path entry must carry: the shared
// variables C_r plus the bound head variables D_r the right part needs.
//
// Storing D_r in the entry (as §3.2's prose prescribes: "we need to store
// in the list the values of such variables") rather than re-joining the
// counting predicate on the path (Example 4's shortcut) is required for
// soundness of the list representation: non-pushing (right-linear)
// counting rules make several counting nodes share one path, so a join
// c_p(X,L) on the path alone can recover the wrong node. The shortcut is
// only sound under the §3.4 pointer reading, which the Runtime implements.
func entryVars(r *RecRule) []symtab.Sym {
	out := append([]symtab.Sym{}, r.Shared...)
	return append(out, r.BoundInRight...) // disjoint from Shared by construction
}

// entryTerm builds the path entry e(rID, [C_r…, D_r…]) for a recursive rule.
func entryTerm(bank *term.Bank, r *RecRule) ast.Term {
	e := bank.Symbols().Intern(EntryFunctor)
	vars := entryVars(r)
	args := make([]ast.Term, len(vars))
	for i, v := range vars {
		args[i] = ast.V(v)
	}
	return ast.Mk(bank, e, ruleIDConst(bank, r.ID), ast.MkList(bank, args, ast.NilTerm(bank)))
}

// RewriteExtended applies Algorithm 1 (the extended counting rewriting with
// path arguments) to an adorned query. The resulting program is safe on
// databases whose left-part graph is acyclic; on cyclic data its evaluation
// diverges, which the engine budget turns into an error — use the Runtime
// (Algorithm 2) for cyclic data.
func RewriteExtended(a *adorn.Adorned) (*Rewritten, error) {
	an, err := Analyze(a)
	if err != nil {
		return nil, err
	}
	return RewriteFromAnalysis(an)
}

// RewriteFromAnalysis is RewriteExtended starting from an existing
// Analysis, so a compilation pipeline that already analyzed the adorned
// program for strategy selection does not analyze it again per rewrite.
func RewriteFromAnalysis(an *Analysis) (*Rewritten, error) {
	return rewriteFromAnalysis(an)
}

func rewriteFromAnalysis(an *Analysis) (*Rewritten, error) {
	if !an.ListRewriteSafe() {
		return nil, fmt.Errorf("%w: a left-linear rule uses a bound head variable in its right part while other rules grow the counting set; the list representation cannot recover the node (use the counting runtime)", ErrNotApplicable)
	}
	a := an.Adorned
	bank := a.Program.Bank
	syms := bank.Symbols()

	out := &Rewritten{
		Program:       ast.NewProgram(bank),
		CountingPreds: map[symtab.Sym]symtab.Sym{},
		AnswerPreds:   map[symtab.Sym]bool{},
		Analysis:      an,
	}
	countingSym := func(p symtab.Sym) symtab.Sym {
		c := syms.Intern(CountingPrefix + syms.String(p))
		out.CountingPreds[c] = p
		return c
	}
	for p := range an.Clique {
		out.AnswerPreds[p] = true
	}

	// Pass-through rules first (lower strata).
	out.Program.Add(an.Passthrough...)

	// Seed: c_goal(ā, []).
	seedArgs := append(append([]ast.Term{}, an.GoalBound...), ast.NilTerm(bank))
	out.Program.Add(ast.Rule{Head: ast.Literal{
		Pred: countingSym(an.GoalPred),
		Args: seedArgs,
	}})

	// Counting rules.
	for i := range an.Rec {
		r := &an.Rec[i]
		if r.SkipCounting {
			continue
		}
		used := map[symtab.Sym]bool{}
		for _, v := range r.Rule.Vars() {
			used[v] = true
		}
		pathVar := ast.V(freshVar(syms, used, "L"))
		recLit := r.Rule.Body[r.RecIndex]

		var headPath ast.Term
		if r.PushesCounting {
			headPath = ast.MkList(bank, []ast.Term{entryTerm(bank, r)}, pathVar)
		} else {
			headPath = pathVar
		}
		head := ast.Literal{
			Pred: countingSym(recLit.Pred),
			Args: append(append([]ast.Term{}, r.RecBound...), headPath),
		}
		body := []ast.Literal{{
			Pred: countingSym(r.Rule.Head.Pred),
			Args: append(append([]ast.Term{}, r.HeadBound...), pathVar),
		}}
		for _, li := range r.Left {
			body = append(body, r.Rule.Body[li])
		}
		out.Program.Add(ast.Rule{Head: head, Body: body})
	}

	// Modified exit rules.
	for _, e := range an.Exit {
		used := map[symtab.Sym]bool{}
		for _, v := range e.Rule.Vars() {
			used[v] = true
		}
		pathVar := ast.V(freshVar(syms, used, "L"))
		head := ast.Literal{
			Pred: e.Rule.Head.Pred,
			Args: append(append([]ast.Term{}, e.Free...), pathVar),
		}
		body := []ast.Literal{{
			Pred: countingSym(e.Rule.Head.Pred),
			Args: append(append([]ast.Term{}, e.Bound...), pathVar),
		}}
		body = append(body, e.Rule.Body...)
		out.Program.Add(ast.Rule{Head: head, Body: body})
	}

	// Modified recursive rules.
	for i := range an.Rec {
		r := &an.Rec[i]
		if r.SkipModified {
			continue
		}
		used := map[symtab.Sym]bool{}
		for _, v := range r.Rule.Vars() {
			used[v] = true
		}
		pathVar := ast.V(freshVar(syms, used, "L"))
		recLit := r.Rule.Body[r.RecIndex]

		var recPath ast.Term
		if r.PushesModified {
			recPath = ast.MkList(bank, []ast.Term{entryTerm(bank, r)}, pathVar)
		} else {
			recPath = pathVar
		}
		head := ast.Literal{
			Pred: r.Rule.Head.Pred,
			Args: append(append([]ast.Term{}, r.HeadFree...), pathVar),
		}
		body := []ast.Literal{{
			Pred: recLit.Pred,
			Args: append(append([]ast.Term{}, r.RecFree...), recPath),
		}}
		// Pushing rules recover D_r from the entry; only non-pushing
		// (left-linear) rules need the counting literal, and the
		// ListRewriteSafe guard has ensured the counting set is then the
		// seed alone, so the path join is unambiguous.
		if len(r.BoundInRight) > 0 && !r.PushesModified {
			body = append(body, ast.Literal{
				Pred: countingSym(r.Rule.Head.Pred),
				Args: append(append([]ast.Term{}, r.HeadBound...), pathVar),
			})
		}
		for _, ri := range r.Right {
			body = append(body, r.Rule.Body[ri])
		}
		out.Program.Add(ast.Rule{Head: head, Body: body})
	}

	// Query: goal(freeArgs…, []).
	out.Query = ast.Query{Goal: ast.Literal{
		Pred: an.GoalPred,
		Args: append(append([]ast.Term{}, an.GoalFree...), ast.NilTerm(bank)),
	}}
	return out, nil
}

// RewriteClassic applies the classical counting method (integer distance
// index, as in the paper's Example 1). It is only applicable when the goal
// clique has exactly one recursive rule, the left and right part share no
// variables, and no bound head variable occurs in the right part; cyclic
// data additionally makes the rewritten program unsafe at evaluation time.
func RewriteClassic(a *adorn.Adorned) (*Rewritten, error) {
	an, err := Analyze(a)
	if err != nil {
		return nil, err
	}
	return RewriteClassicFromAnalysis(an)
}

// RewriteClassicFromAnalysis is RewriteClassic starting from an existing
// Analysis (the compilation pipeline's shared one).
func RewriteClassicFromAnalysis(an *Analysis) (*Rewritten, error) {
	a := an.Adorned
	if len(an.Clique) != 1 {
		return nil, fmt.Errorf("%w: classical counting requires a single recursive predicate", ErrNotApplicable)
	}
	if len(an.Rec) != 1 {
		return nil, fmt.Errorf("%w: classical counting requires exactly one recursive rule, got %d",
			ErrNotApplicable, len(an.Rec))
	}
	r := &an.Rec[0]
	if len(r.Shared) != 0 || len(r.BoundInRight) != 0 {
		return nil, fmt.Errorf("%w: classical counting requires disjoint left and right parts", ErrNotApplicable)
	}

	bank := a.Program.Bank
	syms := bank.Symbols()
	out := &Rewritten{
		Program:       ast.NewProgram(bank),
		CountingPreds: map[symtab.Sym]symtab.Sym{},
		AnswerPreds:   map[symtab.Sym]bool{an.GoalPred: true},
		Analysis:      an,
	}
	cSym := syms.Intern(CountingPrefix + syms.String(an.GoalPred))
	out.CountingPreds[cSym] = an.GoalPred
	succ := syms.Intern(ast.BuiltinSucc)

	out.Program.Add(an.Passthrough...)

	// Seed: c_goal(ā, 0).
	out.Program.Add(ast.Rule{Head: ast.Literal{
		Pred: cSym,
		Args: append(append([]ast.Term{}, an.GoalBound...), ast.C(term.Int(0))),
	}})

	// Counting rule: c(X1, I1) ← c(X, I), L(A), succ(I, I1).
	used := map[symtab.Sym]bool{}
	for _, v := range r.Rule.Vars() {
		used[v] = true
	}
	iVar := ast.V(freshVar(syms, used, "I"))
	i1Var := ast.V(freshVar(syms, used, "I1"))
	if !r.SkipCounting {
		body := []ast.Literal{{
			Pred: cSym,
			Args: append(append([]ast.Term{}, r.HeadBound...), iVar),
		}}
		for _, li := range r.Left {
			body = append(body, r.Rule.Body[li])
		}
		var headIdx ast.Term = iVar
		if r.PushesCounting {
			body = append(body, ast.Atom(succ, iVar, i1Var))
			headIdx = i1Var
		}
		out.Program.Add(ast.Rule{
			Head: ast.Literal{
				Pred: cSym,
				Args: append(append([]ast.Term{}, r.RecBound...), headIdx),
			},
			Body: body,
		})
	}

	// Modified exit rules: p(Y, I) ← c(X, I), E(B).
	for _, e := range an.Exit {
		usedE := map[symtab.Sym]bool{}
		for _, v := range e.Rule.Vars() {
			usedE[v] = true
		}
		iv := ast.V(freshVar(syms, usedE, "I"))
		body := []ast.Literal{{
			Pred: cSym,
			Args: append(append([]ast.Term{}, e.Bound...), iv),
		}}
		body = append(body, e.Rule.Body...)
		out.Program.Add(ast.Rule{
			Head: ast.Literal{
				Pred: e.Rule.Head.Pred,
				Args: append(append([]ast.Term{}, e.Free...), iv),
			},
			Body: body,
		})
	}

	// Modified recursive rule: p(Y, I) ← p(Y1, I1), succ(I, I1), I ≥ 0,
	// R(B). The level guard I ≥ 0 bounds the downward recursion at the
	// query level; without it the rule would keep decrementing past the
	// answers (the counting literature's "non-negative level" condition).
	if !r.SkipModified {
		recLit := r.Rule.Body[r.RecIndex]
		body := []ast.Literal{}
		var recIdx, headIdx ast.Term = i1Var, iVar
		if !r.PushesModified {
			recIdx = iVar
		}
		body = append(body, ast.Literal{
			Pred: recLit.Pred,
			Args: append(append([]ast.Term{}, r.RecFree...), recIdx),
		})
		if r.PushesModified {
			body = append(body, ast.Atom(succ, iVar, i1Var))
			body = append(body, ast.Atom(syms.Intern(ast.BuiltinGe), iVar, ast.C(term.Int(0))))
		}
		for _, ri := range r.Right {
			body = append(body, r.Rule.Body[ri])
		}
		out.Program.Add(ast.Rule{
			Head: ast.Literal{
				Pred: r.Rule.Head.Pred,
				Args: append(append([]ast.Term{}, r.HeadFree...), headIdx),
			},
			Body: body,
		})
	}

	out.Query = ast.Query{Goal: ast.Literal{
		Pred: an.GoalPred,
		Args: append(append([]ast.Term{}, an.GoalFree...), ast.C(term.Int(0))),
	}}
	return out, nil
}
