package counting

import (
	"errors"
	"fmt"
	"strings"
	"testing"

	"lincount/internal/adorn"
	"lincount/internal/ast"
	"lincount/internal/database"
	"lincount/internal/engine"
	"lincount/internal/parser"
	"lincount/internal/symtab"
	"lincount/internal/term"
)

type rwFixture struct {
	bank *term.Bank
	db   *database.Database
	prog *ast.Program
	q    ast.Query
}

func newRW(t *testing.T, src, goal, facts string) *rwFixture {
	t.Helper()
	b := term.NewBank(symtab.New())
	db := database.New(b)
	if facts != "" {
		if err := db.LoadText(facts); err != nil {
			t.Fatal(err)
		}
	}
	res, err := parser.Parse(b, src)
	if err != nil {
		t.Fatal(err)
	}
	q, err := parser.ParseQuery(b, goal)
	if err != nil {
		t.Fatal(err)
	}
	return &rwFixture{bank: b, db: db, prog: res.Program, q: q}
}

func (f *rwFixture) adorned(t *testing.T) *adorn.Adorned {
	t.Helper()
	a, err := adorn.Adorn(f.prog, f.q)
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func (f *rwFixture) extended(t *testing.T) *Rewritten {
	t.Helper()
	rw, err := RewriteExtended(f.adorned(t))
	if err != nil {
		t.Fatal(err)
	}
	return rw
}

// evalAnswers evaluates a rewritten query and returns formatted answers.
func evalAnswers(t *testing.T, f *rwFixture, rw *Rewritten) []string {
	t.Helper()
	res, err := engine.Eval(rw.Program, f.db, engine.Options{})
	if err != nil {
		t.Fatal(err)
	}
	ts := engine.Answers(res, f.db, rw.Query)
	out := make([]string, len(ts))
	for i, tu := range ts {
		parts := make([]string, len(tu))
		for j, v := range tu {
			parts[j] = f.bank.Format(v)
		}
		out[i] = strings.Join(parts, ",")
	}
	return out
}

// plainAnswers evaluates the original program bottom-up.
func plainAnswers(t *testing.T, f *rwFixture) []string {
	t.Helper()
	res, err := engine.Eval(f.prog, f.db, engine.Options{})
	if err != nil {
		t.Fatal(err)
	}
	ts := engine.Answers(res, f.db, f.q)
	out := make([]string, len(ts))
	for i, tu := range ts {
		parts := make([]string, len(tu))
		for j, v := range tu {
			parts[j] = f.bank.Format(v)
		}
		out[i] = strings.Join(parts, ",")
	}
	return out
}

func ruleSet(b *term.Bank, p *ast.Program) map[string]bool {
	out := map[string]bool{}
	for _, r := range p.Rules {
		out[ast.FormatRule(b, r)] = true
	}
	return out
}

func wantRules(t *testing.T, b *term.Bank, p *ast.Program, want []string) {
	t.Helper()
	got := ruleSet(b, p)
	for _, w := range want {
		if !got[w] {
			t.Errorf("missing rule %q in:\n%s", w, p.Format())
		}
	}
	if len(got) != len(want) {
		t.Errorf("program has %d rules, want %d:\n%s", len(got), len(want), p.Format())
	}
}

// TestExample1ExtendedRewrite reproduces the structure of Example 1's
// counting program (single rule, no shared variables): the path argument
// plays the role of the integer index.
func TestExample1ExtendedRewrite(t *testing.T) {
	f := newRW(t, `
sg(X,Y) :- flat(X,Y).
sg(X,Y) :- up(X,X1), sg(X1,Y1), down(Y1,Y).
`, "?- sg(a,Y).", "")
	rw := f.extended(t)
	wantRules(t, f.bank, rw.Program, []string{
		"c_sg_bf(a,[]).",
		"c_sg_bf(X1,[e(r1,[])|L]) :- c_sg_bf(X,L), up(X,X1).",
		"sg_bf(Y,L) :- c_sg_bf(X,L), flat(X,Y).",
		"sg_bf(Y,L) :- sg_bf(Y1,[e(r1,[])|L]), down(Y1,Y).",
	})
	if got := ast.FormatQuery(f.bank, rw.Query); got != "?- sg_bf(Y,[])." {
		t.Errorf("query = %s", got)
	}
}

// TestExample3MultiRule reproduces Example 3: two recursive rules; the path
// records which rule was applied so the answer phase can undo them in
// reverse order.
func TestExample3MultiRule(t *testing.T) {
	f := newRW(t, `
sg(X,Y) :- flat(X,Y).
sg(X,Y) :- up1(X,X1), sg(X1,Y1), down1(Y1,Y).
sg(X,Y) :- up2(X,X1), sg(X1,Y1), down2(Y1,Y).
`, "?- sg(a,Y).", "")
	rw := f.extended(t)
	wantRules(t, f.bank, rw.Program, []string{
		"c_sg_bf(a,[]).",
		"c_sg_bf(X1,[e(r1,[])|L]) :- c_sg_bf(X,L), up1(X,X1).",
		"c_sg_bf(X1,[e(r2,[])|L]) :- c_sg_bf(X,L), up2(X,X1).",
		"sg_bf(Y,L) :- c_sg_bf(X,L), flat(X,Y).",
		"sg_bf(Y,L) :- sg_bf(Y1,[e(r1,[])|L]), down1(Y1,Y).",
		"sg_bf(Y,L) :- sg_bf(Y1,[e(r2,[])|L]), down2(Y1,Y).",
	})
}

// TestExample3RuleSequencesMatter verifies the point of Example 3: the
// answer phase must undo the rules in reverse order of their application.
// With up1;up2 applied downward, only down2;down1 leads back to an answer.
func TestExample3RuleSequencesMatter(t *testing.T) {
	f := newRW(t, `
sg(X,Y) :- flat(X,Y).
sg(X,Y) :- up1(X,X1), sg(X1,Y1), down1(Y1,Y).
sg(X,Y) :- up2(X,X1), sg(X1,Y1), down2(Y1,Y).
`, "?- sg(a,Y).", `
up1(a,b). up2(b,c). flat(c,c2).
down2(c2,d). down1(d,good).
down1(c2,e). down2(e,bad).
`)
	rw := f.extended(t)
	got := evalAnswers(t, f, rw)
	if fmt.Sprint(got) != "[good,[]]" {
		t.Errorf("answers = %v, want [good,[]]", got)
	}
	if fmt.Sprint(plainAnswers(t, f)) != "[a,good]" {
		t.Errorf("plain answers disagree: %v", plainAnswers(t, f))
	}
}

// TestExample4Rewrite reproduces the rewritten program of Example 4 in its
// sound list form. The paper's §3.2 prose prescribes storing in the path
// entries the values of every variable the answer phase needs; its
// Example 4 listing then short-cuts the bound head variable X of rule r2
// through a counting-predicate join (`c_p(X,L)`), which is only correct
// under the §3.4 pointer reading — with path lists, non-pushing rules can
// make several counting nodes share one path and the join picks the wrong
// node (our random-program fuzz test exposes this). We therefore emit the
// §3.2 form: X is stored in r2's entry and no counting literal is needed.
// The omission of the counting literal in the r1 modified rule (D_r = ∅)
// matches the paper's remark verbatim.
func TestExample4Rewrite(t *testing.T) {
	f := newRW(t, `
p(X,Y) :- flat(X,Y).
p(X,Y) :- up1(X,X1,W), p(X1,Y1), down1(Y1,Y,W).
p(X,Y) :- up2(X,X1), p(X1,Y1), down2(Y1,Y,X).
`, "?- p(a,Y).", "")
	rw := f.extended(t)
	wantRules(t, f.bank, rw.Program, []string{
		"c_p_bf(a,[]).",
		"c_p_bf(X1,[e(r1,[W])|L]) :- c_p_bf(X,L), up1(X,X1,W).",
		"c_p_bf(X1,[e(r2,[X])|L]) :- c_p_bf(X,L), up2(X,X1).",
		"p_bf(Y,L) :- c_p_bf(X,L), flat(X,Y).",
		"p_bf(Y,L) :- p_bf(Y1,[e(r1,[W])|L]), down1(Y1,Y,W).",
		"p_bf(Y,L) :- p_bf(Y1,[e(r2,[X])|L]), down2(Y1,Y,X).",
	})
}

// TestPathAmbiguityIsSound is the regression test for the soundness fix:
// a rule with D_r ≠ ∅ mixed with right-linear (non-pushing) rules, on data
// where several counting nodes share the empty path. The Example 4
// shortcut would join c_p(X,[]) and wrongly admit X = a.
func TestPathAmbiguityIsSound(t *testing.T) {
	f := newRW(t, `
p(X,Y) :- flat(X,Y).
p(X,Y) :- up1(X,X1), p(X1,Y1), down1(Y1,Y,X).
p(X,Y) :- up2(X,X1), p(X1,Y).
`, "?- p(a,Y).", `
up2(a,b). up1(b,c). flat(c,fc).
down1(fc,viaB,b). down1(fc,viaA,a).
`)
	rw := f.extended(t)
	got := evalAnswers(t, f, rw)
	// Only viaB is derivable: the up1 step was taken at node b, so the
	// down1 step must use X = b. (flat(c,fc) also makes fc an answer at
	// node c... it does not: answers surface only at the source path [].)
	plain := plainAnswers(t, f)
	var plainFree []string
	for _, pr := range plain {
		plainFree = append(plainFree, strings.SplitN(pr, ",", 2)[1]+",[]")
	}
	if fmt.Sprint(got) != fmt.Sprint(plainFree) {
		t.Errorf("extended %v, plain %v", got, plainFree)
	}
	for _, g := range got {
		if strings.Contains(g, "viaA") {
			t.Errorf("unsound answer viaA derived: %v", got)
		}
	}
}

// TestExample4FirstDatabase checks the exact fact sets the paper lists for
// the first database of Example 4.
func TestExample4FirstDatabase(t *testing.T) {
	f := newRW(t, `
p(X,Y) :- flat(X,Y).
p(X,Y) :- up1(X,X1,W), p(X1,Y1), down1(Y1,Y,W).
p(X,Y) :- up2(X,X1), p(X1,Y1), down2(Y1,Y,X).
`, "?- p(a,Y).", `
up1(a,b,1). flat(b,c). down1(c,d,2). down1(c,e,1).
`)
	rw := f.extended(t)
	res, err := engine.Eval(rw.Program, f.db, engine.Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Counting set: c_p(a,[]), c_p(b,[(r1,[1])]).
	cp := res.Relation(f.bank.Symbols().Intern("c_p_bf"))
	if cp.Len() != 2 {
		t.Errorf("counting set has %d tuples, want 2", cp.Len())
	}
	// Answer set: p(c,[(r1,[1])]), p(e,[]).
	p := res.Relation(f.bank.Symbols().Intern("p_bf"))
	gotP := map[string]bool{}
	for _, tu := range p.Tuples() {
		gotP[f.bank.Format(tu[0])+"/"+f.bank.Format(tu[1])] = true
	}
	want := []string{"c/[e(r1,[1])]", "e/[]"}
	for _, w := range want {
		if !gotP[w] {
			t.Errorf("missing p tuple %s, got %v", w, gotP)
		}
	}
	if len(gotP) != 2 {
		t.Errorf("p has %d tuples, want 2: %v", len(gotP), gotP)
	}
	if got := evalAnswers(t, f, rw); fmt.Sprint(got) != "[e,[]]" {
		t.Errorf("answers = %v", got)
	}
	if got := plainAnswers(t, f); fmt.Sprint(got) != "[a,e]" {
		t.Errorf("plain answers = %v", got)
	}
}

// TestExample4SecondDatabase checks the second database of Example 4: the
// bound head variable X of rule r2 constrains down1 via the counting
// predicate.
func TestExample4SecondDatabase(t *testing.T) {
	f := newRW(t, `
p(X,Y) :- flat(X,Y).
p(X,Y) :- up1(X,X1,W), p(X1,Y1), down1(Y1,Y,W).
p(X,Y) :- up2(X,X1), p(X1,Y1), down2(Y1,Y,X).
`, "?- p(a,Y).", `
up2(a,b). flat(b,c). down2(c,d,b). down2(c,e,a).
`)
	rw := f.extended(t)
	got := evalAnswers(t, f, rw)
	if fmt.Sprint(got) != "[e,[]]" {
		t.Errorf("answers = %v, want [e,[]] (down2 must be joined with X=a)", got)
	}
	if fmt.Sprint(plainAnswers(t, f)) != "[a,e]" {
		t.Errorf("plain answers disagree")
	}
}

// TestExtendedEquivalenceAcyclic is the Theorem 1 check on a batch of
// acyclic databases: extended counting and plain evaluation agree.
func TestExtendedEquivalenceAcyclic(t *testing.T) {
	cases := []struct{ src, goal, facts string }{
		{
			`sg(X,Y) :- flat(X,Y).
sg(X,Y) :- up(X,X1), sg(X1,Y1), down(Y1,Y).`,
			"?- sg(a,Y).",
			`up(a,b). up(b,c). up(a,d). flat(c,c2). flat(d,d2). flat(b,b2).
down(c2,x1). down(x1,x2). down(b2,x3). down(d2,x4). down(x4,x5).`,
		},
		{
			`p(X,Y) :- flat(X,Y).
p(X,Y) :- up(X,X1), q(X1,Y1), down(Y1,Y).
q(X,Y) :- over(X,X1), p(X1,Y1), under(Y1,Y).`,
			"?- p(s,Y).",
			`up(s,m). over(m,k). flat(k,k2). flat(s,s2). flat(m,m2).
under(k2,u1). down(u1,v1). under(m2,u2). down(m2,v2).`,
		},
		{
			`r(X,Y) :- base(X,Y).
r(X,Y) :- step(X,W,X1), r(X1,Y1), back(Y1,Y,W).`,
			"?- r(n0,Y).",
			`step(n0,w1,n1). step(n1,w2,n2). step(n0,w3,n2).
base(n2,b1). base(n1,b2). base(n0,b3).
back(b1,c1,w2). back(c1,c2,w1). back(b1,c3,w3). back(b2,c4,w1). back(b2,c5,w9).`,
		},
	}
	for i, c := range cases {
		f := newRW(t, c.src, c.goal, c.facts)
		rw := f.extended(t)
		got := evalAnswers(t, f, rw)
		plain := plainAnswers(t, f)
		// Plain answers have the bound argument; extended answers carry
		// (free..., path) with path []. Compare the free parts.
		var plainFree, gotFree []string
		for _, p := range plain {
			parts := strings.SplitN(p, ",", 2)
			plainFree = append(plainFree, parts[1])
		}
		for _, g := range got {
			gotFree = append(gotFree, strings.TrimSuffix(g, ",[]"))
		}
		if fmt.Sprint(plainFree) != fmt.Sprint(gotFree) {
			t.Errorf("case %d: plain %v, extended %v", i, plainFree, gotFree)
		}
	}
}

// TestExtendedUnsafeOnCyclicData documents the limitation Theorem 1 states:
// on cyclic left-part data the Algorithm 1 program diverges, which the
// engine budget reports as an error (Algorithm 2's runtime handles cycles).
func TestExtendedUnsafeOnCyclicData(t *testing.T) {
	f := newRW(t, `
sg(X,Y) :- flat(X,Y).
sg(X,Y) :- up(X,X1), sg(X1,Y1), down(Y1,Y).
`, "?- sg(a,Y).", `
up(a,b). up(b,a). flat(a,f). down(f,g).
`)
	rw := f.extended(t)
	_, err := engine.Eval(rw.Program, f.db, engine.Options{MaxDerivedFacts: 10000})
	if !errors.Is(err, engine.ErrBudget) {
		t.Errorf("err = %v, want ErrBudget", err)
	}
}

// TestClassicExample1 reproduces the classical counting rewrite of
// Example 1 with an integer index.
func TestClassicExample1(t *testing.T) {
	f := newRW(t, `
sg(X,Y) :- flat(X,Y).
sg(X,Y) :- up(X,X1), sg(X1,Y1), down(Y1,Y).
`, "?- sg(a,Y).", "")
	rw, err := RewriteClassic(f.adorned(t))
	if err != nil {
		t.Fatal(err)
	}
	wantRules(t, f.bank, rw.Program, []string{
		"c_sg_bf(a,0).",
		"c_sg_bf(X1,I1) :- c_sg_bf(X,I), up(X,X1), succ(I,I1).",
		"sg_bf(Y,I) :- c_sg_bf(X,I), flat(X,Y).",
		"sg_bf(Y,I) :- sg_bf(Y1,I1), succ(I,I1), I >= 0, down(Y1,Y).",
	})
	if got := ast.FormatQuery(f.bank, rw.Query); got != "?- sg_bf(Y,0)." {
		t.Errorf("query = %s", got)
	}
}

func TestClassicEvaluates(t *testing.T) {
	f := newRW(t, `
sg(X,Y) :- flat(X,Y).
sg(X,Y) :- up(X,X1), sg(X1,Y1), down(Y1,Y).
`, "?- sg(a,Y).", `
up(a,b). up(b,c). flat(c,c2). down(c2,d1). down(d1,d2).
`)
	rw, err := RewriteClassic(f.adorned(t))
	if err != nil {
		t.Fatal(err)
	}
	got := evalAnswers(t, f, rw)
	if fmt.Sprint(got) != "[d2,0]" {
		t.Errorf("answers = %v", got)
	}
}

func TestClassicRejectsMultipleRules(t *testing.T) {
	f := newRW(t, `
sg(X,Y) :- flat(X,Y).
sg(X,Y) :- up1(X,X1), sg(X1,Y1), down1(Y1,Y).
sg(X,Y) :- up2(X,X1), sg(X1,Y1), down2(Y1,Y).
`, "?- sg(a,Y).", "")
	if _, err := RewriteClassic(f.adorned(t)); !errors.Is(err, ErrNotApplicable) {
		t.Errorf("err = %v, want ErrNotApplicable", err)
	}
}

func TestClassicRejectsSharedVariables(t *testing.T) {
	f := newRW(t, `
p(X,Y) :- flat(X,Y).
p(X,Y) :- up(X,X1,W), p(X1,Y1), down(Y1,Y,W).
`, "?- p(a,Y).", "")
	if _, err := RewriteClassic(f.adorned(t)); !errors.Is(err, ErrNotApplicable) {
		t.Errorf("err = %v, want ErrNotApplicable", err)
	}
}

func TestClassicRejectsBoundHeadVarInRight(t *testing.T) {
	f := newRW(t, `
p(X,Y) :- flat(X,Y).
p(X,Y) :- up(X,X1), p(X1,Y1), down(Y1,Y,X).
`, "?- p(a,Y).", "")
	if _, err := RewriteClassic(f.adorned(t)); !errors.Is(err, ErrNotApplicable) {
		t.Errorf("err = %v, want ErrNotApplicable", err)
	}
}

// TestExtendedMutualRecursion: two mutually recursive predicates with
// different relations; counting predicates are generated for both.
func TestExtendedMutualRecursion(t *testing.T) {
	f := newRW(t, `
p(X,Y) :- flat(X,Y).
p(X,Y) :- up(X,X1), q(X1,Y1), down(Y1,Y).
q(X,Y) :- over(X,X1), p(X1,Y1), under(Y1,Y).
`, "?- p(a,Y).", `
up(a,b). over(b,c). up(c,d).
flat(d,d2). flat(a,a2).
under(d2,u). down(u,v). under(v,w). down(a2,z).
`)
	rw := f.extended(t)
	text := rw.Program.Format()
	if !strings.Contains(text, "c_p_bf") || !strings.Contains(text, "c_q_bf") {
		t.Fatalf("missing counting predicates:\n%s", text)
	}
	got := evalAnswers(t, f, rw)
	plain := plainAnswers(t, f)
	var plainFree []string
	for _, p := range plain {
		plainFree = append(plainFree, strings.SplitN(p, ",", 2)[1])
	}
	var gotFree []string
	for _, g := range got {
		gotFree = append(gotFree, strings.TrimSuffix(g, ",[]"))
	}
	if fmt.Sprint(plainFree) != fmt.Sprint(gotFree) {
		t.Errorf("plain %v, extended %v", plainFree, gotFree)
	}
}
