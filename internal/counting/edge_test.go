package counting

import (
	"fmt"
	"strings"
	"testing"
)

// Edge cases of the rewrites and runtime beyond the paper's examples.

// TestConstantsInRuleHeads: exit and recursive rules with constants in
// bound and free head positions.
func TestConstantsInRuleHeads(t *testing.T) {
	f := newRW(t, `
p(root,toplevel).
p(X,Y) :- up(X,X1), p(X1,Y1), down(Y1,Y).
`, "?- p(a,Y).", `
up(a,root). down(toplevel,w).
`)
	// Plain evaluation: p(a,w) via the fact p(root,toplevel).
	plain := plainAnswers(t, f)
	if fmt.Sprint(plain) != "[a,w]" {
		t.Fatalf("plain = %v", plain)
	}
	rw := f.extended(t)
	got := evalAnswers(t, f, rw)
	if fmt.Sprint(got) != "[w,[]]" {
		t.Errorf("extended = %v", got)
	}
	// Runtime agrees.
	an, err := Analyze(f.adorned(t))
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(an, f.db, RuntimeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Answers) != 1 || f.bank.Format(res.Answers[0][0]) != "w" {
		t.Errorf("runtime = %v", res.Answers)
	}
}

// TestCompoundBoundArgument: the query constant is a compound term; nodes
// of the counting set are compounds.
func TestCompoundBoundArgument(t *testing.T) {
	f := newRW(t, `
r(X,Y) :- base(X,Y).
r(X,Y) :- step(X,X1), r(X1,Y1), back(Y1,Y).
`, "?- r(pair(a,b),Y).", `
step(pair(a,b),pair(b,c)). base(pair(b,c),hit). back(hit,out).
`)
	an, err := Analyze(f.adorned(t))
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(an, f.db, RuntimeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Answers) != 1 || f.bank.Format(res.Answers[0][0]) != "out" {
		t.Errorf("runtime answers = %v", res.Answers)
	}
	if res.Stats.CountingNodes != 2 {
		t.Errorf("counting nodes = %d", res.Stats.CountingNodes)
	}
	// The extended rewrite also works.
	rw := f.extended(t)
	got := evalAnswers(t, f, rw)
	if fmt.Sprint(got) != "[out,[]]" {
		t.Errorf("extended = %v", got)
	}
}

// TestMultipleBoundArguments: two bound positions form the counting node.
func TestMultipleBoundArguments(t *testing.T) {
	f := newRW(t, `
g(A,B,Y) :- base(A,B,Y).
g(A,B,Y) :- move(A,B,A1,B1), g(A1,B1,Y1), undo(Y1,Y).
`, "?- g(x,y,Out).", `
move(x,y,u,v). base(u,v,deep). undo(deep,answer).
base(x,y,shallow).
`)
	plain := plainAnswers(t, f)
	rw := f.extended(t)
	got := evalAnswers(t, f, rw)
	var gotFree, plainFree []string
	for _, g := range got {
		gotFree = append(gotFree, strings.TrimSuffix(g, ",[]"))
	}
	for _, p := range plain {
		parts := strings.SplitN(p, ",", 3)
		plainFree = append(plainFree, parts[2])
	}
	if fmt.Sprint(gotFree) != fmt.Sprint(plainFree) {
		t.Errorf("extended %v, plain %v", gotFree, plainFree)
	}
	an, err := Analyze(f.adorned(t))
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(an, f.db, RuntimeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Answers) != len(plain) {
		t.Errorf("runtime %v, plain %v", res.Answers, plain)
	}
}

// TestRepeatedVariableInGoal: sg(a,a)-style goals where the bound pattern
// repeats across positions.
func TestRepeatedHeadVariable(t *testing.T) {
	f := newRW(t, `
p(X,X,tag) :- self(X).
p(X,Y,Z) :- up(X,X1), p(X1,Y1,Z1), down(Y1,Y,Z1,Z).
`, "?- p(a,Y,Z).", `
up(a,b). self(b). down(b,q,tag,final).
`)
	plain := plainAnswers(t, f)
	rw := f.extended(t)
	got := evalAnswers(t, f, rw)
	if len(got) != len(plain) {
		t.Errorf("extended %v, plain %v", got, plain)
	}
}

// TestReduceOnClassicRewrite: Algorithm 3 also applies to the classic
// integer rewrite — the index is deleted exactly when nothing increments
// it.
func TestReduceOnClassicRewrite(t *testing.T) {
	// Right-linear: the classic counting rule copies I unchanged.
	f := newRW(t, `
p(X,Y) :- flat(X,Y).
p(X,Y) :- up(X,X1), p(X1,Y).
`, "?- p(a,Y).", "")
	rw, err := RewriteClassic(f.adorned(t))
	if err != nil {
		t.Fatal(err)
	}
	red := Reduce(rw)
	text := red.Program.Format()
	if strings.Contains(text, "succ") {
		t.Errorf("reduced classic program still counts:\n%s", text)
	}
	if !strings.Contains(text, "c_p_bf(a).") {
		t.Errorf("index not deleted:\n%s", text)
	}

	// General rule: the index is incremented, nothing may be deleted.
	f2 := newRW(t, `
sg(X,Y) :- flat(X,Y).
sg(X,Y) :- up(X,X1), sg(X1,Y1), down(Y1,Y).
`, "?- sg(a,Y).", "")
	rw2, err := RewriteClassic(f2.adorned(t))
	if err != nil {
		t.Fatal(err)
	}
	red2 := Reduce(rw2)
	if len(red2.Program.Rules) != len(rw2.Program.Rules) {
		t.Errorf("general classic program was reduced:\n%s", red2.Program.Format())
	}
}

// TestRuntimeStatsShape: counters are populated and consistent.
func TestRuntimeStatsShape(t *testing.T) {
	f := newRW(t, sgProgram, "?- sg(a,Y).", example5Facts)
	an, err := Analyze(f.adorned(t))
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(an, f.db, RuntimeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	s := res.Stats
	if s.CountingNodes != 5 || s.AheadEntries != 6 || s.BackEntries != 1 {
		t.Errorf("graph stats: %+v", s)
	}
	if s.AnswerTuples < len(res.Answers) || s.Moves < int64(s.AnswerTuples) {
		t.Errorf("answer stats inconsistent: %+v", s)
	}
	if s.Solves == 0 || s.Probes == 0 {
		t.Errorf("matcher stats empty: %+v", s)
	}
}

// TestEvalAnswersViaEngineMatchesRuntimeOnDeepSharedVars: a longer
// shared-variable chain exercises entry values through many levels.
func TestDeepSharedVarsAgreement(t *testing.T) {
	var facts strings.Builder
	const n = 12
	for i := 0; i < n; i++ {
		fmt.Fprintf(&facts, "up(u%d,u%d,w%d). ", i, i+1, i%3)
	}
	fmt.Fprintf(&facts, "flat(u%d,d%d). ", n, n)
	for i := n; i > 0; i-- {
		fmt.Fprintf(&facts, "down(d%d,d%d,w%d). ", i, i-1, (i-1)%3)
		fmt.Fprintf(&facts, "down(d%d,x%d,w%d). ", i, i-1, (i+1)%3)
	}
	f := newRW(t, `
sg(X,Y) :- flat(X,Y).
sg(X,Y) :- up(X,X1,W), sg(X1,Y1), down(Y1,Y,W).
`, "?- sg(u0,Y).", facts.String())
	plain := plainAnswers(t, f)
	an, err := Analyze(f.adorned(t))
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(an, f.db, RuntimeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	var runtimeAns, plainFree []string
	for _, a := range res.Answers {
		runtimeAns = append(runtimeAns, f.bank.Format(a[0]))
	}
	for _, p := range plain {
		plainFree = append(plainFree, strings.SplitN(p, ",", 2)[1])
	}
	if fmt.Sprint(runtimeAns) != fmt.Sprint(plainFree) {
		t.Errorf("runtime %v, plain %v", runtimeAns, plainFree)
	}
}
