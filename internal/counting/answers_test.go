package counting

import (
	"testing"

	"lincount/internal/database"
	"lincount/internal/engine"
	"lincount/internal/term"
)

func TestOriginalTupleInterleaving(t *testing.T) {
	b1, b2 := term.Int(1), term.Int(2)
	f1, f2 := term.Int(10), term.Int(20)
	cases := []struct {
		pattern string
		bound   []term.Value
		frees   []term.Value
		want    database.Tuple
	}{
		{"bf", []term.Value{b1}, []term.Value{f1}, database.Tuple{b1, f1}},
		{"fb", []term.Value{b1}, []term.Value{f1}, database.Tuple{f1, b1}},
		{"bfbf", []term.Value{b1, b2}, []term.Value{f1, f2}, database.Tuple{b1, f1, b2, f2}},
		{"ff", nil, []term.Value{f1, f2}, database.Tuple{f1, f2}},
		{"bb", []term.Value{b1, b2}, nil, database.Tuple{b1, b2}},
	}
	for _, c := range cases {
		got := OriginalTuple(c.pattern, c.bound, c.frees)
		if !got.Equal(c.want) {
			t.Errorf("pattern %s: got %v want %v", c.pattern, got, c.want)
		}
	}
}

func TestReconstructAnswersDropsPath(t *testing.T) {
	f := newRW(t, `
sg(X,Y) :- flat(X,Y).
sg(X,Y) :- up(X,X1), sg(X1,Y1), down(Y1,Y).
`, "?- sg(a,Y).", "up(a,b). flat(b,f). down(f,g).")
	rw := f.extended(t)
	res, err := engine.Eval(rw.Program, f.db, engine.Options{})
	if err != nil {
		t.Fatal(err)
	}
	raw := engine.Answers(res, f.db, rw.Query)
	full := rw.ReconstructAnswers(raw)
	if len(full) != 1 {
		t.Fatalf("answers = %v", full)
	}
	if len(full[0]) != 2 {
		t.Errorf("reconstructed arity = %d, want 2", len(full[0]))
	}
	if f.bank.Format(full[0][0]) != "a" || f.bank.Format(full[0][1]) != "g" {
		t.Errorf("tuple = [%s %s]", f.bank.Format(full[0][0]), f.bank.Format(full[0][1]))
	}
}

func TestReconstructAnswersReducedNoPath(t *testing.T) {
	f := newRW(t, `
p(X,Y) :- flat(X,Y).
p(X,Y) :- up(X,X1), p(X1,Y).
`, "?- p(a,Y).", "up(a,b). flat(b,leaf).")
	rw := Reduce(f.extended(t))
	// The reduced query has no path argument.
	if len(rw.Query.Goal.Args) != 1 {
		t.Fatalf("reduced goal arity = %d", len(rw.Query.Goal.Args))
	}
	res, err := engine.Eval(rw.Program, f.db, engine.Options{})
	if err != nil {
		t.Fatal(err)
	}
	raw := engine.Answers(res, f.db, rw.Query)
	full := rw.ReconstructAnswers(raw)
	if len(full) != 1 || f.bank.Format(full[0][1]) != "leaf" {
		t.Errorf("answers = %v", full)
	}
}

func TestReconstructRuntimeAnswers(t *testing.T) {
	f := newRW(t, sgProgram, "?- sg(a,Y).", "flat(a,z).")
	an, err := Analyze(f.adorned(t))
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(an, f.db, RuntimeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	full := ReconstructRuntimeAnswers(an, res.Answers)
	if len(full) != 1 || f.bank.Format(full[0][0]) != "a" || f.bank.Format(full[0][1]) != "z" {
		t.Errorf("answers = %v", full)
	}
}

func TestGoalBoundValues(t *testing.T) {
	f := newRW(t, `
p(X,Z,Y) :- e(X,Z,Y).
p(X,Z,Y) :- up(X,X1), p(X1,Z,Y1), down(Y1,Y).
`, "?- p(a,b,Y).", "")
	an, err := Analyze(f.adorned(t))
	if err != nil {
		t.Fatal(err)
	}
	vals := an.GoalBoundValues()
	if len(vals) != 2 {
		t.Fatalf("bound values = %d", len(vals))
	}
	if f.bank.Format(vals[0]) != "a" || f.bank.Format(vals[1]) != "b" {
		t.Errorf("values = %s, %s", f.bank.Format(vals[0]), f.bank.Format(vals[1]))
	}
}
