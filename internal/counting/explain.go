package counting

import (
	"context"
	"fmt"
	"strings"

	"lincount/internal/ast"
	"lincount/internal/database"
	"lincount/internal/term"
)

// Provenance support: because every answer-phase tuple is produced by
// either an exit rule at a counting node or by undoing one recursive rule
// from another tuple, recording the first parent of each tuple yields a
// derivation witness for every answer at negligible cost — a benefit of
// the pointer-based counting structure the paper's §3.4 representation
// makes explicit.

// StepKind classifies one derivation step.
type StepKind uint8

const (
	// StepExit: the tuple was seeded by an exit rule at a counting node.
	StepExit StepKind = iota
	// StepMove: the tuple was derived by undoing a recursive rule's left
	// step (consuming a predecessor entry).
	StepMove
	// StepSame: the tuple was derived by a left-linear rule at the same
	// node.
	StepSame
)

// DerivationStep is one step of a witness, in derivation order (exit
// first, answer last).
type DerivationStep struct {
	Kind StepKind
	// Rule is the source rule (exit or recursive) of this step.
	Rule ast.Rule
	// Node renders the counting node the step landed on.
	Node string
	// Tuple renders the answer tuple after the step.
	Tuple string
}

// Derivation is a full witness for one answer.
type Derivation struct {
	Steps []DerivationStep
}

// Format renders the derivation as indented text.
func (d *Derivation) Format(bank *term.Bank) string {
	var sb strings.Builder
	for i, s := range d.Steps {
		switch s.Kind {
		case StepExit:
			fmt.Fprintf(&sb, "%2d. exit  %-30s at node %s -> %s\n",
				i+1, ast.FormatRule(bank, s.Rule), s.Node, s.Tuple)
		case StepMove:
			fmt.Fprintf(&sb, "%2d. undo  %-30s back to node %s -> %s\n",
				i+1, ast.FormatRule(bank, s.Rule), s.Node, s.Tuple)
		default:
			fmt.Fprintf(&sb, "%2d. apply %-30s at node %s -> %s\n",
				i+1, ast.FormatRule(bank, s.Rule), s.Node, s.Tuple)
		}
	}
	return sb.String()
}

// tupleMeta records how a tuple was first derived. The meta slice runs
// parallel to the runtime's dense tuple ids: meta[id] describes tuple id,
// and parent is itself a tuple id (-1 for exit seeds).
type tupleMeta struct {
	kind   StepKind
	rule   int // Exit: index into an.Exit; Move/Same: index into an.Rec
	parent int32
}

// enableProvenance switches the runtime into recording mode; it must be
// called before Run.
func (rt *Runtime) enableProvenance() {
	rt.provenance = true
}

// Explain returns a derivation witness for one goal answer (a tuple of the
// goal's free arguments, as returned in RunResult.Answers). Run must have
// been executed with provenance enabled (see RunWithProvenance).
func (rt *Runtime) Explain(answer database.Tuple) (*Derivation, error) {
	if !rt.provenance {
		return nil, fmt.Errorf("counting: provenance was not recorded; use RunWithProvenance")
	}
	id := rt.findTuple(rt.an.GoalPred, answer, 0)
	if id < 0 {
		return nil, fmt.Errorf("counting: no such answer")
	}
	// Walk parents back to the exit seed, collecting steps in reverse.
	var rev []DerivationStep
	cur := id
	for {
		if int(cur) >= len(rt.meta) {
			return nil, fmt.Errorf("counting: provenance chain broken at tuple %d", cur)
		}
		m := rt.meta[cur]
		step := DerivationStep{
			Kind:  m.kind,
			Node:  rt.formatNode(rt.tuples[cur].node),
			Tuple: rt.formatTuple(cur),
		}
		switch m.kind {
		case StepExit:
			step.Rule = rt.an.Exit[m.rule].Rule
		default:
			step.Rule = rt.an.Rec[m.rule].Rule
		}
		rev = append(rev, step)
		if m.kind == StepExit {
			break
		}
		cur = m.parent
	}
	// Reverse into derivation order.
	d := &Derivation{Steps: make([]DerivationStep, len(rev))}
	for i, s := range rev {
		d.Steps[len(rev)-1-i] = s
	}
	return d, nil
}

func (rt *Runtime) formatNode(id int32) string {
	vals := rt.nodeVals(id)
	parts := make([]string, len(vals))
	for i, v := range vals {
		parts[i] = rt.bank.Format(v)
	}
	return "(" + strings.Join(parts, ",") + ")"
}

func (rt *Runtime) formatTuple(id int32) string {
	frees := rt.tupleFrees(id)
	parts := make([]string, len(frees))
	for i, v := range frees {
		parts[i] = rt.bank.Format(v)
	}
	return rt.bank.Symbols().String(rt.tuples[id].pred) + "(" + strings.Join(parts, ",") + ")@" + rt.formatNode(rt.tuples[id].node)
}

// RunWithProvenance runs the query recording derivation parents, and
// returns the runtime (for Explain) along with the result.
func RunWithProvenance(an *Analysis, db *database.Database, opts RuntimeOptions) (*Runtime, *RunResult, error) {
	return RunWithProvenanceContext(context.Background(), an, db, opts)
}

// RunWithProvenanceContext is RunWithProvenance under a context (see
// NewRuntimeContext).
func RunWithProvenanceContext(ctx context.Context, an *Analysis, db *database.Database, opts RuntimeOptions) (*Runtime, *RunResult, error) {
	rt, err := NewRuntimeContext(ctx, an, db, opts)
	if err != nil {
		return nil, nil, err
	}
	rt.enableProvenance()
	res, err := rt.Run()
	if err != nil {
		return nil, nil, err
	}
	return rt, res, nil
}

// ExplainAll formats a witness for every answer.
func ExplainAll(rt *Runtime, res *RunResult) ([]string, error) {
	out := make([]string, 0, len(res.Answers))
	for _, a := range res.Answers {
		d, err := rt.Explain(a)
		if err != nil {
			return nil, err
		}
		out = append(out, d.Format(rt.bank))
	}
	return out, nil
}
