package counting

import (
	"lincount/internal/database"
	"lincount/internal/term"
)

// OriginalTuple rebuilds an original-goal tuple from the query's bound
// constants and an answer's free values, interleaved by the adornment
// pattern.
func OriginalTuple(pattern string, bound, frees []term.Value) database.Tuple {
	out := make(database.Tuple, 0, len(bound)+len(frees))
	bi, fi := 0, 0
	for i := 0; i < len(pattern); i++ {
		if pattern[i] == 'b' {
			out = append(out, bound[bi])
			bi++
		} else {
			out = append(out, frees[fi])
			fi++
		}
	}
	return out
}

// GoalBoundValues extracts the ground values of the analysis' goal bound
// arguments.
func (an *Analysis) GoalBoundValues() []term.Value {
	out := make([]term.Value, len(an.GoalBound))
	for i, t := range an.GoalBound {
		out[i] = t.Value
	}
	return out
}

// ReconstructAnswers maps answers of the rewritten query back to
// original-goal tuples. Rewritten answers carry the goal's free arguments
// followed, unless the reduction removed it, by the path argument; hasPath
// is derived from the rewritten query's arity.
func (rw *Rewritten) ReconstructAnswers(tuples []database.Tuple) []database.Tuple {
	an := rw.Analysis
	pattern := an.Adorned.GoalAdornment
	bound := an.GoalBoundValues()
	hasPath := len(rw.Query.Goal.Args) == len(an.GoalFree)+1
	out := make([]database.Tuple, 0, len(tuples))
	for _, t := range tuples {
		frees := t
		if hasPath {
			frees = t[:len(t)-1]
		}
		out = append(out, OriginalTuple(pattern, bound, frees))
	}
	return out
}

// ReconstructRuntimeAnswers maps runtime answers (plain free tuples) back
// to original-goal tuples.
func ReconstructRuntimeAnswers(an *Analysis, tuples []database.Tuple) []database.Tuple {
	pattern := an.Adorned.GoalAdornment
	bound := an.GoalBoundValues()
	out := make([]database.Tuple, 0, len(tuples))
	for _, t := range tuples {
		out = append(out, OriginalTuple(pattern, bound, t))
	}
	return out
}
