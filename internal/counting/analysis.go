// Package counting implements the paper's contribution: the extended
// counting rewrite for linear logic programs (Algorithm 1), the reduction
// of rewritten programs (Algorithm 3), the classical counting rewrite it
// generalizes, and the pointer-based counting runtime that evaluates
// queries over cyclic databases (Algorithm 2).
package counting

import (
	"errors"
	"fmt"
	"sort"

	"lincount/internal/adorn"
	"lincount/internal/ast"
	"lincount/internal/symtab"
	"lincount/internal/term"
)

// Errors reported by the analysis. Callers typically fall back to the
// magic-set method when a program is outside the counting class.
var (
	// ErrNotLinear: some rule of the goal clique has more than one body
	// literal mutually recursive with its head.
	ErrNotLinear = errors.New("counting: program is not linear")
	// ErrNegatedRecursion: a recursive literal occurs negated.
	ErrNegatedRecursion = errors.New("counting: recursive literal is negated")
	// ErrNotApplicable: the left part cannot bind the recursive call, so
	// binding propagation by counting is impossible.
	ErrNotApplicable = errors.New("counting: left part cannot bind the recursive call")
	// ErrNoBoundArgs: the query has no bound argument.
	ErrNoBoundArgs = errors.New("counting: query has no bound arguments")
)

// ExitRule is an exit rule of the goal clique in canonical form.
type ExitRule struct {
	Rule ast.Rule
	// Bound and Free are the head argument lists split by the head
	// predicate's adornment (the paper's X and Y).
	Bound, Free []ast.Term
}

// RecRule is a linear recursive rule of the goal clique in canonical form
//
//	p(X,Y) ← L(A), q(X1,Y1), R(B)
type RecRule struct {
	Rule ast.Rule
	// ID identifies the rule in path entries (r1, r2, … in clique order).
	ID int
	// RecIndex is the position of the recursive literal in Rule.Body.
	RecIndex int
	// Left and Right are the body literal positions of the left and right
	// parts.
	Left, Right []int
	// HeadBound/HeadFree split the head arguments (X and Y).
	HeadBound, HeadFree []ast.Term
	// RecBound/RecFree split the recursive literal's arguments by the
	// callee's adornment (X1 and Y1).
	RecBound, RecFree []ast.Term
	// Shared is C_r: variables of the left part needed by the answer
	// phase (they occur in the right part or in the free head arguments)
	// and not recoverable from the counting predicate. Sorted by name.
	Shared []symtab.Sym
	// BoundInRight is D_r: bound head variables needed by the answer
	// phase. When non-empty the modified rule keeps a counting literal.
	BoundInRight []symtab.Sym
	// PushesCounting is false when the counting rule copies the path
	// unchanged (the Algorithm 1 special case: R empty, q = p, Y = Y1).
	PushesCounting bool
	// PushesModified is false when the modified rule copies the path
	// unchanged (the special case: L empty, q = p, X = X1).
	PushesModified bool
	// SkipCounting is true when no counting rule is generated at all
	// (L empty, q = p and X = X1: the counting set cannot grow).
	SkipCounting bool
	// SkipModified is true when no modified rule is generated
	// (R empty, q = p and Y = Y1: the answer does not change).
	SkipModified bool
	// FormallyLeftLinear / FormallyRightLinear record §5's syntactic
	// classification with respect to the adornment.
	FormallyLeftLinear, FormallyRightLinear bool
}

// Analysis is the canonical decomposition of an adorned linear program
// with respect to its query goal.
type Analysis struct {
	Adorned *adorn.Adorned
	// GoalPred is the adorned goal predicate.
	GoalPred symtab.Sym
	// Clique is the set of adorned predicates mutually recursive with the
	// goal predicate (including itself when recursive).
	Clique map[symtab.Sym]bool
	// Exit and Rec are the clique's rules in canonical form.
	Exit []ExitRule
	Rec  []RecRule
	// Passthrough are rules outside the goal clique (lower strata); they
	// are copied unchanged into every rewriting.
	Passthrough []ast.Rule
	// GoalBound/GoalFree split the query goal's arguments.
	GoalBound, GoalFree []ast.Term
}

// varsOf returns the set of variable names in the given terms.
func varsOf(ts []ast.Term) map[symtab.Sym]bool {
	out := map[symtab.Sym]bool{}
	for _, t := range ts {
		collectVars(t, out)
	}
	return out
}

func collectVars(t ast.Term, out map[symtab.Sym]bool) {
	switch t.Kind {
	case ast.Var:
		out[t.Name] = true
	case ast.Comp:
		for _, a := range t.Args {
			collectVars(a, out)
		}
	}
}

func litVars(ls []ast.Literal) map[symtab.Sym]bool {
	out := map[symtab.Sym]bool{}
	for _, l := range ls {
		for _, v := range l.Vars() {
			out[v] = true
		}
	}
	return out
}

func intersects(a, b map[symtab.Sym]bool) bool {
	for v := range a {
		if b[v] {
			return true
		}
	}
	return false
}

// sortedSyms returns the keys of m sorted by symbol name.
func sortedSyms(syms *symtab.Table, m map[symtab.Sym]bool) []symtab.Sym {
	out := make([]symtab.Sym, 0, len(m))
	for v := range m {
		out = append(out, v)
	}
	sort.Slice(out, func(i, j int) bool {
		return syms.String(out[i]) < syms.String(out[j])
	})
	return out
}

// termsEqual reports element-wise structural equality.
func termsEqual(a, b []ast.Term) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if !a[i].Equal(b[i]) {
			return false
		}
	}
	return true
}

// Analyze decomposes an adorned program for the counting rewrites. It
// verifies that the goal clique is linear and that every recursive rule's
// left part can bind the recursive call.
func Analyze(a *adorn.Adorned) (*Analysis, error) {
	bank := a.Program.Bank
	syms := bank.Symbols()

	if !hasBound(a.GoalAdornment) {
		return nil, ErrNoBoundArgs
	}

	// Identify the goal clique among adorned predicates.
	clique, err := goalClique(a)
	if err != nil {
		return nil, err
	}

	out := &Analysis{
		Adorned:  a,
		GoalPred: a.Query.Goal.Pred,
		Clique:   clique,
	}
	out.GoalBound, out.GoalFree = adorn.BoundArgs(a.Query.Goal, a.GoalAdornment)

	ruleID := 0
	for _, r := range a.Program.Rules {
		if !clique[r.Head.Pred] {
			out.Passthrough = append(out.Passthrough, r)
			continue
		}
		headPattern := a.Patterns[r.Head.Pred]
		headBound, headFree := adorn.BoundArgs(r.Head, headPattern)

		// Locate recursive literals.
		var recIdx []int
		for i, l := range r.Body {
			if clique[l.Pred] {
				if l.Negated {
					return nil, fmt.Errorf("%w: %s", ErrNegatedRecursion, ast.FormatRule(bank, r))
				}
				recIdx = append(recIdx, i)
			}
		}
		switch len(recIdx) {
		case 0:
			out.Exit = append(out.Exit, ExitRule{Rule: r, Bound: headBound, Free: headFree})
			continue
		case 1:
		default:
			return nil, fmt.Errorf("%w: rule %s has %d recursive literals",
				ErrNotLinear, ast.FormatRule(bank, r), len(recIdx))
		}

		ruleID++
		rec := RecRule{Rule: r, ID: ruleID, RecIndex: recIdx[0],
			HeadBound: headBound, HeadFree: headFree}
		recLit := r.Body[rec.RecIndex]
		recPattern := a.Patterns[recLit.Pred]
		rec.RecBound, rec.RecFree = adorn.BoundArgs(recLit, recPattern)

		if err := splitLeftRight(bank, &rec, r); err != nil {
			return nil, err
		}

		// C_r and D_r.
		headBoundVars := varsOf(rec.HeadBound)
		neededPhase2 := map[symtab.Sym]bool{}
		for i := range rec.Right {
			for _, v := range r.Body[rec.Right[i]].Vars() {
				neededPhase2[v] = true
			}
		}
		for v := range varsOf(rec.HeadFree) {
			neededPhase2[v] = true
		}
		// Variables already delivered by the recursive answer tuple.
		recFreeVars := varsOf(rec.RecFree)

		leftVars := map[symtab.Sym]bool{}
		for _, i := range rec.Left {
			for _, v := range r.Body[i].Vars() {
				leftVars[v] = true
			}
		}
		shared := map[symtab.Sym]bool{}
		boundInR := map[symtab.Sym]bool{}
		for v := range neededPhase2 {
			switch {
			case recFreeVars[v]:
				// Comes back with the recursive answer.
			case headBoundVars[v]:
				boundInR[v] = true
			case leftVars[v]:
				shared[v] = true
			}
		}
		rec.Shared = sortedSyms(syms, shared)
		rec.BoundInRight = sortedSyms(syms, boundInR)

		// Special cases of Algorithm 1.
		samePred := recLit.Pred == r.Head.Pred
		sameBound := samePred && termsEqual(rec.HeadBound, rec.RecBound)
		sameFree := samePred && termsEqual(rec.HeadFree, rec.RecFree)
		rec.SkipCounting = len(rec.Left) == 0 && sameBound
		rec.SkipModified = len(rec.Right) == 0 && sameFree
		rec.PushesCounting = !(len(rec.Right) == 0 && sameFree)
		rec.PushesModified = !(len(rec.Left) == 0 && sameBound)

		rec.FormallyRightLinear = formallyLinear(a, r, recLit, 'f')
		rec.FormallyLeftLinear = formallyLinear(a, r, recLit, 'b')

		out.Rec = append(out.Rec, rec)
	}
	return out, nil
}

func hasBound(pattern string) bool {
	for i := 0; i < len(pattern); i++ {
		if pattern[i] == 'b' {
			return true
		}
	}
	return false
}

// goalClique computes the set of adorned predicates mutually recursive with
// the goal predicate. If the goal predicate is not recursive, the clique is
// just {goal}.
func goalClique(a *adorn.Adorned) (map[symtab.Sym]bool, error) {
	adj := map[symtab.Sym][]symtab.Sym{}
	for _, r := range a.Program.Rules {
		for _, l := range r.Body {
			if _, ok := a.Patterns[l.Pred]; ok {
				adj[r.Head.Pred] = append(adj[r.Head.Pred], l.Pred)
			}
		}
	}
	reach := func(from symtab.Sym) map[symtab.Sym]bool {
		seen := map[symtab.Sym]bool{}
		work := []symtab.Sym{from}
		for len(work) > 0 {
			v := work[len(work)-1]
			work = work[:len(work)-1]
			for _, w := range adj[v] {
				if !seen[w] {
					seen[w] = true
					work = append(work, w)
				}
			}
		}
		return seen
	}
	goal := a.Query.Goal.Pred
	fromGoal := reach(goal)
	clique := map[symtab.Sym]bool{goal: true}
	for p := range fromGoal {
		if p == goal || reach(p)[goal] {
			clique[p] = true
		}
	}
	return clique, nil
}

// splitLeftRight assigns every non-recursive body literal to the left or
// right part:
//
//  1. Literals containing a free variable of the recursive call belong to
//     the right part (their bindings only exist in the answer phase).
//  2. Of the rest, literals connected — directly or through other such
//     literals — to the bound head or bound recursive-call variables form
//     the left part.
//  3. Anything else cannot help bind the recursive call and goes to the
//     right part.
//
// Afterwards the split is validated: vars(X1) ⊆ vars(X) ∪ vars(L), i.e.
// the left part together with the query binding determines the next
// counting node. A rule violating this is outside the counting class.
func splitLeftRight(bank *term.Bank, rec *RecRule, r ast.Rule) error {
	recFreeVars := varsOf(rec.RecFree)

	type litInfo struct {
		idx  int
		vars map[symtab.Sym]bool
		inR0 bool
	}
	var lits []litInfo
	for i, l := range r.Body {
		if i == rec.RecIndex {
			continue
		}
		info := litInfo{idx: i, vars: litVars([]ast.Literal{l})}
		info.inR0 = intersects(info.vars, recFreeVars)
		lits = append(lits, info)
	}

	// Connected-component growth from the bound-side seed set.
	seed := varsOf(rec.HeadBound)
	for v := range varsOf(rec.RecBound) {
		seed[v] = true
	}
	inL := make([]bool, len(lits))
	changed := true
	for changed {
		changed = false
		for i := range lits {
			if inL[i] || lits[i].inR0 {
				continue
			}
			if intersects(lits[i].vars, seed) {
				inL[i] = true
				changed = true
				for v := range lits[i].vars {
					seed[v] = true
				}
			}
		}
	}
	for i := range lits {
		if inL[i] {
			rec.Left = append(rec.Left, lits[i].idx)
		} else {
			rec.Right = append(rec.Right, lits[i].idx)
		}
	}
	sort.Ints(rec.Left)
	sort.Ints(rec.Right)

	// Validate that the left part binds the recursive call.
	available := varsOf(rec.HeadBound)
	for _, i := range rec.Left {
		for _, v := range r.Body[i].Vars() {
			available[v] = true
		}
	}
	for v := range varsOf(rec.RecBound) {
		if !available[v] {
			return fmt.Errorf("%w: rule %s: variable %s of the recursive call is bound neither by the head nor by the left part",
				ErrNotApplicable, ast.FormatRule(bank, r), bank.Symbols().String(v))
		}
	}
	return nil
}

// formallyLinear implements §5's definition: a rule is right-linear
// (mode 'f') or left-linear (mode 'b') with respect to the head adornment
// if (1) the recursive body literal has the same adornment, (2) every head
// variable in a mode-position occurs in the same position of the recursive
// literal, and (3) every such variable occurs exactly once in the recursive
// literal.
func formallyLinear(a *adorn.Adorned, r ast.Rule, recLit ast.Literal, mode byte) bool {
	headPattern := a.Patterns[r.Head.Pred]
	recPattern := a.Patterns[recLit.Pred]
	if headPattern != recPattern {
		return false
	}
	if len(r.Head.Args) != len(recLit.Args) {
		return false
	}
	// Count occurrences of each variable among the recursive literal's
	// arguments (top-level and nested).
	occ := map[symtab.Sym]int{}
	for _, t := range recLit.Args {
		countVarOcc(t, occ)
	}
	for i, t := range r.Head.Args {
		if headPattern[i] != mode {
			continue
		}
		if t.Kind != ast.Var {
			return false
		}
		rt := recLit.Args[i]
		if rt.Kind != ast.Var || rt.Name != t.Name {
			return false
		}
		if occ[t.Name] != 1 {
			return false
		}
	}
	return true
}

func countVarOcc(t ast.Term, occ map[symtab.Sym]int) {
	switch t.Kind {
	case ast.Var:
		occ[t.Name]++
	case ast.Comp:
		for _, a := range t.Args {
			countVarOcc(a, occ)
		}
	}
}

// ProgramClass is §5's taxonomy of linear programs.
type ProgramClass uint8

const (
	// GeneralLinear: linear, but not composed solely of left-/right-linear
	// rules over one recursive predicate.
	GeneralLinear ProgramClass = iota
	// RightLinearClass: every recursive rule is right-linear.
	RightLinearClass
	// LeftLinearClass: every recursive rule is left-linear.
	LeftLinearClass
	// MixedLinearClass: one recursive predicate, each rule left- or
	// right-linear, with at least one of each.
	MixedLinearClass
)

// String implements fmt.Stringer.
func (c ProgramClass) String() string {
	switch c {
	case RightLinearClass:
		return "right-linear"
	case LeftLinearClass:
		return "left-linear"
	case MixedLinearClass:
		return "mixed-linear"
	default:
		return "general-linear"
	}
}

// ListRewriteSafe reports whether the list-based extended counting rewrite
// (Algorithm 1) is sound for this clique. The list form is unsound when a
// non-pushing (left-linear) modified rule must recover its bound head
// variables through the counting predicate while other rules grow the
// counting set: several nodes then share a path and the join is ambiguous.
// The pointer-based Runtime is sound for every linear program.
func (an *Analysis) ListRewriteSafe() bool {
	needsJoin := false
	growsSet := false
	for i := range an.Rec {
		r := &an.Rec[i]
		if !r.PushesModified && len(r.BoundInRight) > 0 {
			needsJoin = true
		}
		if !r.SkipCounting {
			growsSet = true
		}
	}
	return !(needsJoin && growsSet)
}

// Classify applies §5's definition of right-, left- and mixed-linear
// programs to the goal clique.
func (an *Analysis) Classify() ProgramClass {
	if len(an.Rec) == 0 || len(an.Clique) != 1 {
		return GeneralLinear
	}
	allRight, allLeft, allEither := true, true, true
	for _, r := range an.Rec {
		if !r.FormallyRightLinear {
			allRight = false
		}
		if !r.FormallyLeftLinear {
			allLeft = false
		}
		if !r.FormallyRightLinear && !r.FormallyLeftLinear {
			allEither = false
		}
	}
	switch {
	case allRight:
		return RightLinearClass
	case allLeft:
		return LeftLinearClass
	case allEither:
		return MixedLinearClass
	default:
		return GeneralLinear
	}
}
