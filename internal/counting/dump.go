package counting

import (
	"fmt"
	"strings"

	"lincount/internal/database"
)

// DumpCountingSet renders the counting set of a query over a database in
// the paper's §4 notation: one line per node
//
//	o3 : (c, {o2})
//
// listing the node's identifier, its bound values and its ahead
// predecessors, followed by the cycle links contributed by back arcs
// (the paper's `cycle` predicate) and the combined `f` sets. The worked
// trace of Example 5 prints exactly in this shape.
func DumpCountingSet(an *Analysis, db *database.Database) (string, error) {
	rt, err := NewRuntime(an, db, RuntimeOptions{})
	if err != nil {
		return "", err
	}
	if err := rt.buildCountingSet(); err != nil {
		return "", err
	}
	bank := rt.bank
	syms := bank.Symbols()

	// Number nodes by depth-first discovery (the paper's o-numbering).
	rank := make(map[int32]int, len(rt.discovery))
	for i, n := range rt.discovery {
		rank[n] = i + 1
	}
	id := func(n int32) string {
		if n == nilNode {
			return "nil"
		}
		return fmt.Sprintf("o%d", rank[n])
	}
	vals := func(i int32) string {
		nv := rt.nodeVals(i)
		parts := make([]string, len(nv))
		for j, v := range nv {
			parts[j] = bank.Format(v)
		}
		return strings.Join(parts, ",")
	}
	entries := func(es []entry) string {
		parts := make([]string, len(es))
		for j, e := range es {
			label := id(e.node)
			if e.rule >= 0 {
				r := &an.Rec[e.rule]
				if len(r.Shared)+len(r.BoundInRight) > 0 {
					label = fmt.Sprintf("(r%d,%s,%s)", r.ID, bank.Format(e.c), id(e.node))
				}
			}
			parts[j] = label
		}
		return "{" + strings.Join(parts, ",") + "}"
	}

	multiPred := len(an.Clique) > 1
	var sb strings.Builder
	sb.WriteString("% counting set (ahead predecessors):\n")
	for _, i := range rt.discovery {
		n := rt.nodes[i]
		name := ""
		if multiPred {
			name = syms.String(n.pred) + ":"
		}
		fmt.Fprintf(&sb, "%s : %s(%s, %s)\n", id(i), name, vals(i), entries(n.ahead))
	}
	anyBack := false
	for i := range rt.nodes {
		if len(rt.nodes[i].back) > 0 {
			anyBack = true
			break
		}
	}
	if anyBack {
		sb.WriteString("% cycle links (back arcs):\n")
		for _, i := range rt.discovery {
			n := rt.nodes[i]
			if len(n.back) == 0 {
				continue
			}
			fmt.Fprintf(&sb, "cycle(%s) = %s\n", vals(i), entries(n.back))
		}
		sb.WriteString("% f = ahead ∪ cycle:\n")
		for _, i := range rt.discovery {
			n := rt.nodes[i]
			all := append(append([]entry{}, n.ahead...), n.back...)
			fmt.Fprintf(&sb, "f(%s) = %s\n", id(i), entries(all))
		}
	} else {
		sb.WriteString("% no back arcs: the left graph is acyclic and f = ahead.\n")
	}
	return sb.String(), nil
}
