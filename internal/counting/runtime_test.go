package counting

import (
	"fmt"
	"strings"
	"testing"
)

func runRuntime(t *testing.T, src, goal, facts string) (*rwFixture, *RunResult) {
	t.Helper()
	f := newRW(t, src, goal, facts)
	an, err := Analyze(f.adorned(t))
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(an, f.db, RuntimeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	return f, res
}

func fmtAnswers(f *rwFixture, res *RunResult) []string {
	out := make([]string, len(res.Answers))
	for i, tu := range res.Answers {
		parts := make([]string, len(tu))
		for j, v := range tu {
			parts[j] = f.bank.Format(v)
		}
		out[i] = strings.Join(parts, ",")
	}
	return out
}

// sgProgram is the same-generation program of Examples 1 and 5.
const sgProgram = `
sg(X,Y) :- flat(X,Y).
sg(X,Y) :- up(X,X1), sg(X1,Y1), down(Y1,Y).
`

// example5Facts is the cyclic database of Example 5. The paper's listing
// has an OCR artifact "up(e,f)"; the worked trace (counting set o1..o5,
// cycle tuple at d, answers h, j, l) requires the back arc up(e,d).
const example5Facts = `
up(a,b). up(b,c). up(c,d). up(d,e). up(e,d). up(b,e).
down(f,g). down(g,h). down(h,i). down(i,j). down(j,k). down(k,l).
flat(e,f).
`

// TestExample5CountingSet reproduces the counting set of Example 5: five
// nodes a,b,c,d,e; ahead predecessors b←a, c←b, d←c, e←d, e←b; one back
// entry d←e.
func TestExample5CountingSet(t *testing.T) {
	f := newRW(t, sgProgram, "?- sg(a,Y).", example5Facts)
	an, err := Analyze(f.adorned(t))
	if err != nil {
		t.Fatal(err)
	}
	rt, err := NewRuntime(an, f.db, RuntimeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := rt.buildCountingSet(); err != nil {
		t.Fatal(err)
	}
	if len(rt.nodes) != 5 {
		t.Fatalf("counting set has %d nodes, want 5", len(rt.nodes))
	}
	name := func(id int32) string {
		if id == nilNode {
			return "nil"
		}
		return f.bank.Format(rt.nodeVals(id)[0])
	}
	ahead := map[string][]string{}
	back := map[string][]string{}
	for id, n := range rt.nodes {
		for _, e := range n.ahead {
			ahead[name(int32(id))] = append(ahead[name(int32(id))], name(e.node))
		}
		for _, e := range n.back {
			back[name(int32(id))] = append(back[name(int32(id))], name(e.node))
		}
	}
	wantAhead := map[string]string{
		"a": "[nil]", "b": "[a]", "c": "[b]", "d": "[c]", "e": "[d b]",
	}
	for n, w := range wantAhead {
		if got := fmt.Sprint(ahead[n]); got != w {
			t.Errorf("ahead[%s] = %v, want %v", n, got, w)
		}
	}
	// The cycle link of the paper: cycle_sg(d, {o5}) — d's back entry
	// points to e.
	if got := fmt.Sprint(back["d"]); got != "[e]" {
		t.Errorf("back[d] = %v, want [e]", got)
	}
	total := 0
	for _, b := range back {
		total += len(b)
	}
	if total != 1 {
		t.Errorf("total back entries = %d, want 1", total)
	}
}

// TestExample5Answers reproduces the answers of Example 5: h (2 ups),
// j (4 ups), l (6 ups through the d-e cycle).
func TestExample5Answers(t *testing.T) {
	f, res := runRuntime(t, sgProgram, "?- sg(a,Y).", example5Facts)
	if got := fmtAnswers(f, res); fmt.Sprint(got) != "[h j l]" {
		t.Errorf("answers = %v, want [h j l]", got)
	}
	if res.Stats.CountingNodes != 5 {
		t.Errorf("counting nodes = %d", res.Stats.CountingNodes)
	}
	if res.Stats.BackEntries != 1 {
		t.Errorf("back entries = %d", res.Stats.BackEntries)
	}
}

// TestExample5AgainstBottomUp: the runtime agrees with plain bottom-up
// evaluation of the original program (which terminates on cyclic data
// because Datalog is function-free).
func TestExample5AgainstBottomUp(t *testing.T) {
	f, res := runRuntime(t, sgProgram, "?- sg(a,Y).", example5Facts)
	got := fmtAnswers(f, res)
	plain := plainAnswers(t, f)
	var plainFree []string
	for _, p := range plain {
		plainFree = append(plainFree, strings.SplitN(p, ",", 2)[1])
	}
	if fmt.Sprint(got) != fmt.Sprint(plainFree) {
		t.Errorf("runtime %v, plain %v", got, plainFree)
	}
}

func TestRuntimeAcyclicAgreesWithExtended(t *testing.T) {
	facts := `
up(a,b). up(b,c). up(a,d).
flat(c,c2). flat(d,d2). flat(a,a2).
down(c2,x1). down(x1,x2). down(d2,x3). down(a2,x4).
`
	f, res := runRuntime(t, sgProgram, "?- sg(a,Y).", facts)
	got := fmtAnswers(f, res)

	rw := f.extended(t)
	ext := evalAnswers(t, f, rw)
	var extFree []string
	for _, g := range ext {
		extFree = append(extFree, strings.TrimSuffix(g, ",[]"))
	}
	if fmt.Sprint(got) != fmt.Sprint(extFree) {
		t.Errorf("runtime %v, extended %v", got, extFree)
	}
}

// TestRuntimeSelfLoop: a self loop in the up relation (a one-node cycle).
func TestRuntimeSelfLoop(t *testing.T) {
	facts := `
up(a,a). flat(a,f). down(f,g).
`
	f, res := runRuntime(t, sgProgram, "?- sg(a,Y).", facts)
	got := fmtAnswers(f, res)
	plain := plainAnswers(t, f)
	var plainFree []string
	for _, p := range plain {
		plainFree = append(plainFree, strings.SplitN(p, ",", 2)[1])
	}
	if fmt.Sprint(got) != fmt.Sprint(plainFree) {
		t.Errorf("runtime %v, plain %v", got, plainFree)
	}
	if res.Stats.BackEntries != 1 {
		t.Errorf("self loop should be one back entry, got %d", res.Stats.BackEntries)
	}
}

// TestRuntimeSharedVariablesCyclic: Example 4's shared-variable machinery
// combined with a cycle.
func TestRuntimeSharedVariablesCyclic(t *testing.T) {
	src := `
p(X,Y) :- flat(X,Y).
p(X,Y) :- up(X,X1,W), p(X1,Y1), down(Y1,Y,W).
`
	facts := `
up(a,b,1). up(b,a,2). flat(a,fa). flat(b,fb).
down(fa,g1,2). down(fb,g2,1). down(g1,g3,1). down(g2,g4,2). down(g3,g5,9).
`
	f, res := runRuntime(t, src, "?- p(a,Y).", facts)
	got := fmtAnswers(f, res)
	plain := plainAnswers(t, f)
	var plainFree []string
	for _, p := range plain {
		plainFree = append(plainFree, strings.SplitN(p, ",", 2)[1])
	}
	if fmt.Sprint(got) != fmt.Sprint(plainFree) {
		t.Errorf("runtime %v, plain %v", got, plainFree)
	}
}

// TestRuntimeBoundHeadVarCyclic: D_r ≠ ∅ on cyclic data — the head's bound
// argument is recovered from the destination node.
func TestRuntimeBoundHeadVarCyclic(t *testing.T) {
	src := `
p(X,Y) :- flat(X,Y).
p(X,Y) :- up(X,X1), p(X1,Y1), down(Y1,Y,X).
`
	facts := `
up(a,b). up(b,c). up(c,a).
flat(c,fc). flat(a,fa).
down(fc,g1,b). down(g1,g2,a). down(fa,h1,c). down(fc,gX,zz).
`
	f, res := runRuntime(t, src, "?- p(a,Y).", facts)
	got := fmtAnswers(f, res)
	plain := plainAnswers(t, f)
	var plainFree []string
	for _, p := range plain {
		plainFree = append(plainFree, strings.SplitN(p, ",", 2)[1])
	}
	if fmt.Sprint(got) != fmt.Sprint(plainFree) {
		t.Errorf("runtime %v, plain %v", got, plainFree)
	}
}

// TestRuntimeMixedLinearCyclic: right- and left-linear rules over a cyclic
// graph.
func TestRuntimeMixedLinearCyclic(t *testing.T) {
	src := `
p(X,Y) :- flat(X,Y).
p(X,Y) :- up(X,X1), p(X1,Y).
p(X,Y) :- p(X,Y1), down(Y1,Y).
`
	facts := `
up(a,b). up(b,c). up(c,b).
flat(b,fb). flat(c,fc). flat(a,fa).
down(fb,d1). down(fc,d2). down(d2,d3).
`
	f, res := runRuntime(t, src, "?- p(a,Y).", facts)
	got := fmtAnswers(f, res)
	plain := plainAnswers(t, f)
	var plainFree []string
	for _, p := range plain {
		plainFree = append(plainFree, strings.SplitN(p, ",", 2)[1])
	}
	if fmt.Sprint(got) != fmt.Sprint(plainFree) {
		t.Errorf("runtime %v, plain %v", got, plainFree)
	}
}

// TestRuntimeMutualRecursionCyclic: a two-predicate clique with a cycle
// through both predicates.
func TestRuntimeMutualRecursionCyclic(t *testing.T) {
	src := `
p(X,Y) :- flat(X,Y).
p(X,Y) :- up(X,X1), q(X1,Y1), down(Y1,Y).
q(X,Y) :- over(X,X1), p(X1,Y1), under(Y1,Y).
`
	facts := `
up(a,b). over(b,a). up(a,c). over(c,d).
flat(d,fd). flat(a,fa).
under(fd,u1). down(u1,v1). under(fa,u2). down(u2,v2). under(v2,u3). down(v1,v3).
`
	f, res := runRuntime(t, src, "?- p(a,Y).", facts)
	got := fmtAnswers(f, res)
	plain := plainAnswers(t, f)
	var plainFree []string
	for _, p := range plain {
		plainFree = append(plainFree, strings.SplitN(p, ",", 2)[1])
	}
	if fmt.Sprint(got) != fmt.Sprint(plainFree) {
		t.Errorf("runtime %v, plain %v", got, plainFree)
	}
}

// TestRuntimePassthroughStrata: exit and left parts over derived (lower
// stratum) predicates.
func TestRuntimePassthroughStrata(t *testing.T) {
	src := `
sg(X,Y) :- flat(X,Y).
sg(X,Y) :- up(X,X1), sg(X1,Y1), down(Y1,Y).
up(X,Y) :- upraw(X,Y).
flat(X,Y) :- flatraw(X,Y).
`
	facts := `
upraw(a,b). upraw(b,a). flatraw(b,f). down(f,g). down(g,h).
`
	f, res := runRuntime(t, src, "?- sg(a,Y).", facts)
	got := fmtAnswers(f, res)
	plain := plainAnswers(t, f)
	var plainFree []string
	for _, p := range plain {
		plainFree = append(plainFree, strings.SplitN(p, ",", 2)[1])
	}
	if fmt.Sprint(got) != fmt.Sprint(plainFree) {
		t.Errorf("runtime %v, plain %v", got, plainFree)
	}
}

// TestRuntimeNonRecursiveGoal: the degenerate case with no recursion.
func TestRuntimeNonRecursiveGoal(t *testing.T) {
	f, res := runRuntime(t, "p(X,Y) :- e(X,Y).\n", "?- p(a,Y).", "e(a,b). e(a,c). e(z,w).")
	if got := fmtAnswers(f, res); fmt.Sprint(got) != "[b c]" {
		t.Errorf("answers = %v", got)
	}
	if res.Stats.CountingNodes != 1 {
		t.Errorf("nodes = %d, want 1", res.Stats.CountingNodes)
	}
}

// TestRuntimeNoAnswers: empty result on data where the exit never fires.
func TestRuntimeNoAnswers(t *testing.T) {
	f, res := runRuntime(t, sgProgram, "?- sg(a,Y).", "up(a,b). up(b,c). down(x,y).")
	if len(res.Answers) != 0 {
		t.Errorf("answers = %v, want none", fmtAnswers(f, res))
	}
	if res.Stats.CountingNodes != 3 {
		t.Errorf("counting nodes = %d, want 3", res.Stats.CountingNodes)
	}
}

// TestRuntimeBudget: the tuple budget guards runaway evaluations.
func TestRuntimeBudget(t *testing.T) {
	var facts strings.Builder
	for i := 0; i < 100; i++ {
		fmt.Fprintf(&facts, "up(n%d,n%d). ", i, i+1)
	}
	f := newRW(t, sgProgram, "?- sg(n0,Y).", facts.String())
	an, err := Analyze(f.adorned(t))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Run(an, f.db, RuntimeOptions{MaxTuples: 10}); err == nil {
		t.Error("budget not enforced")
	}
}

// TestRuntimeDeterministicAnswerOrder: answers come out sorted.
func TestRuntimeDeterministicAnswerOrder(t *testing.T) {
	f, res := runRuntime(t, sgProgram, "?- sg(a,Y).",
		"flat(a,zebra). flat(a,apple). flat(a,mango).")
	if got := fmt.Sprint(fmtAnswers(f, res)); got != "[apple mango zebra]" {
		t.Errorf("answers = %v", got)
	}
}

// TestRuntimeEquivalenceRandomCyclic cross-checks runtime vs bottom-up on a
// set of pseudo-random cyclic graphs.
func TestRuntimeEquivalenceRandomCyclic(t *testing.T) {
	for seed := 0; seed < 8; seed++ {
		facts := randomSGFacts(seed, 12, 20, true)
		f, res := runRuntime(t, sgProgram, "?- sg(n0,Y).", facts)
		got := fmtAnswers(f, res)
		plain := plainAnswers(t, f)
		var plainFree []string
		for _, p := range plain {
			plainFree = append(plainFree, strings.SplitN(p, ",", 2)[1])
		}
		if fmt.Sprint(got) != fmt.Sprint(plainFree) {
			t.Errorf("seed %d: runtime %v, plain %v\nfacts: %s", seed, got, plainFree, facts)
		}
	}
}

// randomSGFacts builds a pseudo-random up/flat/down database. A simple
// linear congruential generator keeps it dependency-free and reproducible.
func randomSGFacts(seed, nodes, arcs int, cyclic bool) string {
	state := uint64(seed)*6364136223846793005 + 1442695040888963407
	next := func(n int) int {
		state = state*6364136223846793005 + 1442695040888963407
		return int((state >> 33) % uint64(n))
	}
	var sb strings.Builder
	for i := 0; i < arcs; i++ {
		a, b := next(nodes), next(nodes)
		if !cyclic && a >= b {
			continue
		}
		fmt.Fprintf(&sb, "up(n%d,n%d). ", a, b)
	}
	for i := 0; i < nodes; i++ {
		if next(2) == 0 {
			fmt.Fprintf(&sb, "flat(n%d,m%d). ", i, i)
		}
	}
	for i := 0; i < arcs; i++ {
		a, b := next(nodes), next(nodes)
		fmt.Fprintf(&sb, "down(m%d,m%d). ", a, b)
	}
	return sb.String()
}
