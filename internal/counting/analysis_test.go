package counting

import (
	"errors"
	"testing"

	"lincount/internal/adorn"
	"lincount/internal/ast"
	"lincount/internal/parser"
	"lincount/internal/symtab"
	"lincount/internal/term"
)

func analyze(t *testing.T, src, goal string) (*term.Bank, *Analysis) {
	t.Helper()
	b := term.NewBank(symtab.New())
	res, err := parser.Parse(b, src)
	if err != nil {
		t.Fatal(err)
	}
	q, err := parser.ParseQuery(b, goal)
	if err != nil {
		t.Fatal(err)
	}
	a, err := adorn.Adorn(res.Program, q)
	if err != nil {
		t.Fatal(err)
	}
	an, err := Analyze(a)
	if err != nil {
		t.Fatal(err)
	}
	return b, an
}

func analyzeErr(t *testing.T, src, goal string) error {
	t.Helper()
	b := term.NewBank(symtab.New())
	res, err := parser.Parse(b, src)
	if err != nil {
		t.Fatal(err)
	}
	q, err := parser.ParseQuery(b, goal)
	if err != nil {
		t.Fatal(err)
	}
	a, err := adorn.Adorn(res.Program, q)
	if err != nil {
		t.Fatal(err)
	}
	_, err = Analyze(a)
	return err
}

func names(b *term.Bank, syms []symtab.Sym) []string {
	out := make([]string, len(syms))
	for i, s := range syms {
		out[i] = b.Symbols().String(s)
	}
	return out
}

func TestAnalyzeSameGeneration(t *testing.T) {
	b, an := analyze(t, `
sg(X,Y) :- flat(X,Y).
sg(X,Y) :- up(X,X1), sg(X1,Y1), down(Y1,Y).
`, "?- sg(a,Y).")
	if len(an.Exit) != 1 || len(an.Rec) != 1 {
		t.Fatalf("exit=%d rec=%d", len(an.Exit), len(an.Rec))
	}
	r := an.Rec[0]
	if len(r.Left) != 1 || len(r.Right) != 1 {
		t.Errorf("L=%v R=%v", r.Left, r.Right)
	}
	lName := b.Symbols().String(r.Rule.Body[r.Left[0]].Pred)
	rName := b.Symbols().String(r.Rule.Body[r.Right[0]].Pred)
	if lName != "up" || rName != "down" {
		t.Errorf("left=%s right=%s", lName, rName)
	}
	if len(r.Shared) != 0 || len(r.BoundInRight) != 0 {
		t.Errorf("Shared=%v BoundInRight=%v", names(b, r.Shared), names(b, r.BoundInRight))
	}
	if r.SkipCounting || r.SkipModified || !r.PushesCounting || !r.PushesModified {
		t.Errorf("flags wrong: %+v", r)
	}
	if an.Classify() != GeneralLinear {
		t.Errorf("class = %v", an.Classify())
	}
}

// TestAnalyzeExample4 checks the C_r and D_r computation of the paper's
// Example 4: rule r1 shares W between left and right part, rule r2 uses the
// bound head variable X in the right part.
func TestAnalyzeExample4(t *testing.T) {
	b, an := analyze(t, `
p(X,Y) :- flat(X,Y).
p(X,Y) :- up1(X,X1,W), p(X1,Y1), down1(Y1,Y,W).
p(X,Y) :- up2(X,X1), p(X1,Y1), down2(Y1,Y,X).
`, "?- p(a,Y).")
	if len(an.Rec) != 2 {
		t.Fatalf("rec rules = %d", len(an.Rec))
	}
	r1, r2 := an.Rec[0], an.Rec[1]
	if got := names(b, r1.Shared); len(got) != 1 || got[0] != "W" {
		t.Errorf("r1 C_r = %v, want [W]", got)
	}
	if len(r1.BoundInRight) != 0 {
		t.Errorf("r1 D_r = %v, want []", names(b, r1.BoundInRight))
	}
	if len(r2.Shared) != 0 {
		t.Errorf("r2 C_r = %v, want []", names(b, r2.Shared))
	}
	if got := names(b, r2.BoundInRight); len(got) != 1 || got[0] != "X" {
		t.Errorf("r2 D_r = %v, want [X]", got)
	}
}

// TestAnalyzeExample6 checks §5's formal left-/right-linear classification.
func TestAnalyzeExample6(t *testing.T) {
	_, an := analyze(t, `
p(X,Y) :- flat(X,Y).
p(X,Y) :- up(X,X1), p(X1,Y).
p(X,Y) :- p(X,Y1), down(Y1,Y).
`, "?- p(a,Y).")
	if len(an.Rec) != 2 {
		t.Fatalf("rec rules = %d", len(an.Rec))
	}
	rl, ll := an.Rec[0], an.Rec[1]
	if !rl.FormallyRightLinear || rl.FormallyLeftLinear {
		t.Errorf("rule 1 classification: right=%v left=%v", rl.FormallyRightLinear, rl.FormallyLeftLinear)
	}
	if !ll.FormallyLeftLinear || ll.FormallyRightLinear {
		t.Errorf("rule 2 classification: right=%v left=%v", ll.FormallyRightLinear, ll.FormallyLeftLinear)
	}
	if !rl.SkipModified || !rl.PushesModified == false {
		// right-linear: no modified rule, counting rule does not push
		if rl.PushesCounting {
			t.Error("right-linear rule pushes counting path")
		}
	}
	if !ll.SkipCounting {
		t.Error("left-linear rule generates a counting rule")
	}
	if ll.PushesModified {
		t.Error("left-linear rule pushes modified path")
	}
	if an.Classify() != MixedLinearClass {
		t.Errorf("class = %v, want mixed-linear", an.Classify())
	}
}

func TestClassifyPureClasses(t *testing.T) {
	_, right := analyze(t, `
p(X,Y) :- flat(X,Y).
p(X,Y) :- up(X,X1), p(X1,Y).
`, "?- p(a,Y).")
	if right.Classify() != RightLinearClass {
		t.Errorf("class = %v, want right-linear", right.Classify())
	}
	_, left := analyze(t, `
p(X,Y) :- flat(X,Y).
p(X,Y) :- p(X,Y1), down(Y1,Y).
`, "?- p(a,Y).")
	if left.Classify() != LeftLinearClass {
		t.Errorf("class = %v, want left-linear", left.Classify())
	}
}

func TestAnalyzeNotLinear(t *testing.T) {
	err := analyzeErr(t, `
tc(X,Y) :- e(X,Y).
tc(X,Y) :- tc(X,Z), tc(Z,Y).
`, "?- tc(a,Y).")
	if !errors.Is(err, ErrNotLinear) {
		t.Errorf("err = %v, want ErrNotLinear", err)
	}
}

func TestAnalyzeNoBoundArgs(t *testing.T) {
	err := analyzeErr(t, `
p(X,Y) :- e(X,Y).
p(X,Y) :- e(X,Z), p(Z,Y).
`, "?- p(X,Y).")
	if !errors.Is(err, ErrNoBoundArgs) {
		t.Errorf("err = %v, want ErrNoBoundArgs", err)
	}
}

func TestAnalyzeUnboundRecursiveCallDegenerates(t *testing.T) {
	// The recursive call receives no binding (X1 is produced after it),
	// so adornment gives it the all-free pattern p_ff: it leaves the goal
	// clique and the clique's only rule becomes an exit rule over the
	// fully computed p_ff — a graceful degeneration, not an error.
	b, an := analyze(t, `
p(X,Y) :- e(X,Y).
p(X,Y) :- p(X1,Y1), link(Y1,X1), e(X,Y).
`, "?- p(a,Y).")
	if len(an.Rec) != 0 {
		t.Errorf("clique has %d recursive rules, want 0", len(an.Rec))
	}
	foundFF := false
	for _, r := range an.Passthrough {
		if b.Symbols().String(r.Head.Pred) == "p_ff" {
			foundFF = true
		}
	}
	if !foundFF {
		t.Error("p_ff rules not in passthrough")
	}
}

func TestAnalyzeMutualRecursionTwoPredicates(t *testing.T) {
	b, an := analyze(t, `
p(X,Y) :- flat(X,Y).
p(X,Y) :- up(X,X1), q(X1,Y1), down(Y1,Y).
q(X,Y) :- over(X,X1), p(X1,Y1), under(Y1,Y).
`, "?- p(a,Y).")
	if len(an.Clique) != 2 {
		t.Fatalf("clique = %v", an.Clique)
	}
	if len(an.Rec) != 2 || len(an.Exit) != 1 {
		t.Errorf("rec=%d exit=%d", len(an.Rec), len(an.Exit))
	}
	for _, r := range an.Rec {
		if r.SkipCounting || r.SkipModified {
			t.Errorf("mutual-recursion rule wrongly skipped: %s", ast.FormatRule(b, r.Rule))
		}
	}
}

func TestAnalyzePassthroughRules(t *testing.T) {
	b, an := analyze(t, `
p(X,Y) :- flat(X,Y).
p(X,Y) :- up(X,X1), p(X1,Y1), down(Y1,Y).
flat(X,Y) :- rawflat(X,Y).
`, "?- p(a,Y).")
	if len(an.Passthrough) != 1 {
		t.Fatalf("passthrough = %d", len(an.Passthrough))
	}
	if got := b.Symbols().String(an.Passthrough[0].Head.Pred); got != "flat_bf" {
		t.Errorf("passthrough rule head = %s", got)
	}
}

func TestAnalyzeFloatingLiteralGoesRight(t *testing.T) {
	// q(Z) shares no variable with the bound side; it lands in the right
	// part so the counting set stays lean.
	b, an := analyze(t, `
p(X,Y) :- e(X,Y).
p(X,Y) :- up(X,X1), p(X1,Y1), down(Y1,Y), q(Z).
`, "?- p(a,Y).")
	r := an.Rec[0]
	foundQ := false
	for _, ri := range r.Right {
		if b.Symbols().String(r.Rule.Body[ri].Pred) == "q" {
			foundQ = true
		}
	}
	if !foundQ {
		t.Errorf("floating literal q not in right part: L=%v R=%v", r.Left, r.Right)
	}
}

func TestAnalyzeChainedLeftPart(t *testing.T) {
	// The left part is a two-literal chain binding X1 transitively.
	_, an := analyze(t, `
p(X,Y) :- e(X,Y).
p(X,Y) :- hop(X,M), hop2(M,X1), p(X1,Y1), down(Y1,Y).
`, "?- p(a,Y).")
	r := an.Rec[0]
	if len(r.Left) != 2 {
		t.Errorf("left part = %v, want both hop literals", r.Left)
	}
}

func TestAnalyzeFreeHeadVarFromLeftPartIsShared(t *testing.T) {
	// The free head variable Z is produced by the left part; it must be
	// recorded in C_r so the answer phase can recover it.
	b, an := analyze(t, `
p(X,Y,Z) :- e(X,Y,Z).
p(X,Y,Z) :- up(X,X1,Z), p(X1,Y1,Z1), down(Y1,Y).
`, "?- p(a,Y,Z).")
	r := an.Rec[0]
	if got := names(b, r.Shared); len(got) != 1 || got[0] != "Z" {
		t.Errorf("C_r = %v, want [Z]", got)
	}
}
