package counting

import (
	"strings"
	"testing"

	"lincount/internal/database"
	"lincount/internal/term"
)

func runWithProv(t *testing.T, src, goal, facts string) (*rwFixture, *Runtime, *RunResult) {
	t.Helper()
	f := newRW(t, src, goal, facts)
	an, err := Analyze(f.adorned(t))
	if err != nil {
		t.Fatal(err)
	}
	rt, res, err := RunWithProvenance(an, f.db, RuntimeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	return f, rt, res
}

func sgAnswer(f *rwFixture, name string) database.Tuple {
	return database.Tuple{term.Symbol(f.bank.Symbols().Intern(name))}
}

// TestExplainExample5 reconstructs the witness for answer h of Example 5:
// an exit at node e followed by two down-steps (undoing up(b,e) and
// up(a,b)).
func TestExplainExample5(t *testing.T) {
	f, rt, res := runWithProv(t, sgProgram, "?- sg(a,Y).", example5Facts)
	if len(res.Answers) != 3 {
		t.Fatalf("answers = %d", len(res.Answers))
	}
	d, err := rt.Explain(sgAnswer(f, "h"))
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Steps) != 3 {
		t.Fatalf("witness for h has %d steps, want 3:\n%s", len(d.Steps), d.Format(f.bank))
	}
	if d.Steps[0].Kind != StepExit || d.Steps[0].Node != "(e)" {
		t.Errorf("step 1 = %+v, want exit at (e)", d.Steps[0])
	}
	if d.Steps[1].Kind != StepMove || d.Steps[2].Kind != StepMove {
		t.Errorf("steps 2-3 should be moves: %+v", d.Steps[1:])
	}
	if d.Steps[2].Node != "(a)" {
		t.Errorf("final step lands at %s, want (a)", d.Steps[2].Node)
	}
	text := d.Format(f.bank)
	if !strings.Contains(text, "exit") || !strings.Contains(text, "undo") {
		t.Errorf("formatted witness:\n%s", text)
	}
}

// TestExplainCycleAnswer: the witness for l must traverse the d-e cycle —
// it has 7 steps (exit + 6 downs).
func TestExplainCycleAnswer(t *testing.T) {
	f, rt, _ := runWithProv(t, sgProgram, "?- sg(a,Y).", example5Facts)
	d, err := rt.Explain(sgAnswer(f, "l"))
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Steps) != 7 {
		t.Fatalf("witness for l has %d steps, want 7:\n%s", len(d.Steps), d.Format(f.bank))
	}
	// The walk must visit node d twice (once via the cycle).
	visits := 0
	for _, s := range d.Steps {
		if s.Node == "(d)" {
			visits++
		}
	}
	if visits != 2 {
		t.Errorf("node d visited %d times in the witness, want 2:\n%s", visits, d.Format(f.bank))
	}
}

// TestExplainLeftLinear: witnesses of left-linear rules are StepSame.
func TestExplainLeftLinear(t *testing.T) {
	f, rt, res := runWithProv(t, `
p(X,Y) :- flat(X,Y).
p(X,Y) :- p(X,Y1), down(Y1,Y).
`, "?- p(a,Y).", "flat(a,f0). down(f0,f1). down(f1,f2).")
	if len(res.Answers) != 3 {
		t.Fatalf("answers = %v", res.Answers)
	}
	d, err := rt.Explain(sgAnswer(f, "f2"))
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Steps) != 3 {
		t.Fatalf("steps = %d", len(d.Steps))
	}
	if d.Steps[1].Kind != StepSame || d.Steps[2].Kind != StepSame {
		t.Errorf("left-linear steps not StepSame: %+v", d.Steps)
	}
}

func TestExplainUnknownAnswer(t *testing.T) {
	f, rt, _ := runWithProv(t, sgProgram, "?- sg(a,Y).", example5Facts)
	if _, err := rt.Explain(sgAnswer(f, "nosuch")); err == nil {
		t.Error("Explain accepted a non-answer")
	}
}

func TestExplainRequiresProvenance(t *testing.T) {
	f := newRW(t, sgProgram, "?- sg(a,Y).", example5Facts)
	an, err := Analyze(f.adorned(t))
	if err != nil {
		t.Fatal(err)
	}
	rt, err := NewRuntime(an, f.db, RuntimeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rt.Run(); err != nil {
		t.Fatal(err)
	}
	if _, err := rt.Explain(sgAnswer(f, "h")); err == nil {
		t.Error("Explain without provenance recording did not error")
	}
}

func TestExplainAllCoversEveryAnswer(t *testing.T) {
	_, rt, res := runWithProv(t, sgProgram, "?- sg(a,Y).", example5Facts)
	texts, err := ExplainAll(rt, res)
	if err != nil {
		t.Fatal(err)
	}
	if len(texts) != len(res.Answers) {
		t.Errorf("got %d witnesses for %d answers", len(texts), len(res.Answers))
	}
	for i, txt := range texts {
		if !strings.Contains(txt, "exit") {
			t.Errorf("witness %d has no exit step:\n%s", i, txt)
		}
	}
}
