package counting

import (
	"fmt"
	"testing"

	"lincount/internal/ast"
	"lincount/internal/engine"
)

// TestExample6Reduction reproduces §5's Example 6 end to end: the mixed
// linear program's extended-counting rewrite and its reduced form.
func TestExample6Reduction(t *testing.T) {
	f := newRW(t, `
p(X,Y) :- flat(X,Y).
p(X,Y) :- up(X,X1), p(X1,Y).
p(X,Y) :- p(X,Y1), down(Y1,Y).
`, "?- p(a,Y).", "")
	rw := f.extended(t)
	// The rewritten program of Example 6.
	wantRules(t, f.bank, rw.Program, []string{
		"c_p_bf(a,[]).",
		"c_p_bf(X1,L) :- c_p_bf(X,L), up(X,X1).",
		"p_bf(Y,L) :- c_p_bf(X,L), flat(X,Y).",
		"p_bf(Y,L) :- p_bf(Y1,L), down(Y1,Y).",
	})
	red := Reduce(rw)
	// The reduced program of Example 6.
	wantRules(t, f.bank, red.Program, []string{
		"c_p_bf(a).",
		"c_p_bf(X1) :- c_p_bf(X), up(X,X1).",
		"p_bf(Y) :- c_p_bf(X), flat(X,Y).",
		"p_bf(Y) :- p_bf(Y1), down(Y1,Y).",
	})
	if got := ast.FormatQuery(f.bank, red.Query); got != "?- p_bf(Y)." {
		t.Errorf("reduced query = %s", got)
	}
}

// TestFact1RightLinear: for a purely right-linear program the reduction
// yields counting rules plus the exit modified rule only — the optimized
// program of Naughton et al. for right-linear rules.
func TestFact1RightLinear(t *testing.T) {
	f := newRW(t, `
p(X,Y) :- flat(X,Y).
p(X,Y) :- up(X,X1), p(X1,Y).
`, "?- p(a,Y).", "")
	rw := f.extended(t)
	red := Reduce(rw)
	wantRules(t, f.bank, red.Program, []string{
		"c_p_bf(a).",
		"c_p_bf(X1) :- c_p_bf(X), up(X,X1).",
		"p_bf(Y) :- c_p_bf(X), flat(X,Y).",
	})
}

// TestFact1LeftLinear: for a purely left-linear program the counting set
// degenerates to the seed and the answer rules keep their recursion.
func TestFact1LeftLinear(t *testing.T) {
	f := newRW(t, `
p(X,Y) :- flat(X,Y).
p(X,Y) :- p(X,Y1), down(Y1,Y).
`, "?- p(a,Y).", "")
	rw := f.extended(t)
	red := Reduce(rw)
	wantRules(t, f.bank, red.Program, []string{
		"c_p_bf(a).",
		"p_bf(Y) :- c_p_bf(X), flat(X,Y).",
		"p_bf(Y) :- p_bf(Y1), down(Y1,Y).",
	})
}

// TestReduceKeepsGeneralLinearIntact: a program that pushes the path on
// both sides must not be reduced.
func TestReduceKeepsGeneralLinearIntact(t *testing.T) {
	f := newRW(t, `
sg(X,Y) :- flat(X,Y).
sg(X,Y) :- up(X,X1), sg(X1,Y1), down(Y1,Y).
`, "?- sg(a,Y).", "")
	rw := f.extended(t)
	red := Reduce(rw)
	if len(red.Program.Rules) != len(rw.Program.Rules) {
		t.Fatalf("reduction changed rule count: %d vs %d",
			len(red.Program.Rules), len(rw.Program.Rules))
	}
	for i := range rw.Program.Rules {
		if !red.Program.Rules[i].Equal(rw.Program.Rules[i]) {
			t.Errorf("rule %d changed:\n%s\nvs\n%s", i,
				ast.FormatRule(f.bank, red.Program.Rules[i]),
				ast.FormatRule(f.bank, rw.Program.Rules[i]))
		}
	}
}

// TestReducedEquivalence (Theorem 3): the reduced program computes the same
// answers as the original query on mixed-linear programs.
func TestReducedEquivalence(t *testing.T) {
	facts := `
up(a,b). up(b,c).
flat(a,fa). flat(b,fb). flat(c,fc). flat(z,fz).
down(fa,d1). down(fb,d2). down(fc,d3). down(d3,d4).
`
	f := newRW(t, `
p(X,Y) :- flat(X,Y).
p(X,Y) :- up(X,X1), p(X1,Y).
p(X,Y) :- p(X,Y1), down(Y1,Y).
`, "?- p(a,Y).", facts)
	rw := f.extended(t)
	red := Reduce(rw)
	got := evalAnswers(t, f, red)

	plain := plainAnswers(t, f)
	var plainFree []string
	for _, p := range plain {
		plainFree = append(plainFree, p[2:]) // strip "a,"
	}
	if fmt.Sprint(got) != fmt.Sprint(plainFree) {
		t.Errorf("reduced %v, plain %v", got, plainFree)
	}
}

// TestReducedLeftLinearWithBoundVarInRight keeps the counting literal when
// the right part uses the bound head variable (D_r ≠ ∅).
func TestReducedLeftLinearWithBoundVarInRight(t *testing.T) {
	f := newRW(t, `
p(X,Y) :- flat(X,Y).
p(X,Y) :- p(X,Y1), down(Y1,Y,X).
`, "?- p(a,Y).", `
flat(a,fa). down(fa,d1,a). down(fa,dBAD,zz). down(d1,d2,a).
`)
	rw := f.extended(t)
	red := Reduce(rw)
	// The counting literal must survive reduction: it supplies X.
	found := false
	for _, r := range red.Program.Rules {
		for _, l := range r.Body {
			if f.bank.Symbols().String(l.Pred) == "c_p_bf" && len(r.Body) > 1 {
				found = true
			}
		}
	}
	if !found {
		t.Fatalf("counting literal dropped:\n%s", red.Program.Format())
	}
	got := evalAnswers(t, f, red)
	if fmt.Sprint(got) != "[d1 d2 fa]" {
		t.Errorf("answers = %v, want [d1 d2 fa]", got)
	}
}

// TestReduceDropsUnconnectedCountingLiteral: an exit rule whose bound head
// argument does not occur in the exit body loses its counting literal after
// path deletion (rule 2 of Algorithm 3).
func TestReduceDropsUnconnectedCountingLiteral(t *testing.T) {
	f := newRW(t, `
p(X,Y) :- always(Y).
p(X,Y) :- p(X,Y1), down(Y1,Y).
`, "?- p(a,Y).", "")
	rw := f.extended(t)
	red := Reduce(rw)
	for _, r := range red.Program.Rules {
		for _, l := range r.Body {
			if f.bank.Symbols().String(l.Pred) == "c_p_bf" {
				t.Errorf("unconnected counting literal kept: %s", ast.FormatRule(f.bank, r))
			}
		}
	}
}

// TestReducedCostAdvantage measures the §5 point on a deep chain: the
// reduced right-linear program derives far fewer facts than magic would,
// because answers are not replicated per binding.
func TestReducedCostAdvantage(t *testing.T) {
	var facts string
	const n = 60
	for i := 0; i < n; i++ {
		facts += fmt.Sprintf("up(n%d,n%d). ", i, i+1)
	}
	facts += fmt.Sprintf("flat(n%d,leaf).", n)
	f := newRW(t, `
p(X,Y) :- flat(X,Y).
p(X,Y) :- up(X,X1), p(X1,Y).
`, "?- p(n0,Y).", facts)
	rw := f.extended(t)
	red := Reduce(rw)
	res, err := engine.Eval(red.Program, f.db, engine.Options{})
	if err != nil {
		t.Fatal(err)
	}
	ans := engine.Answers(res, f.db, red.Query)
	if len(ans) != 1 {
		t.Fatalf("answers = %v", ans)
	}
	// p_bf holds a single tuple (leaf), not one per chain position.
	p := res.Relation(f.bank.Symbols().Intern("p_bf"))
	if p.Len() != 1 {
		t.Errorf("p_bf has %d tuples, want 1 (answer not replicated)", p.Len())
	}
}
