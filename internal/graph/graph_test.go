package graph

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// buildExample2 is the graph of the paper's Example 2: nodes a,b,c,d mapped
// to 0..3, arcs in the paper's listing order.
func buildExample2() (*Digraph, map[string]int, []string) {
	g := New(4)
	names := map[string]int{"a": 0, "b": 1, "c": 2, "d": 3}
	arcs := []string{"ab", "ac", "db", "cb", "bc", "ad"}
	for _, a := range arcs {
		g.AddArc(names[string(a[0])], names[string(a[1])])
	}
	return g, names, arcs
}

// TestExample2Classification reproduces Example 2 of the paper exactly:
// (a,b), (b,c), (a,d) are tree arcs, (a,c) forward, (d,b) cross, (c,b) back.
func TestExample2Classification(t *testing.T) {
	g, names, arcs := buildExample2()
	c := g.ClassifyDFS(names["a"])
	want := map[string]ArcClass{
		"ab": Tree, "bc": Tree, "ad": Tree,
		"ac": Forward, "db": Cross, "cb": Back,
	}
	for id, arc := range arcs {
		if got := c.Class[id]; got != want[arc] {
			t.Errorf("arc %s classified %v, want %v", arc, got, want[arc])
		}
	}
	if got := len(c.BackArcs()); got != 1 {
		t.Errorf("back arcs = %d, want 1", got)
	}
	if got := len(c.AheadArcs()); got != 5 {
		t.Errorf("ahead arcs = %d, want 5", got)
	}
}

// TestExample2Multiplicity checks the paper's node taxonomy: a and d are
// single, b and c recurring.
func TestExample2Multiplicity(t *testing.T) {
	g, names, _ := buildExample2()
	m := g.NodeMultiplicity(names["a"])
	want := map[string]Multiplicity{
		"a": Single, "d": Single, "b": Recurring, "c": Recurring,
	}
	for n, id := range names {
		if m[id] != want[n] {
			t.Errorf("node %s multiplicity %v, want %v", n, m[id], want[n])
		}
	}
}

func TestMultipleWithoutCycle(t *testing.T) {
	// Diamond: 0→1, 0→2, 1→3, 2→3. Node 3 has two paths, no cycles.
	g := New(4)
	g.AddArc(0, 1)
	g.AddArc(0, 2)
	g.AddArc(1, 3)
	g.AddArc(2, 3)
	m := g.NodeMultiplicity(0)
	if m[0] != Single || m[1] != Single || m[2] != Single {
		t.Errorf("diamond prefix multiplicities wrong: %v", m)
	}
	if m[3] != Multiple {
		t.Errorf("diamond sink = %v, want Multiple", m[3])
	}
}

func TestNotReached(t *testing.T) {
	g := New(3)
	g.AddArc(0, 1)
	m := g.NodeMultiplicity(0)
	if m[2] != NotReached {
		t.Errorf("isolated node = %v, want NotReached", m[2])
	}
	c := g.ClassifyDFS(0)
	if c.Reached[2] {
		t.Error("isolated node marked reached")
	}
}

func TestSelfLoopIsBackArcAndRecurring(t *testing.T) {
	g := New(2)
	g.AddArc(0, 0)
	g.AddArc(0, 1)
	c := g.ClassifyDFS(0)
	if c.Class[0] != Back {
		t.Errorf("self loop classified %v", c.Class[0])
	}
	m := g.NodeMultiplicity(0)
	if m[0] != Recurring || m[1] != Recurring {
		t.Errorf("self loop multiplicities = %v", m)
	}
}

func TestChainAllSingle(t *testing.T) {
	g := New(5)
	for i := 0; i < 4; i++ {
		g.AddArc(i, i+1)
	}
	if !g.IsAcyclicFrom(0) {
		t.Error("chain reported cyclic")
	}
	for v, m := range g.NodeMultiplicity(0) {
		if m != Single {
			t.Errorf("chain node %d = %v", v, m)
		}
	}
}

func TestParallelArcsMakeMultiple(t *testing.T) {
	g := New(2)
	g.AddArc(0, 1)
	g.AddArc(0, 1)
	m := g.NodeMultiplicity(0)
	if m[1] != Multiple {
		t.Errorf("parallel arcs target = %v, want Multiple", m[1])
	}
	c := g.ClassifyDFS(0)
	if c.Class[0] != Tree || c.Class[1] != Forward {
		t.Errorf("parallel arcs classified %v, %v", c.Class[0], c.Class[1])
	}
}

func TestSCC(t *testing.T) {
	// 0↔1 cycle, 2→0, 2→3.
	g := New(4)
	g.AddArc(0, 1)
	g.AddArc(1, 0)
	g.AddArc(2, 0)
	g.AddArc(2, 3)
	comps := g.SCC()
	if len(comps) != 3 {
		t.Fatalf("got %d components: %v", len(comps), comps)
	}
	var cyc []int
	for _, c := range comps {
		if len(c) == 2 {
			cyc = c
		}
	}
	if len(cyc) != 2 || cyc[0] != 0 || cyc[1] != 1 {
		t.Errorf("cycle component = %v", cyc)
	}
	// Reverse topological: the {0,1} component must appear before {2}.
	pos := map[int]int{}
	for i, c := range comps {
		for _, v := range c {
			pos[v] = i
		}
	}
	if !(pos[0] < pos[2] && pos[3] < pos[2]) {
		t.Errorf("component order not reverse-topological: %v", comps)
	}
}

func TestReachableFrom(t *testing.T) {
	g := New(4)
	g.AddArc(0, 1)
	g.AddArc(1, 2)
	g.AddArc(3, 0)
	r := g.ReachableFrom(0)
	want := []bool{true, true, true, false}
	for i := range want {
		if r[i] != want[i] {
			t.Errorf("reach[%d] = %v", i, r[i])
		}
	}
}

// TestExample2ElementaryCycle: the arcs (b,c) and (c,b) form the unique
// elementary cycle of Example 2.
func TestExample2ElementaryCycle(t *testing.T) {
	g, names, _ := buildExample2()
	cycles := g.ElementaryCycles(0)
	if len(cycles) != 1 {
		t.Fatalf("cycles = %v", cycles)
	}
	c := cycles[0]
	if len(c) != 2 {
		t.Fatalf("cycle length = %d", len(c))
	}
	has := map[int]bool{c[0]: true, c[1]: true}
	if !has[names["b"]] || !has[names["c"]] {
		t.Errorf("cycle = %v, want {b,c}", c)
	}
	if got := g.CycleLengthsThrough(names["b"], 0); len(got) != 1 || got[0] != 2 {
		t.Errorf("lengths through b = %v", got)
	}
	if got := g.CycleLengthsThrough(names["a"], 0); len(got) != 0 {
		t.Errorf("lengths through a = %v", got)
	}
}

func TestElementaryCyclesSelfLoopAndBound(t *testing.T) {
	g := New(3)
	g.AddArc(0, 0)
	g.AddArc(1, 2)
	g.AddArc(2, 1)
	cycles := g.ElementaryCycles(0)
	if len(cycles) != 2 {
		t.Fatalf("cycles = %v", cycles)
	}
	if len(cycles[0]) != 1 || cycles[0][0] != 0 {
		t.Errorf("self loop not found: %v", cycles)
	}
	if got := g.ElementaryCycles(1); len(got) != 1 {
		t.Errorf("bound not respected: %v", got)
	}
}

func TestElementaryCyclesOverlapping(t *testing.T) {
	// Two cycles sharing node 0: 0→1→0 and 0→2→0.
	g := New(3)
	g.AddArc(0, 1)
	g.AddArc(1, 0)
	g.AddArc(0, 2)
	g.AddArc(2, 0)
	if got := g.ElementaryCycles(0); len(got) != 2 {
		t.Errorf("cycles = %v", got)
	}
	if got := g.CycleLengthsThrough(0, 0); len(got) != 1 || got[0] != 2 {
		t.Errorf("lengths = %v", got)
	}
	// Add a long cycle 0→1→2→0 as well.
	g.AddArc(1, 2)
	if got := g.CycleLengthsThrough(0, 0); len(got) != 2 || got[1] != 3 {
		t.Errorf("lengths = %v", got)
	}
}

// Property: every returned cycle is a genuine elementary cycle (distinct
// nodes, consecutive arcs exist, closing arc exists), and a graph has
// cycles iff some classification finds a back arc.
func TestElementaryCyclesAreValid(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 2 + r.Intn(7)
		g := randomGraph(r, n, r.Intn(2*n))
		hasArc := func(a, b int) bool {
			for _, id := range g.ArcsFrom(a) {
				if _, to := g.Arc(int(id)); to == b {
					return true
				}
			}
			return false
		}
		cycles := g.ElementaryCycles(500)
		for _, c := range cycles {
			nodes := map[int]bool{}
			for _, v := range c {
				if nodes[v] {
					return false // not elementary
				}
				nodes[v] = true
			}
			for i := range c {
				if !hasArc(c[i], c[(i+1)%len(c)]) {
					return false
				}
			}
		}
		// Consistency with back-arc detection.
		anyBack := false
		for v := 0; v < n; v++ {
			if len(g.ClassifyDFS(v).BackArcs()) > 0 {
				anyBack = true
				break
			}
		}
		return anyBack == (len(cycles) > 0)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

func TestElementaryCyclesParallelArcsDedup(t *testing.T) {
	g := New(2)
	g.AddArc(0, 1)
	g.AddArc(0, 1)
	g.AddArc(1, 0)
	if got := g.ElementaryCycles(0); len(got) != 1 {
		t.Errorf("parallel arcs duplicated cycles: %v", got)
	}
}

func TestElementaryCyclesAcyclic(t *testing.T) {
	g := New(4)
	g.AddArc(0, 1)
	g.AddArc(1, 2)
	g.AddArc(0, 2)
	if got := g.ElementaryCycles(0); len(got) != 0 {
		t.Errorf("acyclic graph has cycles: %v", got)
	}
}

func randomGraph(r *rand.Rand, n, arcs int) *Digraph {
	g := New(n)
	for i := 0; i < arcs; i++ {
		g.AddArc(r.Intn(n), r.Intn(n))
	}
	return g
}

// Property: ahead arcs from any classification form an acyclic subgraph.
func TestAheadSubgraphAcyclic(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 2 + r.Intn(20)
		g := randomGraph(r, n, r.Intn(3*n))
		src := r.Intn(n)
		c := g.ClassifyDFS(src)
		sub := New(n)
		for _, id := range c.AheadArcs() {
			from, to := g.Arc(id)
			sub.AddArc(from, to)
		}
		// Check from every node: no back arcs anywhere in the subgraph.
		for v := 0; v < n; v++ {
			if !sub.IsAcyclicFrom(v) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: every arc whose tail is reached gets a non-Unreached class, and
// arcs from unreached tails stay Unreached.
func TestClassificationCoverage(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 2 + r.Intn(15)
		g := randomGraph(r, n, r.Intn(3*n))
		c := g.ClassifyDFS(r.Intn(n))
		for id := 0; id < g.NumArcs(); id++ {
			from, _ := g.Arc(id)
			if c.Reached[from] != (c.Class[id] != Unreached) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: acyclic-from-source iff no reachable node is Recurring.
func TestAcyclicIffNoRecurring(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 2 + r.Intn(15)
		g := randomGraph(r, n, r.Intn(3*n))
		src := r.Intn(n)
		anyRecurring := false
		for _, m := range g.NodeMultiplicity(src) {
			if m == Recurring {
				anyRecurring = true
			}
		}
		return g.IsAcyclicFrom(src) == !anyRecurring
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: multiplicities agree with explicit saturating path counting on
// small acyclic graphs.
func TestMultiplicityMatchesPathCountOnDAGs(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 2 + r.Intn(10)
		g := New(n)
		// Only forward arcs i<j: guaranteed acyclic.
		for i := 0; i < 2*n; i++ {
			a, b := r.Intn(n), r.Intn(n)
			if a < b {
				g.AddArc(a, b)
			}
		}
		src := 0
		// Brute-force path counting by DFS enumeration (saturating at 3).
		var count func(v int) int
		count = func(v int) int {
			if v == src {
				return 1
			}
			total := 0
			for id := 0; id < g.NumArcs(); id++ {
				from, to := g.Arc(id)
				if to == v {
					total += count(from)
					if total > 3 {
						return 3
					}
				}
			}
			return total
		}
		m := g.NodeMultiplicity(src)
		for v := 0; v < n; v++ {
			c := count(v)
			switch {
			case c == 0 && m[v] != NotReached:
				return false
			case c == 1 && m[v] != Single:
				return false
			case c >= 2 && m[v] != Multiple:
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

func TestAddNodeAndArcBounds(t *testing.T) {
	g := New(1)
	id := g.AddNode()
	if id != 1 || g.NumNodes() != 2 {
		t.Errorf("AddNode = %d, nodes = %d", id, g.NumNodes())
	}
	defer func() {
		if recover() == nil {
			t.Error("out-of-range arc did not panic")
		}
	}()
	g.AddArc(0, 5)
}
