// Package graph implements the directed-multigraph machinery of the paper's
// §2 and §4: depth-first arc classification into tree, forward, cross and
// back arcs (ahead = tree ∪ forward ∪ cross), reachability, strongly
// connected components, and the single/multiple/recurring node taxonomy.
//
// The counting runtime partitions the left-part graph of a program with
// ClassifyDFS: the ahead arcs form an acyclic graph that drives the counting
// set, while back arcs become cycle links.
package graph

import (
	"fmt"
	"sort"
)

// Digraph is a directed multigraph over dense integer nodes. Parallel arcs
// and self-loops are allowed; arcs are identified by insertion index.
type Digraph struct {
	n    int
	from []int32
	to   []int32
	adj  [][]int32 // node → arc ids, in insertion order
}

// New returns a graph with n nodes and no arcs.
func New(n int) *Digraph {
	return &Digraph{n: n, adj: make([][]int32, n)}
}

// NumNodes returns the node count.
func (g *Digraph) NumNodes() int { return g.n }

// NumArcs returns the arc count.
func (g *Digraph) NumArcs() int { return len(g.from) }

// AddNode adds a node and returns its id.
func (g *Digraph) AddNode() int {
	g.n++
	g.adj = append(g.adj, nil)
	return g.n - 1
}

// AddArc adds an arc and returns its id.
func (g *Digraph) AddArc(from, to int) int {
	if from < 0 || from >= g.n || to < 0 || to >= g.n {
		panic(fmt.Sprintf("graph: arc (%d,%d) out of range, n=%d", from, to, g.n))
	}
	id := len(g.from)
	g.from = append(g.from, int32(from))
	g.to = append(g.to, int32(to))
	g.adj[from] = append(g.adj[from], int32(id))
	return id
}

// Arc returns the endpoints of arc id.
func (g *Digraph) Arc(id int) (from, to int) {
	return int(g.from[id]), int(g.to[id])
}

// ArcsFrom returns the arc ids leaving v, in insertion order. The returned
// slice must not be mutated.
func (g *Digraph) ArcsFrom(v int) []int32 { return g.adj[v] }

// ArcClass is the DFS classification of one arc with respect to a source.
type ArcClass uint8

const (
	// Unreached marks arcs whose tail was never discovered.
	Unreached ArcClass = iota
	// Tree arcs form the DFS tree.
	Tree
	// Forward arcs go from a proper ancestor (not parent) to a descendant.
	Forward
	// Cross arcs join nodes unrelated by ancestry.
	Cross
	// Back arcs go from a node to one of its DFS ancestors (including
	// itself: a self-loop is a back arc). Every cycle reachable from the
	// source contains at least one back arc, so the ahead arcs
	// (tree+forward+cross) form an acyclic subgraph.
	Back
)

// String implements fmt.Stringer.
func (c ArcClass) String() string {
	switch c {
	case Tree:
		return "tree"
	case Forward:
		return "forward"
	case Cross:
		return "cross"
	case Back:
		return "back"
	default:
		return "unreached"
	}
}

// Ahead reports whether the class is tree, forward or cross.
func (c ArcClass) Ahead() bool { return c == Tree || c == Forward || c == Cross }

// Classification is the result of a depth-first classification from a
// source node.
type Classification struct {
	Source int
	// Class[arcID] is the arc's class; Unreached if its tail was not
	// visited.
	Class []ArcClass
	// Reached[v] reports whether v was discovered.
	Reached []bool
	// Disc[v] is the discovery index of v (-1 if unreached).
	Disc []int
	// Parent[v] is the tree parent of v (-1 for the source and unreached
	// nodes).
	Parent []int
}

// ClassifyDFS runs a deterministic depth-first search from source (arcs in
// insertion order) and classifies every arc whose tail is reached.
func (g *Digraph) ClassifyDFS(source int) *Classification {
	c := &Classification{
		Source:  source,
		Class:   make([]ArcClass, len(g.from)),
		Reached: make([]bool, g.n),
		Disc:    make([]int, g.n),
		Parent:  make([]int, g.n),
	}
	for i := range c.Disc {
		c.Disc[i] = -1
		c.Parent[i] = -1
	}
	onStack := make([]bool, g.n)
	finished := make([]bool, g.n)
	clock := 0

	// Iterative DFS so deep chains in benchmarks cannot overflow the
	// goroutine stack.
	type frame struct {
		v   int
		idx int // next adjacency index to consider
	}
	stack := []frame{{v: source}}
	c.Reached[source] = true
	c.Disc[source] = clock
	clock++
	onStack[source] = true

	for len(stack) > 0 {
		f := &stack[len(stack)-1]
		if f.idx >= len(g.adj[f.v]) {
			onStack[f.v] = false
			finished[f.v] = true
			stack = stack[:len(stack)-1]
			continue
		}
		arcID := g.adj[f.v][f.idx]
		f.idx++
		w := int(g.to[arcID])
		switch {
		case !c.Reached[w]:
			c.Class[arcID] = Tree
			c.Reached[w] = true
			c.Disc[w] = clock
			clock++
			c.Parent[w] = f.v
			onStack[w] = true
			stack = append(stack, frame{v: w})
		case onStack[w]:
			c.Class[arcID] = Back
		case c.Disc[w] > c.Disc[f.v]:
			c.Class[arcID] = Forward
		default:
			c.Class[arcID] = Cross
		}
	}
	return c
}

// AheadArcs returns the ids of arcs classified ahead (tree/forward/cross).
func (c *Classification) AheadArcs() []int {
	var out []int
	for id, cl := range c.Class {
		if cl.Ahead() {
			out = append(out, id)
		}
	}
	return out
}

// BackArcs returns the ids of arcs classified back.
func (c *Classification) BackArcs() []int {
	var out []int
	for id, cl := range c.Class {
		if cl == Back {
			out = append(out, id)
		}
	}
	return out
}

// ReachableFrom returns the set of nodes reachable from source.
func (g *Digraph) ReachableFrom(source int) []bool {
	seen := make([]bool, g.n)
	seen[source] = true
	work := []int{source}
	for len(work) > 0 {
		v := work[len(work)-1]
		work = work[:len(work)-1]
		for _, id := range g.adj[v] {
			w := int(g.to[id])
			if !seen[w] {
				seen[w] = true
				work = append(work, w)
			}
		}
	}
	return seen
}

// IsAcyclicFrom reports whether the subgraph reachable from source contains
// no cycle (equivalently: the classification has no back arcs).
func (g *Digraph) IsAcyclicFrom(source int) bool {
	return len(g.ClassifyDFS(source).BackArcs()) == 0
}

// SCC returns the strongly connected components of the whole graph in
// reverse topological order (callees first), each as a sorted node list.
func (g *Digraph) SCC() [][]int {
	index := make([]int, g.n)
	low := make([]int, g.n)
	onStack := make([]bool, g.n)
	for i := range index {
		index[i] = -1
	}
	var stack []int
	var comps [][]int
	counter := 0

	// Iterative Tarjan.
	type frame struct {
		v, idx int
	}
	var dfs func(root int)
	dfs = func(root int) {
		frames := []frame{{v: root}}
		index[root] = counter
		low[root] = counter
		counter++
		stack = append(stack, root)
		onStack[root] = true
		for len(frames) > 0 {
			f := &frames[len(frames)-1]
			if f.idx < len(g.adj[f.v]) {
				arcID := g.adj[f.v][f.idx]
				f.idx++
				w := int(g.to[arcID])
				if index[w] == -1 {
					index[w] = counter
					low[w] = counter
					counter++
					stack = append(stack, w)
					onStack[w] = true
					frames = append(frames, frame{v: w})
				} else if onStack[w] && index[w] < low[f.v] {
					low[f.v] = index[w]
				}
				continue
			}
			// Pop frame; propagate lowlink and emit component.
			v := f.v
			frames = frames[:len(frames)-1]
			if len(frames) > 0 {
				p := &frames[len(frames)-1]
				if low[v] < low[p.v] {
					low[p.v] = low[v]
				}
			}
			if low[v] == index[v] {
				var comp []int
				for {
					w := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					onStack[w] = false
					comp = append(comp, w)
					if w == v {
						break
					}
				}
				// Sort for determinism.
				for i := 1; i < len(comp); i++ {
					for j := i; j > 0 && comp[j] < comp[j-1]; j-- {
						comp[j], comp[j-1] = comp[j-1], comp[j]
					}
				}
				comps = append(comps, comp)
			}
		}
	}
	for v := 0; v < g.n; v++ {
		if index[v] == -1 {
			dfs(v)
		}
	}
	return comps
}

// ElementaryCycles enumerates the graph's elementary cycles (§2: cycles
// containing each node at most once), each as the node sequence in cycle
// order starting from its smallest node. Enumeration stops after maxCycles
// results (0 means no bound); the count can be exponential in dense graphs.
func (g *Digraph) ElementaryCycles(maxCycles int) [][]int {
	var out [][]int
	seen := map[string]bool{} // parallel arcs repeat a node sequence
	onPath := make([]bool, g.n)
	var path []int

	emit := func() bool {
		key := fmt.Sprint(path)
		if seen[key] {
			return true
		}
		seen[key] = true
		out = append(out, append([]int(nil), path...))
		return maxCycles == 0 || len(out) < maxCycles
	}

	var dfs func(start, v int) bool // returns false to abort (bound hit)
	dfs = func(start, v int) bool {
		path = append(path, v)
		onPath[v] = true
		defer func() {
			path = path[:len(path)-1]
			onPath[v] = false
		}()
		for _, id := range g.adj[v] {
			w := int(g.to[id])
			if w < start {
				continue // canonical form: cycles start at their minimum node
			}
			if w == start {
				if !emit() {
					return false
				}
				continue
			}
			if !onPath[w] {
				if !dfs(start, w) {
					return false
				}
			}
		}
		return true
	}
	for s := 0; s < g.n; s++ {
		if !dfs(s, s) {
			break
		}
	}
	return out
}

// CycleLengthsThrough returns the sorted distinct lengths of elementary
// cycles containing node v — the quantity the paper's §4 intuition
// associates with nodes that receive a back arc. The same maxCycles bound
// as ElementaryCycles applies.
func (g *Digraph) CycleLengthsThrough(v, maxCycles int) []int {
	seen := map[int]bool{}
	for _, c := range g.ElementaryCycles(maxCycles) {
		for _, n := range c {
			if n == v {
				seen[len(c)] = true
				break
			}
		}
	}
	out := make([]int, 0, len(seen))
	for l := range seen {
		out = append(out, l)
	}
	sort.Ints(out)
	return out
}

// Multiplicity is the paper's §2 taxonomy of nodes with respect to a source:
// the number of distinct paths from the source.
type Multiplicity uint8

const (
	// NotReached: no path from the source.
	NotReached Multiplicity = iota
	// Single: exactly one path.
	Single
	// Multiple: a finite number of paths greater than one.
	Multiple
	// Recurring: infinitely many paths (a cycle lies on some path).
	Recurring
)

// String implements fmt.Stringer.
func (m Multiplicity) String() string {
	switch m {
	case Single:
		return "single"
	case Multiple:
		return "multiple"
	case Recurring:
		return "recurring"
	default:
		return "not-reached"
	}
}

// NodeMultiplicity computes the multiplicity of every node with respect to
// source. The empty path counts: the source itself is Single unless a cycle
// through it exists.
func (g *Digraph) NodeMultiplicity(source int) []Multiplicity {
	out := make([]Multiplicity, g.n)
	reach := g.ReachableFrom(source)

	// Nodes in a reachable cyclic SCC, or downstream of one, are
	// Recurring. Remaining reachable nodes get a saturating path count
	// over the acyclic remainder.
	comps := g.SCC()
	compOf := make([]int, g.n)
	cyclic := make([]bool, len(comps))
	for ci, comp := range comps {
		for _, v := range comp {
			compOf[v] = ci
		}
		if len(comp) > 1 {
			cyclic[ci] = true
		}
	}
	// Self-loops make a singleton SCC cyclic.
	for id := range g.from {
		if g.from[id] == g.to[id] {
			cyclic[compOf[g.from[id]]] = true
		}
	}

	// Saturating path counts: 0, 1, 2 (meaning ≥2), or -1 for infinite.
	const inf = -1
	count := make([]int, g.n)
	count[source] = 1
	if reach[source] && cyclic[compOf[source]] {
		count[source] = inf
	}
	// Process components in topological order. SCC() returns reverse
	// topological order, so iterate backwards.
	for ci := len(comps) - 1; ci >= 0; ci-- {
		// A reached cyclic component has infinitely many paths to every
		// node inside it; settle that before propagating outward.
		if cyclic[ci] {
			infected := false
			for _, v := range comps[ci] {
				if reach[v] && count[v] != 0 {
					infected = true
				}
			}
			if infected {
				for _, v := range comps[ci] {
					if reach[v] {
						count[v] = inf
					}
				}
			}
		}
		for _, v := range comps[ci] {
			if !reach[v] || count[v] == 0 {
				continue
			}
			for _, id := range g.adj[v] {
				w := int(g.to[id])
				if compOf[w] == ci {
					continue // internal arc, settled above
				}
				switch {
				case count[v] == inf:
					count[w] = inf
				case count[w] != inf:
					count[w] += count[v]
					if count[w] > 2 {
						count[w] = 2
					}
				}
			}
		}
	}

	for v := 0; v < g.n; v++ {
		switch {
		case !reach[v]:
			out[v] = NotReached
		case count[v] == inf:
			out[v] = Recurring
		case count[v] <= 1:
			out[v] = Single
		default:
			out[v] = Multiple
		}
	}
	return out
}
