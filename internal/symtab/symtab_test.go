package symtab

import (
	"fmt"
	"sync"
	"testing"
	"testing/quick"
)

func TestInternRoundTrip(t *testing.T) {
	tab := New()
	words := []string{"a", "b", "up", "down", "flat", "sg", "", "a"}
	ids := make([]Sym, len(words))
	for i, w := range words {
		ids[i] = tab.Intern(w)
	}
	for i, w := range words {
		if got := tab.String(ids[i]); got != w {
			t.Errorf("String(Intern(%q)) = %q", w, got)
		}
	}
	if ids[0] != ids[7] {
		t.Errorf("re-interning %q produced different Sym: %d vs %d", "a", ids[0], ids[7])
	}
}

func TestEmptyStringIsNone(t *testing.T) {
	tab := New()
	if got := tab.Intern(""); got != None {
		t.Errorf("Intern(\"\") = %d, want None", got)
	}
	if tab.Len() != 1 {
		t.Errorf("fresh table Len = %d, want 1", tab.Len())
	}
}

func TestLookup(t *testing.T) {
	tab := New()
	if _, ok := tab.Lookup("missing"); ok {
		t.Error("Lookup of missing string reported ok")
	}
	id := tab.Intern("present")
	got, ok := tab.Lookup("present")
	if !ok || got != id {
		t.Errorf("Lookup(present) = %d,%v want %d,true", got, ok, id)
	}
}

func TestDistinctStringsDistinctSyms(t *testing.T) {
	f := func(a, b string) bool {
		tab := New()
		sa, sb := tab.Intern(a), tab.Intern(b)
		return (a == b) == (sa == sb)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestStringPanicsOnForeignSym(t *testing.T) {
	tab := New()
	defer func() {
		if recover() == nil {
			t.Error("String on out-of-range Sym did not panic")
		}
	}()
	tab.String(Sym(99))
}

func TestConcurrentIntern(t *testing.T) {
	tab := New()
	var wg sync.WaitGroup
	const goroutines = 8
	results := make([][]Sym, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				results[g] = append(results[g], tab.Intern(fmt.Sprintf("sym-%d", i)))
			}
		}(g)
	}
	wg.Wait()
	for g := 1; g < goroutines; g++ {
		for i := range results[0] {
			if results[g][i] != results[0][i] {
				t.Fatalf("goroutine %d interned sym-%d to %d, goroutine 0 got %d",
					g, i, results[g][i], results[0][i])
			}
		}
	}
}
