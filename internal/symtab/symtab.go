// Package symtab provides string interning for constant and predicate
// symbols. Interned symbols are dense non-negative integers, which makes
// tuple values and predicate names cheap to hash, compare and store.
package symtab

import (
	"fmt"
	"sync"
)

// Sym is an interned symbol: an index into the owning Table.
type Sym int32

// None is the zero Sym; Table never hands it out for a real string, so it is
// safe to use as a sentinel.
const None Sym = 0

// Table interns strings to dense Sym values. The zero value is not usable;
// call New. A Table is safe for concurrent use.
type Table struct {
	mu   sync.RWMutex
	ids  map[string]Sym
	strs []string
}

// New returns an empty symbol table. Sym 0 is pre-interned to the empty
// string so that the zero Sym never aliases user data.
func New() *Table {
	t := &Table{ids: make(map[string]Sym, 64)}
	t.strs = append(t.strs, "")
	t.ids[""] = None
	return t
}

// Intern returns the Sym for s, creating it if needed.
func (t *Table) Intern(s string) Sym {
	t.mu.RLock()
	id, ok := t.ids[s]
	t.mu.RUnlock()
	if ok {
		return id
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if id, ok := t.ids[s]; ok {
		return id
	}
	id = Sym(len(t.strs))
	t.strs = append(t.strs, s)
	t.ids[s] = id
	return id
}

// Lookup returns the Sym for s and whether it was already interned.
func (t *Table) Lookup(s string) (Sym, bool) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	id, ok := t.ids[s]
	return id, ok
}

// String returns the string for a previously interned Sym. It panics on a
// Sym that this table did not produce, which always indicates a bug in the
// caller (Syms are not meaningful across tables).
func (t *Table) String(id Sym) string {
	t.mu.RLock()
	defer t.mu.RUnlock()
	if id < 0 || int(id) >= len(t.strs) {
		panic(fmt.Sprintf("symtab: unknown Sym %d", id))
	}
	return t.strs[id]
}

// Len reports the number of interned symbols, including the pre-interned
// empty string.
func (t *Table) Len() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return len(t.strs)
}
