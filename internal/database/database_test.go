package database

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"lincount/internal/symtab"
	"lincount/internal/term"
)

func newDB() *Database { return New(term.NewBank(symtab.New())) }

func sym(db *Database, s string) term.Value {
	return term.Symbol(db.Bank().Symbols().Intern(s))
}

func TestInsertDedup(t *testing.T) {
	r := NewRelation(2)
	a, b := term.Int(1), term.Int(2)
	if !r.Insert(Tuple{a, b}) {
		t.Error("first insert reported duplicate")
	}
	if r.Insert(Tuple{a, b}) {
		t.Error("second insert reported new")
	}
	if !r.Insert(Tuple{b, a}) {
		t.Error("distinct tuple reported duplicate")
	}
	if r.Len() != 2 {
		t.Errorf("Len = %d, want 2", r.Len())
	}
	if !r.Contains(Tuple{a, b}) || r.Contains(Tuple{a, a}) {
		t.Error("Contains wrong")
	}
}

func TestInsertCopiesTuple(t *testing.T) {
	r := NewRelation(1)
	tu := Tuple{term.Int(1)}
	r.Insert(tu)
	tu[0] = term.Int(9)
	if r.At(0)[0] != term.Int(1) {
		t.Error("Insert did not copy the tuple")
	}
}

func TestProbe(t *testing.T) {
	r := NewRelation(2)
	for i := int64(0); i < 10; i++ {
		r.Insert(Tuple{term.Int(i % 3), term.Int(i)})
	}
	// Index on column 0.
	got := r.ProbeIDs(1<<0, []term.Value{term.Int(1)})
	if len(got) != 3 { // i = 1, 4, 7
		t.Fatalf("Probe returned %d rows, want 3", len(got))
	}
	for _, ix := range got {
		if r.At(int(ix))[0] != term.Int(1) {
			t.Error("probe returned non-matching tuple")
		}
	}
	// Index on both columns.
	got = r.ProbeIDs(3, []term.Value{term.Int(2), term.Int(5)})
	if len(got) != 1 || r.At(int(got[0]))[1] != term.Int(5) {
		t.Errorf("two-column probe = %v", got)
	}
	// Missing key.
	if got := r.ProbeIDs(3, []term.Value{term.Int(9), term.Int(9)}); len(got) != 0 {
		t.Errorf("probe of absent key returned %v", got)
	}
}

func TestIndexMaintainedAfterBuild(t *testing.T) {
	r := NewRelation(2)
	r.Insert(Tuple{term.Int(1), term.Int(10)})
	_ = r.ProbeIDs(1, []term.Value{term.Int(1)}) // build index
	r.Insert(Tuple{term.Int(1), term.Int(11)})
	got := r.ProbeIDs(1, []term.Value{term.Int(1)})
	if len(got) != 2 {
		t.Errorf("index not maintained: probe = %v", got)
	}
}

func TestProbeZeroMaskScansAll(t *testing.T) {
	r := NewRelation(1)
	r.Insert(Tuple{term.Int(1)})
	r.Insert(Tuple{term.Int(2)})
	if got := r.ProbeIDs(0, nil); len(got) != 2 {
		t.Errorf("zero-mask probe = %v", got)
	}
}

func TestProbeMatchesLinearScan(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		rel := NewRelation(3)
		for i := 0; i < 50; i++ {
			rel.Insert(Tuple{
				term.Int(int64(r.Intn(4))),
				term.Int(int64(r.Intn(4))),
				term.Int(int64(r.Intn(4))),
			})
		}
		mask := uint64(r.Intn(7) + 1)
		var probe []term.Value
		want := map[int32]bool{}
		target := []term.Value{
			term.Int(int64(r.Intn(4))),
			term.Int(int64(r.Intn(4))),
			term.Int(int64(r.Intn(4))),
		}
		for c := 0; c < 3; c++ {
			if mask&(1<<uint(c)) != 0 {
				probe = append(probe, target[c])
			}
		}
		for i, tu := range rel.Tuples() {
			match := true
			for c := 0; c < 3; c++ {
				if mask&(1<<uint(c)) != 0 && tu[c] != target[c] {
					match = false
					break
				}
			}
			if match {
				want[int32(i)] = true
			}
		}
		got := rel.ProbeIDs(mask, probe)
		if len(got) != len(want) {
			return false
		}
		for _, ix := range got {
			if !want[ix] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// TestResetKeepsIndexesConsistent: after Reset and reinsert, Probe must
// agree with a linear scan for every index mask that was built before
// the Reset — stale index entries would resurrect deleted tuples or hide
// new ones.
func TestResetKeepsIndexesConsistent(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		rel := NewRelation(3)
		randTuple := func() Tuple {
			return Tuple{
				term.Int(int64(rng.Intn(3))),
				term.Int(int64(rng.Intn(3))),
				term.Int(int64(rng.Intn(3))),
			}
		}
		for i := 0; i < 30; i++ {
			rel.Insert(randTuple())
		}
		// Build every possible index before the reset.
		masks := []uint64{1, 2, 3, 4, 5, 6, 7}
		for _, m := range masks {
			rel.ProbeIDs(m, make([]term.Value, popcount(m)))
		}
		rel.Reset()
		if rel.Len() != 0 {
			return false
		}
		for i := 0; i < 25; i++ {
			rel.Insert(randTuple())
		}
		// Every previously built index must agree with a linear scan.
		for _, mask := range masks {
			target := randTuple()
			var probe []term.Value
			for c := 0; c < 3; c++ {
				if mask&(1<<uint(c)) != 0 {
					probe = append(probe, target[c])
				}
			}
			want := map[int32]bool{}
			for i, tu := range rel.Tuples() {
				match := true
				for c := 0; c < 3; c++ {
					if mask&(1<<uint(c)) != 0 && tu[c] != target[c] {
						match = false
						break
					}
				}
				if match {
					want[int32(i)] = true
				}
			}
			got := rel.ProbeIDs(mask, probe)
			if len(got) != len(want) {
				return false
			}
			for _, ix := range got {
				if !want[ix] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

func popcount(m uint64) int {
	n := 0
	for ; m != 0; m &= m - 1 {
		n++
	}
	return n
}

func TestDatabaseEnsureArityMismatch(t *testing.T) {
	db := newDB()
	p := db.Bank().Symbols().Intern("p")
	if _, err := db.Ensure(p, 2); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Ensure(p, 3); err == nil {
		t.Error("arity mismatch not reported")
	}
}

func TestAssertStringsAndFormat(t *testing.T) {
	db := newDB()
	if err := db.AssertStrings("up", "a", "b"); err != nil {
		t.Fatal(err)
	}
	if err := db.AssertStrings("up", "b", "c"); err != nil {
		t.Fatal(err)
	}
	if err := db.AssertStrings("flat", "c", "d"); err != nil {
		t.Fatal(err)
	}
	got := db.Format()
	want := "flat(c,d).\nup(a,b).\nup(b,c).\n"
	if got != want {
		t.Errorf("Format:\n%s\nwant:\n%s", got, want)
	}
	if db.FactCount() != 3 {
		t.Errorf("FactCount = %d", db.FactCount())
	}
}

func TestLoadTextRoundTrip(t *testing.T) {
	db := newDB()
	src := "up(a,b). up(b,c). flat(c,d). n(7). pair(x,[1,2]).\n"
	if err := db.LoadText(src); err != nil {
		t.Fatal(err)
	}
	db2 := newDB()
	if err := db2.LoadText(db.Format()); err != nil {
		t.Fatal(err)
	}
	if db.Format() != db2.Format() {
		t.Errorf("round trip mismatch:\n%s\nvs\n%s", db.Format(), db2.Format())
	}
}

func TestLoadTextRejectsRulesAndQueries(t *testing.T) {
	db := newDB()
	if err := db.LoadText("p(X) :- q(X)."); err == nil || !strings.Contains(err.Error(), "ground fact") {
		t.Errorf("rule accepted: %v", err)
	}
	if err := db.LoadText("?- p(X)."); err == nil {
		t.Error("query accepted")
	}
	if err := db.LoadText("p(X)."); err == nil {
		t.Error("non-ground fact accepted")
	}
}

func TestSortedDeterministic(t *testing.T) {
	db := newDB()
	// term.Compare orders symbols by intern index, so intern in order.
	sym(db, "a")
	sym(db, "b")
	rel := NewRelation(2)
	rel.Insert(Tuple{sym(db, "b"), term.Int(2)})
	rel.Insert(Tuple{sym(db, "a"), term.Int(1)})
	rel.Insert(Tuple{term.Int(0), term.Int(0)})
	s := rel.Sorted()
	if s[0][0] != term.Int(0) {
		t.Error("ints should sort before symbols")
	}
	if s[1][0] != sym(db, "a") || s[2][0] != sym(db, "b") {
		t.Error("symbols not sorted by intern order")
	}
}
