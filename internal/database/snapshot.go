package database

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"

	"lincount/internal/symtab"
	"lincount/internal/term"
)

// Binary snapshot format for databases. The format externalizes the term
// universe (symbol strings and hash-consed compounds) so a snapshot can be
// loaded into any bank: values are remapped on load, not assumed to share
// intern ids with the writer.
//
// Layout (all integers varint-encoded):
//
//	magic "LCDB2"
//	nsyms, then nsyms length-prefixed strings   (index = writer Sym id)
//	ncomps, then per compound: functor sym index, arity, arg values
//	nrels, then per relation: name sym index, arity, ntuples, tuples
//	CRC-32 (IEEE) of everything above, 4 bytes little-endian
//
// Values are encoded as (tag, payload): tag 0 integer (payload = value),
// tag 1 symbol (payload = writer sym index), tag 2 compound (payload =
// writer compound index). Compound args always reference earlier
// compounds, because the writer emits them in bank interning order.
//
// The CRC trailer detects truncation and bit rot: a "LCDB2" snapshot
// whose checksum does not match is rejected with SnapshotCorruptError
// before any of it is merged into the database. Legacy "LCDB1"
// snapshots (the same payload without the trailer) still load.

const (
	snapshotMagicV1 = "LCDB1"
	snapshotMagicV2 = "LCDB2"
)

// SnapshotCorruptError reports a snapshot that failed its integrity
// check: a truncated stream or a CRC mismatch (bit rot, a torn write, a
// concatenation accident). The database is untouched when Load returns
// it.
type SnapshotCorruptError struct {
	// Reason describes the failed check.
	Reason string
	// Want and Got are the stored and computed CRC-32 values; both are
	// zero when the stream was too short to carry a trailer.
	Want, Got uint32
}

func (e *SnapshotCorruptError) Error() string {
	if e.Want == 0 && e.Got == 0 {
		return fmt.Sprintf("database: corrupt snapshot: %s", e.Reason)
	}
	return fmt.Sprintf("database: corrupt snapshot: %s (stored crc %08x, computed %08x)", e.Reason, e.Want, e.Got)
}

// Save writes a snapshot of db to w, in the current ("LCDB2",
// CRC-trailed) format.
func Save(w io.Writer, db *Database) error {
	crc := crc32.NewIEEE()
	bw := bufio.NewWriter(io.MultiWriter(w, crc))
	if _, err := bw.WriteString(snapshotMagicV2); err != nil {
		return err
	}

	bank := db.bank
	syms := bank.Symbols()
	nsyms := syms.Len()
	writeUvarint(bw, uint64(nsyms))
	for i := 0; i < nsyms; i++ {
		s := syms.String(symtab.Sym(i))
		writeUvarint(bw, uint64(len(s)))
		if _, err := bw.WriteString(s); err != nil {
			return err
		}
	}

	ncomps := bank.Len()
	writeUvarint(bw, uint64(ncomps))
	for i := 0; i < ncomps; i++ {
		c := bank.DerefIndex(i)
		writeUvarint(bw, uint64(c.Functor))
		writeUvarint(bw, uint64(len(c.Args)))
		for _, a := range c.Args {
			writeValue(bw, a)
		}
	}

	preds := db.Predicates()
	writeUvarint(bw, uint64(len(preds)))
	for _, p := range preds {
		rel := db.rels[p]
		writeUvarint(bw, uint64(p))
		writeUvarint(bw, uint64(rel.Arity()))
		writeUvarint(bw, uint64(rel.Len()))
		// Rows are written in insertion order (ascending RowID), which is
		// exactly the order the pre-arena writer emitted tuples in: the
		// on-disk bytes are unchanged by the columnar refactor.
		for id := RowID(0); int(id) < rel.Len(); id++ {
			for _, v := range rel.Row(id) {
				writeValue(bw, v)
			}
		}
	}
	if err := bw.Flush(); err != nil {
		return err
	}
	// The trailer covers magic + payload and is written to w alone (it
	// must not feed back into the hash).
	var trailer [4]byte
	binary.LittleEndian.PutUint32(trailer[:], crc.Sum32())
	_, err := w.Write(trailer[:])
	return err
}

func writeUvarint(bw *bufio.Writer, v uint64) {
	var buf [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(buf[:], v)
	bw.Write(buf[:n])
}

func writeValue(bw *bufio.Writer, v term.Value) {
	switch {
	case v.IsInt():
		bw.WriteByte(0)
		var buf [binary.MaxVarintLen64]byte
		n := binary.PutVarint(buf[:], v.AsInt())
		bw.Write(buf[:n])
	case v.IsSymbol():
		bw.WriteByte(1)
		writeUvarint(bw, uint64(v.AsSymbol()))
	default:
		bw.WriteByte(2)
		writeUvarint(bw, uint64(v.CompIndex()))
	}
}

// Load reads a snapshot from r into db (which may already hold facts; the
// snapshot's tuples are merged). Symbols and compounds are re-interned
// into db's bank, so the snapshot may come from a different universe.
//
// Current ("LCDB2") snapshots carry a CRC-32 trailer, verified before
// anything is merged: a truncated or bit-flipped snapshot is rejected
// with *SnapshotCorruptError and db is left exactly as it was. Legacy
// "LCDB1" snapshots load without the integrity check.
func Load(r io.Reader, db *Database) error {
	br := bufio.NewReader(r)
	head := make([]byte, len(snapshotMagicV2))
	if _, err := io.ReadFull(br, head); err != nil {
		return fmt.Errorf("database: reading snapshot header: %w", err)
	}
	switch string(head) {
	case snapshotMagicV1:
		return loadPayload(br, db)
	case snapshotMagicV2:
	default:
		return fmt.Errorf("database: not a snapshot file (bad magic %q)", head)
	}
	rest, err := io.ReadAll(br)
	if err != nil {
		return fmt.Errorf("database: reading snapshot: %w", err)
	}
	if len(rest) < 4 {
		return &SnapshotCorruptError{Reason: "truncated (no room for the CRC trailer)"}
	}
	payload, trailer := rest[:len(rest)-4], rest[len(rest)-4:]
	crc := crc32.NewIEEE()
	crc.Write(head)
	crc.Write(payload)
	want := binary.LittleEndian.Uint32(trailer)
	if got := crc.Sum32(); got != want {
		return &SnapshotCorruptError{Reason: "checksum mismatch", Want: want, Got: got}
	}
	// Parse into a staging database over the same bank, then merge: if
	// anything in the (checksummed, but possibly adversarial) payload
	// still fails validation, db keeps its exact prior contents.
	staging := New(db.bank)
	if err := loadPayload(bufio.NewReader(bytes.NewReader(payload)), staging); err != nil {
		return err
	}
	return mergeSnapshot(db, staging)
}

// mergeSnapshot copies every staged relation into db, validating arity
// agreement for all of them before inserting any tuple.
func mergeSnapshot(db, staging *Database) error {
	preds := staging.Predicates()
	for _, p := range preds {
		if existing, ok := db.rels[p]; ok && existing.Arity() != staging.rels[p].Arity() {
			return fmt.Errorf("database: snapshot relation %s has arity %d, database has %d",
				db.bank.Symbols().String(p), staging.rels[p].Arity(), existing.Arity())
		}
	}
	for _, p := range preds {
		src := staging.rels[p]
		dst, err := db.Ensure(p, src.Arity())
		if err != nil {
			return err
		}
		for id := RowID(0); int(id) < src.Len(); id++ {
			// Insert copies the row view into dst's arena.
			dst.Insert(Tuple(src.Row(id)))
		}
	}
	return nil
}

// loadPayload parses the snapshot body (everything after the magic) and
// merges it into db.
func loadPayload(br *bufio.Reader, db *Database) error {
	bank := db.bank
	syms := bank.Symbols()

	nsyms, err := binary.ReadUvarint(br)
	if err != nil {
		return err
	}
	symMap := make([]symtab.Sym, nsyms)
	for i := range symMap {
		n, err := binary.ReadUvarint(br)
		if err != nil {
			return err
		}
		buf := make([]byte, n)
		if _, err := io.ReadFull(br, buf); err != nil {
			return err
		}
		symMap[i] = syms.Intern(string(buf))
	}

	ncomps, err := binary.ReadUvarint(br)
	if err != nil {
		return err
	}
	compMap := make([]term.Value, ncomps)
	readValue := func() (term.Value, error) {
		tag, err := br.ReadByte()
		if err != nil {
			return 0, err
		}
		switch tag {
		case 0:
			n, err := binary.ReadVarint(br)
			if err != nil {
				return 0, err
			}
			return term.Int(n), nil
		case 1:
			s, err := binary.ReadUvarint(br)
			if err != nil {
				return 0, err
			}
			if s >= nsyms {
				return 0, fmt.Errorf("database: snapshot symbol index %d out of range", s)
			}
			return term.Symbol(symMap[s]), nil
		case 2:
			c, err := binary.ReadUvarint(br)
			if err != nil {
				return 0, err
			}
			// compMap entries are filled in writer order, so a valid
			// snapshot never references a compound before defining it.
			if c >= ncomps {
				return 0, fmt.Errorf("database: snapshot compound index %d out of range", c)
			}
			return compMap[c], nil
		default:
			return 0, fmt.Errorf("database: bad value tag %d", tag)
		}
	}
	// Caps guard against corrupt headers demanding absurd allocations;
	// genuine data stays far below them (relation arity is limited to 63
	// by the index masks anyway).
	const maxCompoundArity = 1 << 16
	for i := range compMap {
		f, err := binary.ReadUvarint(br)
		if err != nil {
			return err
		}
		if f >= nsyms {
			return fmt.Errorf("database: snapshot functor index %d out of range", f)
		}
		arity, err := binary.ReadUvarint(br)
		if err != nil {
			return err
		}
		if arity > maxCompoundArity {
			return fmt.Errorf("database: snapshot compound arity %d out of range", arity)
		}
		args := make([]term.Value, arity)
		for j := range args {
			v, err := readValue()
			if err != nil {
				return err
			}
			args[j] = v
		}
		compMap[i] = bank.Compound(symMap[f], args...)
	}

	nrels, err := binary.ReadUvarint(br)
	if err != nil {
		return err
	}
	for i := uint64(0); i < nrels; i++ {
		p, err := binary.ReadUvarint(br)
		if err != nil {
			return err
		}
		if p >= nsyms {
			return fmt.Errorf("database: snapshot predicate index %d out of range", p)
		}
		arity, err := binary.ReadUvarint(br)
		if err != nil {
			return err
		}
		if arity > 63 {
			return fmt.Errorf("database: snapshot relation arity %d out of range", arity)
		}
		ntuples, err := binary.ReadUvarint(br)
		if err != nil {
			return err
		}
		rel, err := db.Ensure(symMap[p], int(arity))
		if err != nil {
			return err
		}
		for t := uint64(0); t < ntuples; t++ {
			tuple := make(Tuple, arity)
			for j := range tuple {
				v, err := readValue()
				if err != nil {
					return err
				}
				tuple[j] = v
			}
			rel.Insert(tuple)
		}
	}
	return nil
}
