package database

import (
	"fmt"
	"testing"

	"lincount/internal/symtab"
	"lincount/internal/term"
)

func TestInsertRowIDs(t *testing.T) {
	r := NewRelation(2)
	for i := 0; i < 100; i++ {
		id, added := r.InsertRow(Tuple{term.Int(int64(i)), term.Int(int64(i + 1))})
		if !added || id != RowID(i) {
			t.Fatalf("InsertRow(%d) = (%d, %v), want (%d, true)", i, id, added, i)
		}
	}
	// Re-inserting returns the existing id.
	id, added := r.InsertRow(Tuple{term.Int(42), term.Int(43)})
	if added || id != 42 {
		t.Fatalf("duplicate InsertRow = (%d, %v), want (42, false)", id, added)
	}
}

func TestFind(t *testing.T) {
	r := NewRelation(2)
	for i := 0; i < 50; i++ {
		r.Insert(Tuple{term.Int(int64(i)), term.Int(int64(i * 2))})
	}
	id, ok := r.Find(Tuple{term.Int(7), term.Int(14)})
	if !ok || id != 7 {
		t.Fatalf("Find = (%d, %v), want (7, true)", id, ok)
	}
	if _, ok := r.Find(Tuple{term.Int(7), term.Int(15)}); ok {
		t.Fatal("Find reported an absent tuple present")
	}
	if _, ok := NewRelation(2).Find(Tuple{term.Int(1), term.Int(2)}); ok {
		t.Fatal("Find on empty relation reported present")
	}
}

func TestRebuildWithoutPreservesOrderAndDedup(t *testing.T) {
	r := NewRelation(2)
	for i := 0; i < 200; i++ {
		r.Insert(Tuple{term.Int(int64(i)), term.Int(int64(i % 7))})
	}
	n := r.RebuildWithout(func(id RowID) bool { return id%3 == 0 })
	want := 0
	for i := 0; i < 200; i++ {
		if i%3 == 0 {
			continue
		}
		row := n.At(want)
		if row[0] != term.Int(int64(i)) {
			t.Fatalf("row %d = %v, want first column %d", want, row, i)
		}
		want++
	}
	if n.Len() != want {
		t.Fatalf("Len = %d, want %d", n.Len(), want)
	}
	// Dedup survives the rebuild: membership and further inserts behave.
	if n.Contains(Tuple{term.Int(0), term.Int(0)}) {
		t.Fatal("dropped row still reported present")
	}
	if !n.Contains(Tuple{term.Int(1), term.Int(1)}) {
		t.Fatal("surviving row reported absent")
	}
	if n.Insert(Tuple{term.Int(1), term.Int(1)}) {
		t.Fatal("re-inserting a surviving row was not deduplicated")
	}
	if !n.Insert(Tuple{term.Int(0), term.Int(0)}) {
		t.Fatal("re-inserting a dropped row was deduplicated")
	}
}

// TestRetractBatchSingleRebuild asserts the batched retraction path
// agrees with sequential single retracts, including the present count.
func TestRetractBatchSingleRebuild(t *testing.T) {
	bank := term.NewBank(symtab.New())
	seq := New(bank)
	bat := New(bank)
	p := bank.Symbols().Intern("e")
	var facts string
	for i := 0; i < 100; i++ {
		facts += fmt.Sprintf("e(n%d,n%d). ", i, i+1)
	}
	if err := seq.LoadText(facts); err != nil {
		t.Fatal(err)
	}
	if err := bat.LoadText(facts); err != nil {
		t.Fatal(err)
	}
	var drop []Tuple
	for i := 0; i < 100; i += 4 {
		drop = append(drop, Tuple{sym(seq, fmt.Sprintf("n%d", i)), sym(seq, fmt.Sprintf("n%d", i+1))})
	}
	// One absent tuple and one duplicate: both must not inflate the count.
	drop = append(drop, Tuple{sym(seq, "zzz"), sym(seq, "zzz")}, drop[0])

	wantN := 0
	for _, d := range drop {
		ok, err := seq.Retract(p, d)
		if err != nil {
			t.Fatal(err)
		}
		if ok {
			wantN++
		}
	}
	gotN, err := bat.RetractBatch(p, drop)
	if err != nil {
		t.Fatal(err)
	}
	if gotN != wantN {
		t.Fatalf("RetractBatch removed %d, sequential removed %d", gotN, wantN)
	}
	if seq.Format() != bat.Format() {
		t.Fatalf("batched and sequential retraction diverged:\n%s\nvs\n%s", bat.Format(), seq.Format())
	}
}

// BenchmarkRetractRebuild pins the capacity-reuse win: retracting one
// fact from a large relation must not regrow arena and dedup from zero.
func BenchmarkRetractRebuild(b *testing.B) {
	bank := term.NewBank(symtab.New())
	db := New(bank)
	p := bank.Symbols().Intern("e")
	for i := 0; i < 10000; i++ {
		if err := db.LoadText(fmt.Sprintf("e(n%d,n%d).", i, i+1)); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tup := Tuple{sym(db, fmt.Sprintf("n%d", i%10000)), sym(db, fmt.Sprintf("n%d", i%10000+1))}
		if _, err := db.Retract(p, tup); err != nil {
			b.Fatal(err)
		}
		// Put it back so every iteration retracts a present fact.
		if _, err := db.Assert(p, tup); err != nil {
			b.Fatal(err)
		}
	}
}
