package database

import (
	"bytes"
	"errors"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"lincount/internal/symtab"
	"lincount/internal/term"
)

func TestSnapshotRoundTrip(t *testing.T) {
	src := newDB()
	if err := src.LoadText(`
up(a,b). up(b,c). flat(c,d).
n(7). n(-3).
pair(x,[1,2,[nested]]).
deep(f(g(h(1)),x)).
zero.
`); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Save(&buf, src); err != nil {
		t.Fatal(err)
	}
	dst := newDB()
	if err := Load(&buf, dst); err != nil {
		t.Fatal(err)
	}
	if src.Format() != dst.Format() {
		t.Errorf("round trip mismatch:\n%s\nvs\n%s", src.Format(), dst.Format())
	}
}

func TestSnapshotLoadIntoDifferentUniverse(t *testing.T) {
	// The destination bank has different intern ids for everything.
	src := newDB()
	if err := src.LoadText("up(a,b). pt(p(1,2))."); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Save(&buf, src); err != nil {
		t.Fatal(err)
	}
	dst := newDB()
	// Pollute the destination universe first.
	if err := dst.LoadText("unrelated(z,q,w). other(k(9))."); err != nil {
		t.Fatal(err)
	}
	if err := Load(&buf, dst); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(dst.Format(), "up(a,b).") ||
		!strings.Contains(dst.Format(), "pt(p(1,2)).") ||
		!strings.Contains(dst.Format(), "unrelated(z,q,w).") {
		t.Errorf("merged database:\n%s", dst.Format())
	}
}

func TestSnapshotMergeDedups(t *testing.T) {
	src := newDB()
	if err := src.LoadText("up(a,b)."); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Save(&buf, src); err != nil {
		t.Fatal(err)
	}
	dst := newDB()
	if err := dst.LoadText("up(a,b). up(b,c)."); err != nil {
		t.Fatal(err)
	}
	if err := Load(bytes.NewReader(buf.Bytes()), dst); err != nil {
		t.Fatal(err)
	}
	up, _ := dst.Bank().Symbols().Lookup("up")
	if dst.Relation(up).Len() != 2 {
		t.Errorf("up has %d tuples after merge, want 2", dst.Relation(up).Len())
	}
}

func TestSnapshotRejectsGarbage(t *testing.T) {
	dst := newDB()
	if err := Load(strings.NewReader("not a snapshot"), dst); err == nil {
		t.Error("garbage accepted")
	}
	if err := Load(strings.NewReader("LCDB1\xff\xff\xff"), dst); err == nil {
		t.Error("truncated snapshot accepted")
	}
	if err := Load(strings.NewReader(""), dst); err == nil {
		t.Error("empty input accepted")
	}
}

func TestSnapshotArityConflict(t *testing.T) {
	src := newDB()
	if err := src.LoadText("p(a,b)."); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Save(&buf, src); err != nil {
		t.Fatal(err)
	}
	dst := newDB()
	if err := dst.LoadText("p(a)."); err != nil {
		t.Fatal(err)
	}
	if err := Load(&buf, dst); err == nil {
		t.Error("arity conflict not reported")
	}
}

func TestSnapshotCorruptionDetected(t *testing.T) {
	src := newDB()
	if err := src.LoadText("up(a,b). up(b,c). n(41)."); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Save(&buf, src); err != nil {
		t.Fatal(err)
	}
	valid := buf.Bytes()
	// Flip every byte position in turn: each corruption must be caught
	// by the CRC (payload and trailer alike), and none may merge
	// anything into the destination.
	for i := len(snapshotMagicV2); i < len(valid); i++ {
		c := append([]byte(nil), valid...)
		c[i] ^= 0x01
		dst := newDB()
		err := Load(bytes.NewReader(c), dst)
		if err == nil {
			t.Fatalf("flip at byte %d accepted", i)
		}
		var ce *SnapshotCorruptError
		if !errors.As(err, &ce) {
			t.Fatalf("flip at byte %d: error %v, want SnapshotCorruptError", i, err)
		}
		if dst.FactCount() != 0 {
			t.Fatalf("flip at byte %d: %d facts merged from a corrupt snapshot", i, dst.FactCount())
		}
	}
}

func TestSnapshotTruncationDetected(t *testing.T) {
	src := newDB()
	if err := src.LoadText("up(a,b). flat(c,d)."); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Save(&buf, src); err != nil {
		t.Fatal(err)
	}
	valid := buf.Bytes()
	for _, n := range []int{len(valid) - 1, len(valid) - 4, len(valid) / 2, len(snapshotMagicV2) + 2, len(snapshotMagicV2)} {
		dst := newDB()
		err := Load(bytes.NewReader(valid[:n]), dst)
		if err == nil {
			t.Fatalf("truncation to %d bytes accepted", n)
		}
		var ce *SnapshotCorruptError
		if !errors.As(err, &ce) {
			t.Fatalf("truncation to %d bytes: error %v, want SnapshotCorruptError", n, err)
		}
		if dst.FactCount() != 0 {
			t.Fatalf("truncation to %d bytes merged %d facts", n, dst.FactCount())
		}
	}
}

func TestSnapshotCorruptLeavesDatabaseUntouched(t *testing.T) {
	src := newDB()
	if err := src.LoadText("up(a,b)."); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Save(&buf, src); err != nil {
		t.Fatal(err)
	}
	corrupt := buf.Bytes()
	corrupt[len(corrupt)-1] ^= 0xff

	dst := newDB()
	if err := dst.LoadText("keep(x,y). keep(y,z)."); err != nil {
		t.Fatal(err)
	}
	before := dst.Format()
	if err := Load(bytes.NewReader(corrupt), dst); err == nil {
		t.Fatal("corrupt snapshot accepted")
	}
	if dst.Format() != before {
		t.Errorf("database changed by a rejected snapshot:\n%s\nvs\n%s", before, dst.Format())
	}
}

// TestSnapshotLegacyV1Loads: pre-CRC snapshots (magic "LCDB1", same
// payload, no trailer) must keep loading.
func TestSnapshotLegacyV1Loads(t *testing.T) {
	src := newDB()
	if err := src.LoadText("up(a,b). pt(p(1,2)). n(-9)."); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Save(&buf, src); err != nil {
		t.Fatal(err)
	}
	v2 := buf.Bytes()
	// A V1 snapshot is the V2 payload under the old magic, without the
	// trailer — the byte layout between magic and trailer is identical.
	v1 := append([]byte(snapshotMagicV1), v2[len(snapshotMagicV2):len(v2)-4]...)
	dst := newDB()
	if err := Load(bytes.NewReader(v1), dst); err != nil {
		t.Fatal(err)
	}
	if src.Format() != dst.Format() {
		t.Errorf("legacy round trip mismatch:\n%s\nvs\n%s", src.Format(), dst.Format())
	}
}

// Property: random databases survive the round trip bit-exactly (by text).
func TestSnapshotRoundTripRandom(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		src := newDB()
		bank := src.Bank()
		preds := []string{"p", "q", "r"}
		for i := 0; i < 40; i++ {
			pred := preds[r.Intn(len(preds))]
			arity := 1 + r.Intn(3)
			tpl := make(Tuple, arity)
			for j := range tpl {
				switch r.Intn(3) {
				case 0:
					tpl[j] = term.Int(int64(r.Intn(100) - 50))
				case 1:
					tpl[j] = term.Symbol(bank.Symbols().Intern(string(rune('a' + r.Intn(6)))))
				default:
					tpl[j] = bank.List(term.Int(int64(r.Intn(5))),
						term.Symbol(bank.Symbols().Intern("x")))
				}
			}
			// Keep arities consistent per predicate: suffix name.
			name := pred + string(rune('0'+arity))
			if _, err := src.Assert(bank.Symbols().Intern(name), tpl); err != nil {
				return false
			}
		}
		var buf bytes.Buffer
		if err := Save(&buf, src); err != nil {
			return false
		}
		dst := New(term.NewBank(symtab.New()))
		if err := Load(&buf, dst); err != nil {
			return false
		}
		return src.Format() == dst.Format()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
