package database

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"lincount/internal/symtab"
	"lincount/internal/term"
)

func TestSnapshotRoundTrip(t *testing.T) {
	src := newDB()
	if err := src.LoadText(`
up(a,b). up(b,c). flat(c,d).
n(7). n(-3).
pair(x,[1,2,[nested]]).
deep(f(g(h(1)),x)).
zero.
`); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Save(&buf, src); err != nil {
		t.Fatal(err)
	}
	dst := newDB()
	if err := Load(&buf, dst); err != nil {
		t.Fatal(err)
	}
	if src.Format() != dst.Format() {
		t.Errorf("round trip mismatch:\n%s\nvs\n%s", src.Format(), dst.Format())
	}
}

func TestSnapshotLoadIntoDifferentUniverse(t *testing.T) {
	// The destination bank has different intern ids for everything.
	src := newDB()
	if err := src.LoadText("up(a,b). pt(p(1,2))."); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Save(&buf, src); err != nil {
		t.Fatal(err)
	}
	dst := newDB()
	// Pollute the destination universe first.
	if err := dst.LoadText("unrelated(z,q,w). other(k(9))."); err != nil {
		t.Fatal(err)
	}
	if err := Load(&buf, dst); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(dst.Format(), "up(a,b).") ||
		!strings.Contains(dst.Format(), "pt(p(1,2)).") ||
		!strings.Contains(dst.Format(), "unrelated(z,q,w).") {
		t.Errorf("merged database:\n%s", dst.Format())
	}
}

func TestSnapshotMergeDedups(t *testing.T) {
	src := newDB()
	if err := src.LoadText("up(a,b)."); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Save(&buf, src); err != nil {
		t.Fatal(err)
	}
	dst := newDB()
	if err := dst.LoadText("up(a,b). up(b,c)."); err != nil {
		t.Fatal(err)
	}
	if err := Load(bytes.NewReader(buf.Bytes()), dst); err != nil {
		t.Fatal(err)
	}
	up, _ := dst.Bank().Symbols().Lookup("up")
	if dst.Relation(up).Len() != 2 {
		t.Errorf("up has %d tuples after merge, want 2", dst.Relation(up).Len())
	}
}

func TestSnapshotRejectsGarbage(t *testing.T) {
	dst := newDB()
	if err := Load(strings.NewReader("not a snapshot"), dst); err == nil {
		t.Error("garbage accepted")
	}
	if err := Load(strings.NewReader("LCDB1\xff\xff\xff"), dst); err == nil {
		t.Error("truncated snapshot accepted")
	}
	if err := Load(strings.NewReader(""), dst); err == nil {
		t.Error("empty input accepted")
	}
}

func TestSnapshotArityConflict(t *testing.T) {
	src := newDB()
	if err := src.LoadText("p(a,b)."); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Save(&buf, src); err != nil {
		t.Fatal(err)
	}
	dst := newDB()
	if err := dst.LoadText("p(a)."); err != nil {
		t.Fatal(err)
	}
	if err := Load(&buf, dst); err == nil {
		t.Error("arity conflict not reported")
	}
}

// Property: random databases survive the round trip bit-exactly (by text).
func TestSnapshotRoundTripRandom(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		src := newDB()
		bank := src.Bank()
		preds := []string{"p", "q", "r"}
		for i := 0; i < 40; i++ {
			pred := preds[r.Intn(len(preds))]
			arity := 1 + r.Intn(3)
			tpl := make(Tuple, arity)
			for j := range tpl {
				switch r.Intn(3) {
				case 0:
					tpl[j] = term.Int(int64(r.Intn(100) - 50))
				case 1:
					tpl[j] = term.Symbol(bank.Symbols().Intern(string(rune('a' + r.Intn(6)))))
				default:
					tpl[j] = bank.List(term.Int(int64(r.Intn(5))),
						term.Symbol(bank.Symbols().Intern("x")))
				}
			}
			// Keep arities consistent per predicate: suffix name.
			name := pred + string(rune('0'+arity))
			if _, err := src.Assert(bank.Symbols().Intern(name), tpl); err != nil {
				return false
			}
		}
		var buf bytes.Buffer
		if err := Save(&buf, src); err != nil {
			return false
		}
		dst := New(term.NewBank(symtab.New()))
		if err := Load(&buf, dst); err != nil {
			return false
		}
		return src.Format() == dst.Format()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
