package database

// Arena-backed row storage. A Relation keeps every tuple in one flat
// []term.Value arena; row r of an arity-k relation occupies
// arena[r*k : (r+1)*k]. Rows are addressed by dense RowID in insertion
// order, which is the "address" representation of §3.4 of the paper: a
// derived structure can point at a row with one int32 instead of copying
// the tuple.
//
// Dedup and column indexes are open-addressing hash tables that hash the
// masked columns straight out of the arena: no key bytes are ever
// materialized, and a probe allocates nothing.

import "lincount/internal/term"

// RowID identifies a row of one Relation: row ids are dense, assigned in
// insertion order, and stable until the next Reset. They are only
// meaningful relative to the Relation that issued them.
type RowID = int32

// noRow is the empty-slot / end-of-chain sentinel (valid row ids are >= 0).
const noRow RowID = -1

// tombRow marks a dedup slot whose row was dropped by RebuildWithout:
// the slot stays occupied so colliding keys' probe chains remain intact,
// lookups skip it, and InsertRow may reuse it. dedupGrow rehashes live
// rows only, so tombstones are collected on the next growth.
const tombRow RowID = -2

// FNV-1a over the 64-bit term.Value handles. Values are hash-consed (term
// equality is handle equality), so hashing the handles is exact.
const (
	hashSeed  uint64 = 0xcbf29ce484222325
	hashPrime uint64 = 0x00000100000001b3
)

// HashValue folds one value into an FNV-1a style running hash. Exported so
// other layers (the counting runtime's interning tables) hash term values
// the same way the storage layer does.
func HashValue(h uint64, v term.Value) uint64 {
	h ^= uint64(v)
	h *= hashPrime
	return h
}

// HashValues hashes a value slice, starting from HashSeed.
func HashValues(vals []term.Value) uint64 {
	h := hashSeed
	for _, v := range vals {
		h = HashValue(h, v)
	}
	return h
}

// dedupTable is the open-addressing set of all rows, keyed by the full
// column tuple (hash and equality read the arena directly). slots holds
// RowIDs; noRow marks an empty slot. Load factor is kept under 3/4.
type dedupTable struct {
	slots []RowID
	used  int
}

// chainKey is one distinct key of a rowIndex: the head and tail of the
// insertion-ordered chain of rows sharing that key's masked columns.
type chainKey struct {
	head, tail RowID
}

// rowIndex is a multi-map from masked columns to the rows carrying them.
// slots is an open-addressing table of indexes into keys (-1 empty); each
// key's rows form a linked chain threaded through next (next[row] is the
// next row with the same key, noRow at the tail). Chains are in insertion
// order, so row ids along a chain are strictly ascending — which is what
// lets an iterator stop at a snapshot bound.
type rowIndex struct {
	mask  uint64
	slots []int32
	keys  []chainKey
	next  []RowID
}

// rowSlice returns the arena slice for one row (full capacity clamp so a
// caller cannot append into a neighbouring row).
func (r *Relation) rowSlice(id RowID) []term.Value {
	off := int(id) * r.arity
	return r.arena[off : off+r.arity : off+r.arity]
}

// hashRow hashes row id's masked columns out of the arena. With the full
// mask it degenerates to HashValues over the whole row.
func (r *Relation) hashRow(id RowID, mask uint64) uint64 {
	h := hashSeed
	for j, v := range r.rowSlice(id) {
		if mask&(1<<uint(j)) != 0 {
			h = HashValue(h, v)
		}
	}
	return h
}

// rowEqualFull reports whether row id equals vals on every column.
func (r *Relation) rowEqualFull(id RowID, vals []term.Value) bool {
	row := r.rowSlice(id)
	for j := range row {
		if row[j] != vals[j] {
			return false
		}
	}
	return true
}

// rowEqualMasked reports whether row id's masked columns equal vals, which
// lists exactly the masked columns in column order.
func (r *Relation) rowEqualMasked(id RowID, mask uint64, vals []term.Value) bool {
	row := r.rowSlice(id)
	k := 0
	for j := range row {
		if mask&(1<<uint(j)) != 0 {
			if row[j] != vals[k] {
				return false
			}
			k++
		}
	}
	return true
}

// rowsEqualMasked reports whether rows a and b agree on the masked columns.
func (r *Relation) rowsEqualMasked(a, b RowID, mask uint64) bool {
	ra, rb := r.rowSlice(a), r.rowSlice(b)
	for j := range ra {
		if mask&(1<<uint(j)) != 0 && ra[j] != rb[j] {
			return false
		}
	}
	return true
}

// dedupGrow (re)allocates the dedup table at double capacity and rehashes
// every stored row from the arena.
func (r *Relation) dedupGrow() {
	n := len(r.dedup.slots) * 2
	if n < 16 {
		n = 16
	}
	slots := make([]RowID, n)
	for i := range slots {
		slots[i] = noRow
	}
	m := uint64(n - 1)
	for id := RowID(0); int(id) < r.rows; id++ {
		i := r.hashRow(id, r.fullMask()) & m
		for slots[i] != noRow {
			i = (i + 1) & m
		}
		slots[i] = id
	}
	r.dedup.slots = slots
	r.dedup.used = r.rows
}

// indexGrow (re)allocates ix's slot table at double capacity and rehashes
// every key from its chain head's arena row.
func (r *Relation) indexGrow(ix *rowIndex) {
	n := len(ix.slots) * 2
	if n < 16 {
		n = 16
	}
	slots := make([]int32, n)
	for i := range slots {
		slots[i] = -1
	}
	m := uint64(n - 1)
	for k := range ix.keys {
		if ix.keys[k].head == noRow {
			continue // dead key (see RebuildWithout); drop its slot
		}
		i := r.hashRow(ix.keys[k].head, ix.mask) & m
		for slots[i] >= 0 {
			i = (i + 1) & m
		}
		slots[i] = int32(k)
	}
	ix.slots = slots
}

// indexAdd threads row id into ix, extending an existing key's chain or
// opening a new one. Called only by the single writer.
func (r *Relation) indexAdd(ix *rowIndex, id RowID) {
	// next is indexed by RowID, so it grows with the relation regardless
	// of how many distinct keys the index has.
	ix.next = append(ix.next, noRow)
	if (len(ix.keys)+1)*4 > len(ix.slots)*3 {
		r.indexGrow(ix)
	}
	m := uint64(len(ix.slots) - 1)
	i := r.hashRow(id, ix.mask) & m
	for {
		k := ix.slots[i]
		if k < 0 {
			ix.slots[i] = int32(len(ix.keys))
			ix.keys = append(ix.keys, chainKey{head: id, tail: id})
			return
		}
		if ix.keys[k].head != noRow && r.rowsEqualMasked(ix.keys[k].head, id, ix.mask) {
			ix.next[ix.keys[k].tail] = id
			ix.keys[k].tail = id
			return
		}
		i = (i + 1) & m
	}
}

// findKey locates the chain for (mask, vals) in ix, returning its key index
// or -1. Allocation-free.
func (r *Relation) findKey(ix *rowIndex, vals []term.Value) int32 {
	if len(ix.keys) == 0 {
		return -1
	}
	m := uint64(len(ix.slots) - 1)
	i := HashValues(vals) & m
	for {
		k := ix.slots[i]
		if k < 0 {
			return -1
		}
		if ix.keys[k].head != noRow && r.rowEqualMasked(ix.keys[k].head, ix.mask, vals) {
			return k
		}
		i = (i + 1) & m
	}
}

// CloneForAppend returns a writable clone of r holding the same rows.
// The clone shares r's arena backing array with its capacity clamped, so
// the clone's first insert reallocates and copies — copy-on-write at
// relation granularity. The dedup table and the column indexes are
// copied (memcpys of row ids — row ids are identical in the clone, so
// the chains stay valid, and appends only extend them); copying beats
// the lazy per-row rehash a dropped index would pay on the clone's
// first probe, which matters to maintenance workloads that clone a
// large relation per epoch to apply a small delta. r itself is never
// read again through the clone after this returns and is never mutated
// by it, so a published relation keeps serving concurrent readers while
// its clone takes writes.
func (r *Relation) CloneForAppend() *Relation {
	c := &Relation{
		arity:   r.arity,
		rows:    r.rows,
		arena:   r.arena[:len(r.arena):len(r.arena)],
		indexes: make(map[uint64]*rowIndex, len(r.indexes)),
	}
	c.dedup.slots = append([]RowID(nil), r.dedup.slots...)
	c.dedup.used = r.dedup.used
	r.indexMu.Lock()
	for mask, ix := range r.indexes {
		c.indexes[mask] = &rowIndex{
			mask:  ix.mask,
			slots: append([]int32(nil), ix.slots...),
			keys:  append([]chainKey(nil), ix.keys...),
			next:  append([]RowID(nil), ix.next...),
		}
	}
	r.indexMu.Unlock()
	return c
}

// RowIter iterates the rows produced by a Probe or Scan. Iteration order is
// insertion order. The iterator snapshots the relation's length at creation
// (hi): rows inserted after the iterator is created are not yielded, so the
// single writer may keep inserting while it drains an iterator it created —
// the semantics a naive fixpoint needs when a rule reads the relation it
// extends.
type RowIter struct {
	// next is the index chain to follow; nil means a sequential scan.
	next []RowID
	cur  RowID
	hi   RowID
}

// Next returns the next row id, or ok=false when the iteration is done.
func (it *RowIter) Next() (RowID, bool) {
	cur := it.cur
	if cur == noRow || cur >= it.hi {
		return 0, false
	}
	if it.next == nil {
		it.cur = cur + 1
	} else {
		it.cur = it.next[cur]
	}
	return cur, true
}

// emptyIter is the canonical exhausted iterator.
func emptyIter() RowIter { return RowIter{cur: noRow} }
