package database

// Copy-on-write fork semantics: a fork shares relations with its parent
// until first write, the parent is never mutated through the fork, and a
// published (parent) relation keeps serving concurrent readers while its
// fork takes writes — the MVCC invariants the query server's epoch
// snapshots rely on.

import (
	"sync"
	"testing"

	"lincount/internal/symtab"
	"lincount/internal/term"
)

func forkFixture(t *testing.T) (*Database, symtab.Sym) {
	t.Helper()
	db := New(term.NewBank(symtab.New()))
	if err := db.LoadText("e(a,b). e(b,c). e(c,d)."); err != nil {
		t.Fatal(err)
	}
	return db, db.bank.Symbols().Intern("e")
}

func TestForkSharesUntilWrite(t *testing.T) {
	db, e := forkFixture(t)
	f := db.Fork()
	if db.Relation(e) != f.Relation(e) {
		t.Fatal("fork should share untouched relations with its parent")
	}
	if err := f.LoadText("e(d,e)."); err != nil {
		t.Fatal(err)
	}
	if db.Relation(e) == f.Relation(e) {
		t.Fatal("first write should have cloned the relation")
	}
	if got, want := db.Relation(e).Len(), 3; got != want {
		t.Fatalf("parent mutated through fork: len = %d, want %d", got, want)
	}
	if got, want := f.Relation(e).Len(), 4; got != want {
		t.Fatalf("fork len = %d, want %d", got, want)
	}
}

func TestForkRetract(t *testing.T) {
	db, e := forkFixture(t)
	f := db.Fork()
	tup := Tuple{term.Symbol(db.bank.Symbols().Intern("b")), term.Symbol(db.bank.Symbols().Intern("c"))}
	ok, err := f.Retract(e, tup)
	if err != nil || !ok {
		t.Fatalf("Retract = %v, %v; want true, nil", ok, err)
	}
	// Retracting again is a no-op, not an error.
	ok, err = f.Retract(e, tup)
	if err != nil || ok {
		t.Fatalf("second Retract = %v, %v; want false, nil", ok, err)
	}
	if got, want := db.Relation(e).Len(), 3; got != want {
		t.Fatalf("parent mutated by fork retract: len = %d, want %d", got, want)
	}
	if got, want := f.Relation(e).Len(), 2; got != want {
		t.Fatalf("fork len after retract = %d, want %d", got, want)
	}
	if f.Relation(e).Contains(tup) {
		t.Fatal("fork still contains retracted tuple")
	}
	// The fork stays fully usable after the rebuild: dedup and probes work.
	if err := f.LoadText("e(b,c)."); err != nil {
		t.Fatal(err)
	}
	if got, want := f.Relation(e).Len(), 3; got != want {
		t.Fatalf("re-assert after retract: len = %d, want %d", got, want)
	}
}

func TestRetractText(t *testing.T) {
	db, e := forkFixture(t)
	n, err := db.RetractText("e(a,b). e(x,y).")
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("removed = %d, want 1 (e(x,y) was never present)", n)
	}
	if got, want := db.Relation(e).Len(), 2; got != want {
		t.Fatalf("len = %d, want %d", got, want)
	}
}

func TestForkChainIsolation(t *testing.T) {
	// A linear chain of forks: each epoch sees exactly its own prefix of
	// writes, no matter how many later epochs were published.
	db := New(term.NewBank(symtab.New()))
	if err := db.LoadText("n(0)."); err != nil {
		t.Fatal(err)
	}
	nsym := db.bank.Symbols().Intern("n")
	epochs := []*Database{db}
	tip := db
	for i := 1; i <= 20; i++ {
		f := tip.Fork()
		if _, err := f.Assert(nsym, Tuple{term.Int(int64(i))}); err != nil {
			t.Fatal(err)
		}
		epochs = append(epochs, f)
		tip = f
	}
	for i, e := range epochs {
		if got, want := e.Relation(nsym).Len(), i+1; got != want {
			t.Fatalf("epoch %d: len = %d, want %d", i, got, want)
		}
	}
}

// TestForkConcurrentReaders is the race-detector check for the MVCC
// seam: many readers probe and scan a published database while a single
// writer advances a fork chain off it. Run under -race (make check).
func TestForkConcurrentReaders(t *testing.T) {
	db := New(term.NewBank(symtab.New()))
	for i := 0; i < 64; i++ {
		if _, err := db.Assert(db.bank.Symbols().Intern("e"),
			Tuple{term.Int(int64(i)), term.Int(int64(i + 1))}); err != nil {
			t.Fatal(err)
		}
	}
	e := db.bank.Symbols().Intern("e")

	var wg sync.WaitGroup
	stop := make(chan struct{})
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				rel := db.Relation(e)
				// Full scans and index probes, including lazily built
				// indexes, against the published relation.
				it := rel.Scan()
				n := 0
				for _, ok := it.Next(); ok; _, ok = it.Next() {
					n++
				}
				if n != 64 {
					t.Errorf("reader saw %d rows in published snapshot, want 64", n)
					return
				}
				ids := rel.ProbeIDs(1<<0, []term.Value{term.Int(7)})
				if len(ids) != 1 {
					t.Errorf("probe saw %d rows, want 1", len(ids))
					return
				}
			}
		}()
	}

	tip := db
	for i := 0; i < 200; i++ {
		f := tip.Fork()
		if _, err := f.Assert(e, Tuple{term.Int(int64(1000 + i)), term.Int(int64(i))}); err != nil {
			t.Fatal(err)
		}
		if i%3 == 0 {
			if _, err := f.Retract(e, Tuple{term.Int(int64(1000 + i)), term.Int(int64(i))}); err != nil {
				t.Fatal(err)
			}
		}
		tip = f
	}
	close(stop)
	wg.Wait()

	if got := db.Relation(e).Len(); got != 64 {
		t.Fatalf("original snapshot changed: len = %d, want 64", got)
	}
}
