// Package database implements the extensional store: named relations of
// ground tuples with lazily built hash indexes keyed by any subset of
// columns. It is the substrate every evaluation strategy reads base facts
// from; derived (intensional) facts live in engine-local Relations of the
// same type.
package database

import (
	"encoding/binary"
	"fmt"
	"sort"
	"sync"

	"lincount/internal/ast"
	"lincount/internal/parser"
	"lincount/internal/symtab"
	"lincount/internal/term"
)

// Tuple is one row of a relation. All values are ground.
type Tuple []term.Value

// Equal reports element-wise equality.
func (t Tuple) Equal(o Tuple) bool {
	if len(t) != len(o) {
		return false
	}
	for i := range t {
		if t[i] != o[i] {
			return false
		}
	}
	return true
}

// Clone returns a copy of the tuple.
func (t Tuple) Clone() Tuple { return append(Tuple(nil), t...) }

// key builds the map key for the columns selected by mask (bit i ⇒ column
// i participates). With mask covering all columns it is the dedup key.
func (t Tuple) key(mask uint64) string {
	buf := make([]byte, 0, len(t)*3)
	for i, v := range t {
		if mask&(1<<uint(i)) != 0 {
			buf = binary.AppendVarint(buf, int64(v))
		}
	}
	return string(buf)
}

// maskKey builds a key from the given values for a probe against an index
// on mask; vals must contain exactly the masked columns, in column order.
func maskKey(vals []term.Value) string {
	buf := make([]byte, 0, len(vals)*3)
	for _, v := range vals {
		buf = binary.AppendVarint(buf, int64(v))
	}
	return string(buf)
}

// Relation is a set of same-arity tuples with optional column indexes.
// The zero value is not usable; call NewRelation.
//
// Concurrency: a Relation has a single writer. Concurrent readers are safe
// (index construction is internally synchronized), but reading while the
// writer inserts is not; the engine's parallel mode relies on completed
// relations being read-only.
type Relation struct {
	arity   int
	tuples  []Tuple
	present map[string]bool
	indexMu sync.Mutex
	indexes map[uint64]map[string][]int32
}

// NewRelation returns an empty relation of the given arity.
// Arity must be between 0 and 63 (index masks are 64-bit).
func NewRelation(arity int) *Relation {
	if arity < 0 || arity > 63 {
		panic(fmt.Sprintf("database: unsupported arity %d", arity))
	}
	return &Relation{
		arity:   arity,
		present: make(map[string]bool),
		indexes: make(map[uint64]map[string][]int32),
	}
}

// Arity returns the relation's arity.
func (r *Relation) Arity() int { return r.arity }

// Reset removes all tuples but keeps allocated capacity, including index
// map storage. Used by evaluators that refill a scratch relation in a hot
// loop.
func (r *Relation) Reset() {
	r.tuples = r.tuples[:0]
	clear(r.present)
	for _, ix := range r.indexes {
		clear(ix)
	}
}

// Len returns the number of tuples.
func (r *Relation) Len() int { return len(r.tuples) }

// fullMask covers all columns.
func (r *Relation) fullMask() uint64 { return (1 << uint(r.arity)) - 1 }

// Insert adds a tuple and reports whether it was new. The tuple is copied.
func (r *Relation) Insert(t Tuple) bool {
	if len(t) != r.arity {
		panic(fmt.Sprintf("database: inserting arity-%d tuple into arity-%d relation", len(t), r.arity))
	}
	k := t.key(r.fullMask())
	if r.present[k] {
		return false
	}
	r.present[k] = true
	idx := int32(len(r.tuples))
	r.tuples = append(r.tuples, t.Clone())
	for mask, ix := range r.indexes {
		pk := t.key(mask)
		ix[pk] = append(ix[pk], idx)
	}
	return true
}

// Contains reports whether the relation holds the tuple.
func (r *Relation) Contains(t Tuple) bool {
	if len(t) != r.arity {
		return false
	}
	return r.present[t.key(r.fullMask())]
}

// At returns the i-th tuple (insertion order). The returned slice must not
// be mutated.
func (r *Relation) At(i int) Tuple { return r.tuples[i] }

// Tuples returns the backing slice of tuples in insertion order. Callers
// must not mutate it.
func (r *Relation) Tuples() []Tuple { return r.tuples }

// ensureIndex builds (once) the index on mask. Safe for concurrent
// readers; the mutex also orders the lazily built map against them.
func (r *Relation) ensureIndex(mask uint64) map[string][]int32 {
	r.indexMu.Lock()
	defer r.indexMu.Unlock()
	if ix, ok := r.indexes[mask]; ok {
		return ix
	}
	ix := make(map[string][]int32, len(r.tuples))
	for i, t := range r.tuples {
		k := t.key(mask)
		ix[k] = append(ix[k], int32(i))
	}
	r.indexes[mask] = ix
	return ix
}

// Probe returns the indices (into Tuples) of tuples whose masked columns
// equal vals. vals must list exactly the masked columns, in column order.
// The returned slice must not be mutated.
func (r *Relation) Probe(mask uint64, vals []term.Value) []int32 {
	if mask == 0 {
		// Full scan request: callers should iterate Tuples directly, but
		// keep this correct for uniformity.
		out := make([]int32, len(r.tuples))
		for i := range out {
			out[i] = int32(i)
		}
		return out
	}
	ix := r.ensureIndex(mask)
	return ix[maskKey(vals)]
}

// Sorted returns the tuples sorted by term.Compare column-major; useful for
// deterministic test output.
func (r *Relation) Sorted() []Tuple {
	out := make([]Tuple, len(r.tuples))
	copy(out, r.tuples)
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		for k := range a {
			if c := term.Compare(a[k], b[k]); c != 0 {
				return c < 0
			}
		}
		return false
	})
	return out
}

// Database is a set of named relations over one term bank.
type Database struct {
	bank *term.Bank
	rels map[symtab.Sym]*Relation
}

// New returns an empty database over the given bank.
func New(b *term.Bank) *Database {
	return &Database{bank: b, rels: make(map[symtab.Sym]*Relation)}
}

// Bank returns the term bank the database interns values in.
func (db *Database) Bank() *term.Bank { return db.bank }

// Relation returns the relation for pred, or nil if absent.
func (db *Database) Relation(pred symtab.Sym) *Relation { return db.rels[pred] }

// Ensure returns the relation for pred, creating it with the given arity if
// absent. It returns an error on arity mismatch with an existing relation.
func (db *Database) Ensure(pred symtab.Sym, arity int) (*Relation, error) {
	if r, ok := db.rels[pred]; ok {
		if r.arity != arity {
			return nil, fmt.Errorf("database: predicate %s used with arity %d and %d",
				db.bank.Symbols().String(pred), r.arity, arity)
		}
		return r, nil
	}
	r := NewRelation(arity)
	db.rels[pred] = r
	return r, nil
}

// Assert inserts a fact, creating the relation as needed, and reports
// whether the tuple was new.
func (db *Database) Assert(pred symtab.Sym, t Tuple) (bool, error) {
	r, err := db.Ensure(pred, len(t))
	if err != nil {
		return false, err
	}
	return r.Insert(t), nil
}

// AssertStrings is a convenience for tests and examples: every argument is
// interned as a symbol constant.
func (db *Database) AssertStrings(pred string, args ...string) error {
	t := make(Tuple, len(args))
	for i, a := range args {
		t[i] = term.Symbol(db.bank.Symbols().Intern(a))
	}
	_, err := db.Assert(db.bank.Symbols().Intern(pred), t)
	return err
}

// Predicates returns the database's predicate symbols sorted by name.
func (db *Database) Predicates() []symtab.Sym {
	out := make([]symtab.Sym, 0, len(db.rels))
	for p := range db.rels {
		out = append(out, p)
	}
	syms := db.bank.Symbols()
	sort.Slice(out, func(i, j int) bool {
		return syms.String(out[i]) < syms.String(out[j])
	})
	return out
}

// FactCount returns the total number of tuples across all relations.
func (db *Database) FactCount() int {
	n := 0
	for _, r := range db.rels {
		n += r.Len()
	}
	return n
}

// LoadText parses src (facts only) into the database. It returns an error
// if src contains rules with bodies, non-ground facts, or queries.
func (db *Database) LoadText(src string) error {
	res, err := parser.Parse(db.bank, src)
	if err != nil {
		return err
	}
	if len(res.Queries) != 0 {
		return fmt.Errorf("database: queries are not allowed in fact files")
	}
	for _, r := range res.Program.Rules {
		if !r.IsFact() {
			return fmt.Errorf("database: %s is not a ground fact",
				ast.FormatRule(db.bank, r))
		}
		t := make(Tuple, len(r.Head.Args))
		for i, a := range r.Head.Args {
			t[i] = a.Value
		}
		if _, err := db.Assert(r.Head.Pred, t); err != nil {
			return err
		}
	}
	return nil
}

// Format renders the database as fact text, predicates sorted by name and
// tuples in deterministic order.
func (db *Database) Format() string {
	var out []byte
	for _, p := range db.Predicates() {
		rel := db.rels[p]
		name := db.bank.Symbols().String(p)
		for _, t := range rel.Sorted() {
			out = append(out, name...)
			if len(t) > 0 {
				out = append(out, '(')
				for i, v := range t {
					if i > 0 {
						out = append(out, ',')
					}
					out = append(out, db.bank.Format(v)...)
				}
				out = append(out, ')')
			}
			out = append(out, '.', '\n')
		}
	}
	return string(out)
}
