// Package database implements the extensional store: named relations of
// ground tuples with lazily built hash indexes keyed by any subset of
// columns. It is the substrate every evaluation strategy reads base facts
// from; derived (intensional) facts live in engine-local Relations of the
// same type.
//
// Storage is columnar in spirit: a relation holds all its tuples in one
// flat arena addressed by dense RowID (see arena.go), dedup and indexes
// are open-addressing tables hashing straight out of the arena, and the
// probe path allocates nothing. Tuple remains as a compatibility view
// type; Row/Probe/Scan are the zero-copy API.
package database

import (
	"fmt"
	"sort"
	"sync"

	"lincount/internal/ast"
	"lincount/internal/parser"
	"lincount/internal/symtab"
	"lincount/internal/term"
)

// Tuple is one row of a relation. All values are ground. Tuples returned
// by Row/At/Tuples are views into the relation's arena: valid until the
// relation is Reset, and never to be mutated.
type Tuple []term.Value

// Equal reports element-wise equality.
func (t Tuple) Equal(o Tuple) bool {
	if len(t) != len(o) {
		return false
	}
	for i := range t {
		if t[i] != o[i] {
			return false
		}
	}
	return true
}

// Clone returns a copy of the tuple.
func (t Tuple) Clone() Tuple { return append(Tuple(nil), t...) }

// Relation is a set of same-arity tuples stored in one flat arena and
// addressed by dense RowID, with optional open-addressing column indexes.
// The zero value is not usable; call NewRelation.
//
// Concurrency: a Relation has a single writer. Concurrent readers are safe
// (index construction is internally synchronized), but reading while the
// writer inserts is not; the engine's parallel mode relies on completed
// relations being read-only.
type Relation struct {
	arity   int
	rows    int
	arena   []term.Value
	dedup   dedupTable
	indexMu sync.Mutex
	indexes map[uint64]*rowIndex
}

// NewRelation returns an empty relation of the given arity.
// Arity must be between 0 and 63 (index masks are 64-bit).
func NewRelation(arity int) *Relation {
	if arity < 0 || arity > 63 {
		panic(fmt.Sprintf("database: unsupported arity %d", arity))
	}
	return &Relation{
		arity:   arity,
		indexes: make(map[uint64]*rowIndex),
	}
}

// Arity returns the relation's arity.
func (r *Relation) Arity() int { return r.arity }

// Reset removes all tuples but keeps allocated capacity: the arena, the
// dedup table and every index keep their backing storage. Used by
// evaluators that refill a scratch relation in a hot loop. Row views
// handed out before the Reset are invalidated.
func (r *Relation) Reset() {
	r.rows = 0
	r.arena = r.arena[:0]
	for i := range r.dedup.slots {
		r.dedup.slots[i] = noRow
	}
	r.dedup.used = 0
	for _, ix := range r.indexes {
		for i := range ix.slots {
			ix.slots[i] = -1
		}
		ix.keys = ix.keys[:0]
		ix.next = ix.next[:0]
	}
}

// Len returns the number of tuples.
func (r *Relation) Len() int { return r.rows }

// ArenaLen returns the number of term values held in the arena; a cheap
// proxy for the relation's resident data size, surfaced in Stats.
func (r *Relation) ArenaLen() int { return len(r.arena) }

// fullMask covers all columns.
func (r *Relation) fullMask() uint64 { return (1 << uint(r.arity)) - 1 }

// Insert adds a tuple and reports whether it was new. The values are
// copied into the arena; the caller keeps ownership of t.
func (r *Relation) Insert(t Tuple) bool {
	_, added := r.InsertRow(t)
	return added
}

// InsertRow is Insert returning the tuple's RowID: the fresh id when the
// tuple is new, the existing row's id otherwise. The id is what lets
// callers keep per-row side tables (the incremental maintenance engine's
// derivation counts) parallel to the relation.
func (r *Relation) InsertRow(t Tuple) (RowID, bool) {
	if len(t) != r.arity {
		panic(fmt.Sprintf("database: inserting arity-%d tuple into arity-%d relation", len(t), r.arity))
	}
	if (r.dedup.used+1)*4 > len(r.dedup.slots)*3 {
		r.dedupGrow()
	}
	m := uint64(len(r.dedup.slots) - 1)
	i := HashValues(t) & m
	free := -1 // first tombstone on the probe path, reusable for a new row
	for {
		row := r.dedup.slots[i]
		if row == noRow {
			break
		}
		if row == tombRow {
			if free < 0 {
				free = int(i)
			}
		} else if r.rowEqualFull(row, t) {
			return row, false
		}
		i = (i + 1) & m
	}
	id := RowID(r.rows)
	r.arena = append(r.arena, t...)
	r.rows++
	if free >= 0 {
		r.dedup.slots[free] = id // tombstone already counted in used
	} else {
		r.dedup.slots[i] = id
		r.dedup.used++
	}
	for _, ix := range r.indexes {
		r.indexAdd(ix, id)
	}
	return id, true
}

// Find returns the RowID of the row equal to t, if present.
// Allocation-free, like Contains.
func (r *Relation) Find(t Tuple) (RowID, bool) {
	if len(t) != r.arity || r.rows == 0 {
		return 0, false
	}
	m := uint64(len(r.dedup.slots) - 1)
	for i := HashValues(t) & m; ; i = (i + 1) & m {
		row := r.dedup.slots[i]
		if row == noRow {
			return 0, false
		}
		if row != tombRow && r.rowEqualFull(row, t) {
			return row, true
		}
	}
}

// Contains reports whether the relation holds the tuple. Allocation-free.
func (r *Relation) Contains(t Tuple) bool {
	if len(t) != r.arity || r.rows == 0 {
		return false
	}
	m := uint64(len(r.dedup.slots) - 1)
	for i := HashValues(t) & m; ; i = (i + 1) & m {
		row := r.dedup.slots[i]
		if row == noRow {
			return false
		}
		if row != tombRow && r.rowEqualFull(row, t) {
			return true
		}
	}
}

// Row returns the zero-copy arena view of one row. The view is valid until
// the relation is Reset (inserts never move committed rows out from under
// a view: arena growth reallocates, but the old backing array is left
// intact for outstanding views). Callers must not mutate it.
func (r *Relation) Row(id RowID) []term.Value { return r.rowSlice(id) }

// At returns the i-th tuple (insertion order) as a zero-copy view; see Row.
func (r *Relation) At(i int) Tuple { return Tuple(r.rowSlice(RowID(i))) }

// Tuples returns the rows in insertion order as a fresh slice of zero-copy
// views. It allocates the slice of headers (O(rows)); hot paths should use
// Scan/Probe iterators with Row instead.
func (r *Relation) Tuples() []Tuple {
	out := make([]Tuple, r.rows)
	for i := range out {
		out[i] = Tuple(r.rowSlice(RowID(i)))
	}
	return out
}

// ensureIndex builds (once) the index on mask. Safe for concurrent
// readers; the mutex also orders the lazily built index against them.
func (r *Relation) ensureIndex(mask uint64) *rowIndex {
	r.indexMu.Lock()
	defer r.indexMu.Unlock()
	if ix, ok := r.indexes[mask]; ok {
		return ix
	}
	ix := &rowIndex{mask: mask}
	for id := RowID(0); int(id) < r.rows; id++ {
		r.indexAdd(ix, id)
	}
	r.indexes[mask] = ix
	return ix
}

// Probe returns an iterator over the rows whose masked columns equal vals
// (bit i of mask ⇒ column i participates; vals lists exactly the masked
// columns, in column order). mask 0 is a full scan. After the index
// exists, a probe performs no allocation: the key is hashed from vals and
// compared against arena rows directly.
func (r *Relation) Probe(mask uint64, vals []term.Value) RowIter {
	return r.ProbeRange(mask, vals, 0, RowID(r.rows))
}

// ProbeRange is Probe restricted to rows in [lo, hi): the semi-naive
// engine's delta join, with deltas represented as RowID watermarks instead
// of separate relations.
func (r *Relation) ProbeRange(mask uint64, vals []term.Value, lo, hi RowID) RowIter {
	if hi > RowID(r.rows) {
		hi = RowID(r.rows)
	}
	if lo >= hi {
		return emptyIter()
	}
	if mask == 0 {
		return RowIter{cur: lo, hi: hi}
	}
	ix := r.ensureIndex(mask)
	k := r.findKey(ix, vals)
	if k < 0 {
		return emptyIter()
	}
	cur := ix.keys[k].head
	// Chains ascend by RowID; skip the prefix below lo.
	for cur != noRow && cur < lo {
		cur = ix.next[cur]
	}
	if cur == noRow || cur >= hi {
		return emptyIter()
	}
	return RowIter{next: ix.next, cur: cur, hi: hi}
}

// Scan iterates all rows in insertion order (snapshot semantics: rows
// inserted after the call are not yielded).
func (r *Relation) Scan() RowIter { return RowIter{cur: 0, hi: RowID(r.rows)} }

// ScanRange iterates rows in [lo, hi) in insertion order.
func (r *Relation) ScanRange(lo, hi RowID) RowIter {
	if hi > RowID(r.rows) {
		hi = RowID(r.rows)
	}
	if lo >= hi {
		return emptyIter()
	}
	return RowIter{cur: lo, hi: hi}
}

// ProbeIDs collects Probe's result into a fresh slice; a convenience for
// tests and non-hot callers.
func (r *Relation) ProbeIDs(mask uint64, vals []term.Value) []RowID {
	var out []RowID
	it := r.Probe(mask, vals)
	for id, ok := it.Next(); ok; id, ok = it.Next() {
		out = append(out, id)
	}
	return out
}

// Sorted returns the tuples sorted by term.Compare column-major; useful for
// deterministic test output.
func (r *Relation) Sorted() []Tuple {
	out := r.Tuples()
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		for k := range a {
			if c := term.Compare(a[k], b[k]); c != 0 {
				return c < 0
			}
		}
		return false
	})
	return out
}

// Database is a set of named relations over one term bank.
type Database struct {
	bank *term.Bank
	rels map[symtab.Sym]*Relation
	// shared marks relations still owned by a fork parent: copy-on-write
	// state, cleared per relation when a write first touches it. Nil for
	// databases that were never forked from (or into).
	shared map[symtab.Sym]bool
}

// New returns an empty database over the given bank.
func New(b *term.Bank) *Database {
	return &Database{bank: b, rels: make(map[symtab.Sym]*Relation)}
}

// Fork returns a copy-on-write fork of the database: the fork initially
// shares every relation with db, and the first write to a relation
// through the fork clones it (see CloneForAppend), so db is never
// mutated through the fork. This is the MVCC seam the query server
// builds epoch snapshots on: the published database stays immutable and
// keeps serving concurrent readers while the single writer prepares the
// next epoch in a fork and publishes it atomically.
//
// Forks are meant for a linear single-writer chain (fork the tip, write,
// publish, repeat). The fork shares db's term bank, which is safe: banks
// are internally synchronized.
func (db *Database) Fork() *Database {
	f := &Database{
		bank:   db.bank,
		rels:   make(map[symtab.Sym]*Relation, len(db.rels)),
		shared: make(map[symtab.Sym]bool, len(db.rels)),
	}
	for p, r := range db.rels {
		f.rels[p] = r
		f.shared[p] = true
	}
	return f
}

// Bank returns the term bank the database interns values in.
func (db *Database) Bank() *term.Bank { return db.bank }

// Relation returns the relation for pred, or nil if absent.
func (db *Database) Relation(pred symtab.Sym) *Relation { return db.rels[pred] }

// Ensure returns the relation for pred, creating it with the given arity if
// absent. It returns an error on arity mismatch with an existing relation.
// Ensure declares write intent: on a forked database, a relation still
// shared with the fork parent is cloned here, so the caller may insert
// into the returned relation freely. Read-only access goes through
// Relation instead.
func (db *Database) Ensure(pred symtab.Sym, arity int) (*Relation, error) {
	if r, ok := db.rels[pred]; ok {
		if r.arity != arity {
			return nil, fmt.Errorf("database: predicate %s used with arity %d and %d",
				db.bank.Symbols().String(pred), r.arity, arity)
		}
		if db.shared[pred] {
			r = r.CloneForAppend()
			db.rels[pred] = r
			delete(db.shared, pred)
		}
		return r, nil
	}
	r := NewRelation(arity)
	db.rels[pred] = r
	return r, nil
}

// RebuildWithout returns a new relation holding every row of r for which
// drop returns false, preserving insertion order. This is the O(n)
// retraction primitive, and every O(n) pass is sequential — no per-row
// hashing:
//
//   - the arena is copied in contiguous runs between dropped rows;
//   - dedup slot positions depend only on row values, which don't change,
//     so the table is remapped slot-by-slot: surviving ids shift down,
//     dropped ids become tombstones (keeping colliding probe chains
//     intact; see tombRow);
//   - column indexes are remapped the same way: chains keep their
//     relative order, so next[] is rewritten in one id-order pass, and
//     only chains whose head or tail died need any walking.
//
// The old rebuild refilled the dedup table with a hash probe per
// surviving row and dropped the indexes (another full rehash on the next
// probe) — per-epoch costs that dominated incremental maintenance of
// large materialisations under small deltas.
func (r *Relation) RebuildWithout(drop func(RowID) bool) *Relation {
	n := &Relation{
		arity:   r.arity,
		arena:   make([]term.Value, 0, len(r.arena)),
		indexes: make(map[uint64]*rowIndex, len(r.indexes)),
	}
	newID := make([]RowID, r.rows)
	run := 0 // first row of the current surviving run
	flush := func(end int) {
		if run < end {
			n.arena = append(n.arena, r.arena[run*r.arity:end*r.arity]...)
		}
	}
	for id := 0; id < r.rows; id++ {
		if drop != nil && drop(RowID(id)) {
			flush(id)
			run = id + 1
			newID[id] = noRow
			continue
		}
		newID[id] = RowID(n.rows)
		n.rows++
	}
	flush(r.rows)

	if len(r.dedup.slots) == 0 {
		n.dedup.slots = make([]RowID, 16)
		for i := range n.dedup.slots {
			n.dedup.slots[i] = noRow
		}
	} else {
		n.dedup.slots = make([]RowID, len(r.dedup.slots))
		used := 0
		for i, s := range r.dedup.slots {
			switch {
			case s == noRow:
				n.dedup.slots[i] = noRow
			case s == tombRow || newID[s] == noRow:
				n.dedup.slots[i] = tombRow
				used++
			default:
				n.dedup.slots[i] = newID[s]
				used++
			}
		}
		n.dedup.used = used
	}

	r.indexMu.Lock()
	for mask, ix := range r.indexes {
		n.indexes[mask] = remapIndex(ix, newID, r.rows, n.rows)
	}
	r.indexMu.Unlock()
	return n
}

// remapIndex rebuilds a column index against the compacted row ids.
// Slot positions hash row values, which are unchanged, so the slot table
// is copied as-is; keys whose whole chain died keep their slot with
// head == noRow as a tombstone (findKey, indexAdd and indexGrow skip
// those). next[] is rewritten in a single ascending-id pass; chains stay
// ascending because the rebuild preserves row order.
func remapIndex(ix *rowIndex, newID []RowID, oldRows, newRows int) *rowIndex {
	nix := &rowIndex{
		mask:  ix.mask,
		slots: append([]int32(nil), ix.slots...),
		keys:  make([]chainKey, len(ix.keys)),
		next:  make([]RowID, newRows),
	}
	for id := 0; id < oldRows; id++ {
		nid := newID[id]
		if nid == noRow {
			continue
		}
		j := ix.next[id]
		for j != noRow && newID[j] == noRow {
			j = ix.next[j]
		}
		if j == noRow {
			nix.next[nid] = noRow
		} else {
			nix.next[nid] = newID[j]
		}
	}
	for k, key := range ix.keys {
		head := key.head
		for head != noRow && newID[head] == noRow {
			head = ix.next[head]
		}
		if head == noRow {
			nix.keys[k] = chainKey{head: noRow, tail: noRow}
			continue
		}
		nh := newID[head]
		nt := nh
		if key.tail != noRow && newID[key.tail] != noRow {
			nt = newID[key.tail]
		} else {
			for nix.next[nt] != noRow {
				nt = nix.next[nt]
			}
		}
		nix.keys[k] = chainKey{head: nh, tail: nt}
	}
	return nix
}

// Retract removes one fact, reporting whether it was present. The arena
// is append-only, so retraction rebuilds the predicate's relation
// without the tuple — O(relation size); batch retractions (RetractBatch,
// RetractText) so the rebuild is paid per batch, not per fact. On a
// forked database the rebuild is itself the copy-on-write step: the
// parent's relation is never touched.
func (db *Database) Retract(pred symtab.Sym, t Tuple) (bool, error) {
	n, err := db.RetractBatch(pred, []Tuple{t})
	return n > 0, err
}

// RetractBatch removes every listed tuple from pred's relation with a
// single capacity-reusing rebuild, returning how many were actually
// present (duplicates in tuples count once). Absent tuples are no-ops.
func (db *Database) RetractBatch(pred symtab.Sym, tuples []Tuple) (int, error) {
	r, ok := db.rels[pred]
	if !ok {
		return 0, nil
	}
	drop := NewRelation(r.arity)
	present := 0
	for _, t := range tuples {
		if r.arity != len(t) {
			return present, fmt.Errorf("database: predicate %s used with arity %d and %d",
				db.bank.Symbols().String(pred), r.arity, len(t))
		}
		if r.Contains(t) && drop.Insert(t) {
			present++
		}
	}
	if present == 0 {
		return 0, nil
	}
	db.rels[pred] = r.RebuildWithout(func(id RowID) bool {
		return drop.Contains(Tuple(r.rowSlice(id)))
	})
	delete(db.shared, pred)
	return present, nil
}

// RetractText parses src (facts only, same format as LoadText) and
// retracts each fact, returning how many were actually present and
// removed. Facts absent from the database are no-ops, not errors. Facts
// are grouped by predicate so each touched relation is rebuilt once.
func (db *Database) RetractText(src string) (int, error) {
	res, err := parser.Parse(db.bank, src)
	if err != nil {
		return 0, err
	}
	if len(res.Queries) != 0 {
		return 0, fmt.Errorf("database: queries are not allowed in fact files")
	}
	byPred := make(map[symtab.Sym][]Tuple)
	var order []symtab.Sym
	for _, r := range res.Program.Rules {
		if !r.IsFact() {
			return 0, fmt.Errorf("database: %s is not a ground fact",
				ast.FormatRule(db.bank, r))
		}
		t := make(Tuple, len(r.Head.Args))
		for i, a := range r.Head.Args {
			t[i] = a.Value
		}
		if _, ok := byPred[r.Head.Pred]; !ok {
			order = append(order, r.Head.Pred)
		}
		byPred[r.Head.Pred] = append(byPred[r.Head.Pred], t)
	}
	removed := 0
	for _, pred := range order {
		n, err := db.RetractBatch(pred, byPred[pred])
		removed += n
		if err != nil {
			return removed, err
		}
	}
	return removed, nil
}

// Assert inserts a fact, creating the relation as needed, and reports
// whether the tuple was new.
func (db *Database) Assert(pred symtab.Sym, t Tuple) (bool, error) {
	r, err := db.Ensure(pred, len(t))
	if err != nil {
		return false, err
	}
	return r.Insert(t), nil
}

// AssertStrings is a convenience for tests and examples: every argument is
// interned as a symbol constant.
func (db *Database) AssertStrings(pred string, args ...string) error {
	t := make(Tuple, len(args))
	for i, a := range args {
		t[i] = term.Symbol(db.bank.Symbols().Intern(a))
	}
	_, err := db.Assert(db.bank.Symbols().Intern(pred), t)
	return err
}

// Predicates returns the database's predicate symbols sorted by name.
func (db *Database) Predicates() []symtab.Sym {
	out := make([]symtab.Sym, 0, len(db.rels))
	for p := range db.rels {
		out = append(out, p)
	}
	syms := db.bank.Symbols()
	sort.Slice(out, func(i, j int) bool {
		return syms.String(out[i]) < syms.String(out[j])
	})
	return out
}

// FactCount returns the total number of tuples across all relations.
func (db *Database) FactCount() int {
	n := 0
	for _, r := range db.rels {
		n += r.Len()
	}
	return n
}

// ArenaValues returns the total number of term values resident in all
// relation arenas.
func (db *Database) ArenaValues() int {
	n := 0
	for _, r := range db.rels {
		n += r.ArenaLen()
	}
	return n
}

// LoadText parses src (facts only) into the database. It returns an error
// if src contains rules with bodies, non-ground facts, or queries.
func (db *Database) LoadText(src string) error {
	res, err := parser.Parse(db.bank, src)
	if err != nil {
		return err
	}
	if len(res.Queries) != 0 {
		return fmt.Errorf("database: queries are not allowed in fact files")
	}
	for _, r := range res.Program.Rules {
		if !r.IsFact() {
			return fmt.Errorf("database: %s is not a ground fact",
				ast.FormatRule(db.bank, r))
		}
		t := make(Tuple, len(r.Head.Args))
		for i, a := range r.Head.Args {
			t[i] = a.Value
		}
		if _, err := db.Assert(r.Head.Pred, t); err != nil {
			return err
		}
	}
	return nil
}

// Format renders the database as fact text, predicates sorted by name and
// tuples in deterministic order.
func (db *Database) Format() string {
	var out []byte
	for _, p := range db.Predicates() {
		rel := db.rels[p]
		name := db.bank.Symbols().String(p)
		for _, t := range rel.Sorted() {
			out = append(out, name...)
			if len(t) > 0 {
				out = append(out, '(')
				for i, v := range t {
					if i > 0 {
						out = append(out, ',')
					}
					out = append(out, db.bank.Format(v)...)
				}
				out = append(out, ')')
			}
			out = append(out, '.', '\n')
		}
	}
	return string(out)
}
