package database

import (
	"math/rand"
	"testing"

	"lincount/internal/term"
)

// collect drains an iterator into a slice.
func collect(it RowIter) []RowID {
	var out []RowID
	for {
		id, ok := it.Next()
		if !ok {
			return out
		}
		out = append(out, id)
	}
}

func rowIDsEqual(a, b []RowID) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// fillMod populates an arity-2 relation with rows (i mod k, i), so column 0
// has k distinct keys with interleaved chains.
func fillMod(n, k int) *Relation {
	r := NewRelation(2)
	for i := 0; i < n; i++ {
		r.Insert(Tuple{term.Int(int64(i % k)), term.Int(int64(i))})
	}
	return r
}

func TestProbeRangeEmptyWindow(t *testing.T) {
	r := fillMod(20, 4)
	ix := r.IndexFor(1, 0)
	key := []term.Value{term.Int(1)}
	for _, win := range [][2]RowID{{5, 5}, {7, 3}, {20, 20}, {20, 40}, {0, 0}} {
		if got := collect(r.ProbeRange(1, key, win[0], win[1])); len(got) != 0 {
			t.Errorf("ProbeRange[%d,%d) = %v, want empty", win[0], win[1], got)
		}
		if got := collect(ix.ProbeRange(key, win[0], win[1])); len(got) != 0 {
			t.Errorf("Index.ProbeRange[%d,%d) = %v, want empty", win[0], win[1], got)
		}
		if got := ix.ProbeRangeBatch(1, key, win[0], win[1], nil); len(got) != 0 {
			t.Errorf("ProbeRangeBatch[%d,%d) = %v, want empty", win[0], win[1], got)
		}
	}
}

// TestProbeRangeWatermarkBoundary pins the delta-window semantics the
// semi-naive engine relies on: a watermark exactly at the arena boundary
// (hi == Len) sees every row, hi beyond the boundary clamps, and lo at
// the boundary sees nothing — including rows inserted after the handle
// was resolved (the handle reads the live relation).
func TestProbeRangeWatermarkBoundary(t *testing.T) {
	r := fillMod(10, 2)
	ix := r.IndexFor(1, 0)
	key := []term.Value{term.Int(0)} // rows 0,2,4,6,8
	want := []RowID{0, 2, 4, 6, 8}
	if got := collect(ix.ProbeRange(key, 0, RowID(r.Len()))); !rowIDsEqual(got, want) {
		t.Errorf("hi=Len: got %v, want %v", got, want)
	}
	if got := collect(ix.ProbeRange(key, 0, RowID(r.Len())+100)); !rowIDsEqual(got, want) {
		t.Errorf("hi>Len must clamp: got %v, want %v", got, want)
	}
	if got := collect(ix.ProbeRange(key, RowID(r.Len()), RowID(r.Len())+1)); len(got) != 0 {
		t.Errorf("lo=Len: got %v, want empty", got)
	}
	// The handle must stay coherent as the single writer appends.
	r.Insert(Tuple{term.Int(0), term.Int(100)})
	want = append(want, 10)
	if got := collect(ix.ProbeRange(key, 0, RowID(r.Len()))); !rowIDsEqual(got, want) {
		t.Errorf("after append: got %v, want %v", got, want)
	}
	if got := collect(ix.ProbeRange(key, 10, RowID(r.Len()))); !rowIDsEqual(got, []RowID{10}) {
		t.Errorf("delta window over appended row: got %v, want [10]", got)
	}
}

func TestProbeMaskAllColumns(t *testing.T) {
	r := fillMod(12, 3)
	full := uint64(1<<2 - 1)
	ix := r.IndexFor(full, 0)
	if w := KeyWidth(full); w != 2 {
		t.Fatalf("KeyWidth(%b) = %d, want 2", full, w)
	}
	key := []term.Value{term.Int(1), term.Int(7)} // row 7 exactly
	if got := collect(ix.ProbeRange(key, 0, RowID(r.Len()))); !rowIDsEqual(got, []RowID{7}) {
		t.Errorf("full-mask probe: got %v, want [7]", got)
	}
	miss := []term.Value{term.Int(2), term.Int(7)}
	if got := collect(ix.ProbeRange(miss, 0, RowID(r.Len()))); len(got) != 0 {
		t.Errorf("full-mask miss: got %v, want empty", got)
	}
	got := ix.ProbeRangeBatch(2, append(append([]term.Value{}, key...), miss...), 0, RowID(r.Len()), nil)
	if len(got) != 1 || got[0] != (RowMatch{Key: 0, Row: 7}) {
		t.Errorf("full-mask batch: got %v, want [{0 7}]", got)
	}
}

func TestProbeMaskNoColumns(t *testing.T) {
	r := fillMod(6, 2)
	ix := r.IndexFor(0, 0)
	if got := collect(ix.ProbeRange(nil, 2, 5)); !rowIDsEqual(got, []RowID{2, 3, 4}) {
		t.Errorf("mask-0 range scan: got %v, want [2 3 4]", got)
	}
	// A mask-0 batch has zero-width keys: every key matches every row in
	// the window, grouped by key.
	got := ix.ProbeRangeBatch(2, nil, 4, 6, nil)
	want := []RowMatch{{0, 4}, {0, 5}, {1, 4}, {1, 5}}
	if len(got) != len(want) {
		t.Fatalf("mask-0 batch: got %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("mask-0 batch: got %v, want %v", got, want)
		}
	}
}

// TestProbeRangeBatchEquivalence is the property test: for random
// relations, masks, key batches and windows, one ProbeRangeBatch call
// yields exactly the matches of per-key ProbeRange calls, in the same
// order.
func TestProbeRangeBatchEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 200; trial++ {
		arity := 1 + rng.Intn(3)
		nrows := rng.Intn(60)
		vals := 1 + rng.Intn(5)
		r := NewRelation(arity)
		tup := make(Tuple, arity)
		for i := 0; i < nrows; i++ {
			for j := range tup {
				tup[j] = term.Int(int64(rng.Intn(vals)))
			}
			r.Insert(tup)
		}
		mask := uint64(rng.Intn(1 << uint(arity))) // may be 0 (scan) or full
		w := KeyWidth(mask)
		nkeys := rng.Intn(8)
		keys := make([]term.Value, nkeys*w)
		for i := range keys {
			keys[i] = term.Int(int64(rng.Intn(vals + 1))) // +1: some misses
		}
		lo := RowID(rng.Intn(r.Len() + 2))
		hi := RowID(rng.Intn(r.Len() + 3))
		ix := r.IndexFor(mask, rng.Intn(2)*vals) // alternate hint/no-hint
		batched := ix.ProbeRangeBatch(nkeys, keys, lo, hi, nil)
		var serial []RowMatch
		for i := 0; i < nkeys; i++ {
			it := r.ProbeRange(mask, keys[i*w:(i+1)*w], lo, hi)
			for {
				id, ok := it.Next()
				if !ok {
					break
				}
				serial = append(serial, RowMatch{Key: int32(i), Row: id})
			}
		}
		if len(batched) != len(serial) {
			t.Fatalf("trial %d (arity=%d rows=%d mask=%b [%d,%d)): batched %v != serial %v",
				trial, arity, nrows, mask, lo, hi, batched, serial)
		}
		for i := range serial {
			if batched[i] != serial[i] {
				t.Fatalf("trial %d: batched[%d]=%v != serial[%d]=%v",
					trial, i, batched[i], i, serial[i])
			}
		}
	}
}

// TestProbeRangeBatchIdenticalKeyRuns pins the identical-key-run
// memoisation: long runs of the same key (with matches, without
// matches, and interleaved) must replay the first probe's results
// exactly, under a narrowed window too.
func TestProbeRangeBatchIdenticalKeyRuns(t *testing.T) {
	r := fillMod(40, 4) // keys 0..3, 10 rows each; key 9 misses
	ix := r.IndexFor(1, 0)
	mk := func(ks ...int) []term.Value {
		out := make([]term.Value, len(ks))
		for i, k := range ks {
			out[i] = term.Int(int64(k))
		}
		return out
	}
	cases := [][]int{
		{1, 1, 1, 1, 1},          // one long hit run
		{9, 9, 9, 9},             // one long miss run
		{1, 1, 9, 9, 1, 1},       // hit run, miss run, hit run again
		{0, 1, 1, 2, 2, 2, 9, 3}, // mixed run lengths
	}
	for _, ks := range cases {
		for _, win := range [][2]RowID{{0, 40}, {7, 23}} {
			keys := mk(ks...)
			batched := ix.ProbeRangeBatch(len(ks), keys, win[0], win[1], nil)
			var serial []RowMatch
			for i := range ks {
				for _, id := range collect(ix.ProbeRange(keys[i:i+1], win[0], win[1])) {
					serial = append(serial, RowMatch{Key: int32(i), Row: id})
				}
			}
			if len(batched) != len(serial) {
				t.Fatalf("keys %v window %v: batched %v != serial %v", ks, win, batched, serial)
			}
			for i := range serial {
				if batched[i] != serial[i] {
					t.Fatalf("keys %v window %v: batched[%d]=%v != serial %v", ks, win, i, batched[i], serial[i])
				}
			}
		}
	}
}

// TestIndexForPreSized checks a hinted index is built at final size: no
// slot-table growth while inserting up to the hint.
func TestIndexForPreSized(t *testing.T) {
	r := NewRelation(1)
	ix := r.IndexFor(1, 1000)
	slots0 := len(ix.ix.slots)
	if slots0*3 < 1000*4 {
		t.Fatalf("pre-sized slot table too small: %d slots for hint 1000", slots0)
	}
	for i := 0; i < 1000; i++ {
		r.Insert(Tuple{term.Int(int64(i))})
	}
	if got := len(ix.ix.slots); got != slots0 {
		t.Errorf("slot table grew from %d to %d despite hint", slots0, got)
	}
	for _, i := range []int64{0, 500, 999} {
		if got := collect(ix.ProbeRange([]term.Value{term.Int(i)}, 0, RowID(r.Len()))); !rowIDsEqual(got, []RowID{RowID(i)}) {
			t.Errorf("probe %d through pre-sized index: got %v", i, got)
		}
	}
}

func TestNewRelationSized(t *testing.T) {
	r := NewRelationSized(2, 500)
	for i := 0; i < 500; i++ {
		r.Insert(Tuple{term.Int(int64(i)), term.Int(int64(i * 2))})
	}
	if r.Len() != 500 {
		t.Fatalf("Len = %d, want 500", r.Len())
	}
	if !r.Contains(Tuple{term.Int(250), term.Int(500)}) {
		t.Error("Contains miss after sized bulk load")
	}
	// A zero/negative hint must behave like NewRelation.
	for _, n := range []int{0, -5} {
		r := NewRelationSized(1, n)
		r.Insert(Tuple{term.Int(1)})
		if r.Len() != 1 {
			t.Errorf("hint %d: Len = %d, want 1", n, r.Len())
		}
	}
}
