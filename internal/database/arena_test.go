package database

import (
	"bytes"
	"math/rand"
	"os"
	"testing"
	"testing/quick"

	"lincount/internal/symtab"
	"lincount/internal/term"
)

// TestProbeEqualsScanFilter is the index-correctness law for the
// open-addressing tables: for random relations, random probe masks and
// random keys, the indexed Probe iterator must yield exactly the rows a
// full-scan filter accepts, in the same (insertion) order. It also checks
// ProbeRange against the filtered [lo, hi) window. Run under -race by
// `make check`.
func TestProbeEqualsScanFilter(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		arity := rng.Intn(4) + 1
		rel := NewRelation(arity)
		domain := int64(rng.Intn(4) + 1)
		randTuple := func() Tuple {
			tu := make(Tuple, arity)
			for i := range tu {
				tu[i] = term.Int(rng.Int63n(domain))
			}
			return tu
		}
		// Build some indexes before, some after the inserts, so both the
		// bulk-build and the incremental indexAdd paths are exercised.
		full := uint64(1)<<uint(arity) - 1
		pre := uint64(rng.Int63()) & full
		if pre != 0 {
			rel.ProbeIDs(pre, make([]term.Value, popcount(pre)))
		}
		n := rng.Intn(80)
		for i := 0; i < n; i++ {
			rel.Insert(randTuple())
		}
		for trial := 0; trial < 8; trial++ {
			mask := uint64(rng.Int63()) & full
			target := randTuple()
			var probe []term.Value
			for c := 0; c < arity; c++ {
				if mask&(1<<uint(c)) != 0 {
					probe = append(probe, target[c])
				}
			}
			var want []RowID
			for id := RowID(0); int(id) < rel.Len(); id++ {
				row := rel.Row(id)
				match := true
				for c := 0; c < arity; c++ {
					if mask&(1<<uint(c)) != 0 && row[c] != target[c] {
						match = false
						break
					}
				}
				if match {
					want = append(want, id)
				}
			}
			got := rel.ProbeIDs(mask, probe)
			if len(got) != len(want) {
				return false
			}
			for i := range got {
				if got[i] != want[i] {
					return false
				}
			}
			// The same law over a random window, for the delta-join path.
			lo := RowID(rng.Intn(rel.Len() + 1))
			hi := lo + RowID(rng.Intn(rel.Len()+1-int(lo)))
			var wantR []RowID
			for _, id := range want {
				if id >= lo && id < hi {
					wantR = append(wantR, id)
				}
			}
			it := rel.ProbeRange(mask, probe, lo, hi)
			var gotR []RowID
			for id, ok := it.Next(); ok; id, ok = it.Next() {
				gotR = append(gotR, id)
			}
			if len(gotR) != len(wantR) {
				return false
			}
			for i := range gotR {
				if gotR[i] != wantR[i] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestIterSnapshotSemantics: an iterator captures the relation's length at
// creation; rows inserted while draining it are not yielded — the contract
// a naive fixpoint relies on when a rule reads the relation it extends.
func TestIterSnapshotSemantics(t *testing.T) {
	rel := NewRelation(1)
	rel.Insert(Tuple{term.Int(0)})
	rel.Insert(Tuple{term.Int(1)})
	it := rel.Scan()
	var seen int
	for _, ok := it.Next(); ok; _, ok = it.Next() {
		seen++
		rel.Insert(Tuple{term.Int(int64(100 + seen))})
	}
	if seen != 2 {
		t.Errorf("scan yielded %d rows, want the 2 present at creation", seen)
	}
	// Same for an indexed probe whose chain grows mid-iteration.
	rel2 := NewRelation(2)
	rel2.Insert(Tuple{term.Int(1), term.Int(0)})
	rel2.Insert(Tuple{term.Int(1), term.Int(1)})
	it2 := rel2.Probe(1, []term.Value{term.Int(1)})
	seen = 0
	for _, ok := it2.Next(); ok; _, ok = it2.Next() {
		seen++
		rel2.Insert(Tuple{term.Int(1), term.Int(int64(100 + seen))})
	}
	if seen != 2 {
		t.Errorf("probe yielded %d rows, want the 2 present at creation", seen)
	}
}

// TestGrowthBoundaries crosses the dedup and index growth thresholds
// (capacity 16, load factor 3/4 ⇒ growth at 12 entries) and checks
// everything stays findable across the rehash.
func TestGrowthBoundaries(t *testing.T) {
	for _, n := range []int{11, 12, 13, 24, 25, 100} {
		rel := NewRelation(2)
		rel.ProbeIDs(1, []term.Value{term.Int(0)}) // index exists from the start
		for i := 0; i < n; i++ {
			if !rel.Insert(Tuple{term.Int(int64(i)), term.Int(int64(i % 5))}) {
				t.Fatalf("n=%d: insert %d reported duplicate", n, i)
			}
		}
		for i := 0; i < n; i++ {
			tu := Tuple{term.Int(int64(i)), term.Int(int64(i % 5))}
			if !rel.Contains(tu) {
				t.Fatalf("n=%d: tuple %d lost after growth", n, i)
			}
			if got := rel.ProbeIDs(1, tu[:1]); len(got) != 1 || got[0] != RowID(i) {
				t.Fatalf("n=%d: probe for row %d = %v", n, i, got)
			}
		}
	}
}

// TestArityZero: a propositional relation has at most one (empty) row; the
// arena stays empty but Len/Contains/Scan behave.
func TestArityZero(t *testing.T) {
	rel := NewRelation(0)
	if rel.Contains(Tuple{}) {
		t.Error("empty relation contains the empty tuple")
	}
	if !rel.Insert(Tuple{}) {
		t.Error("first insert reported duplicate")
	}
	if rel.Insert(Tuple{}) {
		t.Error("second insert reported new")
	}
	if rel.Len() != 1 || !rel.Contains(Tuple{}) || rel.ArenaLen() != 0 {
		t.Errorf("Len=%d ArenaLen=%d Contains=%v", rel.Len(), rel.ArenaLen(), rel.Contains(Tuple{}))
	}
	n := 0
	it := rel.Scan()
	for _, ok := it.Next(); ok; _, ok = it.Next() {
		n++
	}
	if n != 1 {
		t.Errorf("scan yielded %d rows, want 1", n)
	}
}

// TestInsertAfterReset reuses capacity and keeps dedup/indexes consistent
// (the broader property is TestResetKeepsIndexesConsistent).
func TestInsertAfterReset(t *testing.T) {
	rel := NewRelation(1)
	for i := 0; i < 20; i++ {
		rel.Insert(Tuple{term.Int(int64(i))})
	}
	rel.Reset()
	if rel.Len() != 0 || rel.Contains(Tuple{term.Int(3)}) {
		t.Fatal("Reset left data behind")
	}
	if !rel.Insert(Tuple{term.Int(3)}) {
		t.Error("insert after Reset reported duplicate")
	}
	if rel.Insert(Tuple{term.Int(3)}) {
		t.Error("dedup broken after Reset")
	}
}

// TestSnapshotGoldenCompat proves on-disk compatibility: an LCDB2 file
// written by the pre-refactor implementation (testdata/prerefactor.lcdb2)
// must load identically, and re-saving the loaded database must reproduce
// the original bytes exactly (same symbol, compound and row order).
func TestSnapshotGoldenCompat(t *testing.T) {
	golden, err := os.ReadFile("testdata/prerefactor.lcdb2")
	if err != nil {
		t.Fatal(err)
	}
	db := New(term.NewBank(symtab.New()))
	if err := Load(bytes.NewReader(golden), db); err != nil {
		t.Fatalf("pre-refactor snapshot rejected: %v", err)
	}
	want := New(term.NewBank(symtab.New()))
	if err := want.LoadText(`up(a,b). up(b,c). up(c,d). flat(b,f). down(f,g).
		n(7). n(-3). big(2305843009213693951). pt(p(1,2)). l([1,[2,x]]). flag.`); err != nil {
		t.Fatal(err)
	}
	if db.Format() != want.Format() {
		t.Errorf("golden snapshot loaded to:\n%s\nwant:\n%s", db.Format(), want.Format())
	}
	var out bytes.Buffer
	if err := Save(&out, db); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out.Bytes(), golden) {
		t.Error("re-saving the pre-refactor snapshot changed its bytes")
	}
}

// TestSnapshotRoundTripBytes: Save → Load into a fresh bank → Save yields
// byte-identical output (LCDB2 bytes are unchanged by the arena rebuild).
func TestSnapshotRoundTripBytes(t *testing.T) {
	src := New(term.NewBank(symtab.New()))
	if err := src.LoadText("up(a,b). up(b,c). pt(p(1,q(2))). n(-9). flag."); err != nil {
		t.Fatal(err)
	}
	var first bytes.Buffer
	if err := Save(&first, src); err != nil {
		t.Fatal(err)
	}
	db := New(term.NewBank(symtab.New()))
	if err := Load(bytes.NewReader(first.Bytes()), db); err != nil {
		t.Fatal(err)
	}
	var second bytes.Buffer
	if err := Save(&second, db); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(first.Bytes(), second.Bytes()) {
		t.Error("snapshot round trip changed bytes")
	}
}
