package database

import (
	"bytes"
	"encoding/binary"
	"hash/crc32"
	"testing"

	"lincount/internal/symtab"
	"lincount/internal/term"
)

// FuzzLoadSnapshot checks the snapshot reader never panics or accepts
// structurally invalid input silently. Seeds include valid snapshots and
// systematic corruptions of one.
func FuzzLoadSnapshot(f *testing.F) {
	// A valid snapshot as the primary seed.
	src := New(term.NewBank(symtab.New()))
	if err := src.LoadText("up(a,b). n(7). l([1,2])."); err != nil {
		f.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Save(&buf, src); err != nil {
		f.Fatal(err)
	}
	valid := buf.Bytes()
	f.Add(valid)
	// Truncations.
	for _, n := range []int{0, 3, 5, 8, len(valid) / 2, len(valid) - 1} {
		if n <= len(valid) {
			f.Add(valid[:n])
		}
	}
	// Single-byte corruptions.
	for i := 5; i < len(valid); i += 7 {
		c := append([]byte(nil), valid...)
		c[i] ^= 0xff
		f.Add(c)
	}
	f.Add([]byte("LCDB1"))
	f.Add([]byte("LCDB2"))
	f.Add([]byte("not a snapshot at all"))
	// Legacy V1 form of the primary seed (same payload, old magic, no
	// CRC trailer), plus truncations of it: the pre-trailer parser path.
	v1 := append([]byte(snapshotMagicV1), valid[len(snapshotMagicV2):len(valid)-4]...)
	f.Add(v1)
	f.Add(v1[:len(v1)-3])
	f.Add(v1[:len(v1)/2])
	// A V2 snapshot with a flipped payload byte and a fixed-up trailer:
	// the checksum passes, so the staged parser must reject it for
	// structural reasons or accept it cleanly — never merge halfway.
	fixed := append([]byte(nil), valid...)
	fixed[7] ^= 0x10
	binary.LittleEndian.PutUint32(fixed[len(fixed)-4:], crc32.ChecksumIEEE(fixed[:len(fixed)-4]))
	f.Add(fixed)
	// A cyclic-graph snapshot (the workload that exercises the budget
	// guards at evaluation time), plus corruptions of it.
	cyc := New(term.NewBank(symtab.New()))
	if err := cyc.LoadText("up(a,b). up(b,c). up(c,a). flat(b,f). down(f,g). down(g,h). stop(99999999999)."); err != nil {
		f.Fatal(err)
	}
	var cbuf bytes.Buffer
	if err := Save(&cbuf, cyc); err != nil {
		f.Fatal(err)
	}
	cvalid := cbuf.Bytes()
	f.Add(cvalid)
	f.Add(cvalid[:len(cvalid)/3])
	for i := 9; i < len(cvalid); i += 11 {
		c := append([]byte(nil), cvalid...)
		c[i] ^= 0x55
		f.Add(c)
	}

	// Arena-rebuild seeds: the loader reconstructs each relation's arena,
	// dedup table and indexes from the byte stream, so seed the shapes
	// that stress that path — a declared-but-empty relation, an arity-0
	// (propositional) relation, and a relation sized to land exactly on
	// the open-addressing growth boundary (capacity 16 × load factor 3/4
	// ⇒ rehash at the 12th row).
	arena := New(term.NewBank(symtab.New()))
	if _, err := arena.Ensure(arena.Bank().Symbols().Intern("empty"), 2); err != nil {
		f.Fatal(err)
	}
	if err := arena.LoadText("flag."); err != nil {
		f.Fatal(err)
	}
	grow := make([]byte, 0, 256)
	grow = append(grow, "grow(0)."...)
	for i := 1; i < 13; i++ {
		grow = append(grow, " grow("...)
		grow = append(grow, byte('0'+i/10), byte('0'+i%10))
		grow = append(grow, ")."...)
	}
	if err := arena.LoadText(string(grow)); err != nil {
		f.Fatal(err)
	}
	var abuf bytes.Buffer
	if err := Save(&abuf, arena); err != nil {
		f.Fatal(err)
	}
	avalid := abuf.Bytes()
	f.Add(avalid)
	f.Add(avalid[:len(avalid)-5])
	for i := 6; i < len(avalid); i += 13 {
		c := append([]byte(nil), avalid...)
		c[i] ^= 0x0f
		f.Add(c)
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		db := New(term.NewBank(symtab.New()))
		if err := Load(bytes.NewReader(data), db); err != nil {
			return // rejection is fine
		}
		// Anything accepted must re-save and re-load to identical text.
		var out bytes.Buffer
		if err := Save(&out, db); err != nil {
			t.Fatalf("accepted snapshot does not re-save: %v", err)
		}
		db2 := New(term.NewBank(symtab.New()))
		if err := Load(bytes.NewReader(out.Bytes()), db2); err != nil {
			t.Fatalf("re-saved snapshot does not load: %v", err)
		}
		if db.Format() != db2.Format() {
			t.Fatal("snapshot round trip diverged")
		}
	})
}
