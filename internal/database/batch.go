package database

// Batched probe primitives for the engine's streaming join pipeline.
//
// The row-at-a-time path (Probe/ProbeRange) takes the relation's index
// mutex on every probe to reach the lazily built rowIndex. The batched
// execution pipeline probes the same literal thousands of times per rule
// run against a relation that is frozen for the duration of the run, so
// it resolves the index once into an Index handle and probes through the
// handle with no locking and no map lookup. ProbeRangeBatch additionally
// drains a whole batch of probe keys into one flat []RowMatch, which
// keeps the per-key overhead to a hash and a chain walk.
//
// Pre-sizing: IndexFor and NewRelationSized accept expected-cardinality
// hints (the planner's per-relation stats, threaded through the engine)
// so the open-addressing tables are allocated at their final size up
// front instead of rehashing their way there. A wrong hint costs only
// memory or the usual growth path, never correctness.

import (
	"math/bits"

	"lincount/internal/term"
)

// KeyWidth returns the number of columns covered by mask — the width of
// one probe key for that mask.
func KeyWidth(mask uint64) int { return bits.OnesCount64(mask) }

// RowMatch pairs one probe key of a batch with one matching row: Key is
// the index of the probe within the batch handed to ProbeRangeBatch, Row
// is the matching RowID. Matches for one key are contiguous and in
// ascending RowID (insertion) order.
type RowMatch struct {
	Key int32
	Row RowID
}

// Index is a resolved handle on one (relation, column mask) hash index.
// Probing through the handle takes no lock and performs no map lookup,
// which is safe because the underlying rowIndex, once built, is only
// ever extended in place by the relation's single writer; the handle
// stays coherent with the live relation (probes clamp to the current
// length). Obtain one with IndexFor. The zero value is unusable.
//
// Concurrency: like the Relation itself — safe for concurrent readers,
// not safe to probe while the writer inserts.
type Index struct {
	r  *Relation
	ix *rowIndex // nil when mask == 0: sequential scan
}

// IndexFor resolves (building if needed) the index on mask and returns a
// probe handle. sizeHint is the expected number of distinct keys the
// index will eventually hold; when the index does not exist yet its
// tables are pre-sized so growth up to the hint never rehashes. A hint
// of 0 means unknown. mask 0 yields a scan handle with no index at all.
func (r *Relation) IndexFor(mask uint64, sizeHint int) Index {
	if mask == 0 {
		return Index{r: r}
	}
	return Index{r: r, ix: r.ensureIndexSized(mask, sizeHint)}
}

// ensureIndexSized is ensureIndex with a pre-sizing hint applied when the
// index is first built.
func (r *Relation) ensureIndexSized(mask uint64, sizeHint int) *rowIndex {
	r.indexMu.Lock()
	defer r.indexMu.Unlock()
	if ix, ok := r.indexes[mask]; ok {
		return ix
	}
	ix := &rowIndex{mask: mask}
	if sizeHint > 0 {
		// Slot table at the first power of two keeping the load factor
		// under 3/4 at sizeHint keys; chain storage at the larger of the
		// hint and the rows already present.
		n := 16
		for n*3 < sizeHint*4 {
			n *= 2
		}
		slots := make([]int32, n)
		for i := range slots {
			slots[i] = -1
		}
		ix.slots = slots
		ix.keys = make([]chainKey, 0, sizeHint)
		rh := r.rows
		if sizeHint > rh {
			rh = sizeHint
		}
		ix.next = make([]RowID, 0, rh)
	}
	for id := RowID(0); int(id) < r.rows; id++ {
		r.indexAdd(ix, id)
	}
	r.indexes[mask] = ix
	return ix
}

// ProbeRange is Relation.ProbeRange through the handle: no lock, no map
// lookup. vals lists the masked columns in column order (ignored for a
// mask-0 scan handle).
func (ix Index) ProbeRange(vals []term.Value, lo, hi RowID) RowIter {
	r := ix.r
	if hi > RowID(r.rows) {
		hi = RowID(r.rows)
	}
	if lo >= hi {
		return emptyIter()
	}
	if ix.ix == nil {
		return RowIter{cur: lo, hi: hi}
	}
	k := r.findKey(ix.ix, vals)
	if k < 0 {
		return emptyIter()
	}
	cur := ix.ix.keys[k].head
	for cur != noRow && cur < lo {
		cur = ix.ix.next[cur]
	}
	if cur == noRow || cur >= hi {
		return emptyIter()
	}
	return RowIter{next: ix.ix.next, cur: cur, hi: hi}
}

// ProbeRangeBatch probes nkeys keys at once, restricted to rows in
// [lo, hi), appending every match to dst and returning it. keys holds
// the probe tuples back to back: key i occupies
// keys[i*w : (i+1)*w] where w = KeyWidth(mask); for a mask-0 handle the
// key width is zero and every key matches every row in range. Matches
// are emitted grouped by key, keys in batch order, rows in ascending
// RowID order within a key — exactly the order nkeys sequential
// ProbeRange calls would yield, which is what keeps the batched join
// pipeline's emission order identical to the row-at-a-time path's.
func (ix Index) ProbeRangeBatch(nkeys int, keys []term.Value, lo, hi RowID, dst []RowMatch) []RowMatch {
	r := ix.r
	if hi > RowID(r.rows) {
		hi = RowID(r.rows)
	}
	if lo >= hi || nkeys == 0 {
		return dst
	}
	if ix.ix == nil {
		for i := 0; i < nkeys; i++ {
			for row := lo; row < hi; row++ {
				dst = append(dst, RowMatch{Key: int32(i), Row: row})
			}
		}
		return dst
	}
	w := KeyWidth(ix.ix.mask)
	next := ix.ix.next
	// Batches from the join pipeline often carry runs of identical keys
	// (every frame of an iteration's delta shares the join value at some
	// level), so memoise the previous key's match run — [prevStart,
	// prevStart+prevLen) in dst — and replay it instead of re-probing.
	prevStart, prevLen := -1, 0
	for i := 0; i < nkeys; i++ {
		key := keys[i*w : (i+1)*w]
		if prevStart >= 0 && sameKey(key, keys[(i-1)*w:i*w]) {
			for j := 0; j < prevLen; j++ {
				dst = append(dst, RowMatch{Key: int32(i), Row: dst[prevStart+j].Row})
			}
			// prevStart/prevLen deliberately stay on the first run of this
			// key, so longer runs keep replaying the same range.
			continue
		}
		prevStart = len(dst)
		prevLen = 0
		k := r.findKey(ix.ix, key)
		if k < 0 {
			continue
		}
		cur := ix.ix.keys[k].head
		for cur != noRow && cur < lo {
			cur = next[cur]
		}
		for cur != noRow && cur < hi {
			dst = append(dst, RowMatch{Key: int32(i), Row: cur})
			cur = next[cur]
		}
		prevLen = len(dst) - prevStart
	}
	return dst
}

// sameKey reports whether two probe keys are equal value-for-value.
func sameKey(a, b []term.Value) bool {
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// ProbeRangeBatch is the relation-level convenience over IndexFor — it
// still takes the index mutex once; hot paths should hold an Index.
func (r *Relation) ProbeRangeBatch(mask uint64, nkeys int, keys []term.Value, lo, hi RowID, dst []RowMatch) []RowMatch {
	return r.IndexFor(mask, 0).ProbeRangeBatch(nkeys, keys, lo, hi, dst)
}

// NewRelationSized is NewRelation with the arena and dedup table
// pre-sized for an expected row count, so bulk materialisation (the
// engine's head relations, sized from planner stats) never rehashes or
// reallocates on the way to the expected size. A wrong hint only wastes
// memory or falls back to normal growth.
func NewRelationSized(arity, rows int) *Relation {
	r := NewRelation(arity)
	if rows > 0 {
		r.arena = make([]term.Value, 0, rows*arity)
		n := 16
		for n*3 < rows*4 {
			n *= 2
		}
		slots := make([]RowID, n)
		for i := range slots {
			slots[i] = noRow
		}
		r.dedup.slots = slots
	}
	return r
}
