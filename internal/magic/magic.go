// Package magic implements the magic-set rewriting of adorned programs —
// the general binding-propagation baseline the paper compares the counting
// methods against (§1).
//
// For an adorned rule p_α(t̄) ← B1,…,Bn the rewrite produces
//
//	p_α(t̄) ← m_p_α(bound(t̄)), B1, …, Bn.
//
// and, for every positive derived body literal Bi = q_β with at least one
// bound argument,
//
//	m_q_β(bound(s̄)) ← m_p_α(bound(t̄)), B1, …, Bi−1.
//
// seeded by the fact m_goal(ā) built from the query constants.
package magic

import (
	"errors"
	"fmt"

	"lincount/internal/adorn"
	"lincount/internal/ast"
	"lincount/internal/symtab"
)

// Prefix is prepended to an adorned predicate name to form its magic
// predicate name.
const Prefix = "m_"

// ErrNoBoundArgs is returned when the query has no bound argument: binding
// propagation has nothing to propagate and the original program should be
// used as-is.
var ErrNoBoundArgs = errors.New("magic: query has no bound arguments")

// Rewritten is the output of the magic-set transformation.
type Rewritten struct {
	// Program holds seed fact, magic rules and modified rules.
	Program *ast.Program
	// Query is the goal over the adorned answer predicate.
	Query ast.Query
	// MagicPreds maps each magic predicate to the adorned predicate it
	// restricts.
	MagicPreds map[symtab.Sym]symtab.Sym
}

// Rewrite applies the magic-set transformation to an adorned program.
func Rewrite(a *adorn.Adorned) (*Rewritten, error) {
	bank := a.Program.Bank
	syms := bank.Symbols()

	goalPattern := a.GoalAdornment
	hasBound := false
	for i := 0; i < len(goalPattern); i++ {
		if goalPattern[i] == 'b' {
			hasBound = true
		}
	}
	if !hasBound {
		return nil, ErrNoBoundArgs
	}

	out := &Rewritten{
		Program:    ast.NewProgram(bank),
		Query:      a.Query,
		MagicPreds: map[symtab.Sym]symtab.Sym{},
	}
	magicSym := func(adorned symtab.Sym) symtab.Sym {
		m := syms.Intern(Prefix + syms.String(adorned))
		out.MagicPreds[m] = adorned
		return m
	}

	// Seed: the query's bound arguments are constants by construction.
	goalBound, _ := adorn.BoundArgs(a.Query.Goal, goalPattern)
	for _, t := range goalBound {
		if !t.IsGround() {
			return nil, fmt.Errorf("magic: query bound argument %s is not ground",
				ast.FormatTerm(bank, t))
		}
	}
	out.Program.Add(ast.Rule{Head: ast.Literal{
		Pred: magicSym(a.Query.Goal.Pred),
		Args: goalBound,
	}})

	for _, r := range a.Program.Rules {
		headPattern := a.Patterns[r.Head.Pred]
		headBound, _ := adorn.BoundArgs(r.Head, headPattern)
		var magicLit *ast.Literal
		if hasBoundArg(headPattern) {
			l := ast.Literal{Pred: magicSym(r.Head.Pred), Args: headBound}
			magicLit = &l
		}

		// Magic rules for derived body literals.
		for i, l := range r.Body {
			pat, isDerived := a.Patterns[l.Pred]
			if !isDerived || !hasBoundArg(pat) {
				continue
			}
			if l.Negated {
				return nil, fmt.Errorf("magic: negated derived literal %s is not supported",
					ast.FormatLiteral(bank, l))
			}
			litBound, _ := adorn.BoundArgs(l, pat)
			mr := ast.Rule{Head: ast.Literal{
				Pred: magicSym(l.Pred),
				Args: litBound,
			}}
			if magicLit != nil {
				mr.Body = append(mr.Body, *magicLit)
			}
			mr.Body = append(mr.Body, r.Body[:i]...)
			out.Program.Add(mr)
		}

		// Modified rule.
		modified := ast.Rule{Head: r.Head}
		if magicLit != nil {
			modified.Body = append(modified.Body, *magicLit)
		}
		modified.Body = append(modified.Body, r.Body...)
		out.Program.Add(modified)
	}
	return out, nil
}

func hasBoundArg(pattern string) bool {
	for i := 0; i < len(pattern); i++ {
		if pattern[i] == 'b' {
			return true
		}
	}
	return false
}
