package magic

import (
	"errors"
	"fmt"
	"strings"
	"testing"

	"lincount/internal/adorn"
	"lincount/internal/ast"
	"lincount/internal/database"
	"lincount/internal/engine"
	"lincount/internal/parser"
	"lincount/internal/symtab"
	"lincount/internal/term"
)

func rewrite(t *testing.T, src, goal string) (*term.Bank, *Rewritten) {
	t.Helper()
	b := term.NewBank(symtab.New())
	res, err := parser.Parse(b, src)
	if err != nil {
		t.Fatal(err)
	}
	q, err := parser.ParseQuery(b, goal)
	if err != nil {
		t.Fatal(err)
	}
	a, err := adorn.Adorn(res.Program, q)
	if err != nil {
		t.Fatal(err)
	}
	rw, err := Rewrite(a)
	if err != nil {
		t.Fatal(err)
	}
	return b, rw
}

// TestExample1MagicProgram reproduces the magic-set program of the paper's
// Example 1 (modulo the _bf adornment suffix our naming keeps explicit).
func TestExample1MagicProgram(t *testing.T) {
	b, rw := rewrite(t, `
sg(X,Y) :- flat(X,Y).
sg(X,Y) :- up(X,X1), sg(X1,Y1), down(Y1,Y).
`, "?- sg(a,Y).")
	want := map[string]bool{
		"m_sg_bf(a).":                                                   true,
		"m_sg_bf(X1) :- m_sg_bf(X), up(X,X1).":                          true,
		"sg_bf(X,Y) :- m_sg_bf(X), flat(X,Y).":                          true,
		"sg_bf(X,Y) :- m_sg_bf(X), up(X,X1), sg_bf(X1,Y1), down(Y1,Y).": true,
	}
	got := map[string]bool{}
	for _, r := range rw.Program.Rules {
		got[ast.FormatRule(b, r)] = true
	}
	if len(got) != len(want) {
		t.Fatalf("program:\n%s", rw.Program.Format())
	}
	for w := range want {
		if !got[w] {
			t.Errorf("missing rule %s in:\n%s", w, rw.Program.Format())
		}
	}
	if gq := ast.FormatQuery(b, rw.Query); gq != "?- sg_bf(a,Y)." {
		t.Errorf("query = %s", gq)
	}
}

func TestMagicEquivalentToPlainEvaluation(t *testing.T) {
	b := term.NewBank(symtab.New())
	db := database.New(b)
	if err := db.LoadText(`
up(a,b). up(b,c). up(c,d). up(z,w).
flat(d,d2). flat(c,c2). flat(w,w2).
down(d2,c3). down(c3,b3). down(b3,a3). down(c2,x).
`); err != nil {
		t.Fatal(err)
	}
	src := `
sg(X,Y) :- flat(X,Y).
sg(X,Y) :- up(X,X1), sg(X1,Y1), down(Y1,Y).
`
	res, err := parser.Parse(b, src)
	if err != nil {
		t.Fatal(err)
	}
	q, err := parser.ParseQuery(b, "?- sg(a,Y).")
	if err != nil {
		t.Fatal(err)
	}

	plain, err := engine.Eval(res.Program, db, engine.Options{})
	if err != nil {
		t.Fatal(err)
	}
	plainAns := engine.Answers(plain, db, q)

	a, err := adorn.Adorn(res.Program, q)
	if err != nil {
		t.Fatal(err)
	}
	rw, err := Rewrite(a)
	if err != nil {
		t.Fatal(err)
	}
	magicRes, err := engine.Eval(rw.Program, db, engine.Options{})
	if err != nil {
		t.Fatal(err)
	}
	magicAns := engine.Answers(magicRes, db, rw.Query)

	if fmt.Sprint(plainAns) != fmt.Sprint(magicAns) {
		t.Errorf("plain answers %v, magic answers %v", plainAns, magicAns)
	}
	// The magic evaluation must not touch the unreachable z/w branch.
	sgbf := magicRes.Relation(b.Symbols().Intern("sg_bf"))
	for _, tu := range sgbf.Tuples() {
		if b.Format(tu[0]) == "w" {
			t.Error("magic evaluation derived irrelevant sg tuple for w")
		}
	}
	// The restriction shows up in the answer relation: magic computes
	// fewer sg tuples than bottom-up (the z/w branch is skipped).
	plainSG := plain.Relation(b.Symbols().Intern("sg"))
	if sgbf.Len() >= plainSG.Len() {
		t.Errorf("magic computed %d sg tuples, plain %d: no restriction happened",
			sgbf.Len(), plainSG.Len())
	}
}

func TestMagicNoBoundArgs(t *testing.T) {
	b := term.NewBank(symtab.New())
	res, err := parser.Parse(b, "p(X,Y) :- e(X,Y).\n")
	if err != nil {
		t.Fatal(err)
	}
	q, err := parser.ParseQuery(b, "?- p(X,Y).")
	if err != nil {
		t.Fatal(err)
	}
	a, err := adorn.Adorn(res.Program, q)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Rewrite(a); !errors.Is(err, ErrNoBoundArgs) {
		t.Errorf("err = %v, want ErrNoBoundArgs", err)
	}
}

func TestMagicMultipleRecursiveRules(t *testing.T) {
	b, rw := rewrite(t, `
sg(X,Y) :- flat(X,Y).
sg(X,Y) :- up1(X,X1), sg(X1,Y1), down1(Y1,Y).
sg(X,Y) :- up2(X,X1), sg(X1,Y1), down2(Y1,Y).
`, "?- sg(a,Y).")
	text := rw.Program.Format()
	if !strings.Contains(text, "m_sg_bf(X1) :- m_sg_bf(X), up1(X,X1).") ||
		!strings.Contains(text, "m_sg_bf(X1) :- m_sg_bf(X), up2(X,X1).") {
		t.Errorf("missing magic rules:\n%s", text)
	}
	_ = b
}

func TestMagicNonLinearProgram(t *testing.T) {
	// Magic sets must handle non-linear rules too (counting cannot).
	b := term.NewBank(symtab.New())
	db := database.New(b)
	if err := db.LoadText("e(a,b). e(b,c). e(c,d)."); err != nil {
		t.Fatal(err)
	}
	src := `
tc(X,Y) :- e(X,Y).
tc(X,Y) :- tc(X,Z), tc(Z,Y).
`
	res, err := parser.Parse(b, src)
	if err != nil {
		t.Fatal(err)
	}
	q, err := parser.ParseQuery(b, "?- tc(a,Y).")
	if err != nil {
		t.Fatal(err)
	}
	a, err := adorn.Adorn(res.Program, q)
	if err != nil {
		t.Fatal(err)
	}
	rw, err := Rewrite(a)
	if err != nil {
		t.Fatal(err)
	}
	mres, err := engine.Eval(rw.Program, db, engine.Options{})
	if err != nil {
		t.Fatal(err)
	}
	ans := engine.Answers(mres, db, rw.Query)
	if len(ans) != 3 {
		t.Errorf("tc(a,Y) via magic = %v", ans)
	}
}

func TestMagicBoundSecondArgument(t *testing.T) {
	b := term.NewBank(symtab.New())
	db := database.New(b)
	if err := db.LoadText("e(a,b). e(b,c)."); err != nil {
		t.Fatal(err)
	}
	res, err := parser.Parse(b, `
tc(X,Y) :- e(X,Y).
tc(X,Y) :- e(X,Z), tc(Z,Y).
`)
	if err != nil {
		t.Fatal(err)
	}
	q, err := parser.ParseQuery(b, "?- tc(X,c).")
	if err != nil {
		t.Fatal(err)
	}
	a, err := adorn.Adorn(res.Program, q)
	if err != nil {
		t.Fatal(err)
	}
	rw, err := Rewrite(a)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(rw.Program.Format(), "tc_fb") {
		t.Errorf("program:\n%s", rw.Program.Format())
	}
	mres, err := engine.Eval(rw.Program, db, engine.Options{})
	if err != nil {
		t.Fatal(err)
	}
	ans := engine.Answers(mres, db, rw.Query)
	if len(ans) != 2 { // a→c and b→c
		t.Errorf("tc(X,c) = %v", ans)
	}
}
