package magic

import (
	"fmt"
	"sort"

	"lincount/internal/adorn"
	"lincount/internal/ast"
	"lincount/internal/symtab"
)

// RewriteSupplementary applies the supplementary magic-set transformation
// (Beeri & Ramakrishnan, "On the power of magic" — reference [6] of the
// paper). Plain magic rules re-evaluate the join prefix B1…Bi−1 once per
// derived body literal; the supplementary variant materializes each prefix
// once:
//
//	sup_r_0(V0)  ← m_p_α(bound(t̄)).
//	sup_r_i(Vi)  ← sup_r_{i−1}(Vi−1), Bi.            (i = 1…n)
//	m_q_β(bound(s̄)) ← sup_r_{i−1}(Vi−1).             (Bi = q_β derived)
//	p_α(t̄)       ← sup_r_n(Vn).
//
// where Vi is the set of variables bound after B1…Bi that are still needed
// by Bi+1…Bn or the head. Prefix predicates that would merely copy their
// predecessor (no derived literal consumes them and the variable set is
// unchanged) are elided, so simple rules come out close to the plain magic
// form.
func RewriteSupplementary(a *adorn.Adorned) (*Rewritten, error) {
	bank := a.Program.Bank
	syms := bank.Symbols()

	if !hasBoundArg(a.GoalAdornment) {
		return nil, ErrNoBoundArgs
	}

	out := &Rewritten{
		Program:    ast.NewProgram(bank),
		Query:      a.Query,
		MagicPreds: map[symtab.Sym]symtab.Sym{},
	}
	magicSym := func(adorned symtab.Sym) symtab.Sym {
		m := syms.Intern(Prefix + syms.String(adorned))
		out.MagicPreds[m] = adorned
		return m
	}

	goalBound, _ := adorn.BoundArgs(a.Query.Goal, a.GoalAdornment)
	for _, t := range goalBound {
		if !t.IsGround() {
			return nil, fmt.Errorf("magic: query bound argument %s is not ground",
				ast.FormatTerm(bank, t))
		}
	}
	out.Program.Add(ast.Rule{Head: ast.Literal{
		Pred: magicSym(a.Query.Goal.Pred),
		Args: goalBound,
	}})

	for ri, r := range a.Program.Rules {
		headPattern := a.Patterns[r.Head.Pred]
		headBound, _ := adorn.BoundArgs(r.Head, headPattern)

		// Variables needed at or after position i (by Bi..Bn or the head).
		n := len(r.Body)
		neededAt := make([]map[symtab.Sym]bool, n+1)
		neededAt[n] = map[symtab.Sym]bool{}
		for _, v := range r.Head.Vars() {
			neededAt[n][v] = true
		}
		for i := n - 1; i >= 0; i-- {
			neededAt[i] = map[symtab.Sym]bool{}
			for v := range neededAt[i+1] {
				neededAt[i][v] = true
			}
			for _, v := range r.Body[i].Vars() {
				neededAt[i][v] = true
			}
		}

		// Bound variables after the magic literal and each prefix.
		bound := map[symtab.Sym]bool{}
		for _, t := range headBound {
			for _, v := range (ast.Literal{Args: []ast.Term{t}}).Vars() {
				bound[v] = true
			}
		}

		supVars := func(i int) []symtab.Sym {
			var vs []symtab.Sym
			for v := range bound {
				if neededAt[i][v] {
					vs = append(vs, v)
				}
			}
			sort.Slice(vs, func(x, y int) bool {
				return syms.String(vs[x]) < syms.String(vs[y])
			})
			return vs
		}
		supLit := func(i int, vs []symtab.Sym) ast.Literal {
			name := fmt.Sprintf("sup_%d_%d_%s", ri, i, syms.String(r.Head.Pred))
			args := make([]ast.Term, len(vs))
			for j, v := range vs {
				args[j] = ast.V(v)
			}
			return ast.Literal{Pred: syms.Intern(name), Args: args}
		}

		// The running "previous" literal: starts as the magic literal (or
		// nothing if the head pattern has no bound argument).
		var prev *ast.Literal
		if hasBoundArg(headPattern) {
			l := ast.Literal{Pred: magicSym(r.Head.Pred), Args: headBound}
			prev = &l
		}
		// Pending body literals joined since the last materialized sup.
		var pending []ast.Literal

		flushInto := func(head ast.Literal) {
			rule := ast.Rule{Head: head}
			if prev != nil {
				rule.Body = append(rule.Body, *prev)
			}
			rule.Body = append(rule.Body, pending...)
			out.Program.Add(rule)
		}

		for i, l := range r.Body {
			pat, isDerived := a.Patterns[l.Pred]
			if isDerived && hasBoundArg(pat) {
				if l.Negated {
					return nil, fmt.Errorf("magic: negated derived literal %s is not supported",
						ast.FormatLiteral(bank, l))
				}
				// Materialize the prefix sup_{i} if anything was joined
				// since the previous materialization.
				if len(pending) > 0 {
					vs := supVars(i)
					head := supLit(i, vs)
					flushInto(head)
					prev = &head
					pending = nil
				}
				// Magic rule from the current prefix.
				litBound, _ := adorn.BoundArgs(l, pat)
				mr := ast.Rule{Head: ast.Literal{Pred: magicSym(l.Pred), Args: litBound}}
				if prev != nil {
					mr.Body = append(mr.Body, *prev)
				} else {
					// Degenerate: no binding context at all.
					mr.Body = append(mr.Body, pending...)
				}
				out.Program.Add(mr)
			}
			pending = append(pending, l)
			for _, v := range l.Vars() {
				bound[v] = true
			}
			_ = i
		}

		// Modified rule from the final prefix.
		flushInto(r.Head)
	}
	return out, nil
}
