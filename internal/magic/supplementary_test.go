package magic

import (
	"fmt"
	"strings"
	"testing"

	"lincount/internal/adorn"
	"lincount/internal/database"
	"lincount/internal/engine"
	"lincount/internal/parser"
	"lincount/internal/symtab"
	"lincount/internal/term"
)

func rewriteSup(t *testing.T, src, goal string) (*term.Bank, *Rewritten) {
	t.Helper()
	b := term.NewBank(symtab.New())
	res, err := parser.Parse(b, src)
	if err != nil {
		t.Fatal(err)
	}
	q, err := parser.ParseQuery(b, goal)
	if err != nil {
		t.Fatal(err)
	}
	a, err := adorn.Adorn(res.Program, q)
	if err != nil {
		t.Fatal(err)
	}
	rw, err := RewriteSupplementary(a)
	if err != nil {
		t.Fatal(err)
	}
	return b, rw
}

func TestSupplementaryStructure(t *testing.T) {
	b, rw := rewriteSup(t, `
sg(X,Y) :- flat(X,Y).
sg(X,Y) :- up(X,X1), sg(X1,Y1), down(Y1,Y).
`, "?- sg(a,Y).")
	text := rw.Program.Format()
	// The recursive rule materializes the prefix m_sg, up before the
	// recursive call, and the magic rule reads the sup predicate.
	if !strings.Contains(text, "sup_1_1_sg_bf(") {
		t.Errorf("missing supplementary predicate in:\n%s", text)
	}
	if !strings.Contains(text, "m_sg_bf(X1) :- sup_1_1_sg_bf(") {
		t.Errorf("magic rule does not read the supplementary predicate:\n%s", text)
	}
	_ = b
}

func TestSupplementaryExitRuleStaysSimple(t *testing.T) {
	_, rw := rewriteSup(t, `
sg(X,Y) :- flat(X,Y).
sg(X,Y) :- up(X,X1), sg(X1,Y1), down(Y1,Y).
`, "?- sg(a,Y).")
	// The exit rule has no derived body literal: no sup predicate is
	// introduced for it.
	for _, r := range rw.Program.Rules {
		name := rw.Program.Bank.Symbols().String(r.Head.Pred)
		if strings.HasPrefix(name, "sup_0_") {
			t.Errorf("exit rule grew a supplementary predicate: %s", rw.Program.Format())
		}
	}
}

func supEvalAnswers(t *testing.T, src, goal, facts string, sup bool) []string {
	t.Helper()
	b := term.NewBank(symtab.New())
	db := database.New(b)
	if err := db.LoadText(facts); err != nil {
		t.Fatal(err)
	}
	res, err := parser.Parse(b, src)
	if err != nil {
		t.Fatal(err)
	}
	q, err := parser.ParseQuery(b, goal)
	if err != nil {
		t.Fatal(err)
	}
	a, err := adorn.Adorn(res.Program, q)
	if err != nil {
		t.Fatal(err)
	}
	var rw *Rewritten
	if sup {
		rw, err = RewriteSupplementary(a)
	} else {
		rw, err = Rewrite(a)
	}
	if err != nil {
		t.Fatal(err)
	}
	eres, err := engine.Eval(rw.Program, db, engine.Options{})
	if err != nil {
		t.Fatal(err)
	}
	var out []string
	for _, tu := range engine.Answers(eres, db, rw.Query) {
		parts := make([]string, len(tu))
		for i, v := range tu {
			parts[i] = b.Format(v)
		}
		out = append(out, strings.Join(parts, ","))
	}
	return out
}

func TestSupplementaryAgreesWithPlainMagic(t *testing.T) {
	cases := []struct{ src, goal, facts string }{
		{
			`sg(X,Y) :- flat(X,Y).
sg(X,Y) :- up(X,X1), sg(X1,Y1), down(Y1,Y).`,
			"?- sg(a,Y).",
			`up(a,b). up(b,c). flat(c,c2). flat(b,b2).
down(c2,x1). down(x1,x2). down(b2,x3).`,
		},
		{
			`tc(X,Y) :- e(X,Y).
tc(X,Y) :- tc(X,Z), tc(Z,Y).`,
			"?- tc(a,Y).",
			"e(a,b). e(b,c). e(c,d). e(d,b).",
		},
		{
			`p(X,Y) :- flat(X,Y).
p(X,Y) :- up(X,X1), q(X1,Y1), down(Y1,Y).
q(X,Y) :- over(X,X1), p(X1,Y1), under(Y1,Y).`,
			"?- p(s,Y).",
			`up(s,m). over(m,k). flat(k,k2). flat(s,s2).
under(k2,u1). down(u1,v1).`,
		},
	}
	for i, c := range cases {
		plain := supEvalAnswers(t, c.src, c.goal, c.facts, false)
		sup := supEvalAnswers(t, c.src, c.goal, c.facts, true)
		if fmt.Sprint(plain) != fmt.Sprint(sup) {
			t.Errorf("case %d: plain %v, supplementary %v", i, plain, sup)
		}
	}
}

func TestSupplementarySavesPrefixWork(t *testing.T) {
	// A rule with two derived body literals re-joins the prefix twice in
	// plain magic; the supplementary variant materializes it once.
	src := `
r(X,Y) :- e(X,Y).
r(X,Y) :- a(X,W), b(W,X1), r(X1,M), c(M,X2), r(X2,Y).
`
	var facts strings.Builder
	for i := 0; i < 30; i++ {
		fmt.Fprintf(&facts, "a(n%d,w%d). b(w%d,n%d). e(n%d,n%d). c(n%d,n%d). ",
			i, i, i, i+1, i, i, i, i)
	}
	b := term.NewBank(symtab.New())
	db := database.New(b)
	if err := db.LoadText(facts.String()); err != nil {
		t.Fatal(err)
	}
	res, err := parser.Parse(b, src)
	if err != nil {
		t.Fatal(err)
	}
	q, err := parser.ParseQuery(b, "?- r(n0,Y).")
	if err != nil {
		t.Fatal(err)
	}
	a, err := adorn.Adorn(res.Program, q)
	if err != nil {
		t.Fatal(err)
	}
	sup, err := RewriteSupplementary(a)
	if err != nil {
		t.Fatal(err)
	}
	plain, err := Rewrite(a)
	if err != nil {
		t.Fatal(err)
	}
	supRes, err := engine.Eval(sup.Program, db, engine.Options{})
	if err != nil {
		t.Fatal(err)
	}
	plainRes, err := engine.Eval(plain.Program, db, engine.Options{})
	if err != nil {
		t.Fatal(err)
	}
	supAns := engine.Answers(supRes, db, sup.Query)
	plainAns := engine.Answers(plainRes, db, plain.Query)
	if fmt.Sprint(supAns) != fmt.Sprint(plainAns) {
		t.Fatalf("answers differ: %v vs %v", supAns, plainAns)
	}
	if supRes.Stats.Probes >= plainRes.Stats.Probes {
		t.Errorf("supplementary probes %d >= plain %d: prefix not shared",
			supRes.Stats.Probes, plainRes.Stats.Probes)
	}
}

func TestSupplementaryNoBoundArgs(t *testing.T) {
	b := term.NewBank(symtab.New())
	res, err := parser.Parse(b, "p(X,Y) :- e(X,Y).\n")
	if err != nil {
		t.Fatal(err)
	}
	q, err := parser.ParseQuery(b, "?- p(X,Y).")
	if err != nil {
		t.Fatal(err)
	}
	a, err := adorn.Adorn(res.Program, q)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := RewriteSupplementary(a); err == nil {
		t.Error("expected ErrNoBoundArgs")
	}
}
