package ast

import (
	"strings"
	"testing"

	"lincount/internal/symtab"
	"lincount/internal/term"
)

func newBank() *term.Bank { return term.NewBank(symtab.New()) }

func sym(b *term.Bank, s string) symtab.Sym { return b.Symbols().Intern(s) }

func TestMkInternsGroundCompounds(t *testing.T) {
	b := newBank()
	f := sym(b, "f")
	ground := Mk(b, f, C(term.Int(1)), C(term.Int(2)))
	if ground.Kind != Const {
		t.Fatalf("ground compound kind = %d, want Const", ground.Kind)
	}
	nonGround := Mk(b, f, C(term.Int(1)), V(sym(b, "X")))
	if nonGround.Kind != Comp {
		t.Fatalf("non-ground compound kind = %d, want Comp", nonGround.Kind)
	}
	// Interning again yields the same handle.
	again := Mk(b, f, C(term.Int(1)), C(term.Int(2)))
	if again.Value != ground.Value {
		t.Error("ground compound not interned consistently")
	}
}

func TestMkListGroundAndOpen(t *testing.T) {
	b := newBank()
	g := MkList(b, []Term{C(term.Int(1)), C(term.Int(2))}, NilTerm(b))
	if g.Kind != Const {
		t.Error("ground list not interned")
	}
	if got := FormatTerm(b, g); got != "[1,2]" {
		t.Errorf("format = %q", got)
	}
	open := MkList(b, []Term{C(term.Int(1))}, V(sym(b, "T")))
	if open.Kind != Comp {
		t.Error("open list should be Comp")
	}
	if got := FormatTerm(b, open); got != "[1|T]" {
		t.Errorf("format = %q", got)
	}
}

func TestFormatListWithGroundTailSplices(t *testing.T) {
	b := newBank()
	groundTail := C(b.List(term.Int(2), term.Int(3)))
	l := MkList(b, []Term{V(sym(b, "X"))}, groundTail)
	if got := FormatTerm(b, l); got != "[X,2,3]" {
		t.Errorf("format = %q, want [X,2,3]", got)
	}
}

func TestTermEqual(t *testing.T) {
	b := newBank()
	f := sym(b, "f")
	x, y := V(sym(b, "X")), V(sym(b, "Y"))
	cases := []struct {
		a, bb Term
		want  bool
	}{
		{C(term.Int(1)), C(term.Int(1)), true},
		{C(term.Int(1)), C(term.Int(2)), false},
		{x, x, true},
		{x, y, false},
		{Mk(b, f, x), Mk(b, f, x), true},
		{Mk(b, f, x), Mk(b, f, y), false},
		{Mk(b, f, x), x, false},
	}
	for i, c := range cases {
		if c.a.Equal(c.bb) != c.want {
			t.Errorf("case %d: Equal = %v", i, !c.want)
		}
	}
}

func TestSubstIntersGroundResults(t *testing.T) {
	b := newBank()
	f := sym(b, "f")
	x := sym(b, "X")
	tm := Mk(b, f, V(x), C(term.Int(7)))
	s := map[symtab.Sym]Term{x: C(term.Int(3))}
	got := tm.Subst(b, s)
	if got.Kind != Const {
		t.Fatal("fully substituted compound not interned")
	}
	if FormatTerm(b, got) != "f(3,7)" {
		t.Errorf("subst result = %s", FormatTerm(b, got))
	}
	// Unmapped variables stay.
	tm2 := Mk(b, f, V(x), V(sym(b, "Y")))
	got2 := tm2.Subst(b, s)
	if got2.Kind != Comp {
		t.Error("partially substituted compound should stay Comp")
	}
}

func TestRename(t *testing.T) {
	b := newBank()
	x, x2 := sym(b, "X"), sym(b, "X_2")
	l := Atom(sym(b, "p"), V(x), Mk(b, sym(b, "f"), V(x)))
	r := l.Rename(b, func(s symtab.Sym) symtab.Sym {
		if s == x {
			return x2
		}
		return s
	})
	if got := FormatLiteral(b, r); got != "p(X_2,f(X_2))" {
		t.Errorf("renamed = %s", got)
	}
}

func TestLiteralVarsOrderAndDedup(t *testing.T) {
	b := newBank()
	x, y := sym(b, "X"), sym(b, "Y")
	l := Atom(sym(b, "p"), V(x), V(y), V(x), Mk(b, sym(b, "f"), V(y)))
	vs := l.Vars()
	if len(vs) != 2 || vs[0] != x || vs[1] != y {
		t.Errorf("Vars = %v", vs)
	}
}

func TestRuleVarsHeadFirst(t *testing.T) {
	b := newBank()
	x, y, z := sym(b, "X"), sym(b, "Y"), sym(b, "Z")
	r := Rule{
		Head: Atom(sym(b, "p"), V(y)),
		Body: []Literal{Atom(sym(b, "q"), V(x), V(y), V(z))},
	}
	vs := r.Vars()
	if len(vs) != 3 || vs[0] != y || vs[1] != x || vs[2] != z {
		t.Errorf("Vars = %v", vs)
	}
}

func TestIsFact(t *testing.T) {
	b := newBank()
	p := sym(b, "p")
	fact := Rule{Head: Atom(p, C(term.Int(1)))}
	if !fact.IsFact() {
		t.Error("ground bodiless rule not a fact")
	}
	withVar := Rule{Head: Atom(p, V(sym(b, "X")))}
	if withVar.IsFact() {
		t.Error("non-ground head accepted as fact")
	}
	withBody := Rule{Head: Atom(p, C(term.Int(1))), Body: []Literal{Atom(p, C(term.Int(2)))}}
	if withBody.IsFact() {
		t.Error("rule with body accepted as fact")
	}
}

func TestProgramHelpers(t *testing.T) {
	b := newBank()
	p := NewProgram(b)
	pp, q := sym(b, "p"), sym(b, "q")
	p.Add(
		Rule{Head: Atom(q, C(term.Int(1)))},
		Rule{Head: Atom(pp, C(term.Int(1)))},
		Rule{Head: Atom(pp, C(term.Int(2)))},
	)
	preds := p.Predicates()
	if len(preds) != 2 || preds[0] != pp || preds[1] != q {
		t.Errorf("Predicates = %v (want sorted p,q)", preds)
	}
	if got := len(p.RulesFor(pp)); got != 2 {
		t.Errorf("RulesFor(p) = %d", got)
	}
	clone := p.Clone()
	clone.Rules[0].Head.Pred = sym(b, "z")
	if p.Rules[0].Head.Pred != q {
		t.Error("Clone shares rule storage")
	}
}

func TestFormatRuleShapes(t *testing.T) {
	b := newBank()
	p, q := sym(b, "p"), sym(b, "q")
	x := V(sym(b, "X"))
	cases := []struct {
		r    Rule
		want string
	}{
		{Rule{Head: Atom(p)}, "p."},
		{Rule{Head: Atom(p, C(term.Int(1)))}, "p(1)."},
		{Rule{Head: Atom(p, x), Body: []Literal{Atom(q, x)}}, "p(X) :- q(X)."},
		{Rule{Head: Atom(p, x), Body: []Literal{NegAtom(q, x)}}, "p(X) :- not q(X)."},
		{Rule{Head: Atom(p, x), Body: []Literal{
			Atom(sym(b, BuiltinNeq), x, C(term.Int(0))),
		}}, "p(X) :- X != 0."},
		{Rule{Head: Atom(p, x), Body: []Literal{
			Atom(sym(b, BuiltinSucc), x, C(term.Int(1))),
		}}, "p(X) :- succ(X,1)."},
	}
	for _, c := range cases {
		if got := FormatRule(b, c.r); got != c.want {
			t.Errorf("FormatRule = %q, want %q", got, c.want)
		}
	}
}

func TestFormatQueryAndProgram(t *testing.T) {
	b := newBank()
	p := NewProgram(b)
	pr := sym(b, "p")
	p.Add(Rule{Head: Atom(pr, C(term.Int(1)))})
	if got := p.Format(); got != "p(1).\n" {
		t.Errorf("Format = %q", got)
	}
	q := Query{Goal: Atom(pr, V(sym(b, "X")))}
	if got := FormatQuery(b, q); got != "?- p(X)." {
		t.Errorf("FormatQuery = %q", got)
	}
	if p.String() != p.Format() {
		t.Error("String != Format")
	}
}

func TestIsBuiltinName(t *testing.T) {
	for _, n := range []string{"=", "!=", "<", "<=", ">", ">=", "succ"} {
		if !IsBuiltinName(n) {
			t.Errorf("%q not recognized as builtin", n)
		}
	}
	for _, n := range []string{"p", "up", "cons", ""} {
		if IsBuiltinName(n) {
			t.Errorf("%q wrongly recognized as builtin", n)
		}
	}
}

func TestRuleEqualAndSubst(t *testing.T) {
	b := newBank()
	p, q := sym(b, "p"), sym(b, "q")
	x := sym(b, "X")
	r1 := Rule{Head: Atom(p, V(x)), Body: []Literal{Atom(q, V(x))}}
	r2 := Rule{Head: Atom(p, V(x)), Body: []Literal{Atom(q, V(x))}}
	if !r1.Equal(r2) {
		t.Error("identical rules not Equal")
	}
	s := map[symtab.Sym]Term{x: C(term.Int(9))}
	r3 := r1.Subst(b, s)
	if r1.Equal(r3) {
		t.Error("substitution did not change the rule")
	}
	if got := FormatRule(b, r3); got != "p(9) :- q(9)." {
		t.Errorf("subst rule = %q", got)
	}
}

func TestFormatLongProgramIsStable(t *testing.T) {
	b := newBank()
	p := NewProgram(b)
	pr := sym(b, "edge")
	for i := 0; i < 50; i++ {
		p.Add(Rule{Head: Atom(pr, C(term.Int(int64(i))), C(term.Int(int64(i+1))))})
	}
	f1, f2 := p.Format(), p.Format()
	if f1 != f2 {
		t.Error("Format not deterministic")
	}
	if strings.Count(f1, "\n") != 50 {
		t.Errorf("line count = %d", strings.Count(f1, "\n"))
	}
}
