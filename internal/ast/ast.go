// Package ast defines the abstract syntax of Datalog programs: terms with
// variables, literals, rules, programs and queries, plus the traversal and
// substitution helpers the rewriters are built from.
//
// Ground constants are term.Value handles interned in a term.Bank; all
// formatting therefore needs the bank that owns the program.
package ast

import (
	"fmt"
	"sort"
	"strings"

	"lincount/internal/symtab"
	"lincount/internal/term"
)

// TermKind discriminates the three syntactic term shapes.
type TermKind uint8

const (
	// Const is a ground value (integer, symbol or interned compound).
	Const TermKind = iota
	// Var is a named logic variable.
	Var
	// Comp is a compound term with at least one variable somewhere below
	// it. Fully ground compounds are interned into the bank and become
	// Const, so Comp never needs hashing during evaluation.
	Comp
)

// Term is a syntactic term: a constant, a variable, or a non-ground
// compound.
type Term struct {
	Kind  TermKind
	Value term.Value // Const only
	Name  symtab.Sym // Var: variable name; Comp: functor
	Args  []Term     // Comp only
}

// C wraps a ground value as a constant term.
func C(v term.Value) Term { return Term{Kind: Const, Value: v} }

// V wraps a variable name as a variable term.
func V(name symtab.Sym) Term { return Term{Kind: Var, Name: name} }

// Mk builds a compound term, interning it into the bank when every argument
// is ground (so ground compounds are always Const).
func Mk(b *term.Bank, functor symtab.Sym, args ...Term) Term {
	ground := true
	for _, a := range args {
		if a.Kind != Const {
			ground = false
			break
		}
	}
	if ground {
		vals := make([]term.Value, len(args))
		for i, a := range args {
			vals[i] = a.Value
		}
		return C(b.Compound(functor, vals...))
	}
	return Term{Kind: Comp, Name: functor, Args: args}
}

// MkList builds a list term [e1,...,en|tail], interning ground prefixes.
func MkList(b *term.Bank, elems []Term, tail Term) Term {
	consSym := b.Symbols().Intern(term.ListConsName)
	t := tail
	for i := len(elems) - 1; i >= 0; i-- {
		t = Mk(b, consSym, elems[i], t)
	}
	return t
}

// NilTerm returns the empty-list constant.
func NilTerm(b *term.Bank) Term { return C(b.Nil()) }

// IsGround reports whether t contains no variables.
func (t Term) IsGround() bool { return t.Kind == Const }

// Vars appends the variables occurring in t, in order of first occurrence,
// to dst (without duplicates against seen) and returns the extended slice.
func (t Term) vars(dst []symtab.Sym, seen map[symtab.Sym]bool) []symtab.Sym {
	switch t.Kind {
	case Var:
		if !seen[t.Name] {
			seen[t.Name] = true
			dst = append(dst, t.Name)
		}
	case Comp:
		for _, a := range t.Args {
			dst = a.vars(dst, seen)
		}
	}
	return dst
}

// Equal reports structural equality of two syntactic terms.
func (t Term) Equal(o Term) bool {
	if t.Kind != o.Kind {
		return false
	}
	switch t.Kind {
	case Const:
		return t.Value == o.Value
	case Var:
		return t.Name == o.Name
	default:
		if t.Name != o.Name || len(t.Args) != len(o.Args) {
			return false
		}
		for i := range t.Args {
			if !t.Args[i].Equal(o.Args[i]) {
				return false
			}
		}
		return true
	}
}

// Subst applies a variable substitution, interning any compound that becomes
// ground. Unmapped variables are left in place.
func (t Term) Subst(b *term.Bank, s map[symtab.Sym]Term) Term {
	switch t.Kind {
	case Const:
		return t
	case Var:
		if r, ok := s[t.Name]; ok {
			return r
		}
		return t
	default:
		args := make([]Term, len(t.Args))
		for i, a := range t.Args {
			args[i] = a.Subst(b, s)
		}
		return Mk(b, t.Name, args...)
	}
}

// Rename renames every variable via f, preserving structure.
func (t Term) Rename(b *term.Bank, f func(symtab.Sym) symtab.Sym) Term {
	switch t.Kind {
	case Const:
		return t
	case Var:
		return V(f(t.Name))
	default:
		args := make([]Term, len(t.Args))
		for i, a := range t.Args {
			args[i] = a.Rename(b, f)
		}
		return Mk(b, t.Name, args...)
	}
}

// Builtin predicate names recognized by the engine. They are ordinary
// predicate symbols syntactically; the engine gives them fixed meaning.
const (
	BuiltinEq   = "="
	BuiltinNeq  = "!="
	BuiltinLt   = "<"
	BuiltinLe   = "<="
	BuiltinGt   = ">"
	BuiltinGe   = ">="
	BuiltinSucc = "succ" // succ(X, Y) ⇔ Y = X+1 over integers
)

// builtinNames is the closed set of builtin predicate spellings.
var builtinNames = map[string]bool{
	BuiltinEq: true, BuiltinNeq: true,
	BuiltinLt: true, BuiltinLe: true, BuiltinGt: true, BuiltinGe: true,
	BuiltinSucc: true,
}

// IsBuiltinName reports whether name is a reserved builtin predicate.
func IsBuiltinName(name string) bool { return builtinNames[name] }

// Literal is one body or head atom, possibly negated.
type Literal struct {
	Pred    symtab.Sym
	Args    []Term
	Negated bool
}

// Atom builds a positive literal.
func Atom(pred symtab.Sym, args ...Term) Literal {
	return Literal{Pred: pred, Args: args}
}

// NegAtom builds a negated literal.
func NegAtom(pred symtab.Sym, args ...Term) Literal {
	return Literal{Pred: pred, Args: args, Negated: true}
}

// Arity returns the number of arguments.
func (l Literal) Arity() int { return len(l.Args) }

// Vars returns the variables of the literal in first-occurrence order.
func (l Literal) Vars() []symtab.Sym {
	return l.appendVars(nil, map[symtab.Sym]bool{})
}

func (l Literal) appendVars(dst []symtab.Sym, seen map[symtab.Sym]bool) []symtab.Sym {
	for _, a := range l.Args {
		dst = a.vars(dst, seen)
	}
	return dst
}

// Subst applies a substitution to every argument.
func (l Literal) Subst(b *term.Bank, s map[symtab.Sym]Term) Literal {
	args := make([]Term, len(l.Args))
	for i, a := range l.Args {
		args[i] = a.Subst(b, s)
	}
	return Literal{Pred: l.Pred, Args: args, Negated: l.Negated}
}

// Rename renames every variable in the literal via f.
func (l Literal) Rename(b *term.Bank, f func(symtab.Sym) symtab.Sym) Literal {
	args := make([]Term, len(l.Args))
	for i, a := range l.Args {
		args[i] = a.Rename(b, f)
	}
	return Literal{Pred: l.Pred, Args: args, Negated: l.Negated}
}

// Equal reports structural equality of two literals.
func (l Literal) Equal(o Literal) bool {
	if l.Pred != o.Pred || l.Negated != o.Negated || len(l.Args) != len(o.Args) {
		return false
	}
	for i := range l.Args {
		if !l.Args[i].Equal(o.Args[i]) {
			return false
		}
	}
	return true
}

// Rule is a Horn clause head :- body. A fact is a rule with an empty body
// and a ground head.
type Rule struct {
	Head Literal
	Body []Literal
}

// IsFact reports whether the rule is a ground fact.
func (r Rule) IsFact() bool {
	if len(r.Body) != 0 {
		return false
	}
	for _, a := range r.Head.Args {
		if !a.IsGround() {
			return false
		}
	}
	return true
}

// Vars returns all variables of the rule in first-occurrence order
// (head first, then body left to right).
func (r Rule) Vars() []symtab.Sym {
	seen := map[symtab.Sym]bool{}
	vs := r.Head.appendVars(nil, seen)
	for _, l := range r.Body {
		vs = l.appendVars(vs, seen)
	}
	return vs
}

// Subst applies a substitution to head and body.
func (r Rule) Subst(b *term.Bank, s map[symtab.Sym]Term) Rule {
	body := make([]Literal, len(r.Body))
	for i, l := range r.Body {
		body[i] = l.Subst(b, s)
	}
	return Rule{Head: r.Head.Subst(b, s), Body: body}
}

// Equal reports structural equality of two rules.
func (r Rule) Equal(o Rule) bool {
	if !r.Head.Equal(o.Head) || len(r.Body) != len(o.Body) {
		return false
	}
	for i := range r.Body {
		if !r.Body[i].Equal(o.Body[i]) {
			return false
		}
	}
	return true
}

// Program is an ordered list of rules sharing a bank.
type Program struct {
	Bank  *term.Bank
	Rules []Rule
}

// NewProgram returns an empty program over the given bank.
func NewProgram(b *term.Bank) *Program { return &Program{Bank: b} }

// Add appends rules to the program.
func (p *Program) Add(rules ...Rule) { p.Rules = append(p.Rules, rules...) }

// Predicates returns the set of head predicates, sorted by name.
func (p *Program) Predicates() []symtab.Sym {
	seen := map[symtab.Sym]bool{}
	var out []symtab.Sym
	for _, r := range p.Rules {
		if !seen[r.Head.Pred] {
			seen[r.Head.Pred] = true
			out = append(out, r.Head.Pred)
		}
	}
	syms := p.Bank.Symbols()
	sort.Slice(out, func(i, j int) bool {
		return syms.String(out[i]) < syms.String(out[j])
	})
	return out
}

// RulesFor returns the rules whose head predicate is pred, in program order.
func (p *Program) RulesFor(pred symtab.Sym) []Rule {
	var out []Rule
	for _, r := range p.Rules {
		if r.Head.Pred == pred {
			out = append(out, r)
		}
	}
	return out
}

// Clone returns a deep-enough copy of the program (rules are value types;
// the bank is shared).
func (p *Program) Clone() *Program {
	q := NewProgram(p.Bank)
	q.Rules = make([]Rule, len(p.Rules))
	for i, r := range p.Rules {
		body := make([]Literal, len(r.Body))
		copy(body, r.Body)
		q.Rules[i] = Rule{Head: r.Head, Body: body}
	}
	return q
}

// Query is a goal to evaluate against a program and database.
type Query struct {
	Goal Literal
}

// ---------------------------------------------------------------------------
// Formatting

// FormatTerm renders a term as source text.
func FormatTerm(b *term.Bank, t Term) string {
	var sb strings.Builder
	formatTerm(&sb, b, t)
	return sb.String()
}

func formatTerm(sb *strings.Builder, b *term.Bank, t Term) {
	syms := b.Symbols()
	switch t.Kind {
	case Const:
		sb.WriteString(b.Format(t.Value))
	case Var:
		sb.WriteString(syms.String(t.Name))
	default:
		if syms.String(t.Name) == term.ListConsName && len(t.Args) == 2 {
			formatListTerm(sb, b, t)
			return
		}
		sb.WriteString(syms.String(t.Name))
		sb.WriteByte('(')
		for i, a := range t.Args {
			if i > 0 {
				sb.WriteByte(',')
			}
			formatTerm(sb, b, a)
		}
		sb.WriteByte(')')
	}
}

func formatListTerm(sb *strings.Builder, b *term.Bank, t Term) {
	syms := b.Symbols()
	sb.WriteByte('[')
	first := true
	for {
		if t.Kind == Comp && syms.String(t.Name) == term.ListConsName && len(t.Args) == 2 {
			if !first {
				sb.WriteByte(',')
			}
			first = false
			formatTerm(sb, b, t.Args[0])
			t = t.Args[1]
			continue
		}
		if t.Kind == Const && b.IsNil(t.Value) {
			break
		}
		if t.Kind == Const && b.IsCons(t.Value) {
			// Ground tail: splice its elements.
			c := b.Deref(t.Value)
			if !first {
				sb.WriteByte(',')
			}
			first = false
			sb.WriteString(b.Format(c.Args[0]))
			t = C(c.Args[1])
			continue
		}
		sb.WriteByte('|')
		formatTerm(sb, b, t)
		break
	}
	sb.WriteByte(']')
}

// FormatLiteral renders a literal as source text.
func FormatLiteral(b *term.Bank, l Literal) string {
	var sb strings.Builder
	formatLiteral(&sb, b, l)
	return sb.String()
}

func formatLiteral(sb *strings.Builder, b *term.Bank, l Literal) {
	syms := b.Symbols()
	name := syms.String(l.Pred)
	if l.Negated {
		sb.WriteString("not ")
	}
	if IsBuiltinName(name) && len(l.Args) == 2 && name != BuiltinSucc {
		formatTerm(sb, b, l.Args[0])
		sb.WriteByte(' ')
		sb.WriteString(name)
		sb.WriteByte(' ')
		formatTerm(sb, b, l.Args[1])
		return
	}
	sb.WriteString(name)
	if len(l.Args) == 0 {
		return
	}
	sb.WriteByte('(')
	for i, a := range l.Args {
		if i > 0 {
			sb.WriteByte(',')
		}
		formatTerm(sb, b, a)
	}
	sb.WriteByte(')')
}

// FormatRule renders a rule as source text, terminated by a period.
func FormatRule(b *term.Bank, r Rule) string {
	var sb strings.Builder
	formatLiteral(&sb, b, r.Head)
	if len(r.Body) > 0 {
		sb.WriteString(" :- ")
		for i, l := range r.Body {
			if i > 0 {
				sb.WriteString(", ")
			}
			formatLiteral(&sb, b, l)
		}
	}
	sb.WriteByte('.')
	return sb.String()
}

// Format renders the whole program, one rule per line.
func (p *Program) Format() string {
	var sb strings.Builder
	for _, r := range p.Rules {
		sb.WriteString(FormatRule(p.Bank, r))
		sb.WriteByte('\n')
	}
	return sb.String()
}

// String implements fmt.Stringer for diagnostics; it does not include facts
// stored in a database.
func (p *Program) String() string { return p.Format() }

// FormatQuery renders a query as "?- goal.".
func FormatQuery(b *term.Bank, q Query) string {
	return fmt.Sprintf("?- %s.", FormatLiteral(b, q.Goal))
}
