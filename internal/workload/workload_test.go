package workload

import (
	"fmt"
	"strings"
	"testing"

	"lincount/internal/database"
	"lincount/internal/symtab"
	"lincount/internal/term"
)

// load parses generated fact text to prove it is well-formed.
func load(t *testing.T, facts string) *database.Database {
	t.Helper()
	db := database.New(term.NewBank(symtab.New()))
	if err := db.LoadText(facts); err != nil {
		t.Fatalf("generated facts do not parse: %v", err)
	}
	return db
}

func relLen(db *database.Database, name string) int {
	s, ok := db.Bank().Symbols().Lookup(name)
	if !ok {
		return 0
	}
	r := db.Relation(s)
	if r == nil {
		return 0
	}
	return r.Len()
}

func TestChainShape(t *testing.T) {
	db := load(t, Chain(5))
	if got := relLen(db, "up"); got != 5 {
		t.Errorf("up = %d", got)
	}
	if got := relLen(db, "down"); got != 5 {
		t.Errorf("down = %d", got)
	}
	if got := relLen(db, "flat"); got != 1 {
		t.Errorf("flat = %d", got)
	}
}

func TestCylinderShape(t *testing.T) {
	depth, width, fan := 4, 3, 2
	db := load(t, Cylinder(depth, width, fan))
	if got := relLen(db, "up"); got != depth*width*fan {
		t.Errorf("up = %d, want %d", got, depth*width*fan)
	}
	if got := relLen(db, "down"); got != depth*width*fan {
		t.Errorf("down = %d", got)
	}
	if got := relLen(db, "flat"); got != width {
		t.Errorf("flat = %d", got)
	}
}

func TestCylinderFanOneIsChainLike(t *testing.T) {
	db := load(t, Cylinder(3, 1, 1))
	if got := relLen(db, "up"); got != 3 {
		t.Errorf("up = %d", got)
	}
}

func TestTreeShape(t *testing.T) {
	fanout, depth := 2, 3
	db := load(t, Tree(fanout, depth))
	wantArcs := 0
	for l := 1; l <= depth; l++ {
		wantArcs += pow(fanout, l)
	}
	if got := relLen(db, "up"); got != wantArcs {
		t.Errorf("up = %d, want %d", got, wantArcs)
	}
	if got := relLen(db, "down"); got != wantArcs {
		t.Errorf("down = %d, want %d", got, wantArcs)
	}
	if q := TreeQuery(depth); !strings.Contains(Tree(fanout, depth), q) {
		t.Errorf("query node %s not generated", q)
	}
}

func TestGridShape(t *testing.T) {
	depth, width := 3, 4
	db := load(t, Grid(depth, width))
	// Per layer: width straight arcs + (width-1) diagonal arcs.
	want := depth * (2*width - 1)
	if got := relLen(db, "up"); got != want {
		t.Errorf("up = %d, want %d", got, want)
	}
	if got := relLen(db, "down"); got != want {
		t.Errorf("down = %d, want %d", got, want)
	}
	if got := relLen(db, "flat"); got != width {
		t.Errorf("flat = %d", got)
	}
}

func TestInvertedTreeShape(t *testing.T) {
	fanout, depth := 2, 3
	db := load(t, InvertedTree(fanout, depth))
	wantUp := 0
	for l := 0; l < depth; l++ {
		wantUp += pow(fanout, l+1)
	}
	if got := relLen(db, "up"); got != wantUp {
		t.Errorf("up = %d, want %d", got, wantUp)
	}
	if got := relLen(db, "flat"); got != pow(fanout, depth) {
		t.Errorf("flat = %d", got)
	}
	if !strings.Contains(InvertedTree(fanout, depth), InvertedTreeQuery) {
		t.Error("query node not generated")
	}
}

func TestShortcutChainShape(t *testing.T) {
	db := load(t, ShortcutChain(6))
	// 6 chain arcs + shortcuts from 0,2,4.
	if got := relLen(db, "up"); got != 9 {
		t.Errorf("up = %d, want 9", got)
	}
}

func TestCyclicChainHasBackArcs(t *testing.T) {
	facts := CyclicChain(6, 3)
	db := load(t, facts)
	if got := relLen(db, "up"); got != 8 { // 6 forward + 2 back
		t.Errorf("up = %d, want 8", got)
	}
	if !strings.Contains(facts, "up(u3,u0).") || !strings.Contains(facts, "up(u6,u3).") {
		t.Errorf("expected back arcs in:\n%s", facts)
	}
}

func TestMultiRuleShape(t *testing.T) {
	db := load(t, MultiRule(6, 3))
	for i := 1; i <= 3; i++ {
		if got := relLen(db, fmt.Sprintf("up%d", i)); got != 2 {
			t.Errorf("up%d = %d, want 2", i, got)
		}
		if got := relLen(db, fmt.Sprintf("down%d", i)); got != 2 {
			t.Errorf("down%d = %d, want 2", i, got)
		}
	}
}

func TestMultiRuleProgramParses(t *testing.T) {
	src := MultiRuleProgram(4)
	if strings.Count(src, ":-") != 5 {
		t.Errorf("program:\n%s", src)
	}
}

func TestSharedVarChainShape(t *testing.T) {
	db := load(t, SharedVarChain(4))
	if got := relLen(db, "up"); got != 4 {
		t.Errorf("up = %d", got)
	}
	if got := relLen(db, "down"); got != 8 { // one right, one wrong per level
		t.Errorf("down = %d", got)
	}
}

func TestRightLinearChainShape(t *testing.T) {
	db := load(t, RightLinearChain(5, 3))
	if got := relLen(db, "up"); got != 5 {
		t.Errorf("up = %d", got)
	}
	if got := relLen(db, "flat"); got != 3 {
		t.Errorf("flat = %d", got)
	}
}

func TestBranchyShape(t *testing.T) {
	depth, branches := 4, 3
	db := load(t, Branchy(depth, branches))
	if got := relLen(db, "up"); got != depth*(branches+1) {
		t.Errorf("up = %d, want %d", got, depth*(branches+1))
	}
	if got := relLen(db, "flat"); got != branches+1 {
		t.Errorf("flat = %d", got)
	}
	// The relevant chain starts at u0.
	if !strings.Contains(Branchy(depth, branches), "up(u0,u1).") {
		t.Error("relevant chain missing")
	}
}

func TestRandomDeterministic(t *testing.T) {
	a := Random(7, 20, 40, true)
	b := Random(7, 20, 40, true)
	if a != b {
		t.Error("Random is not deterministic in its seed")
	}
	c := Random(8, 20, 40, true)
	if a == c {
		t.Error("different seeds produced identical data")
	}
	load(t, a)
}

func TestRandomAcyclicHasNoBackArc(t *testing.T) {
	facts := Random(3, 15, 40, false)
	for _, line := range strings.Split(facts, "\n") {
		if !strings.HasPrefix(line, "up(n") {
			continue
		}
		var a, b int
		if _, err := fmt.Sscanf(line, "up(n%d,n%d).", &a, &b); err != nil {
			continue
		}
		if a >= b {
			t.Errorf("acyclic instance contains %s", line)
		}
	}
}

func TestProgramsParse(t *testing.T) {
	for name, src := range map[string]string{
		"sg":        SGProgram,
		"shared":    SGSharedVarProgram,
		"right":     RightLinearProgram,
		"left":      LeftLinearProgram,
		"mixed":     MixedLinearProgram,
		"multirule": MultiRuleProgram(3),
	} {
		db := database.New(term.NewBank(symtab.New()))
		if err := db.LoadText(Chain(1)); err != nil {
			t.Fatal(err)
		}
		if src == "" {
			t.Errorf("%s empty", name)
		}
	}
}
