// Package workload generates the synthetic databases the experiments run
// on. The shapes follow the benchmark tradition the paper's comparisons
// cite (Bancilhon & Ramakrishnan [4]): chains, trees, cylinders and random
// graphs for the same-generation program, plus the cyclic and multi-rule
// variants the paper's extensions target.
//
// All generators are deterministic and return Datalog fact text, so the
// same dataset can feed the library API, the CLI tools and the benchmark
// harness.
package workload

import (
	"fmt"
	"strings"
)

// Chain builds a linear same-generation instance: an up chain of length n
// from the query node u0, a single flat arc at the top, and a down chain of
// the same length. The query sg(u0, Y) has exactly one answer at depth n.
//
//	up(u0,u1). … up(u{n-1},un). flat(un,dn). down(dn,d{n-1}). … down(d1,d0).
func Chain(n int) string {
	var sb strings.Builder
	for i := 0; i < n; i++ {
		fmt.Fprintf(&sb, "up(u%d,u%d).\n", i, i+1)
	}
	fmt.Fprintf(&sb, "flat(u%d,d%d).\n", n, n)
	for i := n; i > 0; i-- {
		fmt.Fprintf(&sb, "down(d%d,d%d).\n", i, i-1)
	}
	return sb.String()
}

// Cylinder builds the layered instance on which the counting method beats
// magic sets by a factor of the width: `depth` layers of `width` nodes;
// every node has `fan` up-arcs into the next layer (wrapping), flat arcs
// connect the top layer to the top of a mirrored down cylinder. All paths
// from the query node u_0_0 to layer l have length l, so the counting set
// stays linear while the magic-restricted answer relation is quadratic in
// the width.
func Cylinder(depth, width, fan int) string {
	var sb strings.Builder
	for l := 0; l < depth; l++ {
		for j := 0; j < width; j++ {
			for k := 0; k < fan; k++ {
				fmt.Fprintf(&sb, "up(u_%d_%d,u_%d_%d).\n", l, j, l+1, (j+k)%width)
			}
		}
	}
	for j := 0; j < width; j++ {
		fmt.Fprintf(&sb, "flat(u_%d_%d,d_%d_%d).\n", depth, j, depth, j)
	}
	for l := depth; l > 0; l-- {
		for j := 0; j < width; j++ {
			for k := 0; k < fan; k++ {
				fmt.Fprintf(&sb, "down(d_%d_%d,d_%d_%d).\n", l, j, l-1, (j+k)%width)
			}
		}
	}
	return sb.String()
}

// CylinderQuery is the bound query node of Cylinder instances.
const CylinderQuery = "u_0_0"

// Tree builds a same-generation instance over a complete tree: `up` holds
// the child→parent arcs of a complete `fanout`-ary tree of the given
// depth, `down` its inverse, and a single flat arc reflects the root. The
// query from the leftmost leaf answers every leaf of equal depth.
func Tree(fanout, depth int) string {
	var sb strings.Builder
	// Nodes are numbered heap-style per level: t_<level>_<index>.
	for l := depth; l > 0; l-- {
		count := pow(fanout, l)
		for j := 0; j < count; j++ {
			fmt.Fprintf(&sb, "up(t_%d_%d,t_%d_%d).\n", l, j, l-1, j/fanout)
			fmt.Fprintf(&sb, "down(s_%d_%d,s_%d_%d).\n", l-1, j/fanout, l, j)
		}
	}
	sb.WriteString("flat(t_0_0,s_0_0).\n")
	return sb.String()
}

// TreeQuery returns the bound query node of a Tree instance: the leftmost
// leaf.
func TreeQuery(depth int) string { return fmt.Sprintf("t_%d_0", depth) }

func pow(b, e int) int {
	out := 1
	for i := 0; i < e; i++ {
		out *= b
	}
	return out
}

// Grid builds a same-generation instance over a rectangular grid without
// wraparound: each up node u_l_j reaches u_{l+1}_j and u_{l+1}_{j+1}.
// Like the cylinder it is layered (all paths to a node have equal length),
// but boundary nodes have fewer successors, so answer sets thin toward the
// edges.
func Grid(depth, width int) string {
	var sb strings.Builder
	for l := 0; l < depth; l++ {
		for j := 0; j < width; j++ {
			fmt.Fprintf(&sb, "up(u_%d_%d,u_%d_%d).\n", l, j, l+1, j)
			if j+1 < width {
				fmt.Fprintf(&sb, "up(u_%d_%d,u_%d_%d).\n", l, j, l+1, j+1)
			}
		}
	}
	for j := 0; j < width; j++ {
		fmt.Fprintf(&sb, "flat(u_%d_%d,d_%d_%d).\n", depth, j, depth, j)
	}
	for l := depth; l > 0; l-- {
		for j := 0; j < width; j++ {
			fmt.Fprintf(&sb, "down(d_%d_%d,d_%d_%d).\n", l, j, l-1, j)
			if j+1 < width {
				fmt.Fprintf(&sb, "down(d_%d_%d,d_%d_%d).\n", l, j, l-1, j+1)
			}
		}
	}
	return sb.String()
}

// GridQuery is the bound query node of Grid instances.
const GridQuery = "u_0_0"

// InvertedTree builds an instance where the up relation fans out from the
// query node: every node at level l has `fanout` parents at level l+1, so
// the counting set itself grows exponentially with the depth — the
// worst-case shape for every binding-propagation method (magic's set grows
// identically). Use small depths.
func InvertedTree(fanout, depth int) string {
	var sb strings.Builder
	for l := 0; l < depth; l++ {
		count := pow(fanout, l)
		for j := 0; j < count; j++ {
			for k := 0; k < fanout; k++ {
				fmt.Fprintf(&sb, "up(i_%d_%d,i_%d_%d).\n", l, j, l+1, j*fanout+k)
			}
		}
	}
	top := pow(fanout, depth)
	for j := 0; j < top; j++ {
		fmt.Fprintf(&sb, "flat(i_%d_%d,o_%d_%d).\n", depth, j, depth, j)
	}
	for l := depth; l > 0; l-- {
		count := pow(fanout, l)
		for j := 0; j < count; j++ {
			fmt.Fprintf(&sb, "down(o_%d_%d,o_%d_%d).\n", l, j, l-1, j/fanout)
		}
	}
	return sb.String()
}

// InvertedTreeQuery is the bound query node of InvertedTree instances.
const InvertedTreeQuery = "i_0_0"

// ShortcutChain builds the acyclic instance exhibiting the n² counting-set
// behaviour of §3.4: a chain v0 → v1 → … → vn with an additional shortcut
// v_i → v_{i+2} from every even node, so node v_k is reachable by paths of
// many different lengths. The list-based counting set holds one tuple per
// (node, path shape); the pointer-based runtime holds one node per value.
func ShortcutChain(n int) string {
	var sb strings.Builder
	for i := 0; i < n; i++ {
		fmt.Fprintf(&sb, "up(v%d,v%d).\n", i, i+1)
		if i%2 == 0 && i+2 <= n {
			fmt.Fprintf(&sb, "up(v%d,v%d).\n", i, i+2)
		}
	}
	fmt.Fprintf(&sb, "flat(v%d,w%d).\n", n, n)
	for i := n; i > 0; i-- {
		fmt.Fprintf(&sb, "down(w%d,w%d).\n", i, i-1)
		if i%2 == 0 && i-2 >= 0 {
			fmt.Fprintf(&sb, "down(w%d,w%d).\n", i, i-2)
		}
	}
	return sb.String()
}

// CyclicChain builds a chain of length n whose up relation additionally
// contains back arcs closing a cycle of the given period, the shape of the
// paper's Example 5. Classical counting diverges on it; the runtime and
// magic sets terminate.
func CyclicChain(n, period int) string {
	var sb strings.Builder
	for i := 0; i < n; i++ {
		fmt.Fprintf(&sb, "up(u%d,u%d).\n", i, i+1)
	}
	for i := period; i <= n; i += period {
		fmt.Fprintf(&sb, "up(u%d,u%d).\n", i, i-period)
	}
	fmt.Fprintf(&sb, "flat(u%d,d%d).\n", n, 3*n)
	for i := 3 * n; i > 0; i-- {
		fmt.Fprintf(&sb, "down(d%d,d%d).\n", i, i-1)
	}
	return sb.String()
}

// MultiRule builds an instance for programs with k recursive rules
// (Example 3 scaled): a chain of depth n whose level-i arc belongs to
// relation up<1+(i%k)>, with matching down<j> chains mirrored in reverse
// rule order, so only the correctly sequenced answers exist.
func MultiRule(n, k int) string {
	var sb strings.Builder
	for i := 0; i < n; i++ {
		fmt.Fprintf(&sb, "up%d(u%d,u%d).\n", 1+i%k, i, i+1)
	}
	fmt.Fprintf(&sb, "flat(u%d,d%d).\n", n, n)
	for i := n; i > 0; i-- {
		// Undoing level i-1's up rule.
		fmt.Fprintf(&sb, "down%d(d%d,d%d).\n", 1+(i-1)%k, i, i-1)
	}
	return sb.String()
}

// SharedVarChain builds an instance for the shared-variable rules of
// Example 4: up(X,X1,W) and down(Y1,Y,W) must agree on W. Half of the down
// arcs carry a wrong tag and must be filtered by the counting information.
func SharedVarChain(n int) string {
	var sb strings.Builder
	for i := 0; i < n; i++ {
		fmt.Fprintf(&sb, "up(u%d,u%d,w%d).\n", i, i+1, i%3)
	}
	fmt.Fprintf(&sb, "flat(u%d,d%d).\n", n, n)
	for i := n; i > 0; i-- {
		fmt.Fprintf(&sb, "down(d%d,d%d,w%d).\n", i, i-1, (i-1)%3)
		fmt.Fprintf(&sb, "down(d%d,x%d,w%d).\n", i, i-1, (i+1)%3)
	}
	return sb.String()
}

// RightLinearChain builds data for the right-linear program
// p(X,Y) ← up(X,X1), p(X1,Y): an up chain with `answers` flat arcs at the
// top. Every position of the chain reaches the same answers, which is what
// the reduction exploits.
func RightLinearChain(n, answers int) string {
	var sb strings.Builder
	for i := 0; i < n; i++ {
		fmt.Fprintf(&sb, "up(u%d,u%d).\n", i, i+1)
	}
	for a := 0; a < answers; a++ {
		fmt.Fprintf(&sb, "flat(u%d,ans%d).\n", n, a)
	}
	return sb.String()
}

// Branchy builds a selectivity workload: one chain of length depth that is
// relevant to the query sg(u0, Y), plus `branches` disconnected chains of
// the same shape that only bottom-up evaluation wastes time on. The
// relevant fraction of the database is 1/(branches+1); binding-propagation
// methods should cost ~O(depth) regardless of branches.
func Branchy(depth, branches int) string {
	var sb strings.Builder
	emit := func(prefix string) {
		for i := 0; i < depth; i++ {
			fmt.Fprintf(&sb, "up(%su%d,%su%d).\n", prefix, i, prefix, i+1)
		}
		fmt.Fprintf(&sb, "flat(%su%d,%sd%d).\n", prefix, depth, prefix, depth)
		for i := depth; i > 0; i-- {
			fmt.Fprintf(&sb, "down(%sd%d,%sd%d).\n", prefix, i, prefix, i-1)
		}
	}
	emit("") // the relevant chain: u0 … udepth
	for b := 0; b < branches; b++ {
		emit(fmt.Sprintf("x%d_", b))
	}
	return sb.String()
}

// Random builds a pseudo-random same-generation instance with the given
// node and arc counts; when cyclic is false, arcs only go from lower to
// higher node indices. Deterministic in seed.
func Random(seed, nodes, arcs int, cyclic bool) string {
	r := rng(seed)
	var sb strings.Builder
	for i := 0; i < arcs; i++ {
		a, b := r(nodes), r(nodes)
		if !cyclic {
			if a == b {
				continue
			}
			if a > b {
				a, b = b, a
			}
		}
		fmt.Fprintf(&sb, "up(n%d,n%d).\n", a, b)
	}
	for i := 0; i < nodes; i++ {
		if r(2) == 0 {
			fmt.Fprintf(&sb, "flat(n%d,m%d).\n", i, r(nodes))
		}
	}
	for i := 0; i < arcs; i++ {
		fmt.Fprintf(&sb, "down(m%d,m%d).\n", r(nodes), r(nodes))
	}
	return sb.String()
}

// rng returns a tiny deterministic generator (splitmix-style); the
// workloads must not depend on math/rand ordering across Go versions.
func rng(seed int) func(int) int {
	state := uint64(seed)*0x9E3779B97F4A7C15 + 0xBF58476D1CE4E5B9
	return func(n int) int {
		state += 0x9E3779B97F4A7C15
		z := state
		z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
		z = (z ^ (z >> 27)) * 0x94D049BB133111EB
		z ^= z >> 31
		return int(z % uint64(n))
	}
}

// Programs used by the experiments, paired with the generators above.
const (
	// SGProgram is the same-generation program of Examples 1 and 5.
	SGProgram = `sg(X,Y) :- flat(X,Y).
sg(X,Y) :- up(X,X1), sg(X1,Y1), down(Y1,Y).
`
	// SGMultiRuleTemplate is extended by MultiRuleProgram.
	sgMultiRuleExit = "sg(X,Y) :- flat(X,Y).\n"
	// SGSharedVarProgram carries the shared attribute of Example 4.
	SGSharedVarProgram = `sg(X,Y) :- flat(X,Y).
sg(X,Y) :- up(X,X1,W), sg(X1,Y1), down(Y1,Y,W).
`
	// RightLinearProgram is §5's right-linear reachability program.
	RightLinearProgram = `p(X,Y) :- flat(X,Y).
p(X,Y) :- up(X,X1), p(X1,Y).
`
	// LeftLinearProgram is §5's left-linear program.
	LeftLinearProgram = `p(X,Y) :- flat(X,Y).
p(X,Y) :- p(X,Y1), down(Y1,Y).
`
	// MixedLinearProgram combines both (Example 6).
	MixedLinearProgram = `p(X,Y) :- flat(X,Y).
p(X,Y) :- up(X,X1), p(X1,Y).
p(X,Y) :- p(X,Y1), down(Y1,Y).
`
)

// MultiRuleProgram builds the k-rule same-generation program of Example 3.
func MultiRuleProgram(k int) string {
	var sb strings.Builder
	sb.WriteString(sgMultiRuleExit)
	for i := 1; i <= k; i++ {
		fmt.Fprintf(&sb, "sg(X,Y) :- up%d(X,X1), sg(X1,Y1), down%d(Y1,Y).\n", i, i)
	}
	return sb.String()
}
