// Package obsv is the observability layer of the engine: a structured
// evaluation tracer, a metrics registry, and the HTTP surface that serves
// both next to the runtime profiler.
//
// All three follow the zero-overhead-when-disabled discipline the rest of
// the engine uses (limits.Checker, faultinject.Injector): a nil *Tracer
// is a valid no-op whose methods return after a single pointer
// comparison, so evaluations that do not opt in pay nothing — no clock
// reads, no allocations, no atomic traffic on the hot paths.
//
// The tracer records spans (a named interval with integer arguments),
// instants and counter samples. Sinks render the same event list two
// ways: a human-readable text log, and the Chrome trace-event JSON
// format that chrome://tracing and https://ui.perfetto.dev load
// directly.
package obsv

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Event phases, following the trace-event format's "ph" field.
const (
	PhaseSpan    = 'X' // complete event: Start + Dur
	PhaseInstant = 'i' // point event
	PhaseCounter = 'C' // counter sample
)

// Arg is one integer annotation on an event. Span arguments are integers
// by design: every quantity the evaluators report (facts, nodes, probes)
// is a count, and integer args keep recording allocation-predictable.
type Arg struct {
	Key string
	Val int64
}

// A is shorthand for constructing an Arg.
func A(key string, val int64) Arg { return Arg{Key: key, Val: val} }

// Event is one recorded trace event. Start and Dur are offsets from the
// tracer's epoch (its creation time).
type Event struct {
	Name  string
	Cat   string
	Phase byte
	TID   int64
	Start time.Duration
	Dur   time.Duration
	Args  []Arg
}

// DefaultMaxEvents bounds the event buffer so a divergent traced
// evaluation cannot grow memory without bound; events beyond the cap are
// counted in Dropped() and otherwise discarded.
const DefaultMaxEvents = 1 << 17

// Tracer collects evaluation events. The zero value is not usable; call
// NewTracer. A nil *Tracer is a valid disabled tracer: every method is a
// no-op costing one pointer comparison, which is the only cost an
// untraced evaluation pays at the hook sites.
//
// Tracers are safe for concurrent use (the engine's parallel strata
// share one); recording takes a mutex, which is acceptable because the
// instrumented units are iterations and rule passes, not per-tuple work.
type Tracer struct {
	mu      sync.Mutex
	epoch   time.Time
	events  []Event
	max     int
	dropped int64
	nextTID atomic.Int64
}

// NewTracer returns an empty tracer whose epoch is now.
func NewTracer() *Tracer {
	t := &Tracer{epoch: time.Now(), max: DefaultMaxEvents}
	t.nextTID.Store(1)
	return t
}

// Enabled reports whether the tracer records events; it is the cheap
// guard hot paths use before assembling arguments.
func (t *Tracer) Enabled() bool { return t != nil }

// NewTID allocates a fresh track id, used to give each parallel stratum
// its own row in the Chrome trace view. The main track is TID 1.
func (t *Tracer) NewTID() int64 {
	if t == nil {
		return 1
	}
	return t.nextTID.Add(1)
}

// Span is an in-flight interval started by Begin. End records it. The
// zero Span (from a nil tracer) is a valid no-op.
type Span struct {
	t     *Tracer
	name  string
	cat   string
	tid   int64
	start time.Duration
}

// Begin starts a span on the main track. On a nil tracer it returns the
// no-op zero Span without reading the clock.
func (t *Tracer) Begin(cat, name string) Span {
	return t.BeginTID(cat, name, 1)
}

// BeginTID starts a span on an explicit track.
func (t *Tracer) BeginTID(cat, name string, tid int64) Span {
	if t == nil {
		return Span{}
	}
	return Span{t: t, name: name, cat: cat, tid: tid, start: time.Since(t.epoch)}
}

// End records the span with optional integer arguments.
func (s Span) End(args ...Arg) {
	if s.t == nil {
		return
	}
	now := time.Since(s.t.epoch)
	s.t.record(Event{
		Name: s.name, Cat: s.cat, Phase: PhaseSpan, TID: s.tid,
		Start: s.start, Dur: now - s.start, Args: args,
	})
}

// Instant records a point event.
func (t *Tracer) Instant(cat, name string, args ...Arg) {
	if t == nil {
		return
	}
	t.record(Event{
		Name: name, Cat: cat, Phase: PhaseInstant, TID: 1,
		Start: time.Since(t.epoch), Args: args,
	})
}

// Counter records a sample of a named quantity (rendered as a counter
// track in the Chrome viewer).
func (t *Tracer) Counter(name string, val int64) {
	if t == nil {
		return
	}
	t.record(Event{
		Name: name, Cat: "counter", Phase: PhaseCounter, TID: 1,
		Start: time.Since(t.epoch), Args: []Arg{{Key: "value", Val: val}},
	})
}

func (t *Tracer) record(e Event) {
	t.mu.Lock()
	if len(t.events) >= t.max {
		t.dropped++
	} else {
		t.events = append(t.events, e)
	}
	t.mu.Unlock()
}

// Events returns a snapshot of the recorded events in start order.
func (t *Tracer) Events() []Event {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	out := make([]Event, len(t.events))
	copy(out, t.events)
	t.mu.Unlock()
	sort.SliceStable(out, func(i, j int) bool { return out[i].Start < out[j].Start })
	return out
}

// Dropped reports how many events were discarded beyond the buffer cap.
func (t *Tracer) Dropped() int64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.dropped
}

// SpanNames returns the distinct names of recorded span events, sorted —
// the smoke tests' validation hook.
func (t *Tracer) SpanNames() []string {
	seen := map[string]bool{}
	for _, e := range t.Events() {
		if e.Phase == PhaseSpan && !seen[e.Name] {
			seen[e.Name] = true
		}
	}
	out := make([]string, 0, len(seen))
	for n := range seen {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// WriteText renders the events as a human-readable log, one line per
// event, ordered by start time. Span nesting is shown by indentation
// computed per track from interval containment.
func (t *Tracer) WriteText(w io.Writer) error {
	if t == nil {
		_, err := fmt.Fprintln(w, "trace: disabled")
		return err
	}
	events := t.Events()
	// open[tid] holds the end times of the spans currently containing the
	// event being printed, per track.
	open := map[int64][]time.Duration{}
	for _, e := range events {
		stack := open[e.TID]
		for len(stack) > 0 && e.Start >= stack[len(stack)-1] {
			stack = stack[:len(stack)-1]
		}
		indent := strings.Repeat("  ", len(stack))
		var sb strings.Builder
		fmt.Fprintf(&sb, "%10.3fms %s[%s] %s", float64(e.Start)/1e6, indent, e.Cat, e.Name)
		if e.Phase == PhaseSpan {
			fmt.Fprintf(&sb, " (%.3fms)", float64(e.Dur)/1e6)
			stack = append(stack, e.Start+e.Dur)
		}
		for _, a := range e.Args {
			fmt.Fprintf(&sb, " %s=%d", a.Key, a.Val)
		}
		if e.TID != 1 {
			fmt.Fprintf(&sb, " tid=%d", e.TID)
		}
		open[e.TID] = stack
		if _, err := fmt.Fprintln(w, sb.String()); err != nil {
			return err
		}
	}
	if d := t.Dropped(); d > 0 {
		if _, err := fmt.Fprintf(w, "… %d event(s) dropped beyond the %d-event buffer\n", d, t.max); err != nil {
			return err
		}
	}
	return nil
}

// chromeEvent is the trace-event format's JSON shape. Timestamps are
// microseconds.
type chromeEvent struct {
	Name string           `json:"name"`
	Cat  string           `json:"cat"`
	Ph   string           `json:"ph"`
	TS   float64          `json:"ts"`
	Dur  float64          `json:"dur,omitempty"`
	PID  int64            `json:"pid"`
	TID  int64            `json:"tid"`
	Args map[string]int64 `json:"args,omitempty"`
}

// WriteChromeJSON renders the events in the Chrome trace-event JSON
// object format ({"traceEvents": [...]}), loadable by chrome://tracing
// and Perfetto.
func (t *Tracer) WriteChromeJSON(w io.Writer) error {
	events := t.Events()
	out := struct {
		TraceEvents []chromeEvent `json:"traceEvents"`
		Dropped     int64         `json:"droppedEvents,omitempty"`
	}{TraceEvents: make([]chromeEvent, 0, len(events)), Dropped: t.Dropped()}
	for _, e := range events {
		ce := chromeEvent{
			Name: e.Name, Cat: e.Cat, Ph: string(rune(e.Phase)),
			TS: float64(e.Start) / 1e3, PID: 1, TID: e.TID,
		}
		if e.Phase == PhaseSpan {
			ce.Dur = float64(e.Dur) / 1e3
		}
		if len(e.Args) > 0 {
			ce.Args = make(map[string]int64, len(e.Args))
			for _, a := range e.Args {
				ce.Args[a.Key] = a.Val
			}
		}
		out.TraceEvents = append(out.TraceEvents, ce)
	}
	enc := json.NewEncoder(w)
	return enc.Encode(out)
}
