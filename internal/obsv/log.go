package obsv

// A structured, leveled logger in the package's zero-overhead-when-off
// discipline: a nil *Logger is a valid disabled logger whose methods
// return after one pointer comparison, and a level-suppressed call on a
// live logger returns after one atomic load — in both cases without
// reading the clock, formatting anything, or allocating. Fields are
// plain value structs (no interface boxing), so a call site's ...Field
// slice stays on the stack when the call is suppressed.
//
// One line is emitted per event, in JSON ("json", the default — one
// object per line, ts/level/msg plus the fields) or logfmt-ish text
// ("text"). Encoding appends into a buffer reused under the logger's
// mutex, so steady-state logging allocates nothing either.

import (
	"fmt"
	"io"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// Level is a log severity. The numeric gaps follow log/slog so custom
// intermediate levels remain possible.
type Level int32

const (
	LevelDebug Level = -4
	LevelInfo  Level = 0
	LevelWarn  Level = 4
	LevelError Level = 8
)

// String returns the lower-case level name.
func (l Level) String() string {
	switch {
	case l < LevelInfo:
		return "debug"
	case l < LevelWarn:
		return "info"
	case l < LevelError:
		return "warn"
	default:
		return "error"
	}
}

// ParseLevel parses a level name (debug, info, warn, error).
func ParseLevel(s string) (Level, error) {
	switch s {
	case "debug":
		return LevelDebug, nil
	case "info":
		return LevelInfo, nil
	case "warn", "warning":
		return LevelWarn, nil
	case "error":
		return LevelError, nil
	}
	return LevelInfo, fmt.Errorf("obsv: unknown log level %q (want debug, info, warn or error)", s)
}

// fieldKind discriminates Field's value slot.
type fieldKind uint8

const (
	fkString fieldKind = iota
	fkInt
	fkUint
	fkBool
	fkDuration
	fkFloat
)

// Field is one key/value annotation on a log line. Construct with FStr,
// FInt, FUint, FBool, FDur, FFloat or FErr — plain struct returns, no
// interface boxing, so building fields for a suppressed call costs
// nothing on the heap.
type Field struct {
	Key  string
	kind fieldKind
	str  string
	num  int64
	f    float64
}

// FStr is a string field.
func FStr(key, val string) Field { return Field{Key: key, kind: fkString, str: val} }

// FInt is an integer field.
func FInt(key string, val int64) Field { return Field{Key: key, kind: fkInt, num: val} }

// FUint is an unsigned integer field.
func FUint(key string, val uint64) Field { return Field{Key: key, kind: fkUint, num: int64(val)} }

// FBool is a boolean field.
func FBool(key string, val bool) Field {
	n := int64(0)
	if val {
		n = 1
	}
	return Field{Key: key, kind: fkBool, num: n}
}

// FDur is a duration field, rendered as fractional seconds.
func FDur(key string, val time.Duration) Field {
	return Field{Key: key, kind: fkDuration, num: int64(val)}
}

// FFloat is a float field.
func FFloat(key string, val float64) Field { return Field{Key: key, kind: fkFloat, f: val} }

// FErr is a string field holding err's message ("" for nil). Note that
// Error() may allocate — fine on error paths, which is where FErr lives.
func FErr(key string, err error) Field {
	if err == nil {
		return FStr(key, "")
	}
	return FStr(key, err.Error())
}

// Logger writes structured, leveled log lines. A nil *Logger is a valid
// disabled logger (every method no-ops after one pointer comparison);
// construct live ones with NewLogger. Safe for concurrent use.
type Logger struct {
	w    io.Writer
	json bool
	min  atomic.Int32

	mu  sync.Mutex
	buf []byte
}

// NewLogger returns a logger writing to w. format is "json" (default
// for anything unrecognized) or "text"; events below min are dropped.
func NewLogger(w io.Writer, format string, min Level) *Logger {
	l := &Logger{w: w, json: format != "text", buf: make([]byte, 0, 512)}
	l.min.Store(int32(min))
	return l
}

// Enabled reports whether a line at level lv would be emitted — the
// guard for call sites whose field construction is itself expensive.
func (l *Logger) Enabled(lv Level) bool {
	return l != nil && lv >= Level(l.min.Load())
}

// SetLevel changes the minimum emitted level.
func (l *Logger) SetLevel(min Level) {
	if l != nil {
		l.min.Store(int32(min))
	}
}

// Debug emits a debug-level line.
func (l *Logger) Debug(msg string, fields ...Field) { l.log(LevelDebug, msg, fields) }

// Info emits an info-level line.
func (l *Logger) Info(msg string, fields ...Field) { l.log(LevelInfo, msg, fields) }

// Warn emits a warn-level line.
func (l *Logger) Warn(msg string, fields ...Field) { l.log(LevelWarn, msg, fields) }

// Error emits an error-level line.
func (l *Logger) Error(msg string, fields ...Field) { l.log(LevelError, msg, fields) }

// logTimeFormat is RFC3339 with millisecond precision, always UTC.
const logTimeFormat = "2006-01-02T15:04:05.000Z"

func (l *Logger) log(lv Level, msg string, fields []Field) {
	if l == nil || lv < Level(l.min.Load()) {
		return
	}
	now := time.Now().UTC()
	l.mu.Lock()
	b := l.buf[:0]
	if l.json {
		b = append(b, `{"ts":"`...)
		b = now.AppendFormat(b, logTimeFormat)
		b = append(b, `","level":"`...)
		b = append(b, lv.String()...)
		b = append(b, `","msg":`...)
		b = appendJSONString(b, msg)
		for _, f := range fields {
			b = append(b, ',')
			b = appendJSONString(b, f.Key)
			b = append(b, ':')
			b = appendJSONValue(b, f)
		}
		b = append(b, '}', '\n')
	} else {
		b = now.AppendFormat(b, logTimeFormat)
		b = append(b, ' ')
		b = append(b, lv.String()...)
		b = append(b, ' ')
		b = append(b, msg...)
		for _, f := range fields {
			b = append(b, ' ')
			b = append(b, f.Key...)
			b = append(b, '=')
			b = appendTextValue(b, f)
		}
		b = append(b, '\n')
	}
	_, _ = l.w.Write(b)
	l.buf = b[:0] // keep any growth for reuse
	l.mu.Unlock()
}

func appendJSONValue(b []byte, f Field) []byte {
	switch f.kind {
	case fkString:
		return appendJSONString(b, f.str)
	case fkInt:
		return strconv.AppendInt(b, f.num, 10)
	case fkUint:
		return strconv.AppendUint(b, uint64(f.num), 10)
	case fkBool:
		if f.num != 0 {
			return append(b, "true"...)
		}
		return append(b, "false"...)
	case fkDuration:
		return strconv.AppendFloat(b, time.Duration(f.num).Seconds(), 'f', 6, 64)
	default: // fkFloat
		return strconv.AppendFloat(b, f.f, 'g', -1, 64)
	}
}

func appendTextValue(b []byte, f Field) []byte {
	switch f.kind {
	case fkString:
		if needsQuoting(f.str) {
			return appendJSONString(b, f.str)
		}
		return append(b, f.str...)
	case fkDuration:
		b = strconv.AppendFloat(b, time.Duration(f.num).Seconds(), 'f', 6, 64)
		return append(b, 's')
	default:
		return appendJSONValue(b, f)
	}
}

func needsQuoting(s string) bool {
	if s == "" {
		return true
	}
	for i := 0; i < len(s); i++ {
		if c := s[i]; c <= ' ' || c == '"' || c == '=' || c == 0x7f {
			return true
		}
	}
	return false
}

const hexDigits = "0123456789abcdef"

// appendJSONString appends s as a JSON string literal without
// allocating: the common escapes inline, control characters as \u00XX,
// everything else (including multi-byte UTF-8) byte-for-byte.
func appendJSONString(b []byte, s string) []byte {
	b = append(b, '"')
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c == '"' || c == '\\':
			b = append(b, '\\', c)
		case c == '\n':
			b = append(b, '\\', 'n')
		case c == '\r':
			b = append(b, '\\', 'r')
		case c == '\t':
			b = append(b, '\\', 't')
		case c < 0x20:
			b = append(b, '\\', 'u', '0', '0', hexDigits[c>>4], hexDigits[c&0xf])
		default:
			b = append(b, c)
		}
	}
	return append(b, '"')
}
