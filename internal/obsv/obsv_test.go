package obsv

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"
)

func TestNilTracerIsNoOp(t *testing.T) {
	var tr *Tracer
	if tr.Enabled() {
		t.Fatal("nil tracer reports enabled")
	}
	sp := tr.Begin("cat", "name")
	sp.End(A("k", 1))
	tr.Instant("cat", "i")
	tr.Counter("c", 7)
	if got := tr.Events(); got != nil {
		t.Fatalf("nil tracer recorded %v", got)
	}
	if tr.Dropped() != 0 || tr.NewTID() != 1 {
		t.Fatal("nil tracer accessors not inert")
	}
	var sb strings.Builder
	if err := tr.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "disabled") {
		t.Fatalf("nil WriteText = %q", sb.String())
	}
}

func TestTracerRecordsSpans(t *testing.T) {
	tr := NewTracer()
	outer := tr.Begin("eval", "outer")
	inner := tr.Begin("engine", "inner")
	time.Sleep(time.Millisecond)
	inner.End(A("facts", 42))
	tr.Counter("worklist", 3)
	tr.Instant("engine", "mark")
	outer.End()

	evs := tr.Events()
	if len(evs) != 4 {
		t.Fatalf("got %d events, want 4", len(evs))
	}
	names := tr.SpanNames()
	if len(names) != 2 || names[0] != "inner" || names[1] != "outer" {
		t.Fatalf("SpanNames = %v", names)
	}
	var found bool
	for _, e := range evs {
		if e.Name == "inner" {
			found = true
			if e.Dur < time.Millisecond {
				t.Fatalf("inner span duration %v too short", e.Dur)
			}
			if len(e.Args) != 1 || e.Args[0].Key != "facts" || e.Args[0].Val != 42 {
				t.Fatalf("inner args = %v", e.Args)
			}
		}
	}
	if !found {
		t.Fatal("inner span not recorded")
	}

	var text strings.Builder
	if err := tr.WriteText(&text); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"outer", "inner", "facts=42", "worklist"} {
		if !strings.Contains(text.String(), want) {
			t.Fatalf("text output missing %q:\n%s", want, text.String())
		}
	}
}

func TestChromeJSONParses(t *testing.T) {
	tr := NewTracer()
	sp := tr.Begin("eval", "eval")
	tr.Begin("engine", "component sg").End(A("facts", 9))
	sp.End()

	var buf bytes.Buffer
	if err := tr.WriteChromeJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var out struct {
		TraceEvents []struct {
			Name string           `json:"name"`
			Ph   string           `json:"ph"`
			TS   float64          `json:"ts"`
			PID  int64            `json:"pid"`
			TID  int64            `json:"tid"`
			Args map[string]int64 `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &out); err != nil {
		t.Fatalf("trace JSON does not parse: %v\n%s", err, buf.String())
	}
	if len(out.TraceEvents) != 2 {
		t.Fatalf("got %d trace events, want 2", len(out.TraceEvents))
	}
	for _, e := range out.TraceEvents {
		if e.Ph != "X" || e.PID != 1 || e.TID != 1 {
			t.Fatalf("unexpected event shape %+v", e)
		}
	}
	if out.TraceEvents[0].Args != nil && out.TraceEvents[0].Args["facts"] != 9 {
		// Event order is by start time; the component span started second
		// but args may appear on either depending on timestamps.
		t.Logf("args: %+v", out.TraceEvents)
	}
}

func TestTracerEventCap(t *testing.T) {
	tr := NewTracer()
	tr.max = 4
	for i := 0; i < 10; i++ {
		tr.Begin("c", "s").End()
	}
	if got := len(tr.Events()); got != 4 {
		t.Fatalf("got %d events, want cap 4", got)
	}
	if got := tr.Dropped(); got != 6 {
		t.Fatalf("Dropped = %d, want 6", got)
	}
}

func TestRegistryPrometheusFormat(t *testing.T) {
	r := NewRegistry()
	c := r.NewCounter("test_total", "A test counter.")
	g := r.NewGauge("test_gauge", "A test gauge.")
	lc := r.NewLabeledCounter("test_by_kind_total", "A labeled counter.", "kind")
	h := r.NewHistogram("test_seconds", "A histogram.", []float64{0.1, 1})

	c.Add(3)
	g.Set(-7)
	lc.Add("magic", 2)
	lc.Add("counting", 1)
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(5)

	var buf bytes.Buffer
	r.WritePrometheus(&buf)
	out := buf.String()

	for _, want := range []string{
		"# HELP test_total A test counter.",
		"# TYPE test_total counter",
		"test_total 3",
		"test_gauge -7",
		`test_by_kind_total{kind="counting"} 1`,
		`test_by_kind_total{kind="magic"} 2`,
		`test_seconds_bucket{le="0.1"} 1`,
		`test_seconds_bucket{le="1"} 2`,
		`test_seconds_bucket{le="+Inf"} 3`,
		"test_seconds_sum 5.55",
		"test_seconds_count 3",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}

	// Structural validity: every non-comment line is "name[{labels}] value".
	for _, line := range strings.Split(strings.TrimSpace(out), "\n") {
		if strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 2 {
			t.Fatalf("malformed exposition line %q", line)
		}
	}
}

func TestDuplicateMetricPanics(t *testing.T) {
	r := NewRegistry()
	r.NewCounter("dup_total", "x")
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate registration did not panic")
		}
	}()
	r.NewCounter("dup_total", "y")
}

func TestRecordEvalFoldsSample(t *testing.T) {
	before := MInferences.Value()
	beforeEvals := MEvaluations.Value("test-strategy")
	RecordEval(EvalSample{
		Strategy: "test-strategy", Inferences: 11, Probes: 5,
		CountingNodes: 64, Duration: 2 * time.Millisecond,
	})
	if got := MInferences.Value() - before; got != 11 {
		t.Fatalf("inferences delta = %d, want 11", got)
	}
	if got := MEvaluations.Value("test-strategy") - beforeEvals; got != 1 {
		t.Fatalf("evaluations delta = %d, want 1", got)
	}
	if MCountingSetLast.Value() != 64 {
		t.Fatalf("counting-set gauge = %d, want 64", MCountingSetLast.Value())
	}
	RecordEval(EvalSample{Strategy: "test-strategy", ErrClass: "limit"})
	if MEvalErrors.Value("limit") == 0 {
		t.Fatal("error class not counted")
	}
}

func TestServeEndpoints(t *testing.T) {
	tr := NewTracer()
	tr.Begin("eval", "eval").End()
	SetLastTrace(tr)

	srv, err := Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	get := func(path string) (int, string) {
		resp, err := http.Get("http://" + srv.Addr + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(body)
	}

	if code, body := get("/metrics"); code != 200 || !strings.Contains(body, "lincount_evaluations_total") {
		t.Fatalf("/metrics: code=%d body=%.120q", code, body)
	}
	if code, body := get("/trace.json"); code != 200 || !strings.Contains(body, "traceEvents") {
		t.Fatalf("/trace.json: code=%d body=%.120q", code, body)
	} else {
		var js map[string]any
		if err := json.Unmarshal([]byte(body), &js); err != nil {
			t.Fatalf("/trace.json invalid JSON: %v", err)
		}
	}
	if code, _ := get("/trace.txt"); code != 200 {
		t.Fatalf("/trace.txt: code=%d", code)
	}
	if code, body := get("/debug/pprof/cmdline"); code != 200 || body == "" {
		t.Fatalf("/debug/pprof/cmdline: code=%d", code)
	}
	if code, body := get("/"); code != 200 || !strings.Contains(body, "/metrics") {
		t.Fatalf("index: code=%d body=%.120q", code, body)
	}
	if code, _ := get("/nope"); code != 404 {
		t.Fatalf("unknown path: code=%d, want 404", code)
	}
}
