package obsv

// RequestLog is a bounded ring of completed-request diagnostic records —
// the query server's slow-query log. Records are plain data (JSON-ready
// field types only) so the obsv layer stays free of engine imports; the
// server fills them from its own result types.

import (
	"sync"
	"time"
)

// PlannerRank is one entry of the planner ranking captured in a
// RequestRecord: a candidate strategy, its cost estimate, and the
// reasoning — what the Auto planner saw when the request was planned.
type PlannerRank struct {
	Strategy string  `json:"strategy"`
	Cost     float64 `json:"cost"`
	Reason   string  `json:"reason,omitempty"`
}

// RuleRecord is one rule's profile inside a RequestRecord: where the
// evaluation's time and inferences went, per rule.
type RuleRecord struct {
	Rule         string `json:"rule"`
	Runs         int    `json:"runs"`
	Inferences   int64  `json:"inferences"`
	DerivedFacts int64  `json:"derived_facts"`
	DurationUS   int64  `json:"duration_us"`
}

// AttemptRecord is one failed Auto-chain attempt inside a RequestRecord
// — the degradation chain a slow request walked before answering.
type AttemptRecord struct {
	Strategy   string `json:"strategy"`
	Err        string `json:"error,omitempty"`
	DurationUS int64  `json:"duration_us"`
}

// RequestRecord is the full diagnostic record of one completed request:
// identity (registry id + request id), what ran (query, strategy,
// epoch), where the time went (queue wait vs evaluation, per-rule
// profiles), and how planning resolved (ranking, degradation chain,
// plan-cache hit). The slow-query log stores these; GET
// /v1/debug/slowlog serves them verbatim.
type RequestRecord struct {
	ID        uint64 `json:"id,omitempty"`
	RequestID string `json:"request_id,omitempty"`
	Handler   string `json:"handler"`
	Query     string `json:"query,omitempty"`
	// Strategy is the concrete strategy that answered — "materialized"
	// for reads served from the maintained materialisation, an engine
	// strategy name for requests that evaluated.
	Strategy string    `json:"strategy,omitempty"`
	Epoch    uint64    `json:"epoch"`
	Start    time.Time `json:"start"`
	// DurationUS is end-to-end (queue wait included); QueueWaitUS is the
	// admission-queue share of it.
	DurationUS  int64  `json:"duration_us"`
	QueueWaitUS int64  `json:"queue_wait_us"`
	Outcome     string `json:"outcome"`
	Err         string `json:"error,omitempty"`

	PlanCacheHit bool            `json:"plan_cache_hit,omitempty"`
	Planner      []PlannerRank   `json:"planner,omitempty"`
	Rules        []RuleRecord    `json:"rules,omitempty"`
	Degraded     []AttemptRecord `json:"degraded,omitempty"`

	DerivedFacts int64 `json:"derived_facts,omitempty"`
	AnswerTuples int   `json:"answer_tuples,omitempty"`
}

// RequestLog is a fixed-capacity ring of RequestRecords, newest
// overwriting oldest. A nil *RequestLog is a valid disabled log (Add is
// a no-op after one pointer comparison). Safe for concurrent use.
type RequestLog struct {
	mu    sync.Mutex
	buf   []RequestRecord
	next  int
	n     int
	total uint64
}

// NewRequestLog returns a ring holding the last capacity records
// (capacity < 1 is treated as 1).
func NewRequestLog(capacity int) *RequestLog {
	if capacity < 1 {
		capacity = 1
	}
	return &RequestLog{buf: make([]RequestRecord, capacity)}
}

// Add appends one record, evicting the oldest at capacity.
func (l *RequestLog) Add(r RequestRecord) {
	if l == nil {
		return
	}
	l.mu.Lock()
	l.buf[l.next] = r
	l.next = (l.next + 1) % len(l.buf)
	if l.n < len(l.buf) {
		l.n++
	}
	l.total++
	l.mu.Unlock()
}

// Snapshot returns the retained records, newest first.
func (l *RequestLog) Snapshot() []RequestRecord {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]RequestRecord, 0, l.n)
	for i := 1; i <= l.n; i++ {
		out = append(out, l.buf[(l.next-i+len(l.buf))%len(l.buf)])
	}
	return out
}

// Total returns how many records were ever added (including evicted
// ones) — the monotonic slowlog counter.
func (l *RequestLog) Total() uint64 {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.total
}
