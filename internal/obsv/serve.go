package obsv

import (
	"context"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"sync/atomic"
	"time"
)

// The serving surface: one http.Handler exposing the metrics registry in
// Prometheus text format, the runtime profiler, and the most recent
// evaluation trace. CLIs opt in with an -obs flag; the library never
// starts a server on its own.

// lastTrace holds the most recently completed evaluation trace for
// /trace.json; CLIs publish into it after each traced evaluation.
var lastTrace atomic.Pointer[Tracer]

// SetLastTrace publishes t as the trace served at /trace.json.
func SetLastTrace(t *Tracer) {
	if t != nil {
		lastTrace.Store(t)
	}
}

// LastTrace returns the most recently published trace, or nil.
func LastTrace() *Tracer { return lastTrace.Load() }

// Handler returns the observability mux:
//
//	/              a plain-text index of the endpoints
//	/metrics       the default registry, Prometheus text format
//	/trace.json    the last published trace, Chrome trace-event JSON
//	/trace.txt     the same trace as human-readable text
//	/debug/pprof/  the net/http/pprof profiler family
func Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprint(w, "lincount observability\n\n"+
			"/metrics        Prometheus text exposition\n"+
			"/trace.json     last evaluation trace (chrome://tracing format)\n"+
			"/trace.txt      last evaluation trace (text)\n"+
			"/debug/pprof/   runtime profiles (cpu, heap, goroutine, ...)\n")
	})
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		Default.WritePrometheus(w)
	})
	mux.HandleFunc("/trace.json", func(w http.ResponseWriter, r *http.Request) {
		t := LastTrace()
		if t == nil {
			http.Error(w, "no trace recorded yet; run a traced evaluation first", http.StatusNotFound)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		_ = t.WriteChromeJSON(w)
	})
	mux.HandleFunc("/trace.txt", func(w http.ResponseWriter, r *http.Request) {
		t := LastTrace()
		if t == nil {
			http.Error(w, "no trace recorded yet; run a traced evaluation first", http.StatusNotFound)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		_ = t.WriteText(w)
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// Server is a running observability listener.
type Server struct {
	// Addr is the bound address (useful with ":0").
	Addr string
	l    net.Listener
	srv  *http.Server
}

// Serve binds addr (e.g. ":9464" or "127.0.0.1:0") and serves Handler on
// it in a background goroutine until Close.
func Serve(addr string) (*Server, error) {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obsv: %w", err)
	}
	srv := &http.Server{Handler: Handler()}
	go func() { _ = srv.Serve(l) }()
	return &Server{Addr: l.Addr().String(), l: l, srv: srv}, nil
}

// Shutdown stops the listener gracefully: it stops accepting new
// connections and waits for in-flight requests (a half-fetched /metrics
// scrape, a running pprof profile) to finish, up to ctx's deadline. The
// serving goroutine exits once http.Server.Shutdown returns, so a CLI
// that shuts down at exit leaks nothing.
func (s *Server) Shutdown(ctx context.Context) error {
	if s == nil {
		return nil
	}
	return s.srv.Shutdown(ctx)
}

// ShutdownTimeout is Shutdown bounded by a fresh deadline — the one-line
// form every CLI defers at exit.
func (s *Server) ShutdownTimeout(d time.Duration) error {
	if s == nil {
		return nil
	}
	ctx, cancel := context.WithTimeout(context.Background(), d)
	defer cancel()
	return s.srv.Shutdown(ctx)
}

// Close stops the listener immediately, dropping in-flight requests.
// Prefer Shutdown/ShutdownTimeout at orderly exit.
func (s *Server) Close() error {
	if s == nil {
		return nil
	}
	return s.srv.Close()
}
