package obsv

import (
	"expvar"
	"fmt"
	"io"
	"sort"
	"strconv"
	"sync"
	"time"
)

// The metrics registry: counters, gauges and histograms backed by the
// stdlib expvar package (every metric of the default registry is also
// visible under /debug/vars), rendered in the Prometheus text exposition
// format by WritePrometheus. No third-party client library — the text
// format is a few lines of fmt.

// metric is what every instrument renders for the exposition endpoint.
type metric interface {
	name() string
	help() string
	kind() string // "counter", "gauge", "histogram"
	expose(w io.Writer)
}

// Registry holds metrics in registration order. Use NewRegistry for
// tests; package-level evaluation metrics live in Default.
type Registry struct {
	mu      sync.Mutex
	metrics []metric
	names   map[string]bool
	// publish mirrors scalar metrics into the process-global expvar
	// namespace (only the default registry does, since expvar.Publish
	// panics on duplicate names).
	publish bool
}

// NewRegistry returns an empty registry that does not publish to expvar.
func NewRegistry() *Registry { return &Registry{names: map[string]bool{}} }

// Default is the process-wide registry the evaluation facade records
// into and the /metrics endpoint serves.
var Default = &Registry{names: map[string]bool{}, publish: true}

func (r *Registry) add(m metric, v expvar.Var) {
	r.mu.Lock()
	if r.names[m.name()] {
		r.mu.Unlock()
		panic("obsv: duplicate metric " + m.name())
	}
	r.names[m.name()] = true
	r.metrics = append(r.metrics, m)
	r.mu.Unlock()
	if r.publish && v != nil {
		expvar.Publish(m.name(), v)
	}
}

// WritePrometheus renders every registered metric in the Prometheus text
// exposition format (version 0.0.4).
func (r *Registry) WritePrometheus(w io.Writer) {
	r.mu.Lock()
	ms := make([]metric, len(r.metrics))
	copy(ms, r.metrics)
	r.mu.Unlock()
	for _, m := range ms {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", m.name(), m.help(), m.name(), m.kind())
		m.expose(w)
	}
}

// Counter is a monotonically increasing integer metric.
type Counter struct {
	n, h string
	v    expvar.Int
}

// NewCounter registers a counter.
func (r *Registry) NewCounter(name, help string) *Counter {
	c := &Counter{n: name, h: help}
	r.add(c, &c.v)
	return c
}

// Add increments the counter by d (d must be >= 0).
func (c *Counter) Add(d int64) { c.v.Add(d) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Value() }

func (c *Counter) name() string { return c.n }
func (c *Counter) help() string { return c.h }
func (c *Counter) kind() string { return "counter" }
func (c *Counter) expose(w io.Writer) {
	fmt.Fprintf(w, "%s %d\n", c.n, c.v.Value())
}

// Gauge is a settable integer metric.
type Gauge struct {
	n, h string
	v    expvar.Int
}

// NewGauge registers a gauge.
func (r *Registry) NewGauge(name, help string) *Gauge {
	g := &Gauge{n: name, h: help}
	r.add(g, &g.v)
	return g
}

// Set records the gauge's current value.
func (g *Gauge) Set(v int64) { g.v.Set(v) }

// Add adjusts the gauge by d (either sign), for gauges tracking a
// resident count via deltas.
func (g *Gauge) Add(d int64) { g.v.Add(d) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Value() }

func (g *Gauge) name() string { return g.n }
func (g *Gauge) help() string { return g.h }
func (g *Gauge) kind() string { return "gauge" }
func (g *Gauge) expose(w io.Writer) {
	fmt.Fprintf(w, "%s %d\n", g.n, g.v.Value())
}

// LabeledCounter is a family of counters keyed by one label (e.g. the
// evaluation strategy). Backed by expvar.Map so the default registry's
// families also appear under /debug/vars.
type LabeledCounter struct {
	n, h, label string
	m           expvar.Map
}

// NewLabeledCounter registers a counter family with one label dimension.
func (r *Registry) NewLabeledCounter(name, help, label string) *LabeledCounter {
	c := &LabeledCounter{n: name, h: help, label: label}
	c.m.Init()
	r.add(c, &c.m)
	return c
}

// Add increments the counter for the given label value.
func (c *LabeledCounter) Add(labelValue string, d int64) { c.m.Add(labelValue, d) }

// Value returns the count for one label value.
func (c *LabeledCounter) Value(labelValue string) int64 {
	if v, ok := c.m.Get(labelValue).(*expvar.Int); ok {
		return v.Value()
	}
	return 0
}

func (c *LabeledCounter) name() string { return c.n }
func (c *LabeledCounter) help() string { return c.h }
func (c *LabeledCounter) kind() string { return "counter" }
func (c *LabeledCounter) expose(w io.Writer) {
	type kv struct {
		k string
		v int64
	}
	var rows []kv
	c.m.Do(func(e expvar.KeyValue) {
		if v, ok := e.Value.(*expvar.Int); ok {
			rows = append(rows, kv{e.Key, v.Value()})
		}
	})
	sort.Slice(rows, func(i, j int) bool { return rows[i].k < rows[j].k })
	for _, r := range rows {
		fmt.Fprintf(w, "%s{%s=%q} %d\n", c.n, c.label, r.k, r.v)
	}
}

// Histogram is a fixed-bucket cumulative histogram of float64
// observations.
type Histogram struct {
	n, h    string
	bounds  []float64 // upper bounds, ascending; +Inf is implicit
	mu      sync.Mutex
	counts  []uint64 // len(bounds)+1, last is the +Inf bucket
	sum     float64
	samples uint64
}

// NewHistogram registers a histogram with the given ascending bucket
// upper bounds.
func (r *Registry) NewHistogram(name, help string, bounds []float64) *Histogram {
	h := &Histogram{n: name, h: help, bounds: bounds, counts: make([]uint64, len(bounds)+1)}
	r.add(h, expvar.Func(h.snapshot))
	return h
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	h.mu.Lock()
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i]++
	h.sum += v
	h.samples++
	h.mu.Unlock()
}

// Count returns the number of samples observed.
func (h *Histogram) Count() uint64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.samples
}

// snapshot is the expvar view of the histogram.
func (h *Histogram) snapshot() any {
	h.mu.Lock()
	defer h.mu.Unlock()
	return map[string]any{"count": h.samples, "sum": h.sum}
}

func (h *Histogram) name() string { return h.n }
func (h *Histogram) help() string { return h.h }
func (h *Histogram) kind() string { return "histogram" }
func (h *Histogram) expose(w io.Writer) {
	h.mu.Lock()
	defer h.mu.Unlock()
	cum := uint64(0)
	for i, b := range h.bounds {
		cum += h.counts[i]
		fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", h.n, formatBound(b), cum)
	}
	cum += h.counts[len(h.bounds)]
	fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", h.n, cum)
	fmt.Fprintf(w, "%s_sum %g\n", h.n, h.sum)
	fmt.Fprintf(w, "%s_count %d\n", h.n, h.samples)
}

func formatBound(b float64) string {
	return strconv.FormatFloat(b, 'g', -1, 64)
}

// LabeledHistogram is a family of histograms keyed by two labels (e.g.
// handler × outcome). Series are created on first observation; Observe
// on an existing series takes the family mutex and allocates nothing
// (the [2]string map key lives on the stack).
type LabeledHistogram struct {
	n, h   string
	labels [2]string
	bounds []float64
	mu     sync.Mutex
	series map[[2]string]*histSeries
}

type histSeries struct {
	counts  []uint64 // len(bounds)+1, last is the +Inf bucket
	sum     float64
	samples uint64
}

// NewLabeledHistogram registers a histogram family with two label
// dimensions and the given ascending bucket upper bounds.
func (r *Registry) NewLabeledHistogram(name, help string, labels [2]string, bounds []float64) *LabeledHistogram {
	h := &LabeledHistogram{n: name, h: help, labels: labels, bounds: bounds,
		series: make(map[[2]string]*histSeries)}
	r.add(h, expvar.Func(h.snapshot))
	return h
}

// Observe records one sample for the (v1, v2) label pair.
func (h *LabeledHistogram) Observe(v1, v2 string, v float64) {
	h.mu.Lock()
	s := h.series[[2]string{v1, v2}]
	if s == nil {
		s = &histSeries{counts: make([]uint64, len(h.bounds)+1)}
		h.series[[2]string{v1, v2}] = s
	}
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	s.counts[i]++
	s.sum += v
	s.samples++
	h.mu.Unlock()
}

// Count returns the number of samples for one label pair.
func (h *LabeledHistogram) Count(v1, v2 string) uint64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	if s := h.series[[2]string{v1, v2}]; s != nil {
		return s.samples
	}
	return 0
}

// snapshot is the expvar view: per-series count and sum.
func (h *LabeledHistogram) snapshot() any {
	h.mu.Lock()
	defer h.mu.Unlock()
	out := map[string]any{}
	for k, s := range h.series {
		out[k[0]+","+k[1]] = map[string]any{"count": s.samples, "sum": s.sum}
	}
	return out
}

func (h *LabeledHistogram) name() string { return h.n }
func (h *LabeledHistogram) help() string { return h.h }
func (h *LabeledHistogram) kind() string { return "histogram" }
func (h *LabeledHistogram) expose(w io.Writer) {
	h.mu.Lock()
	keys := make([][2]string, 0, len(h.series))
	for k := range h.series {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i][0] != keys[j][0] {
			return keys[i][0] < keys[j][0]
		}
		return keys[i][1] < keys[j][1]
	})
	for _, k := range keys {
		s := h.series[k]
		cum := uint64(0)
		for i, b := range h.bounds {
			cum += s.counts[i]
			fmt.Fprintf(w, "%s_bucket{%s=%q,%s=%q,le=%q} %d\n",
				h.n, h.labels[0], k[0], h.labels[1], k[1], formatBound(b), cum)
		}
		cum += s.counts[len(h.bounds)]
		fmt.Fprintf(w, "%s_bucket{%s=%q,%s=%q,le=\"+Inf\"} %d\n",
			h.n, h.labels[0], k[0], h.labels[1], k[1], cum)
		fmt.Fprintf(w, "%s_sum{%s=%q,%s=%q} %g\n", h.n, h.labels[0], k[0], h.labels[1], k[1], s.sum)
		fmt.Fprintf(w, "%s_count{%s=%q,%s=%q} %d\n", h.n, h.labels[0], k[0], h.labels[1], k[1], s.samples)
	}
	h.mu.Unlock()
}

// The canonical evaluation metrics, recorded once per Eval by the public
// facade — coarse enough that an evaluation's hot loops never touch an
// atomic, complete enough to keep the paper's comparative quantities
// (inferences, probes, counting-set size) trending on a dashboard.
var (
	MEvaluations = Default.NewLabeledCounter("lincount_evaluations_total",
		"Completed evaluations by concrete strategy.", "strategy")
	MEvalErrors = Default.NewLabeledCounter("lincount_eval_errors_total",
		"Failed evaluations by error class (limit, canceled, internal, other).", "class")
	MInferences = Default.NewCounter("lincount_inferences_total",
		"Successful rule instantiations across all evaluations (including rederivations).")
	MProbes = Default.NewCounter("lincount_probes_total",
		"Index probes and scans across all evaluations.")
	MDerivedFacts = Default.NewCounter("lincount_derived_facts_total",
		"Distinct derived tuples across all evaluations.")
	MAnswerTuples = Default.NewCounter("lincount_answer_tuples_total",
		"Distinct answer-predicate tuples across all evaluations.")
	MArenaValues = Default.NewCounter("lincount_arena_values_total",
		"Term values appended to columnar storage arenas (arena growth).")
	MCountingSetLast = Default.NewGauge("lincount_counting_set_size",
		"Counting-set size (nodes) of the most recent counting evaluation.")
	MCountingSet = Default.NewHistogram("lincount_counting_set_nodes",
		"Distribution of counting-set sizes across counting evaluations.",
		[]float64{1, 4, 16, 64, 256, 1024, 4096, 16384, 65536})
	MDegradations = Default.NewCounter("lincount_degradation_attempts_total",
		"Failed Auto-chain strategy attempts that fell back to the next strategy.")
	MFaultHits = Default.NewCounter("lincount_fault_injection_hits_total",
		"Injected faults fired by the chaos harness.")
	MEvalDuration = Default.NewHistogram("lincount_eval_duration_seconds",
		"Wall-clock evaluation time, including rewriting.",
		[]float64{1e-5, 1e-4, 1e-3, 1e-2, 0.1, 1, 10, 60})
	MPlanCacheHits = Default.NewCounter("lincount_plan_cache_hits_total",
		"Compiled-plan lookups served from a program's plan cache.")
	MPlanCacheMisses = Default.NewCounter("lincount_plan_cache_misses_total",
		"Compiled-plan lookups that had to run the compilation pipeline.")
	MPlanCacheEntries = Default.NewGauge("lincount_plan_cache_entries",
		"Compiled plans inserted minus evicted across all plan caches over the process lifetime.")
	MPlannerChoices = Default.NewLabeledCounter("lincount_planner_choice_total",
		"Auto planner rankings by the strategy ranked first.", "strategy")
	MCompileDuration = Default.NewHistogram("lincount_compile_duration_seconds",
		"Wall-clock time of plan-cache-miss query compilations (adorn, analyze, rewrite).",
		[]float64{1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 0.1, 1})
)

// The query-server metrics, recorded by internal/server: request
// outcomes, admission-control sheds, the in-flight/queued gauges the
// load shedder exposes, write-batch behavior, and the current snapshot
// epoch. Latencies are end-to-end (admission wait included) so p99 under
// load reflects what a client actually sees.
var (
	MServerRequests = Default.NewLabeledCounter("lincount_server_requests_total",
		"Query-server requests accepted for processing, by endpoint.", "endpoint")
	MServerErrors = Default.NewLabeledCounter("lincount_server_errors_total",
		"Query-server requests that failed, by error class (busy, draining, canceled, limit, bad_request, internal, other).", "class")
	MServerShed = Default.NewCounter("lincount_server_shed_total",
		"Requests rejected by admission control (semaphore full and wait queue at capacity, or write queue full).")
	MServerInFlight = Default.NewGauge("lincount_server_in_flight",
		"Requests currently holding an admission slot or waiting on the write path.")
	MServerQueued = Default.NewGauge("lincount_server_queued",
		"Requests waiting in the admission queue for a concurrency slot.")
	MServerReqDuration = Default.NewLabeledHistogram("lincount_request_duration_seconds",
		"End-to-end query-server request latency by handler and outcome (ok, shed, timeout, killed, error), admission wait included.",
		[2]string{"handler", "outcome"},
		[]float64{1e-5, 1e-4, 1e-3, 1e-2, 0.1, 1, 10, 60})
	MServerQueueWait = Default.NewHistogram("lincount_server_queue_wait_seconds",
		"Time read requests spent waiting in the admission queue for a concurrency slot.",
		[]float64{1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 0.1, 1, 10})
	MServerSlowQueries = Default.NewCounter("lincount_server_slow_queries_total",
		"Requests recorded in the slow-query log (latency over the configured threshold).")
	MServerQueriesKilled = Default.NewCounter("lincount_server_queries_killed_total",
		"In-flight queries canceled through the active-query registry (DELETE /v1/queries/{id}).")
	MServerWriteBatches = Default.NewCounter("lincount_server_write_batches_total",
		"Write batches published as new epoch snapshots.")
	MServerWriteBatchOps = Default.NewHistogram("lincount_server_write_batch_ops",
		"Write requests coalesced per published batch.",
		[]float64{1, 2, 4, 8, 16, 32, 64, 128})
	MServerWriteRetries = Default.NewCounter("lincount_server_write_retries_total",
		"Write-batch apply attempts retried after a retryable failure.")
	MServerEpoch = Default.NewGauge("lincount_server_epoch",
		"Current published snapshot epoch (increments once per write batch).")
	MServerMaintBatches = Default.NewCounter("lincount_server_maint_batches_total",
		"Write batches applied through incremental materialisation maintenance.")
	MServerMaintFallbacks = Default.NewCounter("lincount_server_maint_fallbacks_total",
		"Write batches that fell back from maintenance to base apply plus full re-materialisation.")
	MServerDrains = Default.NewCounter("lincount_server_drains_total",
		"Graceful drains initiated (SIGTERM/SIGINT or explicit Drain).")
	MServerDrainCanceled = Default.NewCounter("lincount_server_drain_canceled_total",
		"In-flight requests force-canceled because the drain deadline expired.")
)

// The durability metrics, recorded by internal/wal and the server's
// checkpoint/recovery paths: append volume, fsync latency (the floor
// under write-acknowledgment latency when the policy is "always"),
// checkpoint cadence, and what boot-time recovery had to replay or
// discard.
var (
	MWALRecords = Default.NewCounter("lincount_wal_records_total",
		"Batch records appended to the write-ahead log.")
	MWALBytes = Default.NewCounter("lincount_wal_bytes_total",
		"Bytes appended to the write-ahead log (framing included).")
	MWALFsyncSeconds = Default.NewHistogram("lincount_wal_fsync_seconds",
		"Write-ahead-log fsync latency.",
		[]float64{1e-5, 1e-4, 1e-3, 1e-2, 0.1, 1})
	MWALCheckpoints = Default.NewCounter("lincount_wal_checkpoints_total",
		"Checkpoints completed (snapshot written, manifest swapped, log truncated).")
	MWALCheckpointErrors = Default.NewCounter("lincount_wal_checkpoint_errors_total",
		"Checkpoints aborted by an error; the previous manifest/segment pair stays live.")
	MWALCheckpointSeconds = Default.NewHistogram("lincount_wal_checkpoint_seconds",
		"Wall-clock checkpoint duration (rotation through manifest swap).",
		[]float64{1e-3, 1e-2, 0.1, 1, 10, 60})
	MWALRecoveryRecords = Default.NewCounter("lincount_wal_recovery_records_total",
		"WAL records replayed during boot-time recovery.")
	MWALRecoveryTruncated = Default.NewCounter("lincount_wal_recovery_truncated_bytes_total",
		"Torn-tail bytes truncated from the live segment during recovery.")
)

// EvalSample is the once-per-evaluation metrics record. Fields mirror
// the public Stats plus the outcome.
type EvalSample struct {
	Strategy      string // concrete strategy that answered (or was attempted)
	Inferences    int64
	Probes        int64
	DerivedFacts  int64
	AnswerTuples  int64
	ArenaValues   int64
	CountingNodes int64
	Degradations  int64
	FaultHits     int64
	Duration      time.Duration
	// ErrClass is "" for success, else one of "limit", "canceled",
	// "internal", "other".
	ErrClass string
}

// RecordEval folds one evaluation into the default registry. It performs
// a fixed handful of atomic adds and two mutexed histogram observations —
// no allocation — so the facade can call it unconditionally.
func RecordEval(s EvalSample) {
	if s.ErrClass != "" {
		MEvalErrors.Add(s.ErrClass, 1)
	} else {
		MEvaluations.Add(s.Strategy, 1)
	}
	MInferences.Add(s.Inferences)
	MProbes.Add(s.Probes)
	MDerivedFacts.Add(s.DerivedFacts)
	MAnswerTuples.Add(s.AnswerTuples)
	MArenaValues.Add(s.ArenaValues)
	if s.CountingNodes > 0 {
		MCountingSetLast.Set(s.CountingNodes)
		MCountingSet.Observe(float64(s.CountingNodes))
	}
	MDegradations.Add(s.Degradations)
	MFaultHits.Add(s.FaultHits)
	MEvalDuration.Observe(s.Duration.Seconds())
}
