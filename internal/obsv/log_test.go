package obsv

// The structured logger's contract: nil and suppressed loggers cost
// nothing and emit nothing, JSON output is one parseable object per
// line, text output is scannable logfmt, and the request-log ring
// retains newest-first with a monotonic total.

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"
)

func TestParseLevel(t *testing.T) {
	for in, want := range map[string]Level{
		"debug": LevelDebug, "info": LevelInfo, "warn": LevelWarn, "error": LevelError,
	} {
		got, err := ParseLevel(in)
		if err != nil || got != want {
			t.Errorf("ParseLevel(%q) = (%v, %v), want %v", in, got, err, want)
		}
	}
	if _, err := ParseLevel("loud"); err == nil {
		t.Error("ParseLevel accepted an unknown level")
	}
}

func TestNilLoggerIsNoOp(t *testing.T) {
	var l *Logger
	l.Debug("a")
	l.Info("b", FStr("k", "v"))
	l.Warn("c", FInt("n", 1))
	l.Error("d", FErr("error", errors.New("x")))
	l.SetLevel(LevelDebug)
	if l.Enabled(LevelError) {
		t.Error("nil logger reports Enabled")
	}
}

func TestLoggerJSON(t *testing.T) {
	var buf bytes.Buffer
	l := NewLogger(&buf, "json", LevelInfo)
	l.Debug("dropped", FStr("k", "v"))
	if buf.Len() != 0 {
		t.Fatalf("suppressed level emitted %q", buf.String())
	}
	l.Info("query done",
		FStr("request_id", "abc-1"),
		FInt("rows", -3),
		FUint("epoch", 7),
		FBool("ok", true),
		FDur("elapsed", 1500*time.Millisecond),
		FFloat("cost", 2.5),
		FErr("error", errors.New(`bad "quote"`)),
	)
	line := buf.String()
	if !strings.HasSuffix(line, "\n") || strings.Count(line, "\n") != 1 {
		t.Fatalf("not exactly one line: %q", line)
	}
	var m map[string]any
	if err := json.Unmarshal([]byte(line), &m); err != nil {
		t.Fatalf("output is not JSON: %v\n%q", err, line)
	}
	if m["level"] != "info" || m["msg"] != "query done" {
		t.Fatalf("level/msg = %v/%v", m["level"], m["msg"])
	}
	if m["request_id"] != "abc-1" || m["rows"] != float64(-3) || m["epoch"] != float64(7) {
		t.Fatalf("fields = %v", m)
	}
	if m["ok"] != true || m["elapsed"] != 1.5 || m["cost"] != 2.5 {
		t.Fatalf("fields = %v", m)
	}
	if m["error"] != `bad "quote"` {
		t.Fatalf("error field = %v", m["error"])
	}
	if _, err := time.Parse("2006-01-02T15:04:05.000Z", m["ts"].(string)); err != nil {
		t.Fatalf("timestamp %v: %v", m["ts"], err)
	}
}

func TestLoggerJSONEscapesControlChars(t *testing.T) {
	var buf bytes.Buffer
	l := NewLogger(&buf, "json", LevelInfo)
	l.Info("weird\tmsg\n", FStr("k", "a\x00b"))
	var m map[string]any
	if err := json.Unmarshal(buf.Bytes(), &m); err != nil {
		t.Fatalf("not JSON: %v\n%q", err, buf.String())
	}
	if m["msg"] != "weird\tmsg\n" || m["k"] != "a\x00b" {
		t.Fatalf("roundtrip lost bytes: %q", m)
	}
}

func TestLoggerText(t *testing.T) {
	var buf bytes.Buffer
	l := NewLogger(&buf, "text", LevelWarn)
	l.Info("dropped")
	l.Warn("slow query", FStr("query", "?- sg(a,X)."), FInt("n", 2))
	line := buf.String()
	if strings.Contains(line, "dropped") {
		t.Fatalf("suppressed level leaked: %q", line)
	}
	for _, want := range []string{"warn", "slow query", `query="?- sg(a,X)."`, "n=2"} {
		if !strings.Contains(line, want) {
			t.Fatalf("text line %q missing %q", line, want)
		}
	}
}

func TestLoggerSetLevel(t *testing.T) {
	var buf bytes.Buffer
	l := NewLogger(&buf, "json", LevelError)
	if l.Enabled(LevelInfo) {
		t.Fatal("info enabled at error level")
	}
	l.SetLevel(LevelDebug)
	if !l.Enabled(LevelDebug) {
		t.Fatal("debug not enabled after SetLevel")
	}
	l.Debug("now visible")
	if !strings.Contains(buf.String(), "now visible") {
		t.Fatalf("debug line missing after SetLevel: %q", buf.String())
	}
}

func TestSuppressedLogZeroAlloc(t *testing.T) {
	l := NewLogger(nopWriter{}, "json", LevelError)
	var nl *Logger
	allocs := testing.AllocsPerRun(1000, func() {
		l.Debug("suppressed", FStr("k", "v"), FInt("n", 1))
		nl.Info("nil", FUint("u", 2))
	})
	if allocs != 0 {
		t.Fatalf("suppressed logging allocates %.1f allocs/op, want 0", allocs)
	}
}

type nopWriter struct{}

func (nopWriter) Write(p []byte) (int, error) { return len(p), nil }

func TestRequestLogRing(t *testing.T) {
	var nl *RequestLog
	nl.Add(RequestRecord{}) // nil log is inert
	if nl.Snapshot() != nil || nl.Total() != 0 {
		t.Fatal("nil RequestLog not inert")
	}

	l := NewRequestLog(3)
	for i := 1; i <= 5; i++ {
		l.Add(RequestRecord{ID: uint64(i), Query: fmt.Sprintf("q%d", i)})
	}
	recs := l.Snapshot()
	if len(recs) != 3 {
		t.Fatalf("retained %d records, want 3", len(recs))
	}
	// Newest first: 5, 4, 3 (1 and 2 evicted).
	for i, want := range []uint64{5, 4, 3} {
		if recs[i].ID != want {
			t.Fatalf("recs[%d].ID = %d, want %d", i, recs[i].ID, want)
		}
	}
	if l.Total() != 5 {
		t.Fatalf("Total = %d, want 5", l.Total())
	}

	// Records survive a JSON round trip with their tags.
	b, err := json.Marshal(recs[0])
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(b), `"query":"q5"`) {
		t.Fatalf("JSON = %s", b)
	}
}

func TestRequestLogMinCapacity(t *testing.T) {
	l := NewRequestLog(0)
	l.Add(RequestRecord{ID: 1})
	l.Add(RequestRecord{ID: 2})
	recs := l.Snapshot()
	if len(recs) != 1 || recs[0].ID != 2 {
		t.Fatalf("capacity-1 ring = %+v", recs)
	}
}
