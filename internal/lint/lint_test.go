package lint

import (
	"strings"
	"testing"

	"lincount/internal/ast"
	"lincount/internal/parser"
	"lincount/internal/symtab"
	"lincount/internal/term"
)

func check(t *testing.T, src string) (*ast.Program, []Finding) {
	t.Helper()
	b := term.NewBank(symtab.New())
	res, err := parser.Parse(b, src)
	if err != nil {
		t.Fatal(err)
	}
	return res.Program, Check(res.Program)
}

func hasFinding(fs []Finding, sev Severity, substr string) bool {
	for _, f := range fs {
		if f.Severity == sev && strings.Contains(f.Message, substr) {
			return true
		}
	}
	return false
}

func TestCleanProgram(t *testing.T) {
	_, fs := check(t, `
sg(X,Y) :- flat(X,Y).
sg(X,Y) :- up(X,X1), sg(X1,Y1), down(Y1,Y).
`)
	for _, f := range fs {
		if f.Severity != Info {
			t.Errorf("clean program produced %v", f)
		}
	}
	if !hasFinding(fs, Info, "linear (counting methods applicable)") {
		t.Errorf("missing clique note: %v", fs)
	}
}

func TestUnsafeHeadVariable(t *testing.T) {
	_, fs := check(t, "p(X,Y) :- q(X).")
	if !hasFinding(fs, Error, "head variable Y") {
		t.Errorf("findings: %v", fs)
	}
}

func TestNegationOnlyVariable(t *testing.T) {
	_, fs := check(t, "p(X) :- q(X), not r(X,Z).")
	if !hasFinding(fs, Error, "occurs only under negation") {
		t.Errorf("findings: %v", fs)
	}
}

func TestSingletonVariable(t *testing.T) {
	_, fs := check(t, "p(X) :- q(X,Extra).")
	if !hasFinding(fs, Warning, "Extra occurs only once") {
		t.Errorf("findings: %v", fs)
	}
	// Anonymous variables are exempt.
	_, fs = check(t, "p(X) :- q(X,_).")
	if hasFinding(fs, Warning, "occurs only once") {
		t.Errorf("anonymous variable flagged: %v", fs)
	}
}

func TestArityConflict(t *testing.T) {
	_, fs := check(t, "p(X) :- q(X).\nr(X) :- q(X,X).")
	if !hasFinding(fs, Error, "arities 1 and 2") {
		t.Errorf("findings: %v", fs)
	}
}

func TestBuiltinHead(t *testing.T) {
	_, fs := check(t, "succ(X,X) :- q(X).")
	if !hasFinding(fs, Error, "redefines the builtin") {
		t.Errorf("findings: %v", fs)
	}
}

func TestDuplicateRule(t *testing.T) {
	_, fs := check(t, "p(X) :- q(X).\np(X) :- q(X).")
	if !hasFinding(fs, Warning, "duplicate of rule 1") {
		t.Errorf("findings: %v", fs)
	}
}

func TestUndefinedPredicateInfo(t *testing.T) {
	_, fs := check(t, "p(X) :- mystery(X).")
	if !hasFinding(fs, Info, "mystery has no rules or facts") {
		t.Errorf("findings: %v", fs)
	}
}

func TestCartesianProductWarning(t *testing.T) {
	_, fs := check(t, "p(X,Y) :- q(X), r(Y).")
	if !hasFinding(fs, Warning, "cartesian product") {
		t.Errorf("findings: %v", fs)
	}
	// Connected bodies are fine.
	_, fs = check(t, "p(X,Y) :- q(X,Z), r(Z,Y).")
	if hasFinding(fs, Warning, "cartesian product") {
		t.Errorf("connected body flagged: %v", fs)
	}
	// A transitively connected three-way join is fine.
	_, fs = check(t, "p(X,Y) :- q(X,Z), s(Z,W), r(W,Y).")
	if hasFinding(fs, Warning, "cartesian product") {
		t.Errorf("chained body flagged: %v", fs)
	}
	// Ground guards do not count as product factors.
	_, fs = check(t, "p(X) :- q(X), mode(strict).")
	if hasFinding(fs, Warning, "cartesian product") {
		t.Errorf("ground guard flagged: %v", fs)
	}
}

func TestDeadRuleInfo(t *testing.T) {
	_, fs := check(t, `
helper(X) :- base(X).
entry(X) :- helper(X).
`)
	if !hasFinding(fs, Info, "entry is defined but never used") {
		t.Errorf("findings: %v", fs)
	}
	if hasFinding(fs, Info, "helper is defined but never used") {
		t.Errorf("used predicate flagged: %v", fs)
	}
}

func TestNonLinearCliqueNote(t *testing.T) {
	_, fs := check(t, `
tc(X,Y) :- e(X,Y).
tc(X,Y) :- tc(X,Z), tc(Z,Y).
`)
	if !hasFinding(fs, Info, "non-linear (magic sets will be used)") {
		t.Errorf("findings: %v", fs)
	}
}

func TestNonStratifiedReported(t *testing.T) {
	_, fs := check(t, `
p(X) :- q(X), not r(X).
r(X) :- q(X), not p(X).
`)
	if !hasFinding(fs, Error, "not stratified") {
		t.Errorf("findings: %v", fs)
	}
}

func TestErrorsSortFirst(t *testing.T) {
	_, fs := check(t, `
sg(X,Y) :- flat(X,Y).
broken(X,Y) :- q(X).
`)
	if len(fs) == 0 || fs[0].Severity != Error {
		t.Errorf("findings not sorted by severity: %v", fs)
	}
}

func TestFormatIncludesRule(t *testing.T) {
	p, fs := check(t, "p(X,Y) :- q(X).")
	found := false
	for _, f := range fs {
		text := f.Format(p)
		if strings.Contains(text, "rule 1") && strings.Contains(text, "p(X,Y) :- q(X).") {
			found = true
		}
	}
	if !found {
		t.Errorf("Format lacks rule context: %v", fs)
	}
}
