// Package lint provides static diagnostics for Datalog programs: safety
// problems that would fail at evaluation time, style warnings (singleton
// variables, duplicate rules), and structural analysis notes (recursive
// cliques and their linearity, which determines whether the counting
// methods apply).
package lint

import (
	"fmt"
	"sort"
	"strings"

	"lincount/internal/ast"
	"lincount/internal/engine"
	"lincount/internal/symtab"
)

// Severity grades a finding.
type Severity int

const (
	// Info findings are structural notes (clique classification etc.).
	Info Severity = iota
	// Warning findings are probably bugs but do not stop evaluation.
	Warning
	// Error findings will fail evaluation.
	Error
)

// String implements fmt.Stringer.
func (s Severity) String() string {
	switch s {
	case Error:
		return "error"
	case Warning:
		return "warning"
	default:
		return "info"
	}
}

// Finding is one diagnostic.
type Finding struct {
	Severity Severity
	// RuleIndex is the program rule the finding refers to, or -1 for
	// program-level findings.
	RuleIndex int
	Message   string
}

// Format renders the finding with its rule when available.
func (f Finding) Format(p *ast.Program) string {
	if f.RuleIndex < 0 {
		return fmt.Sprintf("%s: %s", f.Severity, f.Message)
	}
	return fmt.Sprintf("%s: rule %d (%s): %s",
		f.Severity, f.RuleIndex+1, ast.FormatRule(p.Bank, p.Rules[f.RuleIndex]), f.Message)
}

// Check runs every diagnostic over the program and returns the findings,
// errors first, in deterministic order.
func Check(p *ast.Program) []Finding {
	var out []Finding
	out = append(out, checkBuiltinHeads(p)...)
	out = append(out, checkArities(p)...)
	out = append(out, checkSafety(p)...)
	out = append(out, checkSingletons(p)...)
	out = append(out, checkDuplicateRules(p)...)
	out = append(out, checkCartesian(p)...)
	out = append(out, checkDeadRules(p)...)
	out = append(out, checkUndefined(p)...)
	out = append(out, checkCliques(p)...)
	sort.SliceStable(out, func(i, j int) bool {
		return out[i].Severity > out[j].Severity
	})
	return out
}

func checkBuiltinHeads(p *ast.Program) []Finding {
	var out []Finding
	syms := p.Bank.Symbols()
	for i, r := range p.Rules {
		if ast.IsBuiltinName(syms.String(r.Head.Pred)) {
			out = append(out, Finding{Error, i,
				fmt.Sprintf("rule head redefines the builtin predicate %q", syms.String(r.Head.Pred))})
		}
	}
	return out
}

func checkArities(p *ast.Program) []Finding {
	var out []Finding
	syms := p.Bank.Symbols()
	seen := map[symtab.Sym]int{}
	note := func(i int, pred symtab.Sym, n int) {
		if ast.IsBuiltinName(syms.String(pred)) {
			return
		}
		if prev, ok := seen[pred]; ok && prev != n {
			out = append(out, Finding{Error, i,
				fmt.Sprintf("predicate %s used with arities %d and %d", syms.String(pred), prev, n)})
			return
		}
		seen[pred] = n
	}
	for i, r := range p.Rules {
		note(i, r.Head.Pred, r.Head.Arity())
		for _, l := range r.Body {
			note(i, l.Pred, l.Arity())
		}
	}
	return out
}

// checkSafety flags head variables not bound by a positive body literal
// and negated-literal variables that no positive literal binds.
func checkSafety(p *ast.Program) []Finding {
	var out []Finding
	syms := p.Bank.Symbols()
	for i, r := range p.Rules {
		positive := map[symtab.Sym]bool{}
		for _, l := range r.Body {
			name := syms.String(l.Pred)
			if l.Negated || (ast.IsBuiltinName(name) && name != ast.BuiltinEq && name != ast.BuiltinSucc) {
				continue
			}
			for _, v := range l.Vars() {
				positive[v] = true
			}
		}
		for _, v := range r.Head.Vars() {
			if !positive[v] {
				out = append(out, Finding{Error, i,
					fmt.Sprintf("head variable %s is not bound by a positive body literal", syms.String(v))})
			}
		}
		for _, l := range r.Body {
			if !l.Negated {
				continue
			}
			for _, v := range l.Vars() {
				if !positive[v] {
					out = append(out, Finding{Error, i,
						fmt.Sprintf("variable %s occurs only under negation", syms.String(v))})
				}
			}
		}
	}
	return out
}

// checkSingletons warns about named variables used exactly once — usually
// a typo. Parser-generated anonymous variables (_G…) are exempt.
func checkSingletons(p *ast.Program) []Finding {
	var out []Finding
	syms := p.Bank.Symbols()
	for i, r := range p.Rules {
		count := map[symtab.Sym]int{}
		countOcc := func(l ast.Literal) {
			for _, a := range l.Args {
				countTermOcc(a, count)
			}
		}
		countOcc(r.Head)
		for _, l := range r.Body {
			countOcc(l)
		}
		var singles []string
		for v, n := range count {
			name := syms.String(v)
			if n == 1 && !strings.HasPrefix(name, "_") {
				singles = append(singles, name)
			}
		}
		sort.Strings(singles)
		for _, s := range singles {
			out = append(out, Finding{Warning, i,
				fmt.Sprintf("variable %s occurs only once (use _ if intentional)", s)})
		}
	}
	return out
}

func countTermOcc(t ast.Term, count map[symtab.Sym]int) {
	switch t.Kind {
	case ast.Var:
		count[t.Name]++
	case ast.Comp:
		for _, a := range t.Args {
			countTermOcc(a, count)
		}
	}
}

func checkDuplicateRules(p *ast.Program) []Finding {
	var out []Finding
	for i := range p.Rules {
		for j := 0; j < i; j++ {
			if p.Rules[i].Equal(p.Rules[j]) {
				out = append(out, Finding{Warning, i,
					fmt.Sprintf("duplicate of rule %d", j+1)})
				break
			}
		}
	}
	return out
}

// checkCartesian warns when a rule's positive body literals fall apart
// into several variable-disjoint groups: the join degenerates into a
// cartesian product, which is almost always unintended (and expensive).
func checkCartesian(p *ast.Program) []Finding {
	var out []Finding
	for i, r := range p.Rules {
		// Union-find over body literals sharing variables; ground
		// literals and builtins/negations are guards, not join parts.
		type group struct{ vars map[symtab.Sym]bool }
		var groups []*group
		joinLits := 0
		for _, l := range r.Body {
			if l.Negated || ast.IsBuiltinName(p.Bank.Symbols().String(l.Pred)) {
				continue
			}
			vs := l.Vars()
			if len(vs) == 0 {
				continue
			}
			joinLits++
			var merged *group
			for _, g := range groups {
				touches := false
				for _, v := range vs {
					if g.vars[v] {
						touches = true
						break
					}
				}
				if !touches {
					continue
				}
				if merged == nil {
					merged = g
					for _, v := range vs {
						g.vars[v] = true
					}
				} else {
					for v := range g.vars {
						merged.vars[v] = true
					}
					g.vars = map[symtab.Sym]bool{} // absorbed
				}
			}
			if merged == nil {
				g := &group{vars: map[symtab.Sym]bool{}}
				for _, v := range vs {
					g.vars[v] = true
				}
				groups = append(groups, g)
			}
		}
		live := 0
		for _, g := range groups {
			if len(g.vars) > 0 {
				live++
			}
		}
		if joinLits > 1 && live > 1 {
			out = append(out, Finding{Warning, i,
				fmt.Sprintf("body splits into %d unconnected groups (cartesian product)", live)})
		}
	}
	return out
}

// checkDeadRules notes derived predicates that nothing uses: no rule body
// mentions them. (A program's "entry points" are usually queried from
// outside, so this is informational.)
func checkDeadRules(p *ast.Program) []Finding {
	var out []Finding
	syms := p.Bank.Symbols()
	used := map[symtab.Sym]bool{}
	for _, r := range p.Rules {
		for _, l := range r.Body {
			used[l.Pred] = true
		}
	}
	reported := map[symtab.Sym]bool{}
	for i, r := range p.Rules {
		if used[r.Head.Pred] || reported[r.Head.Pred] || r.IsFact() {
			continue
		}
		reported[r.Head.Pred] = true
		out = append(out, Finding{Info, i,
			fmt.Sprintf("predicate %s is defined but never used in a body (query entry point?)",
				syms.String(r.Head.Pred))})
	}
	return out
}

// checkUndefined notes body predicates with neither rules nor facts in the
// program; they may be extensional (supplied at load time), so this is
// informational.
func checkUndefined(p *ast.Program) []Finding {
	var out []Finding
	syms := p.Bank.Symbols()
	defined := map[symtab.Sym]bool{}
	for _, r := range p.Rules {
		defined[r.Head.Pred] = true
	}
	reported := map[symtab.Sym]bool{}
	for i, r := range p.Rules {
		for _, l := range r.Body {
			name := syms.String(l.Pred)
			if ast.IsBuiltinName(name) || defined[l.Pred] || reported[l.Pred] {
				continue
			}
			reported[l.Pred] = true
			out = append(out, Finding{Info, i,
				fmt.Sprintf("predicate %s has no rules or facts here (extensional?)", name)})
		}
	}
	return out
}

// checkCliques reports each recursive clique with its linearity: linear
// cliques are eligible for the counting methods, non-linear ones are not.
func checkCliques(p *ast.Program) []Finding {
	var out []Finding
	syms := p.Bank.Symbols()
	comps, err := engine.Stratify(p)
	if err != nil {
		out = append(out, Finding{Error, -1, err.Error()})
		return out
	}
	for _, c := range comps {
		if !c.Recursive {
			continue
		}
		inComp := map[symtab.Sym]bool{}
		for _, pr := range c.Preds {
			inComp[pr] = true
		}
		linear := true
		for _, r := range c.Rules {
			n := 0
			for _, l := range r.Body {
				if inComp[l.Pred] {
					n++
				}
			}
			if n > 1 {
				linear = false
			}
		}
		names := make([]string, len(c.Preds))
		for i, pr := range c.Preds {
			names[i] = syms.String(pr)
		}
		kind := "linear (counting methods applicable)"
		if !linear {
			kind = "non-linear (magic sets will be used)"
		}
		out = append(out, Finding{Info, -1,
			fmt.Sprintf("recursive clique {%s} is %s", strings.Join(names, ", "), kind)})
	}
	return out
}
