package faultinject

import (
	"errors"
	"sync"
	"testing"
	"time"
)

func TestNilInjectorIsNoOp(t *testing.T) {
	var in *Injector
	for i := 0; i < 10; i++ {
		if err := in.Hit(SiteEngineInsert); err != nil {
			t.Fatalf("nil injector fired: %v", err)
		}
	}
	if in.Fired() != 0 || in.WantsCancel() || in.String() != "" {
		t.Fatal("nil injector reported state")
	}
	in.BindCancel(func() {}) // must not panic
}

func TestFailAtFiresExactlyOnce(t *testing.T) {
	in := New(1)
	in.FailAt(SiteEngineInsert, 3)
	var errs int
	for i := 1; i <= 10; i++ {
		err := in.Hit(SiteEngineInsert)
		if err != nil {
			errs++
			if i != 3 {
				t.Fatalf("fired at hit %d, want 3", i)
			}
			var ie *InjectedError
			if !errors.As(err, &ie) || ie.Site != SiteEngineInsert || ie.Hit != 3 {
				t.Fatalf("bad injected error %v", err)
			}
			if !errors.Is(err, ErrInjected) {
				t.Fatal("injected error does not match ErrInjected")
			}
		}
		// Other sites never fire.
		if err := in.Hit(SiteEngineProbe); err != nil {
			t.Fatalf("unarmed site fired: %v", err)
		}
	}
	if errs != 1 {
		t.Fatalf("fired %d times, want 1", errs)
	}
	if in.Fired() != 1 {
		t.Fatalf("Fired() = %d, want 1", in.Fired())
	}
}

func TestProbabilisticDeterminism(t *testing.T) {
	run := func(seed int64) []int {
		in := New(seed)
		in.Fail(SiteCountingStep, 0.2)
		var fired []int
		for i := 0; i < 200; i++ {
			if in.Hit(SiteCountingStep) != nil {
				fired = append(fired, i)
			}
		}
		return fired
	}
	a, b := run(42), run(42)
	if len(a) == 0 {
		t.Fatal("p=0.2 over 200 hits never fired")
	}
	if len(a) != len(b) {
		t.Fatalf("same seed diverged: %d vs %d fires", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at fire %d", i)
		}
	}
	c := run(43)
	same := len(a) == len(c)
	if same {
		for i := range a {
			if a[i] != c[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatal("different seeds produced identical schedules (suspicious)")
	}
}

func TestWildcardSite(t *testing.T) {
	in := New(7)
	in.FailAt("*", 1)
	if err := in.Hit(SiteTopdownProbe); err == nil {
		t.Fatal("wildcard rule did not fire on first hit")
	}
	// The counter is per-site: the first hit of another site also fires.
	if err := in.Hit(SiteEngineIter); err == nil {
		t.Fatal("wildcard rule did not fire on first hit of second site")
	}
}

func TestCancelRule(t *testing.T) {
	in := New(5)
	in.CancelAt(SiteEngineIter, 2)
	if !in.WantsCancel() {
		t.Fatal("WantsCancel false with a cancel rule armed")
	}
	canceled := false
	in.BindCancel(func() { canceled = true })
	if err := in.Hit(SiteEngineIter); err != nil {
		t.Fatalf("hit 1 errored: %v", err)
	}
	if canceled {
		t.Fatal("canceled too early")
	}
	if err := in.Hit(SiteEngineIter); err != nil {
		t.Fatalf("cancel rule returned an error: %v", err)
	}
	if !canceled {
		t.Fatal("cancel rule did not invoke the bound function")
	}
}

func TestDelayRule(t *testing.T) {
	in := New(5)
	in.DelayAt(SiteEngineProbe, 1, 10*time.Millisecond)
	start := time.Now()
	if err := in.Hit(SiteEngineProbe); err != nil {
		t.Fatalf("delay rule returned an error: %v", err)
	}
	if d := time.Since(start); d < 5*time.Millisecond {
		t.Fatalf("delay rule slept only %v", d)
	}
}

func TestParseSpec(t *testing.T) {
	in, err := ParseSpec(9, "engine.insert=err@100, counting.step=err~0.01,engine.iter=cancel@5,topdown.probe=delay~0.5:2ms,*=err~0")
	if err != nil {
		t.Fatal(err)
	}
	if !in.WantsCancel() {
		t.Fatal("parsed spec lost the cancel rule")
	}
	got := in.String()
	want := "counting.step=err~0.01,engine.insert=err@100,engine.iter=cancel@5,topdown.probe=delay~0.5:2ms,*=err~0"
	if got != want {
		t.Fatalf("String() = %q, want %q", got, want)
	}

	for _, bad := range []string{
		"nosuchsite=err@1",
		"engine.insert=err",
		"engine.insert=boom@1",
		"engine.insert=err@0",
		"engine.insert=err~2",
		"engine.insert=delay@1",
		"engine.insert=err@1:5ms",
		"engine.insert",
	} {
		if _, err := ParseSpec(0, bad); err == nil {
			t.Errorf("ParseSpec accepted %q", bad)
		}
	}
	// Empty spec and empty clauses are fine.
	if _, err := ParseSpec(0, " , "); err != nil {
		t.Fatalf("empty clauses rejected: %v", err)
	}
}

func TestConcurrentHits(t *testing.T) {
	in := New(11)
	in.Fail("*", 0.01)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				in.Hit(SiteEngineInsert)
				in.Hit(SiteEngineProbe)
			}
		}()
	}
	wg.Wait() // race detector is the assertion
}
