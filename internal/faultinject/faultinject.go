// Package faultinject is the deterministic fault-injection core of the
// chaos harness: a seedable injector whose hook sites are threaded
// through the hot paths every evaluator already instruments for
// cancellation (relation inserts and probes, fixpoint iterations,
// counting-runtime steps, QSQ probes and passes). A rule fires an
// injected error, an artificial latency, or a cancellation storm at a
// site, either probabilistically (seeded PRNG, reproducible) or on an
// exact hit count.
//
// The package follows the same zero-overhead-when-disabled discipline as
// limits.Checker: a nil *Injector is a valid no-op whose Hit method
// returns nil after a single pointer comparison, so evaluations that do
// not opt in pay nothing.
package faultinject

import (
	"errors"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"
)

// Hook sites. Every evaluator names the points where it consults the
// injector; specs reference these names (or "*" for all of them).
const (
	// SiteEngineInsert: a derived tuple was inserted into a relation by
	// the bottom-up engine (semi-naive, naive, and every rewritten
	// program evaluated by the rule engine).
	SiteEngineInsert = "engine.insert"
	// SiteEngineProbe: an index probe or scan inside the engine's join.
	SiteEngineProbe = "engine.probe"
	// SiteEngineIter: one fixpoint round of a recursive component.
	SiteEngineIter = "engine.iter"
	// SiteCountingNode: the counting runtime interned a new counting-set
	// node (phase 1 of Algorithm 2).
	SiteCountingNode = "counting.node"
	// SiteCountingStep: the counting runtime derived an answer tuple
	// (phase 2 of Algorithm 2).
	SiteCountingStep = "counting.step"
	// SiteTopdownProbe: a relation probe or scan during QSQ sideways
	// information passing.
	SiteTopdownProbe = "topdown.probe"
	// SiteTopdownPass: one global QSQ fixpoint sweep.
	SiteTopdownPass = "topdown.pass"
	// SiteServerApply: the query server's write batcher is about to
	// apply one write request's asserts/retracts to the next epoch's
	// fork. Injected errors here are retryable: the batcher discards the
	// fork and retries the batch with backoff.
	SiteServerApply = "server.write"
	// SiteServerPublish: the query server is about to publish a fully
	// applied write batch as the next epoch snapshot. Fires after the
	// fork is complete and before readers can see it, so an injected
	// error proves readers never observe a half-applied batch.
	SiteServerPublish = "server.publish"
	// SiteWALAppend: the write-ahead log is about to append one batch
	// record. Fires before any byte is written, so an injected error
	// proves a failed append leaves the log intact and the batch
	// retryable.
	SiteWALAppend = "wal.append"
	// SiteWALFsync: the write-ahead log is about to fsync the segment.
	// Fires after the record's bytes are written, so an injected error
	// proves the writer rolls the un-synced frame back before retrying.
	SiteWALFsync = "wal.fsync"
	// SiteWALCheckpoint: a checkpoint is about to write its snapshot
	// (after the segment rotation, before the manifest swap). An
	// injected error proves an aborted checkpoint leaves a recoverable
	// manifest/segment pair behind.
	SiteWALCheckpoint = "wal.checkpoint"
	// SiteWALReplay: boot-time recovery is about to apply one replayed
	// WAL record. An injected error proves recovery fails closed rather
	// than serving from a half-replayed database.
	SiteWALReplay = "wal.replay"
)

// Sites lists every known hook site, sorted, for validation and help
// text.
func Sites() []string {
	s := []string{
		SiteEngineInsert, SiteEngineProbe, SiteEngineIter,
		SiteCountingNode, SiteCountingStep,
		SiteTopdownProbe, SiteTopdownPass,
		SiteServerApply, SiteServerPublish,
		SiteWALAppend, SiteWALFsync, SiteWALCheckpoint, SiteWALReplay,
	}
	sort.Strings(s)
	return s
}

var knownSites = func() map[string]bool {
	m := make(map[string]bool)
	for _, s := range Sites() {
		m[s] = true
	}
	return m
}()

// ErrInjected is the sentinel every injected fault matches:
// errors.Is(err, ErrInjected) distinguishes a deliberately injected
// failure from a genuine one. The degradation chain treats injected
// faults as retryable.
var ErrInjected = errors.New("faultinject: injected fault")

// InjectedError is the structured error an err-rule returns: the site it
// fired at and the 1-based hit count at that site.
type InjectedError struct {
	Site string
	Hit  uint64
}

func (e *InjectedError) Error() string {
	return fmt.Sprintf("faultinject: injected fault at %s (hit %d)", e.Site, e.Hit)
}

// Is makes errors.Is(err, ErrInjected) report true.
func (e *InjectedError) Is(target error) bool { return target == ErrInjected }

type actionKind int

const (
	actErr actionKind = iota
	actDelay
	actCancel
)

func (k actionKind) String() string {
	switch k {
	case actErr:
		return "err"
	case actDelay:
		return "delay"
	default:
		return "cancel"
	}
}

// rule is one armed fault: fire action at site, either on exactly the
// nth hit (nth > 0) or with probability p per hit.
type rule struct {
	site  string // "" for wildcard rules kept in their own list
	kind  actionKind
	nth   uint64
	p     float64
	delay time.Duration
}

func (r rule) String() string {
	var sb strings.Builder
	sb.WriteString(r.site)
	sb.WriteByte('=')
	sb.WriteString(r.kind.String())
	if r.nth > 0 {
		fmt.Fprintf(&sb, "@%d", r.nth)
	} else {
		fmt.Fprintf(&sb, "~%g", r.p)
	}
	if r.kind == actDelay {
		fmt.Fprintf(&sb, ":%s", r.delay)
	}
	return sb.String()
}

// Injector decides, deterministically from its seed, whether each hook
// hit fires a fault. The zero value is not usable; call New or
// ParseSpec. A nil *Injector is a valid disabled injector.
//
// Injectors are safe for concurrent use (the engine's parallel strata
// share one): decisions are made under a mutex; the per-site hit
// counters are part of the deterministic state. Note that under
// concurrency the interleaving of hits across goroutines is scheduling-
// dependent, so probabilistic rules stay reproducible only for
// sequential evaluations.
type Injector struct {
	mu     sync.Mutex
	rng    uint64
	rules  map[string][]rule
	global []rule // wildcard "*" rules
	hits   map[string]uint64
	fired  uint64
	cancel func()
}

// New returns an injector with no rules armed, seeded for reproducible
// probabilistic decisions.
func New(seed int64) *Injector {
	return &Injector{
		rng:   uint64(seed)*0x9e3779b97f4a7c15 + 0x2545f4914f6cdd1d,
		rules: map[string][]rule{},
		hits:  map[string]uint64{},
	}
}

// splitmix64 advances the PRNG state and returns the next value.
func (in *Injector) next() uint64 {
	in.rng += 0x9e3779b97f4a7c15
	z := in.rng
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// chance draws a uniform [0,1) float and compares it against p.
func (in *Injector) chance(p float64) bool {
	return float64(in.next()>>11)/(1<<53) < p
}

func (in *Injector) arm(site string, r rule) {
	r.site = site
	if site == "*" {
		in.global = append(in.global, r)
		return
	}
	in.rules[site] = append(in.rules[site], r)
}

// FailAt arms an injected error on exactly the nth hit (1-based) at
// site ("*" = every site).
func (in *Injector) FailAt(site string, nth uint64) {
	in.arm(site, rule{kind: actErr, nth: nth})
}

// Fail arms an injected error with probability p per hit at site.
func (in *Injector) Fail(site string, p float64) {
	in.arm(site, rule{kind: actErr, p: p})
}

// DelayAt arms an artificial latency on exactly the nth hit at site.
func (in *Injector) DelayAt(site string, nth uint64, d time.Duration) {
	in.arm(site, rule{kind: actDelay, nth: nth, delay: d})
}

// Delay arms an artificial latency with probability p per hit at site.
func (in *Injector) Delay(site string, p float64, d time.Duration) {
	in.arm(site, rule{kind: actDelay, p: p, delay: d})
}

// CancelAt arms a cancellation storm on exactly the nth hit at site: the
// function registered with BindCancel is invoked, so the evaluation
// unwinds through its ordinary cooperative-cancellation path.
func (in *Injector) CancelAt(site string, nth uint64) {
	in.arm(site, rule{kind: actCancel, nth: nth})
}

// Cancel arms a cancellation storm with probability p per hit at site.
func (in *Injector) Cancel(site string, p float64) {
	in.arm(site, rule{kind: actCancel, p: p})
}

// BindCancel registers the function cancel-rules invoke (typically a
// context.CancelFunc wrapping the evaluation context).
func (in *Injector) BindCancel(fn func()) {
	if in == nil {
		return
	}
	in.mu.Lock()
	in.cancel = fn
	in.mu.Unlock()
}

// WantsCancel reports whether any armed rule is a cancellation, so the
// caller knows it must wrap its context and BindCancel.
func (in *Injector) WantsCancel() bool {
	if in == nil {
		return false
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	for _, rs := range in.rules {
		for _, r := range rs {
			if r.kind == actCancel {
				return true
			}
		}
	}
	for _, r := range in.global {
		if r.kind == actCancel {
			return true
		}
	}
	return false
}

// Fired reports how many faults (of any kind) have fired so far.
func (in *Injector) Fired() uint64 {
	if in == nil {
		return 0
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.fired
}

// Hit records one pass through a hook site and returns the injected
// error if an err-rule fired; delay- and cancel-rules act as side
// effects and return nil. A nil injector returns nil immediately — this
// is the only call on the hot paths.
func (in *Injector) Hit(site string) error {
	if in == nil {
		return nil
	}
	in.mu.Lock()
	n := in.hits[site] + 1
	in.hits[site] = n
	var firedKind actionKind
	var firedDelay time.Duration
	var firedErr error
	match := func(r rule) bool {
		if r.nth > 0 {
			return n == r.nth
		}
		return in.chance(r.p)
	}
	for _, list := range [][]rule{in.rules[site], in.global} {
		for _, r := range list {
			if firedErr != nil {
				break
			}
			if !match(r) {
				continue
			}
			in.fired++
			switch r.kind {
			case actErr:
				firedErr = &InjectedError{Site: site, Hit: n}
			case actDelay:
				firedKind, firedDelay = actDelay, r.delay
			case actCancel:
				firedKind = actCancel
			}
		}
	}
	cancel := in.cancel
	in.mu.Unlock()

	// Side effects happen outside the lock so a sleeping or canceling
	// rule never blocks concurrent strata's decisions.
	if firedErr != nil {
		return firedErr
	}
	switch firedKind {
	case actDelay:
		time.Sleep(firedDelay)
	case actCancel:
		if cancel != nil {
			cancel()
		}
	}
	return nil
}

// String renders the armed rules in spec syntax, deterministically
// ordered; useful for logging chaos schedules.
func (in *Injector) String() string {
	if in == nil {
		return ""
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	var parts []string
	sites := make([]string, 0, len(in.rules))
	for s := range in.rules {
		sites = append(sites, s)
	}
	sort.Strings(sites)
	for _, s := range sites {
		for _, r := range in.rules[s] {
			parts = append(parts, r.String())
		}
	}
	for _, r := range in.global {
		parts = append(parts, r.String())
	}
	return strings.Join(parts, ",")
}

// ParseSpec builds an injector from a fault schedule in the compact
// clause syntax used by tests and CLI flags. Clauses are comma-
// separated; each is
//
//	site=kind@N         fire kind on exactly the Nth hit at site
//	site=kind~P         fire kind with probability P per hit
//	site=delay@N:dur    delay rules carry a duration suffix
//	site=delay~P:dur
//
// where kind is err, delay or cancel, and site is one of Sites() or "*"
// for every site. Example:
//
//	engine.insert=err@100,counting.step=err~0.01,engine.iter=cancel@5
func ParseSpec(seed int64, spec string) (*Injector, error) {
	in := New(seed)
	for _, clause := range strings.Split(spec, ",") {
		clause = strings.TrimSpace(clause)
		if clause == "" {
			continue
		}
		site, rest, ok := strings.Cut(clause, "=")
		if !ok {
			return nil, fmt.Errorf("faultinject: clause %q: want site=kind@N or site=kind~P", clause)
		}
		site = strings.TrimSpace(site)
		if site != "*" && !knownSites[site] {
			return nil, fmt.Errorf("faultinject: unknown site %q (known: %s, or *)",
				site, strings.Join(Sites(), " "))
		}
		var r rule
		switch {
		case strings.Contains(rest, "@"):
			kind, arg, _ := strings.Cut(rest, "@")
			nth, err := strconv.ParseUint(strings.TrimSpace(cutDelay(&r, arg)), 10, 64)
			if err != nil || nth == 0 {
				return nil, fmt.Errorf("faultinject: clause %q: hit count must be a positive integer", clause)
			}
			r.nth = nth
			rest = kind
		case strings.Contains(rest, "~"):
			kind, arg, _ := strings.Cut(rest, "~")
			p, err := strconv.ParseFloat(strings.TrimSpace(cutDelay(&r, arg)), 64)
			if err != nil || p < 0 || p > 1 {
				return nil, fmt.Errorf("faultinject: clause %q: probability must be in [0,1]", clause)
			}
			r.p = p
			rest = kind
		default:
			return nil, fmt.Errorf("faultinject: clause %q: missing trigger (@N or ~P)", clause)
		}
		switch strings.TrimSpace(rest) {
		case "err":
			r.kind = actErr
		case "delay":
			r.kind = actDelay
			if r.delay == 0 {
				return nil, fmt.Errorf("faultinject: clause %q: delay rules need a :duration suffix", clause)
			}
		case "cancel":
			r.kind = actCancel
		default:
			return nil, fmt.Errorf("faultinject: clause %q: unknown kind %q (err, delay, cancel)", clause, rest)
		}
		if r.kind != actDelay && r.delay != 0 {
			return nil, fmt.Errorf("faultinject: clause %q: only delay rules take a :duration", clause)
		}
		in.arm(site, r)
	}
	return in, nil
}

// cutDelay strips an optional ":duration" suffix from arg into r and
// returns the remainder. Parse failures leave r.delay zero so the caller
// reports the clause error.
func cutDelay(r *rule, arg string) string {
	head, dur, ok := strings.Cut(arg, ":")
	if !ok {
		return arg
	}
	d, err := time.ParseDuration(strings.TrimSpace(dur))
	if err == nil && d > 0 {
		r.delay = d
	}
	return head
}
