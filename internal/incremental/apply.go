package incremental

import (
	"context"
	"fmt"

	"lincount/internal/ast"
	"lincount/internal/database"
	"lincount/internal/engine"
	"lincount/internal/limits"
	"lincount/internal/parser"
	"lincount/internal/symtab"
	"lincount/internal/term"
)

// Op is one ordered write operation: fact text to assert or retract. It
// mirrors the WAL's per-epoch record stream, so recovery replay and live
// maintenance share one input format.
type Op struct {
	Retract bool
	Text    string
}

// OpError attributes a batch failure to one operation, so the caller can
// excise the offending request and retry the rest.
type OpError struct {
	Index int
	Err   error
}

func (e *OpError) Error() string {
	return fmt.Sprintf("incremental: op %d: %v", e.Index, e.Err)
}

func (e *OpError) Unwrap() error { return e.Err }

// ApplyResult reports what one maintenance batch did.
type ApplyResult struct {
	// RetractedPerOp[i] is the number of base facts op i actually removed,
	// matching what a sequential RetractText would have reported.
	RetractedPerOp []int
	// NetInserted/NetDeleted are the net base-fact changes after
	// cancelling retract-then-reassert pairs within the batch.
	NetInserted, NetDeleted int
	// DerivedAdded/DerivedRemoved count derived-relation rows that
	// appeared/disappeared.
	DerivedAdded, DerivedRemoved int
	// Overdeleted and Rederived count the DRed traffic in recursive
	// components.
	Overdeleted, Rederived int
}

// parsedOp is one op resolved to ground (pred, tuple) pairs.
type parsedOp struct {
	retract bool
	preds   []symtab.Sym
	tuples  []database.Tuple
}

// predSim tracks net membership for every tuple a batch touches, keyed by
// dense scratch-relation row ids.
type predSim struct {
	touched  *database.Relation
	present0 []bool
	cur      []bool
}

// Apply folds the ordered op batch into fork (a Fork of this
// materialisation's database, not yet written to) and returns the next
// epoch's materialisation. The receiver is never mutated; on error the
// fork may hold partial base writes and must be discarded. A returned
// *OpError identifies the op to excise; an *InternalError or resource
// limit means the caller should fall back to full re-evaluation.
func (m *Materialization) Apply(ctx context.Context, fork *database.Database, ops []Op) (*Materialization, *ApplyResult, error) {
	if fork.Bank() != m.bank {
		return nil, nil, fmt.Errorf("incremental: fork uses a different term bank")
	}
	check := limits.NewChecker(ctx, "incremental")
	parsed, err := m.parseOps(fork, ops)
	if err != nil {
		return nil, nil, err
	}

	// Net-delta simulation: replay the ordered ops against a membership
	// model seeded from the pre-state, recording per-op retract effects.
	sim := make(map[symtab.Sym]*predSim)
	res := &ApplyResult{RetractedPerOp: make([]int, len(ops))}
	var touchedOrder []symtab.Sym
	for i, po := range parsed {
		for j, pred := range po.preds {
			t := po.tuples[j]
			ps, ok := sim[pred]
			if !ok {
				ps = &predSim{touched: database.NewRelation(len(t))}
				sim[pred] = ps
				touchedOrder = append(touchedOrder, pred)
			}
			id, added := ps.touched.InsertRow(t)
			if added {
				p0 := false
				if rel := fork.Relation(pred); rel != nil {
					p0 = rel.Contains(t)
				}
				ps.present0 = append(ps.present0, p0)
				ps.cur = append(ps.cur, p0)
			}
			if po.retract {
				if ps.cur[id] {
					ps.cur[id] = false
					res.RetractedPerOp[i]++
				}
			} else {
				ps.cur[id] = true
			}
		}
	}
	netIns := make(map[symtab.Sym]*database.Relation)
	netDel := make(map[symtab.Sym]*database.Relation)
	var insOrder, delOrder []symtab.Sym
	for _, pred := range touchedOrder {
		ps := sim[pred]
		for id := database.RowID(0); int(id) < ps.touched.Len(); id++ {
			t := database.Tuple(ps.touched.Row(id))
			switch {
			case !ps.present0[id] && ps.cur[id]:
				if netIns[pred] == nil {
					netIns[pred] = database.NewRelation(len(t))
					insOrder = append(insOrder, pred)
				}
				netIns[pred].Insert(t)
				res.NetInserted++
			case ps.present0[id] && !ps.cur[id]:
				if netDel[pred] == nil {
					netDel[pred] = database.NewRelation(len(t))
					delOrder = append(delOrder, pred)
				}
				netDel[pred].Insert(t)
				res.NetDeleted++
			}
		}
	}

	m2 := m.fork(fork)
	if res.NetInserted == 0 && res.NetDeleted == 0 {
		return m2, res, nil
	}

	a := &applier{
		m:        m2,
		fork:     fork,
		check:    check,
		netIns:   netIns,
		netDel:   netDel,
		insOrder: insOrder,
		delOrder: delOrder,
		rowState: make(map[symtab.Sym][]int32),
		deleted:  make(map[symtab.Sym]*database.Relation),
		joiners:  make(map[int]*engine.Joiner),
		res:      res,
	}
	if len(netDel) > 0 {
		if err := a.deletePhase(); err != nil {
			return nil, nil, err
		}
	}
	if len(netIns) > 0 {
		if err := a.insertPhase(); err != nil {
			return nil, nil, err
		}
	}
	return m2, res, nil
}

// fork returns the next epoch's materialisation sharing every immutable
// piece with m; counts are copied (they mutate under maintenance) while
// relations are replaced lazily (rebuild on compaction, clone on append).
func (m *Materialization) fork(db *database.Database) *Materialization {
	m2 := &Materialization{
		bank:       m.bank,
		prog:       m.prog,
		comps:      m.comps,
		db:         db,
		headPred:   m.headPred,
		arity:      m.arity,
		derived:    make(map[symtab.Sym]*database.Relation, len(m.derived)),
		counts:     make(map[symtab.Sym][]int64, len(m.counts)),
		factSeeds:  m.factSeeds,
		factCounts: m.factCounts,
		opts:       m.opts,
		total:      m.total,
	}
	for p, rel := range m.derived {
		m2.derived[p] = rel
	}
	for p, c := range m.counts {
		m2.counts[p] = append([]int64(nil), c...)
	}
	return m2
}

// parseOps resolves each op's fact text and validates arities against the
// program, the pre-state relations and earlier ops in the batch.
func (m *Materialization) parseOps(fork *database.Database, ops []Op) ([]parsedOp, error) {
	out := make([]parsedOp, len(ops))
	batchArity := make(map[symtab.Sym]int)
	for i, op := range ops {
		res, err := parser.Parse(m.bank, op.Text)
		if err != nil {
			return nil, &OpError{Index: i, Err: err}
		}
		if len(res.Queries) != 0 {
			return nil, &OpError{Index: i, Err: fmt.Errorf("queries are not allowed in fact batches")}
		}
		po := parsedOp{retract: op.Retract}
		for _, r := range res.Program.Rules {
			if !r.IsFact() {
				return nil, &OpError{Index: i, Err: fmt.Errorf("%s is not a ground fact",
					ast.FormatRule(m.bank, r))}
			}
			t := make(database.Tuple, len(r.Head.Args))
			for k, a := range r.Head.Args {
				t[k] = a.Value
			}
			want, ok := m.arity[r.Head.Pred]
			if !ok {
				if rel := fork.Relation(r.Head.Pred); rel != nil {
					want, ok = rel.Arity(), true
				} else if n, seen := batchArity[r.Head.Pred]; seen {
					want, ok = n, true
				}
			}
			if ok && want != len(t) {
				return nil, &OpError{Index: i, Err: fmt.Errorf("predicate %s used with arity %d and %d",
					m.bank.Symbols().String(r.Head.Pred), want, len(t))}
			}
			batchArity[r.Head.Pred] = len(t)
			po.preds = append(po.preds, r.Head.Pred)
			po.tuples = append(po.tuples, t)
		}
		out[i] = po
	}
	return out, nil
}

// applier carries one batch's maintenance state.
type applier struct {
	m     *Materialization
	fork  *database.Database
	check *limits.Checker

	netIns, netDel     map[symtab.Sym]*database.Relation
	insOrder, delOrder []symtab.Sym

	// rowState maps every row of every read relation to its deletion
	// lifecycle (-1 dead, 0 original, g >= 1 rederived in round g); preds
	// absent from the map are untouched. For head predicates the states
	// index the derived relation, for EDB predicates the base relation.
	rowState map[symtab.Sym][]int32
	// deleted holds, per predicate, copies of the finally deleted tuples —
	// the delta feeding downstream components' deletion passes.
	deleted map[symtab.Sym]*database.Relation
	// joiners caches per-component joiners (deletion builds them; the
	// insertion sweep reuses them, reading the live derived map).
	joiners map[int]*engine.Joiner

	res *ApplyResult
}

func (a *applier) state(pred symtab.Sym, n int) []int32 {
	st, ok := a.rowState[pred]
	if !ok {
		st = make([]int32, n)
		a.rowState[pred] = st
	}
	return st
}

func (a *applier) deletedRel(pred symtab.Sym, arity int) *database.Relation {
	d, ok := a.deleted[pred]
	if !ok {
		d = database.NewRelation(arity)
		a.deleted[pred] = d
	}
	return d
}

func (a *applier) joiner(ci int) (*engine.Joiner, error) {
	if j, ok := a.joiners[ci]; ok {
		return j, nil
	}
	j, err := a.m.newJoiner(a.fork, a.m.comps[ci], a.check)
	if err != nil {
		return nil, err
	}
	a.joiners[ci] = j
	return j, nil
}

// deletePhase runs the counting/DRed deletion pass component by component,
// then compacts the derived relations and applies the base retractions.
// Everything before compaction is logical: reads still see the pre-state
// rows, filtered through rowState.
func (a *applier) deletePhase() error {
	m := a.m
	// Base deletions of pure-EDB predicates become dead base rows plus a
	// delta relation; head predicates are handled inside their component.
	for _, q := range a.delOrder {
		if m.headPred[q] {
			continue
		}
		base := a.fork.Relation(q)
		if base == nil {
			continue
		}
		st := a.state(q, base.Len())
		nd := a.netDel[q]
		for id := database.RowID(0); int(id) < nd.Len(); id++ {
			t := database.Tuple(nd.Row(id))
			bid, ok := base.Find(t)
			if !ok {
				return internalErrf("net-deleted %s tuple missing from base", m.bank.Symbols().String(q))
			}
			st[bid] = -1
		}
		a.deleted[q] = nd
	}

	for ci, comp := range m.comps {
		if !a.compAffected(comp) {
			continue
		}
		j, err := a.joiner(ci)
		if err != nil {
			return err
		}
		if comp.Recursive {
			err = a.dredDelete(comp, j)
		} else {
			err = a.exactDelete(comp, j)
		}
		if err != nil {
			return err
		}
	}
	return a.compact()
}

// compAffected reports whether the deletion pass can touch this component:
// a base deletion of one of its head predicates, or a deleted delta on any
// body predicate.
func (a *applier) compAffected(comp engine.Component) bool {
	for _, p := range comp.Preds {
		if a.m.headPred[p] && a.netDel[p] != nil && a.m.derived[p] != nil {
			return true
		}
	}
	syms := a.m.bank.Symbols()
	for _, r := range comp.Rules {
		for _, l := range r.Body {
			if l.Negated || ast.IsBuiltinName(syms.String(l.Pred)) {
				continue
			}
			if d := a.deleted[l.Pred]; d != nil && d.Len() > 0 {
				return true
			}
		}
	}
	return false
}

// exactDelete maintains a non-recursive component by exact count
// decrements: every lost derivation (one with at least one deleted atom)
// is counted exactly once — the delta sits at the last deleted-atom
// position, earlier occurrences read the full old state (deleted atoms
// allowed), later occurrences are restricted to survivors.
func (a *applier) exactDelete(comp engine.Component, j *engine.Joiner) error {
	m := a.m
	for _, p := range comp.Preds {
		rel := m.derived[p]
		if rel == nil {
			continue
		}
		nd := a.netDel[p]
		if nd == nil {
			continue
		}
		// Base-support loss: the tuple stays derived while rules still
		// support it; only its external support unit goes away.
		for id := database.RowID(0); int(id) < nd.Len(); id++ {
			t := database.Tuple(nd.Row(id))
			did, ok := rel.Find(t)
			if !ok {
				return internalErrf("base-deleted %s tuple missing from derived relation",
					m.bank.Symbols().String(p))
			}
			m.counts[p][did]--
		}
	}
	cfg := engine.JoinConfig{RowState: a.rowState, FilterSuffix: true, SuffixBound: 0}
	for i := 0; i < j.Rules(); i++ {
		p := j.HeadPred(i)
		rel := m.derived[p]
		dec := func(t database.Tuple) error {
			did, ok := rel.Find(t)
			if !ok {
				return internalErrf("lost derivation of absent %s tuple", m.bank.Symbols().String(p))
			}
			m.counts[p][did]--
			return nil
		}
		for occ := 0; occ < j.Variants(i); occ++ {
			q := j.VariantPred(i, occ)
			d := a.deleted[q]
			if d == nil || d.Len() == 0 {
				continue
			}
			delta := map[symtab.Sym]engine.Delta{q: {Rel: d, Lo: 0, Hi: database.RowID(d.Len())}}
			if err := j.Run(i, occ, delta, cfg, dec); err != nil {
				return err
			}
		}
	}
	// Collect the zero-count rows: logically dead, and a delta for
	// downstream components.
	for _, p := range comp.Preds {
		rel := m.derived[p]
		if rel == nil {
			continue
		}
		st := a.state(p, rel.Len())
		for id := range m.counts[p] {
			c := m.counts[p][id]
			if c < 0 {
				return internalErrf("count of %s row %d went negative (%d)",
					m.bank.Symbols().String(p), id, c)
			}
			if c == 0 && st[id] == 0 {
				st[id] = -1
				a.deletedRel(p, rel.Arity()).Insert(rel.At(id))
				a.res.DerivedRemoved++
			}
		}
	}
	return nil
}

// dredDelete maintains a recursive component with overcount/rederive:
// overdelete every tuple with some derivation through a deleted atom
// (propagating transitively within the component), then rebuild the
// survivors' counts — Stage A counts each overdeleted tuple's derivations
// over surviving rows only (a backward pass through the Matcher), Stage B
// resumes a counting fixpoint seeded with the Stage-A reinsertions so
// derivations through other reinserted tuples are counted exactly once.
func (a *applier) dredDelete(comp engine.Component, j *engine.Joiner) error {
	m := a.m
	inC := make(map[symtab.Sym]bool, len(comp.Preds))
	for _, p := range comp.Preds {
		inC[p] = true
	}
	over := make(map[symtab.Sym]*database.Relation)
	for _, p := range comp.Preds {
		if rel := m.derived[p]; rel != nil {
			over[p] = database.NewRelation(rel.Arity())
			a.state(p, rel.Len())
		}
	}
	mark := func(p symtab.Sym) func(database.Tuple) error {
		rel := m.derived[p]
		st := a.rowState[p]
		o := over[p]
		return func(t database.Tuple) error {
			id, ok := rel.Find(t)
			if !ok {
				return internalErrf("overdeleted %s tuple missing from derived relation",
					m.bank.Symbols().String(p))
			}
			if st[id] == 0 {
				st[id] = -1
				o.Insert(t)
				a.res.Overdeleted++
			}
			return nil
		}
	}

	// Overdeletion seeds: base-support losses, then derivations through
	// deltas of earlier components. Reads are unfiltered — DRed closes
	// over the old state, and overcounting is corrected by rederivation.
	for _, p := range comp.Preds {
		nd := a.netDel[p]
		rel := m.derived[p]
		if nd == nil || rel == nil {
			continue
		}
		markP := mark(p)
		for id := database.RowID(0); int(id) < nd.Len(); id++ {
			if err := markP(database.Tuple(nd.Row(id))); err != nil {
				return internalErrf("base-deleted %s tuple missing from derived relation",
					m.bank.Symbols().String(p))
			}
		}
	}
	for i := 0; i < j.Rules(); i++ {
		markP := mark(j.HeadPred(i))
		for occ := 0; occ < j.Variants(i); occ++ {
			q := j.VariantPred(i, occ)
			if inC[q] {
				continue
			}
			d := a.deleted[q]
			if d == nil || d.Len() == 0 {
				continue
			}
			delta := map[symtab.Sym]engine.Delta{q: {Rel: d, Lo: 0, Hi: database.RowID(d.Len())}}
			if err := j.Run(i, occ, delta, engine.JoinConfig{}, markP); err != nil {
				return err
			}
		}
	}
	// Propagate within the component by watermark rounds over the
	// overdeletion relations.
	loO := make(map[symtab.Sym]database.RowID, len(comp.Preds))
	maxIter := m.opts.maxIter()
	for iter := 0; ; iter++ {
		if err := a.check.Check(); err != nil {
			return err
		}
		if iter >= maxIter {
			return &limits.ResourceLimitError{
				Kind: limits.KindIterations, Limit: int64(maxIter), Used: int64(iter), Component: "incremental",
			}
		}
		windows := make(map[symtab.Sym]engine.Delta)
		for _, p := range comp.Preds {
			o := over[p]
			if o == nil {
				continue
			}
			hi := database.RowID(o.Len())
			if hi > loO[p] {
				windows[p] = engine.Delta{Rel: o, Lo: loO[p], Hi: hi}
			}
			loO[p] = hi
		}
		if len(windows) == 0 {
			break
		}
		for i := 0; i < j.Rules(); i++ {
			markP := mark(j.HeadPred(i))
			for occ := 0; occ < j.Variants(i); occ++ {
				q := j.VariantPred(i, occ)
				w, ok := windows[q]
				if !ok {
					continue
				}
				delta := map[symtab.Sym]engine.Delta{q: w}
				if err := j.Run(i, occ, delta, engine.JoinConfig{}, markP); err != nil {
					return err
				}
			}
		}
	}

	if err := a.rederive(comp, j, over); err != nil {
		return err
	}

	// The rows still dead after rederivation are this component's delta
	// for downstream components.
	for _, p := range comp.Preds {
		o := over[p]
		rel := m.derived[p]
		if o == nil || rel == nil {
			continue
		}
		st := a.rowState[p]
		for id := database.RowID(0); int(id) < o.Len(); id++ {
			t := database.Tuple(o.Row(id))
			did, ok := rel.Find(t)
			if !ok {
				return internalErrf("overdeleted %s tuple vanished", m.bank.Symbols().String(p))
			}
			if st[did] == -1 {
				a.deletedRel(p, rel.Arity()).Insert(t)
				a.res.DerivedRemoved++
			}
		}
	}
	// Collapse surviving generations to "original alive": the generation
	// numbers only order rounds within this component's rederivation, and
	// downstream components' filters treat exactly state 0 as live.
	for _, p := range comp.Preds {
		st := a.rowState[p]
		for i, s := range st {
			if s >= 1 {
				st[i] = 0
			}
		}
	}
	return nil
}

// rederive rebuilds the counts of the overdeleted tuples that still hold.
func (a *applier) rederive(comp engine.Component, j *engine.Joiner, over map[symtab.Sym]*database.Relation) error {
	m := a.m
	syms := m.bank.Symbols()

	// Stage A: for each overdeleted tuple, count base/program support plus
	// rule derivations whose atoms are all survivors (rowState 0). Tuples
	// with a positive count are reinserted as generation 1; setting the
	// state immediately keeps later Stage-A counts blind to them, which is
	// exactly the all-survivor semantics.
	mt := engine.NewMatcher(m.bank, a.fork, m.derived)
	mt.SetChecker(a.check)
	mt.RowState = a.rowState
	mt.RowStateBound = 0
	type headRule struct {
		rule ast.Rule
		ps   *engine.PreparedSolve
		vars []symtab.Sym
	}
	rulesFor := make(map[symtab.Sym][]headRule)
	for _, r := range comp.Rules {
		if r.IsFact() {
			continue
		}
		vars := r.Head.Vars()
		ps, err := mt.Prepare(r.Body, vars, nil)
		if err != nil {
			return err
		}
		rulesFor[r.Head.Pred] = append(rulesFor[r.Head.Pred], headRule{rule: r, ps: ps, vars: vars})
	}
	reins := make(map[symtab.Sym]*database.Relation)
	boundVals := make([]term.Value, 0, 8)
	for _, p := range comp.Preds {
		o := over[p]
		rel := m.derived[p]
		if o == nil || rel == nil {
			continue
		}
		st := a.rowState[p]
		base := a.fork.Relation(p)
		nd := a.netDel[p]
		for oid := database.RowID(0); int(oid) < o.Len(); oid++ {
			if err := a.check.Tick(); err != nil {
				return err
			}
			t := database.Tuple(o.Row(oid))
			did, ok := rel.Find(t)
			if !ok {
				return internalErrf("overdeleted %s tuple vanished", syms.String(p))
			}
			var c int64
			if base != nil && base.Contains(t) && (nd == nil || !nd.Contains(t)) {
				c++
			}
			if fs := m.factSeeds[p]; fs != nil {
				if fid, ok := fs.Find(t); ok {
					c += m.factCounts[p][fid]
				}
			}
			for _, hr := range rulesFor[p] {
				bound := make(map[symtab.Sym]term.Value, len(hr.vars))
				if !engine.MatchTerms(m.bank, hr.rule.Head.Args, t, bound) {
					continue
				}
				boundVals = boundVals[:0]
				for _, v := range hr.vars {
					boundVals = append(boundVals, bound[v])
				}
				if err := hr.ps.Solve(boundVals, func([]term.Value) error { c++; return nil }); err != nil {
					return err
				}
			}
			if c > 0 {
				st[did] = 1
				m.counts[p][did] = c
				if reins[p] == nil {
					reins[p] = database.NewRelation(rel.Arity())
				}
				reins[p].Insert(t)
				a.res.Rederived++
			} else {
				m.counts[p][did] = 0
			}
		}
	}

	// Stage B: counting fixpoint over the reinsertions. Round g counts
	// derivations whose newest atom is generation g-1, once each: the
	// delta occurrence reads the round's reinsertion scratch, earlier
	// occurrences accept generations up to g-1, later ones up to g-2.
	prev := reins
	maxIter := m.opts.maxIter()
	for gen := int32(2); len(prev) > 0; gen++ {
		if err := a.check.Check(); err != nil {
			return err
		}
		if int(gen) > maxIter {
			return &limits.ResourceLimitError{
				Kind: limits.KindIterations, Limit: int64(maxIter), Used: int64(gen), Component: "incremental",
			}
		}
		next := make(map[symtab.Sym]*database.Relation)
		cfg := engine.JoinConfig{
			RowState:     a.rowState,
			FilterPrefix: true, PrefixBound: gen - 1,
			FilterSuffix: true, SuffixBound: gen - 2,
		}
		for i := 0; i < j.Rules(); i++ {
			p := j.HeadPred(i)
			rel := m.derived[p]
			st := a.rowState[p]
			recount := func(t database.Tuple) error {
				did, ok := rel.Find(t)
				if !ok {
					return internalErrf("rederived %s tuple missing from derived relation", syms.String(p))
				}
				switch {
				case st[did] == -1:
					st[did] = gen
					m.counts[p][did] = 1
					if next[p] == nil {
						next[p] = database.NewRelation(rel.Arity())
					}
					next[p].Insert(t)
					a.res.Rederived++
				case st[did] >= 1:
					m.counts[p][did]++
				default:
					return internalErrf("rederivation reached surviving %s tuple", syms.String(p))
				}
				return nil
			}
			for occ := 0; occ < j.Variants(i); occ++ {
				q := j.VariantPred(i, occ)
				rp := prev[q]
				if rp == nil || rp.Len() == 0 {
					continue
				}
				delta := map[symtab.Sym]engine.Delta{q: {Rel: rp, Lo: 0, Hi: database.RowID(rp.Len())}}
				if err := j.Run(i, occ, delta, cfg, recount); err != nil {
					return err
				}
			}
		}
		prev = next
	}
	return nil
}

// compact finalises the deletion pass: every derived relation with dead
// rows is rebuilt once (capacity-reusing, counts remapped), and the net
// base retractions hit the fork in one batched rebuild per relation.
func (a *applier) compact() error {
	m := a.m
	for pred, st := range a.rowState {
		if !m.headPred[pred] {
			continue
		}
		dead := false
		for _, s := range st {
			if s == -1 {
				dead = true
				break
			}
		}
		if !dead {
			continue
		}
		old := m.derived[pred]
		rebuilt := old.RebuildWithout(func(id database.RowID) bool { return st[id] == -1 })
		counts := make([]int64, 0, rebuilt.Len())
		for id := 0; id < old.Len(); id++ {
			if st[id] != -1 {
				counts = append(counts, m.counts[pred][id])
			}
		}
		m.total -= int64(old.Len() - rebuilt.Len())
		m.derived[pred] = rebuilt
		m.counts[pred] = counts
	}
	for _, q := range a.delOrder {
		if _, err := a.fork.RetractBatch(q, a.netDel[q].Tuples()); err != nil {
			return err
		}
	}
	return nil
}

// insertPhase applies the net base inserts to the fork and resumes the
// counting fixpoint of every affected component from the new-row windows.
func (a *applier) insertPhase() error {
	m := a.m
	total0 := m.total
	defer func() { a.res.DerivedAdded += int(m.total - total0) }()

	// Clone-for-append any derived relation that was not already rebuilt
	// by compaction: the previous epoch's relations must stay immutable
	// under concurrent readers.
	owned := make(map[symtab.Sym]bool)
	for pred, st := range a.rowState {
		if !m.headPred[pred] {
			continue
		}
		for _, s := range st {
			if s == -1 {
				owned[pred] = true
				break
			}
		}
	}
	for pred, rel := range m.derived {
		if !owned[pred] {
			m.derived[pred] = rel.CloneForAppend()
		}
	}

	// Base inserts. New rows of pure-EDB predicates become external delta
	// windows on the base relations; new rows of head predicates append to
	// the derived relation (or just gain a unit of external support when
	// already derived) behind a single watermark per predicate.
	loD := make(map[symtab.Sym]database.RowID, len(m.derived))
	for pred, rel := range m.derived {
		loD[pred] = database.RowID(rel.Len())
	}
	edbWin := make(map[symtab.Sym]engine.Delta)
	for _, q := range a.insOrder {
		ins := a.netIns[q]
		rel, err := a.fork.Ensure(q, ins.Arity())
		if err != nil {
			return err
		}
		lo := database.RowID(rel.Len())
		for id := database.RowID(0); int(id) < ins.Len(); id++ {
			rel.Insert(database.Tuple(ins.Row(id)))
		}
		if m.headPred[q] {
			drel := m.derived[q]
			if drel == nil {
				return internalErrf("head predicate %s has no derived relation", m.bank.Symbols().String(q))
			}
			for id := database.RowID(0); int(id) < ins.Len(); id++ {
				rid, added := drel.InsertRow(database.Tuple(ins.Row(id)))
				if err := m.bump(q, rid, added, 1); err != nil {
					return err
				}
			}
		} else {
			edbWin[q] = engine.Delta{Rel: rel, Lo: lo, Hi: database.RowID(rel.Len())}
		}
	}

	// Component sweep: round 0 of each component consumes the external
	// windows (new EDB rows, new rows of earlier components' heads, own
	// base inserts); later rounds are the ordinary windowed counting
	// fixpoint. Components none of whose body predicates changed are
	// skipped entirely — the source of the small-delta speedup.
	syms := m.bank.Symbols()
	doneHi := make(map[symtab.Sym]database.RowID)
	for ci, comp := range m.comps {
		ext := make(map[symtab.Sym]engine.Delta)
		for _, r := range comp.Rules {
			for _, l := range r.Body {
				if l.Negated || ast.IsBuiltinName(syms.String(l.Pred)) {
					continue
				}
				q := l.Pred
				if w, ok := edbWin[q]; ok {
					ext[q] = w
				} else if m.headPred[q] {
					if hi, ok := doneHi[q]; ok && hi > loD[q] {
						ext[q] = engine.Delta{Rel: m.derived[q], Lo: loD[q], Hi: hi}
					}
				}
			}
		}
		lo := make(map[symtab.Sym]database.RowID, len(comp.Preds))
		run := false
		for _, p := range comp.Preds {
			if rel := m.derived[p]; rel != nil {
				lo[p] = loD[p]
				if database.RowID(rel.Len()) > loD[p] {
					run = true
				}
			}
		}
		if run || len(ext) > 0 {
			joiner, err := a.joiner(ci)
			if err != nil {
				return err
			}
			if joiner.Rules() > 0 {
				if err := m.countingRounds(joiner, comp, ext, lo, a.check); err != nil {
					return err
				}
			}
		}
		for _, p := range comp.Preds {
			if rel := m.derived[p]; rel != nil {
				doneHi[p] = database.RowID(rel.Len())
			}
		}
	}
	return nil
}
