package incremental

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"testing"

	"lincount/internal/ast"
	"lincount/internal/database"
	"lincount/internal/engine"
	"lincount/internal/parser"
	"lincount/internal/symtab"
	"lincount/internal/term"
)

type fixture struct {
	bank *term.Bank
	prog *ast.Program
	db   *database.Database
}

func newFixture(t testing.TB, rules, facts string) *fixture {
	t.Helper()
	bank := term.NewBank(symtab.New())
	res, err := parser.Parse(bank, rules)
	if err != nil {
		t.Fatalf("parse rules: %v", err)
	}
	db := database.New(bank)
	if facts != "" {
		if err := db.LoadText(facts); err != nil {
			t.Fatalf("load facts: %v", err)
		}
	}
	return &fixture{bank: bank, prog: res.Program, db: db}
}

func (f *fixture) query(t testing.TB, goal string) ast.Query {
	t.Helper()
	q, err := parser.ParseQuery(f.bank, goal)
	if err != nil {
		t.Fatalf("parse query %q: %v", goal, err)
	}
	return q
}

func (f *fixture) sym(s string) symtab.Sym { return f.bank.Symbols().Intern(s) }

// oracleAnswers evaluates the program from scratch with the stock engine.
func oracleAnswers(t testing.TB, f *fixture, db *database.Database, q ast.Query) []database.Tuple {
	t.Helper()
	res, err := engine.Eval(f.prog, db, engine.Options{})
	if err != nil {
		t.Fatalf("oracle eval: %v", err)
	}
	return engine.Answers(res, db, q)
}

func sameTuples(a, b []database.Tuple) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if !a[i].Equal(b[i]) {
			return false
		}
	}
	return true
}

// checkAgainstOracle asserts mat ≡ from-scratch evaluation for the goal
// and that the maintained counts survive a rebuild diff.
func checkAgainstOracle(t testing.TB, f *fixture, m *Materialization, goal string) {
	t.Helper()
	q := f.query(t, goal)
	got := m.Answers(q)
	want := oracleAnswers(t, f, m.Database(), q)
	if !sameTuples(got, want) {
		t.Fatalf("maintained answers diverge for %s:\n got %v\nwant %v", goal, got, want)
	}
	if err := m.Verify(context.Background()); err != nil {
		t.Fatal(err)
	}
}

// apply runs one batch through maintenance on a fresh fork.
func apply(t testing.TB, m *Materialization, ops []Op) (*Materialization, *ApplyResult) {
	t.Helper()
	m2, res, err := m.Apply(context.Background(), m.Database().Fork(), ops)
	if err != nil {
		t.Fatalf("apply %v: %v", ops, err)
	}
	return m2, res
}

func TestBuildMatchesEngine(t *testing.T) {
	f := newFixture(t,
		"tc(X,Y) :- e(X,Y).\ntc(X,Y) :- e(X,Z), tc(Z,Y).",
		"e(a,b). e(b,c). e(c,d). e(d,b).")
	m, err := New(context.Background(), f.prog, f.db, Options{})
	if err != nil {
		t.Fatal(err)
	}
	checkAgainstOracle(t, f, m, "?- tc(X,Y).")
	// b→c→d→b cycle: tc(b,b) has two derivations (via e(b,c) and the long
	// body), none of them base.
	if c := m.Count(f.sym("tc"), database.Tuple{term.Symbol(f.sym("b")), term.Symbol(f.sym("b"))}); c < 1 {
		t.Fatalf("tc(b,b) count = %d, want >= 1", c)
	}
}

func TestInsertResumesFixpoint(t *testing.T) {
	f := newFixture(t,
		"tc(X,Y) :- e(X,Y).\ntc(X,Y) :- e(X,Z), tc(Z,Y).",
		"e(a,b). e(b,c).")
	m, err := New(context.Background(), f.prog, f.db, Options{})
	if err != nil {
		t.Fatal(err)
	}
	m, res := apply(t, m, []Op{{Text: "e(c,d). e(d,e)."}})
	if res.NetInserted != 2 {
		t.Fatalf("NetInserted = %d, want 2", res.NetInserted)
	}
	if res.DerivedAdded == 0 {
		t.Fatal("insertion produced no derived rows")
	}
	checkAgainstOracle(t, f, m, "?- tc(X,Y).")
	// A second wave reusing the new edges.
	m, _ = apply(t, m, []Op{{Text: "e(e,a)."}})
	checkAgainstOracle(t, f, m, "?- tc(X,Y).")
}

func TestDeleteNonRecursive(t *testing.T) {
	f := newFixture(t,
		"p(X,Y) :- e(X,Y).\nq(X) :- p(X,Y), f(Y).",
		"e(a,b). e(a,c). e(d,b). f(b). f(c).")
	m, err := New(context.Background(), f.prog, f.db, Options{})
	if err != nil {
		t.Fatal(err)
	}
	m, res := apply(t, m, []Op{{Retract: true, Text: "e(a,b). f(c)."}})
	if res.NetDeleted != 2 {
		t.Fatalf("NetDeleted = %d, want 2", res.NetDeleted)
	}
	checkAgainstOracle(t, f, m, "?- q(X).")
	checkAgainstOracle(t, f, m, "?- p(X,Y).")
}

func TestDeleteRecursiveRederives(t *testing.T) {
	// Deleting e(a,b) breaks the chain path to c, but c stays reachable
	// through the shortcut — the DRed pass must rederive it.
	f := newFixture(t,
		"r(X) :- s(X).\nr(Y) :- r(X), e(X,Y).",
		"s(a). e(a,b). e(b,c). e(a,c). e(c,d).")
	m, err := New(context.Background(), f.prog, f.db, Options{})
	if err != nil {
		t.Fatal(err)
	}
	m, res := apply(t, m, []Op{{Retract: true, Text: "e(a,b)."}})
	if res.Overdeleted == 0 {
		t.Fatal("expected overdeletion traffic in the recursive component")
	}
	if res.Rederived == 0 {
		t.Fatal("expected rederivations (c and d stay reachable)")
	}
	checkAgainstOracle(t, f, m, "?- r(X).")
}

func TestDeleteEmptiesRecursiveComponent(t *testing.T) {
	f := newFixture(t,
		"tc(X,Y) :- e(X,Y).\ntc(X,Y) :- e(X,Z), tc(Z,Y).",
		"e(a,b). e(b,c). e(c,a).")
	m, err := New(context.Background(), f.prog, f.db, Options{})
	if err != nil {
		t.Fatal(err)
	}
	m, _ = apply(t, m, []Op{{Retract: true, Text: "e(a,b). e(b,c). e(c,a)."}})
	checkAgainstOracle(t, f, m, "?- tc(X,Y).")
	if rel := m.Relation(f.sym("tc")); rel != nil && rel.Len() != 0 {
		t.Fatalf("tc should be empty, has %d tuples", rel.Len())
	}
	if m.DerivedFacts() != 0 {
		t.Fatalf("DerivedFacts = %d, want 0", m.DerivedFacts())
	}
	// The emptied component accepts new facts afterwards.
	m, _ = apply(t, m, []Op{{Text: "e(x,y). e(y,z)."}})
	checkAgainstOracle(t, f, m, "?- tc(X,Y).")
}

func TestRetractThenReassertOneBatch(t *testing.T) {
	f := newFixture(t,
		"tc(X,Y) :- e(X,Y).\ntc(X,Y) :- e(X,Z), tc(Z,Y).",
		"e(a,b). e(b,c).")
	m, err := New(context.Background(), f.prog, f.db, Options{})
	if err != nil {
		t.Fatal(err)
	}
	before := m.Answers(f.query(t, "?- tc(X,Y)."))
	m, res := apply(t, m, []Op{
		{Retract: true, Text: "e(a,b)."},
		{Text: "e(a,b)."},
	})
	// The retract really happened mid-batch...
	if res.RetractedPerOp[0] != 1 {
		t.Fatalf("RetractedPerOp[0] = %d, want 1", res.RetractedPerOp[0])
	}
	// ...but the net effect cancels: no maintenance traffic at all.
	if res.NetInserted != 0 || res.NetDeleted != 0 {
		t.Fatalf("net delta = +%d/-%d, want 0/0", res.NetInserted, res.NetDeleted)
	}
	after := m.Answers(f.query(t, "?- tc(X,Y)."))
	if !sameTuples(before, after) {
		t.Fatalf("retract-then-reassert changed answers: %v -> %v", before, after)
	}
	checkAgainstOracle(t, f, m, "?- tc(X,Y).")
}

func TestRetractNeverAsserted(t *testing.T) {
	f := newFixture(t, "p(X) :- e(X).", "e(a).")
	m, err := New(context.Background(), f.prog, f.db, Options{})
	if err != nil {
		t.Fatal(err)
	}
	m, res := apply(t, m, []Op{{Retract: true, Text: "e(zzz). ghost(1,2)."}})
	if res.RetractedPerOp[0] != 0 {
		t.Fatalf("RetractedPerOp[0] = %d, want 0", res.RetractedPerOp[0])
	}
	if res.NetDeleted != 0 {
		t.Fatalf("NetDeleted = %d, want 0", res.NetDeleted)
	}
	checkAgainstOracle(t, f, m, "?- p(X).")
}

func TestDuplicateAssertsAndSharedSupport(t *testing.T) {
	// p is both derived (from e) and directly asserted: the Datalog level
	// sees one tuple, the counting level sees derivation + base support.
	f := newFixture(t, "p(X) :- e(X).", "e(a).")
	m, err := New(context.Background(), f.prog, f.db, Options{})
	if err != nil {
		t.Fatal(err)
	}
	p, aa := f.sym("p"), database.Tuple{term.Symbol(f.sym("a"))}
	if c := m.Count(p, aa); c != 1 {
		t.Fatalf("p(a) count = %d, want 1 (rule only)", c)
	}
	// Duplicate asserts in one batch: base dedup keeps one row, support
	// rises by exactly one unit.
	m, _ = apply(t, m, []Op{{Text: "p(a). p(a)."}})
	if rel := m.Relation(p); rel.Len() != 1 {
		t.Fatalf("p has %d tuples, want 1", rel.Len())
	}
	if c := m.Count(p, aa); c != 2 {
		t.Fatalf("p(a) count = %d, want 2 (rule + base)", c)
	}
	checkAgainstOracle(t, f, m, "?- p(X).")
	// Dropping the base copy keeps the tuple alive through the rule...
	m, _ = apply(t, m, []Op{{Retract: true, Text: "p(a)."}})
	if c := m.Count(p, aa); c != 1 {
		t.Fatalf("p(a) count after base retract = %d, want 1", c)
	}
	checkAgainstOracle(t, f, m, "?- p(X).")
	// ...and dropping the last support kills it.
	m, _ = apply(t, m, []Op{{Retract: true, Text: "e(a)."}})
	if c := m.Count(p, aa); c != 0 {
		t.Fatalf("p(a) count after losing all support = %d, want 0", c)
	}
	checkAgainstOracle(t, f, m, "?- p(X).")
}

func TestNotIncrementalNegation(t *testing.T) {
	f := newFixture(t, "p(X) :- e(X), not q(X).\nq(b).", "e(a). e(b).")
	_, err := New(context.Background(), f.prog, f.db, Options{})
	if !errors.Is(err, ErrNotIncremental) {
		t.Fatalf("New = %v, want ErrNotIncremental", err)
	}
}

func TestOpErrors(t *testing.T) {
	f := newFixture(t, "p(X) :- e(X).", "e(a).")
	m, err := New(context.Background(), f.prog, f.db, Options{})
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name string
		ops  []Op
		idx  int
	}{
		{"syntax", []Op{{Text: "e(b)."}, {Text: "e(((."}}, 1},
		{"arity", []Op{{Text: "e(b,c)."}}, 0},
		{"rule", []Op{{Text: "e(b)."}, {Text: "x(Y) :- e(Y)."}}, 1},
	}
	for _, tc := range cases {
		_, _, err := m.Apply(context.Background(), f.db.Fork(), tc.ops)
		var oe *OpError
		if !errors.As(err, &oe) {
			t.Fatalf("%s: err = %v, want *OpError", tc.name, err)
		}
		if oe.Index != tc.idx {
			t.Fatalf("%s: OpError.Index = %d, want %d", tc.name, oe.Index, tc.idx)
		}
	}
}

func TestMultiComponentPropagation(t *testing.T) {
	// Two stacked recursive components plus a non-recursive cap: deletions
	// and insertions must flow across all strata.
	f := newFixture(t,
		"tc(X,Y) :- e(X,Y).\n"+
			"tc(X,Y) :- e(X,Z), tc(Z,Y).\n"+
			"reach(X) :- src(X).\n"+
			"reach(Y) :- reach(X), tc(X,Y).\n"+
			"hit(X) :- reach(X), mark(X).",
		"e(a,b). e(b,c). e(c,d). e(b,e). src(a). mark(d). mark(e).")
	m, err := New(context.Background(), f.prog, f.db, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, goal := range []string{"?- tc(X,Y).", "?- reach(X).", "?- hit(X)."} {
		checkAgainstOracle(t, f, m, goal)
	}
	m, _ = apply(t, m, []Op{{Retract: true, Text: "e(b,c)."}, {Text: "e(e,d)."}})
	for _, goal := range []string{"?- tc(X,Y).", "?- reach(X).", "?- hit(X)."} {
		checkAgainstOracle(t, f, m, goal)
	}
}

// TestChaosMaintenance drives seeded random assert/retract batches through
// maintenance and diffs every epoch against from-scratch evaluation — the
// same invariant the server chaos suite asserts per write batch.
func TestChaosMaintenance(t *testing.T) {
	const (
		domain  = 9
		batches = 60
	)
	f := newFixture(t,
		"tc(X,Y) :- e(X,Y).\n"+
			"tc(X,Y) :- e(X,Z), tc(Z,Y).\n"+
			"sym(X,Y) :- tc(X,Y), tc(Y,X).\n"+
			"deg(X) :- e(X,Y), f(Y).",
		"")
	m, err := New(context.Background(), f.prog, f.db, Options{})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(42))
	node := func() string { return fmt.Sprintf("n%d", rng.Intn(domain)) }
	for b := 0; b < batches; b++ {
		var ops []Op
		for k := rng.Intn(4) + 1; k > 0; k-- {
			var text string
			if rng.Intn(3) == 0 {
				text = fmt.Sprintf("f(%s).", node())
			} else {
				text = fmt.Sprintf("e(%s,%s).", node(), node())
			}
			ops = append(ops, Op{Retract: rng.Intn(5) < 2, Text: text})
		}
		m2, _, err := m.Apply(context.Background(), m.Database().Fork(), ops)
		if err != nil {
			t.Fatalf("batch %d %v: %v", b, ops, err)
		}
		m = m2
		if b%7 == 0 {
			if err := m.Verify(context.Background()); err != nil {
				t.Fatalf("batch %d %v: %v", b, ops, err)
			}
		}
		for _, goal := range []string{"?- tc(X,Y).", "?- sym(X,Y).", "?- deg(X)."} {
			q := f.query(t, goal)
			got := m.Answers(q)
			want := oracleAnswers(t, f, m.Database(), q)
			if !sameTuples(got, want) {
				t.Fatalf("batch %d: %s diverged\n got %v\nwant %v", b, goal, got, want)
			}
		}
	}
	if err := m.Verify(context.Background()); err != nil {
		t.Fatal(err)
	}
}

func TestApplyDoesNotMutatePredecessor(t *testing.T) {
	f := newFixture(t,
		"tc(X,Y) :- e(X,Y).\ntc(X,Y) :- e(X,Z), tc(Z,Y).",
		"e(a,b). e(b,c).")
	m1, err := New(context.Background(), f.prog, f.db, Options{})
	if err != nil {
		t.Fatal(err)
	}
	q := f.query(t, "?- tc(X,Y).")
	before := m1.Answers(q)
	m2, _ := apply(t, m1, []Op{{Text: "e(c,d)."}})
	m3, _ := apply(t, m2, []Op{{Retract: true, Text: "e(a,b)."}})
	// The older epochs still answer exactly as they did.
	if got := m1.Answers(q); !sameTuples(got, before) {
		t.Fatalf("epoch 1 answers changed after maintenance: %v -> %v", before, got)
	}
	if err := m1.Verify(context.Background()); err != nil {
		t.Fatalf("epoch 1 no longer verifies: %v", err)
	}
	if err := m2.Verify(context.Background()); err != nil {
		t.Fatalf("epoch 2 no longer verifies: %v", err)
	}
	checkAgainstOracle(t, f, m3, "?- tc(X,Y).")
}

func TestProgramFactSupport(t *testing.T) {
	// Program facts are immutable support: retracting the identical base
	// fact must not kill the tuple.
	f := newFixture(t, "p(a).\np(X) :- e(X).", "p(a). e(b).")
	m, err := New(context.Background(), f.prog, f.db, Options{})
	if err != nil {
		t.Fatal(err)
	}
	p, aa := f.sym("p"), database.Tuple{term.Symbol(f.sym("a"))}
	if c := m.Count(p, aa); c != 2 {
		t.Fatalf("p(a) count = %d, want 2 (program fact + base)", c)
	}
	m, _ = apply(t, m, []Op{{Retract: true, Text: "p(a)."}})
	if c := m.Count(p, aa); c != 1 {
		t.Fatalf("p(a) count after base retract = %d, want 1 (program fact)", c)
	}
	checkAgainstOracle(t, f, m, "?- p(X).")
}
