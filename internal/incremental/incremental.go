// Package incremental maintains materialised Datalog models under
// ordered assert/retract deltas without re-running the fixpoint, using
// counting-based maintenance (Hu–Motik–Horrocks style) on top of the
// engine's semi-naive join machinery.
//
// A Materialization pairs every derived relation with a parallel slice of
// derivation counts: counts[p][id] is the number of distinct rule-body
// instantiations deriving row id of predicate p, plus one unit of external
// support if the tuple is also present in the base (EDB) relation of p and
// one per program-fact occurrence. The counts are built by a counting
// fixpoint that enumerates every derivation exactly once: each round's
// delta windows are read under the windowed discipline (occurrences before
// the delta position see the new state, occurrences after it see the old
// state), so a derivation whose newest atom appears several times is
// counted at its last newest-atom body position only.
//
// Apply folds an ordered batch of +fact/-fact operations — the same record
// stream the server's WAL frames per epoch — into a new Materialization:
//
//   - The batch is first net-simulated per tuple, yielding the net
//     insert/delete sets and the per-op retract counts (matching what
//     sequential RetractText calls would have reported).
//   - Deletions run component-by-component in stratification order. In a
//     non-recursive component the lost derivations are counted exactly
//     once (delta at the last deleted-atom position, later occurrences
//     restricted to survivors) and subtracted; rows reaching zero are
//     logically deleted. In a recursive component the classic
//     overcount/rederive (DRed) pass runs instead: every tuple with some
//     derivation through a deleted atom is overdeleted, then survivors are
//     rederived — a backward counting pass over the surviving rows
//     (Stage A) followed by a counting insertion fixpoint seeded with the
//     reinsertions (Stage B) rebuilds their exact counts.
//   - Deletion is logical throughout (a per-row state map: -1 dead,
//     0 original, g >= 1 rederived in round g); only after every component
//     is settled are the derived relations compacted with a single
//     capacity-reusing rebuild each and the base relations updated.
//   - Insertions then ride the ordinary watermark machinery: new base rows
//     become round-0 delta windows and each affected component resumes its
//     counting fixpoint from those windows.
//
// Programs with negation are rejected with ErrNotIncremental; callers
// (the server) fall back to full re-evaluation. Any violated internal
// invariant surfaces as an InternalError rather than silent corruption,
// which callers likewise treat as a full-re-evaluation signal.
package incremental

import (
	"context"
	"errors"
	"fmt"

	"lincount/internal/ast"
	"lincount/internal/database"
	"lincount/internal/engine"
	"lincount/internal/limits"
	"lincount/internal/symtab"
	"lincount/internal/term"
)

// ErrNotIncremental marks programs the maintenance engine refuses to
// maintain (currently: any rule with a negated literal). Callers should
// fall back to full re-evaluation.
var ErrNotIncremental = errors.New("incremental: program is not incrementally maintainable")

// InternalError reports a violated maintenance invariant (a decremented
// count going negative, a derived tuple missing from its relation, ...).
// The materialisation that produced it must be discarded; callers should
// rebuild from scratch.
type InternalError struct{ Msg string }

func (e *InternalError) Error() string { return "incremental: invariant violation: " + e.Msg }

func internalErrf(format string, args ...any) error {
	return &InternalError{Msg: fmt.Sprintf(format, args...)}
}

// Options bound the maintenance fixpoints.
type Options struct {
	// MaxIterations caps rounds within one component fixpoint
	// (build, overdeletion, rederivation and insertion alike).
	// 0 means engine.DefaultMaxIterations.
	MaxIterations int
	// MaxDerivedFacts caps the total number of derived rows across all
	// relations. 0 means engine.DefaultMaxDerivedFacts.
	MaxDerivedFacts int64
}

func (o Options) maxIter() int {
	if o.MaxIterations > 0 {
		return o.MaxIterations
	}
	return engine.DefaultMaxIterations
}

func (o Options) maxFacts() int64 {
	if o.MaxDerivedFacts > 0 {
		return o.MaxDerivedFacts
	}
	return int64(engine.DefaultMaxDerivedFacts)
}

// Materialization is a materialised model of one program over one epoch
// database, with per-row derivation counts. It is immutable after New or
// Apply returns: Apply produces a fresh Materialization for the next epoch
// (sharing unchanged relations), so a published snapshot keeps serving
// concurrent readers while the writer maintains its successor.
type Materialization struct {
	bank     *term.Bank
	prog     *ast.Program
	comps    []engine.Component
	db       *database.Database
	headPred map[symtab.Sym]bool
	arity    map[symtab.Sym]int

	derived map[symtab.Sym]*database.Relation
	counts  map[symtab.Sym][]int64
	// factSeeds/factCounts record the program-fact support per head pred
	// (shared across epochs; the program is fixed).
	factSeeds  map[symtab.Sym]*database.Relation
	factCounts map[symtab.Sym][]int64

	opts  Options
	total int64 // derived rows across all relations, for the fact budget
}

// New builds the counting materialisation of prog over db (which may be
// nil for a program-facts-only model). It returns ErrNotIncremental for
// programs with negation.
func New(ctx context.Context, prog *ast.Program, db *database.Database, opts Options) (*Materialization, error) {
	if db != nil && db.Bank() != prog.Bank {
		return nil, errors.New("incremental: program and database use different term banks")
	}
	syms := prog.Bank.Symbols()
	for _, r := range prog.Rules {
		for _, l := range r.Body {
			if l.Negated {
				return nil, fmt.Errorf("%w: rule %s uses negation",
					ErrNotIncremental, ast.FormatRule(prog.Bank, r))
			}
		}
	}
	comps, err := engine.Stratify(prog)
	if err != nil {
		return nil, err
	}
	m := &Materialization{
		bank:       prog.Bank,
		prog:       prog,
		comps:      comps,
		db:         db,
		headPred:   make(map[symtab.Sym]bool),
		arity:      make(map[symtab.Sym]int),
		derived:    make(map[symtab.Sym]*database.Relation),
		counts:     make(map[symtab.Sym][]int64),
		factSeeds:  make(map[symtab.Sym]*database.Relation),
		factCounts: make(map[symtab.Sym][]int64),
		opts:       opts,
	}
	note := func(pred symtab.Sym, n int) error {
		if ast.IsBuiltinName(syms.String(pred)) {
			return nil
		}
		if prev, ok := m.arity[pred]; ok && prev != n {
			return fmt.Errorf("incremental: predicate %s used with arities %d and %d",
				syms.String(pred), prev, n)
		}
		m.arity[pred] = n
		return nil
	}
	for _, r := range prog.Rules {
		m.headPred[r.Head.Pred] = true
		if err := note(r.Head.Pred, r.Head.Arity()); err != nil {
			return nil, err
		}
		for _, l := range r.Body {
			if err := note(l.Pred, l.Arity()); err != nil {
				return nil, err
			}
		}
	}
	check := limits.NewChecker(ctx, "incremental")
	for _, comp := range m.comps {
		if err := m.buildComponent(comp, check); err != nil {
			return nil, err
		}
	}
	return m, nil
}

// ensureDerived returns the derived relation for pred, creating it (with a
// parallel counts slice) on first use.
func (m *Materialization) ensureDerived(pred symtab.Sym, arity int) (*database.Relation, error) {
	if rel, ok := m.derived[pred]; ok {
		if rel.Arity() != arity {
			return nil, fmt.Errorf("incremental: predicate %s used with arities %d and %d",
				m.bank.Symbols().String(pred), rel.Arity(), arity)
		}
		return rel, nil
	}
	rel := database.NewRelation(arity)
	m.derived[pred] = rel
	return rel, nil
}

// bump adjusts the derivation count of row id of pred: a freshly appended
// row gets an initial count, an existing one is incremented. The total
// derived-row budget is enforced here.
func (m *Materialization) bump(pred symtab.Sym, id database.RowID, added bool, n int64) error {
	if added {
		if int(id) != len(m.counts[pred]) {
			return internalErrf("counts for %s out of step with relation (row %d, %d counts)",
				m.bank.Symbols().String(pred), id, len(m.counts[pred]))
		}
		m.counts[pred] = append(m.counts[pred], n)
		m.total++
		if m.total > m.opts.maxFacts() {
			return &limits.ResourceLimitError{
				Kind: limits.KindFacts, Limit: m.opts.maxFacts(), Used: m.total, Component: "incremental",
			}
		}
		return nil
	}
	m.counts[pred][id] += n
	return nil
}

// emitInto returns the head-tuple sink that counts one derivation per
// emitted body solution for the given predicate.
func (m *Materialization) emitInto(pred symtab.Sym) func(database.Tuple) error {
	rel := m.derived[pred]
	return func(t database.Tuple) error {
		id, added := rel.InsertRow(t)
		return m.bump(pred, id, added, 1)
	}
}

// newJoiner compiles the component's rules with every positive non-builtin
// body predicate mutable, so variants exist for build windows, deletion
// deltas and insertion windows alike.
func (m *Materialization) newJoiner(db *database.Database, comp engine.Component, check *limits.Checker) (*engine.Joiner, error) {
	syms := m.bank.Symbols()
	mutable := make(map[symtab.Sym]bool)
	for _, r := range comp.Rules {
		for _, l := range r.Body {
			if !l.Negated && !ast.IsBuiltinName(syms.String(l.Pred)) {
				mutable[l.Pred] = true
			}
		}
	}
	return engine.NewJoiner(m.bank, db, m.derived, comp.Rules, mutable, check)
}

// buildComponent seeds and fixpoints one component, counting every
// derivation exactly once.
func (m *Materialization) buildComponent(comp engine.Component, check *limits.Checker) error {
	// Seed: program facts (with multiplicity) and base rows of head preds.
	for _, r := range comp.Rules {
		rel, err := m.ensureDerived(r.Head.Pred, r.Head.Arity())
		if err != nil {
			return err
		}
		if !r.IsFact() {
			continue
		}
		t := make(database.Tuple, len(r.Head.Args))
		for i, a := range r.Head.Args {
			t[i] = a.Value
		}
		fs, ok := m.factSeeds[r.Head.Pred]
		if !ok {
			fs = database.NewRelation(rel.Arity())
			m.factSeeds[r.Head.Pred] = fs
		}
		fid, fadded := fs.InsertRow(t)
		if fadded {
			m.factCounts[r.Head.Pred] = append(m.factCounts[r.Head.Pred], 1)
		} else {
			m.factCounts[r.Head.Pred][fid]++
		}
		id, added := rel.InsertRow(t)
		if err := m.bump(r.Head.Pred, id, added, 1); err != nil {
			return err
		}
	}
	for _, p := range comp.Preds {
		rel, ok := m.derived[p]
		if !ok || m.db == nil {
			continue
		}
		base := m.db.Relation(p)
		if base == nil {
			continue
		}
		if base.Arity() != rel.Arity() {
			return fmt.Errorf("incremental: predicate %s has arity %d in program but %d in database",
				m.bank.Symbols().String(p), rel.Arity(), base.Arity())
		}
		for id := database.RowID(0); int(id) < base.Len(); id++ {
			rid, added := rel.InsertRow(database.Tuple(base.Row(id)))
			if err := m.bump(p, rid, added, 1); err != nil {
				return err
			}
		}
	}

	joiner, err := m.newJoiner(m.db, comp, check)
	if err != nil {
		return err
	}
	if joiner.Rules() == 0 {
		return nil
	}
	inC := make(map[symtab.Sym]bool, len(comp.Preds))
	for _, p := range comp.Preds {
		inC[p] = true
	}

	// Rules with no in-component body occurrence read only frozen earlier
	// strata: one default-order pass enumerates each derivation once.
	for i := 0; i < joiner.Rules(); i++ {
		if hasVariantIn(joiner, i, inC) {
			continue
		}
		if err := joiner.Run(i, -1, nil, engine.JoinConfig{}, m.emitInto(joiner.HeadPred(i))); err != nil {
			return err
		}
	}

	// Counting fixpoint: round 0's delta is everything present so far
	// (seeds plus the default passes above); later rounds window the rows
	// appended in the previous round. The windowed read discipline makes
	// each round count its derivations exactly once.
	lo := make(map[symtab.Sym]database.RowID, len(comp.Preds))
	return m.countingRounds(joiner, comp, nil, lo, check)
}

// countingRounds runs the windowed counting fixpoint for one component:
// ext (optional) supplies external round-0 windows, lo holds the starting
// watermarks for the component's own predicates. Emitted heads append to
// the derived relations and advance the watermarks until quiescence.
func (m *Materialization) countingRounds(joiner *engine.Joiner, comp engine.Component,
	ext map[symtab.Sym]engine.Delta, lo map[symtab.Sym]database.RowID, check *limits.Checker) error {
	maxIter := m.opts.maxIter()
	for iter := 0; ; iter++ {
		if err := check.Check(); err != nil {
			return err
		}
		if iter >= maxIter {
			return &limits.ResourceLimitError{
				Kind: limits.KindIterations, Limit: int64(maxIter), Used: int64(iter), Component: "incremental",
			}
		}
		// Every component predicate enters the delta map each round — even
		// with an empty window — so that windowed reads of non-delta
		// occurrences stay bounded at the round's start watermarks. A raw
		// (unbounded) read would see rows appended earlier in the same
		// round and count their derivations twice: once now via this
		// variant and again next round via the appended rows' own window.
		delta := make(map[symtab.Sym]engine.Delta)
		progress := false
		if iter == 0 {
			for q, d := range ext {
				if d.Lo < d.Hi {
					delta[q] = d
					progress = true
				}
			}
		}
		for _, p := range comp.Preds {
			rel, ok := m.derived[p]
			if !ok {
				continue
			}
			hi := database.RowID(rel.Len())
			delta[p] = engine.Delta{Rel: rel, Lo: lo[p], Hi: hi}
			if hi > lo[p] {
				progress = true
			}
			lo[p] = hi
		}
		if !progress {
			return nil
		}
		cfg := engine.JoinConfig{Windowed: true}
		for i := 0; i < joiner.Rules(); i++ {
			emit := m.emitInto(joiner.HeadPred(i))
			for occ := 0; occ < joiner.Variants(i); occ++ {
				if d, ok := delta[joiner.VariantPred(i, occ)]; !ok || d.Lo >= d.Hi {
					continue
				}
				if err := joiner.Run(i, occ, delta, cfg, emit); err != nil {
					return err
				}
			}
		}
	}
}

// hasVariantIn reports whether compiled rule i has a delta variant over a
// predicate in the given set.
func hasVariantIn(j *engine.Joiner, i int, preds map[symtab.Sym]bool) bool {
	for occ := 0; occ < j.Variants(i); occ++ {
		if preds[j.VariantPred(i, occ)] {
			return true
		}
	}
	return false
}

// Bank returns the term bank.
func (m *Materialization) Bank() *term.Bank { return m.bank }

// Database returns the epoch database this materialisation matches.
func (m *Materialization) Database() *database.Database { return m.db }

// Program returns the maintained program.
func (m *Materialization) Program() *ast.Program { return m.prog }

// DerivedFacts returns the total number of derived rows.
func (m *Materialization) DerivedFacts() int64 { return m.total }

// Relation returns the materialised relation for pred, or nil.
func (m *Materialization) Relation(pred symtab.Sym) *database.Relation { return m.derived[pred] }

// Count returns the derivation count of t in pred's materialised relation
// (0 if absent).
func (m *Materialization) Count(pred symtab.Sym, t database.Tuple) int64 {
	rel, ok := m.derived[pred]
	if !ok {
		return 0
	}
	id, ok := rel.Find(t)
	if !ok {
		return 0
	}
	return m.counts[pred][id]
}

// Answers matches a query goal against the materialised relations (falling
// back to the base database for purely extensional goals), in the same
// deterministic order engine.Answers produces for a fresh evaluation.
func (m *Materialization) Answers(q ast.Query) []database.Tuple {
	return engine.Answers(engine.NewResult(m.bank, m.derived), m.db, q)
}

// Verify rebuilds the materialisation from scratch over the same database
// and diffs relations and derivation counts tuple-by-tuple. It returns a
// descriptive error on the first divergence — the maintenance oracle the
// chaos suites call after every batch.
func (m *Materialization) Verify(ctx context.Context) error {
	fresh, err := New(ctx, m.prog, m.db, m.opts)
	if err != nil {
		return fmt.Errorf("incremental: verify rebuild failed: %w", err)
	}
	syms := m.bank.Symbols()
	for pred, frel := range fresh.derived {
		mrel := m.derived[pred]
		if mrel == nil {
			if frel.Len() == 0 {
				continue
			}
			return fmt.Errorf("incremental: verify: relation %s missing from maintained state", syms.String(pred))
		}
		if mrel.Len() != frel.Len() {
			return fmt.Errorf("incremental: verify: %s has %d maintained tuples, %d from scratch",
				syms.String(pred), mrel.Len(), frel.Len())
		}
		for id := database.RowID(0); int(id) < frel.Len(); id++ {
			t := database.Tuple(frel.Row(id))
			mid, ok := mrel.Find(t)
			if !ok {
				return fmt.Errorf("incremental: verify: %s missing maintained tuple %s",
					syms.String(pred), formatTuple(m.bank, t))
			}
			if got, want := m.counts[pred][mid], fresh.counts[pred][id]; got != want {
				return fmt.Errorf("incremental: verify: %s%s has maintained count %d, from-scratch count %d",
					syms.String(pred), formatTuple(m.bank, t), got, want)
			}
		}
	}
	for pred, mrel := range m.derived {
		if fresh.derived[pred] == nil && mrel.Len() > 0 {
			return fmt.Errorf("incremental: verify: maintained state has unexpected relation %s", syms.String(pred))
		}
	}
	return nil
}

func formatTuple(bank *term.Bank, t database.Tuple) string {
	out := "("
	for i, v := range t {
		if i > 0 {
			out += ","
		}
		out += bank.Format(v)
	}
	return out + ")"
}
