// Package oracle implements a cross-strategy differential checker: it
// runs one query under several strategies and diffs the sorted answer
// sets against a trusted baseline (semi-naive bottom-up, the naive
// oracle — no rewriting, no cleverness to get wrong). Every strategy of
// the paper is an optimization of that baseline, so any divergence is a
// bug in a rewriting or an evaluator, not a legitimate difference.
//
// The checker also classifies failures, so a chaos harness can assert
// the robustness invariant: under injected faults, every evaluation
// either matches the oracle exactly or returns a *classified* error —
// never a panic, never silently wrong answers.
package oracle

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strings"

	"lincount"
	"lincount/internal/counting"
	"lincount/internal/magic"
	"lincount/internal/topdown"
)

// Class categorizes the outcome of one evaluation for the chaos
// invariant. Every outcome except Failed is acceptable under fault
// injection; Failed means an error escaped the taxonomy and the
// robustness contract is broken.
type Class int

const (
	// OK: the evaluation succeeded (answers must then match the oracle).
	OK Class = iota
	// NotApplicable: the strategy does not cover the program (e.g. a
	// counting rewriting of a non-linear program). Expected for explicit
	// strategies; Auto never returns it.
	NotApplicable
	// ResourceLimit: a budget tripped (errors.Is ErrResourceLimit).
	ResourceLimit
	// InjectedFault: the fault-injection harness fired (errors.Is
	// ErrInjectedFault), including injected cancellation storms.
	InjectedFault
	// Canceled: the evaluation was canceled or timed out for a real
	// (non-injected) reason.
	Canceled
	// Internal: a recovered panic surfaced as *lincount.InternalError.
	// The containment worked, but it still reports a bug.
	Internal
	// Failed: an error outside the taxonomy — an invariant violation
	// under chaos testing.
	Failed
)

// String implements fmt.Stringer.
func (c Class) String() string {
	switch c {
	case OK:
		return "ok"
	case NotApplicable:
		return "not-applicable"
	case ResourceLimit:
		return "resource-limit"
	case InjectedFault:
		return "injected-fault"
	case Canceled:
		return "canceled"
	case Internal:
		return "internal"
	default:
		return "failed"
	}
}

// Classify places an evaluation error in the taxonomy. A nil error is
// OK. Injected faults are checked before cancellation so that an
// injected cancellation storm (a CanceledError whose cause is the
// injection sentinel) classifies as InjectedFault.
func Classify(err error) Class {
	switch {
	case err == nil:
		return OK
	case errors.Is(err, counting.ErrNotLinear),
		errors.Is(err, counting.ErrNotApplicable),
		errors.Is(err, counting.ErrNoBoundArgs),
		errors.Is(err, magic.ErrNoBoundArgs),
		errors.Is(err, topdown.ErrUnsupported):
		return NotApplicable
	case errors.Is(err, lincount.ErrInjectedFault):
		return InjectedFault
	case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
		return Canceled
	case errors.Is(err, lincount.ErrResourceLimit):
		return ResourceLimit
	default:
		var ie *lincount.InternalError
		if errors.As(err, &ie) {
			return Internal
		}
		return Failed
	}
}

// Run is the outcome of one strategy's evaluation.
type Run struct {
	// Strategy is the strategy that was requested.
	Strategy lincount.Strategy
	// Class categorizes the outcome.
	Class Class
	// Err is the failure message (empty on OK).
	Err string
	// Answers are the sorted answer rows (nil unless OK).
	Answers [][]string
	// Degraded counts the fallback attempts Auto burned before
	// succeeding (0 for explicit strategies and non-degraded runs).
	Degraded int
}

// Mismatch reports a strategy whose answers diverge from the baseline.
type Mismatch struct {
	// Strategy is the diverging strategy.
	Strategy lincount.Strategy
	// Missing rows are in the baseline but not in the run.
	Missing []string
	// Extra rows are in the run but not in the baseline.
	Extra []string
}

// Report is the outcome of one differential check.
type Report struct {
	// Query is the checked query text.
	Query string
	// Baseline holds the naive oracle's sorted answer rows.
	Baseline [][]string
	// Runs holds one entry per requested strategy, in order.
	Runs []Run
	// Mismatches lists the strategies whose answers diverge from the
	// baseline. Empty means every successful run agreed.
	Mismatches []Mismatch
}

// OK reports whether the check passed: no mismatches and no run in the
// Failed class. Errors in the rest of the taxonomy (not-applicable,
// budget trips, injected faults, cancellation, contained panics) are
// acceptable outcomes, not divergences.
func (r *Report) OK() bool {
	if len(r.Mismatches) > 0 {
		return false
	}
	for _, run := range r.Runs {
		if run.Class == Failed {
			return false
		}
	}
	return true
}

// String renders a compact human-readable summary, one line per run.
func (r *Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "query %s: baseline %d answer(s)\n", r.Query, len(r.Baseline))
	bad := map[lincount.Strategy]*Mismatch{}
	for i := range r.Mismatches {
		bad[r.Mismatches[i].Strategy] = &r.Mismatches[i]
	}
	for _, run := range r.Runs {
		switch {
		case bad[run.Strategy] != nil:
			m := bad[run.Strategy]
			fmt.Fprintf(&b, "  %-18s MISMATCH (%d missing, %d extra)\n", run.Strategy, len(m.Missing), len(m.Extra))
		case run.Class == OK:
			note := ""
			if run.Degraded > 0 {
				note = fmt.Sprintf(" (degraded %dx)", run.Degraded)
			}
			fmt.Fprintf(&b, "  %-18s ok, %d answer(s)%s\n", run.Strategy, len(run.Answers), note)
		default:
			fmt.Fprintf(&b, "  %-18s %s: %s\n", run.Strategy, run.Class, run.Err)
		}
	}
	return b.String()
}

// rowKey joins a formatted answer row into one comparable string.
func rowKey(row []string) string { return strings.Join(row, "\t") }

// diffAnswers computes the symmetric difference of two sorted answer
// sets, as rendered rows.
func diffAnswers(base, got [][]string) (missing, extra []string) {
	baseSet := make(map[string]bool, len(base))
	for _, r := range base {
		baseSet[rowKey(r)] = true
	}
	gotSet := make(map[string]bool, len(got))
	for _, r := range got {
		k := rowKey(r)
		gotSet[k] = true
		if !baseSet[k] {
			extra = append(extra, k)
		}
	}
	for _, r := range base {
		if k := rowKey(r); !gotSet[k] {
			missing = append(missing, k)
		}
	}
	sort.Strings(missing)
	sort.Strings(extra)
	return missing, extra
}

// Check runs query under every strategy in strategies and diffs each
// successful run against the naive oracle (semi-naive, evaluated with
// baseOpts — pass the budgets but NOT the fault schedule there, or the
// oracle itself may fail). Each candidate run uses runOpts, which may
// include lincount.WithFaultInjection. Check returns an error only when
// the baseline itself fails; candidate failures are classified in the
// report.
func Check(ctx context.Context, p *lincount.Program, db *lincount.Database, query string, strategies []lincount.Strategy, baseOpts, runOpts []lincount.Option) (*Report, error) {
	base, err := lincount.EvalContext(ctx, p, db, query, lincount.SemiNaive, baseOpts...)
	if err != nil {
		return nil, fmt.Errorf("oracle: baseline semi-naive failed: %w", err)
	}
	rep := &Report{Query: query, Baseline: base.Answers}
	for _, s := range strategies {
		res, err := lincount.EvalContext(ctx, p, db, query, s, runOpts...)
		run := Run{Strategy: s, Class: Classify(err)}
		if err != nil {
			run.Err = err.Error()
			rep.Runs = append(rep.Runs, run)
			continue
		}
		run.Answers = res.Answers
		run.Degraded = len(res.Degraded)
		rep.Runs = append(rep.Runs, run)
		missing, extra := diffAnswers(base.Answers, res.Answers)
		if len(missing) > 0 || len(extra) > 0 {
			rep.Mismatches = append(rep.Mismatches, Mismatch{Strategy: s, Missing: missing, Extra: extra})
		}
	}
	return rep, nil
}
