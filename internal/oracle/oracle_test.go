package oracle

import (
	"context"
	"strings"
	"testing"

	"lincount"
)

const ancestry = `
anc(X, Y) :- par(X, Y).
anc(X, Y) :- anc(X, Z), par(Z, Y).
`

func testDB(t *testing.T, p *lincount.Program) *lincount.Database {
	t.Helper()
	db := lincount.NewDatabase(p)
	if err := db.LoadFacts(`par(a,b). par(b,c). par(c,d).`); err != nil {
		t.Fatal(err)
	}
	return db
}

func TestCheckAllStrategiesAgree(t *testing.T) {
	p := lincount.MustParseProgram(ancestry)
	db := testDB(t, p)
	rep, err := Check(context.Background(), p, db, "?- anc(a, Y).", lincount.Strategies(), nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK() {
		t.Fatalf("expected all strategies to agree:\n%s", rep)
	}
	if len(rep.Baseline) != 3 {
		t.Fatalf("baseline = %v, want 3 answers", rep.Baseline)
	}
	okRuns := 0
	for _, run := range rep.Runs {
		switch run.Class {
		case OK:
			okRuns++
		case NotApplicable:
		default:
			t.Errorf("%s: unexpected class %s: %s", run.Strategy, run.Class, run.Err)
		}
	}
	if okRuns < 5 {
		t.Fatalf("only %d strategies succeeded", okRuns)
	}
}

func TestCheckClassifiesInjectedFault(t *testing.T) {
	p := lincount.MustParseProgram(ancestry)
	db := testDB(t, p)
	rep, err := Check(context.Background(), p, db, "?- anc(a, Y).",
		[]lincount.Strategy{lincount.SemiNaive}, nil,
		[]lincount.Option{lincount.WithFaultInjection(1, "engine.insert=err@1")})
	if err != nil {
		t.Fatal(err)
	}
	if got := rep.Runs[0].Class; got != InjectedFault {
		t.Fatalf("class = %s, want injected-fault (err: %s)", got, rep.Runs[0].Err)
	}
	if rep.OK() {
		// InjectedFault is an acceptable outcome — OK() must still hold.
	} else {
		t.Fatalf("injected fault must not fail the invariant:\n%s", rep)
	}
}

func TestCheckClassifiesInjectedCancel(t *testing.T) {
	p := lincount.MustParseProgram(ancestry)
	db := testDB(t, p)
	rep, err := Check(context.Background(), p, db, "?- anc(a, Y).",
		[]lincount.Strategy{lincount.SemiNaive}, nil,
		[]lincount.Option{lincount.WithFaultInjection(1, "engine.iter=cancel@1")})
	if err != nil {
		t.Fatal(err)
	}
	if got := rep.Runs[0].Class; got != InjectedFault {
		t.Fatalf("class = %s, want injected-fault (injected cancel classifies as injection, not cancellation); err: %s",
			got, rep.Runs[0].Err)
	}
}

func TestCheckClassifiesResourceLimit(t *testing.T) {
	p := lincount.MustParseProgram(ancestry)
	db := testDB(t, p)
	rep, err := Check(context.Background(), p, db, "?- anc(a, Y).",
		[]lincount.Strategy{lincount.SemiNaive}, nil,
		[]lincount.Option{lincount.WithMaxDerivedFacts(1)})
	if err != nil {
		t.Fatal(err)
	}
	if got := rep.Runs[0].Class; got != ResourceLimit {
		t.Fatalf("class = %s, want resource-limit (err: %s)", got, rep.Runs[0].Err)
	}
}

func TestCheckClassifiesNotApplicable(t *testing.T) {
	// Non-linear recursion: the counting rewritings must bow out.
	p := lincount.MustParseProgram(`
same(X, Y) :- par(X, Y).
same(X, Y) :- same(X, Z), same(Z, Y).
`)
	db := testDB(t, p)
	rep, err := Check(context.Background(), p, db, "?- same(a, Y).",
		[]lincount.Strategy{lincount.Counting}, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := rep.Runs[0].Class; got != NotApplicable {
		t.Fatalf("class = %s, want not-applicable (err: %s)", got, rep.Runs[0].Err)
	}
}

func TestClassifyTaxonomy(t *testing.T) {
	if got := Classify(nil); got != OK {
		t.Fatalf("Classify(nil) = %s", got)
	}
	if got := Classify(context.Canceled); got != Canceled {
		t.Fatalf("Classify(context.Canceled) = %s", got)
	}
	if got := Classify(lincount.ErrInjectedFault); got != InjectedFault {
		t.Fatalf("Classify(ErrInjectedFault) = %s", got)
	}
	if got := Classify(lincount.ErrResourceLimit); got != ResourceLimit {
		t.Fatalf("Classify(ErrResourceLimit) = %s", got)
	}
	if got := Classify(&lincount.InternalError{}); got != Internal {
		t.Fatalf("Classify(InternalError) = %s", got)
	}
	if got := Classify(context.DeadlineExceeded); got != Canceled {
		t.Fatalf("Classify(DeadlineExceeded) = %s", got)
	}
	if got := Classify(strings.NewReader("").UnreadByte()); got != Failed {
		t.Fatalf("Classify(random error) = %s", got)
	}
}

func TestDiffAnswers(t *testing.T) {
	base := [][]string{{"a"}, {"b"}, {"c"}}
	got := [][]string{{"b"}, {"c"}, {"d"}}
	missing, extra := diffAnswers(base, got)
	if len(missing) != 1 || missing[0] != "a" {
		t.Fatalf("missing = %v", missing)
	}
	if len(extra) != 1 || extra[0] != "d" {
		t.Fatalf("extra = %v", extra)
	}
}
